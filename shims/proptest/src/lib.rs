//! Offline shim for the subset of `proptest` this workspace uses.
//!
//! The container has no crates.io access, so the property tests run on a
//! vendored mini-framework: strategies are deterministic samplers (seeded
//! from the test's module path and name), `proptest!` expands each test
//! into a loop over `ProptestConfig::cases` sampled cases, and
//! `prop_assert*` failures report the case number. There is no shrinking —
//! a failing case prints its seed context and panics — but generation
//! covers the same API shapes: ranges, tuples, `prop_map`, `prop_oneof!`,
//! `collection::vec`, and `any::<T>()`.

use std::fmt;
use std::ops::{Range, RangeInclusive};

pub use rand::rngs::StdRng as TestRngCore;
use rand::{Rng as _, SeedableRng as _};

/// Random source handed to strategies.
pub struct TestRng {
    inner: TestRngCore,
}

impl TestRng {
    /// Deterministic RNG for `name` (usually `module::test_name`).
    pub fn for_test(name: &str) -> TestRng {
        // FNV-1a over the name gives a stable per-test seed
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng { inner: TestRngCore::seed_from_u64(h) }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform f64 in [0, 1).
    pub fn next_f64(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }
}

use rand::RngCore as _;

/// Test-level configuration. Only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of sampled cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A failed `prop_assert*`. Returned (not panicked) so the runner can
/// attach case context.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Drives one test's cases; owns the RNG.
pub struct TestRunner {
    rng: TestRng,
}

impl TestRunner {
    /// Runner for the named test.
    pub fn new(_config: ProptestConfig, name: &str) -> Self {
        TestRunner { rng: TestRng::for_test(name) }
    }

    /// The case RNG.
    pub fn rng(&mut self) -> &mut TestRng {
        &mut self.rng
    }
}

// ---------------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------------

/// A value generator. Unlike real proptest there is no shrink tree; a
/// strategy is just a deterministic sampler.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Filter generated values (resamples until `f` accepts, up to a
    /// bounded number of attempts).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        _whence: &'static str,
        f: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { inner: self, f }
    }

    /// Type-erase into a boxed sampler.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(move |rng| self.sample(rng)))
    }
}

/// `Strategy::prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// `Strategy::prop_filter` adapter.
pub struct Filter<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.sample(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 consecutive samples");
    }
}

/// Boxed, type-erased strategy (what `prop_oneof!` arms become).
pub struct BoxedStrategy<V>(Box<dyn Fn(&mut TestRng) -> V>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        (self.0)(rng)
    }
}

/// Uniform choice among boxed alternatives (`prop_oneof!`).
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Union over `arms` (must be non-empty).
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        let i = (rng.next_u64() % self.arms.len() as u64) as usize;
        self.arms[i].sample(rng)
    }
}

/// Always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<V: Clone>(pub V);

impl<V: Clone> Strategy for Just<V> {
    type Value = V;
    fn sample(&self, _rng: &mut TestRng) -> V {
        self.0.clone()
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}
impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + (rng.next_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                lo + (rng.next_f64() as $t) * (hi - lo)
            }
        }
    )*};
}
impl_float_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

pub mod arbitrary {
    //! `any::<T>()` — whole-domain strategies.

    use super::{Strategy, TestRng};
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary {
        /// Draw one value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // finite, sign-symmetric, wide dynamic range
            let mag = rng.next_f64() * 1e12;
            if rng.next_u64() & 1 == 1 {
                -mag
            } else {
                mag
            }
        }
    }
    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> f32 {
            f64::arbitrary(rng) as f32
        }
    }

    /// Strategy form of [`Arbitrary`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The `any::<T>()` entry point.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! `vec(element, size)` collection strategies.

    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Length specification for [`vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }
    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }
    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    /// Strategy yielding `Vec`s of `element` samples.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64 + 1;
            let len = self.size.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// `prop::collection::vec`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

pub mod prelude {
    //! The glob-imported surface, mirroring `proptest::prelude::*`.

    pub use crate::arbitrary::any;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy,
    };

    /// The `prop::` module alias used as `prop::collection::vec(...)`.
    pub mod prop {
        pub use crate::collection;
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Assert inside a proptest body; failure aborts the case with context.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError(format!(
                "assertion failed: {} at {}:{}",
                stringify!($cond), file!(), line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError(format!(
                "assertion failed: {} at {}:{}: {}",
                stringify!($cond), file!(), line!(), format!($($fmt)*)
            )));
        }
    };
}

/// Equality assert inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return Err($crate::TestCaseError(format!(
                "assertion failed: {} == {} ({:?} vs {:?}) at {}:{}",
                stringify!($a), stringify!($b), a, b, file!(), line!()
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return Err($crate::TestCaseError(format!(
                "assertion failed: {} == {} ({:?} vs {:?}) at {}:{}: {}",
                stringify!($a), stringify!($b), a, b, file!(), line!(), format!($($fmt)*)
            )));
        }
    }};
}

/// Inequality assert inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if *a == *b {
            return Err($crate::TestCaseError(format!(
                "assertion failed: {} != {} (both {:?}) at {}:{}",
                stringify!($a), stringify!($b), a, file!(), line!()
            )));
        }
    }};
}

/// Uniform choice among strategies with a common `Value`.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Bind proptest parameters: `x in strategy` or `x: Type` forms.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($runner:ident;) => {};
    ($runner:ident; $pat:pat_param in $strat:expr) => {
        let $pat = $crate::Strategy::sample(&($strat), $runner.rng());
    };
    ($runner:ident; $pat:pat_param in $strat:expr, $($rest:tt)*) => {
        let $pat = $crate::Strategy::sample(&($strat), $runner.rng());
        $crate::__proptest_bind!($runner; $($rest)*);
    };
    ($runner:ident; $name:ident : $ty:ty) => {
        let $name = $crate::Strategy::sample(
            &$crate::arbitrary::any::<$ty>(), $runner.rng());
    };
    ($runner:ident; $name:ident : $ty:ty, $($rest:tt)*) => {
        let $name = $crate::Strategy::sample(
            &$crate::arbitrary::any::<$ty>(), $runner.rng());
        $crate::__proptest_bind!($runner; $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (config = $cfg:expr; $( $(#[$meta:meta])* fn $name:ident( $($params:tt)* ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut runner = $crate::TestRunner::new(
                    config.clone(),
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for case in 0..config.cases {
                    let result = (|| -> ::core::result::Result<(), $crate::TestCaseError> {
                        $crate::__proptest_bind!(runner; $($params)*);
                        { $body }
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                    if let Err(e) = result {
                        panic!(
                            "[proptest] {} failed at case {}/{}: {}",
                            stringify!($name), case + 1, config.cases, e
                        );
                    }
                }
            }
        )*
    };
}

/// The `proptest! { ... }` test-suite macro.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn even() -> impl Strategy<Value = u64> {
        (0u64..1000).prop_map(|x| x * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 5u64..10, y in -2.0f64..2.0, z: u32) {
            prop_assert!((5..10).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
            let _ = z;
        }

        #[test]
        fn tuples_and_vecs(v in prop::collection::vec((0u32..4, 0.0f64..1.0), 1..20)) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            for (a, b) in v {
                prop_assert!(a < 4);
                prop_assert!((0.0..1.0).contains(&b));
            }
        }

        #[test]
        fn mapped_strategy(e in even()) {
            prop_assert_eq!(e % 2, 0);
        }

        #[test]
        fn oneof_mixes(w in prop_oneof![(0u32..1).prop_map(|_| 1u32), (0u32..1).prop_map(|_| 2u32)]) {
            prop_assert!(w == 1 || w == 2);
        }
    }

    #[test]
    fn exact_size_vec() {
        let strat = crate::collection::vec(0u8..10, 7usize);
        let mut rng = crate::TestRng::for_test("exact");
        assert_eq!(strat.sample(&mut rng).len(), 7);
    }

    #[test]
    fn deterministic_per_name() {
        let s = 0u64..1_000_000;
        let mut a = crate::TestRng::for_test("x");
        let mut b = crate::TestRng::for_test("x");
        assert_eq!(s.sample(&mut a), s.sample(&mut b));
    }
}
