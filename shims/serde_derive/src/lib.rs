//! Offline shim for `serde_derive`.
//!
//! The build container has no network access to crates.io, so the
//! workspace vendors a minimal stand-in: the `Serialize`/`Deserialize`
//! derives accept the same syntax but expand to nothing. The codebase
//! only uses the derives as markers (no runtime serialization of these
//! types goes through serde), so empty expansions are sufficient. The
//! blanket impls in the sibling `serde` shim satisfy any trait bounds.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
