//! Offline shim for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its result and spec
//! types so downstream users *could* serialize them, but nothing in the
//! repo calls serde at runtime. This shim keeps the source unchanged in a
//! container without crates.io access: the traits exist (with blanket
//! impls so bounds are always satisfiable) and the derives expand to
//! nothing.

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

pub use serde_derive::{Deserialize, Serialize};
