//! Offline shim for the subset of `rand` 0.8 this workspace uses:
//! `rngs::StdRng`, `SeedableRng::{from_seed, seed_from_u64}`, and
//! `Rng::{gen, gen_range, gen_bool}` over the primitive types that appear
//! in the code. The generator is xoshiro256** seeded through splitmix64 —
//! high-quality and fully deterministic, though the stream differs from
//! upstream `StdRng` (ChaCha12). Nothing in the repo depends on the exact
//! upstream stream; callers use the RNG to synthesize test data and
//! deterministic placements.

use std::ops::Range;

/// Core source of 64-bit randomness.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Seed type (32 bytes for `StdRng`, as upstream).
    type Seed: Default + AsMut<[u8]>;

    /// Build from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a `u64`, expanding it with splitmix64 (same approach as
    /// upstream's `seed_from_u64`).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            for (b, s) in chunk.iter_mut().zip(z.to_le_bytes()) {
                *b = s;
            }
        }
        Self::from_seed(seed)
    }
}

/// Types samplable uniformly over their whole domain (`rng.gen::<T>()`).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}
impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1)
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}
impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by `rng.gen_range(range)`.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let f = <$t as Standard>::sample(rng);
                self.start + f * (self.end - self.start)
            }
        }
    )*};
}
impl_float_range!(f32, f64);

/// The user-facing convenience trait, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform value over `T`'s whole domain.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform value in `range` (half-open).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        <f64 as Standard>::sample(self) < p
    }
}
impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic generator: xoshiro256**.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(b);
            }
            // avoid the all-zero state, which is a fixed point
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let x = r.gen_range(3u64..17);
            assert!((3..17).contains(&x));
            let y = r.gen_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&y));
            let z = r.gen_range(-5i32..5);
            assert!((-5..5).contains(&z));
        }
    }

    #[test]
    fn rough_uniformity() {
        let mut r = StdRng::seed_from_u64(3);
        let mut buckets = [0u32; 10];
        for _ in 0..10_000 {
            buckets[r.gen_range(0usize..10)] += 1;
        }
        for &b in &buckets {
            assert!((700..1300).contains(&b), "bucket {b}");
        }
    }
}
