//! Offline shim for the subset of `criterion` this workspace uses.
//!
//! The container has no crates.io access, so the benches run on a small
//! wall-clock harness instead: each `bench_function` does a warm-up pass,
//! then times `sample_size` batches and reports the per-iteration median
//! (plus derived throughput when one was declared). No statistical
//! regression analysis, no HTML reports — just honest timings on stderr,
//! which is what the repo's benches are read for.

use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value passthrough.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declared work per iteration, used to derive rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Per-iteration timing driver handed to bench closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `f` over this sample's iteration batch.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Top-level harness state.
#[derive(Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        eprintln!("group {}", name.into());
        BenchmarkGroup { _c: self, sample_size: 20, throughput: None }
    }
}

/// A named group; carries group-wide sample size and throughput.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set samples per benchmark (criterion default is 100; ours is 20).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Declare per-iteration work for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark: warm up, pick a batch size targeting ~10ms per
    /// sample, time `sample_size` samples, report the median.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self {
        let id = id.into();
        // warm-up + calibration: one iteration, timed
        let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
        f(&mut b);
        let per_iter = b.elapsed.max(Duration::from_nanos(1));
        let iters = (Duration::from_millis(10).as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;

        let mut samples: Vec<f64> = (0..self.sample_size)
            .map(|_| {
                let mut b = Bencher { iters, elapsed: Duration::ZERO };
                f(&mut b);
                b.elapsed.as_secs_f64() / iters as f64
            })
            .collect();
        samples.sort_by(|a, b| a.total_cmp(b));
        let median = samples[samples.len() / 2];

        let rate = match self.throughput {
            Some(Throughput::Elements(n)) => format!("  {:.3} Melem/s", n as f64 / median / 1e6),
            Some(Throughput::Bytes(n)) => format!("  {:.3} MiB/s", n as f64 / median / (1024.0 * 1024.0)),
            None => String::new(),
        };
        eprintln!("  {id:<24} {:>12}/iter{rate}", format_time(median));
        self
    }

    /// End the group (criterion API parity; nothing to flush here).
    pub fn finish(&mut self) {}
}

fn format_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} us", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Collect bench functions under one entry point, as upstream does.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags like --bench; ignore them.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim_smoke");
        g.sample_size(3);
        g.throughput(Throughput::Elements(64));
        let mut ran = false;
        g.bench_function("sum", |b| {
            ran = true;
            b.iter(|| (0u64..64).sum::<u64>())
        });
        g.finish();
        assert!(ran);
    }
}
