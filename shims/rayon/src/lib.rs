//! Offline shim for the subset of `rayon` this workspace uses:
//! `par_iter` / `par_iter_mut` / `par_chunks_mut` on slices, plus `zip`,
//! `enumerate`, and `for_each`.
//!
//! Parallel iterators here are splittable index ranges over slices. A
//! `for_each` splits the work into one contiguous part per available core
//! and drives each part on a `std::thread::scope` thread — real
//! parallelism, no work stealing. All uses in this workspace are
//! element-wise or disjoint-panel writes, so the split cannot change
//! results.

/// A splittable, length-aware parallel iterator.
pub trait ParallelIterator: Sized + Send {
    /// Item handed to the consumer closure.
    type Item: Send;
    /// Sequential iterator driving one split part.
    type Seq: Iterator<Item = Self::Item>;

    /// Remaining element count.
    fn len(&self) -> usize;

    /// Whether no elements remain.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Split into the first `n` elements and the rest.
    fn split_at(self, n: usize) -> (Self, Self);

    /// Convert into a sequential iterator over this part.
    fn into_seq(self) -> Self::Seq;

    /// Pair element-wise with `other` (length = shorter of the two).
    fn zip<B: ParallelIterator>(self, other: B) -> Zip<Self, B> {
        Zip { a: self, b: other }
    }

    /// Attach global indices.
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate { inner: self, offset: 0 }
    }

    /// Apply `f` to every element, in parallel across cores.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync + Send,
    {
        let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
        let n = self.len();
        if threads <= 1 || n < 2 {
            self.into_seq().for_each(f);
            return;
        }
        let parts = threads.min(n);
        let per = n.div_ceil(parts);
        let mut chunks = Vec::with_capacity(parts);
        let mut rest = self;
        while rest.len() > per {
            let (head, tail) = rest.split_at(per);
            chunks.push(head);
            rest = tail;
        }
        chunks.push(rest);
        let f = &f;
        std::thread::scope(|s| {
            for part in chunks {
                s.spawn(move || part.into_seq().for_each(f));
            }
        });
    }
}

/// Shared-slice parallel iterator (`par_iter`).
pub struct ParIter<'a, T>(&'a [T]);

impl<'a, T: Sync> ParallelIterator for ParIter<'a, T> {
    type Item = &'a T;
    type Seq = std::slice::Iter<'a, T>;
    fn len(&self) -> usize {
        self.0.len()
    }
    fn split_at(self, n: usize) -> (Self, Self) {
        let (a, b) = self.0.split_at(n.min(self.0.len()));
        (ParIter(a), ParIter(b))
    }
    fn into_seq(self) -> Self::Seq {
        self.0.iter()
    }
}

/// Mutable-slice parallel iterator (`par_iter_mut`).
pub struct ParIterMut<'a, T>(&'a mut [T]);

impl<'a, T: Send> ParallelIterator for ParIterMut<'a, T> {
    type Item = &'a mut T;
    type Seq = std::slice::IterMut<'a, T>;
    fn len(&self) -> usize {
        self.0.len()
    }
    fn split_at(self, n: usize) -> (Self, Self) {
        let mid = n.min(self.0.len());
        let (a, b) = self.0.split_at_mut(mid);
        (ParIterMut(a), ParIterMut(b))
    }
    fn into_seq(self) -> Self::Seq {
        self.0.iter_mut()
    }
}

/// Mutable fixed-size chunk iterator (`par_chunks_mut`). One "element" is
/// one chunk; splits land on chunk boundaries.
pub struct ParChunksMut<'a, T> {
    slice: &'a mut [T],
    chunk: usize,
}

impl<'a, T: Send> ParallelIterator for ParChunksMut<'a, T> {
    type Item = &'a mut [T];
    type Seq = std::slice::ChunksMut<'a, T>;
    fn len(&self) -> usize {
        self.slice.len().div_ceil(self.chunk)
    }
    fn split_at(self, n: usize) -> (Self, Self) {
        let mid = (n * self.chunk).min(self.slice.len());
        let (a, b) = self.slice.split_at_mut(mid);
        (
            ParChunksMut { slice: a, chunk: self.chunk },
            ParChunksMut { slice: b, chunk: self.chunk },
        )
    }
    fn into_seq(self) -> Self::Seq {
        self.slice.chunks_mut(self.chunk)
    }
}

/// Element-wise pairing of two parallel iterators.
pub struct Zip<A, B> {
    a: A,
    b: B,
}

impl<A: ParallelIterator, B: ParallelIterator> ParallelIterator for Zip<A, B> {
    type Item = (A::Item, B::Item);
    type Seq = std::iter::Zip<A::Seq, B::Seq>;
    fn len(&self) -> usize {
        self.a.len().min(self.b.len())
    }
    fn split_at(self, n: usize) -> (Self, Self) {
        let n = n.min(self.len());
        let (a1, a2) = self.a.split_at(n);
        let (b1, b2) = self.b.split_at(n);
        (Zip { a: a1, b: b1 }, Zip { a: a2, b: b2 })
    }
    fn into_seq(self) -> Self::Seq {
        self.a.into_seq().zip(self.b.into_seq())
    }
}

/// Globally-indexed parallel iterator; indices survive splitting.
pub struct Enumerate<I> {
    inner: I,
    offset: usize,
}

/// Sequential side of [`Enumerate`].
pub struct EnumerateSeq<S> {
    inner: S,
    next: usize,
}

impl<S: Iterator> Iterator for EnumerateSeq<S> {
    type Item = (usize, S::Item);
    fn next(&mut self) -> Option<Self::Item> {
        let item = self.inner.next()?;
        let i = self.next;
        self.next += 1;
        Some((i, item))
    }
}

impl<I: ParallelIterator> ParallelIterator for Enumerate<I> {
    type Item = (usize, I::Item);
    type Seq = EnumerateSeq<I::Seq>;
    fn len(&self) -> usize {
        self.inner.len()
    }
    fn split_at(self, n: usize) -> (Self, Self) {
        let n = n.min(self.len());
        let (a, b) = self.inner.split_at(n);
        (
            Enumerate { inner: a, offset: self.offset },
            Enumerate { inner: b, offset: self.offset + n },
        )
    }
    fn into_seq(self) -> Self::Seq {
        EnumerateSeq { inner: self.inner.into_seq(), next: self.offset }
    }
}

/// Entry points on shared slices.
pub trait ParallelSlice<T: Sync> {
    /// Parallel `&T` iterator.
    fn par_iter(&self) -> ParIter<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<'_, T> {
        ParIter(self)
    }
}

/// Entry points on mutable slices.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel `&mut T` iterator.
    fn par_iter_mut(&mut self) -> ParIterMut<'_, T>;
    /// Parallel iterator over mutable chunks of `chunk` elements.
    fn par_chunks_mut(&mut self, chunk: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> ParIterMut<'_, T> {
        ParIterMut(self)
    }
    fn par_chunks_mut(&mut self, chunk: usize) -> ParChunksMut<'_, T> {
        assert!(chunk > 0, "par_chunks_mut: chunk size must be nonzero");
        ParChunksMut { slice: self, chunk }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `rayon::prelude::*`.
    pub use crate::{ParallelIterator, ParallelSlice, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn par_iter_mut_zip_matches_sequential() {
        let n = 10_000;
        let a: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let b: Vec<f64> = (0..n).map(|i| (i * 3) as f64).collect();
        let mut out = vec![0.0; n];
        out.par_iter_mut()
            .zip(a.par_iter().zip(b.par_iter()))
            .for_each(|(o, (&x, &y))| *o = x + 2.0 * y);
        for i in 0..n {
            assert_eq!(out[i], a[i] + 2.0 * b[i]);
        }
    }

    #[test]
    fn par_chunks_mut_enumerate_indices_are_global() {
        let mut v = vec![0usize; 1003];
        v.par_chunks_mut(100).enumerate().for_each(|(ci, chunk)| {
            for x in chunk.iter_mut() {
                *x = ci;
            }
        });
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(x, i / 100, "element {i}");
        }
    }

    #[test]
    fn empty_and_single() {
        let mut v: Vec<u32> = vec![];
        v.par_iter_mut().for_each(|x| *x += 1);
        let mut one = [5u32];
        one.par_iter_mut().for_each(|x| *x += 1);
        assert_eq!(one[0], 6);
    }
}
