//! Integration tests of the experiment pipeline: every experiment runs
//! at Quick scale, produces non-trivial artifacts, renders, exports CSV,
//! and is deterministic.

use bgp_eval::core::{run_experiment, ExperimentId, Scale};

/// Every experiment produces at least one table or figure with data.
#[test]
fn all_experiments_produce_artifacts() {
    for id in ExperimentId::all() {
        // the heaviest app figures are exercised individually below
        if matches!(id, ExperimentId::Fig1 | ExperimentId::Fig2 | ExperimentId::Fig4) {
            continue;
        }
        let a = run_experiment(id, Scale::Quick);
        let tables_ok = a.tables.iter().all(|t| !t.rows.is_empty());
        let figures_ok =
            a.figures.iter().all(|f| f.series.iter().all(|s| !s.points.is_empty()));
        assert!(tables_ok && figures_ok, "{:?} produced empty artifacts", id);
        assert!(
            !a.tables.is_empty() || !a.figures.is_empty(),
            "{:?} produced nothing",
            id
        );
        let text = a.render();
        assert!(text.contains("=="), "{:?} render missing titles", id);
    }
}

/// Fig 1 at quick scale: four panels, both machines, everything finite
/// and positive.
#[test]
fn fig1_quick_is_sane() {
    let a = run_experiment(ExperimentId::Fig1, Scale::Quick);
    assert_eq!(a.figures.len(), 4);
    for f in &a.figures {
        assert_eq!(f.series.len(), 2, "{} needs both machines", f.title);
        for s in &f.series {
            for &(x, y) in &s.points {
                assert!(x > 0.0 && y.is_finite() && y > 0.0, "{}/{}: ({x},{y})", f.title, s.name);
            }
        }
    }
    // HPL panel: rates grow with process count for both machines
    let hpl = &a.figures[0];
    for s in &hpl.series {
        let first = s.points.first().unwrap().1;
        let last = s.points.last().unwrap().1;
        assert!(last > first * 2.0, "{} should scale: {first} -> {last}", s.name);
    }
}

/// Fig 2 at quick scale: six panels with the protocol/mapping structure.
#[test]
fn fig2_quick_is_sane() {
    let a = run_experiment(ExperimentId::Fig2, Scale::Quick);
    assert_eq!(a.figures.len(), 6);
    assert_eq!(a.figures[0].series.len(), 3, "three protocols");
    assert_eq!(a.figures[2].series.len(), 8, "eight mappings");
    // every series is monotone-ish in halo words (cost grows)
    for f in &a.figures {
        for s in &f.series {
            let first = s.points.first().unwrap().1;
            let last = s.points.last().unwrap().1;
            assert!(last > first, "{}/{} should grow with words", f.title, s.name);
        }
    }
}

/// Fig 4 quick: panels present and the BG/P SYD curve increases.
#[test]
fn fig4_quick_is_sane() {
    let a = run_experiment(ExperimentId::Fig4, Scale::Quick);
    assert_eq!(a.figures.len(), 4);
    let total = &a.figures[0];
    let vn = &total.series[0];
    assert!(vn.points.last().unwrap().1 > vn.points.first().unwrap().1);
}

/// CSV export writes one file per artifact and the files parse back to
/// the right row counts.
#[test]
fn csv_round_trip() {
    let dir = std::env::temp_dir().join("bgp_eval_csv_test");
    let _ = std::fs::remove_dir_all(&dir);
    let a = run_experiment(ExperimentId::Table1, Scale::Quick);
    let paths = a.write_csv(&dir).expect("write");
    assert_eq!(paths.len(), 1);
    let content = std::fs::read_to_string(&paths[0]).unwrap();
    let lines: Vec<&str> = content.lines().collect();
    assert_eq!(lines.len(), 1 + a.tables[0].rows.len());
    assert!(lines[0].starts_with("Feature,"));
    let _ = std::fs::remove_dir_all(&dir);
}

/// The whole pipeline is deterministic: two runs of the same experiment
/// render identically.
#[test]
fn experiments_are_deterministic() {
    let a = run_experiment(ExperimentId::Fig3, Scale::Quick).render();
    let b = run_experiment(ExperimentId::Fig3, Scale::Quick).render();
    assert_eq!(a, b);
}
