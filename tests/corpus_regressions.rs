//! Standalone seeded regressions: each test is a planted canary (or a
//! minimized real finding) constructed in code, named after the
//! coverage bucket it exercises. Unlike `corpus_replay.rs` these do
//! not read files — they pin the engine behavior the fuzzer's coverage
//! map keys on, one bucket per test.

use bgp_eval::fuzz::{canary_scenario, minimize, run_scenario, FuzzScenario, OutcomeKind};
use bgp_eval::machine::registry::bluegene_p;
use bgp_eval::machine::ExecMode;
use bgp_eval::mpi::{CommId, Op, Req};
use bgp_eval::net::CollectiveOp;
use bgp_eval::topo::Mapping;

fn flat_bgp(traces: Vec<Vec<Op>>) -> FuzzScenario {
    FuzzScenario {
        machine: bluegene_p().with_flat_contention(),
        mode: ExecMode::Vn,
        mapping: Mapping::txyz(),
        faults: None,
        traces,
    }
}

// Coverage bucket: outcome:deadlock — a barrier one rank never joins.
#[test]
fn regression_missing_barrier_member_deadlocks() {
    let bar = Op::Collective { comm: CommId::WORLD, op: CollectiveOp::Barrier };
    let sc = flat_bgp(vec![vec![bar], vec![bar], vec![bar], vec![]]);
    let rep = run_scenario(&sc);
    assert_eq!(rep.outcome, OutcomeKind::Deadlock, "{}", rep.detail);
}

// Coverage bucket: outcome:deadlock — a wait on a request that was
// never posted (the smallest deadlock the fuzzer auto-minimized to).
#[test]
fn regression_wait_on_unposted_request_deadlocks() {
    let sc = flat_bgp(vec![vec![Op::Wait { req: Req(2) }], vec![]]);
    let rep = run_scenario(&sc);
    assert_eq!(rep.outcome, OutcomeKind::Deadlock, "{}", rep.detail);
}

// Coverage bucket: outcome:collective-mismatch — two members record
// different collectives at sequence slot 0 on WORLD.
#[test]
fn regression_skewed_collective_slot_is_diagnosed() {
    let sc = flat_bgp(vec![
        vec![Op::Collective { comm: CommId::WORLD, op: CollectiveOp::Alltoall { bytes_per_pair: 8 } }],
        vec![],
        vec![Op::Collective { comm: CommId::WORLD, op: CollectiveOp::Allgather { bytes_per_rank: 64 } }],
    ]);
    let rep = run_scenario(&sc);
    assert_eq!(rep.outcome, OutcomeKind::CollectiveMismatch, "{}", rep.detail);
}

// Coverage bucket: arrived-match-depth — an unexpected-message flood
// (sends land while the receiver is still blocked on a gate message,
// so nothing is posted yet) must drive the unexpected-arrival
// high-water mark, not deadlock or diverge.
#[test]
fn regression_unexpected_flood_raises_arrived_high_water() {
    const N: u32 = 24;
    // Sender: flood first, then (after a long delay) the gate message
    // the receiver is blocked on.
    let mut sender: Vec<Op> = (0..N)
        .map(|i| Op::Isend { dst: 1, tag: 0, bytes: 64, req: Req(i) })
        .collect();
    sender.push(Op::Delay { time: bgp_eval::engine::SimTime::from_ms(5) });
    sender.push(Op::Isend { dst: 1, tag: 9, bytes: 8, req: Req(N) });
    sender.extend((0..=N).map(|i| Op::Wait { req: Req(i) }));
    // Receiver: block on the gate, then post the flood's receives.
    let mut receiver: Vec<Op> = vec![
        Op::Irecv { src: 0, tag: 9, bytes: 8, req: Req(N) },
        Op::Wait { req: Req(N) },
    ];
    receiver.extend((0..N).map(|i| Op::Irecv { src: 0, tag: 0, bytes: 64, req: Req(i) }));
    receiver.extend((0..N).map(|i| Op::Wait { req: Req(i) }));
    let sc = flat_bgp(vec![sender, receiver]);
    let rep = run_scenario(&sc);
    assert_eq!(rep.outcome, OutcomeKind::Ok, "{}", rep.detail);
    assert!(
        rep.signals.arrived_hw >= N as u64 / 2,
        "arrived high-water {} too low for a {N}-message flood",
        rep.signals.arrived_hw
    );
}

// Coverage bucket: rendezvous straddle (makespan + outcome:ok) — the
// same exchange at threshold−1 (eager) and threshold+1 (rendezvous)
// must both complete and pass the differential oracle; rendezvous must
// not be cheaper than eager.
#[test]
fn regression_rendezvous_straddle_passes_oracle_both_sides() {
    let thr = bluegene_p().nic.eager_threshold;
    let mut spans = Vec::new();
    for bytes in [thr - 1, thr + 1] {
        let sc = flat_bgp(vec![
            vec![
                Op::Irecv { src: 1, tag: 1, bytes, req: Req(0) },
                Op::Isend { dst: 1, tag: 0, bytes, req: Req(1) },
                Op::Wait { req: Req(0) },
                Op::Wait { req: Req(1) },
            ],
            vec![
                Op::Irecv { src: 0, tag: 0, bytes, req: Req(0) },
                Op::Isend { dst: 0, tag: 1, bytes, req: Req(1) },
                Op::Wait { req: Req(0) },
                Op::Wait { req: Req(1) },
            ],
        ]);
        let rep = run_scenario(&sc);
        assert_eq!(rep.outcome, OutcomeKind::Ok, "bytes {bytes}: {}", rep.detail);
        spans.push(rep.signals.makespan_us);
    }
    assert!(spans[1] >= spans[0], "rendezvous cheaper than eager: {spans:?}");
}

// Coverage bucket: outcome:deadlock + minimization contract — the
// planted campaign canary must shrink to ≤ 8 ops, the CI budget.
#[test]
fn regression_campaign_canary_minimizes_within_budget() {
    let sc = canary_scenario(42);
    let rep = run_scenario(&sc);
    assert_eq!(rep.outcome, OutcomeKind::Deadlock, "{}", rep.detail);
    let min = minimize(&sc, OutcomeKind::Deadlock, 2_000);
    assert!(min.converged);
    assert!(min.scenario.total_ops() <= 8, "{} ops", min.scenario.total_ops());
    assert_eq!(run_scenario(&min.scenario).outcome, OutcomeKind::Deadlock);
}
