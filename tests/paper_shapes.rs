//! Integration tests: the paper's headline findings, asserted end-to-end
//! through the public `bgp_eval` API. Each test names the claim in the
//! paper it pins.

use bgp_eval::apps::{md_run, pop_run, s3d_run, MdConfig, PopConfig, S3dConfig};
use bgp_eval::hpcc::{imb_allreduce, imb_bcast, pingpong, top500_run};
use bgp_eval::machine::registry::{bluegene_p, xt4_dc, xt4_qc};
use bgp_eval::machine::{ExecMode, NodeModel, Workload};
use bgp_eval::net::DType;
use bgp_eval::power::{PowerModel, UTIL_HPL};

/// Abstract: "BG/P has good scalability with an expected lower
/// performance per processor when compared to the Cray XT4's Opteron."
#[test]
fn abstract_lower_per_processor_performance() {
    let bgp = NodeModel::new(bluegene_p());
    let xt = NodeModel::new(xt4_qc());
    let w = Workload::Dgemm { n: 1500 };
    assert!(
        xt.sustained_flops(&w, ExecMode::Vn, 1) > 2.0 * bgp.sustained_flops(&w, ExecMode::Vn, 1)
    );
}

/// Abstract: "BG/P uses very low power per floating point operation for
/// certain kernels" — HPL MFlops/W ratio ≈ 2.7 (Table 3: 347.6 / 129.7).
#[test]
fn abstract_power_per_flop_advantage() {
    let r = top500_run(&bluegene_p());
    assert!(r.mflops_per_watt > 270.0, "BG/P {:.0} MF/W", r.mflops_per_watt);
    // XT per §IV: ~130 MF/W
    let xt_pm = PowerModel::new(xt4_qc());
    let xt_mfw = xt_pm.mflops_per_watt(205e12, 30_976, UTIL_HPL);
    let ratio = r.mflops_per_watt / xt_mfw;
    assert!((2.0..3.4).contains(&ratio), "MF/W ratio {ratio:.2} (paper: 2.68)");
}

/// §II.B: "the BG/P network's strength is low-latency communication
/// whereas the XT's strength is high-bandwidth communication."
#[test]
fn latency_vs_bandwidth_network_split() {
    let (lat_b, bw_b) = pingpong(&bluegene_p(), 8, 1 << 21);
    let (lat_x, bw_x) = pingpong(&xt4_qc(), 8, 1 << 21);
    assert!(lat_b < lat_x);
    assert!(bw_x > 3.0 * bw_b);
}

/// §II.B.2: "the BG/P dramatically outperforms the Cray XT for all
/// message sizes showing the benefit of the special-purpose tree network."
#[test]
fn bcast_tree_benefit_all_sizes() {
    for bytes in [8u64, 1024, 32 * 1024, 1 << 20] {
        let b = imb_bcast(&bluegene_p(), ExecMode::Vn, 1024, bytes);
        let x = imb_bcast(&xt4_qc(), ExecMode::Vn, 1024, bytes);
        assert!(b.usec < x.usec, "bytes={bytes}");
    }
}

/// §II.B.2: "a substantial performance benefit to using double precision
/// over single precision on the BG/P but not the Cray XT."
#[test]
fn allreduce_precision_asymmetry() {
    let ranks = 512;
    let bytes = 32 * 1024;
    let gap = |machine: &bgp_eval::machine::MachineSpec| {
        let sp = imb_allreduce(machine, ExecMode::Vn, ranks, bytes, DType::F32).usec;
        let dp = imb_allreduce(machine, ExecMode::Vn, ranks, bytes, DType::F64).usec;
        sp / dp
    };
    assert!(gap(&bluegene_p()) > 2.0);
    let xt_gap = gap(&xt4_qc());
    assert!((0.8..1.3).contains(&xt_gap));
}

/// §III.A: "The XT4 performance is approximately 3.6 times that of the
/// BG/P for 8000 processes" — and the gap NARROWS at scale ("2.5 times
/// for 22500 processes") because communication starts to dominate on the
/// XT.
#[test]
fn pop_gap_narrows_with_scale() {
    let cfg = PopConfig::default();
    let ratio_at = |p: usize| {
        let b = pop_run(&bluegene_p(), ExecMode::Vn, p, 1, &cfg).syd;
        let x = pop_run(&xt4_dc(), ExecMode::Vn, p, 1, &cfg).syd;
        x / b
    };
    let r8k = ratio_at(8192);
    let r22k = ratio_at(22500);
    assert!(r8k > 2.6 && r8k < 4.6, "ratio at 8k: {r8k:.2} (paper 3.6)");
    assert!(r22k < r8k, "gap should narrow: {r8k:.2} -> {r22k:.2}");
}

/// §III.A: POP "scaling is linear out to 8000 processes, and is still
/// scaling well out to 40,000" on BG/P.
#[test]
fn pop_scales_to_40000() {
    let cfg = PopConfig::default();
    let s8 = pop_run(&bluegene_p(), ExecMode::Vn, 8192, 1, &cfg).syd;
    let s40 = pop_run(&bluegene_p(), ExecMode::Vn, 40_000, 1, &cfg).syd;
    let speedup = s40 / s8;
    assert!(speedup > 2.0, "8k->40k speedup {speedup:.2} (paper: 3.6/12 ≈ 3.3)");
    // Table 3: roughly 12 SYD at 40,000 cores
    assert!(s40 > 7.0 && s40 < 18.0, "SYD(40000) = {s40:.1} (paper ~12)");
}

/// §III.C: S3D "exhibits excellent parallel performance on several
/// architectures" — weak scaling cost flat on BOTH machines.
#[test]
fn s3d_flat_on_both_machines() {
    let cfg = S3dConfig::default();
    for machine in [bluegene_p(), xt4_qc()] {
        let c64 = s3d_run(&machine, ExecMode::Vn, 64, &cfg).core_hours_per_point_step;
        let c1728 = s3d_run(&machine, ExecMode::Vn, 1728, &cfg).core_hours_per_point_step;
        let spread = (c1728 / c64).max(c64 / c1728);
        assert!(spread < 1.2, "{}: weak-scaling spread {spread:.2}", machine.id);
    }
}

/// §III.E: "subsequent generations of the systems … result in performance
/// improvements … particularly on large number of MPI tasks."
#[test]
fn md_generation_improvement() {
    let cfg = MdConfig::lammps_rub();
    let bgl = md_run(&bgp_eval::machine::registry::bluegene_l(), 1024, &cfg);
    let bgp = md_run(&bluegene_p(), 1024, &cfg);
    assert!(bgp.ns_per_day > bgl.ns_per_day);
}

/// Conclusion: power advantage shrinks on science-driven metrics — the
/// iso-SYD aggregate power gap is far smaller than the per-core gap.
#[test]
fn science_metric_power_story() {
    let pm_b = PowerModel::new(bluegene_p());
    let pm_x = PowerModel::new(xt4_dc());
    let cfg = PopConfig::default();
    // per-core gap at equal core count
    let per_core = pm_x.per_core_w(UTIL_HPL) / pm_b.per_core_w(UTIL_HPL);
    // iso-throughput: find cores for 3 SYD on each
    let cores_for = |machine: &bgp_eval::machine::MachineSpec,
                     pm: &PowerModel|
     -> (usize, f64) {
        let mut lo = 1024;
        let mut hi = lo;
        while hi < 65536 && pop_run(machine, ExecMode::Vn, hi, 1, &cfg).syd < 3.0 {
            lo = hi;
            hi *= 2;
        }
        // refine: three bisection steps so the iso point is within ~12%
        for _ in 0..3 {
            let mid = (lo + hi) / 2;
            if pop_run(machine, ExecMode::Vn, mid, 1, &cfg).syd < 3.0 {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        (hi, pm.aggregate_w(hi as u64, bgp_eval::power::UTIL_SCIENCE))
    };
    let (pb, wb) = cores_for(&bluegene_p(), &pm_b);
    let (px, wx) = cores_for(&xt4_dc(), &pm_x);
    assert!(pb > px, "BG/P needs more cores ({pb} vs {px})");
    let agg_ratio = wx / wb;
    assert!(
        agg_ratio < per_core / 2.0,
        "aggregate gap {agg_ratio:.2} should be way below per-core {per_core:.2}"
    );
}
