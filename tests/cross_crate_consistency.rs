//! Integration tests pinning consistency *between* crates: the layered
//! models must agree where their domains overlap.

use bgp_eval::engine::SimTime;
use bgp_eval::machine::registry::{all_machines, bluegene_p};
use bgp_eval::machine::{ExecMode, NodeModel, Workload};
use bgp_eval::mpi::{CommId, FnProgram, Mpi, SimConfig, TraceSim};
use bgp_eval::net::{CollectiveModel, CollectiveOp, DType};
use bgp_eval::power::PowerModel;
use bgp_eval::topo::{torus_dims, Mapping, Torus3D};

/// The node model's DGEMM rate must stay below the registry's peak for
/// every machine and mode — no model can beat the hardware.
#[test]
fn node_model_bounded_by_peak() {
    for m in all_machines() {
        let model = NodeModel::new(m.clone());
        for mode in [ExecMode::Smp, ExecMode::Dual, ExecMode::Vn] {
            let rate = model.sustained_flops(&Workload::Dgemm { n: 1024 }, mode, 1);
            assert!(
                rate <= m.core_peak_flops() * 1.0001,
                "{} {:?}: {rate:.3e} exceeds peak",
                m.id,
                mode
            );
            assert!(rate > 0.3 * m.core_peak_flops(), "{} DGEMM suspiciously slow", m.id);
        }
    }
}

/// A barrier simulated through the full TraceSim must take at least the
/// closed-form CollectiveModel duration (replay adds skew, never removes
/// time).
#[test]
fn replay_barrier_at_least_model_time() {
    let machine = bluegene_p();
    let ranks = 256;
    let model = CollectiveModel::new(&machine, ranks, 4);
    let model_t = model.time(CollectiveOp::Barrier);
    let mut sim = TraceSim::new(SimConfig::new(machine, ranks, ExecMode::Vn));
    let res = sim.run(&FnProgram(|mpi: &mut Mpi| {
        mpi.barrier(CommId::WORLD);
    }));
    assert!(res.makespan() >= model_t);
    assert!(res.makespan() <= model_t.scale(3.0) + SimTime::from_us(5));
}

/// Mapping placement and torus routing agree: every rank placed by every
/// predefined mapping lands on a valid node of the partition torus.
#[test]
fn mappings_place_within_partition() {
    let machine = bluegene_p();
    for ranks in [64usize, 100, 1024] {
        let nodes = ranks.div_ceil(4);
        let torus = Torus3D::new(torus_dims(nodes));
        for (_, mapping) in Mapping::predefined() {
            for r in (0..ranks).step_by(7) {
                let (coord, slot) = mapping.place(r, &torus, 4);
                assert!(torus.index(coord) < torus.nodes());
                assert!(slot < 4);
            }
        }
        let _ = &machine;
    }
}

/// Power model × node model: energy to solution for a fixed workload is
/// lower on BG/P despite the longer runtime — the paper's efficiency
/// argument as an equation.
#[test]
fn energy_to_solution_favors_bgp() {
    use bgp_eval::machine::registry::xt4_qc;
    let work = Workload::Dgemm { n: 4000 };
    let mut results = Vec::new();
    for m in [bluegene_p(), xt4_qc()] {
        let model = NodeModel::new(m.clone());
        let pm = PowerModel::new(m.clone());
        let t = model.time(&work, ExecMode::Vn, 1).as_secs();
        // 4 tasks on one node doing this work each: node energy
        let joules = pm.node_power_w(0.95) * t;
        results.push((m.id, t, joules));
    }
    let (bgp, xt) = (&results[0], &results[1]);
    assert!(bgp.1 > xt.1, "BG/P is slower: {:.3}s vs {:.3}s", bgp.1, xt.1);
    assert!(bgp.2 < xt.2, "but cheaper: {:.1}J vs {:.1}J", bgp.2, xt.2);
}

/// SimTime arithmetic used across crates survives a full replay: the
/// makespan equals the max rank finish and utilization is within [0,1].
#[test]
fn replay_invariants() {
    let machine = bluegene_p();
    let mut sim = TraceSim::new(SimConfig::new(machine, 128, ExecMode::Vn));
    let res = sim.run(&FnProgram(|mpi: &mut Mpi| {
        let next = (mpi.rank() + 1) % mpi.size();
        let prev = (mpi.rank() + mpi.size() - 1) % mpi.size();
        mpi.compute(Workload::StreamTriad { n: 100_000 });
        mpi.sendrecv(next, 0, 4096, prev, 0, 4096);
        mpi.allreduce(CommId::WORLD, 8, DType::F64);
    }));
    let max = res.finish.iter().copied().max().unwrap();
    assert_eq!(res.makespan(), max);
    let u = res.mean_utilization();
    assert!((0.0..=1.0).contains(&u), "utilization {u}");
    assert!(res.bytes_sent == 128 * 4096);
    assert_eq!(res.messages, 128);
}

/// Every machine's collective model is monotone in ranks for barriers on
/// software trees, and flat-ish on hardware trees.
#[test]
fn barrier_scaling_by_family() {
    for m in all_machines() {
        let t_small = CollectiveModel::new(&m, 64, 4).time(CollectiveOp::Barrier);
        let t_large = CollectiveModel::new(&m, 16384, 4).time(CollectiveOp::Barrier);
        if m.nic.has_barrier_network {
            assert!(
                t_large < t_small.scale(2.0) + SimTime::from_us(2),
                "{}: hardware barrier should stay flat",
                m.id
            );
        } else {
            assert!(t_large > t_small.scale(1.3), "{}: software barrier should grow", m.id);
        }
    }
}
