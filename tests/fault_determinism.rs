//! Fault injection is deterministic: the same seed must produce the
//! same faults — and therefore the same resilience summary — at any
//! worker count. This is the cross-crate version of the `repro` CLI
//! smoke: it drives the battery through the public umbrella API.

use bgp_eval::core::{resilience_battery, set_jobs, Scale};

#[test]
fn same_seed_is_identical_at_any_worker_count() {
    set_jobs(1);
    let seq = resilience_battery(42, Scale::Quick, false);
    set_jobs(4);
    let par = resilience_battery(42, Scale::Quick, false);
    set_jobs(0); // back to auto for any tests that follow

    assert!(seq.all_ok() && par.all_ok(), "healthy battery must not report errors");
    assert_eq!(
        seq.table.render(),
        par.table.render(),
        "fault schedule must not depend on the worker count"
    );
}

#[test]
fn different_seeds_change_the_schedule() {
    let a = resilience_battery(1, Scale::Quick, false);
    let b = resilience_battery(2, Scale::Quick, false);
    assert!(a.all_ok() && b.all_ok());
    // compare the CSV bodies: the rendered titles already differ by seed
    assert_ne!(a.table.to_csv(), b.table.to_csv(), "the seed must actually steer the faults");
}
