//! Corpus replay: every checked-in regression under `tests/corpus/`
//! re-runs through the fuzzer's executor and must reproduce the
//! outcome its `MANIFEST.txt` line records.
//!
//! These files are auto-minimized findings from real fuzz campaigns
//! (`repro --fuzz --fuzz-promote`), serialized in the canonical
//! `hpcsim-fuzz-scenario/1` text form. If an engine change flips one
//! of these outcomes, that is a *behavioral* change to diagnosed
//! semantics — update the manifest only if the new behavior is the
//! intended one (e.g. a divergence regression turning `ok` because the
//! DAG gap was fixed).

use bgp_eval::fuzz::{run_scenario, FuzzScenario, OutcomeKind};
use std::path::Path;

fn corpus_dir() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

#[test]
fn manifest_lists_at_least_three_regressions() {
    let manifest = std::fs::read_to_string(corpus_dir().join("MANIFEST.txt")).unwrap();
    assert!(manifest.lines().filter(|l| !l.trim().is_empty()).count() >= 3);
}

#[test]
fn every_corpus_entry_reproduces_its_recorded_outcome() {
    let dir = corpus_dir();
    let manifest = std::fs::read_to_string(dir.join("MANIFEST.txt")).unwrap();
    for line in manifest.lines().filter(|l| !l.trim().is_empty()) {
        let mut parts = line.split_whitespace();
        let file = parts.next().expect("manifest line: <file> <outcome>");
        let expected = parts
            .next()
            .and_then(OutcomeKind::parse)
            .unwrap_or_else(|| panic!("bad outcome label in manifest line {line:?}"));
        let text = std::fs::read_to_string(dir.join(file))
            .unwrap_or_else(|e| panic!("{file}: {e}"));
        let sc = FuzzScenario::parse(&text).unwrap_or_else(|e| panic!("{file}: {e}"));
        // The canonical form is self-identical: parse → serialize is
        // byte-exact, so the checked-in file IS the scenario identity.
        assert_eq!(sc.to_canon(), text, "{file}: non-canonical corpus file");
        let rep = run_scenario(&sc);
        assert_eq!(
            rep.outcome, expected,
            "{file}: expected {}, got {} ({})",
            expected.label(),
            rep.outcome.label(),
            rep.detail
        );
    }
}
