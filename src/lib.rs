//! # bgp-eval
//!
//! A from-scratch Rust reproduction of **"Early Evaluation of IBM
//! BlueGene/P"** (Alam et al., SC'08). Since the paper is a measurement
//! study of hardware we do not have, every measured system is replaced by
//! a simulator built in this workspace — machine models, a 3-D torus and
//! collective-tree network, a trace-replay MPI, benchmark programs
//! (HPCC, HALO, IMB, TOP500 HPL), application proxies (POP, CAM, S3D,
//! GYRO, LAMMPS/PMEMD), and a calibrated power model.
//!
//! This umbrella crate re-exports the workspace so downstream users can
//! depend on one crate:
//!
//! ```
//! use bgp_eval::machine::registry::bluegene_p;
//! use bgp_eval::machine::{ExecMode, NodeModel, Workload};
//!
//! let model = NodeModel::new(bluegene_p());
//! let gf = model.sustained_flops(&Workload::Dgemm { n: 1000 }, ExecMode::Vn, 1) / 1e9;
//! assert!(gf > 2.5 && gf < 3.4); // a PPC450 core does ~3 GF/s of DGEMM
//! ```
//!
//! Regenerate the paper's artifacts with the `repro` binary:
//!
//! ```text
//! cargo run --release -p hpcsim-bench --bin repro -- all
//! ```
//!
//! See `DESIGN.md` for the system inventory and the experiment index, and
//! `EXPERIMENTS.md` for paper-vs-measured results.

/// Application proxies: POP, CAM, S3D, GYRO, MD (Figures 4–8).
pub use hpcsim_apps as apps;
/// Content-addressed scenario cache: canonical specs, two-tier
/// memoization, the `evaluate` front door.
pub use hpcsim_cache as cache;
/// Evaluation framework: experiments, runner, reports.
pub use hpcsim_core as core;
/// Discrete-event simulation primitives.
pub use hpcsim_engine as engine;
/// Coverage-guided adversarial scenario fuzzing: generator, mutator,
/// differential oracle, minimizer, deterministic corpus.
pub use hpcsim_fuzz as fuzz;
/// Deterministic fault plans: link outages, OS noise, message loss.
pub use hpcsim_faults as faults;
/// HPCC / HALO / IMB / TOP500 benchmark programs (Tables 2, Figures 1–3).
pub use hpcsim_hpcc as hpcc;
/// I/O-node forwarding and parallel-filesystem model.
pub use hpcsim_io as io;
/// Real numeric kernels (DGEMM, FFT, LU, STREAM, PTRANS, RandomAccess).
pub use hpcsim_kernels as kernels;
/// Machine models (Table 1) and the node cost model.
pub use hpcsim_machine as machine;
/// Simulated MPI: rank programs and trace replay.
pub use hpcsim_mpi as mpi;
/// Harness observability: process-wide metrics registry, leveled
/// logging, Prometheus / run-report exporters.
pub use hpcsim_obs as obs;
/// Network models: torus p2p with contention, collectives.
pub use hpcsim_net as net;
/// Power and energy model (Table 3).
pub use hpcsim_power as power;
/// Observability: simulated-time tracing, metrics, contention heatmaps.
pub use hpcsim_probe as probe;
/// Topologies: torus, tree, mappings, grids.
pub use hpcsim_topo as topo;
