//! Criterion benchmarks of the simulator itself — the substrate's own
//! performance (events/second, whole-benchmark replay times). These are
//! the "how fast is the instrument" numbers, complementing the
//! paper-shaped outputs of the `repro` binary.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use hpcsim_apps::{pop_run, PopConfig};
use hpcsim_engine::{EventQueue, SimTime};
use hpcsim_hpcc::{halo_run, imb_allreduce, HaloConfig, HaloProtocol};
use hpcsim_machine::registry::bluegene_p;
use hpcsim_machine::ExecMode;
use hpcsim_net::DType;
use hpcsim_topo::{Grid2D, Mapping};

fn bench_event_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue");
    let n = 100_000u64;
    g.throughput(Throughput::Elements(2 * n));
    g.bench_function("push_pop_100k", |b| {
        b.iter(|| {
            let mut q = EventQueue::with_capacity(n as usize);
            for i in 0..n {
                // pseudo-random times, deterministic
                q.push(SimTime::from_ns(i.wrapping_mul(2654435761) % 1_000_000), i);
            }
            let mut last = SimTime::ZERO;
            while let Some(e) = q.pop() {
                debug_assert!(e.time >= last);
                last = e.time;
            }
            black_box(last);
        })
    });
    g.finish();
}

fn bench_halo_replay(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_halo");
    g.sample_size(10);
    let m = bluegene_p();
    for &ranks in &[256usize, 1024] {
        g.bench_function(format!("ranks{ranks}"), |b| {
            b.iter(|| {
                let cfg = HaloConfig {
                    grid: Grid2D::near_square(ranks),
                    words: 2048,
                    protocol: HaloProtocol::IrecvIsend,
                    reps: 2,
                };
                black_box(halo_run(&m, ExecMode::Vn, Mapping::txyz(), &cfg));
            })
        });
    }
    g.finish();
}

fn bench_collective_replay(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_allreduce");
    g.sample_size(10);
    let m = bluegene_p();
    g.bench_function("ranks4096", |b| {
        b.iter(|| black_box(imb_allreduce(&m, ExecMode::Vn, 4096, 32 * 1024, DType::F64)));
    });
    g.finish();
}

fn bench_pop_step(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_pop_step");
    g.sample_size(10);
    let m = bluegene_p();
    g.bench_function("ranks1024", |b| {
        b.iter(|| black_box(pop_run(&m, ExecMode::Vn, 1024, 1, &PopConfig::default())));
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_halo_replay,
    bench_collective_replay,
    bench_pop_step
);
criterion_main!(benches);
