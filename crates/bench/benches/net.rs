//! Criterion benchmarks of the network hot path: route production and
//! iteration, flow acquire/release churn, and phase bulk-loading — the
//! per-message costs that dominate the event-fidelity experiments
//! (HALO Fig 2, IMB Fig 3, MD Fig 8), plus a halo-replay breakdown that
//! separates trace recording, layout construction, and replay.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use hpcsim_hpcc::{halo_phase_pressure, HaloConfig, HaloProtocol};
use hpcsim_machine::registry::bluegene_p;
use hpcsim_machine::ExecMode;
use hpcsim_mpi::{RankLayout, SimConfig, TraceSim};
use hpcsim_net::{FlowHandle, FlowTracker};
use hpcsim_topo::{Grid2D, Mapping, Torus3D};

/// A deterministic scatter of node pairs exercising all dimensions and
/// ring wraps.
fn pair_set(t: &Torus3D, n: usize) -> Vec<(usize, usize)> {
    (0..n)
        .map(|i| (i * 37 % t.nodes(), (i * 101 + 13) % t.nodes()))
        .filter(|(a, b)| a != b)
        .collect()
}

fn bench_route(c: &mut Criterion) {
    let mut g = c.benchmark_group("route");
    let t = Torus3D::new([8, 8, 16]);
    let pairs = pair_set(&t, 1024);
    g.throughput(Throughput::Elements(pairs.len() as u64));
    g.bench_function("materialize_vec", |b| {
        b.iter(|| {
            let mut hops = 0usize;
            for &(a, bn) in &pairs {
                hops += t.route(t.coord(a), t.coord(bn)).len();
            }
            black_box(hops)
        })
    });
    g.bench_function("segs_iterate", |b| {
        b.iter(|| {
            let mut hops = 0usize;
            for &(a, bn) in &pairs {
                hops += t.route_segs(t.coord(a), t.coord(bn)).links(&t).count();
            }
            black_box(hops)
        })
    });
    g.finish();
}

fn bench_acquire_release(c: &mut Criterion) {
    let mut g = c.benchmark_group("flow_tracker");
    let t = Torus3D::new([8, 8, 16]);
    let pairs = pair_set(&t, 1024);
    g.throughput(Throughput::Elements(pairs.len() as u64));
    g.bench_function("acquire_release", |b| {
        let mut tracker = FlowTracker::new(&t);
        b.iter(|| {
            let mut worst = 0u32;
            for &(a, bn) in &pairs {
                let segs = t.route_segs(t.coord(a), t.coord(bn));
                let (h, load) = tracker.acquire(segs, a, bn);
                worst = worst.max(load);
                tracker.release(h);
            }
            black_box(worst)
        })
    });
    g.finish();
}

fn bench_phase_load(c: &mut Criterion) {
    let mut g = c.benchmark_group("phase_load");
    let t = Torus3D::new([8, 8, 16]);
    let flows: Vec<(usize, usize)> = pair_set(&t, 4096);
    let handles: Vec<FlowHandle> = flows
        .iter()
        .map(|&(a, b)| FlowHandle::new(t.route_segs(t.coord(a), t.coord(b)), a, b))
        .collect();
    g.throughput(Throughput::Elements(handles.len() as u64));
    g.bench_function("sequential_acquire", |b| {
        let mut tracker = FlowTracker::new(&t);
        b.iter(|| {
            let mut worst = 0u32;
            for h in &handles {
                let (h2, load) = tracker.acquire(h.segs(), 0, 1);
                worst = worst.max(load);
                black_box(h2);
            }
            for h in &handles {
                tracker.release(FlowHandle::new(h.segs(), 0, 1));
            }
            black_box(worst)
        })
    });
    g.bench_function("bulk_diff_array", |b| {
        let mut tracker = FlowTracker::new(&t);
        b.iter(|| {
            let peak = tracker.acquire_phase(&handles);
            tracker.release_phase(&handles);
            black_box(peak)
        })
    });
    g.bench_function("halo_pressure_1024", |b| {
        let m = bluegene_p();
        b.iter(|| {
            black_box(halo_phase_pressure(&m, ExecMode::Vn, Mapping::txyz(), Grid2D::new(32, 32)))
        })
    });
    g.finish();
}

fn bench_halo_breakdown(c: &mut Criterion) {
    let mut g = c.benchmark_group("halo_breakdown");
    g.sample_size(10);
    let m = bluegene_p();
    let ranks = 512usize;
    let cfg = HaloConfig {
        grid: Grid2D::near_square(ranks),
        words: 2048,
        protocol: HaloProtocol::IrecvIsend,
        reps: 2,
    };
    let record = |cfg: &HaloConfig| {
        let grid = cfg.grid;
        let (words, protocol, reps) = (cfg.words, cfg.protocol, cfg.reps);
        TraceSim::trace_program(
            &hpcsim_mpi::FnProgram(move |mpi: &mut hpcsim_mpi::Mpi| {
                for round in 0..reps {
                    hpcsim_hpcc::halo_record_exchange(mpi, grid, words, protocol, round);
                }
            }),
            grid.size(),
            1,
        )
    };
    g.bench_function("trace_record", |b| b.iter(|| black_box(record(&cfg))));
    g.bench_function("layout_build", |b| {
        b.iter(|| black_box(RankLayout::bluegene(&m, ranks, ExecMode::Vn, Mapping::txyz())))
    });
    let traces = record(&cfg);
    let layout = RankLayout::bluegene(&m, ranks, ExecMode::Vn, Mapping::txyz());
    g.bench_function("sim_build", |b| {
        b.iter(|| {
            black_box(TraceSim::new(SimConfig {
                machine: m.clone(),
                mode: ExecMode::Vn,
                threads: 1,
                layout: layout.clone(),
            }))
        })
    });
    g.bench_function("replay", |b| {
        b.iter(|| {
            let mut sim = TraceSim::new(SimConfig {
                machine: m.clone(),
                mode: ExecMode::Vn,
                threads: 1,
                layout: layout.clone(),
            });
            black_box(sim.replay_traces(&traces))
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_route,
    bench_acquire_release,
    bench_phase_load,
    bench_halo_breakdown
);
criterion_main!(benches);
