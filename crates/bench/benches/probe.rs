//! Observability overhead: the same halo replay untraced, with the
//! disabled `NoopTracer` (must monomorphize to the untraced code), and
//! with the enabled `RingRecorder` (the real cost of recording).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hpcsim_hpcc::{halo_run, halo_run_probe, HaloConfig, HaloProtocol};
use hpcsim_machine::registry::bluegene_p;
use hpcsim_machine::ExecMode;
use hpcsim_probe::{NoopTracer, RingRecorder};
use hpcsim_topo::{Grid2D, Mapping};

fn cfg() -> HaloConfig {
    HaloConfig {
        grid: Grid2D::new(16, 8),
        words: 2048,
        protocol: HaloProtocol::IrecvIsend,
        reps: 2,
    }
}

fn bench_probe_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("probe_overhead");
    g.sample_size(20);
    let m = bluegene_p();
    g.bench_function("replay_untraced", |b| {
        b.iter(|| black_box(halo_run(&m, ExecMode::Vn, Mapping::txyz(), &cfg())))
    });
    g.bench_function("replay_noop_tracer", |b| {
        b.iter(|| {
            black_box(halo_run_probe(&m, ExecMode::Vn, Mapping::txyz(), &cfg(), &mut NoopTracer))
        })
    });
    g.bench_function("replay_ring_recorder", |b| {
        b.iter(|| {
            let mut rec = RingRecorder::new();
            black_box(halo_run_probe(&m, ExecMode::Vn, Mapping::txyz(), &cfg(), &mut rec));
        })
    });
    g.finish();
}

criterion_group!(benches, bench_probe_overhead);
criterion_main!(benches);
