//! Criterion benchmarks of the real numeric kernels.
//!
//! These time the actual Rust implementations on the host — the ground
//! truth behind the simulator's workload descriptors. One bench group per
//! HPCC kernel family that appears in Table 2 / Figure 1.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use hpcsim_kernels::{
    dgemm, fft_forward, gups_run, lu_factor, lu_solve, stream_triad, transpose, Complex,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_vec(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect()
}

fn bench_dgemm(c: &mut Criterion) {
    let mut g = c.benchmark_group("dgemm");
    for &n in &[128usize, 256] {
        let a = random_vec(n * n, 1);
        let b = random_vec(n * n, 2);
        let mut out = vec![0.0; n * n];
        g.throughput(Throughput::Elements((2 * n * n * n) as u64));
        g.bench_function(format!("n{n}"), |bch| {
            bch.iter(|| {
                dgemm(1.0, black_box(&a), black_box(&b), 0.0, &mut out, n, n, n);
                black_box(&out);
            })
        });
    }
    g.finish();
}

fn bench_stream(c: &mut Criterion) {
    let mut g = c.benchmark_group("stream_triad");
    for &n in &[1usize << 16, 1 << 20] {
        let b = random_vec(n, 3);
        let cvec = random_vec(n, 4);
        let mut a = vec![0.0; n];
        g.throughput(Throughput::Bytes(24 * n as u64));
        g.bench_function(format!("n{n}"), |bch| {
            bch.iter(|| {
                stream_triad(3.0, black_box(&b), black_box(&cvec), &mut a);
                black_box(&a);
            })
        });
    }
    g.finish();
}

fn bench_fft(c: &mut Criterion) {
    let mut g = c.benchmark_group("fft");
    for &n in &[1usize << 12, 1 << 16] {
        let sig: Vec<Complex> = random_vec(n, 5)
            .iter()
            .zip(random_vec(n, 6).iter())
            .map(|(&re, &im)| Complex::new(re, im))
            .collect();
        g.throughput(Throughput::Elements(n as u64));
        g.bench_function(format!("n{n}"), |bch| {
            bch.iter(|| {
                let mut work = sig.clone();
                fft_forward(&mut work);
                black_box(&work);
            })
        });
    }
    g.finish();
}

fn bench_lu(c: &mut Criterion) {
    let mut g = c.benchmark_group("lu_hpl");
    for &n in &[96usize, 192] {
        let a = random_vec(n * n, 7);
        let b = random_vec(n, 8);
        g.throughput(Throughput::Elements((2 * n * n * n / 3) as u64));
        g.bench_function(format!("n{n}"), |bch| {
            bch.iter(|| {
                let f = lu_factor(a.clone(), n).expect("nonsingular");
                black_box(lu_solve(&f, &b));
            })
        });
    }
    g.finish();
}

fn bench_ptrans(c: &mut Criterion) {
    let mut g = c.benchmark_group("ptrans_local");
    for &n in &[256usize, 512] {
        let a = random_vec(n * n, 9);
        let mut out = vec![0.0; n * n];
        g.throughput(Throughput::Bytes((16 * n * n) as u64));
        g.bench_function(format!("n{n}"), |bch| {
            bch.iter(|| {
                transpose(black_box(&a), n, n, &mut out);
                black_box(&out);
            })
        });
    }
    g.finish();
}

fn bench_gups(c: &mut Criterion) {
    let mut g = c.benchmark_group("randomaccess");
    g.throughput(Throughput::Elements(100_000));
    g.bench_function("log2size16_100k", |bch| {
        bch.iter(|| black_box(gups_run(16, 100_000)));
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_dgemm,
    bench_stream,
    bench_fft,
    bench_lu,
    bench_ptrans,
    bench_gups
);
criterion_main!(benches);
