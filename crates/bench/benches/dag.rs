//! Criterion benchmarks of the DAG sweep engine: compile throughput
//! (nodes/edges per second) and per-point evaluation vs event-queue
//! replay on the Fig 2 halo trace. The compile-once/evaluate-many split
//! is the whole point — a 32-point mapping sweep pays compilation once
//! and then each point is one critical-path pass.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use hpcsim_hpcc::{halo_traces, HaloConfig, HaloProtocol};
use hpcsim_machine::registry::bluegene_p;
use hpcsim_machine::{ExecMode, PerturbSpec, Perturbation, PerturbationSampler};
use hpcsim_mpi::{RankLayout, SimConfig, TraceDag, TraceSim};
use hpcsim_topo::{Grid2D, Mapping};

fn fig2_trace(ranks: usize) -> Vec<Vec<hpcsim_mpi::Op>> {
    halo_traces(&HaloConfig {
        grid: Grid2D::near_square(ranks),
        words: 2048,
        protocol: HaloProtocol::IrecvIsend,
        reps: 2,
    })
}

fn point_cfg(ranks: usize, mapping: Mapping) -> SimConfig {
    let machine = bluegene_p().with_flat_contention();
    let layout = RankLayout::bluegene(&machine, ranks, ExecMode::Vn, mapping);
    SimConfig { machine, mode: ExecMode::Vn, threads: 1, layout }
}

/// Trace → DAG compilation rate, reported as nodes/second (edge counts
/// are printed once so the throughput number has context).
fn bench_compile(c: &mut Criterion) {
    let mut g = c.benchmark_group("dag_compile");
    for &ranks in &[256usize, 1024] {
        let traces = fig2_trace(ranks);
        let stats = TraceDag::compile_world(&traces).stats();
        println!(
            "# dag_compile/ranks{ranks}: {} nodes, {} edges, {} messages",
            stats.nodes, stats.edges, stats.messages
        );
        g.throughput(Throughput::Elements(stats.nodes));
        g.bench_function(format!("ranks{ranks}"), |b| {
            b.iter(|| black_box(TraceDag::compile_world(black_box(&traces))))
        });
    }
    g.finish();
}

/// One sweep point: a single DAG evaluation vs a full event-queue
/// replay of the same trace at the same (machine, mapping, mode).
fn bench_evaluate_vs_replay(c: &mut Criterion) {
    let mut g = c.benchmark_group("dag_point");
    g.sample_size(20);
    for &ranks in &[256usize, 1024] {
        let traces = fig2_trace(ranks);
        let dag = TraceDag::compile_world(&traces);
        let cfg = point_cfg(ranks, Mapping::txyz());
        g.bench_function(format!("evaluate_ranks{ranks}"), |b| {
            b.iter(|| black_box(dag.evaluate(black_box(&cfg))))
        });
        g.bench_function(format!("replay_ranks{ranks}"), |b| {
            b.iter(|| black_box(TraceSim::new(cfg.clone()).replay_traces(black_box(&traces))))
        });
    }
    g.finish();
}

/// The full Fig 2(c,d)-shaped 8-mapping sweep from one trace: compile
/// once + 8 evaluations vs 8 replays.
fn bench_mapping_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("dag_mapping_sweep");
    g.sample_size(10);
    let ranks = 512;
    let traces = fig2_trace(ranks);
    let mappings: Vec<Mapping> = Mapping::fig2_set().iter().map(|&(_, m)| m).collect();
    g.bench_function("dag8", |b| {
        b.iter(|| {
            let dag = TraceDag::compile_world(&traces);
            for &m in &mappings {
                black_box(dag.evaluate(&point_cfg(ranks, m)));
            }
        })
    });
    g.bench_function("replay8", |b| {
        b.iter(|| {
            for &m in &mappings {
                black_box(TraceSim::new(point_cfg(ranks, m)).replay_traces(&traces));
            }
        })
    });
    g.finish();
}

/// Monte-Carlo throughput: 128 seeded perturbation samples priced
/// through the wide-lane batched evaluator (32-sample chunks) vs the
/// same samples looped one at a time, each materialised into its own
/// perturbed `MachineSpec`. The ratio is the single-worker lane term
/// of the sensitivity battery's speedup (the guard in
/// `tests/sensitivity_speedup.rs` adds the worker fan-out on top).
fn bench_perturbed(c: &mut Criterion) {
    let mut g = c.benchmark_group("dag_perturbed");
    g.sample_size(20);
    let ranks = 256;
    let traces = fig2_trace(ranks);
    let dag = TraceDag::compile_world(&traces);
    let cfg = point_cfg(ranks, Mapping::txyz());
    let sampler = PerturbationSampler::new(42, PerturbSpec::default());
    let samples: Vec<Perturbation> = (0..128u64).map(|i| sampler.sample(i)).collect();
    g.throughput(Throughput::Elements(samples.len() as u64));
    g.bench_function("batched32", |b| {
        b.iter(|| {
            for chunk in samples.chunks(32) {
                black_box(dag.evaluate_perturbed(black_box(&cfg), chunk));
            }
        })
    });
    g.bench_function("looped", |b| {
        b.iter(|| {
            for s in &samples {
                let mut c = cfg.clone();
                c.machine = s.apply_to(&cfg.machine);
                black_box(dag.evaluate(black_box(&c)));
            }
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_compile,
    bench_evaluate_vs_replay,
    bench_mapping_sweep,
    bench_perturbed
);
criterion_main!(benches);
