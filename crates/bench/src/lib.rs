//! # hpcsim-bench
//!
//! Benchmark harness for the reproduction:
//!
//! * the `repro` binary (`cargo run -p hpcsim-bench --bin repro -- all`)
//!   regenerates every table and figure of the paper and writes text +
//!   CSV artifacts;
//! * Criterion benches (`cargo bench`) time the *real* kernels
//!   (`benches/kernels.rs`) and the simulator itself
//!   (`benches/simulator.rs`).
//!
//! The library part hosts small helpers shared by both.

use std::path::PathBuf;

/// Default artifact directory for `repro` output.
pub fn default_out_dir() -> PathBuf {
    PathBuf::from("target/repro")
}

/// Parse `--paper` / `--out DIR` style flags from raw args; returns
/// (paper_scale, out_dir, remaining positional args).
pub fn parse_flags(args: &[String]) -> (bool, PathBuf, Vec<String>) {
    let mut paper = false;
    let mut out = default_out_dir();
    let mut rest = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--paper" => paper = true,
            "--quick" => paper = false,
            "--out" => {
                i += 1;
                if i < args.len() {
                    out = PathBuf::from(&args[i]);
                }
            }
            other => rest.push(other.to_string()),
        }
        i += 1;
    }
    (paper, out, rest)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_flags_and_positionals() {
        let args: Vec<String> =
            ["fig3", "--paper", "--out", "/tmp/x", "table1"].iter().map(|s| s.to_string()).collect();
        let (paper, out, rest) = parse_flags(&args);
        assert!(paper);
        assert_eq!(out, PathBuf::from("/tmp/x"));
        assert_eq!(rest, vec!["fig3".to_string(), "table1".to_string()]);
    }

    #[test]
    fn defaults_are_quick() {
        let (paper, out, rest) = parse_flags(&[]);
        assert!(!paper);
        assert_eq!(out, default_out_dir());
        assert!(rest.is_empty());
    }

    #[test]
    fn quick_flag_overrides() {
        let args: Vec<String> = ["--paper", "--quick"].iter().map(|s| s.to_string()).collect();
        let (paper, _, _) = parse_flags(&args);
        assert!(!paper);
    }
}
