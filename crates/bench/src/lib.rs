//! # hpcsim-bench
//!
//! Benchmark harness for the reproduction:
//!
//! * the `repro` binary (`cargo run -p hpcsim-bench --bin repro -- all`)
//!   regenerates every table and figure of the paper and writes text +
//!   CSV artifacts;
//! * Criterion benches (`cargo bench`) time the *real* kernels
//!   (`benches/kernels.rs`) and the simulator itself
//!   (`benches/simulator.rs`).
//!
//! The library part hosts small helpers shared by both.

use std::path::PathBuf;

/// Default artifact directory for `repro` output.
pub fn default_out_dir() -> PathBuf {
    PathBuf::from("target/repro")
}

/// Default path for the `--bench-json` wall-clock report.
pub fn default_bench_json() -> PathBuf {
    PathBuf::from("BENCH_repro.json")
}

/// Everything the `repro` CLI accepts.
#[derive(Debug, Clone)]
pub struct RunFlags {
    /// `--paper` (overridden back by a later `--quick`).
    pub paper: bool,
    /// `--out DIR` artifact directory.
    pub out: PathBuf,
    /// `--jobs N` worker count; `None` = auto (one per available core).
    pub jobs: Option<usize>,
    /// `--bench-json`: where to write the wall-clock report, if asked.
    pub bench_json: Option<PathBuf>,
    /// `--trace`: run the traced battery of each selected figure.
    pub trace: bool,
    /// `--trace-out FILE`: Chrome trace path (default `OUT/trace.json`).
    pub trace_out: Option<PathBuf>,
    /// `--metrics-out FILE`: metrics report path (default
    /// `OUT/metrics.json`).
    pub metrics_out: Option<PathBuf>,
    /// `--bench-timestamp TS`: ISO-8601 stamp recorded in the
    /// `--bench-json` report. Passed in by the harness — the binary
    /// never reads the clock itself, so untimestamped reports stay
    /// byte-reproducible.
    pub bench_timestamp: Option<String>,
    /// `--faults SEED`: arm fault injection from this seed. `None` keeps
    /// the run pristine (byte-identical to the pre-fault binary).
    pub fault_seed: Option<u64>,
    /// `--fault-profile NAME`: which fault ingredients the armed plan
    /// enables (default `mixed`). Must be one of [`FAULT_PROFILES`].
    pub fault_profile: Option<String>,
    /// `--sweep-engine NAME`: how mapping/machine sweeps evaluate their
    /// points (default `replay`). Must be one of [`SWEEP_ENGINES`].
    /// `dag` compiles each trace to a task DAG and critical-path
    /// evaluates wherever that is provably exact, falling back to
    /// replay elsewhere — output is byte-identical either way.
    pub sweep_engine: Option<String>,
    /// `--cache-dir DIR`: back the scenario cache with an on-disk
    /// store, so a second run starts warm. Output is byte-identical
    /// cold or warm. Conflicts with `--no-cache`.
    pub cache_dir: Option<PathBuf>,
    /// `--no-cache`: disable scenario memoization entirely (every
    /// query computes directly). Output is byte-identical either way.
    pub no_cache: bool,
    /// `--obs-out FILE`: write Prometheus text exposition to FILE and
    /// the structured `run_report.json` next to the artifacts; also
    /// renders the stderr summary table. Conflicts with `--no-obs`.
    pub obs_out: Option<PathBuf>,
    /// `--no-obs`: leave the harness metrics registry disabled (the
    /// default state is enabled-but-unexported). Output is
    /// byte-identical either way.
    pub no_obs: bool,
    /// `--log-level LEVEL`: stderr verbosity (default `info`). Must be
    /// one of [`LOG_LEVELS`].
    pub log_level: Option<String>,
    /// `--sensitivity SEED`: run the Monte-Carlo sensitivity battery
    /// from this seed after the selected experiments, printing the
    /// per-parameter table and writing `OUT/sensitivity.csv`. `None`
    /// skips the battery (the `--bench-json` report still runs it with
    /// seed 42 for the schema-v6 `sensitivity` entry).
    pub sensitivity: Option<u64>,
    /// `--fuzz`: run the coverage-guided adversarial fuzz battery after
    /// the selected experiments (which may be empty — `repro --fuzz`
    /// alone is valid). Corpus and findings land under
    /// `OUT/fuzz_corpus/` and `OUT/fuzz_findings/`.
    pub fuzz: bool,
    /// `--fuzz-seed SEED`: campaign root seed (default 42). Requires
    /// `--fuzz`.
    pub fuzz_seed: Option<u64>,
    /// `--fuzz-iters N`: candidate budget (default 256). Requires
    /// `--fuzz`.
    pub fuzz_iters: Option<u64>,
    /// `--fuzz-promote DIR`: additionally write each minimized finding
    /// into DIR as a regression `.fuzz` file plus a `MANIFEST.txt`
    /// entry (used to seed `tests/corpus/`). Requires `--fuzz`.
    pub fuzz_promote: Option<PathBuf>,
    /// Remaining positional args (experiment slugs).
    pub positional: Vec<String>,
}

/// Sweep engines the CLI accepts.
pub const SWEEP_ENGINES: [&str; 2] = ["replay", "dag"];

/// Log levels the CLI accepts.
pub const LOG_LEVELS: [&str; 3] = ["quiet", "info", "debug"];

/// Fault profiles the CLI accepts. `selftest-panic` is the battery
/// harness's self-test: it arms a `mixed` plan and additionally injects
/// a deliberately-panicking scenario into the resilience battery.
pub const FAULT_PROFILES: [&str; 5] = ["link", "noise", "loss", "mixed", "selftest-panic"];

fn take_value(args: &[String], i: &mut usize, flag: &str) -> Result<String, String> {
    *i += 1;
    args.get(*i).cloned().ok_or_else(|| format!("{flag}: missing value"))
}

impl RunFlags {
    /// Parse and validate raw CLI args. Malformed input comes back as a
    /// one-line diagnostic for the caller to print before exiting 2:
    /// missing flag values, non-numeric `--jobs`/`--faults`, an unknown
    /// `--fault-profile`, or an unrecognized `--flag`.
    pub fn parse(args: &[String]) -> Result<RunFlags, String> {
        let mut flags = RunFlags {
            paper: false,
            out: default_out_dir(),
            jobs: None,
            bench_json: None,
            trace: false,
            trace_out: None,
            metrics_out: None,
            bench_timestamp: None,
            fault_seed: None,
            fault_profile: None,
            sweep_engine: None,
            cache_dir: None,
            no_cache: false,
            obs_out: None,
            no_obs: false,
            log_level: None,
            sensitivity: None,
            fuzz: false,
            fuzz_seed: None,
            fuzz_iters: None,
            fuzz_promote: None,
            positional: Vec::new(),
        };
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--paper" => flags.paper = true,
                "--quick" => flags.paper = false,
                "--out" => flags.out = PathBuf::from(take_value(args, &mut i, "--out")?),
                "--jobs" => {
                    let v = take_value(args, &mut i, "--jobs")?;
                    flags.jobs = Some(v.parse::<usize>().map_err(|_| {
                        format!("--jobs: expected a non-negative worker count, got {v:?}")
                    })?);
                }
                "--bench-json" => flags.bench_json = Some(default_bench_json()),
                "--trace" => flags.trace = true,
                "--trace-out" => {
                    flags.trace = true;
                    flags.trace_out = Some(PathBuf::from(take_value(args, &mut i, "--trace-out")?));
                }
                "--metrics-out" => {
                    flags.trace = true;
                    flags.metrics_out =
                        Some(PathBuf::from(take_value(args, &mut i, "--metrics-out")?));
                }
                "--bench-timestamp" => {
                    flags.bench_timestamp = Some(take_value(args, &mut i, "--bench-timestamp")?);
                }
                "--faults" => {
                    let v = take_value(args, &mut i, "--faults")?;
                    flags.fault_seed = Some(v.parse::<u64>().map_err(|_| {
                        format!("--faults: expected an unsigned integer seed, got {v:?}")
                    })?);
                }
                "--fault-profile" => {
                    let v = take_value(args, &mut i, "--fault-profile")?;
                    if !FAULT_PROFILES.contains(&v.as_str()) {
                        return Err(format!(
                            "--fault-profile: unknown profile {v:?} (expected one of {})",
                            FAULT_PROFILES.join("|")
                        ));
                    }
                    flags.fault_profile = Some(v);
                }
                "--sweep-engine" => {
                    let v = take_value(args, &mut i, "--sweep-engine")?;
                    if !SWEEP_ENGINES.contains(&v.as_str()) {
                        return Err(format!(
                            "--sweep-engine: unknown engine {v:?} (expected one of {})",
                            SWEEP_ENGINES.join("|")
                        ));
                    }
                    flags.sweep_engine = Some(v);
                }
                "--cache-dir" => {
                    flags.cache_dir = Some(PathBuf::from(take_value(args, &mut i, "--cache-dir")?));
                }
                "--no-cache" => flags.no_cache = true,
                "--obs-out" => {
                    flags.obs_out = Some(PathBuf::from(take_value(args, &mut i, "--obs-out")?));
                }
                "--no-obs" => flags.no_obs = true,
                "--sensitivity" => {
                    let v = take_value(args, &mut i, "--sensitivity")?;
                    flags.sensitivity = Some(v.parse::<u64>().map_err(|_| {
                        format!("--sensitivity: expected an unsigned integer seed, got {v:?}")
                    })?);
                }
                "--fuzz" => flags.fuzz = true,
                "--fuzz-seed" => {
                    let v = take_value(args, &mut i, "--fuzz-seed")?;
                    flags.fuzz_seed = Some(v.parse::<u64>().map_err(|_| {
                        format!("--fuzz-seed: expected an unsigned integer seed, got {v:?}")
                    })?);
                }
                "--fuzz-iters" => {
                    let v = take_value(args, &mut i, "--fuzz-iters")?;
                    let n = v.parse::<u64>().map_err(|_| {
                        format!("--fuzz-iters: expected a positive iteration count, got {v:?}")
                    })?;
                    if n == 0 {
                        return Err("--fuzz-iters: iteration count must be positive".to_string());
                    }
                    flags.fuzz_iters = Some(n);
                }
                "--fuzz-promote" => {
                    flags.fuzz_promote =
                        Some(PathBuf::from(take_value(args, &mut i, "--fuzz-promote")?));
                }
                "--log-level" => {
                    let v = take_value(args, &mut i, "--log-level")?;
                    if !LOG_LEVELS.contains(&v.as_str()) {
                        return Err(format!(
                            "--log-level: unknown level {v:?} (expected one of {})",
                            LOG_LEVELS.join("|")
                        ));
                    }
                    flags.log_level = Some(v);
                }
                other if other.starts_with('-') => {
                    return Err(format!("unknown flag {other:?}"));
                }
                other => flags.positional.push(other.to_string()),
            }
            i += 1;
        }
        if flags.fault_profile.is_some() && flags.fault_seed.is_none() {
            return Err("--fault-profile requires --faults SEED".to_string());
        }
        if flags.cache_dir.is_some() && flags.no_cache {
            return Err("--cache-dir conflicts with --no-cache".to_string());
        }
        if flags.obs_out.is_some() && flags.no_obs {
            return Err("--obs-out conflicts with --no-obs".to_string());
        }
        if !flags.fuzz {
            if flags.fuzz_seed.is_some() {
                return Err("--fuzz-seed requires --fuzz".to_string());
            }
            if flags.fuzz_iters.is_some() {
                return Err("--fuzz-iters requires --fuzz".to_string());
            }
            if flags.fuzz_promote.is_some() {
                return Err("--fuzz-promote requires --fuzz".to_string());
            }
        }
        Ok(flags)
    }

    /// Where the Chrome trace goes: explicit `--trace-out` or
    /// `OUT/trace.json`.
    pub fn trace_path(&self) -> PathBuf {
        self.trace_out.clone().unwrap_or_else(|| self.out.join("trace.json"))
    }

    /// Where the metrics report goes: explicit `--metrics-out` or
    /// `OUT/metrics.json`.
    pub fn metrics_path(&self) -> PathBuf {
        self.metrics_out.clone().unwrap_or_else(|| self.out.join("metrics.json"))
    }

    /// Where the structured run report goes when `--obs-out` is given:
    /// `OUT/run_report.json`. Written only alongside an explicit
    /// Prometheus export, so default artifact directories stay
    /// byte-identical across runs (the cache CLI tests diff them).
    pub fn run_report_path(&self) -> PathBuf {
        self.out.join("run_report.json")
    }
}

/// Parse `--paper` / `--out DIR` style flags from raw args; returns
/// (paper_scale, out_dir, remaining positional args). Panics on invalid
/// flags — binaries should use [`RunFlags::parse`] and exit 2 instead.
pub fn parse_flags(args: &[String]) -> (bool, PathBuf, Vec<String>) {
    match RunFlags::parse(args) {
        Ok(f) => (f.paper, f.out, f.positional),
        Err(e) => panic!("{e}"),
    }
}

/// One timed phase of a repro run.
#[derive(Debug, Clone)]
pub struct PhaseTiming {
    /// Experiment slug (or "ablations").
    pub name: String,
    /// Wall-clock seconds.
    pub seconds: f64,
}

/// The `fig2_mapping_sweep` entry of the schema-v3 report: both engines
/// raced over the 32-point Fig 2(c,d) mapping scan on a contention-flat
/// BG/P (where the DAG path is live).
#[derive(Debug, Clone, Copy)]
pub struct SweepReport {
    /// Sweep points per engine.
    pub points: u64,
    /// Per-point replay wall seconds.
    pub replay_seconds: f64,
    /// Compile-once DAG wall seconds (compilation included).
    pub dag_seconds: f64,
    /// Task nodes in the largest compiled DAG.
    pub dag_nodes: u64,
    /// Dependency edges in the largest compiled DAG.
    pub dag_edges: u64,
    /// Whether every point agreed bit-for-bit across engines.
    pub engines_agree: bool,
}

impl SweepReport {
    /// Replay-over-DAG wall-clock ratio.
    pub fn speedup(&self) -> f64 {
        self.replay_seconds / self.dag_seconds.max(1e-12)
    }
}

/// The `scenario_cache` entry of the schema-v4 report: the repeated
/// Fig 2(c,d)-style query mix run cold then warm against a fresh
/// scenario cache, with bit-identity checked on every warm lookup.
#[derive(Debug, Clone, Copy)]
pub struct CacheReport {
    /// Distinct scenario specs in the mix.
    pub points: u64,
    /// Queries issued per pass (every spec twice).
    pub queries: u64,
    /// Cold-pass wall seconds (cache empty).
    pub cold_seconds: f64,
    /// Warm-pass wall seconds (same queries again).
    pub warm_seconds: f64,
    /// Tier-1 result hits across both passes.
    pub result_hits: u64,
    /// Tier-1 result misses (= evaluations actually run).
    pub result_misses: u64,
    /// Queries coalesced onto an identical in-flight evaluation.
    pub coalesced: u64,
    /// Tier-2 trace-store hits (mappings sharing a recording).
    pub trace_hits: u64,
    /// Whether every warm lookup returned the cold pass's exact bits.
    pub bitwise_identical: bool,
}

impl CacheReport {
    /// Cold-over-warm wall-clock ratio.
    pub fn speedup(&self) -> f64 {
        self.cold_seconds / self.warm_seconds.max(1e-12)
    }
}

/// The `sensitivity` entry of the schema-v6 report: the Monte-Carlo
/// perturbation battery over the Fig 2 halo DAG, racing the wide-lane
/// batched evaluator against a one-sample-at-a-time loop over the same
/// seeded samples.
#[derive(Debug, Clone, Copy)]
pub struct SensitivityReport {
    /// Perturbation samples across all parameter-group rows.
    pub samples: u64,
    /// Unperturbed makespan, microseconds.
    pub baseline_us: f64,
    /// Wall seconds for the batched (32-wide chunked, parallel) pass.
    pub batched_seconds: f64,
    /// Wall seconds re-running the same samples one at a time.
    pub looped_seconds: f64,
    /// Whether an identity sample reproduced the baseline bit-for-bit.
    pub zero_identical: bool,
    /// Fraction of parameter-group cost arrays actually re-priced.
    pub repriced_fraction: f64,
    /// Samples evaluated per lane slot allocated (1.0 = no padding).
    pub batch_occupancy: f64,
}

impl SensitivityReport {
    /// Looped-over-batched wall-clock ratio.
    pub fn speedup(&self) -> f64 {
        self.looped_seconds / self.batched_seconds.max(1e-12)
    }
}

/// The `obs` entry of the schema-v5 report: harness-level counters
/// lifted from the `hpcsim-obs` registry at the end of the run, so
/// future PRs can regress on cache hit rate and engine fallback counts,
/// not just wall-clock.
#[derive(Debug, Clone, Copy, Default)]
pub struct ObsReport {
    /// Scenario evaluations executed by the runner.
    pub scenarios: u64,
    /// Scenario evaluations isolated after panicking.
    pub scenario_panics: u64,
    /// Tier-1 cache lookups issued.
    pub cache_result_lookups: u64,
    /// Tier-1 lookups served from memory or disk.
    pub cache_result_hits: u64,
    /// Tier-1 lookups that evaluated.
    pub cache_result_misses: u64,
    /// Lookups coalesced onto an in-flight identical evaluation.
    pub cache_coalesced: u64,
    /// Disk-layer failures absorbed (reads, writes, corrupt entries).
    pub cache_disk_errors: u64,
    /// Sweep points evaluated by the DAG engine.
    pub dag_points: u64,
    /// Event-queue replays executed.
    pub replay_runs: u64,
    /// DAG-selected points sent to replay over contention exactness.
    pub fallback_contention: u64,
    /// DAG-selected points sent to replay over an armed fault plan.
    pub fallback_faults: u64,
    /// Perturbation samples priced through the batched evaluator.
    pub sens_samples: u64,
    /// Parameter-group cost arrays considered (4 per sample).
    pub sens_group_arrays: u64,
    /// Parameter-group cost arrays actually re-priced (rest copied).
    pub sens_repriced_arrays: u64,
    /// Lane slots allocated across perturbed batches (occupancy
    /// denominator).
    pub sens_lane_slots: u64,
}

impl ObsReport {
    /// Lift the counters from a registry snapshot.
    pub fn from_snapshot(snap: &hpcsim_obs::Snapshot) -> ObsReport {
        let get = |name: &str| {
            snap.counters.iter().find(|c| c.name == name).map_or(0, |c| c.value)
        };
        ObsReport {
            scenarios: get("hpcsim_scenarios_total"),
            scenario_panics: get("hpcsim_scenario_panics_total"),
            cache_result_lookups: get("hpcsim_cache_result_lookups_total"),
            cache_result_hits: get("hpcsim_cache_result_hits_total"),
            cache_result_misses: get("hpcsim_cache_result_misses_total"),
            cache_coalesced: get("hpcsim_cache_coalesced_total"),
            cache_disk_errors: get("hpcsim_cache_disk_errors_total"),
            dag_points: get("hpcsim_dag_points_total"),
            replay_runs: get("hpcsim_replay_runs_total"),
            fallback_contention: get("hpcsim_sweep_fallback_contention_total"),
            fallback_faults: get("hpcsim_sweep_fallback_faults_total"),
            sens_samples: get("hpcsim_sens_samples_total"),
            sens_group_arrays: get("hpcsim_sens_group_arrays_total"),
            sens_repriced_arrays: get("hpcsim_sens_repriced_arrays_total"),
            sens_lane_slots: get("hpcsim_sens_lane_slots_total"),
        }
    }
}

/// Render the `--bench-json` report. Hand-rolled so the harness stays
/// dependency-free; the schema is flat enough that escaping never
/// matters (names are slugs, numbers are finite).
#[allow(clippy::too_many_arguments)]
pub fn bench_json_report(
    scale: &str,
    jobs: usize,
    phases: &[PhaseTiming],
    total_seconds: f64,
    generated_at: Option<&str>,
    sweep: Option<&SweepReport>,
    cache: Option<&CacheReport>,
    sensitivity: Option<&SensitivityReport>,
    obs: Option<&ObsReport>,
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"hpcsim-bench-repro/6\",\n");
    s.push_str("  \"schema_version\": 6,\n");
    match generated_at {
        // the stamp is injected by the harness (`--bench-timestamp`);
        // without one the report stays byte-reproducible
        Some(ts) => s.push_str(&format!("  \"generated_at\": \"{}\",\n", ts.replace('"', ""))),
        None => s.push_str("  \"generated_at\": null,\n"),
    }
    s.push_str(&format!("  \"scale\": \"{scale}\",\n"));
    s.push_str(&format!("  \"jobs\": {jobs},\n"));
    s.push_str("  \"experiments\": [\n");
    for (i, p) in phases.iter().enumerate() {
        let comma = if i + 1 < phases.len() { "," } else { "" };
        s.push_str(&format!(
            "    {{\"id\": \"{}\", \"seconds\": {:.3}}}{comma}\n",
            p.name, p.seconds
        ));
    }
    s.push_str("  ],\n");
    match sweep {
        Some(w) => {
            s.push_str("  \"fig2_mapping_sweep\": {\n");
            s.push_str(&format!("    \"points\": {},\n", w.points));
            s.push_str(&format!("    \"replay_seconds\": {:.4},\n", w.replay_seconds));
            s.push_str(&format!("    \"dag_seconds\": {:.4},\n", w.dag_seconds));
            s.push_str(&format!("    \"speedup\": {:.2},\n", w.speedup()));
            s.push_str(&format!("    \"dag_nodes\": {},\n", w.dag_nodes));
            s.push_str(&format!("    \"dag_edges\": {},\n", w.dag_edges));
            s.push_str(&format!("    \"engines_agree\": {}\n", w.engines_agree));
            s.push_str("  },\n");
        }
        None => s.push_str("  \"fig2_mapping_sweep\": null,\n"),
    }
    match cache {
        Some(c) => {
            s.push_str("  \"scenario_cache\": {\n");
            s.push_str(&format!("    \"points\": {},\n", c.points));
            s.push_str(&format!("    \"queries\": {},\n", c.queries));
            s.push_str(&format!("    \"cold_seconds\": {:.4},\n", c.cold_seconds));
            s.push_str(&format!("    \"warm_seconds\": {:.4},\n", c.warm_seconds));
            s.push_str(&format!("    \"speedup\": {:.2},\n", c.speedup()));
            s.push_str(&format!("    \"result_hits\": {},\n", c.result_hits));
            s.push_str(&format!("    \"result_misses\": {},\n", c.result_misses));
            s.push_str(&format!("    \"coalesced\": {},\n", c.coalesced));
            s.push_str(&format!("    \"trace_hits\": {},\n", c.trace_hits));
            s.push_str(&format!("    \"bitwise_identical\": {}\n", c.bitwise_identical));
            s.push_str("  },\n");
        }
        None => s.push_str("  \"scenario_cache\": null,\n"),
    }
    match sensitivity {
        Some(x) => {
            s.push_str("  \"sensitivity\": {\n");
            s.push_str(&format!("    \"samples\": {},\n", x.samples));
            s.push_str(&format!("    \"baseline_us\": {:.3},\n", x.baseline_us));
            s.push_str(&format!("    \"batched_seconds\": {:.4},\n", x.batched_seconds));
            s.push_str(&format!("    \"looped_seconds\": {:.4},\n", x.looped_seconds));
            s.push_str(&format!("    \"speedup\": {:.2},\n", x.speedup()));
            s.push_str(&format!("    \"zero_identical\": {},\n", x.zero_identical));
            s.push_str(&format!("    \"repriced_fraction\": {:.4},\n", x.repriced_fraction));
            s.push_str(&format!("    \"batch_occupancy\": {:.4}\n", x.batch_occupancy));
            s.push_str("  },\n");
        }
        None => s.push_str("  \"sensitivity\": null,\n"),
    }
    match obs {
        Some(o) => {
            s.push_str("  \"obs\": {\n");
            s.push_str(&format!("    \"scenarios\": {},\n", o.scenarios));
            s.push_str(&format!("    \"scenario_panics\": {},\n", o.scenario_panics));
            s.push_str(&format!("    \"cache_result_lookups\": {},\n", o.cache_result_lookups));
            s.push_str(&format!("    \"cache_result_hits\": {},\n", o.cache_result_hits));
            s.push_str(&format!("    \"cache_result_misses\": {},\n", o.cache_result_misses));
            s.push_str(&format!("    \"cache_coalesced\": {},\n", o.cache_coalesced));
            s.push_str(&format!("    \"cache_disk_errors\": {},\n", o.cache_disk_errors));
            s.push_str(&format!("    \"dag_points\": {},\n", o.dag_points));
            s.push_str(&format!("    \"replay_runs\": {},\n", o.replay_runs));
            s.push_str(&format!("    \"fallback_contention\": {},\n", o.fallback_contention));
            s.push_str(&format!("    \"fallback_faults\": {},\n", o.fallback_faults));
            s.push_str(&format!("    \"sens_samples\": {},\n", o.sens_samples));
            s.push_str(&format!("    \"sens_group_arrays\": {},\n", o.sens_group_arrays));
            s.push_str(&format!("    \"sens_repriced_arrays\": {},\n", o.sens_repriced_arrays));
            s.push_str(&format!("    \"sens_lane_slots\": {}\n", o.sens_lane_slots));
            s.push_str("  },\n");
        }
        None => s.push_str("  \"obs\": null,\n"),
    }
    s.push_str(&format!("  \"total_seconds\": {total_seconds:.3}\n"));
    s.push_str("}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_flags_and_positionals() {
        let args: Vec<String> =
            ["fig3", "--paper", "--out", "/tmp/x", "table1"].iter().map(|s| s.to_string()).collect();
        let (paper, out, rest) = parse_flags(&args);
        assert!(paper);
        assert_eq!(out, PathBuf::from("/tmp/x"));
        assert_eq!(rest, vec!["fig3".to_string(), "table1".to_string()]);
    }

    #[test]
    fn defaults_are_quick() {
        let (paper, out, rest) = parse_flags(&[]);
        assert!(!paper);
        assert_eq!(out, default_out_dir());
        assert!(rest.is_empty());
    }

    #[test]
    fn quick_flag_overrides() {
        let args: Vec<String> = ["--paper", "--quick"].iter().map(|s| s.to_string()).collect();
        let (paper, _, _) = parse_flags(&args);
        assert!(!paper);
    }

    #[test]
    fn jobs_and_bench_json_flags() {
        let args: Vec<String> =
            ["--jobs", "4", "--bench-json", "all"].iter().map(|s| s.to_string()).collect();
        let f = RunFlags::parse(&args).expect("valid flags");
        assert_eq!(f.jobs, Some(4));
        assert_eq!(f.bench_json, Some(default_bench_json()));
        assert_eq!(f.positional, vec!["all".to_string()]);
        // a malformed count is a diagnostic, not a silent fallback
        let args: Vec<String> = ["--jobs", "lots"].iter().map(|s| s.to_string()).collect();
        let err = RunFlags::parse(&args).expect_err("bad count must be rejected");
        assert!(err.contains("--jobs"), "{err}");
        // so is a negative one
        let args: Vec<String> = ["--jobs", "-2"].iter().map(|s| s.to_string()).collect();
        assert!(RunFlags::parse(&args).is_err());
    }

    #[test]
    fn missing_values_and_unknown_flags_are_diagnosed() {
        for bad in [vec!["--out"], vec!["--jobs"], vec!["--trace-out"], vec!["--faults"]] {
            let args: Vec<String> = bad.iter().map(|s| s.to_string()).collect();
            let err = RunFlags::parse(&args).expect_err("dangling flag must be rejected");
            assert!(err.contains("missing value"), "{bad:?}: {err}");
            assert!(!err.contains('\n'), "diagnostic must be one line: {err}");
        }
        let args: Vec<String> = ["--frobnicate", "all"].iter().map(|s| s.to_string()).collect();
        let err = RunFlags::parse(&args).expect_err("unknown flag must be rejected");
        assert!(err.contains("--frobnicate"), "{err}");
    }

    #[test]
    fn fault_flags_parse_and_validate() {
        let args: Vec<String> = ["--faults", "42", "--fault-profile", "link", "fig2"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let f = RunFlags::parse(&args).expect("valid fault flags");
        assert_eq!(f.fault_seed, Some(42));
        assert_eq!(f.fault_profile.as_deref(), Some("link"));

        // --faults alone defaults the profile downstream; still valid here
        let args: Vec<String> = ["--faults", "7"].iter().map(|s| s.to_string()).collect();
        let f = RunFlags::parse(&args).expect("seed without profile");
        assert_eq!(f.fault_seed, Some(7));
        assert_eq!(f.fault_profile, None);

        // a profile with no seed is a contradiction
        let args: Vec<String> =
            ["--fault-profile", "mixed"].iter().map(|s| s.to_string()).collect();
        let err = RunFlags::parse(&args).expect_err("profile without seed");
        assert!(err.contains("--faults"), "{err}");

        // unknown profile and malformed seed
        let args: Vec<String> =
            ["--faults", "1", "--fault-profile", "meteor"].iter().map(|s| s.to_string()).collect();
        let err = RunFlags::parse(&args).expect_err("unknown profile");
        assert!(err.contains("meteor") && err.contains("mixed"), "{err}");
        let args: Vec<String> = ["--faults", "-1"].iter().map(|s| s.to_string()).collect();
        assert!(RunFlags::parse(&args).is_err());
    }

    #[test]
    fn bench_json_is_parseable_shape() {
        let phases = vec![
            PhaseTiming { name: "table2".into(), seconds: 0.51 },
            PhaseTiming { name: "fig3".into(), seconds: 1.25 },
        ];
        let s = bench_json_report("quick", 8, &phases, 1.76, None, None, None, None, None);
        assert!(s.starts_with("{\n"));
        assert!(s.ends_with("}\n"));
        assert!(s.contains("\"schema\": \"hpcsim-bench-repro/6\""));
        assert!(s.contains("\"schema_version\": 6"));
        assert!(s.contains("\"generated_at\": null"));
        assert!(s.contains("\"fig2_mapping_sweep\": null"));
        assert!(s.contains("\"scenario_cache\": null"));
        assert!(s.contains("\"sensitivity\": null"));
        assert!(s.contains("\"obs\": null"));
        assert!(s.contains("\"id\": \"table2\", \"seconds\": 0.510"));
        assert!(s.contains("\"total_seconds\": 1.760"));
        // one comma between the two experiment entries, none after the last
        assert_eq!(s.matches("},\n    {").count(), 1);
        assert!(s.contains("1.250}\n  ],"));
    }

    #[test]
    fn bench_json_records_harness_timestamp() {
        let s = bench_json_report("quick", 1, &[], 0.0, Some("2026-08-05T00:00:00Z"), None, None, None, None);
        assert!(s.contains("\"generated_at\": \"2026-08-05T00:00:00Z\""));
    }

    #[test]
    fn bench_json_records_sweep_entry() {
        let sweep = SweepReport {
            points: 32,
            replay_seconds: 0.48,
            dag_seconds: 0.012,
            dag_nodes: 12_288,
            dag_edges: 30_000,
            engines_agree: true,
        };
        assert!(sweep.speedup() > 39.0 && sweep.speedup() < 41.0);
        let s = bench_json_report("quick", 1, &[], 0.5, None, Some(&sweep), None, None, None);
        assert!(s.contains("\"fig2_mapping_sweep\": {"));
        assert!(s.contains("\"points\": 32"));
        assert!(s.contains("\"replay_seconds\": 0.4800"));
        assert!(s.contains("\"dag_seconds\": 0.0120"));
        assert!(s.contains("\"speedup\": 40.00"));
        assert!(s.contains("\"dag_nodes\": 12288"));
        assert!(s.contains("\"engines_agree\": true"));
    }

    #[test]
    fn bench_json_records_scenario_cache_entry() {
        let cache = CacheReport {
            points: 32,
            queries: 64,
            cold_seconds: 0.6,
            warm_seconds: 0.012,
            result_hits: 96,
            result_misses: 32,
            coalesced: 0,
            trace_hits: 28,
            bitwise_identical: true,
        };
        assert!(cache.speedup() > 49.0 && cache.speedup() < 51.0);
        let s = bench_json_report("quick", 1, &[], 0.7, None, None, Some(&cache), None, None);
        assert!(s.contains("\"scenario_cache\": {"));
        assert!(s.contains("\"queries\": 64"));
        assert!(s.contains("\"cold_seconds\": 0.6000"));
        assert!(s.contains("\"warm_seconds\": 0.0120"));
        assert!(s.contains("\"speedup\": 50.00"));
        assert!(s.contains("\"result_hits\": 96"));
        assert!(s.contains("\"trace_hits\": 28"));
        assert!(s.contains("\"bitwise_identical\": true"));
    }

    #[test]
    fn bench_json_records_obs_entry() {
        let obs = ObsReport {
            scenarios: 120,
            scenario_panics: 2,
            cache_result_lookups: 96,
            cache_result_hits: 64,
            cache_result_misses: 32,
            cache_coalesced: 4,
            cache_disk_errors: 0,
            dag_points: 48,
            replay_runs: 30,
            fallback_contention: 6,
            fallback_faults: 1,
            sens_samples: 1000,
            sens_group_arrays: 4000,
            sens_repriced_arrays: 1600,
            sens_lane_slots: 1024,
        };
        let s = bench_json_report("quick", 1, &[], 0.3, None, None, None, None, Some(&obs));
        assert!(s.contains("\"obs\": {"));
        assert!(s.contains("\"scenarios\": 120"));
        assert!(s.contains("\"scenario_panics\": 2"));
        assert!(s.contains("\"cache_result_lookups\": 96"));
        assert!(s.contains("\"cache_coalesced\": 4"));
        assert!(s.contains("\"dag_points\": 48"));
        assert!(s.contains("\"fallback_faults\": 1,\n"));
        assert!(s.contains("\"sens_samples\": 1000"));
        assert!(s.contains("\"sens_repriced_arrays\": 1600"));
        assert!(s.contains("\"sens_lane_slots\": 1024\n"));
    }

    #[test]
    fn bench_json_records_sensitivity_entry() {
        let sens = SensitivityReport {
            samples: 1000,
            baseline_us: 812.5,
            batched_seconds: 0.05,
            looped_seconds: 0.4,
            zero_identical: true,
            repriced_fraction: 0.4,
            batch_occupancy: 0.97,
        };
        assert!(sens.speedup() > 7.9 && sens.speedup() < 8.1);
        let s = bench_json_report("quick", 1, &[], 0.5, None, None, None, Some(&sens), None);
        assert!(s.contains("\"sensitivity\": {"));
        assert!(s.contains("\"samples\": 1000"));
        assert!(s.contains("\"baseline_us\": 812.500"));
        assert!(s.contains("\"batched_seconds\": 0.0500"));
        assert!(s.contains("\"looped_seconds\": 0.4000"));
        assert!(s.contains("\"speedup\": 8.00"));
        assert!(s.contains("\"zero_identical\": true"));
        assert!(s.contains("\"repriced_fraction\": 0.4000"));
        assert!(s.contains("\"batch_occupancy\": 0.9700"));
    }

    #[test]
    fn sensitivity_flag_parses_and_validates() {
        let args: Vec<String> =
            ["--sensitivity", "42", "fig2"].iter().map(|s| s.to_string()).collect();
        let f = RunFlags::parse(&args).expect("valid sensitivity flag");
        assert_eq!(f.sensitivity, Some(42));
        assert_eq!(f.positional, vec!["fig2".to_string()]);
        // malformed and dangling seeds are one-line diagnostics
        let args: Vec<String> =
            ["--sensitivity", "lots"].iter().map(|s| s.to_string()).collect();
        let err = RunFlags::parse(&args).expect_err("bad seed must be rejected");
        assert!(err.contains("--sensitivity"), "{err}");
        assert!(!err.contains('\n'), "diagnostic must be one line: {err}");
        let args: Vec<String> = ["--sensitivity"].iter().map(|s| s.to_string()).collect();
        assert!(RunFlags::parse(&args).unwrap_err().contains("missing value"));
    }

    #[test]
    fn obs_report_lifts_counters_from_snapshot() {
        // from_snapshot keys on metric names; absent names read as zero
        let snap = hpcsim_obs::Snapshot {
            counters: vec![
                hpcsim_obs::CounterSnap {
                    name: "hpcsim_scenarios_total",
                    help: "",
                    class: hpcsim_obs::Class::Deterministic,
                    value: 17,
                },
                hpcsim_obs::CounterSnap {
                    name: "hpcsim_replay_runs_total",
                    help: "",
                    class: hpcsim_obs::Class::Volatile,
                    value: 5,
                },
            ],
            gauges: vec![],
            hists: vec![],
        };
        let o = ObsReport::from_snapshot(&snap);
        assert_eq!(o.scenarios, 17);
        assert_eq!(o.replay_runs, 5);
        assert_eq!(o.cache_result_lookups, 0, "missing counters default to zero");
    }

    #[test]
    fn obs_flags_parse_and_validate() {
        let args: Vec<String> =
            ["--obs-out", "/tmp/m.prom", "fig2"].iter().map(|s| s.to_string()).collect();
        let f = RunFlags::parse(&args).expect("valid obs flags");
        assert_eq!(f.obs_out, Some(PathBuf::from("/tmp/m.prom")));
        assert!(!f.no_obs);
        assert_eq!(f.positional, vec!["fig2".to_string()]);

        let args: Vec<String> = ["--no-obs"].iter().map(|s| s.to_string()).collect();
        let f = RunFlags::parse(&args).expect("valid no-obs flag");
        assert!(f.no_obs);
        assert_eq!(f.obs_out, None);

        // asking for an export while disabling collection is a contradiction
        let args: Vec<String> =
            ["--obs-out", "/tmp/m.prom", "--no-obs"].iter().map(|s| s.to_string()).collect();
        let err = RunFlags::parse(&args).expect_err("conflicting obs flags");
        assert!(err.contains("--obs-out") && err.contains("--no-obs"), "{err}");
        assert!(!err.contains('\n'), "diagnostic must be one line: {err}");

        // dangling value is diagnosed like every other flag
        let args: Vec<String> = ["--obs-out"].iter().map(|s| s.to_string()).collect();
        assert!(RunFlags::parse(&args).unwrap_err().contains("missing value"));
    }

    #[test]
    fn log_level_flag_parses_and_validates() {
        for level in LOG_LEVELS {
            let args: Vec<String> =
                ["--log-level", level].iter().map(|s| s.to_string()).collect();
            let f = RunFlags::parse(&args).expect("valid log level");
            assert_eq!(f.log_level.as_deref(), Some(level));
        }
        let args: Vec<String> =
            ["--log-level", "chatty"].iter().map(|s| s.to_string()).collect();
        let err = RunFlags::parse(&args).expect_err("unknown level");
        assert!(err.contains("chatty") && err.contains("quiet|info|debug"), "{err}");
        assert!(!err.contains('\n'), "diagnostic must be one line: {err}");
        let args: Vec<String> = ["--log-level"].iter().map(|s| s.to_string()).collect();
        assert!(RunFlags::parse(&args).unwrap_err().contains("missing value"));
    }

    #[test]
    fn cache_flags_parse_and_validate() {
        let args: Vec<String> =
            ["--cache-dir", "/tmp/c", "fig2"].iter().map(|s| s.to_string()).collect();
        let f = RunFlags::parse(&args).expect("valid cache flags");
        assert_eq!(f.cache_dir, Some(PathBuf::from("/tmp/c")));
        assert!(!f.no_cache);
        assert_eq!(f.positional, vec!["fig2".to_string()]);

        let args: Vec<String> = ["--no-cache", "fig2"].iter().map(|s| s.to_string()).collect();
        let f = RunFlags::parse(&args).expect("valid no-cache flag");
        assert!(f.no_cache);
        assert_eq!(f.cache_dir, None);

        // the two are a contradiction, diagnosed on one line
        let args: Vec<String> =
            ["--cache-dir", "/tmp/c", "--no-cache"].iter().map(|s| s.to_string()).collect();
        let err = RunFlags::parse(&args).expect_err("conflicting cache flags");
        assert!(err.contains("--cache-dir") && err.contains("--no-cache"), "{err}");
        assert!(!err.contains('\n'), "diagnostic must be one line: {err}");

        // dangling value is diagnosed like every other flag
        let args: Vec<String> = ["--cache-dir"].iter().map(|s| s.to_string()).collect();
        assert!(RunFlags::parse(&args).unwrap_err().contains("missing value"));
    }

    #[test]
    fn sweep_engine_flag_parses_and_validates() {
        let args: Vec<String> =
            ["--sweep-engine", "dag", "fig2"].iter().map(|s| s.to_string()).collect();
        let f = RunFlags::parse(&args).expect("valid engine");
        assert_eq!(f.sweep_engine.as_deref(), Some("dag"));
        assert_eq!(f.positional, vec!["fig2".to_string()]);
        let args: Vec<String> =
            ["--sweep-engine", "replay"].iter().map(|s| s.to_string()).collect();
        assert_eq!(RunFlags::parse(&args).unwrap().sweep_engine.as_deref(), Some("replay"));
        // unknown engine and dangling flag are one-line diagnostics
        let args: Vec<String> =
            ["--sweep-engine", "warp"].iter().map(|s| s.to_string()).collect();
        let err = RunFlags::parse(&args).expect_err("unknown engine");
        assert!(err.contains("warp") && err.contains("replay|dag"), "{err}");
        let args: Vec<String> = ["--sweep-engine"].iter().map(|s| s.to_string()).collect();
        assert!(RunFlags::parse(&args).unwrap_err().contains("missing value"));
    }

    #[test]
    fn trace_flags_parse_and_default_paths() {
        let args: Vec<String> = ["--trace", "--out", "/tmp/r", "fig2"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let f = RunFlags::parse(&args).expect("valid trace flags");
        assert!(f.trace);
        assert_eq!(f.trace_path(), PathBuf::from("/tmp/r/trace.json"));
        assert_eq!(f.metrics_path(), PathBuf::from("/tmp/r/metrics.json"));

        let args: Vec<String> =
            ["--trace-out", "/tmp/t.json", "--metrics-out", "/tmp/m.json", "--bench-timestamp", "2026-01-01T00:00:00Z"]
                .iter()
                .map(|s| s.to_string())
                .collect();
        let f = RunFlags::parse(&args).expect("valid trace flags");
        // an explicit output path implies tracing
        assert!(f.trace);
        assert_eq!(f.trace_path(), PathBuf::from("/tmp/t.json"));
        assert_eq!(f.metrics_path(), PathBuf::from("/tmp/m.json"));
        assert_eq!(f.bench_timestamp.as_deref(), Some("2026-01-01T00:00:00Z"));
    }
}
