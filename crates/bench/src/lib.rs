//! # hpcsim-bench
//!
//! Benchmark harness for the reproduction:
//!
//! * the `repro` binary (`cargo run -p hpcsim-bench --bin repro -- all`)
//!   regenerates every table and figure of the paper and writes text +
//!   CSV artifacts;
//! * Criterion benches (`cargo bench`) time the *real* kernels
//!   (`benches/kernels.rs`) and the simulator itself
//!   (`benches/simulator.rs`).
//!
//! The library part hosts small helpers shared by both.

use std::path::PathBuf;

/// Default artifact directory for `repro` output.
pub fn default_out_dir() -> PathBuf {
    PathBuf::from("target/repro")
}

/// Default path for the `--bench-json` wall-clock report.
pub fn default_bench_json() -> PathBuf {
    PathBuf::from("BENCH_repro.json")
}

/// Everything the `repro` CLI accepts.
#[derive(Debug, Clone)]
pub struct RunFlags {
    /// `--paper` (overridden back by a later `--quick`).
    pub paper: bool,
    /// `--out DIR` artifact directory.
    pub out: PathBuf,
    /// `--jobs N` worker count; `None` = auto (one per available core).
    pub jobs: Option<usize>,
    /// `--bench-json`: where to write the wall-clock report, if asked.
    pub bench_json: Option<PathBuf>,
    /// `--trace`: run the traced battery of each selected figure.
    pub trace: bool,
    /// `--trace-out FILE`: Chrome trace path (default `OUT/trace.json`).
    pub trace_out: Option<PathBuf>,
    /// `--metrics-out FILE`: metrics report path (default
    /// `OUT/metrics.json`).
    pub metrics_out: Option<PathBuf>,
    /// `--bench-timestamp TS`: ISO-8601 stamp recorded in the
    /// `--bench-json` report. Passed in by the harness — the binary
    /// never reads the clock itself, so untimestamped reports stay
    /// byte-reproducible.
    pub bench_timestamp: Option<String>,
    /// Remaining positional args (experiment slugs).
    pub positional: Vec<String>,
}

impl RunFlags {
    /// Parse raw CLI args. Unknown `--flags` are kept as positionals so
    /// the caller's usage check can reject them with context.
    pub fn parse(args: &[String]) -> RunFlags {
        let mut flags = RunFlags {
            paper: false,
            out: default_out_dir(),
            jobs: None,
            bench_json: None,
            trace: false,
            trace_out: None,
            metrics_out: None,
            bench_timestamp: None,
            positional: Vec::new(),
        };
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--paper" => flags.paper = true,
                "--quick" => flags.paper = false,
                "--out" => {
                    i += 1;
                    if i < args.len() {
                        flags.out = PathBuf::from(&args[i]);
                    }
                }
                "--jobs" => {
                    i += 1;
                    flags.jobs = args.get(i).and_then(|v| v.parse::<usize>().ok());
                }
                "--bench-json" => flags.bench_json = Some(default_bench_json()),
                "--trace" => flags.trace = true,
                "--trace-out" => {
                    i += 1;
                    flags.trace = true;
                    flags.trace_out = args.get(i).map(PathBuf::from);
                }
                "--metrics-out" => {
                    i += 1;
                    flags.trace = true;
                    flags.metrics_out = args.get(i).map(PathBuf::from);
                }
                "--bench-timestamp" => {
                    i += 1;
                    flags.bench_timestamp = args.get(i).cloned();
                }
                other => flags.positional.push(other.to_string()),
            }
            i += 1;
        }
        flags
    }

    /// Where the Chrome trace goes: explicit `--trace-out` or
    /// `OUT/trace.json`.
    pub fn trace_path(&self) -> PathBuf {
        self.trace_out.clone().unwrap_or_else(|| self.out.join("trace.json"))
    }

    /// Where the metrics report goes: explicit `--metrics-out` or
    /// `OUT/metrics.json`.
    pub fn metrics_path(&self) -> PathBuf {
        self.metrics_out.clone().unwrap_or_else(|| self.out.join("metrics.json"))
    }
}

/// Parse `--paper` / `--out DIR` style flags from raw args; returns
/// (paper_scale, out_dir, remaining positional args).
pub fn parse_flags(args: &[String]) -> (bool, PathBuf, Vec<String>) {
    let f = RunFlags::parse(args);
    (f.paper, f.out, f.positional)
}

/// One timed phase of a repro run.
#[derive(Debug, Clone)]
pub struct PhaseTiming {
    /// Experiment slug (or "ablations").
    pub name: String,
    /// Wall-clock seconds.
    pub seconds: f64,
}

/// Render the `--bench-json` report. Hand-rolled so the harness stays
/// dependency-free; the schema is flat enough that escaping never
/// matters (names are slugs, numbers are finite).
pub fn bench_json_report(
    scale: &str,
    jobs: usize,
    phases: &[PhaseTiming],
    total_seconds: f64,
    generated_at: Option<&str>,
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"hpcsim-bench-repro/2\",\n");
    s.push_str("  \"schema_version\": 2,\n");
    match generated_at {
        // the stamp is injected by the harness (`--bench-timestamp`);
        // without one the report stays byte-reproducible
        Some(ts) => s.push_str(&format!("  \"generated_at\": \"{}\",\n", ts.replace('"', ""))),
        None => s.push_str("  \"generated_at\": null,\n"),
    }
    s.push_str(&format!("  \"scale\": \"{scale}\",\n"));
    s.push_str(&format!("  \"jobs\": {jobs},\n"));
    s.push_str("  \"experiments\": [\n");
    for (i, p) in phases.iter().enumerate() {
        let comma = if i + 1 < phases.len() { "," } else { "" };
        s.push_str(&format!(
            "    {{\"id\": \"{}\", \"seconds\": {:.3}}}{comma}\n",
            p.name, p.seconds
        ));
    }
    s.push_str("  ],\n");
    s.push_str(&format!("  \"total_seconds\": {total_seconds:.3}\n"));
    s.push_str("}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_flags_and_positionals() {
        let args: Vec<String> =
            ["fig3", "--paper", "--out", "/tmp/x", "table1"].iter().map(|s| s.to_string()).collect();
        let (paper, out, rest) = parse_flags(&args);
        assert!(paper);
        assert_eq!(out, PathBuf::from("/tmp/x"));
        assert_eq!(rest, vec!["fig3".to_string(), "table1".to_string()]);
    }

    #[test]
    fn defaults_are_quick() {
        let (paper, out, rest) = parse_flags(&[]);
        assert!(!paper);
        assert_eq!(out, default_out_dir());
        assert!(rest.is_empty());
    }

    #[test]
    fn quick_flag_overrides() {
        let args: Vec<String> = ["--paper", "--quick"].iter().map(|s| s.to_string()).collect();
        let (paper, _, _) = parse_flags(&args);
        assert!(!paper);
    }

    #[test]
    fn jobs_and_bench_json_flags() {
        let args: Vec<String> =
            ["--jobs", "4", "--bench-json", "all"].iter().map(|s| s.to_string()).collect();
        let f = RunFlags::parse(&args);
        assert_eq!(f.jobs, Some(4));
        assert_eq!(f.bench_json, Some(default_bench_json()));
        assert_eq!(f.positional, vec!["all".to_string()]);
        // a malformed count falls back to auto rather than crashing
        let args: Vec<String> = ["--jobs", "lots"].iter().map(|s| s.to_string()).collect();
        assert_eq!(RunFlags::parse(&args).jobs, None);
    }

    #[test]
    fn bench_json_is_parseable_shape() {
        let phases = vec![
            PhaseTiming { name: "table2".into(), seconds: 0.51 },
            PhaseTiming { name: "fig3".into(), seconds: 1.25 },
        ];
        let s = bench_json_report("quick", 8, &phases, 1.76, None);
        assert!(s.starts_with("{\n"));
        assert!(s.ends_with("}\n"));
        assert!(s.contains("\"schema\": \"hpcsim-bench-repro/2\""));
        assert!(s.contains("\"schema_version\": 2"));
        assert!(s.contains("\"generated_at\": null"));
        assert!(s.contains("\"id\": \"table2\", \"seconds\": 0.510"));
        assert!(s.contains("\"total_seconds\": 1.760"));
        // one comma between the two experiment entries, none after the last
        assert_eq!(s.matches("},\n    {").count(), 1);
        assert!(s.contains("1.250}\n  ],"));
    }

    #[test]
    fn bench_json_records_harness_timestamp() {
        let s = bench_json_report("quick", 1, &[], 0.0, Some("2026-08-05T00:00:00Z"));
        assert!(s.contains("\"generated_at\": \"2026-08-05T00:00:00Z\""));
    }

    #[test]
    fn trace_flags_parse_and_default_paths() {
        let args: Vec<String> = ["--trace", "--out", "/tmp/r", "fig2"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let f = RunFlags::parse(&args);
        assert!(f.trace);
        assert_eq!(f.trace_path(), PathBuf::from("/tmp/r/trace.json"));
        assert_eq!(f.metrics_path(), PathBuf::from("/tmp/r/metrics.json"));

        let args: Vec<String> =
            ["--trace-out", "/tmp/t.json", "--metrics-out", "/tmp/m.json", "--bench-timestamp", "2026-01-01T00:00:00Z"]
                .iter()
                .map(|s| s.to_string())
                .collect();
        let f = RunFlags::parse(&args);
        // an explicit output path implies tracing
        assert!(f.trace);
        assert_eq!(f.trace_path(), PathBuf::from("/tmp/t.json"));
        assert_eq!(f.metrics_path(), PathBuf::from("/tmp/m.json"));
        assert_eq!(f.bench_timestamp.as_deref(), Some("2026-01-01T00:00:00Z"));
    }
}
