//! Regenerate the paper's tables and figures.
//!
//! ```text
//! repro all                 # everything, quick scale
//! repro fig3 table3         # selected experiments
//! repro all --paper         # the paper's process counts (slow)
//! repro all --out results/  # artifact directory (default target/repro)
//! repro all --jobs 1        # sequential (output is identical at any N)
//! repro all --bench-json    # write BENCH_repro.json wall-clock report
//! repro fig2 --trace        # also run the traced battery: Chrome
//!                           # trace + span CSV + metrics + breakdowns
//! repro fig2 --trace-out t.json --metrics-out m.json
//! ```
//!
//! Each experiment prints its rendered tables/figure data to stdout and
//! writes CSV files to the artifact directory. Experiments fan their
//! simulation points out over `--jobs` workers (default: one per
//! available core); results are assembled in a fixed order, so the
//! artifacts are byte-identical regardless of the worker count.

use hpcsim_bench::{bench_json_report, PhaseTiming, RunFlags};
use hpcsim_core::{run_experiment, set_jobs, ExperimentId, Scale};
use std::time::Instant;

fn usage() -> ! {
    eprintln!(
        "usage: repro [--paper] [--out DIR] [--jobs N] [--bench-json] [--bench-timestamp TS] \
         [--trace] [--trace-out FILE] [--metrics-out FILE] \
         all|table1|table2|fig1|fig2|fig3|top500|fig4|fig5|fig6|fig7|fig8|table3|ablations ..."
    );
    std::process::exit(2);
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let flags = RunFlags::parse(&raw);
    if flags.positional.is_empty() {
        usage();
    }
    if let Some(n) = flags.jobs {
        set_jobs(n);
    }
    let scale = if flags.paper { Scale::Paper } else { Scale::Quick };
    let out_dir = &flags.out;

    let want_ablations = flags.positional.iter().any(|p| p == "ablations" || p == "all");
    let ids: Vec<ExperimentId> = if flags.positional.iter().any(|p| p == "all") {
        ExperimentId::all().to_vec()
    } else {
        flags
            .positional
            .iter()
            .filter(|p| p.as_str() != "ablations")
            .map(|p| ExperimentId::from_slug(p).unwrap_or_else(|| usage()))
            .collect()
    };

    println!("# Early Evaluation of IBM BlueGene/P (SC08) — reproduction run");
    println!(
        "# scale: {scale:?}; jobs: {}; artifacts: {}",
        hpcsim_core::jobs(),
        out_dir.display()
    );
    let battery_start = Instant::now();
    let mut timings: Vec<PhaseTiming> = Vec::new();
    for id in ids {
        let start = Instant::now();
        let artifact = run_experiment(id, scale);
        print!("{}", artifact.render());
        let seconds = start.elapsed().as_secs_f64();
        match artifact.write_csv(out_dir) {
            Ok(paths) => {
                println!("# {}: {} artifact file(s) in {seconds:.1}s\n", id.slug(), paths.len());
            }
            Err(e) => eprintln!("# {}: CSV write failed: {e}", id.slug()),
        }
        timings.push(PhaseTiming { name: id.slug().to_string(), seconds });
    }
    if want_ablations {
        let start = Instant::now();
        let ranks = if flags.paper { 2048 } else { 512 };
        let table = hpcsim_core::ablation_table(ranks);
        print!("{}", table.render());
        let _ = std::fs::create_dir_all(out_dir);
        let _ = std::fs::write(out_dir.join("ablations.csv"), table.to_csv());
        let seconds = start.elapsed().as_secs_f64();
        println!("# ablations: done in {seconds:.1}s\n");
        timings.push(PhaseTiming { name: "ablations".to_string(), seconds });
    }

    if flags.trace {
        let start = Instant::now();
        run_traced_battery(&flags, scale);
        timings
            .push(PhaseTiming { name: "trace".to_string(), seconds: start.elapsed().as_secs_f64() });
    }

    let total = battery_start.elapsed().as_secs_f64();
    println!(
        "# total: {} experiment(s) in {total:.1}s (jobs={})",
        timings.len(),
        hpcsim_core::jobs()
    );
    if let Some(path) = &flags.bench_json {
        let scale_name = if flags.paper { "paper" } else { "quick" };
        let report = bench_json_report(
            scale_name,
            hpcsim_core::jobs(),
            &timings,
            total,
            flags.bench_timestamp.as_deref(),
        );
        match std::fs::write(path, report) {
            Ok(()) => println!("# wall-clock report: {}", path.display()),
            Err(e) => eprintln!("# bench-json write failed: {e}"),
        }
    }
}

/// Run the traced battery of every selected figure that has one, write
/// the Chrome trace + span CSV + metrics report, and print the time
/// breakdowns. Everything tracing adds to stdout is `# `-prefixed so
/// the untraced output stays byte-identical after comment stripping.
fn run_traced_battery(flags: &RunFlags, scale: Scale) {
    let selected: Vec<ExperimentId> = hpcsim_core::traceable()
        .into_iter()
        .filter(|id| {
            flags.positional.iter().any(|p| p == "all" || p == id.slug())
        })
        .collect();
    if selected.is_empty() {
        println!("# trace: none of the selected experiments has a traced battery");
        return;
    }
    let reports: Vec<hpcsim_core::TraceReport> =
        selected.iter().filter_map(|&id| hpcsim_core::trace_experiment(id, scale)).collect();

    for report in &reports {
        let table = hpcsim_core::breakdown_table(report);
        for line in table.render().lines() {
            println!("# {line}");
        }
        let _ = std::fs::create_dir_all(&flags.out);
        let path = flags.out.join(format!("{}_breakdown.csv", report.id.slug()));
        if let Err(e) = std::fs::write(&path, table.to_csv()) {
            eprintln!("# trace: breakdown CSV write failed: {e}");
        }
    }

    let trace_path = flags.trace_path();
    let metrics_path = flags.metrics_path();
    for path in [&trace_path, &metrics_path] {
        if let Some(dir) = path.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
    }

    let trace = hpcsim_core::chrome_json(&reports);
    if let Err(e) = hpcsim_probe::validate_trace(&trace) {
        eprintln!("# trace: generated Chrome trace failed validation: {e}");
        std::process::exit(1);
    }
    match std::fs::write(&trace_path, &trace) {
        Ok(()) => println!("# trace: Chrome trace (Perfetto-loadable): {}", trace_path.display()),
        Err(e) => eprintln!("# trace: write failed: {e}"),
    }
    let spans_path = flags.out.join("trace_spans.csv");
    let _ = std::fs::write(&spans_path, hpcsim_core::spans_csv(&reports));
    println!("# trace: span CSV: {}", spans_path.display());

    match std::fs::write(&metrics_path, hpcsim_core::metrics_json(&reports)) {
        Ok(()) => println!("# trace: metrics report: {}", metrics_path.display()),
        Err(e) => eprintln!("# trace: metrics write failed: {e}"),
    }
}
