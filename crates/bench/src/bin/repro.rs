//! Regenerate the paper's tables and figures.
//!
//! ```text
//! repro all                 # everything, quick scale
//! repro fig3 table3         # selected experiments
//! repro all --paper         # the paper's process counts (slow)
//! repro all --out results/  # artifact directory (default target/repro)
//! repro all --jobs 1        # sequential (output is identical at any N)
//! repro all --bench-json    # write BENCH_repro.json wall-clock report
//! repro fig2 --trace        # also run the traced battery: Chrome
//!                           # trace + span CSV + metrics + breakdowns
//! repro fig2 --trace-out t.json --metrics-out m.json
//! repro fig2 --faults 42    # fault injection (mixed profile) + the
//!                           # resilience battery and resilience.csv
//! repro fig2 --faults 42 --fault-profile link
//! repro fig2 --sweep-engine dag  # DAG sweep engine (same output, less
//!                           # time on mapping/machine scans)
//! repro fig2 --cache-dir .cache  # disk-backed scenario cache: a second
//!                           # run starts warm (same output, less time)
//! repro fig2 --no-cache     # disable scenario memoization entirely
//! repro fig2 --obs-out m.prom    # harness metrics: Prometheus text to
//!                           # m.prom, run_report.json next to the CSVs,
//!                           # summary table on stderr
//! repro fig2 --no-obs       # keep the metrics registry disabled
//! repro fig2 --log-level quiet   # errors only (also: info, debug)
//! repro fig2 --sensitivity 42    # Monte-Carlo sensitivity battery:
//!                           # per-parameter table + sensitivity.csv
//! ```
//!
//! Each experiment prints its rendered tables/figure data to stdout and
//! writes CSV files to the artifact directory. Experiments fan their
//! simulation points out over `--jobs` workers (default: one per
//! available core); results are assembled in a fixed order, so the
//! artifacts are byte-identical regardless of the worker count.

use hpcsim_bench::{
    bench_json_report, CacheReport, ObsReport, PhaseTiming, RunFlags, SensitivityReport,
    SweepReport,
};
use hpcsim_core::{
    log_error, log_warn, run_experiment, set_jobs, set_log_level, set_sweep_engine, ExperimentId,
    LogLevel, Scale, SweepEngine,
};
use hpcsim_faults::{FaultPlan, FaultProfile};
use hpcsim_obs as obs;
use std::time::Instant;

fn usage() -> ! {
    log_error!(
        "usage: repro [--paper] [--out DIR] [--jobs N] [--bench-json] [--bench-timestamp TS] \
         [--sweep-engine replay|dag] [--cache-dir DIR | --no-cache] \
         [--trace] [--trace-out FILE] [--metrics-out FILE] \
         [--faults SEED] [--fault-profile link|noise|loss|mixed] \
         [--obs-out FILE | --no-obs] [--log-level quiet|info|debug] [--sensitivity SEED] \
         [--fuzz] [--fuzz-seed SEED] [--fuzz-iters N] [--fuzz-promote DIR] \
         all|table1|table2|fig1|fig2|fig3|top500|fig4|fig5|fig6|fig7|fig8|table3|ablations ..."
    );
    std::process::exit(2);
}

/// Fail early (exit 2) when an output file can't be created, instead of
/// discovering it after minutes of simulation.
fn ensure_writable(path: &std::path::Path) {
    let attempt = || -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        std::fs::OpenOptions::new().write(true).create(true).truncate(false).open(path).map(|_| ())
    };
    if let Err(e) = attempt() {
        log_error!("repro: {}: not writable: {e}", path.display());
        std::process::exit(2);
    }
}

/// Fail early (exit 2) when the scenario-cache directory can't take
/// writes — same convention as the trace/metrics paths: discover the
/// problem before the simulation, not after it.
fn ensure_cache_dir(dir: &std::path::Path) {
    let attempt = || -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let probe = dir.join(".write-probe");
        std::fs::write(&probe, b"")?;
        std::fs::remove_file(&probe)
    };
    if let Err(e) = attempt() {
        log_error!("repro: {}: not writable: {e}", dir.display());
        std::process::exit(2);
    }
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let flags = match RunFlags::parse(&raw) {
        Ok(f) => f,
        Err(e) => {
            log_error!("repro: {e}");
            usage();
        }
    };
    if let Some(level) = &flags.log_level {
        set_log_level(LogLevel::parse(level).expect("RunFlags::parse validated the level"));
    }
    // The registry is on by default: ~one relaxed atomic load per
    // counter site, bounded by the <2% guard in obs_overhead.rs.
    if !flags.no_obs {
        obs::set_enabled(true);
    }
    // `repro --fuzz` with no experiment slugs is a valid run: the fuzz
    // battery is self-contained.
    if flags.positional.is_empty() && !flags.fuzz {
        usage();
    }
    if let Some(n) = flags.jobs {
        set_jobs(n);
    }
    if let Some(name) = &flags.sweep_engine {
        let engine = SweepEngine::parse(name).expect("RunFlags::parse validated the engine");
        set_sweep_engine(engine);
    }
    let scale = if flags.paper { Scale::Paper } else { Scale::Quick };
    let out_dir = &flags.out;
    if flags.trace {
        ensure_writable(&flags.trace_path());
        ensure_writable(&flags.metrics_path());
    }
    if let Some(path) = &flags.obs_out {
        ensure_writable(path);
        ensure_writable(&flags.run_report_path());
    }
    let mut cache_cfg = hpcsim_cache::CacheConfig::default();
    if flags.no_cache {
        cache_cfg.enabled = false;
    }
    if let Some(dir) = &flags.cache_dir {
        ensure_cache_dir(dir);
        cache_cfg.dir = Some(dir.clone());
    }
    hpcsim_cache::configure(cache_cfg);

    let want_ablations = flags.positional.iter().any(|p| p == "ablations" || p == "all");
    let ids: Vec<ExperimentId> = if flags.positional.iter().any(|p| p == "all") {
        ExperimentId::all().to_vec()
    } else {
        flags
            .positional
            .iter()
            .filter(|p| p.as_str() != "ablations")
            .map(|p| {
                ExperimentId::from_slug(p).unwrap_or_else(|| {
                    log_error!("repro: unknown experiment {p:?}");
                    usage()
                })
            })
            .collect()
    };

    println!("# Early Evaluation of IBM BlueGene/P (SC08) — reproduction run");
    println!(
        "# scale: {scale:?}; jobs: {}; artifacts: {}",
        hpcsim_core::jobs(),
        out_dir.display()
    );
    let battery_start = Instant::now();
    let mut timings: Vec<PhaseTiming> = Vec::new();
    for id in ids {
        let start = Instant::now();
        let artifact = run_experiment(id, scale);
        print!("{}", artifact.render());
        let seconds = start.elapsed().as_secs_f64();
        match artifact.write_csv(out_dir) {
            Ok(paths) => {
                println!("# {}: {} artifact file(s) in {seconds:.1}s\n", id.slug(), paths.len());
            }
            Err(e) => log_warn!("# {}: CSV write failed: {e}", id.slug()),
        }
        timings.push(PhaseTiming { name: id.slug().to_string(), seconds });
    }
    if want_ablations {
        let start = Instant::now();
        let ranks = if flags.paper { 2048 } else { 512 };
        let table = hpcsim_core::ablation_table(ranks);
        print!("{}", table.render());
        let _ = std::fs::create_dir_all(out_dir);
        let _ = std::fs::write(out_dir.join("ablations.csv"), table.to_csv());
        let seconds = start.elapsed().as_secs_f64();
        println!("# ablations: done in {seconds:.1}s\n");
        timings.push(PhaseTiming { name: "ablations".to_string(), seconds });
    }

    if flags.trace {
        let start = Instant::now();
        run_traced_battery(&flags, scale);
        timings
            .push(PhaseTiming { name: "trace".to_string(), seconds: start.elapsed().as_secs_f64() });
    }

    let mut battery_ok = true;
    if flags.fault_seed.is_some() {
        let start = Instant::now();
        battery_ok = run_resilience(&flags, scale);
        timings.push(PhaseTiming {
            name: "resilience".to_string(),
            seconds: start.elapsed().as_secs_f64(),
        });
    }

    if flags.fuzz {
        let start = Instant::now();
        battery_ok &= run_fuzz_battery(&flags);
        timings
            .push(PhaseTiming { name: "fuzz".to_string(), seconds: start.elapsed().as_secs_f64() });
    }

    let mut sens_stats: Option<hpcsim_core::SensitivityStats> = None;
    if let Some(seed) = flags.sensitivity {
        let start = Instant::now();
        sens_stats = Some(run_sensitivity(&flags, scale, seed));
        timings.push(PhaseTiming {
            name: "sensitivity".to_string(),
            seconds: start.elapsed().as_secs_f64(),
        });
    }

    let total = battery_start.elapsed().as_secs_f64();
    println!(
        "# total: {} experiment(s) in {total:.1}s (jobs={})",
        timings.len(),
        hpcsim_core::jobs()
    );
    // One greppable line per run so the CI smoke can assert the warm
    // run actually hit (`# `-prefixed: stripped output stays identical
    // cold, warm, or with the cache off).
    if flags.no_cache {
        println!("# scenario cache: disabled (--no-cache)");
    } else {
        let s = hpcsim_cache::global().stats();
        println!(
            "# scenario cache: {} result hits ({} disk), {} misses, {} coalesced; \
             traces: {} hits ({} disk), {} misses",
            s.result_hits,
            s.disk_result_hits,
            s.result_misses,
            s.coalesced,
            s.trace_hits,
            s.disk_trace_hits,
            s.trace_misses
        );
    }
    if let Some(path) = &flags.bench_json {
        let scale_name = if flags.paper { "paper" } else { "quick" };
        // Race both sweep engines over the Fig 2(c,d) mapping scan on a
        // contention-flat BG/P so the DAG speedup (and exactness) is
        // tracked with every recorded report.
        let s = hpcsim_core::fig2_mapping_sweep(scale);
        let sweep = SweepReport {
            points: s.points,
            replay_seconds: s.replay_seconds,
            dag_seconds: s.dag_seconds,
            dag_nodes: s.dag_nodes,
            dag_edges: s.dag_edges,
            engines_agree: s.engines_agree,
        };
        println!(
            "# fig2 mapping sweep: {} points; replay {:.3}s, dag {:.3}s ({:.1}x); engines agree: {}",
            sweep.points,
            sweep.replay_seconds,
            sweep.dag_seconds,
            sweep.speedup(),
            sweep.engines_agree
        );
        // Run the repeated query mix cold then warm against a fresh
        // cache so the memoization speedup (and bit-identity) is
        // tracked with every recorded report.
        let c = hpcsim_core::scenario_cache_battery(scale);
        let cache = CacheReport {
            points: c.points,
            queries: c.queries,
            cold_seconds: c.cold_seconds,
            warm_seconds: c.warm_seconds,
            result_hits: c.result_hits,
            result_misses: c.result_misses,
            coalesced: c.coalesced,
            trace_hits: c.trace_hits,
            bitwise_identical: c.bitwise_identical,
        };
        println!(
            "# scenario cache battery: {} points x2; cold {:.3}s, warm {:.3}s ({:.0}x); \
             bit-identical: {}",
            cache.points,
            cache.cold_seconds,
            cache.warm_seconds,
            cache.speedup(),
            cache.bitwise_identical
        );
        // Track the batched-over-looped Monte-Carlo throughput with
        // every recorded report. An explicit `--sensitivity` run is
        // reused; otherwise the battery runs here from the default
        // seed.
        let x = sens_stats
            .take()
            .unwrap_or_else(|| hpcsim_core::sensitivity_battery(scale, 42));
        let sens = SensitivityReport {
            samples: x.samples,
            baseline_us: x.baseline_us,
            batched_seconds: x.batched_seconds,
            looped_seconds: x.looped_seconds,
            zero_identical: x.zero_identical,
            repriced_fraction: x.repriced_fraction,
            batch_occupancy: x.batch_occupancy,
        };
        println!(
            "# sensitivity battery: {} samples; batched {:.3}s, looped {:.3}s ({:.1}x); \
             zero-identical: {}; repriced {:.0}% of arrays, occupancy {:.0}%",
            sens.samples,
            sens.batched_seconds,
            sens.looped_seconds,
            sens.speedup(),
            sens.zero_identical,
            100.0 * sens.repriced_fraction,
            100.0 * sens.batch_occupancy
        );
        let obs_report = (!flags.no_obs).then(|| ObsReport::from_snapshot(&obs::snapshot()));
        let report = bench_json_report(
            scale_name,
            hpcsim_core::jobs(),
            &timings,
            total,
            flags.bench_timestamp.as_deref(),
            Some(&sweep),
            Some(&cache),
            Some(&sens),
            obs_report.as_ref(),
        );
        match std::fs::write(path, report) {
            Ok(()) => println!("# wall-clock report: {}", path.display()),
            Err(e) => log_warn!("# bench-json write failed: {e}"),
        }
    }
    if let Some(prom_path) = &flags.obs_out {
        // Snapshot last so the export covers everything the process did,
        // including the bench batteries above.
        let snap = obs::snapshot();
        match std::fs::write(prom_path, obs::prometheus_text(&snap)) {
            Ok(()) => println!("# obs: Prometheus metrics: {}", prom_path.display()),
            Err(e) => log_warn!("# obs: Prometheus write failed: {e}"),
        }
        let report_path = flags.run_report_path();
        let _ = std::fs::create_dir_all(&flags.out);
        match std::fs::write(&report_path, obs::run_report_json(&snap)) {
            Ok(()) => println!("# obs: run report: {}", report_path.display()),
            Err(e) => log_warn!("# obs: run report write failed: {e}"),
        }
        eprint!("{}", obs::summary_table(&snap));
    }
    if !battery_ok {
        std::process::exit(1);
    }
}

/// The armed fault plan, when `--faults` was given. `selftest-panic`
/// arms a mixed plan (the panic injection lives in the battery, not the
/// plan).
fn fault_plan(flags: &RunFlags) -> Option<FaultPlan> {
    let seed = flags.fault_seed?;
    let profile = match flags.fault_profile.as_deref() {
        Some("link") => FaultProfile::Link,
        Some("noise") => FaultProfile::Noise,
        Some("loss") => FaultProfile::Loss,
        _ => FaultProfile::Mixed,
    };
    Some(FaultPlan::new(seed, profile))
}

/// Run the resilience battery: the Fig 2 halo sweep pristine and under
/// every fault profile, with per-scenario panic isolation. Prints the
/// slowdown table (`# `-prefixed), writes `resilience.csv`, and reports
/// any scenario failure on stderr. Returns false iff a scenario failed.
fn run_resilience(flags: &RunFlags, scale: Scale) -> bool {
    let seed = flags.fault_seed.expect("caller checked --faults");
    let inject_panic = flags.fault_profile.as_deref() == Some("selftest-panic");
    let report = hpcsim_core::resilience_battery(seed, scale, inject_panic);
    for line in report.table.render().lines() {
        println!("# {line}");
    }
    let _ = std::fs::create_dir_all(&flags.out);
    let path = flags.out.join("resilience.csv");
    match std::fs::write(&path, report.table.to_csv()) {
        Ok(()) => println!("# resilience: summary CSV: {}", path.display()),
        Err(e) => log_warn!("# resilience: CSV write failed: {e}"),
    }
    for e in &report.errors {
        log_error!("# resilience: scenario {} ({}) failed: {}", e.index, e.label, e.message);
    }
    report.all_ok()
}

/// Run the coverage-guided fuzz battery: a deterministic campaign from
/// `(--fuzz-seed, --fuzz-iters)`, corpus artifacts under
/// `OUT/fuzz_corpus/`, minimized findings under `OUT/fuzz_findings/`,
/// and optionally promoted regression files (`--fuzz-promote DIR`).
///
/// The campaign summary prints as *plain* stdout lines (not
/// `# `-prefixed): it is part of the deterministic output contract and
/// CI byte-diffs it across `--jobs 1` and `--jobs 4`. Returns false
/// iff the campaign is dirty — an unminimized finding or a missed
/// canary (see `FuzzReport::ok`).
fn run_fuzz_battery(flags: &RunFlags) -> bool {
    let cfg = hpcsim_fuzz::FuzzConfig {
        seed: flags.fuzz_seed.unwrap_or(42),
        iters: flags.fuzz_iters.unwrap_or(256),
        ..Default::default()
    };
    let report = hpcsim_fuzz::run_fuzz(&cfg);
    print!("{}", report.summary());

    let corpus_dir = flags.out.join("fuzz_corpus");
    let _ = std::fs::create_dir_all(&corpus_dir);
    let mut manifest = String::new();
    for (i, entry) in report.corpus.iter().enumerate() {
        let name = format!("{i:04}-{}.fuzz", entry.hash);
        if let Err(e) = std::fs::write(corpus_dir.join(&name), entry.scenario.to_canon()) {
            log_warn!("# fuzz: corpus write failed: {e}");
        }
        manifest.push_str(&format!(
            "{name} {} iter {} new-features {}\n",
            entry.outcome.label(),
            entry.iteration,
            entry.new_features
        ));
    }
    if let Err(e) = std::fs::write(corpus_dir.join("MANIFEST.txt"), &manifest) {
        log_warn!("# fuzz: corpus manifest write failed: {e}");
    }
    println!("# fuzz: {} corpus file(s) in {}", report.corpus.len(), corpus_dir.display());

    let findings_dir = flags.out.join("fuzz_findings");
    let _ = std::fs::create_dir_all(&findings_dir);
    let mut fmanifest = String::new();
    for f in &report.findings {
        let name = format!(
            "{}{}.fuzz",
            f.kind.label(),
            if f.canary { "-canary" } else { "" }
        );
        if let Err(e) = std::fs::write(findings_dir.join(&name), f.scenario.to_canon()) {
            log_warn!("# fuzz: finding write failed: {e}");
        }
        fmanifest.push_str(&format!("{name} {} ops {}\n", f.kind.label(), f.scenario.total_ops()));
    }
    if let Err(e) = std::fs::write(findings_dir.join("MANIFEST.txt"), &fmanifest) {
        log_warn!("# fuzz: findings manifest write failed: {e}");
    }
    println!("# fuzz: {} finding(s) in {}", report.findings.len(), findings_dir.display());

    if let Some(dir) = &flags.fuzz_promote {
        let _ = std::fs::create_dir_all(dir);
        let mut pmanifest = String::new();
        for f in &report.findings {
            let name = format!(
                "{}{}.fuzz",
                f.kind.label(),
                if f.canary { "-canary" } else { "" }
            );
            if let Err(e) = std::fs::write(dir.join(&name), f.scenario.to_canon()) {
                log_warn!("# fuzz: promote write failed: {e}");
            }
            pmanifest.push_str(&format!("{name} {}\n", f.kind.label()));
        }
        if let Err(e) = std::fs::write(dir.join("MANIFEST.txt"), &pmanifest) {
            log_warn!("# fuzz: promote manifest write failed: {e}");
        }
        println!("# fuzz: promoted {} regression(s) to {}", report.findings.len(), dir.display());
    }

    if !report.ok() {
        log_error!("# fuzz: campaign dirty (unminimized finding or missed canary)");
    }
    report.ok()
}

/// Run the Monte-Carlo sensitivity battery from the given seed: print
/// the per-parameter table (`# `-prefixed — stripped output stays
/// byte-identical with and without the flag) and write
/// `sensitivity.csv`. The CSV holds only deterministic statistics, so
/// it is byte-identical across `--jobs` counts; wall-clock lives in the
/// stderr line and the `--bench-json` entry.
fn run_sensitivity(flags: &RunFlags, scale: Scale, seed: u64) -> hpcsim_core::SensitivityStats {
    let stats = hpcsim_core::sensitivity_battery(scale, seed);
    let table = stats.table();
    for line in table.render().lines() {
        println!("# {line}");
    }
    println!(
        "# sensitivity: {} samples (seed {seed}); baseline {:.1}us; zero-identical: {}",
        stats.samples, stats.baseline_us, stats.zero_identical
    );
    let _ = std::fs::create_dir_all(&flags.out);
    let path = flags.out.join("sensitivity.csv");
    match std::fs::write(&path, table.to_csv()) {
        Ok(()) => println!("# sensitivity: summary CSV: {}", path.display()),
        Err(e) => log_warn!("# sensitivity: CSV write failed: {e}"),
    }
    stats
}

/// Run the traced battery of every selected figure that has one, write
/// the Chrome trace + span CSV + metrics report, and print the time
/// breakdowns. Everything tracing adds to stdout is `# `-prefixed so
/// the untraced output stays byte-identical after comment stripping.
fn run_traced_battery(flags: &RunFlags, scale: Scale) {
    let selected: Vec<ExperimentId> = hpcsim_core::traceable()
        .into_iter()
        .filter(|id| {
            flags.positional.iter().any(|p| p == "all" || p == id.slug())
        })
        .collect();
    if selected.is_empty() {
        println!("# trace: none of the selected experiments has a traced battery");
        return;
    }
    let plan = fault_plan(flags);
    if let Some(p) = &plan {
        println!("# trace: faults armed (seed {}, profile {})", p.seed(), p.profile().label());
    }
    let reports: Vec<hpcsim_core::TraceReport> = selected
        .iter()
        .filter_map(|&id| hpcsim_core::trace_experiment_with(id, scale, plan.as_ref()))
        .collect();

    for report in &reports {
        let table = hpcsim_core::breakdown_table(report);
        for line in table.render().lines() {
            println!("# {line}");
        }
        let _ = std::fs::create_dir_all(&flags.out);
        let path = flags.out.join(format!("{}_breakdown.csv", report.id.slug()));
        if let Err(e) = std::fs::write(&path, table.to_csv()) {
            log_warn!("# trace: breakdown CSV write failed: {e}");
        }
    }

    let trace_path = flags.trace_path();
    let metrics_path = flags.metrics_path();
    for path in [&trace_path, &metrics_path] {
        if let Some(dir) = path.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
    }

    let trace = hpcsim_core::chrome_json(&reports);
    if let Err(e) = hpcsim_probe::validate_trace(&trace) {
        log_error!("# trace: generated Chrome trace failed validation: {e}");
        std::process::exit(1);
    }
    match std::fs::write(&trace_path, &trace) {
        Ok(()) => println!("# trace: Chrome trace (Perfetto-loadable): {}", trace_path.display()),
        Err(e) => log_warn!("# trace: write failed: {e}"),
    }
    let spans_path = flags.out.join("trace_spans.csv");
    let _ = std::fs::write(&spans_path, hpcsim_core::spans_csv(&reports));
    println!("# trace: span CSV: {}", spans_path.display());

    match std::fs::write(&metrics_path, hpcsim_core::metrics_json(&reports)) {
        Ok(()) => println!("# trace: metrics report: {}", metrics_path.display()),
        Err(e) => log_warn!("# trace: metrics write failed: {e}"),
    }
}
