//! Regenerate the paper's tables and figures.
//!
//! ```text
//! repro all                 # everything, quick scale
//! repro fig3 table3         # selected experiments
//! repro all --paper         # the paper's process counts (slow)
//! repro all --out results/  # artifact directory (default target/repro)
//! ```
//!
//! Each experiment prints its rendered tables/figure data to stdout and
//! writes CSV files to the artifact directory.

use hpcsim_bench::parse_flags;
use hpcsim_core::{run_experiment, ExperimentId, Scale};
use std::time::Instant;

fn usage() -> ! {
    eprintln!(
        "usage: repro [--paper] [--out DIR] all|table1|table2|fig1|fig2|fig3|top500|fig4|fig5|fig6|fig7|fig8|table3|ablations ..."
    );
    std::process::exit(2);
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let (paper, out_dir, positional) = parse_flags(&raw);
    if positional.is_empty() {
        usage();
    }
    let scale = if paper { Scale::Paper } else { Scale::Quick };

    let want_ablations =
        positional.iter().any(|p| p == "ablations" || p == "all");
    let ids: Vec<ExperimentId> = if positional.iter().any(|p| p == "all") {
        ExperimentId::all().to_vec()
    } else {
        positional
            .iter()
            .filter(|p| p.as_str() != "ablations")
            .map(|p| ExperimentId::from_slug(p).unwrap_or_else(|| usage()))
            .collect()
    };

    println!("# Early Evaluation of IBM BlueGene/P (SC08) — reproduction run");
    println!("# scale: {scale:?}; artifacts: {}", out_dir.display());
    for id in ids {
        let start = Instant::now();
        let artifact = run_experiment(id, scale);
        print!("{}", artifact.render());
        match artifact.write_csv(&out_dir) {
            Ok(paths) => {
                println!(
                    "# {}: {} artifact file(s) in {:.1}s\n",
                    id.slug(),
                    paths.len(),
                    start.elapsed().as_secs_f64()
                );
            }
            Err(e) => eprintln!("# {}: CSV write failed: {e}", id.slug()),
        }
    }
    if want_ablations {
        let start = Instant::now();
        let ranks = if paper { 2048 } else { 512 };
        let table = hpcsim_core::ablation_table(ranks);
        print!("{}", table.render());
        let _ = std::fs::create_dir_all(&out_dir);
        let _ = std::fs::write(out_dir.join("ablations.csv"), table.to_csv());
        println!("# ablations: done in {:.1}s\n", start.elapsed().as_secs_f64());
    }
}
