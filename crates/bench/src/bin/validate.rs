//! Calibration validator: checks every model anchor against the paper's
//! published values and prints PASS/FAIL. Exit code 0 iff all pass.
//!
//! ```text
//! cargo run --release -p hpcsim-bench --bin validate
//! ```

use hpcsim_apps::{pop_run, PopConfig};
use hpcsim_hpcc::top500_run;
use hpcsim_machine::registry::{bluegene_p, xt4_dc, xt4_qc};
use hpcsim_machine::ExecMode;
use hpcsim_power::{PowerModel, UTIL_HPL, UTIL_SCIENCE};

struct Check {
    name: &'static str,
    paper: f64,
    simulated: f64,
    tol_pct: f64,
}

impl Check {
    fn passes(&self) -> bool {
        (self.simulated - self.paper).abs() / self.paper.abs() * 100.0 <= self.tol_pct
    }
}

fn main() {
    let bgp = bluegene_p();
    let qc = xt4_qc();
    let pm_b = PowerModel::new(bgp.clone());
    let pm_x = PowerModel::new(qc.clone());
    let top = top500_run(&bgp);
    let pop_cfg = PopConfig::default();
    let pop_b = pop_run(&bgp, ExecMode::Vn, 8192, 1, &pop_cfg);
    let pop_x = pop_run(&xt4_dc(), ExecMode::Vn, 8192, 1, &pop_cfg);

    let checks = [
        Check { name: "BG/P node peak (GF/s)", paper: 13.6, simulated: bgp.node_peak_flops() / 1e9, tol_pct: 0.1 },
        Check { name: "BG/P core peak (GF/s)", paper: 3.4, simulated: bgp.core_peak_flops() / 1e9, tol_pct: 0.1 },
        Check { name: "BG/P HPL power (W/core)", paper: 7.7, simulated: pm_b.per_core_w(UTIL_HPL), tol_pct: 5.0 },
        Check { name: "BG/P normal power (W/core)", paper: 7.3, simulated: pm_b.per_core_w(UTIL_SCIENCE), tol_pct: 5.0 },
        Check { name: "XT/QC HPL power (W/core)", paper: 51.0, simulated: pm_x.per_core_w(UTIL_HPL), tol_pct: 5.0 },
        Check { name: "XT/QC normal power (W/core)", paper: 48.4, simulated: pm_x.per_core_w(UTIL_SCIENCE), tol_pct: 5.0 },
        Check { name: "TOP500 HPL (TF/s)", paper: 21.4, simulated: top.hpl.gflops / 1e3, tol_pct: 15.0 },
        Check { name: "TOP500 power (kW)", paper: 63.0, simulated: top.power_kw, tol_pct: 8.0 },
        Check {
            name: "Green500 (MFlops/W, Table 3 says 347.6, text 310.9)",
            paper: 329.0,
            simulated: top.mflops_per_watt,
            tol_pct: 15.0,
        },
        Check { name: "POP SYD @ 8192, BG/P", paper: 3.6, simulated: pop_b.syd, tol_pct: 35.0 },
        Check { name: "POP SYD @ 8192, XT4", paper: 12.5, simulated: pop_x.syd, tol_pct: 45.0 },
        Check {
            name: "POP XT4/BG-P ratio @ 8192",
            paper: 3.6,
            simulated: pop_x.syd / pop_b.syd,
            tol_pct: 30.0,
        },
        Check {
            name: "per-core power ratio (XT/BG-P)",
            paper: 6.6,
            simulated: pm_x.per_core_w(UTIL_HPL) / pm_b.per_core_w(UTIL_HPL),
            tol_pct: 10.0,
        },
    ];

    println!(
        "{:<52} {:>10} {:>10} {:>7} {:>6}",
        "anchor", "paper", "simulated", "err%", "status"
    );
    let mut failures = 0;
    for c in &checks {
        let err = (c.simulated - c.paper) / c.paper.abs() * 100.0;
        let ok = c.passes();
        if !ok {
            failures += 1;
        }
        println!(
            "{:<52} {:>10.2} {:>10.2} {:>6.1}% {:>6}",
            c.name,
            c.paper,
            c.simulated,
            err,
            if ok { "PASS" } else { "FAIL" }
        );
    }
    println!("\n{} of {} anchors within tolerance", checks.len() - failures, checks.len());
    std::process::exit(if failures == 0 { 0 } else { 1 });
}
