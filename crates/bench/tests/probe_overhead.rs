//! The <2% disabled-overhead guard (release builds only — debug
//! timings measure the optimizer's absence, not the design).
//!
//! The untraced public entry (`halo_run`) *is* the disabled-tracer path
//! post-refactor: it forwards to the generic replay monomorphized with
//! `NoopTracer`, whose `T::ENABLED == false` guards compile every hook
//! away. Timing both entries over the same scenario and comparing
//! min-of-N (interleaved, so thermal drift hits both alike) checks that
//! the generic instrumentation really is free when disabled. The
//! structural half of the guarantee — no tracer call is even reachable
//! when disabled — is pinned deterministically by the `PanickingTracer`
//! test in `hpcsim-mpi`.

#![cfg(not(debug_assertions))]

use hpcsim_hpcc::{halo_run, halo_run_probe, HaloConfig, HaloProtocol};
use hpcsim_machine::registry::bluegene_p;
use hpcsim_machine::{ExecMode, MachineSpec};
use hpcsim_probe::{NoopTracer, RingRecorder};
use hpcsim_topo::{Grid2D, Mapping};
use std::hint::black_box;
use std::time::Instant;

fn cfg() -> HaloConfig {
    HaloConfig {
        grid: Grid2D::new(32, 16),
        words: 2048,
        protocol: HaloProtocol::IrecvIsend,
        reps: 2,
    }
}

fn time_untraced(m: &MachineSpec) -> f64 {
    let t = Instant::now();
    black_box(halo_run(m, ExecMode::Vn, Mapping::txyz(), &cfg()));
    t.elapsed().as_secs_f64()
}

fn time_noop(m: &MachineSpec) -> f64 {
    let t = Instant::now();
    black_box(halo_run_probe(m, ExecMode::Vn, Mapping::txyz(), &cfg(), &mut NoopTracer));
    t.elapsed().as_secs_f64()
}

/// Min-of-N ratio of the disabled-tracer path over the untraced entry.
fn disabled_overhead_ratio(reps: usize) -> f64 {
    let m = bluegene_p();
    // warmup both paths
    time_untraced(&m);
    time_noop(&m);
    let mut best_untraced = f64::INFINITY;
    let mut best_noop = f64::INFINITY;
    for _ in 0..reps {
        best_untraced = best_untraced.min(time_untraced(&m));
        best_noop = best_noop.min(time_noop(&m));
    }
    best_noop / best_untraced
}

#[test]
fn disabled_tracer_replay_is_within_two_percent() {
    // min-of-N is tight, but a noisy CI core can still smear a single
    // round; take the best ratio across a few rounds before judging
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        best = best.min(disabled_overhead_ratio(7));
        if best < 1.02 {
            break;
        }
    }
    assert!(best < 1.02, "disabled-tracer overhead ratio {best:.4} >= 1.02");
}

#[test]
fn enabled_recorder_observes_the_same_replay() {
    let m = bluegene_p();
    let mut rec = RingRecorder::new();
    let (s_traced, _) = halo_run_probe(&m, ExecMode::Vn, Mapping::txyz(), &cfg(), &mut rec);
    assert!(rec.total_spans() > 0, "enabled recorder must capture spans");
    assert_eq!(rec.dropped(), 0);
    let s_untraced = halo_run(&m, ExecMode::Vn, Mapping::txyz(), &cfg());
    assert_eq!(
        s_traced.to_bits(),
        s_untraced.to_bits(),
        "tracing must not perturb results"
    );
}
