//! The ≥10× sweep-speedup guard (release builds only — debug timings
//! measure the optimizer's absence, not the design).
//!
//! Races the two sweep engines over the Fig 2(c,d) 32-point mapping
//! scan on a contention-flat BG/P, where the DAG path is live. The DAG
//! engine compiles each trace once and evaluates every point in a
//! single critical-path pass, so the whole sweep should cost roughly
//! what a handful of replays cost today; the acceptance floor is 10×.
//! Exactness is asserted on every round, not just timing — a fast wrong
//! answer fails here before it can skew a figure.

#![cfg(not(debug_assertions))]

use hpcsim_core::{fig2_mapping_sweep, Scale};

#[test]
fn dag_sweep_is_ten_times_faster_than_replay() {
    // best-of-N: a noisy CI core can smear one round, and the replay
    // half dominates the wall time so noise inflates, not deflates, the
    // measured speedup's variance
    let mut best = 0.0f64;
    for round in 0..3 {
        let s = fig2_mapping_sweep(Scale::Quick);
        assert!(
            s.engines_agree,
            "round {round}: DAG and replay diverged on a contention-flat machine"
        );
        assert_eq!(s.points, 32);
        best = best.max(s.speedup());
        if best >= 10.0 {
            break;
        }
    }
    assert!(best >= 10.0, "32-point sweep speedup {best:.1}x < 10x");
}
