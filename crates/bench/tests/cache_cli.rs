//! End-to-end determinism of the `repro` CLI under the scenario cache:
//! a cold run (empty `--cache-dir`), a warm run (same dir, second
//! time), and a `--no-cache` run must all produce byte-identical
//! stdout (after `# ` comment stripping — cache statistics ride on
//! comment lines) and byte-identical CSV artifacts, at any `--jobs`
//! count. The warm run must actually hit.

use std::path::Path;
use std::process::Command;

fn run_repro_raw(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_repro")).args(args).output().expect("repro binary must run")
}

fn run_repro(args: &[&str]) -> String {
    let out = run_repro_raw(args);
    assert!(
        out.status.success(),
        "repro {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("repro output is UTF-8")
}

/// Drop the `# `-prefixed comment lines (timings, cache statistics).
fn strip_comments(stdout: &str) -> String {
    stdout.lines().filter(|l| !l.starts_with("# ")).collect::<Vec<_>>().join("\n")
}

fn read(dir: &Path, name: &str) -> String {
    std::fs::read_to_string(dir.join(name))
        .unwrap_or_else(|e| panic!("missing artifact {name}: {e}"))
}

/// The tier-1 hit count from the run's `# scenario cache:` line.
fn result_hits(stdout: &str) -> u64 {
    let line = stdout
        .lines()
        .find(|l| l.starts_with("# scenario cache:"))
        .expect("run must print a scenario-cache line");
    line.strip_prefix("# scenario cache: ")
        .and_then(|rest| rest.split(' ').next())
        .and_then(|n| n.parse().ok())
        .unwrap_or_else(|| panic!("unparseable cache line: {line}"))
}

#[test]
fn warm_and_cold_runs_are_byte_identical_across_jobs() {
    let base = std::env::temp_dir().join(format!("repro_cache_{}", std::process::id()));
    let cache = base.join("cache");
    let cold_dir = base.join("cold");
    let warm_dir = base.join("warm");
    let warm4_dir = base.join("warm4");
    let plain_dir = base.join("plain");
    let cache_str = cache.to_str().unwrap();

    // fig2 exercises both cache tiers (mappings share tier-2 traces)
    let cold = run_repro(&[
        "fig2", "--jobs", "1", "--cache-dir", cache_str, "--out", cold_dir.to_str().unwrap(),
    ]);
    let warm = run_repro(&[
        "fig2", "--jobs", "1", "--cache-dir", cache_str, "--out", warm_dir.to_str().unwrap(),
    ]);
    let warm4 = run_repro(&[
        "fig2", "--jobs", "4", "--cache-dir", cache_str, "--out", warm4_dir.to_str().unwrap(),
    ]);
    let plain = run_repro(&["fig2", "--no-cache", "--out", plain_dir.to_str().unwrap()]);

    // memoization may only change *when* simulations run, never output:
    // cold, warm, any worker count, or no cache at all
    assert_eq!(strip_comments(&cold), strip_comments(&warm), "cold vs warm stdout");
    assert_eq!(strip_comments(&warm), strip_comments(&warm4), "jobs 1 vs 4 stdout");
    assert_eq!(strip_comments(&cold), strip_comments(&plain), "cached vs --no-cache stdout");

    let mut compared = 0;
    for entry in std::fs::read_dir(&cold_dir).expect("cold artifact dir") {
        let name = entry.unwrap().file_name().into_string().unwrap();
        let want = read(&cold_dir, &name);
        assert_eq!(want, read(&warm_dir, &name), "{name} differs warm");
        assert_eq!(want, read(&warm4_dir, &name), "{name} differs at --jobs 4");
        assert_eq!(want, read(&plain_dir, &name), "{name} differs with --no-cache");
        compared += 1;
    }
    assert!(compared > 0, "fig2 must write artifacts");

    // the disk store persisted results and the warm runs actually hit
    assert!(cache.join("results").is_dir(), "disk store must materialize");
    assert!(result_hits(&warm) > 0, "second run must hit the disk-backed cache:\n{warm}");
    assert!(result_hits(&warm4) > 0, "jobs-4 run must hit too");
    assert!(plain.contains("# scenario cache: disabled (--no-cache)"), "{plain}");

    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn cache_flag_misuse_is_diagnosed_before_any_simulation() {
    // conflicting flags exit 2 with the parser's one-line diagnostic
    let out = run_repro_raw(&["fig2", "--cache-dir", "/tmp/x", "--no-cache"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--cache-dir") && stderr.contains("--no-cache"), "{stderr}");

    // an unwritable cache dir (a path "under" a regular file) exits 2
    // early, matching the --trace-out convention
    let bad = concat!(env!("CARGO_MANIFEST_DIR"), "/Cargo.toml/cache");
    let out = run_repro_raw(&["table1", "--cache-dir", bad]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("not writable"), "{stderr}");
}
