//! End-to-end `--obs-out` exports from the `repro` CLI: the
//! `"deterministic"` block of `run_report.json` must be byte-identical
//! across `--jobs` counts, sweep engines, and cache temperatures; the
//! Prometheus file must be real text exposition; and without
//! `--obs-out` no report file may appear (the cache CLI tests diff
//! artifact directories recursively, so a default report would break
//! cold/warm identity).

use std::path::Path;
use std::process::Command;

fn run_repro_raw(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_repro")).args(args).output().expect("repro binary must run")
}

fn run_repro(args: &[&str]) -> std::process::Output {
    let out = run_repro_raw(args);
    assert!(
        out.status.success(),
        "repro {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    out
}

/// Drop the `# `-prefixed comment lines (timings, obs pointers).
fn strip_comments(stdout: &[u8]) -> String {
    String::from_utf8_lossy(stdout)
        .lines()
        .filter(|l| !l.starts_with("# "))
        .collect::<Vec<_>>()
        .join("\n")
}

fn read(path: &Path) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

/// The `"deterministic"` block, bytes included, as CI slices it out
/// with `sed -n '/"deterministic": {/,/^  },$/p'`.
fn deterministic_block(report: &str) -> String {
    let start = report.find("  \"deterministic\": {").expect("report has a deterministic block");
    let end = report[start..].find("  },\n").expect("block terminator") + start + 5;
    report[start..end].to_string()
}

#[test]
fn deterministic_block_survives_jobs_engines_and_cache_temperature() {
    let base = std::env::temp_dir().join(format!("repro_obs_{}", std::process::id()));
    let cache = base.join("cache");
    let cache_str = cache.to_str().unwrap();

    // five fig2 runs that may only differ in *observed* telemetry
    let variants: &[(&str, &[&str])] = &[
        ("j1", &["--jobs", "1"]),
        ("j4", &["--jobs", "4"]),
        ("dag", &["--jobs", "1", "--sweep-engine", "dag"]),
        ("cold", &["--jobs", "1", "--cache-dir", cache_str]),
        ("warm", &["--jobs", "1", "--cache-dir", cache_str]),
    ];
    let mut blocks = Vec::new();
    for (tag, extra) in variants {
        let dir = base.join(tag);
        let prom = base.join(format!("{tag}.prom"));
        let mut args =
            vec!["fig2", "--out", dir.to_str().unwrap(), "--obs-out", prom.to_str().unwrap()];
        args.extend_from_slice(extra);
        let out = run_repro(&args);
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(stdout.contains("# obs: run report:"), "{tag}: no report pointer\n{stdout}");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("# run metrics"), "{tag}: no stderr summary\n{stderr}");

        let report = read(&dir.join("run_report.json"));
        assert!(report.contains("\"schema\": \"hpcsim-obs-run-report/1\""), "{tag}");
        assert!(report.contains("\"observed\": {"), "{tag}");
        assert!(report.contains("\"timing\": {"), "{tag}");
        blocks.push((*tag, deterministic_block(&report)));

        let text = read(&prom);
        assert!(text.contains("# TYPE hpcsim_scenarios_total counter"), "{tag}:\n{text}");
        assert!(text.contains("# TYPE hpcsim_scenario_wall_ns histogram"), "{tag}");
        assert!(text.contains("hpcsim_scenario_wall_ns_bucket{le=\"+Inf\"}"), "{tag}");
        assert!(text.contains("# TYPE hpcsim_cache_result_lookups_total counter"), "{tag}");
    }

    let (tag0, want) = &blocks[0];
    assert!(want.contains("hpcsim_scenarios_total"), "block is empty:\n{want}");
    for (tag, block) in &blocks[1..] {
        assert_eq!(want, block, "deterministic block differs: {tag0} vs {tag}");
    }

    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn no_report_without_obs_out_and_no_obs_output_matches() {
    let base = std::env::temp_dir().join(format!("repro_noobs_{}", std::process::id()));
    let plain_dir = base.join("plain");
    let noobs_dir = base.join("noobs");

    let plain = run_repro(&["fig2", "--jobs", "1", "--out", plain_dir.to_str().unwrap()]);
    let noobs =
        run_repro(&["fig2", "--jobs", "1", "--no-obs", "--out", noobs_dir.to_str().unwrap()]);

    // no --obs-out: the artifact directory holds only experiment CSVs
    assert!(!plain_dir.join("run_report.json").exists(), "unrequested run_report.json");
    assert!(!noobs_dir.join("run_report.json").exists());

    // collection on (default) vs off may not change a byte of output
    assert_eq!(
        strip_comments(&plain.stdout),
        strip_comments(&noobs.stdout),
        "--no-obs changed experiment stdout"
    );
    for entry in std::fs::read_dir(&plain_dir).expect("plain artifact dir") {
        let name = entry.unwrap().file_name().into_string().unwrap();
        assert_eq!(
            read(&plain_dir.join(&name)),
            read(&noobs_dir.join(&name)),
            "{name} differs under --no-obs"
        );
    }

    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn obs_flag_misuse_is_diagnosed_before_any_simulation() {
    // an export from a disabled registry is a contradiction: exit 2
    let out = run_repro_raw(&["fig2", "--obs-out", "/tmp/x.prom", "--no-obs"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--obs-out") && stderr.contains("--no-obs"), "{stderr}");

    // unknown log level: the parser's one-line diagnostic
    let out = run_repro_raw(&["fig2", "--log-level", "chatty"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("chatty") && stderr.contains("quiet|info|debug"), "{stderr}");

    // an unwritable --obs-out path fails early, like --trace-out
    let bad = concat!(env!("CARGO_MANIFEST_DIR"), "/Cargo.toml/m.prom");
    let out = run_repro_raw(&["table1", "--obs-out", bad]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("not writable"));
}
