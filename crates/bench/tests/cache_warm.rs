//! Release-gated guard on the scenario cache's warm speedup: the
//! repeated Fig 2(c,d)-style query mix must run at least 20x faster
//! warm than cold, with bit-identical answers. Debug builds skip the
//! timing claim (unoptimized replay would make it meaningless), which
//! is why the whole file is compiled out without `--release`.
#![cfg(not(debug_assertions))]

use hpcsim_core::{scenario_cache_battery, Scale};

#[test]
fn warm_cache_is_at_least_20x_faster_than_cold() {
    // best of three: wall-clock guards on shared CI hardware are noisy
    // in one direction only (a loaded machine slows a pass down), so
    // the best observed ratio is the honest one
    let mut best = 0.0f64;
    let mut identical = true;
    for _ in 0..3 {
        let s = scenario_cache_battery(Scale::Quick);
        assert_eq!(s.points, 32);
        assert_eq!(s.queries, 64);
        identical &= s.bitwise_identical;
        best = best.max(s.speedup());
        if best >= 20.0 {
            break;
        }
    }
    assert!(identical, "warm lookups must return the cold pass's exact bits");
    assert!(
        best >= 20.0,
        "warm cache must be >= 20x faster than cold, best observed {best:.1}x"
    );
}
