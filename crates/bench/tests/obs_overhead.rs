//! The <2% obs-overhead guard (release builds only — debug timings
//! measure the optimizer's absence, not the design).
//!
//! The true "disabled overhead" — instrumented binary with the registry
//! off versus a hypothetical un-instrumented binary — cannot be timed
//! in one process, so this guard pins something strictly stronger: a
//! cache-and-runner-heavy battery with the registry fully *enabled*
//! must stay within 2% of the same battery with it disabled. The
//! disabled cost (one relaxed atomic load per site, no `Instant`
//! calls) is a strict subset of the enabled cost, so it is bounded by
//! the same margin. Min-of-N, interleaved so thermal drift hits both
//! paths alike — the same discipline as `probe_overhead.rs`.

#![cfg(not(debug_assertions))]

use hpcsim_cache::{evaluate_in, CacheConfig, ScenarioCache, ScenarioSpec};
use hpcsim_core::{parmap, set_jobs};
use hpcsim_hpcc::{HaloConfig, HaloProtocol};
use hpcsim_machine::registry::bluegene_p;
use hpcsim_machine::ExecMode;
use hpcsim_obs as obs;
use hpcsim_topo::{Grid2D, Mapping};
use std::hint::black_box;
use std::time::Instant;

/// A battery crossing every instrumented layer: runner (`parmap`),
/// tier-1/tier-2 cache, and the replay engine underneath. A fresh cache
/// per timing keeps every rep cold, so reps do equal work.
fn specs() -> Vec<ScenarioSpec> {
    let m = bluegene_p();
    let mut v = Vec::new();
    for mapping in [Mapping::txyz(), Mapping::xyzt()] {
        for words in [512u64, 1024, 2048, 4096] {
            let cfg = HaloConfig {
                grid: Grid2D::new(16, 16),
                words,
                protocol: HaloProtocol::IrecvIsend,
                reps: 2,
            };
            v.push(ScenarioSpec::halo(&m, ExecMode::Vn, mapping, cfg));
        }
    }
    v
}

fn time_battery(specs: &[ScenarioSpec]) -> f64 {
    let c = ScenarioCache::new(CacheConfig::default());
    let t = Instant::now();
    let out = parmap(specs, |s| evaluate_in(&c, s).expect("pristine halo never stalls")[0]);
    black_box(out);
    t.elapsed().as_secs_f64()
}

/// Min-of-N ratio of the enabled-registry battery over the disabled one.
fn obs_overhead_ratio(reps: usize) -> f64 {
    let specs = specs();
    // warmup both paths
    obs::set_enabled(false);
    time_battery(&specs);
    obs::set_enabled(true);
    time_battery(&specs);
    let mut best_off = f64::INFINITY;
    let mut best_on = f64::INFINITY;
    for _ in 0..reps {
        obs::set_enabled(false);
        best_off = best_off.min(time_battery(&specs));
        obs::set_enabled(true);
        best_on = best_on.min(time_battery(&specs));
    }
    obs::set_enabled(false);
    best_on / best_off
}

#[test]
fn obs_registry_overhead_is_within_two_percent() {
    set_jobs(1); // timing, not throughput: keep the pool out of the noise
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        best = best.min(obs_overhead_ratio(7));
        if best < 1.02 {
            break;
        }
    }
    set_jobs(0);
    assert!(best < 1.02, "obs overhead ratio {best:.4} >= 1.02");
}
