//! End-to-end determinism of the `repro` CLI with tracing on.
//!
//! Everything tracing adds to stdout is `# `-prefixed (the same
//! convention the CI smoke uses for timing lines), so a traced run and
//! an untraced run must be byte-identical once comments are stripped —
//! and the experiment CSV artifacts must be byte-identical, period.

use std::path::Path;
use std::process::Command;

fn run_repro_raw(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_repro")).args(args).output().expect("repro binary must run")
}

fn run_repro(args: &[&str]) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("repro binary must run");
    assert!(
        out.status.success(),
        "repro {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("repro output is UTF-8")
}

/// Drop the `# `-prefixed comment lines (timings, trace reports).
fn strip_comments(stdout: &str) -> String {
    stdout.lines().filter(|l| !l.starts_with("# ")).collect::<Vec<_>>().join("\n")
}

fn read(dir: &Path, name: &str) -> String {
    std::fs::read_to_string(dir.join(name))
        .unwrap_or_else(|e| panic!("missing artifact {name}: {e}"))
}

#[test]
fn traced_run_matches_untraced_run() {
    let base = std::env::temp_dir().join(format!("repro_cli_{}", std::process::id()));
    let plain_dir = base.join("plain");
    let traced_dir = base.join("traced");

    let plain = run_repro(&["fig3", "--jobs", "2", "--out", plain_dir.to_str().unwrap()]);
    let traced =
        run_repro(&["fig3", "--trace", "--jobs", "2", "--out", traced_dir.to_str().unwrap()]);

    assert_eq!(
        strip_comments(&plain),
        strip_comments(&traced),
        "tracing must not change the experiment output"
    );
    // every CSV the untraced run wrote must come out byte-identical
    let mut compared = 0;
    for entry in std::fs::read_dir(&plain_dir).expect("plain artifact dir") {
        let name = entry.unwrap().file_name().into_string().unwrap();
        assert_eq!(read(&plain_dir, &name), read(&traced_dir, &name), "{name} differs");
        compared += 1;
    }
    assert!(compared > 0, "untraced run must write artifacts");

    // the traced run produced its artifacts, and the trace validates
    let trace = read(&traced_dir, "trace.json");
    let stats = hpcsim_probe::validate_trace(&trace).expect("trace must validate");
    assert!(stats.spans > 0);
    assert!(read(&traced_dir, "metrics.json").contains("hpcsim-probe-metrics/1"));
    assert!(read(&traced_dir, "fig3_breakdown.csv").lines().count() > 1);
    assert!(read(&traced_dir, "trace_spans.csv").lines().count() > 1);

    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn bad_input_exits_2_with_a_diagnostic() {
    for args in [
        &["--jobs", "lots", "table1"][..],
        &["--jobs", "-3", "table1"],
        &["--faults", "nope", "table1"],
        &["--faults", "1", "--fault-profile", "meteor", "table1"],
        &["--fault-profile", "mixed", "table1"],
        &["--frobnicate", "table1"],
        &["not-an-experiment"],
    ] {
        let out = run_repro_raw(args);
        assert_eq!(out.status.code(), Some(2), "args {args:?} should exit 2");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("repro:"), "args {args:?}: {stderr}");
        assert!(stderr.contains("usage:"), "args {args:?}: {stderr}");
    }
}

#[test]
fn unwritable_trace_out_exits_2() {
    // a path "under" a regular file can never be created
    let bad = concat!(env!("CARGO_MANIFEST_DIR"), "/Cargo.toml/trace.json");
    let out = run_repro_raw(&["table1", "--trace-out", bad]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("not writable"), "{stderr}");
}

#[test]
fn fault_battery_is_deterministic_across_jobs_and_leaves_output_pristine() {
    let base = std::env::temp_dir().join(format!("repro_faults_{}", std::process::id()));
    let d1 = base.join("j1");
    let d4 = base.join("j4");
    let dp = base.join("plain");

    let a = run_repro(&["table1", "--faults", "5", "--jobs", "1", "--out", d1.to_str().unwrap()]);
    let b = run_repro(&["table1", "--faults", "5", "--jobs", "4", "--out", d4.to_str().unwrap()]);
    let plain = run_repro(&["table1", "--out", dp.to_str().unwrap()]);

    // same seed => identical resilience summary at any worker count
    assert_eq!(read(&d1, "resilience.csv"), read(&d4, "resilience.csv"));
    // fault injection rides entirely on `# ` comment lines and its own
    // CSV: the experiment output stays byte-identical to a pristine run
    assert_eq!(strip_comments(&plain), strip_comments(&a));
    assert_eq!(strip_comments(&a), strip_comments(&b));
    assert_eq!(read(&dp, "table1_0.csv"), read(&d1, "table1_0.csv"));

    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn selftest_panic_is_isolated_and_fails_the_run() {
    let dir = std::env::temp_dir().join(format!("repro_selftest_{}", std::process::id()));
    let out = run_repro_raw(&[
        "table1",
        "--faults",
        "5",
        "--fault-profile",
        "selftest-panic",
        "--out",
        dir.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(1), "a poisoned scenario must fail the run");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("selftest-panic"), "{stderr}");
    assert!(stderr.contains("deliberately poisoned"), "{stderr}");
    // the healthy scenarios all completed: header + 3 rows
    let csv = std::fs::read_to_string(dir.join("resilience.csv")).expect("resilience.csv");
    assert_eq!(csv.lines().count(), 4, "{csv}");
    let _ = std::fs::remove_dir_all(&dir);
}
