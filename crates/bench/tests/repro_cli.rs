//! End-to-end determinism of the `repro` CLI with tracing on.
//!
//! Everything tracing adds to stdout is `# `-prefixed (the same
//! convention the CI smoke uses for timing lines), so a traced run and
//! an untraced run must be byte-identical once comments are stripped —
//! and the experiment CSV artifacts must be byte-identical, period.

use std::path::Path;
use std::process::Command;

fn run_repro(args: &[&str]) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("repro binary must run");
    assert!(
        out.status.success(),
        "repro {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("repro output is UTF-8")
}

/// Drop the `# `-prefixed comment lines (timings, trace reports).
fn strip_comments(stdout: &str) -> String {
    stdout.lines().filter(|l| !l.starts_with("# ")).collect::<Vec<_>>().join("\n")
}

fn read(dir: &Path, name: &str) -> String {
    std::fs::read_to_string(dir.join(name))
        .unwrap_or_else(|e| panic!("missing artifact {name}: {e}"))
}

#[test]
fn traced_run_matches_untraced_run() {
    let base = std::env::temp_dir().join(format!("repro_cli_{}", std::process::id()));
    let plain_dir = base.join("plain");
    let traced_dir = base.join("traced");

    let plain = run_repro(&["fig3", "--jobs", "2", "--out", plain_dir.to_str().unwrap()]);
    let traced =
        run_repro(&["fig3", "--trace", "--jobs", "2", "--out", traced_dir.to_str().unwrap()]);

    assert_eq!(
        strip_comments(&plain),
        strip_comments(&traced),
        "tracing must not change the experiment output"
    );
    // every CSV the untraced run wrote must come out byte-identical
    let mut compared = 0;
    for entry in std::fs::read_dir(&plain_dir).expect("plain artifact dir") {
        let name = entry.unwrap().file_name().into_string().unwrap();
        assert_eq!(read(&plain_dir, &name), read(&traced_dir, &name), "{name} differs");
        compared += 1;
    }
    assert!(compared > 0, "untraced run must write artifacts");

    // the traced run produced its artifacts, and the trace validates
    let trace = read(&traced_dir, "trace.json");
    let stats = hpcsim_probe::validate_trace(&trace).expect("trace must validate");
    assert!(stats.spans > 0);
    assert!(read(&traced_dir, "metrics.json").contains("hpcsim-probe-metrics/1"));
    assert!(read(&traced_dir, "fig3_breakdown.csv").lines().count() > 1);
    assert!(read(&traced_dir, "trace_spans.csv").lines().count() > 1);

    let _ = std::fs::remove_dir_all(&base);
}
