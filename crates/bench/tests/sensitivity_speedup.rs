//! The batched-throughput guard for the Monte-Carlo sensitivity
//! battery (release builds only — debug timings measure the
//! optimizer's absence, not the design).
//!
//! The battery prices 1,000 seeded perturbation samples of the Fig 2
//! stencil DAG twice: once through the wide-lane batched evaluator
//! (32-sample chunks fanned out over the worker pool) and once as a
//! sequential one-sample-at-a-time loop — what a Monte-Carlo driver
//! without batching would do. The batched gain is the product of two
//! terms: the SIMD-lane term (delta re-pricing plus lane sharing
//! inside one worker) and the fan-out term (chunks spread over the
//! pool, while the baseline is sequential by construction). The
//! acceptance floor is 4× and applies in full wherever the pool has
//! at least four workers; on narrower machines only the lane term can
//! show, so the floor scales down to what a single worker owes
//! (≥ 1.3× — measured 1.9–2.2× even on a virtualized Xeon whose
//! 512-bit units deliver no real speedup over scalar issue).
//!
//! Correctness is asserted on every round, not just timing: a
//! zero-perturbation sample that drifts off the deterministic
//! engine's bits fails here before it can skew a sensitivity table.

#![cfg(not(debug_assertions))]

use hpcsim_core::{jobs, sensitivity_battery, Scale};

#[test]
fn batched_sensitivity_beats_looped_by_the_floor() {
    let workers = jobs() as f64;
    let floor = (1.3 * workers).min(4.0);
    // best-of-N: a noisy CI core can smear one round, and the looped
    // half dominates the wall time so noise inflates, not deflates, the
    // measured speedup's variance
    let mut best = 0.0f64;
    for round in 0..3 {
        let s = sensitivity_battery(Scale::Quick, 42);
        assert!(
            s.zero_identical,
            "round {round}: identity perturbation diverged from the deterministic engine"
        );
        assert_eq!(s.samples, 1000);
        assert!(s.rows.iter().all(|r| r.stddev_us > 0.0), "round {round}: flat row");
        eprintln!(
            "round {round}: batched {:.1} us/sample, looped {:.1} us/sample ({:.2}x)",
            s.batched_seconds * 1e6 / s.samples as f64,
            s.looped_seconds * 1e6 / s.samples as f64,
            s.speedup()
        );
        best = best.max(s.speedup());
        if best >= floor {
            break;
        }
    }
    assert!(
        best >= floor,
        "1000-sample batched sensitivity speedup {best:.1}x < {floor:.1}x floor ({workers} workers)"
    );
}
