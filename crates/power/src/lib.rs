//! # hpcsim-power
//!
//! The power and energy model behind the paper's §IV and Table 3.
//!
//! Instantaneous node power is a function of utilization:
//!
//! ```text
//! P_node(u) = [ static + Σcores(idle + dyn·u) + mem(u) + nic ] / η_psu
//!             + rack_overhead / nodes_per_rack
//! ```
//!
//! with per-component parameters from the machine spec. The parameters
//! are calibrated so the model reproduces the paper's measured operating
//! points — BG/P: 7.7 W/core under HPL, 7.3 W/core under "normal"
//! science workloads; XT4/QC: 51.0 and 48.4 W/core — and everything else
//! (MFlops/W, the POP simulated-years-per-day power economics) is then
//! *derived* by running the simulated benchmarks under this model. The
//! calibration tests in this crate pin those anchors.

use hpcsim_engine::{SimTime, TimeWeighted};
use hpcsim_machine::MachineSpec;
use serde::Serialize;

/// Utilization conventionally charged for compute-saturated runs (HPL).
pub const UTIL_HPL: f64 = 0.95;
/// Utilization conventionally charged for science workloads (POP, GYRO).
pub const UTIL_SCIENCE: f64 = 0.80;

/// Power model for one machine.
#[derive(Debug, Clone)]
pub struct PowerModel {
    spec: MachineSpec,
}

impl PowerModel {
    /// Build from a machine spec.
    pub fn new(spec: MachineSpec) -> Self {
        PowerModel { spec }
    }

    /// The machine this models.
    pub fn spec(&self) -> &MachineSpec {
        &self.spec
    }

    /// Instantaneous draw of one node at core utilization `u ∈ [0,1]`,
    /// including its prorated share of rack overhead, in watts.
    pub fn node_power_w(&self, u: f64) -> f64 {
        let u = u.clamp(0.0, 1.0);
        let p = &self.spec.power;
        let cores = self.spec.cores_per_node as f64;
        let inside = p.node_static_w
            + cores * (p.core_idle_w + p.core_dyn_w * u)
            + p.mem_w * (0.6 + 0.4 * u)
            + p.nic_w;
        inside / p.psu_efficiency
            + p.rack_overhead_w / self.spec.packaging.nodes_per_rack as f64
    }

    /// Draw per core at utilization `u` (Table 3's "per core (W)" rows).
    pub fn per_core_w(&self, u: f64) -> f64 {
        self.node_power_w(u) / self.spec.cores_per_node as f64
    }

    /// Aggregate draw of a job using `cores` cores at utilization `u`,
    /// in watts.
    pub fn aggregate_w(&self, cores: u64, u: f64) -> f64 {
        let nodes = (cores as f64 / self.spec.cores_per_node as f64).ceil();
        nodes * self.node_power_w(u)
    }

    /// MFlop/s per watt for a sustained flop rate at `cores` cores
    /// (the Green500 metric of §II.C / Table 3).
    pub fn mflops_per_watt(&self, sustained_flops: f64, cores: u64, u: f64) -> f64 {
        sustained_flops / 1e6 / self.aggregate_w(cores, u)
    }
}

/// Integrates a power signal over virtual time to yield energy.
#[derive(Debug, Clone, Default)]
pub struct EnergyMeter {
    signal: TimeWeighted,
}

impl EnergyMeter {
    /// Fresh meter.
    pub fn new() -> Self {
        EnergyMeter { signal: TimeWeighted::new() }
    }

    /// Declare the aggregate draw (watts) from virtual time `t` onward.
    pub fn set_power(&mut self, t: SimTime, watts: f64) {
        self.signal.set(t, watts);
    }

    /// Energy in joules consumed up to `t`.
    pub fn energy_joules(&self, t: SimTime) -> f64 {
        self.signal.integral_to(t)
    }

    /// Mean draw over `[0, t]`, watts.
    pub fn mean_watts(&self, t: SimTime) -> f64 {
        self.signal.mean_to(t)
    }

    /// Peak draw declared so far, watts.
    pub fn peak_watts(&self) -> f64 {
        self.signal.peak()
    }
}

/// One row of a Table 3-style power summary.
#[derive(Debug, Clone, Serialize)]
pub struct PowerSummary {
    /// Machine label.
    pub machine: String,
    /// Cores used.
    pub cores: u64,
    /// Aggregate draw under HPL, kW.
    pub hpl_kw: f64,
    /// Per-core draw under HPL, W.
    pub hpl_w_per_core: f64,
    /// Aggregate draw under science workloads, kW.
    pub normal_kw: f64,
    /// Per-core draw under science workloads, W.
    pub normal_w_per_core: f64,
}

impl PowerSummary {
    /// Build the summary for `cores` cores of `model`'s machine.
    pub fn for_cores(model: &PowerModel, cores: u64) -> Self {
        PowerSummary {
            machine: model.spec().id.label().to_string(),
            cores,
            hpl_kw: model.aggregate_w(cores, UTIL_HPL) / 1e3,
            hpl_w_per_core: model.per_core_w(UTIL_HPL),
            normal_kw: model.aggregate_w(cores, UTIL_SCIENCE) / 1e3,
            normal_w_per_core: model.per_core_w(UTIL_SCIENCE),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcsim_machine::registry::{bluegene_l, bluegene_p, xt4_qc};

    fn pct_err(got: f64, want: f64) -> f64 {
        ((got - want) / want).abs() * 100.0
    }

    /// Calibration anchor (Table 3): BG/P ≈ 7.7 W/core under HPL.
    #[test]
    fn bgp_hpl_power_anchor() {
        let m = PowerModel::new(bluegene_p());
        let w = m.per_core_w(UTIL_HPL);
        assert!(pct_err(w, 7.7) < 5.0, "BG/P HPL {w:.2} W/core (want 7.7 ± 5%)");
    }

    /// Calibration anchor (Table 3): BG/P ≈ 7.3 W/core on science codes.
    #[test]
    fn bgp_normal_power_anchor() {
        let m = PowerModel::new(bluegene_p());
        let w = m.per_core_w(UTIL_SCIENCE);
        assert!(pct_err(w, 7.3) < 5.0, "BG/P normal {w:.2} W/core (want 7.3 ± 5%)");
    }

    /// Calibration anchor (Table 3): XT4/QC ≈ 51.0 W/core under HPL.
    #[test]
    fn xt_hpl_power_anchor() {
        let m = PowerModel::new(xt4_qc());
        let w = m.per_core_w(UTIL_HPL);
        assert!(pct_err(w, 51.0) < 5.0, "XT HPL {w:.2} W/core (want 51.0 ± 5%)");
    }

    /// Calibration anchor (Table 3): XT4/QC ≈ 48.4 W/core on science codes.
    #[test]
    fn xt_normal_power_anchor() {
        let m = PowerModel::new(xt4_qc());
        let w = m.per_core_w(UTIL_SCIENCE);
        assert!(pct_err(w, 48.4) < 5.0, "XT normal {w:.2} W/core (want 48.4 ± 5%)");
    }

    /// Table 3 aggregate check: 8192 BG/P cores ≈ 63 kW under HPL.
    #[test]
    fn bgp_aggregate_8192_cores() {
        let m = PowerModel::new(bluegene_p());
        let kw = m.aggregate_w(8192, UTIL_HPL) / 1e3;
        assert!(pct_err(kw, 63.0) < 5.0, "aggregate {kw:.1} kW (want 63 ± 5%)");
    }

    /// The paper's §I.A claim: ~6.6× per-core power advantage for BG/P.
    #[test]
    fn per_core_power_ratio() {
        let bgp = PowerModel::new(bluegene_p()).per_core_w(UTIL_HPL);
        let xt = PowerModel::new(xt4_qc()).per_core_w(UTIL_HPL);
        let ratio = xt / bgp;
        assert!((5.9..7.3).contains(&ratio), "ratio {ratio:.2} (paper: 6.6)");
    }

    /// Power is monotone in utilization and bounded by the clamp.
    #[test]
    fn monotone_and_clamped_in_utilization() {
        let m = PowerModel::new(bluegene_p());
        let idle = m.node_power_w(0.0);
        let half = m.node_power_w(0.5);
        let full = m.node_power_w(1.0);
        assert!(idle < half && half < full);
        assert_eq!(m.node_power_w(-3.0), idle);
        assert_eq!(m.node_power_w(9.0), full);
    }

    /// §I.A: the BG/P SoC is ~1.8 W per GFlop/s at the chip level;
    /// our full-system number (which adds memory, NIC, PSU loss and rack
    /// overhead) must land above that chip-only bound but same order.
    #[test]
    fn watts_per_gflop_is_order_correct() {
        let m = PowerModel::new(bluegene_p());
        let w_per_gf = m.node_power_w(UTIL_HPL) / 13.6;
        assert!(w_per_gf > 1.8 && w_per_gf < 3.0, "{w_per_gf:.2} W per GF/s");
    }

    #[test]
    fn mflops_per_watt_green500_scale() {
        // TOP500 run §II.C: 21.4 TF on 8192 cores at ~63 kW -> ~340 MF/W
        let m = PowerModel::new(bluegene_p());
        let mfw = m.mflops_per_watt(21.4e12, 8192, UTIL_HPL);
        assert!((300.0..380.0).contains(&mfw), "BG/P {mfw:.0} MF/W");
        // XT: 205 TF on 30976 cores at ~1580 kW -> ~130 MF/W
        let x = PowerModel::new(xt4_qc());
        let mfw_x = x.mflops_per_watt(205.0e12, 30976, UTIL_HPL);
        assert!((110.0..150.0).contains(&mfw_x), "XT {mfw_x:.0} MF/W");
    }

    #[test]
    fn energy_meter_integrates() {
        let mut e = EnergyMeter::new();
        e.set_power(SimTime::ZERO, 1000.0);
        e.set_power(SimTime::SEC, 500.0);
        let j = e.energy_joules(SimTime::SEC * 3);
        assert!((j - 2000.0).abs() < 1e-9);
        assert!((e.mean_watts(SimTime::SEC * 3) - 2000.0 / 3.0).abs() < 1e-9);
        assert_eq!(e.peak_watts(), 1000.0);
    }

    #[test]
    fn power_summary_rows() {
        let s = PowerSummary::for_cores(&PowerModel::new(bluegene_p()), 8192);
        assert_eq!(s.machine, "BG/P");
        assert!(s.hpl_kw > s.normal_kw);
        assert!((s.hpl_w_per_core - 7.7).abs() < 0.5);
    }

    /// BG/P improved on BG/L in watts per GFlop/s (the generational
    /// efficiency claim), and both BlueGenes crush the XT per core.
    #[test]
    fn family_ordering() {
        let per_gf = |spec: hpcsim_machine::MachineSpec| {
            let peak_gf = spec.node_peak_flops() / 1e9;
            PowerModel::new(spec).node_power_w(UTIL_HPL) / peak_gf
        };
        assert!(per_gf(bluegene_p()) < per_gf(bluegene_l()));
        let bgp = PowerModel::new(bluegene_p()).per_core_w(UTIL_HPL);
        let xt = PowerModel::new(xt4_qc()).per_core_w(UTIL_HPL);
        assert!(bgp * 4.0 < xt);
    }
}
