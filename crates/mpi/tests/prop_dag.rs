//! Property tests pinning the DAG sweep engine to the replay oracle:
//! on contention-flat machines, `TraceDag::evaluate` must agree with
//! `TraceSim::replay_traces` *exactly* — per-rank finish and busy
//! clocks, marks, byte and message counts — over randomized programs
//! (mixed eager/rendezvous payloads, send-first and receive-first wait
//! orders, stragglers, collectives) and randomized mappings.

use hpcsim_engine::SimTime;
use hpcsim_machine::registry::{bluegene_p, xt4_qc};
use hpcsim_machine::ExecMode;
use hpcsim_mpi::{
    CommId, FnProgram, Mpi, RankLayout, SimConfig, TraceDag, TraceSim,
};
use hpcsim_net::DType;
use hpcsim_topo::Mapping;
use proptest::prelude::*;
use std::sync::Arc;

fn permutation(n: usize, seed: u64) -> Vec<usize> {
    let mut v: Vec<usize> = (0..n).collect();
    let mut state = seed;
    for i in (1..n).rev() {
        state = hpcsim_engine::splitmix64(state);
        let j = (state % (i as u64 + 1)) as usize;
        v.swap(i, j);
    }
    v
}

/// One communication round, precomputed so the rank closure is a pure
/// function of `(rank, spec)`.
struct Round {
    perm: Vec<usize>,
    bytes: u64,
    tag: u32,
    /// 0 = receive-first waits, 1 = send-first waits (provokes
    /// unexpected-message copies), 2 = blocking sendrecv.
    style: u8,
    /// Per-rank straggler delay in microseconds.
    delay_us: Vec<u64>,
    /// Collective appended after the exchange (none when `None`).
    coll: Option<u8>,
}

fn rounds(n: usize, n_rounds: usize, seed: u64) -> Vec<Round> {
    let mut state = seed;
    let mut next = move || {
        state = hpcsim_engine::splitmix64(state);
        state
    };
    (0..n_rounds)
        .map(|round| {
            let perm = permutation(n, next());
            // Mix payload regimes: tiny eager, mid eager, rendezvous.
            let bytes = match next() % 3 {
                0 => 1 + next() % 256,
                1 => 1 + next() % 8192,
                _ => 1 + next() % (1 << 20),
            };
            let style = (next() % 3) as u8;
            let delay_us = (0..n).map(|_| next() % 200).collect();
            let coll = match next() % 4 {
                0 => Some(0),
                1 => Some(1),
                _ => None,
            };
            Round { perm, bytes, tag: round as u32, style, delay_us, coll }
        })
        .collect()
}

fn round_program(spec: Arc<Vec<Round>>) -> impl Fn(&mut Mpi) + Sync {
    move |mpi: &mut Mpi| {
        let me = mpi.rank();
        for (i, round) in spec.iter().enumerate() {
            if round.delay_us[me] > 0 {
                mpi.delay(SimTime::from_us(round.delay_us[me]));
            }
            let dst = round.perm[me];
            let src = round.perm.iter().position(|&x| x == me).unwrap();
            if dst != me {
                match round.style {
                    0 => {
                        let r = mpi.irecv(src, round.tag, round.bytes);
                        let s = mpi.isend(dst, round.tag, round.bytes);
                        mpi.wait(r);
                        mpi.wait(s);
                    }
                    1 => {
                        let s = mpi.isend(dst, round.tag, round.bytes);
                        let r = mpi.irecv(src, round.tag, round.bytes);
                        mpi.wait(s);
                        mpi.wait(r);
                    }
                    _ => {
                        mpi.sendrecv(dst, round.tag, round.bytes, src, round.tag, round.bytes);
                    }
                }
            }
            match round.coll {
                Some(0) => mpi.barrier(CommId::WORLD),
                Some(_) => mpi.allreduce(CommId::WORLD, 64, DType::F64),
                None => {}
            }
            mpi.mark(i as u32);
        }
    }
}

fn assert_exact(replay: &hpcsim_mpi::SimResult, dag: &hpcsim_mpi::SimResult) {
    assert_eq!(replay.finish, dag.finish);
    assert_eq!(replay.busy, dag.busy);
    assert_eq!(replay.bytes_sent, dag.bytes_sent);
    assert_eq!(replay.messages, dag.messages);
    assert_eq!(replay.marks, dag.marks);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// DAG evaluation equals replay exactly on contention-flat machines,
    /// for random programs, both machine families, and both modes.
    #[test]
    fn dag_matches_replay_on_flat_machines(
        n in 2usize..32,
        n_rounds in 1usize..6,
        seed: u64,
    ) {
        let spec = Arc::new(rounds(n, n_rounds, seed));
        let prog = FnProgram(round_program(Arc::clone(&spec)));
        let traces = TraceSim::trace_program(&prog, n, 1);
        let dag = TraceDag::compile_world(&traces);
        for machine in [bluegene_p(), xt4_qc()] {
            for mode in [ExecMode::Vn, ExecMode::Smp] {
                let cfg = SimConfig::new(machine.clone().with_flat_contention(), n, mode);
                let replay = TraceSim::new(cfg.clone()).replay_traces(&traces);
                let fast = dag.evaluate(&cfg);
                assert_exact(&replay, &fast);
            }
        }
    }

    /// One compiled DAG serves every mapping: agreement holds point by
    /// point across randomized BlueGene mappings (the Fig 2c/d sweep
    /// shape).
    #[test]
    fn dag_matches_replay_across_mappings(
        n in 2usize..48,
        n_rounds in 1usize..5,
        seed: u64,
        mapping_seed: u64,
    ) {
        let spec = Arc::new(rounds(n, n_rounds, seed));
        let prog = FnProgram(round_program(Arc::clone(&spec)));
        let traces = TraceSim::trace_program(&prog, n, 1);
        let dag = TraceDag::compile_world(&traces);
        let machine = bluegene_p().with_flat_contention();
        let predefined = Mapping::predefined();
        let (_, mapping) = &predefined[(mapping_seed % predefined.len() as u64) as usize];
        let layout = RankLayout::bluegene(&machine, n, ExecMode::Vn, *mapping);
        let cfg = SimConfig { machine, mode: ExecMode::Vn, threads: 1, layout };
        let replay = TraceSim::new(cfg.clone()).replay_traces(&traces);
        assert_exact(&replay, &dag.evaluate(&cfg));
    }

    /// A zero-perturbation sample inside a batched Monte-Carlo pass is
    /// bit-identical to the single-point `evaluate_many` result, at
    /// every batch shape (scalar tail, padded narrow batch, wide
    /// batch), and perturbed lanes are batch-invariant: the batched
    /// result equals evaluating each sample on its own.
    #[test]
    fn zero_perturbation_is_bit_identical_in_batches(
        n in 2usize..24,
        n_rounds in 1usize..4,
        seed: u64,
        batch in 1usize..40,
    ) {
        use hpcsim_machine::{Perturbation, PerturbSpec, PerturbationSampler};
        let spec = Arc::new(rounds(n, n_rounds, seed));
        let prog = FnProgram(round_program(Arc::clone(&spec)));
        let traces = TraceSim::trace_program(&prog, n, 1);
        let dag = TraceDag::compile_world(&traces);
        let cfg = SimConfig::new(bluegene_p().with_flat_contention(), n, ExecMode::Vn);
        let base = &dag.evaluate_many(std::slice::from_ref(&cfg))[0];
        let sampler = PerturbationSampler::new(seed ^ 0x9e37_79b9, PerturbSpec::default());
        let mut samples: Vec<Perturbation> =
            (0..batch as u64).map(|i| sampler.sample(i)).collect();
        // pin a zero-perturbation lane somewhere inside the batch
        let zero_at = (seed % batch as u64) as usize;
        samples[zero_at] = Perturbation::IDENTITY;
        let batched = dag.evaluate_perturbed(&cfg, &samples);
        prop_assert_eq!(batched.len(), samples.len());
        assert_exact(base, &batched[zero_at]);
        for (i, s) in samples.iter().enumerate() {
            let single = &dag.evaluate_perturbed(&cfg, std::slice::from_ref(s))[0];
            assert_eq!(single.finish, batched[i].finish, "sample {i} batch-variant");
            assert_eq!(single.busy, batched[i].busy, "sample {i} batch-variant");
            assert_eq!(single.marks, batched[i].marks, "sample {i} batch-variant");
        }
    }

    /// Compilation and evaluation are deterministic: two compiles of the
    /// same trace produce identical results and identical stats.
    #[test]
    fn dag_is_deterministic(n in 2usize..24, seed: u64) {
        let spec = Arc::new(rounds(n, 3, seed));
        let prog = FnProgram(round_program(Arc::clone(&spec)));
        let traces = TraceSim::trace_program(&prog, n, 1);
        let cfg = SimConfig::new(bluegene_p().with_flat_contention(), n, ExecMode::Vn);
        let a = TraceDag::compile_world(&traces);
        let b = TraceDag::compile_world(&traces);
        assert_exact(&a.evaluate(&cfg), &b.evaluate(&cfg));
        prop_assert_eq!(a.stats().nodes, b.stats().nodes);
        prop_assert_eq!(a.stats().edges, b.stats().edges);
        prop_assert_eq!(a.stats().messages, b.stats().messages);
    }
}
