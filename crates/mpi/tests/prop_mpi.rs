//! Property tests for the replay engine: conservation (every send
//! matched exactly once), determinism, monotone makespans, and
//! mode-independence invariants — over randomized communication patterns.

use hpcsim_engine::SimTime;
use hpcsim_machine::registry::bluegene_p;
use hpcsim_machine::{ExecMode, Workload};
use hpcsim_mpi::{CommId, FnProgram, Mpi, SimConfig, TraceSim};
use hpcsim_net::DType;
use proptest::prelude::*;
use std::sync::Arc;

/// A randomized, deadlock-free communication pattern: a permutation ring
/// where rank i sends to perm[i] and receives from perm⁻¹[i].
fn ring_program(perm: Arc<Vec<usize>>, bytes: u64) -> impl Fn(&mut Mpi) + Sync {
    move |mpi: &mut Mpi| {
        let me = mpi.rank();
        let dst = perm[me];
        let src = perm.iter().position(|&x| x == me).unwrap();
        if dst != me {
            let r = mpi.irecv(src, 7, bytes);
            let s = mpi.isend(dst, 7, bytes);
            mpi.wait(r);
            mpi.wait(s);
        }
    }
}

fn permutation(n: usize, seed: u64) -> Vec<usize> {
    // deterministic Fisher-Yates from a splitmix stream
    let mut v: Vec<usize> = (0..n).collect();
    let mut state = seed;
    for i in (1..n).rev() {
        state = hpcsim_engine::splitmix64(state);
        let j = (state % (i as u64 + 1)) as usize;
        v.swap(i, j);
    }
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every message sent is delivered exactly once: the replay finishes
    /// (no deadlock) and counts match, for any permutation pattern.
    #[test]
    fn permutation_traffic_conserves(
        n in 2usize..64,
        seed: u64,
        bytes in 1u64..1 << 18
    ) {
        let perm = Arc::new(permutation(n, seed));
        let moved = perm.iter().enumerate().filter(|&(i, &d)| i != d).count() as u64;
        let mut sim = TraceSim::new(SimConfig::new(bluegene_p(), n, ExecMode::Vn));
        let res = sim.run(&FnProgram(ring_program(Arc::clone(&perm), bytes)));
        prop_assert_eq!(res.messages, moved);
        prop_assert_eq!(res.bytes_sent, moved * bytes);
    }

    /// Replay is deterministic for any pattern: identical runs produce
    /// identical per-rank finish times.
    #[test]
    fn replay_deterministic(n in 2usize..48, seed: u64) {
        let run = || {
            let perm = Arc::new(permutation(n, seed));
            let mut sim = TraceSim::new(SimConfig::new(bluegene_p(), n, ExecMode::Vn));
            sim.run(&FnProgram(ring_program(perm, 4096)))
        };
        let a = run();
        let b = run();
        prop_assert_eq!(a.finish, b.finish);
        prop_assert_eq!(a.busy, b.busy);
    }

    /// Adding compute before communication never decreases any rank's
    /// finish time (monotonicity of the virtual clocks).
    #[test]
    fn extra_work_never_helps(n in 2usize..32, seed: u64, work_us in 0u64..500) {
        let run = |extra: u64| {
            let perm = Arc::new(permutation(n, seed));
            let mut sim = TraceSim::new(SimConfig::new(bluegene_p(), n, ExecMode::Vn));
            sim.run(&FnProgram(move |mpi: &mut Mpi| {
                mpi.delay(SimTime::from_us(extra));
                (ring_program(Arc::clone(&perm), 2048))(mpi);
            }))
        };
        let base = run(0);
        let loaded = run(work_us);
        for (b, l) in base.finish.iter().zip(&loaded.finish) {
            prop_assert!(l >= b);
        }
    }

    /// Collectives synchronize: after a barrier, every rank's clock is at
    /// least the straggler's pre-barrier clock, for any straggler.
    #[test]
    fn barrier_synchronizes(n in 2usize..64, straggler_seed: usize, delay_us in 1u64..2000) {
        let n_ranks = n;
        let straggler = straggler_seed % n_ranks;
        let mut sim = TraceSim::new(SimConfig::new(bluegene_p(), n_ranks, ExecMode::Vn));
        let res = sim.run(&FnProgram(move |mpi: &mut Mpi| {
            if mpi.rank() == straggler {
                mpi.delay(SimTime::from_us(delay_us));
            }
            mpi.barrier(CommId::WORLD);
        }));
        let floor = SimTime::from_us(delay_us);
        for f in &res.finish {
            prop_assert!(*f >= floor);
        }
    }

    /// Busy time is conserved: a rank's busy time equals the sum of its
    /// compute blocks regardless of what other ranks do.
    #[test]
    fn busy_time_is_local(n in 2usize..32, flops in 1.0e6f64..1.0e9) {
        let mut sim = TraceSim::new(SimConfig::new(bluegene_p(), n, ExecMode::Vn));
        let res = sim.run(&FnProgram(move |mpi: &mut Mpi| {
            if mpi.rank().is_multiple_of(2) {
                mpi.compute(Workload::Custom {
                    flops, dram_bytes: 0.0, simd_eff: 1.0, serial_frac: 0.0,
                });
            }
            mpi.allreduce(CommId::WORLD, 8, DType::F64);
        }));
        let expect = SimTime::from_secs(flops / bluegene_p().core_peak_flops());
        for (r, b) in res.busy.iter().enumerate() {
            if r.is_multiple_of(2) {
                let err = b.as_ps().abs_diff(expect.as_ps());
                prop_assert!(err <= 1, "rank {r}: busy {b} vs {expect}");
            } else {
                prop_assert_eq!(*b, SimTime::ZERO);
            }
        }
    }

    /// Makespan is monotone in payload size for a fixed pattern.
    #[test]
    fn makespan_monotone_in_bytes(n in 2usize..32, seed: u64, b1 in 1u64..1 << 20) {
        let b2 = b1 * 2;
        let run = |bytes: u64| {
            let perm = Arc::new(permutation(n, seed));
            let mut sim = TraceSim::new(SimConfig::new(bluegene_p(), n, ExecMode::Vn));
            sim.run(&FnProgram(ring_program(perm, bytes))).makespan()
        };
        prop_assert!(run(b2) >= run(b1));
    }
}
