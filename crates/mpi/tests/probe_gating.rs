//! Gate discipline and span-accounting invariants of the probe hooks.
//!
//! Two properties keep observability honest:
//!
//! 1. **Gate discipline** — every hook site tests `T::ENABLED` before
//!    calling a tracer method. A `PanickingTracer` (disabled constant,
//!    panicking methods) replayed over a scenario that reaches every
//!    hook path proves no call slips through, deterministically and
//!    independent of optimizer behaviour.
//! 2. **Clock tiling** — with recording on, each rank's cpu spans sum
//!    to exactly its finish time (integer picoseconds, no rounding),
//!    and the traced result is identical to the untraced one.

use hpcsim_engine::SimTime;
use hpcsim_machine::registry::bluegene_p;
use hpcsim_machine::{ExecMode, Workload};
use hpcsim_mpi::{CommId, FnProgram, Mpi, SimConfig, SimResult, TraceSim};
use hpcsim_net::DType;
use hpcsim_probe::{GaugeId, RingRecorder, SpanEvent, Tracer};

/// Disabled tracer whose methods all panic: if any hook site forgets its
/// `T::ENABLED` guard, the replay below explodes.
struct PanickingTracer;

impl Tracer for PanickingTracer {
    const ENABLED: bool = false;

    fn span(&mut self, ev: SpanEvent) {
        panic!("span hook reached with tracing disabled: {ev:?}");
    }

    fn link_delta(&mut self, link: u32, t: SimTime, delta: i8) {
        panic!("link_delta hook reached with tracing disabled: link {link} at {t} ({delta:+})");
    }

    fn gauge(&mut self, id: GaugeId, value: u64) {
        panic!("gauge hook reached with tracing disabled: {id:?} = {value}");
    }
}

/// A scenario that reaches every hook path: compute, delay, eager send,
/// rendezvous send, late-posted receive (unexpected copy), explicit
/// waits, and a collective with a straggler.
fn busy_program(mpi: &mut Mpi) {
    let size = mpi.size();
    let rank = mpi.rank();
    let next = (rank + 1) % size;
    let prev = (rank + size - 1) % size;
    mpi.compute(Workload::Custom {
        flops: 1e6 * (1 + rank % 3) as f64,
        dram_bytes: 0.0,
        simd_eff: 0.9,
        serial_frac: 0.0,
    });
    // unexpected-message pattern: the odd rank blocks on the late "gate"
    // message (tag 2) while the early tag-1 message lands unmatched, so
    // the tag-1 receive pays the unexpected copy
    if rank.is_multiple_of(2) {
        mpi.send(next, 1, 512);
        mpi.delay(SimTime::from_us(30));
        mpi.send(next, 2, 512);
    } else {
        mpi.recv(prev, 2, 512);
        mpi.recv(prev, 1, 512);
    }
    // rendezvous-sized exchange (well above the BG/P eager threshold)
    mpi.sendrecv(next, 2, 1 << 20, prev, 2, 1 << 20);
    if rank == 0 {
        mpi.delay(SimTime::from_us(100)); // collective straggler
    }
    mpi.allreduce(CommId::WORLD, 4096, DType::F64);
}

fn run_with<T: Tracer>(tracer: &mut T) -> SimResult {
    let mut sim = TraceSim::new(SimConfig::new(bluegene_p(), 16, ExecMode::Vn));
    sim.run_probe(&FnProgram(busy_program), tracer)
}

#[test]
fn disabled_tracer_hooks_are_unreachable() {
    let res = run_with(&mut PanickingTracer);
    assert!(res.makespan() > SimTime::ZERO);
}

#[test]
fn traced_run_equals_untraced_run() {
    let mut rec = RingRecorder::new();
    let traced = run_with(&mut rec);
    let mut sim = TraceSim::new(SimConfig::new(bluegene_p(), 16, ExecMode::Vn));
    let plain = sim.run(&FnProgram(busy_program));
    assert_eq!(traced.finish, plain.finish);
    assert_eq!(traced.busy, plain.busy);
    assert_eq!(traced.bytes_sent, plain.bytes_sent);
    assert_eq!(traced.messages, plain.messages);
}

#[test]
fn cpu_spans_tile_each_rank_clock_exactly() {
    let mut rec = RingRecorder::new();
    let res = run_with(&mut rec);
    assert_eq!(rec.dropped(), 0, "scenario must fit the default ring");
    let sums = rec.cpu_sums();
    assert_eq!(sums.len(), res.finish.len());
    for (r, (&sum, &fin)) in sums.iter().zip(&res.finish).enumerate() {
        assert_eq!(sum, fin, "rank {r}: cpu spans must sum to the finish time");
    }
}

#[test]
fn recorder_observes_protocol_events() {
    let mut rec = RingRecorder::new();
    let res = run_with(&mut rec);
    assert!(rec.unexpected() > 0, "odd ranks post late, copies must be seen");
    let kinds: Vec<&str> = rec.spans().iter().map(|s| s.kind.label()).collect();
    for want in
        ["compute", "delay", "send_overhead", "recv_overhead", "msg_wire", "rendezvous", "collective_wait"]
    {
        assert!(kinds.contains(&want), "missing span kind {want}");
    }
    assert!(rec.gauge_value(GaugeId::EventQueueDepth) > 0);
    assert!(rec.gauge_value(GaugeId::PostedMatchDepth) > 0);
    assert!(rec.gauge_value(GaugeId::ArrivedMatchDepth) > 0);
    // every +1 link delta is matched by a -1 (all flows released)
    let balance: i64 = rec.link_deltas().iter().map(|&(_, _, d)| d as i64).sum();
    assert_eq!(balance, 0);
    let usage = rec.link_usage(res.makespan());
    assert!(usage.iter().any(|u| u.peak > 0), "some link must carry a flow");
}
