//! # hpcsim-mpi
//!
//! A simulated MPI. Rank programs are ordinary Rust functions that run
//! once per rank against an [`Mpi`] handle and *record a trace* of
//! operations (compute blocks, sends/receives, collectives). The
//! [`sim::TraceSim`] engine then replays all traces against the machine,
//! topology and network models, producing per-rank virtual-time clocks.
//!
//! Trace-driven simulation is sound here because none of the paper's
//! benchmarks or applications branch on message *contents* — iteration
//! counts, neighbours and payload sizes are all functions of rank and
//! configuration. (This is the same soundness argument LogGOPSim makes.)
//!
//! What the replay models:
//! * **eager vs rendezvous** point-to-point protocols (threshold from the
//!   machine spec), including the unexpected-message copy penalty when a
//!   message arrives before its receive is posted — this is what makes
//!   HALO's protocol variants differ (Fig 2a/b);
//! * **link and endpoint contention** via the flow tracker — this is what
//!   makes process mappings differ for bandwidth-bound halos (Fig 2c/d);
//! * **collectives** via the closed-form models (hardware tree on
//!   BlueGene, software algorithms on the XT) with arrival-skew
//!   semantics: a collective completes `duration` after its *last*
//!   member arrives, so load imbalance shows up exactly as the paper's
//!   POP barrier experiment shows it;
//! * **execution modes** — VN/DUAL/SMP placement of ranks onto nodes and
//!   the corresponding resource sharing, via [`layout::RankLayout`].
//!
//! For parameter sweeps that replay one trace under many (machine,
//! mapping, mode) points, [`dag::TraceDag`] compiles the trace once into
//! a task DAG and evaluates each point in a single pass — exact against
//! replay on contention-flat machines, with automatic fallback elsewhere
//! (see the [`dag`] module docs).

pub mod dag;
pub mod layout;
pub mod ops;
pub mod program;
pub mod result;
pub mod sim;
pub mod wire;

pub use dag::{
    note_fallback_contention, note_fallback_faults, set_sweep_engine, sweep_engine, DagStats,
    SweepEngine, TraceDag,
};
pub use layout::RankLayout;
pub use ops::{CommId, Op, Req};
pub use wire::{parse_traces, write_traces};
pub use program::{FnProgram, Mpi, Program};
pub use result::{SimError, SimResult};
pub use sim::{SimConfig, TraceSim};
