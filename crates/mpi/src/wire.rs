//! Stable text serialization of recorded traces.
//!
//! The scenario cache's tier-2 store keeps recorded traces on disk so a
//! later process can replay (or DAG-compile) them without re-recording.
//! The format is line-oriented and exact: every float is written as its
//! IEEE-754 bit pattern in hex, so serialize → parse is the identity on
//! the trace and replaying a loaded trace is bit-identical to replaying
//! the original.
//!
//! ```text
//! hpcsim-trace/1 <ranks>
//! rank <index> <op-count>
//! c dgemm 2000 1            (compute: workload args, threads)
//! s 5 3 4096 0              (isend: dst tag bytes req)
//! k 0 allreduce 512 f64     (collective: comm op args)
//! ...
//! ```

use crate::ops::{CommId, Op, Req};
use hpcsim_engine::SimTime;
use hpcsim_machine::Workload;
use hpcsim_net::{CollectiveOp, DType};
use std::fmt::Write as _;

/// Format-identifying first token of a serialized trace.
pub const TRACE_MAGIC: &str = "hpcsim-trace/1";

fn push_f64(out: &mut String, v: f64) {
    let _ = write!(out, " 0x{:016x}", v.to_bits());
}

fn dtype_name(d: DType) -> &'static str {
    match d {
        DType::F32 => "f32",
        DType::F64 => "f64",
        DType::Int => "int",
    }
}

fn write_workload(out: &mut String, w: &Workload) {
    match *w {
        Workload::Dgemm { n } => {
            let _ = write!(out, "dgemm {n}");
        }
        Workload::LuUpdate { m, n, k } => {
            let _ = write!(out, "lu {m} {n} {k}");
        }
        Workload::StreamCopy { n } => {
            let _ = write!(out, "scopy {n}");
        }
        Workload::StreamScale { n } => {
            let _ = write!(out, "sscale {n}");
        }
        Workload::StreamAdd { n } => {
            let _ = write!(out, "sadd {n}");
        }
        Workload::StreamTriad { n } => {
            let _ = write!(out, "striad {n}");
        }
        Workload::Fft1d { n } => {
            let _ = write!(out, "fft {n}");
        }
        Workload::RandomAccess { updates, table_bytes } => {
            let _ = write!(out, "ra {updates} {table_bytes}");
        }
        Workload::Stencil { points, flops_per_point, bytes_per_point } => {
            let _ = write!(out, "stencil {points}");
            push_f64(out, flops_per_point);
            push_f64(out, bytes_per_point);
        }
        Workload::Chemistry { points, flops_per_point } => {
            let _ = write!(out, "chem {points}");
            push_f64(out, flops_per_point);
        }
        Workload::MdForce { pairs, flops_per_pair } => {
            let _ = write!(out, "mdforce {pairs}");
            push_f64(out, flops_per_pair);
        }
        Workload::Custom { flops, dram_bytes, simd_eff, serial_frac } => {
            let _ = write!(out, "custom");
            push_f64(out, flops);
            push_f64(out, dram_bytes);
            push_f64(out, simd_eff);
            push_f64(out, serial_frac);
        }
    }
}

fn write_collective(out: &mut String, op: &CollectiveOp) {
    match *op {
        CollectiveOp::Barrier => {
            let _ = write!(out, "barrier");
        }
        CollectiveOp::Bcast { bytes } => {
            let _ = write!(out, "bcast {bytes}");
        }
        CollectiveOp::Reduce { bytes, dtype } => {
            let _ = write!(out, "reduce {bytes} {}", dtype_name(dtype));
        }
        CollectiveOp::Allreduce { bytes, dtype } => {
            let _ = write!(out, "allreduce {bytes} {}", dtype_name(dtype));
        }
        CollectiveOp::Allgather { bytes_per_rank } => {
            let _ = write!(out, "allgather {bytes_per_rank}");
        }
        CollectiveOp::Alltoall { bytes_per_pair } => {
            let _ = write!(out, "alltoall {bytes_per_pair}");
        }
    }
}

fn write_op(out: &mut String, op: &Op) {
    match op {
        Op::Compute { work, threads } => {
            out.push_str("c ");
            write_workload(out, work);
            let _ = write!(out, " {threads}");
        }
        Op::Delay { time } => {
            let _ = write!(out, "d {}", time.0);
        }
        Op::Isend { dst, tag, bytes, req } => {
            let _ = write!(out, "s {dst} {tag} {bytes} {}", req.0);
        }
        Op::Irecv { src, tag, bytes, req } => {
            let _ = write!(out, "r {src} {tag} {bytes} {}", req.0);
        }
        Op::Wait { req } => {
            let _ = write!(out, "w {}", req.0);
        }
        Op::Collective { comm, op } => {
            let _ = write!(out, "k {} ", comm.0);
            write_collective(out, op);
        }
        Op::Mark { id } => {
            let _ = write!(out, "m {id}");
        }
    }
    out.push('\n');
}

/// Serialize a whole world of per-rank traces.
pub fn write_traces(traces: &[Vec<Op>]) -> String {
    let total: usize = traces.iter().map(Vec::len).sum();
    // ~16 bytes per op plus headers is a comfortable overestimate
    let mut out = String::with_capacity(32 * total + 16 * traces.len() + 32);
    let _ = writeln!(out, "{TRACE_MAGIC} {}", traces.len());
    for (i, trace) in traces.iter().enumerate() {
        let _ = writeln!(out, "rank {i} {}", trace.len());
        for op in trace {
            write_op(&mut out, op);
        }
    }
    out
}

/// One-line parse diagnostic: what was malformed and where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.message)
    }
}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError { line, message: message.into() })
}

fn parse_u64(line: usize, tok: Option<&str>, what: &str) -> Result<u64, ParseError> {
    let t = tok.ok_or(ParseError { line, message: format!("missing {what}") })?;
    t.parse::<u64>().map_err(|_| ParseError { line, message: format!("bad {what} {t:?}") })
}

fn parse_f64(line: usize, tok: Option<&str>, what: &str) -> Result<f64, ParseError> {
    let t = tok.ok_or(ParseError { line, message: format!("missing {what}") })?;
    let hex = t
        .strip_prefix("0x")
        .ok_or(ParseError { line, message: format!("{what} must be 0x-prefixed bits, got {t:?}") })?;
    let bits = u64::from_str_radix(hex, 16)
        .map_err(|_| ParseError { line, message: format!("bad {what} bits {t:?}") })?;
    Ok(f64::from_bits(bits))
}

fn parse_dtype(line: usize, tok: Option<&str>) -> Result<DType, ParseError> {
    match tok {
        Some("f32") => Ok(DType::F32),
        Some("f64") => Ok(DType::F64),
        Some("int") => Ok(DType::Int),
        other => err(line, format!("bad dtype {other:?}")),
    }
}

fn parse_workload<'a>(
    line: usize,
    toks: &mut impl Iterator<Item = &'a str>,
) -> Result<Workload, ParseError> {
    let kind = toks.next().ok_or(ParseError { line, message: "missing workload".into() })?;
    Ok(match kind {
        "dgemm" => Workload::Dgemm { n: parse_u64(line, toks.next(), "n")? },
        "lu" => Workload::LuUpdate {
            m: parse_u64(line, toks.next(), "m")?,
            n: parse_u64(line, toks.next(), "n")?,
            k: parse_u64(line, toks.next(), "k")?,
        },
        "scopy" => Workload::StreamCopy { n: parse_u64(line, toks.next(), "n")? },
        "sscale" => Workload::StreamScale { n: parse_u64(line, toks.next(), "n")? },
        "sadd" => Workload::StreamAdd { n: parse_u64(line, toks.next(), "n")? },
        "striad" => Workload::StreamTriad { n: parse_u64(line, toks.next(), "n")? },
        "fft" => Workload::Fft1d { n: parse_u64(line, toks.next(), "n")? },
        "ra" => Workload::RandomAccess {
            updates: parse_u64(line, toks.next(), "updates")?,
            table_bytes: parse_u64(line, toks.next(), "table_bytes")?,
        },
        "stencil" => Workload::Stencil {
            points: parse_u64(line, toks.next(), "points")?,
            flops_per_point: parse_f64(line, toks.next(), "flops_per_point")?,
            bytes_per_point: parse_f64(line, toks.next(), "bytes_per_point")?,
        },
        "chem" => Workload::Chemistry {
            points: parse_u64(line, toks.next(), "points")?,
            flops_per_point: parse_f64(line, toks.next(), "flops_per_point")?,
        },
        "mdforce" => Workload::MdForce {
            pairs: parse_u64(line, toks.next(), "pairs")?,
            flops_per_pair: parse_f64(line, toks.next(), "flops_per_pair")?,
        },
        "custom" => Workload::Custom {
            flops: parse_f64(line, toks.next(), "flops")?,
            dram_bytes: parse_f64(line, toks.next(), "dram_bytes")?,
            simd_eff: parse_f64(line, toks.next(), "simd_eff")?,
            serial_frac: parse_f64(line, toks.next(), "serial_frac")?,
        },
        other => return err(line, format!("unknown workload {other:?}")),
    })
}

fn parse_collective<'a>(
    line: usize,
    toks: &mut impl Iterator<Item = &'a str>,
) -> Result<CollectiveOp, ParseError> {
    let kind = toks.next().ok_or(ParseError { line, message: "missing collective".into() })?;
    Ok(match kind {
        "barrier" => CollectiveOp::Barrier,
        "bcast" => CollectiveOp::Bcast { bytes: parse_u64(line, toks.next(), "bytes")? },
        "reduce" => CollectiveOp::Reduce {
            bytes: parse_u64(line, toks.next(), "bytes")?,
            dtype: parse_dtype(line, toks.next())?,
        },
        "allreduce" => CollectiveOp::Allreduce {
            bytes: parse_u64(line, toks.next(), "bytes")?,
            dtype: parse_dtype(line, toks.next())?,
        },
        "allgather" => {
            CollectiveOp::Allgather { bytes_per_rank: parse_u64(line, toks.next(), "bytes")? }
        }
        "alltoall" => {
            CollectiveOp::Alltoall { bytes_per_pair: parse_u64(line, toks.next(), "bytes")? }
        }
        other => return err(line, format!("unknown collective {other:?}")),
    })
}

fn parse_op(line: usize, text: &str) -> Result<Op, ParseError> {
    let mut toks = text.split_ascii_whitespace();
    let tag = toks.next().ok_or(ParseError { line, message: "empty op line".into() })?;
    let op = match tag {
        "c" => {
            let work = parse_workload(line, &mut toks)?;
            let threads = parse_u64(line, toks.next(), "threads")? as u32;
            Op::Compute { work, threads }
        }
        "d" => Op::Delay { time: SimTime(parse_u64(line, toks.next(), "picos")?) },
        "s" => Op::Isend {
            dst: parse_u64(line, toks.next(), "dst")? as usize,
            tag: parse_u64(line, toks.next(), "tag")? as u32,
            bytes: parse_u64(line, toks.next(), "bytes")?,
            req: Req(parse_u64(line, toks.next(), "req")? as u32),
        },
        "r" => Op::Irecv {
            src: parse_u64(line, toks.next(), "src")? as usize,
            tag: parse_u64(line, toks.next(), "tag")? as u32,
            bytes: parse_u64(line, toks.next(), "bytes")?,
            req: Req(parse_u64(line, toks.next(), "req")? as u32),
        },
        "w" => Op::Wait { req: Req(parse_u64(line, toks.next(), "req")? as u32) },
        "k" => {
            let comm = CommId(parse_u64(line, toks.next(), "comm")? as u32);
            Op::Collective { comm, op: parse_collective(line, &mut toks)? }
        }
        "m" => Op::Mark { id: parse_u64(line, toks.next(), "id")? as u32 },
        other => return err(line, format!("unknown op tag {other:?}")),
    };
    if let Some(extra) = toks.next() {
        return err(line, format!("trailing token {extra:?}"));
    }
    Ok(op)
}

/// Parse a serialized world of traces back into per-rank op vectors.
/// Replaying the parsed traces is bit-identical to replaying the
/// originals ([`write_traces`] round-trips exactly).
pub fn parse_traces(text: &str) -> Result<Vec<Vec<Op>>, ParseError> {
    let mut lines = text.lines().enumerate().map(|(i, l)| (i + 1, l));
    let (line, header) =
        lines.next().ok_or(ParseError { line: 1, message: "empty trace".into() })?;
    let mut toks = header.split_ascii_whitespace();
    match toks.next() {
        Some(TRACE_MAGIC) => {}
        other => return err(line, format!("bad magic {other:?}")),
    }
    let ranks = parse_u64(line, toks.next(), "rank count")? as usize;
    let mut traces = Vec::with_capacity(ranks);
    for want in 0..ranks {
        let (line, header) = lines
            .next()
            .ok_or(ParseError { line: 0, message: format!("missing rank {want} header") })?;
        let mut toks = header.split_ascii_whitespace();
        if toks.next() != Some("rank") {
            return err(line, format!("expected rank header, got {header:?}"));
        }
        let idx = parse_u64(line, toks.next(), "rank index")? as usize;
        if idx != want {
            return err(line, format!("rank {idx} out of order (expected {want})"));
        }
        let nops = parse_u64(line, toks.next(), "op count")? as usize;
        let mut ops = Vec::with_capacity(nops);
        for _ in 0..nops {
            let (line, text) = lines
                .next()
                .ok_or(ParseError { line: 0, message: format!("rank {idx}: truncated ops") })?;
            ops.push(parse_op(line, text)?);
        }
        traces.push(ops);
    }
    if let Some((line, extra)) = lines.next() {
        if !extra.trim().is_empty() {
            return err(line, format!("trailing content {extra:?}"));
        }
    }
    Ok(traces)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_traces() -> Vec<Vec<Op>> {
        vec![
            vec![
                Op::Compute { work: Workload::Dgemm { n: 2000 }, threads: 1 },
                Op::Compute {
                    work: Workload::Stencil {
                        points: 99,
                        flops_per_point: 51.25,
                        bytes_per_point: 0.1, // not exactly representable: bit-exactness matters
                    },
                    threads: 4,
                },
                Op::Isend { dst: 1, tag: 7, bytes: 4096, req: Req(0) },
                Op::Wait { req: Req(0) },
                Op::Collective {
                    comm: CommId::WORLD,
                    op: CollectiveOp::Allreduce { bytes: 512, dtype: DType::F64 },
                },
                Op::Mark { id: 3 },
            ],
            vec![
                Op::Irecv { src: 0, tag: 7, bytes: 4096, req: Req(0) },
                Op::Wait { req: Req(0) },
                Op::Delay { time: SimTime(123_456_789) },
                Op::Collective {
                    comm: CommId::WORLD,
                    op: CollectiveOp::Allreduce { bytes: 512, dtype: DType::F64 },
                },
                Op::Compute {
                    work: Workload::Custom {
                        flops: 1e9,
                        dram_bytes: 0.3,
                        simd_eff: 0.9,
                        serial_frac: 0.01,
                    },
                    threads: 2,
                },
            ],
        ]
    }

    #[test]
    fn round_trips_exactly() {
        let traces = sample_traces();
        let text = write_traces(&traces);
        let parsed = parse_traces(&text).expect("round trip");
        assert_eq!(parsed, traces);
        // serialization of the parse equals the original text, too
        assert_eq!(write_traces(&parsed), text);
    }

    #[test]
    fn every_collective_and_workload_round_trips() {
        let ops: Vec<Op> = [
            CollectiveOp::Barrier,
            CollectiveOp::Bcast { bytes: 1 },
            CollectiveOp::Reduce { bytes: 8, dtype: DType::Int },
            CollectiveOp::Allreduce { bytes: 64, dtype: DType::F32 },
            CollectiveOp::Allgather { bytes_per_rank: 32 },
            CollectiveOp::Alltoall { bytes_per_pair: 16 },
        ]
        .into_iter()
        .map(|op| Op::Collective { comm: CommId(5), op })
        .chain(
            [
                Workload::LuUpdate { m: 1, n: 2, k: 3 },
                Workload::StreamCopy { n: 4 },
                Workload::StreamScale { n: 5 },
                Workload::StreamAdd { n: 6 },
                Workload::StreamTriad { n: 7 },
                Workload::Fft1d { n: 8 },
                Workload::RandomAccess { updates: 9, table_bytes: 10 },
                Workload::Chemistry { points: 11, flops_per_point: 2.5 },
                Workload::MdForce { pairs: 12, flops_per_pair: 220.0 },
            ]
            .into_iter()
            .map(|work| Op::Compute { work, threads: 3 }),
        )
        .collect();
        let traces = vec![ops];
        assert_eq!(parse_traces(&write_traces(&traces)).unwrap(), traces);
    }

    #[test]
    fn malformed_input_is_diagnosed_with_line_numbers() {
        assert!(parse_traces("").is_err());
        assert!(parse_traces("wrong/1 1\n").is_err());
        let e = parse_traces("hpcsim-trace/1 1\nrank 0 1\nz 1\n").unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.to_string().contains("unknown op tag"), "{e}");
        // truncated op list
        assert!(parse_traces("hpcsim-trace/1 1\nrank 0 2\nm 1\n").is_err());
        // out-of-order rank header
        assert!(parse_traces("hpcsim-trace/1 2\nrank 1 0\nrank 0 0\n").is_err());
        // float fields must be exact bit patterns, not decimals
        let e = parse_traces("hpcsim-trace/1 1\nrank 0 1\nc chem 1 2.5 1\n").unwrap_err();
        assert!(e.to_string().contains("0x-prefixed"), "{e}");
    }

    #[test]
    fn real_halo_sized_trace_round_trips() {
        // a trace with the real recorder's shape: interleaved sends,
        // receives and waits across many ranks
        let mut traces = Vec::new();
        for r in 0..16usize {
            let mut ops = Vec::new();
            for round in 0..3u32 {
                ops.push(Op::Irecv { src: (r + 1) % 16, tag: round, bytes: 64, req: Req(round) });
                ops.push(Op::Isend { dst: (r + 15) % 16, tag: round, bytes: 64, req: Req(round + 8) });
                ops.push(Op::Wait { req: Req(round) });
                ops.push(Op::Wait { req: Req(round + 8) });
            }
            traces.push(ops);
        }
        assert_eq!(parse_traces(&write_traces(&traces)).unwrap(), traces);
    }
}
