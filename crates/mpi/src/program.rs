//! The rank-program API: what application and benchmark code writes
//! against. Looks like MPI, records a trace.

use crate::ops::{CommId, Op, Req};
use hpcsim_engine::SimTime;
use hpcsim_machine::Workload;
use hpcsim_net::{CollectiveOp, DType};

/// A program executed (logically) by every rank. Implementations must be
/// deterministic functions of `(rank, size)` and their own configuration.
pub trait Program: Sync {
    /// Record rank `mpi.rank()`'s operations.
    fn run(&self, mpi: &mut Mpi);
}

/// Adapter: any `Fn(&mut Mpi)` closure is a program.
pub struct FnProgram<F: Fn(&mut Mpi) + Sync>(pub F);

impl<F: Fn(&mut Mpi) + Sync> Program for FnProgram<F> {
    fn run(&self, mpi: &mut Mpi) {
        (self.0)(mpi)
    }
}

/// Per-rank recording handle.
#[derive(Debug)]
pub struct Mpi {
    rank: usize,
    size: usize,
    default_threads: u32,
    next_req: u32,
    ops: Vec<Op>,
}

impl Mpi {
    /// Fresh recorder for `rank` of `size` ranks; compute blocks default
    /// to `default_threads` OpenMP threads.
    pub fn new(rank: usize, size: usize, default_threads: u32) -> Self {
        assert!(rank < size, "rank {rank} out of range for size {size}");
        Mpi { rank, size, default_threads, next_req: 0, ops: Vec::new() }
    }

    /// This rank's id in `MPI_COMM_WORLD`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// World size.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Consume the recorder, yielding the trace.
    pub fn into_ops(self) -> Vec<Op> {
        self.ops
    }

    /// Number of recorded operations (tests/diagnostics).
    pub fn op_count(&self) -> usize {
        self.ops.len()
    }

    fn fresh_req(&mut self) -> Req {
        let r = Req(self.next_req);
        self.next_req += 1;
        r
    }

    // ---- local work -----------------------------------------------------

    /// Record a compute block with the run's default thread count.
    pub fn compute(&mut self, work: Workload) {
        self.ops.push(Op::Compute { work, threads: self.default_threads });
    }

    /// Record a compute block with an explicit thread count.
    pub fn compute_threads(&mut self, work: Workload, threads: u32) {
        self.ops.push(Op::Compute { work, threads });
    }

    /// Record a fixed delay.
    pub fn delay(&mut self, time: SimTime) {
        self.ops.push(Op::Delay { time });
    }

    /// Record a phase-timer mark (the replay stores this rank's virtual
    /// time under `id`).
    pub fn mark(&mut self, id: u32) {
        self.ops.push(Op::Mark { id });
    }

    // ---- point-to-point -------------------------------------------------

    /// Non-blocking send; complete with [`Mpi::wait`].
    pub fn isend(&mut self, dst: usize, tag: u32, bytes: u64) -> Req {
        debug_assert!(dst < self.size, "isend to rank {dst} of {}", self.size);
        let req = self.fresh_req();
        self.ops.push(Op::Isend { dst, tag, bytes, req });
        req
    }

    /// Non-blocking receive; complete with [`Mpi::wait`].
    pub fn irecv(&mut self, src: usize, tag: u32, bytes: u64) -> Req {
        debug_assert!(src < self.size, "irecv from rank {src} of {}", self.size);
        let req = self.fresh_req();
        self.ops.push(Op::Irecv { src, tag, bytes, req });
        req
    }

    /// Block until `req` completes.
    pub fn wait(&mut self, req: Req) {
        self.ops.push(Op::Wait { req });
    }

    /// Block until every request in `reqs` completes.
    pub fn waitall(&mut self, reqs: &[Req]) {
        for &r in reqs {
            self.ops.push(Op::Wait { req: r });
        }
    }

    /// Blocking send (`MPI_Send`): isend + immediate wait.
    pub fn send(&mut self, dst: usize, tag: u32, bytes: u64) {
        let r = self.isend(dst, tag, bytes);
        self.wait(r);
    }

    /// Blocking receive (`MPI_Recv`): irecv + immediate wait.
    pub fn recv(&mut self, src: usize, tag: u32, bytes: u64) {
        let r = self.irecv(src, tag, bytes);
        self.wait(r);
    }

    /// `MPI_Sendrecv`: the send and receive proceed concurrently, but the
    /// call returns only when both are done.
    #[allow(clippy::too_many_arguments)]
    pub fn sendrecv(
        &mut self,
        dst: usize,
        send_tag: u32,
        send_bytes: u64,
        src: usize,
        recv_tag: u32,
        recv_bytes: u64,
    ) {
        let r = self.irecv(src, recv_tag, recv_bytes);
        let s = self.isend(dst, send_tag, send_bytes);
        self.wait(r);
        self.wait(s);
    }

    // ---- collectives ----------------------------------------------------

    /// Barrier over `comm`.
    pub fn barrier(&mut self, comm: CommId) {
        self.ops.push(Op::Collective { comm, op: CollectiveOp::Barrier });
    }

    /// Broadcast `bytes` over `comm`.
    pub fn bcast(&mut self, comm: CommId, bytes: u64) {
        self.ops.push(Op::Collective { comm, op: CollectiveOp::Bcast { bytes } });
    }

    /// Allreduce a `bytes`-sized vector of `dtype` over `comm`.
    pub fn allreduce(&mut self, comm: CommId, bytes: u64, dtype: DType) {
        self.ops.push(Op::Collective { comm, op: CollectiveOp::Allreduce { bytes, dtype } });
    }

    /// Reduce to a root over `comm`.
    pub fn reduce(&mut self, comm: CommId, bytes: u64, dtype: DType) {
        self.ops.push(Op::Collective { comm, op: CollectiveOp::Reduce { bytes, dtype } });
    }

    /// Allgather with `bytes_per_rank` contribution over `comm`.
    pub fn allgather(&mut self, comm: CommId, bytes_per_rank: u64) {
        self.ops.push(Op::Collective { comm, op: CollectiveOp::Allgather { bytes_per_rank } });
    }

    /// Alltoall with `bytes_per_pair` per destination over `comm`.
    pub fn alltoall(&mut self, comm: CommId, bytes_per_pair: u64) {
        self.ops.push(Op::Collective { comm, op: CollectiveOp::Alltoall { bytes_per_pair } });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_program_order() {
        let mut mpi = Mpi::new(0, 2, 1);
        mpi.compute(Workload::StreamTriad { n: 10 });
        let r = mpi.isend(1, 7, 100);
        mpi.wait(r);
        let ops = mpi.into_ops();
        assert_eq!(ops.len(), 3);
        assert!(matches!(ops[0], Op::Compute { .. }));
        assert!(matches!(ops[1], Op::Isend { dst: 1, tag: 7, bytes: 100, .. }));
        assert!(matches!(ops[2], Op::Wait { .. }));
    }

    #[test]
    fn requests_are_unique() {
        let mut mpi = Mpi::new(0, 4, 1);
        let a = mpi.isend(1, 0, 8);
        let b = mpi.irecv(2, 0, 8);
        let c = mpi.isend(3, 0, 8);
        assert_ne!(a, b);
        assert_ne!(b, c);
        assert_ne!(a, c);
    }

    #[test]
    fn sendrecv_posts_recv_first() {
        // Posting the receive before the send is the classic deadlock-free
        // ordering; the engine also rewards it (no unexpected-message copy).
        let mut mpi = Mpi::new(0, 2, 1);
        mpi.sendrecv(1, 1, 64, 1, 2, 128);
        let ops = mpi.into_ops();
        assert!(matches!(ops[0], Op::Irecv { .. }));
        assert!(matches!(ops[1], Op::Isend { .. }));
        assert_eq!(ops.len(), 4);
    }

    #[test]
    fn blocking_wrappers_expand() {
        let mut mpi = Mpi::new(1, 2, 1);
        mpi.send(0, 5, 32);
        mpi.recv(0, 6, 32);
        assert_eq!(mpi.op_count(), 4);
    }

    #[test]
    fn collectives_record_comm() {
        let mut mpi = Mpi::new(0, 8, 1);
        mpi.barrier(CommId::WORLD);
        mpi.allreduce(CommId(3), 1024, DType::F64);
        let ops = mpi.into_ops();
        assert!(matches!(ops[0], Op::Collective { comm: CommId(0), .. }));
        assert!(matches!(ops[1], Op::Collective { comm: CommId(3), .. }));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rank_bounds_checked() {
        let _ = Mpi::new(5, 4, 1);
    }
}
