//! Trace → dependency-DAG compilation for fast parameter sweeps.
//!
//! The paper's headline figures are parameter scans: Fig 2(c,d) replays
//! one HALO trace under 8 mappings × 2 core counts, and every
//! machine-comparison panel re-simulates an identical communication
//! structure with only the edge costs changed. A recorded trace's
//! happens-before graph is invariant across those points, so a sweep
//! point does not need the event queue at all: compile the trace once
//! into a flat task DAG ([`TraceDag::compile`]), then evaluate each
//! (machine, mapping, mode) point with a single linear pass that
//! re-costs edges from `MachineSpec` + `RankLayout` and takes
//! max-over-predecessors ([`TraceDag::evaluate`]).
//!
//! Node kinds mirror the trace ops one-to-one; the cross-rank edges are
//!
//! * **message edges** — the k-th send from `src` to `(dst, tag)` pairs
//!   with the k-th receive posted at `dst` for `(src, tag)`, exactly the
//!   replay engine's FIFO matching (arrivals on one channel cannot
//!   overtake: equal payloads ride the same costs and injection times
//!   strictly increase). Sends sharing (src rank, dst rank, bytes) are
//!   deduplicated into *channels*, so a sweep point prices each distinct
//!   route/payload combination once, not once per round — and the
//!   payload sizes are themselves deduplicated into *byte classes*, so
//!   the byte-dependent cost terms (serialization, rendezvous copy) are
//!   priced once per distinct size, not once per route;
//! * **collective super-nodes** — one instance per (comm, occurrence);
//!   every member contributes an in-edge carrying its arrival clock and
//!   receives an out-edge at `latest + duration`.
//!
//! Compilation ends by fixing one machine-independent topological order
//! (the happens-before relation carries no costs), stored as a
//! contiguous node stream plus (rank, length) runs. Evaluating a point
//! is then a straight streaming pass — no worklist, no suspends, no
//! hash lookups — which is where the order-of-magnitude sweep speedup
//! comes from.
//!
//! ## When this is exact, and when replay remains the oracle
//!
//! Evaluation prices every message with the *contention-free* wire time.
//! On a machine whose `route_diversity` is infinite (see
//! [`MachineSpec::with_flat_contention`]) the replay's contended wire
//! time collapses to exactly that value, and [`TraceDag::evaluate`]
//! reproduces `TraceSim::replay_traces` bit-for-bit — per-rank finish
//! and busy clocks, marks, byte/message counts (the property tests in
//! `tests/prop_dag.rs` pin this). On a contended machine the DAG result
//! is a lower-bound approximation, so the sweep entry points
//! (`hpcc::halo_run_mapped`, the Fig 8 battery) automatically fall back
//! to replay there: [`SweepEngine::Dag`] means "DAG where provably
//! exact, replay otherwise", which keeps repro output byte-identical
//! under either engine selection.
//!
//! One replay subtlety is worth naming: whether a message is
//! *unexpected* (arrived before its receive was posted, paying a copy)
//! depends on event order, not clock order — the arrival must pop
//! before the receive's run *starts*. The evaluator therefore tracks
//! each rank's run-start time (updated at blocking waits and collective
//! exits) alongside its clock, and defers the unexpected-vs-posted
//! decision to the consuming wait, where the paired arrival time is
//! known. Suspending the receive itself would be wrong (cross-posted
//! exchanges would self-deadlock); suspending only the wait reproduces
//! the replay's happens-before relation, so every trace set the replay
//! can finish, the evaluator finishes too.

use crate::ops::Op;
use crate::result::SimResult;
use crate::sim::SimConfig;
use hpcsim_engine::SimTime;
use hpcsim_machine::{MachineSpec, NodeModel, Workload};
use hpcsim_net::{CollectiveModel, CollectiveOp, P2pModel};
use hpcsim_obs as obs;
use hpcsim_topo::{Coord, Torus3D};
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::LazyLock;

/// Obs counters for the sweep engine. All volatile: how points were
/// evaluated (DAG lanes vs scalar vs replay fallback) depends on the
/// engine selection and per-machine exactness, which is exactly what
/// these exist to report.
struct ObsMetrics {
    compiles: &'static obs::Counter,
    nodes: &'static obs::Counter,
    edges: &'static obs::Counter,
    points: &'static obs::Counter,
    lane_batches: &'static obs::Counter,
    lane_points: &'static obs::Counter,
    scalar_points: &'static obs::Counter,
    fallback_contention: &'static obs::Counter,
    fallback_faults: &'static obs::Counter,
}

fn metrics() -> &'static ObsMetrics {
    use obs::Class::Volatile;
    static M: LazyLock<ObsMetrics> = LazyLock::new(|| ObsMetrics {
        compiles: obs::counter(
            "hpcsim_dag_compiles_total",
            "Trace sets compiled to task DAGs",
            Volatile,
        ),
        nodes: obs::counter("hpcsim_dag_nodes_total", "Task nodes compiled", Volatile),
        edges: obs::counter("hpcsim_dag_edges_total", "Dependency edges compiled", Volatile),
        points: obs::counter(
            "hpcsim_dag_points_total",
            "Sweep points evaluated by the DAG engine",
            Volatile,
        ),
        lane_batches: obs::counter(
            "hpcsim_dag_lane_batches_total",
            "Full-width batched passes in evaluate_many",
            Volatile,
        ),
        lane_points: obs::counter(
            "hpcsim_dag_lane_points_total",
            "Sweep points evaluated inside full-width lane batches",
            Volatile,
        ),
        scalar_points: obs::counter(
            "hpcsim_dag_scalar_points_total",
            "Sweep points evaluated one at a time",
            Volatile,
        ),
        fallback_contention: obs::counter(
            "hpcsim_sweep_fallback_contention_total",
            "Points sent to replay because the machine's contention model makes DAG inexact",
            Volatile,
        ),
        fallback_faults: obs::counter(
            "hpcsim_sweep_fallback_faults_total",
            "Points sent to replay because a fault plan was active",
            Volatile,
        ),
    });
    &M
}

/// Record `points` sweep points falling back from the DAG engine to
/// replay because [`TraceDag::exact_for`] rejected the machine. Called
/// by the sweep entry points (hpcc, apps, cache) at their gate.
pub fn note_fallback_contention(points: u64) {
    metrics().fallback_contention.add(points);
}

/// Record `points` sweep points falling back to replay because the
/// scenario carries a fault plan (the DAG engine never prices faults).
pub fn note_fallback_faults(points: u64) {
    metrics().fallback_faults.add(points);
}

/// Which engine a parameter sweep uses per point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SweepEngine {
    /// Event-queue replay for every point (the oracle).
    #[default]
    Replay,
    /// DAG evaluation where it is provably exact (contention-flat
    /// machines, no faults); automatic fallback to replay elsewhere.
    Dag,
}

impl SweepEngine {
    /// Parse a CLI value (`replay` | `dag`).
    pub fn parse(s: &str) -> Option<SweepEngine> {
        match s {
            "replay" => Some(SweepEngine::Replay),
            "dag" => Some(SweepEngine::Dag),
            _ => None,
        }
    }

    /// Display label (the CLI spelling).
    pub fn label(self) -> &'static str {
        match self {
            SweepEngine::Replay => "replay",
            SweepEngine::Dag => "dag",
        }
    }
}

/// Process-global engine selection, like the runner's jobs knob: the
/// `repro` binary sets it from `--sweep-engine` once, and every sweep
/// entry point reads it. Default is [`SweepEngine::Replay`].
static SWEEP_ENGINE: AtomicU8 = AtomicU8::new(0);

/// Select the engine used by sweep entry points that don't take one
/// explicitly.
pub fn set_sweep_engine(engine: SweepEngine) {
    SWEEP_ENGINE.store(engine as u8, Ordering::Relaxed);
}

/// The currently selected sweep engine.
pub fn sweep_engine() -> SweepEngine {
    match SWEEP_ENGINE.load(Ordering::Relaxed) {
        0 => SweepEngine::Replay,
        _ => SweepEngine::Dag,
    }
}

const NONE: u32 = u32::MAX;

/// One compiled task node; mirrors [`Op`] with matching resolved to
/// integer message/channel/instance ids. Kept to 16 bytes — evaluation
/// streams every node once per sweep point, so the fat payloads
/// (workloads, byte sizes) live in side tables.
#[derive(Debug, Clone, Copy)]
enum Node {
    /// `cost` indexes the compiled `(Workload, threads)` side table.
    Compute { cost: u32 },
    Delay { time: SimTime },
    Send { chan: u32, msg: u32, req: u32 },
    /// `chan`/`msg` are the *paired send's*; [`NONE`] when no send
    /// matches (a wait on such a receive never completes, as in replay).
    Recv { chan: u32, msg: u32, req: u32 },
    Wait { req: u32 },
    Coll { inst: u32 },
    Mark { id: u32 },
}

/// A distinct (source rank, destination rank, payload) combination.
/// Edge costs depend on nothing else, so evaluation prices each channel
/// once per point and every message on it reuses the result; `class`
/// indexes the deduplicated payload-size table, so byte-dependent terms
/// are priced once per distinct size.
#[derive(Debug, Clone, Copy)]
struct Channel {
    src: u32,
    dst: u32,
    class: u32,
}

/// One collective occurrence (super-node).
#[derive(Debug, Clone, Copy)]
struct CollSpec {
    comm: u32,
    /// Index into the deduplicated (comm, op) cost table.
    cost: u32,
}

/// Per-point cost of one payload class: the byte-dependent terms of
/// the wire model, priced once per distinct size and shared by every
/// channel carrying it.
struct ClassCost {
    serial: SimTime,
    shm_serial: SimTime,
    copy: SimTime,
    eager: bool,
}

/// Per-point cost of one channel (route geometry + payload class).
struct ChanCost {
    wire: SimTime,
    rdv_extra: SimTime,
    copy: SimTime,
    eager: bool,
}

/// Machine-level cost tables: everything a sweep point needs that does
/// not depend on the rank layout. Mappings only move ranks, so a
/// mapping sweep builds these once and re-prices routes per point.
struct MachCosts {
    machine: MachineSpec,
    ambient: f64,
    /// The `class_bytes` the costs were priced for — the cache is
    /// shared across DAGs (thread-local), so the byte-class table is
    /// part of the key, not just the machine.
    classes: Vec<u64>,
    node_model: NodeModel,
    class_costs: Vec<ClassCost>,
    /// Rendezvous handshake round trip (zero-byte wire time plus both
    /// overheads), route-independent part, off-node / same-node.
    hs_off: SimTime,
    hs_shm: SimTime,
}

/// Reusable evaluation state: cached machine tables plus the per-point
/// scratch arrays. [`TraceDag::evaluate_many`] threads one of these
/// through a whole sweep so points after the first allocate nothing.
#[derive(Default)]
struct EvalCtx {
    mach: Option<MachCosts>,
    torus: Option<Torus3D>,
    coords: Vec<Coord>,
    chan_costs: Vec<ChanCost>,
    run_start: Vec<SimTime>,
    req_val: Vec<SimTime>,
    req_msg: Vec<u32>,
    req_chan: Vec<u32>,
    msg_arrive: Vec<SimTime>,
    msg_post: Vec<(SimTime, SimTime)>,
    inst_arrived: Vec<u32>,
    inst_latest: Vec<SimTime>,
    // lane-batched pass (`evaluate_lanes`): timing state widened to L
    // interleaved lanes; structural state stays in the scalar arrays
    lane_chan: Vec<(SimTime, SimTime)>,
    chan_copy: Vec<SimTime>,
    chan_eager: Vec<bool>,
    lane_req_val: Vec<SimTime>,
    lane_msg_arrive: Vec<SimTime>,
    lane_msg_post: Vec<(SimTime, SimTime)>,
    lane_run_start: Vec<SimTime>,
    lane_inst_latest: Vec<SimTime>,
}

/// A fixed topological order: the contiguous node stream, the
/// (rank, length) runs tiling it, and any structural deadlock as
/// (stuck-rank count, example rank, its op index).
type Schedule = (Vec<Node>, Vec<(u32, u32)>, Option<(usize, usize, usize)>);

/// Structure counts of a compiled DAG (for benches and reports).
#[derive(Debug, Clone, Copy)]
pub struct DagStats {
    /// Task nodes (one per trace op).
    pub nodes: u64,
    /// Dependency edges: intra-rank program order + message pairs +
    /// collective membership (in and out).
    pub edges: u64,
    /// Distinct (src, dst, bytes) channels.
    pub channels: u64,
    /// Matched point-to-point messages.
    pub messages: u64,
    /// Collective super-nodes.
    pub collectives: u64,
}

/// A trace set compiled to a flat task DAG. Arena-style storage: every
/// cross-reference is an integer id into a `Vec`, nothing is allocated
/// per node at evaluation time beyond the per-point scratch arrays.
#[derive(Debug, Clone)]
pub struct TraceDag {
    ranks: usize,
    n_nodes: u64,
    /// Task nodes in one fixed machine-independent topological order;
    /// the happens-before relation is cost-free, so every evaluation is
    /// a single linear sweep over this stream.
    stream: Vec<Node>,
    /// `(rank, length)` runs tiling `stream`: each run is a maximal
    /// stretch one rank executes without blocking on another.
    runs: Vec<(u32, u32)>,
    /// Flat request arena offsets (`req_base[r] + Req.0`).
    req_base: Vec<u32>,
    channels: Vec<Channel>,
    /// Sorted distinct payload sizes; `Channel::class` indexes this.
    class_bytes: Vec<u64>,
    /// Side table for [`Node::Compute`] (adjacent-duplicate compressed:
    /// a rank repeating one workload shares a single entry).
    compute_costs: Vec<(Workload, u32)>,
    n_msgs: u32,
    insts: Vec<CollSpec>,
    /// Deduplicated (comm, op) pairs; evaluation prices each once.
    coll_costs: Vec<(u32, CollectiveOp)>,
    comms: Vec<Vec<usize>>,
    /// Structural deadlock, detected once at compile time:
    /// `(unfinished rank count, example rank, example op index)`.
    deadlock: Option<(usize, usize, usize)>,
    total_bytes: u64,
    total_msgs: u64,
    seq_edges: u64,
    msg_edges: u64,
    coll_edges: u64,
}

impl TraceDag {
    /// True when DAG evaluation is exact on `machine`: the wire model's
    /// contended path collapses to the contention-free one (infinite
    /// route diversity), so a topological pass reproduces the replay
    /// bit-for-bit. Sweep entry points use this to fall back to replay.
    pub fn exact_for(machine: &MachineSpec) -> bool {
        machine.contention_flat()
    }

    /// Compile traces that only use `CommId::WORLD`.
    pub fn compile_world(traces: &[Vec<Op>]) -> TraceDag {
        Self::compile(traces, &[(0..traces.len()).collect()])
    }

    /// Compile one trace per rank into a task DAG. `comms[0]` must be
    /// the world communicator; further entries mirror the ids handed
    /// out by `TraceSim::register_comm`. Compilation is independent of
    /// machine, mapping and mode — the same DAG serves every sweep
    /// point.
    pub fn compile(traces: &[Vec<Op>], comms: &[Vec<usize>]) -> TraceDag {
        let n = traces.len();
        assert!(
            !comms.is_empty() && comms[0].len() == n,
            "comm 0 must be the world communicator"
        );
        let total_ops: usize = traces.iter().map(|t| t.len()).sum();
        assert!(total_ops < NONE as usize, "trace too large for u32 node ids");

        let mut nodes: Vec<Node> = Vec::with_capacity(total_ops);
        let mut rank_ofs: Vec<u32> = Vec::with_capacity(n + 1);
        let mut req_counts: Vec<u32> = vec![0; n];
        // Matching is sort-based on packed integer keys: hashing every
        // endpoint through a general-purpose map costs more than the
        // rest of compilation combined, and fat tuple keys sort several
        // times slower than u128s. Each send/receive contributes
        // src·2⁹⁶ | dst·2⁶⁴ | tag·2³² | node — the node id in the low
        // bits makes an unstable sort order-preserving per key, and
        // per-key node order IS the replay's FIFO posting order,
        // because one rank owns each side of a key.
        let mut send_keys: Vec<(u128, u64)> = Vec::with_capacity(total_ops / 4);
        let mut recv_keys: Vec<u128> = Vec::with_capacity(total_ops / 4);
        let mut compute_costs: Vec<(Workload, u32)> = Vec::new();
        let mut coll_seq: Vec<Vec<(u32, u64)>> = vec![Vec::new(); n];
        let mut inst_ids: Vec<Vec<u32>> = vec![Vec::new(); comms.len()];
        let mut insts: Vec<CollSpec> = Vec::new();
        let mut inst_ops: Vec<CollectiveOp> = Vec::new();
        let mut total_bytes = 0u64;
        let mut total_msgs = 0u64;
        let mut seq_edges = 0u64;
        let mut coll_edges = 0u64;

        for (r, trace) in traces.iter().enumerate() {
            rank_ofs.push(nodes.len() as u32);
            seq_edges += trace.len().saturating_sub(1) as u64;
            let note_req = |req_counts: &mut Vec<u32>, req: crate::ops::Req| {
                if req.0 >= req_counts[r] {
                    req_counts[r] = req.0 + 1;
                }
                req.0
            };
            for op in trace {
                let idx = nodes.len() as u32;
                match *op {
                    Op::Compute { work, threads } => {
                        let cost = match compute_costs.last() {
                            Some(&(w, t)) if w == work && t == threads => {
                                compute_costs.len() - 1
                            }
                            _ => {
                                compute_costs.push((work, threads));
                                compute_costs.len() - 1
                            }
                        };
                        nodes.push(Node::Compute { cost: cost as u32 });
                    }
                    Op::Delay { time } => nodes.push(Node::Delay { time }),
                    Op::Isend { dst, tag, bytes, req } => {
                        assert!(dst < n, "rank {r}: isend to out-of-range rank {dst}");
                        let (src, dst) = (r as u128, dst as u128);
                        send_keys.push((
                            (src << 96) | (dst << 64) | ((tag as u128) << 32) | idx as u128,
                            bytes,
                        ));
                        let req = note_req(&mut req_counts, req);
                        nodes.push(Node::Send { chan: NONE, msg: NONE, req });
                        total_bytes += bytes;
                        total_msgs += 1;
                    }
                    Op::Irecv { src, tag, bytes: _, req } => {
                        assert!(src < n, "rank {r}: irecv from out-of-range rank {src}");
                        recv_keys.push(
                            ((src as u128) << 96) | ((r as u128) << 64) | ((tag as u128) << 32) | idx as u128,
                        );
                        let req = note_req(&mut req_counts, req);
                        nodes.push(Node::Recv { chan: NONE, msg: NONE, req });
                    }
                    Op::Wait { req } => {
                        let req = note_req(&mut req_counts, req);
                        nodes.push(Node::Wait { req });
                    }
                    Op::Collective { comm, op } => {
                        let cid = comm.0 as usize;
                        assert!(cid < comms.len(), "rank {r}: collective on unregistered comm {cid}");
                        let counters = &mut coll_seq[r];
                        let pos = match counters.iter().position(|(c, _)| *c == comm.0) {
                            Some(p) => p,
                            None => {
                                counters.push((comm.0, 0));
                                counters.len() - 1
                            }
                        };
                        let seq = counters[pos].1 as usize;
                        counters[pos].1 += 1;
                        let table = &mut inst_ids[cid];
                        if table.len() <= seq {
                            table.resize(seq + 1, NONE);
                        }
                        if table[seq] == NONE {
                            table[seq] = insts.len() as u32;
                            insts.push(CollSpec { comm: comm.0, cost: NONE });
                            inst_ops.push(op);
                        } else {
                            assert_eq!(
                                inst_ops[table[seq] as usize], op,
                                "rank {r}: collective mismatch on comm {}",
                                comm.0
                            );
                        }
                        coll_edges += 2; // arrival in-edge + completion out-edge
                        nodes.push(Node::Coll { inst: table[seq] });
                    }
                    Op::Mark { id } => nodes.push(Node::Mark { id }),
                }
            }
        }
        rank_ofs.push(nodes.len() as u32);

        // One walk resolves both channel identity and FIFO pairing.
        // Sorting groups sends by (src, dst) and orders them by tag
        // then posting order; receives sort the same way, so the k-th
        // send on each (src, dst, tag) key meets the k-th posted
        // receive in a two-pointer walk — the replay's FIFO matching.
        // Leftovers on either side stay unmatched, as in replay (an
        // unconsumed send arrives into the void; a wait on an unpaired
        // receive blocks). Channels are discovered along the way: one
        // per distinct payload inside each (src, dst) group, tracked in
        // a group-local table (groups are contiguous after the sort).
        // Neither side needs a global sort. The scan appends rank-major,
        // so send keys are already grouped by their leading src field —
        // each rank's small block sorts independently. Receive keys are
        // grouped by receiver (the key's *dst* field), so one stable
        // counting scatter regroups them by src first; the in-bucket
        // sort then yields the same global (src, dst, tag, posting)
        // order the old full sorts produced, at a fraction of the cost.
        {
            let mut i = 0;
            while i < send_keys.len() {
                let src = send_keys[i].0 >> 96;
                let mut j = i + 1;
                while j < send_keys.len() && send_keys[j].0 >> 96 == src {
                    j += 1;
                }
                send_keys[i..j].sort_unstable();
                i = j;
            }
        }
        {
            let mut start = vec![0u32; n + 1];
            for &k in &recv_keys {
                start[(k >> 96) as usize + 1] += 1;
            }
            for s in 0..n {
                start[s + 1] += start[s];
            }
            let mut scattered = vec![0u128; recv_keys.len()];
            let mut cursor = start;
            for &k in &recv_keys {
                let s = (k >> 96) as usize;
                scattered[cursor[s] as usize] = k;
                cursor[s] += 1;
            }
            recv_keys = scattered;
            let mut i = 0;
            while i < recv_keys.len() {
                let src = recv_keys[i] >> 96;
                let mut j = i + 1;
                while j < recv_keys.len() && recv_keys[j] >> 96 == src {
                    j += 1;
                }
                recv_keys[i..j].sort_unstable();
                i = j;
            }
        }
        let mut channels: Vec<Channel> = Vec::new();
        let mut chan_bytes: Vec<u64> = Vec::new();
        let mut n_msgs = 0u32;
        let mut msg_edges = 0u64;
        let mut j = 0usize;
        let mut cur_pair = u64::MAX;
        let mut local: Vec<(u64, u32)> = Vec::new();
        for &(skey, bytes) in &send_keys {
            let pair = (skey >> 64) as u64; // src·2³² | dst
            if pair != cur_pair {
                cur_pair = pair;
                local.clear();
            }
            let chan = match local.iter().find(|&&(b, _)| b == bytes) {
                Some(&(_, c)) => c,
                None => {
                    let c = channels.len() as u32;
                    channels.push(Channel {
                        src: (pair >> 32) as u32,
                        dst: pair as u32,
                        class: NONE,
                    });
                    chan_bytes.push(bytes);
                    local.push((bytes, c));
                    c
                }
            };
            let key = skey >> 32; // src | dst | tag
            while j < recv_keys.len() && (recv_keys[j] >> 32) < key {
                j += 1;
            }
            let mut msg = NONE;
            if j < recv_keys.len() && (recv_keys[j] >> 32) == key {
                let r_node = recv_keys[j] as u32;
                j += 1;
                msg = n_msgs;
                n_msgs += 1;
                msg_edges += 1;
                if let Node::Recv { chan: rc, msg: rm, .. } = &mut nodes[r_node as usize] {
                    *rc = chan;
                    *rm = msg;
                }
            }
            if let Node::Send { chan: c, msg: m, .. } = &mut nodes[skey as u32 as usize] {
                *c = chan;
                *m = msg;
            }
        }
        // Collapse payload sizes into sorted byte classes.
        let mut class_bytes = chan_bytes.clone();
        class_bytes.sort_unstable();
        class_bytes.dedup();
        for (c, &b) in channels.iter_mut().zip(&chan_bytes) {
            c.class = class_bytes.binary_search(&b).expect("class table covers channels") as u32;
        }

        // Deduplicate (comm, op) collective costs.
        let mut coll_costs: Vec<(u32, CollectiveOp)> = Vec::new();
        for (i, spec) in insts.iter_mut().enumerate() {
            let op = inst_ops[i];
            let pos = match coll_costs.iter().position(|&(c, o)| c == spec.comm && o == op) {
                Some(p) => p,
                None => {
                    coll_costs.push((spec.comm, op));
                    coll_costs.len() - 1
                }
            };
            spec.cost = pos as u32;
        }

        let mut req_base = Vec::with_capacity(n + 1);
        let mut acc = 0u32;
        for &count in &req_counts {
            req_base.push(acc);
            acc += count;
        }
        req_base.push(acc);

        let (stream, runs, deadlock) =
            Self::schedule(n, &nodes, &rank_ofs, &req_base, n_msgs, &insts, comms);

        let m = metrics();
        m.compiles.inc();
        m.nodes.add(total_ops as u64);
        m.edges.add(seq_edges + msg_edges + coll_edges);

        TraceDag {
            ranks: n,
            n_nodes: total_ops as u64,
            stream,
            runs,
            req_base,
            channels,
            class_bytes,
            compute_costs,
            n_msgs,
            insts,
            coll_costs,
            comms: comms.to_vec(),
            total_bytes,
            total_msgs,
            seq_edges,
            msg_edges,
            coll_edges,
            deadlock,
        }
    }

    /// Fix a topological evaluation order once, at compile time. The
    /// happens-before relation (program order, message pairs,
    /// collective membership) carries no costs, so one structural
    /// worklist pass here buys every future evaluation a straight
    /// linear sweep; the same pass detects structural deadlock (the
    /// schedule simply never reaches the stuck ops). Returns the
    /// ordered node stream, the (rank, length) runs tiling it, and any
    /// deadlock.
    #[allow(clippy::too_many_arguments)]
    fn schedule(
        n: usize,
        nodes: &[Node],
        rank_ofs: &[u32],
        req_base: &[u32],
        n_msgs: u32,
        insts: &[CollSpec],
        comms: &[Vec<usize>],
    ) -> Schedule {
        /// Request already satisfiable when waited on (send requests,
        /// consumed receive requests).
        const RESOLVED: u32 = u32::MAX - 1;
        let mut stream: Vec<Node> = Vec::with_capacity(nodes.len());
        let mut runs: Vec<(u32, u32)> = Vec::new();
        fn emit(stream: &mut Vec<Node>, runs: &mut Vec<(u32, u32)>, node: Node, r: u32) {
            stream.push(node);
            match runs.last_mut() {
                Some((rank, len)) if *rank == r => *len += 1,
                _ => runs.push((r, 1)),
            }
        }
        let mut pc: Vec<usize> = (0..n).map(|r| rank_ofs[r] as usize).collect();
        let mut req_state: Vec<u32> = vec![NONE; req_base[n] as usize];
        let mut sent = vec![false; n_msgs as usize];
        let mut msg_waiter: Vec<u32> = vec![NONE; n_msgs as usize];
        let mut inst_arrived = vec![0u32; insts.len()];
        #[derive(Clone, Copy, PartialEq)]
        enum St {
            Ready,
            Susp,
            Stuck,
            Done,
        }
        let mut state = vec![St::Ready; n];
        let mut stack: Vec<usize> = (0..n).rev().collect();
        let mut done_count = 0usize;

        while let Some(r) = stack.pop() {
            if state[r] != St::Ready {
                continue;
            }
            'advance: loop {
                if pc[r] == rank_ofs[r + 1] as usize {
                    state[r] = St::Done;
                    done_count += 1;
                    break 'advance;
                }
                let node = nodes[pc[r]];
                match node {
                    Node::Send { msg, req, .. } => {
                        emit(&mut stream, &mut runs, node, r as u32);
                        req_state[(req_base[r] + req) as usize] = RESOLVED;
                        if msg != NONE {
                            sent[msg as usize] = true;
                            let w = msg_waiter[msg as usize];
                            if w != NONE {
                                state[w as usize] = St::Ready;
                                stack.push(w as usize);
                            }
                        }
                        pc[r] += 1;
                    }
                    Node::Recv { msg, req, .. } => {
                        emit(&mut stream, &mut runs, node, r as u32);
                        // NONE (no paired send) makes a later wait stick
                        req_state[(req_base[r] + req) as usize] = msg;
                        pc[r] += 1;
                    }
                    Node::Wait { req } => {
                        let ri = (req_base[r] + req) as usize;
                        match req_state[ri] {
                            RESOLVED => {
                                emit(&mut stream, &mut runs, node, r as u32);
                                pc[r] += 1;
                            }
                            NONE => {
                                // a receive nothing sends to, or a
                                // request never created: blocks forever
                                state[r] = St::Stuck;
                                break 'advance;
                            }
                            m if sent[m as usize] => {
                                req_state[ri] = RESOLVED;
                                emit(&mut stream, &mut runs, node, r as u32);
                                pc[r] += 1;
                            }
                            m => {
                                // paired send not scheduled yet —
                                // suspend; the send wakes us
                                msg_waiter[m as usize] = r as u32;
                                state[r] = St::Susp;
                                break 'advance;
                            }
                        }
                    }
                    Node::Coll { inst } => {
                        let i = inst as usize;
                        emit(&mut stream, &mut runs, node, r as u32);
                        inst_arrived[i] += 1;
                        let members = &comms[insts[i].comm as usize];
                        if (inst_arrived[i] as usize) < members.len() {
                            state[r] = St::Susp;
                            break 'advance;
                        }
                        // last member in: everyone else is parked on
                        // exactly this node — step them all past it
                        for &m in members {
                            if m != r {
                                pc[m] += 1;
                                state[m] = St::Ready;
                                stack.push(m);
                            }
                        }
                        pc[r] += 1;
                    }
                    _ => {
                        emit(&mut stream, &mut runs, node, r as u32);
                        pc[r] += 1;
                    }
                }
            }
        }

        let deadlock = if done_count < n {
            let stuck: Vec<usize> = (0..n).filter(|&r| state[r] != St::Done).collect();
            Some((stuck.len(), stuck[0], pc[stuck[0]] - rank_ofs[stuck[0]] as usize))
        } else {
            None
        };
        (stream, runs, deadlock)
    }

    /// Number of ranks compiled.
    pub fn ranks(&self) -> usize {
        self.ranks
    }

    /// Structure counts, for benches and the sweep report.
    pub fn stats(&self) -> DagStats {
        DagStats {
            nodes: self.n_nodes,
            edges: self.seq_edges + self.msg_edges + self.coll_edges,
            channels: self.channels.len() as u64,
            messages: self.msg_edges,
            collectives: self.insts.len() as u64,
        }
    }

    /// Evaluate one (machine, mapping, mode) point: a single streaming
    /// pass over the precompiled schedule, re-costing edges from `cfg`
    /// — no event queue, no message matching, no worklist. Exact
    /// against replay when [`TraceDag::exact_for`] holds for
    /// `cfg.machine`; a contention-free lower bound otherwise.
    ///
    /// Panics with the replay engine's deadlock diagnostic when the
    /// compiled traces cannot finish (the defect is structural, so it
    /// was already detected at compile time).
    pub fn evaluate(&self, cfg: &SimConfig) -> SimResult {
        let m = metrics();
        m.points.inc();
        m.scalar_points.inc();
        self.evaluate_in(cfg, &mut EvalCtx::default())
    }

    /// Evaluate a whole batch of points, identical to calling
    /// [`TraceDag::evaluate`] on each but reusing the scratch arrays
    /// and the machine-level cost tables across points — on a mapping
    /// sweep everything but the route pricing and the streaming pass
    /// itself is shared, so points after the first allocate nothing.
    pub fn evaluate_many(&self, cfgs: &[SimConfig]) -> Vec<SimResult> {
        /// Lane width of the batched pass: the Fig 2 mapping-set size,
        /// and one cache line of `SimTime`s per request.
        const L: usize = 8;
        // Lanes share every machine-derived table, so a batch must
        // agree on everything except the rank layout.
        fn same_machine(a: &SimConfig, b: &SimConfig) -> bool {
            a.machine == b.machine
                && a.mode == b.mode
                && a.threads == b.threads
                && a.layout.torus == b.layout.torus
                && a.layout.ambient_flows == b.layout.ambient_flows
        }
        // The scratch is thread-local so back-to-back sweeps (one call
        // per halo config) reuse warmed allocations instead of
        // page-faulting megabytes of fresh arrays per batch. Reuse
        // across different DAGs is safe: every slot the pass reads is
        // written earlier in the same pass, and the machine-table cache
        // keys on the byte-class table as well as the machine.
        thread_local! {
            static CTX: std::cell::RefCell<EvalCtx> = std::cell::RefCell::new(EvalCtx::default());
        }
        let m = metrics();
        m.points.add(cfgs.len() as u64);
        CTX.with(|ctx| {
            let ctx = &mut ctx.borrow_mut();
            let mut out = Vec::with_capacity(cfgs.len());
            let mut i = 0;
            while i < cfgs.len() {
                if cfgs.len() - i >= L
                    && cfgs[i + 1..i + L].iter().all(|c| same_machine(&cfgs[i], c))
                {
                    m.lane_batches.inc();
                    m.lane_points.add(L as u64);
                    self.evaluate_lanes::<L>(&cfgs[i..i + L], ctx, &mut out);
                    i += L;
                } else {
                    m.scalar_points.inc();
                    out.push(self.evaluate_in(&cfgs[i], ctx));
                    i += 1;
                }
            }
            out
        })
    }

    /// Ensure `mach` caches the machine-level tables for `cfg`
    /// (byte-class costs, handshake constants, the node model) —
    /// rebuilt only when the machine or ambient load actually changed,
    /// which on a mapping sweep is never after the first point.
    fn mach_costs<'a>(
        &self,
        cfg: &SimConfig,
        p2p: &P2pModel,
        mach: &'a mut Option<MachCosts>,
    ) -> &'a MachCosts {
        let ambient = cfg.layout.ambient_flows;
        if mach.as_ref().is_none_or(|m| {
            m.ambient != ambient || m.classes != self.class_bytes || m.machine != cfg.machine
        }) {
            let eager_threshold = cfg.machine.nic.eager_threshold;
            let copy_bw = cfg.machine.mem.bw_bytes / 4.0;
            let o_send = cfg.machine.nic.o_send;
            let o_recv = cfg.machine.nic.o_recv;
            *mach = Some(MachCosts {
                machine: cfg.machine.clone(),
                ambient,
                classes: self.class_bytes.clone(),
                node_model: NodeModel::new(cfg.machine.clone()),
                class_costs: self
                    .class_bytes
                    .iter()
                    .map(|&b| ClassCost {
                        serial: p2p.serial_cost(b),
                        shm_serial: p2p.shm_serial_cost(b),
                        copy: SimTime::from_secs(b as f64 / copy_bw),
                        eager: b <= eager_threshold,
                    })
                    .collect(),
                // rendezvous handshake round trip: a zero-byte wire
                // time plus both overheads (route-independent part)
                hs_off: p2p.serial_cost(0) + o_send + o_recv,
                hs_shm: p2p.shm_base() + p2p.shm_serial_cost(0) + o_send + o_recv,
            });
        }
        mach.as_ref().expect("machine tables just ensured")
    }

    fn evaluate_in(&self, cfg: &SimConfig, ctx: &mut EvalCtx) -> SimResult {
        let n = self.ranks;
        assert_eq!(cfg.ranks(), n, "layout must place exactly the compiled ranks");
        if let Some((count, rank, op)) = self.deadlock {
            panic!("deadlock: {count} ranks did not finish, e.g. rank {rank} at op {op}");
        }
        let p2p =
            P2pModel::new(&cfg.machine, cfg.layout.torus).with_ambient(cfg.layout.ambient_flows);
        let o_send = cfg.machine.nic.o_send;
        let o_recv = cfg.machine.nic.o_recv;

        let EvalCtx {
            mach,
            torus: cached_torus,
            coords,
            chan_costs,
            run_start,
            req_val,
            req_msg,
            req_chan,
            msg_arrive,
            msg_post,
            inst_arrived,
            inst_latest,
            ..
        } = ctx;

        // Re-cost the edge classes for this point. Byte-dependent terms
        // are priced per payload class (a handful of float divides,
        // cached while the machine is unchanged), routes per channel
        // (integer hop geometry only), and coordinates once per torus —
        // the split keeps the pricing loop free of floating point, and
        // `SimTime`'s integer addition keeps it bit-identical to
        // `P2pModel::wire_time`.
        let mc = self.mach_costs(cfg, &p2p, mach);
        let node_model = &mc.node_model;

        let torus = p2p.torus();
        if *cached_torus != Some(*torus) {
            *cached_torus = Some(*torus);
            coords.clear();
            coords.extend((0..torus.nodes()).map(|i| torus.coord(i)));
        }
        chan_costs.clear();
        chan_costs.extend(self.channels.iter().map(|c| {
            let src_node = cfg.layout.node_of_rank[c.src as usize];
            let dst_node = cfg.layout.node_of_rank[c.dst as usize];
            let cl = &mc.class_costs[c.class as usize];
            let (wire, hs) = if src_node == dst_node {
                // on-node: shared-memory path, no hops
                (p2p.shm_base() + cl.shm_serial, mc.hs_shm)
            } else {
                let hop = p2p.hop_cost(torus.hops(coords[src_node], coords[dst_node]));
                (hop + cl.serial, hop + mc.hs_off)
            };
            ChanCost {
                wire,
                rdv_extra: if cl.eager { SimTime::ZERO } else { hs },
                copy: cl.copy,
                eager: cl.eager,
            }
        }));
        let coll_dur: Vec<SimTime> = if self.insts.is_empty() {
            Vec::new()
        } else {
            let coll_models: Vec<CollectiveModel> = self
                .comms
                .iter()
                .map(|m| {
                    CollectiveModel::with_hop_scale(
                        &cfg.machine,
                        m.len(),
                        cfg.layout.tasks_per_node,
                        cfg.layout.hop_scale,
                    )
                })
                .collect();
            self.coll_costs
                .iter()
                .map(|&(comm, op)| coll_models[comm as usize].time(op))
                .collect()
        };

        // Per-point state. The per-rank clocks and marks move into the
        // returned `SimResult`, so they are fresh allocations; the big
        // request/message scratch is reused across points WITHOUT a
        // reset — safe because every slot the pass reads was written
        // earlier in the same pass (program order puts each request's
        // send/receive before its wait, and the schedule puts each
        // message's send before the consuming wait), and stuck ranks
        // never make it into the stream.
        let mut clock = vec![SimTime::ZERO; n];
        let mut busy = vec![SimTime::ZERO; n];
        let mut marks: Vec<Vec<(u32, SimTime)>> = vec![Vec::new(); n];
        run_start.clear();
        run_start.resize(n, SimTime::ZERO);
        let nreq = self.req_base[n] as usize;
        if req_val.len() < nreq {
            req_val.resize(nreq, SimTime::MAX);
            req_msg.resize(nreq, NONE);
            req_chan.resize(nreq, NONE);
        }
        if msg_arrive.len() < self.n_msgs as usize {
            msg_arrive.resize(self.n_msgs as usize, SimTime::MAX);
            // (receive's run start, receive's post clock) — the two
            // replay quantities the unexpected decision needs
            msg_post.resize(self.n_msgs as usize, (SimTime::MAX, SimTime::MAX));
        }
        inst_arrived.clear();
        inst_arrived.resize(self.insts.len(), 0);
        inst_latest.clear();
        inst_latest.resize(self.insts.len(), SimTime::ZERO);

        // The streaming pass. Within a run one rank executes alone, so
        // its clocks live in locals; they spill only around collective
        // merges (which touch other ranks' clocks) and at run ends.
        let mut si = 0usize;
        for &(rank, len) in &self.runs {
            let r = rank as usize;
            let rb = self.req_base[r] as usize;
            let mut clk = clock[r];
            let mut rs = run_start[r];
            let mut bz = busy[r];
            for node in &self.stream[si..si + len as usize] {
                match *node {
                    Node::Compute { cost } => {
                        let (work, threads) = self.compute_costs[cost as usize];
                        let t = node_model.time(&work, cfg.mode, threads);
                        clk += t;
                        bz += t;
                    }
                    Node::Delay { time } => {
                        clk += time;
                        bz += time;
                    }
                    Node::Send { chan, msg, req } => {
                        clk += o_send;
                        let c = &chan_costs[chan as usize];
                        let inject = clk;
                        let arrive = inject + c.rdv_extra + c.wire;
                        req_val[rb + req as usize] = if c.eager { inject } else { arrive };
                        if msg != NONE {
                            msg_arrive[msg as usize] = arrive;
                        }
                    }
                    Node::Recv { chan, msg, req } => {
                        clk += o_recv;
                        let ri = rb + req as usize;
                        req_val[ri] = SimTime::MAX;
                        req_msg[ri] = msg;
                        req_chan[ri] = chan;
                        if msg != NONE {
                            msg_post[msg as usize] = (rs, clk);
                        }
                    }
                    Node::Wait { req } => {
                        let ri = rb + req as usize;
                        let val = req_val[ri];
                        if val != SimTime::MAX {
                            if val > clk {
                                clk = val;
                            }
                            continue;
                        }
                        // the schedule guarantees the paired send
                        // already ran, so the arrival time is known
                        let m = req_msg[ri] as usize;
                        let a = msg_arrive[m];
                        // Unexpected iff the arrival popped before the
                        // receive's run began; then completion is the
                        // post-time copy, else the arrival itself
                        // (which also starts a new run when it blocked
                        // us).
                        let (post_rs, post_clock) = msg_post[m];
                        let done = if a < post_rs {
                            post_clock + chan_costs[req_chan[ri] as usize].copy
                        } else {
                            if a > rs {
                                rs = a;
                            }
                            a
                        };
                        req_val[ri] = done;
                        req_msg[ri] = NONE;
                        if done > clk {
                            clk = done;
                        }
                    }
                    Node::Coll { inst } => {
                        let i = inst as usize;
                        inst_arrived[i] += 1;
                        if clk > inst_latest[i] {
                            inst_latest[i] = clk;
                        }
                        let spec = self.insts[i];
                        let members = &self.comms[spec.comm as usize];
                        if (inst_arrived[i] as usize) < members.len() {
                            continue; // suspend: this ends the run
                        }
                        // last member in: complete the super-node and
                        // release everyone at `latest + duration`
                        // (their next ops are scheduled after this)
                        let done = inst_latest[i] + coll_dur[spec.cost as usize];
                        clock[r] = clk;
                        for &m in members {
                            if done > clock[m] {
                                clock[m] = done;
                            }
                            run_start[m] = done;
                        }
                        clk = clock[r];
                        rs = run_start[r];
                    }
                    Node::Mark { id } => {
                        marks[r].push((id, clk));
                    }
                }
            }
            si += len as usize;
            clock[r] = clk;
            run_start[r] = rs;
            busy[r] = bz;
        }

        SimResult {
            finish: clock,
            busy,
            bytes_sent: self.total_bytes,
            messages: self.total_msgs,
            marks,
        }
    }

    /// The lane-batched streaming pass: evaluate `L` points sharing one
    /// machine (differing only in rank layout) in ONE walk of the
    /// schedule. The schedule fixes all control flow, so everything
    /// structural — request→message pairing, resolved-vs-pending wait
    /// state, collective membership counts — is identical across lanes
    /// and stays in scalar arrays; only timing state (clocks, route
    /// costs, arrival times) widens to `L` interleaved lanes, so one
    /// request's lanes share a cache line and the node decode + dispatch
    /// cost is paid once for all `L` points.
    fn evaluate_lanes<const L: usize>(
        &self,
        cfgs: &[SimConfig],
        ctx: &mut EvalCtx,
        out: &mut Vec<SimResult>,
    ) {
        debug_assert_eq!(cfgs.len(), L);
        let n = self.ranks;
        for cfg in cfgs {
            assert_eq!(cfg.ranks(), n, "layout must place exactly the compiled ranks");
        }
        if let Some((count, rank, op)) = self.deadlock {
            panic!("deadlock: {count} ranks did not finish, e.g. rank {rank} at op {op}");
        }
        let cfg0 = &cfgs[0];
        let o_send = cfg0.machine.nic.o_send;
        let o_recv = cfg0.machine.nic.o_recv;

        let EvalCtx {
            mach,
            torus: cached_torus,
            coords,
            req_msg,
            req_chan,
            inst_arrived,
            lane_chan,
            chan_copy,
            chan_eager,
            lane_req_val,
            lane_msg_arrive,
            lane_msg_post,
            lane_run_start,
            lane_inst_latest,
            ..
        } = ctx;

        // Machine-level tables are shared across lanes (the batch
        // dispatcher guarantees one machine); routes are priced per
        // lane into the interleaved channel table. The copy cost and
        // eager flag depend only on the payload class, so they stay
        // per-channel scalars.
        let p2p =
            P2pModel::new(&cfg0.machine, cfg0.layout.torus).with_ambient(cfg0.layout.ambient_flows);
        let mc = self.mach_costs(cfg0, &p2p, mach);
        let torus = p2p.torus();
        if *cached_torus != Some(*torus) {
            *cached_torus = Some(*torus);
            coords.clear();
            coords.extend((0..torus.nodes()).map(|i| torus.coord(i)));
        }
        chan_copy.clear();
        chan_eager.clear();
        for c in &self.channels {
            let cl = &mc.class_costs[c.class as usize];
            chan_copy.push(cl.copy);
            chan_eager.push(cl.eager);
        }
        lane_chan.clear();
        lane_chan.resize(self.channels.len() * L, (SimTime::ZERO, SimTime::ZERO));
        // Channel-outer, lane-inner: one contiguous 16·L-byte write per
        // channel, and the hop geometry — which depends only on the
        // (src, dst) rank pair, not the payload class — is computed
        // once per pair (compile emits a pair's classes consecutively).
        let mut prev_pair = (u32::MAX, u32::MAX);
        let mut hop = [SimTime::ZERO; L];
        let mut on_node = [false; L];
        for (ci, c) in self.channels.iter().enumerate() {
            if (c.src, c.dst) != prev_pair {
                prev_pair = (c.src, c.dst);
                for (l, cfg) in cfgs.iter().enumerate() {
                    let src_node = cfg.layout.node_of_rank[c.src as usize];
                    let dst_node = cfg.layout.node_of_rank[c.dst as usize];
                    on_node[l] = src_node == dst_node;
                    if !on_node[l] {
                        hop[l] = p2p.hop_cost(torus.hops(coords[src_node], coords[dst_node]));
                    }
                }
            }
            let cl = &mc.class_costs[c.class as usize];
            for l in 0..L {
                let (wire, hs) = if on_node[l] {
                    // on-node: shared-memory path, no hops
                    (p2p.shm_base() + cl.shm_serial, mc.hs_shm)
                } else {
                    (hop[l] + cl.serial, hop[l] + mc.hs_off)
                };
                lane_chan[ci * L + l] = (wire, if cl.eager { SimTime::ZERO } else { hs });
            }
        }
        let lane_coll_dur: Vec<SimTime> = if self.insts.is_empty() {
            Vec::new()
        } else {
            let mut v = vec![SimTime::ZERO; self.coll_costs.len() * L];
            for (l, cfg) in cfgs.iter().enumerate() {
                let models: Vec<CollectiveModel> = self
                    .comms
                    .iter()
                    .map(|m| {
                        CollectiveModel::with_hop_scale(
                            &cfg.machine,
                            m.len(),
                            cfg.layout.tasks_per_node,
                            cfg.layout.hop_scale,
                        )
                    })
                    .collect();
                for (k, &(comm, op)) in self.coll_costs.iter().enumerate() {
                    v[k * L + l] = models[comm as usize].time(op);
                }
            }
            v
        };

        // Per-batch state; same no-reset invariant as the scalar pass
        // for the request/message scratch (every slot read was written
        // earlier in the same pass).
        let mut clock = vec![SimTime::ZERO; n * L];
        let mut busy = vec![SimTime::ZERO; n * L];
        let mut marks: Vec<Vec<(u32, SimTime)>> = vec![Vec::new(); n * L];
        lane_run_start.clear();
        lane_run_start.resize(n * L, SimTime::ZERO);
        let nreq = self.req_base[n] as usize;
        if lane_req_val.len() < nreq * L {
            lane_req_val.resize(nreq * L, SimTime::MAX);
        }
        if req_msg.len() < nreq {
            req_msg.resize(nreq, NONE);
            req_chan.resize(nreq, NONE);
        }
        let nm = self.n_msgs as usize;
        if lane_msg_arrive.len() < nm * L {
            lane_msg_arrive.resize(nm * L, SimTime::MAX);
            lane_msg_post.resize(nm * L, (SimTime::MAX, SimTime::MAX));
        }
        inst_arrived.clear();
        inst_arrived.resize(self.insts.len(), 0);
        lane_inst_latest.clear();
        lane_inst_latest.resize(self.insts.len() * L, SimTime::ZERO);

        let mut si = 0usize;
        for &(rank, len) in &self.runs {
            let r = rank as usize;
            let rb = self.req_base[r] as usize;
            let mut clk = [SimTime::ZERO; L];
            let mut rs = [SimTime::ZERO; L];
            let mut bz = [SimTime::ZERO; L];
            clk.copy_from_slice(&clock[r * L..r * L + L]);
            rs.copy_from_slice(&lane_run_start[r * L..r * L + L]);
            bz.copy_from_slice(&busy[r * L..r * L + L]);
            for node in &self.stream[si..si + len as usize] {
                match *node {
                    Node::Compute { cost } => {
                        let (work, threads) = self.compute_costs[cost as usize];
                        let t = mc.node_model.time(&work, cfg0.mode, threads);
                        for l in 0..L {
                            clk[l] += t;
                            bz[l] += t;
                        }
                    }
                    Node::Delay { time } => {
                        for l in 0..L {
                            clk[l] += time;
                            bz[l] += time;
                        }
                    }
                    Node::Send { chan, msg, req } => {
                        let cb = chan as usize * L;
                        let eager = chan_eager[chan as usize];
                        let ri = (rb + req as usize) * L;
                        for l in 0..L {
                            clk[l] += o_send;
                            let (wire, rdv) = lane_chan[cb + l];
                            let arrive = clk[l] + rdv + wire;
                            lane_req_val[ri + l] = if eager { clk[l] } else { arrive };
                            if msg != NONE {
                                lane_msg_arrive[msg as usize * L + l] = arrive;
                            }
                        }
                    }
                    Node::Recv { chan, msg, req } => {
                        let ri0 = rb + req as usize;
                        req_msg[ri0] = msg;
                        req_chan[ri0] = chan;
                        let ri = ri0 * L;
                        for l in 0..L {
                            clk[l] += o_recv;
                            lane_req_val[ri + l] = SimTime::MAX;
                            if msg != NONE {
                                lane_msg_post[msg as usize * L + l] = (rs[l], clk[l]);
                            }
                        }
                    }
                    Node::Wait { req } => {
                        let ri0 = rb + req as usize;
                        let ri = ri0 * L;
                        // resolved-vs-pending is structural (a send
                        // request, or a receive already waited), so
                        // lane 0 decides for the batch
                        if lane_req_val[ri] != SimTime::MAX {
                            for l in 0..L {
                                let val = lane_req_val[ri + l];
                                if val > clk[l] {
                                    clk[l] = val;
                                }
                            }
                            continue;
                        }
                        let m = req_msg[ri0] as usize * L;
                        let copy = chan_copy[req_chan[ri0] as usize];
                        for l in 0..L {
                            let a = lane_msg_arrive[m + l];
                            let (post_rs, post_clock) = lane_msg_post[m + l];
                            // unexpected iff the arrival popped before
                            // the receive's run began (per lane)
                            let done = if a < post_rs {
                                post_clock + copy
                            } else {
                                if a > rs[l] {
                                    rs[l] = a;
                                }
                                a
                            };
                            lane_req_val[ri + l] = done;
                            if done > clk[l] {
                                clk[l] = done;
                            }
                        }
                        req_msg[ri0] = NONE;
                    }
                    Node::Coll { inst } => {
                        let i = inst as usize;
                        inst_arrived[i] += 1;
                        let il = i * L;
                        for l in 0..L {
                            if clk[l] > lane_inst_latest[il + l] {
                                lane_inst_latest[il + l] = clk[l];
                            }
                        }
                        let spec = self.insts[i];
                        let members = &self.comms[spec.comm as usize];
                        if (inst_arrived[i] as usize) < members.len() {
                            continue; // suspend: this ends the run
                        }
                        let cb = spec.cost as usize * L;
                        clock[r * L..r * L + L].copy_from_slice(&clk);
                        for &mr in members {
                            for l in 0..L {
                                let done = lane_inst_latest[il + l] + lane_coll_dur[cb + l];
                                if done > clock[mr * L + l] {
                                    clock[mr * L + l] = done;
                                }
                                lane_run_start[mr * L + l] = done;
                            }
                        }
                        clk.copy_from_slice(&clock[r * L..r * L + L]);
                        rs.copy_from_slice(&lane_run_start[r * L..r * L + L]);
                    }
                    Node::Mark { id } => {
                        for l in 0..L {
                            marks[r * L + l].push((id, clk[l]));
                        }
                    }
                }
            }
            si += len as usize;
            clock[r * L..r * L + L].copy_from_slice(&clk);
            lane_run_start[r * L..r * L + L].copy_from_slice(&rs);
            busy[r * L..r * L + L].copy_from_slice(&bz);
        }

        // de-interleave one SimResult per lane
        for l in 0..L {
            out.push(SimResult {
                finish: (0..n).map(|r| clock[r * L + l]).collect(),
                busy: (0..n).map(|r| busy[r * L + l]).collect(),
                bytes_sent: self.total_bytes,
                messages: self.total_msgs,
                marks: (0..n).map(|r| std::mem::take(&mut marks[r * L + l])).collect(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{FnProgram, Mpi, Program};
    use crate::sim::TraceSim;
    use hpcsim_engine::SimTime;
    use hpcsim_machine::registry::{bluegene_p, xt4_qc};
    use hpcsim_machine::ExecMode;
    use hpcsim_net::DType;
    use hpcsim_topo::Mapping;

    /// Replay and DAG-evaluate the same traces on a contention-flat
    /// machine; every observable must agree exactly.
    fn check<P: Program>(prog: &P, machine: MachineSpec, ranks: usize, mode: ExecMode) {
        let cfg = SimConfig::new(machine.with_flat_contention(), ranks, mode);
        let traces = TraceSim::trace_program(prog, ranks, cfg.threads);
        let replay = TraceSim::new(cfg.clone()).replay_traces(&traces);
        let dag = TraceDag::compile_world(&traces).evaluate(&cfg);
        assert_eq!(replay.finish, dag.finish);
        assert_eq!(replay.busy, dag.busy);
        assert_eq!(replay.bytes_sent, dag.bytes_sent);
        assert_eq!(replay.messages, dag.messages);
        assert_eq!(replay.marks, dag.marks);
    }

    #[test]
    fn ping_pong_matches_replay() {
        let prog = FnProgram(|mpi: &mut Mpi| match mpi.rank() {
            0 => {
                mpi.send(1, 0, 8);
                mpi.recv(1, 1, 8);
            }
            _ => {
                mpi.recv(0, 0, 8);
                mpi.send(0, 1, 8);
            }
        });
        check(&prog, bluegene_p(), 2, ExecMode::Smp);
        check(&prog, xt4_qc(), 2, ExecMode::Smp);
    }

    #[test]
    fn same_tag_fifo_matches_replay() {
        check(
            &FnProgram(|mpi: &mut Mpi| {
                if mpi.rank() == 0 {
                    mpi.send(1, 9, 64);
                    mpi.send(1, 9, 64);
                } else {
                    mpi.recv(0, 9, 64);
                    mpi.recv(0, 9, 64);
                }
            }),
            bluegene_p(),
            2,
            ExecMode::Smp,
        );
    }

    #[test]
    fn unexpected_message_copy_matches_replay() {
        for delay_us in [0u64, 1, 100, 10_000] {
            check(
                &FnProgram(move |mpi: &mut Mpi| {
                    if mpi.rank() == 0 {
                        mpi.send(1, 0, 1024);
                    } else {
                        mpi.delay(SimTime::from_us(delay_us));
                        mpi.recv(0, 0, 1024);
                    }
                }),
                bluegene_p(),
                2,
                ExecMode::Smp,
            );
        }
    }

    #[test]
    fn rendezvous_matches_replay() {
        let big = bluegene_p().nic.eager_threshold * 100;
        check(
            &FnProgram(move |mpi: &mut Mpi| {
                if mpi.rank() == 0 {
                    mpi.send(1, 0, big);
                } else {
                    mpi.recv(0, 0, big);
                }
            }),
            bluegene_p(),
            2,
            ExecMode::Smp,
        );
    }

    #[test]
    fn ring_exchange_matches_replay_across_mappings() {
        let prog = FnProgram(|mpi: &mut Mpi| {
            let next = (mpi.rank() + 1) % mpi.size();
            let prev = (mpi.rank() + mpi.size() - 1) % mpi.size();
            mpi.sendrecv(next, 0, 65_536, prev, 0, 65_536);
            mpi.allreduce(crate::ops::CommId::WORLD, 8, DType::F64);
        });
        let machine = bluegene_p().with_flat_contention();
        let traces = TraceSim::trace_program(&prog, 64, 1);
        let dag = TraceDag::compile_world(&traces);
        for (_, mapping) in Mapping::fig2_set() {
            let layout = crate::layout::RankLayout::bluegene(&machine, 64, ExecMode::Vn, mapping);
            let cfg =
                SimConfig { machine: machine.clone(), mode: ExecMode::Vn, threads: 1, layout };
            let replay = TraceSim::new(cfg.clone()).replay_traces(&traces);
            let fast = dag.evaluate(&cfg);
            assert_eq!(replay.finish, fast.finish, "mapping {mapping:?}");
            assert_eq!(replay.busy, fast.busy);
        }
    }

    #[test]
    fn collective_straggler_matches_replay() {
        check(
            &FnProgram(|mpi: &mut Mpi| {
                if mpi.rank() == 3 {
                    mpi.delay(SimTime::from_us(500));
                }
                mpi.barrier(crate::ops::CommId::WORLD);
                mpi.mark(7);
                mpi.allreduce(crate::ops::CommId::WORLD, 32 * 1024, DType::F32);
            }),
            bluegene_p(),
            8,
            ExecMode::Vn,
        );
    }

    #[test]
    fn subcommunicator_matches_replay() {
        let machine = bluegene_p().with_flat_contention();
        let cfg = SimConfig::new(machine, 8, ExecMode::Vn);
        let mut sim = TraceSim::new(cfg.clone());
        let evens = sim.register_comm((0..8).step_by(2).collect());
        let prog = FnProgram(move |mpi: &mut Mpi| {
            if mpi.rank().is_multiple_of(2) {
                mpi.allreduce(evens, 1024, DType::F64);
            }
        });
        let traces = TraceSim::trace_program(&prog, 8, 1);
        let replay = sim.replay_traces(&traces);
        let world: Vec<usize> = (0..8).collect();
        let members: Vec<usize> = (0..8).step_by(2).collect();
        let dag = TraceDag::compile(&traces, &[world, members]).evaluate(&cfg);
        assert_eq!(replay.finish, dag.finish);
        assert_eq!(replay.busy, dag.busy);
    }

    #[test]
    fn unmatched_send_and_unwaited_recv_match_replay() {
        // rank 0 sends a message nobody receives; rank 1 posts a receive
        // it never waits on — both finish in either engine
        check(
            &FnProgram(|mpi: &mut Mpi| {
                if mpi.rank() == 0 {
                    let s = mpi.isend(1, 5, 256);
                    mpi.wait(s);
                } else {
                    let _never = mpi.irecv(0, 6, 256);
                    mpi.delay(SimTime::from_us(3));
                }
            }),
            bluegene_p(),
            2,
            ExecMode::Smp,
        );
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn deadlock_is_detected() {
        let prog = FnProgram(|mpi: &mut Mpi| {
            let peer = 1 - mpi.rank();
            mpi.recv(peer, 0, 8);
        });
        let cfg = SimConfig::new(bluegene_p().with_flat_contention(), 2, ExecMode::Smp);
        let traces = TraceSim::trace_program(&prog, 2, 1);
        let _ = TraceDag::compile_world(&traces).evaluate(&cfg);
    }

    #[test]
    fn stats_count_structure() {
        let prog = FnProgram(|mpi: &mut Mpi| {
            if mpi.rank() == 0 {
                mpi.send(1, 0, 64);
            } else {
                mpi.recv(0, 0, 64);
            }
            mpi.barrier(crate::ops::CommId::WORLD);
        });
        let traces = TraceSim::trace_program(&prog, 2, 1);
        let s = TraceDag::compile_world(&traces).stats();
        // rank 0: isend+wait+coll, rank 1: irecv+wait+coll
        assert_eq!(s.nodes, 6);
        assert_eq!(s.messages, 1);
        assert_eq!(s.channels, 1);
        assert_eq!(s.collectives, 1);
        assert_eq!(s.edges, 4 + 1 + 4); // program order + message + coll in/out
    }

    #[test]
    fn engine_selector_round_trips() {
        assert_eq!(SweepEngine::parse("replay"), Some(SweepEngine::Replay));
        assert_eq!(SweepEngine::parse("dag"), Some(SweepEngine::Dag));
        assert_eq!(SweepEngine::parse("fast"), None);
        assert_eq!(SweepEngine::Dag.label(), "dag");
        let before = sweep_engine();
        set_sweep_engine(SweepEngine::Dag);
        assert_eq!(sweep_engine(), SweepEngine::Dag);
        set_sweep_engine(before);
    }
}
