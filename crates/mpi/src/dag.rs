//! Trace → dependency-DAG compilation for fast parameter sweeps.
//!
//! The paper's headline figures are parameter scans: Fig 2(c,d) replays
//! one HALO trace under 8 mappings × 2 core counts, and every
//! machine-comparison panel re-simulates an identical communication
//! structure with only the edge costs changed. A recorded trace's
//! happens-before graph is invariant across those points, so a sweep
//! point does not need the event queue at all: compile the trace once
//! into a flat task DAG ([`TraceDag::compile`]), then evaluate each
//! (machine, mapping, mode) point with a single linear pass that
//! re-costs edges from `MachineSpec` + `RankLayout` and takes
//! max-over-predecessors ([`TraceDag::evaluate`]).
//!
//! Node kinds mirror the trace ops one-to-one; the cross-rank edges are
//!
//! * **message edges** — the k-th send from `src` to `(dst, tag)` pairs
//!   with the k-th receive posted at `dst` for `(src, tag)`, exactly the
//!   replay engine's FIFO matching (arrivals on one channel cannot
//!   overtake: equal payloads ride the same costs and injection times
//!   strictly increase). Sends sharing (src rank, dst rank, bytes) are
//!   deduplicated into *channels*, so a sweep point prices each distinct
//!   route/payload combination once, not once per round — and the
//!   payload sizes are themselves deduplicated into *byte classes*, so
//!   the byte-dependent cost terms (serialization, rendezvous copy) are
//!   priced once per distinct size, not once per route;
//! * **collective super-nodes** — one instance per (comm, occurrence);
//!   every member contributes an in-edge carrying its arrival clock and
//!   receives an out-edge at `latest + duration`.
//!
//! Compilation ends by fixing one machine-independent topological order
//! (the happens-before relation carries no costs), stored as a
//! contiguous node stream plus (rank, length) runs. Evaluating a point
//! is then a straight streaming pass — no worklist, no suspends, no
//! hash lookups — which is where the order-of-magnitude sweep speedup
//! comes from.
//!
//! ## When this is exact, and when replay remains the oracle
//!
//! Evaluation prices every message with the *contention-free* wire time.
//! On a machine whose `route_diversity` is infinite (see
//! [`MachineSpec::with_flat_contention`]) the replay's contended wire
//! time collapses to exactly that value, and [`TraceDag::evaluate`]
//! reproduces `TraceSim::replay_traces` bit-for-bit — per-rank finish
//! and busy clocks, marks, byte/message counts (the property tests in
//! `tests/prop_dag.rs` pin this). On a contended machine the DAG result
//! is a lower-bound approximation, so the sweep entry points
//! (`hpcc::halo_run_mapped`, the Fig 8 battery) automatically fall back
//! to replay there: [`SweepEngine::Dag`] means "DAG where provably
//! exact, replay otherwise", which keeps repro output byte-identical
//! under either engine selection.
//!
//! One replay subtlety is worth naming: whether a message is
//! *unexpected* (arrived before its receive was posted, paying a copy)
//! depends on event order, not clock order — the arrival must pop
//! before the receive's run *starts*. The evaluator therefore tracks
//! each rank's run-start time (updated at blocking waits and collective
//! exits) alongside its clock, and defers the unexpected-vs-posted
//! decision to the consuming wait, where the paired arrival time is
//! known. Suspending the receive itself would be wrong (cross-posted
//! exchanges would self-deadlock); suspending only the wait reproduces
//! the replay's happens-before relation, so every trace set the replay
//! can finish, the evaluator finishes too.
//!
//! ## Batched and perturbed evaluation
//!
//! Per-point costs are priced into structure-of-arrays tables split by
//! the machine parameter group that owns them — route latency
//! ([`ParamGroups::HOP_LAT`]), per-byte serialization
//! ([`ParamGroups::LINK_BW`]), compute/delay durations
//! ([`ParamGroups::COMPUTE`]) and collective durations
//! ([`ParamGroups::COLLECTIVE`]). [`TraceDag::evaluate_many`] batches
//! up to 32 structurally identical points into one wide streaming pass,
//! and [`TraceDag::evaluate_perturbed`] evaluates Monte-Carlo samples
//! around one point by *delta re-pricing*: a sample re-prices only the
//! cost arrays its [`Perturbation::groups`] bitmask touches and reuses
//! the cached base tables (bit-for-bit) for the rest, so an identity
//! sample reproduces the unperturbed engine exactly.

use crate::ops::Op;
use crate::result::SimResult;
use crate::sim::SimConfig;
use hpcsim_engine::SimTime;
use hpcsim_machine::{ExecMode, MachineSpec, NodeModel, ParamGroups, Perturbation, Workload};
use hpcsim_net::{CollectiveModel, CollectiveOp, P2pModel};
use hpcsim_obs as obs;
use hpcsim_topo::{Coord, Torus3D};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::LazyLock;

/// Obs counters for the sweep engine. All volatile: how points were
/// evaluated (DAG lanes vs scalar vs replay fallback) depends on the
/// engine selection and per-machine exactness, which is exactly what
/// these exist to report.
struct ObsMetrics {
    compiles: &'static obs::Counter,
    nodes: &'static obs::Counter,
    edges: &'static obs::Counter,
    points: &'static obs::Counter,
    lane_batches: &'static obs::Counter,
    lane_points: &'static obs::Counter,
    scalar_points: &'static obs::Counter,
    fallback_contention: &'static obs::Counter,
    fallback_faults: &'static obs::Counter,
    sens_samples: &'static obs::Counter,
    sens_group_arrays: &'static obs::Counter,
    sens_repriced: &'static obs::Counter,
    sens_lane_slots: &'static obs::Counter,
}

fn metrics() -> &'static ObsMetrics {
    use obs::Class::Volatile;
    static M: LazyLock<ObsMetrics> = LazyLock::new(|| ObsMetrics {
        compiles: obs::counter(
            "hpcsim_dag_compiles_total",
            "Trace sets compiled to task DAGs",
            Volatile,
        ),
        nodes: obs::counter("hpcsim_dag_nodes_total", "Task nodes compiled", Volatile),
        edges: obs::counter("hpcsim_dag_edges_total", "Dependency edges compiled", Volatile),
        points: obs::counter(
            "hpcsim_dag_points_total",
            "Sweep points evaluated by the DAG engine",
            Volatile,
        ),
        lane_batches: obs::counter(
            "hpcsim_dag_lane_batches_total",
            "Full-width batched passes in evaluate_many",
            Volatile,
        ),
        lane_points: obs::counter(
            "hpcsim_dag_lane_points_total",
            "Sweep points evaluated inside full-width lane batches",
            Volatile,
        ),
        scalar_points: obs::counter(
            "hpcsim_dag_scalar_points_total",
            "Sweep points evaluated one at a time",
            Volatile,
        ),
        fallback_contention: obs::counter(
            "hpcsim_sweep_fallback_contention_total",
            "Points sent to replay because the machine's contention model makes DAG inexact",
            Volatile,
        ),
        fallback_faults: obs::counter(
            "hpcsim_sweep_fallback_faults_total",
            "Points sent to replay because a fault plan was active",
            Volatile,
        ),
        sens_samples: obs::counter(
            "hpcsim_sens_samples_total",
            "Monte-Carlo perturbation samples evaluated",
            Volatile,
        ),
        sens_group_arrays: obs::counter(
            "hpcsim_sens_group_arrays_total",
            "Parameter-group cost arrays a full re-price would rebuild (4 per sample)",
            Volatile,
        ),
        sens_repriced: obs::counter(
            "hpcsim_sens_repriced_arrays_total",
            "Parameter-group cost arrays actually re-priced by delta re-pricing",
            Volatile,
        ),
        sens_lane_slots: obs::counter(
            "hpcsim_sens_lane_slots_total",
            "Lane slots across perturbed batches (occupancy = samples / slots)",
            Volatile,
        ),
    });
    &M
}

/// Record `points` sweep points falling back from the DAG engine to
/// replay because [`TraceDag::exact_for`] rejected the machine. Called
/// by the sweep entry points (hpcc, apps, cache) at their gate.
pub fn note_fallback_contention(points: u64) {
    metrics().fallback_contention.add(points);
}

/// Record `points` sweep points falling back to replay because the
/// scenario carries a fault plan (the DAG engine never prices faults).
pub fn note_fallback_faults(points: u64) {
    metrics().fallback_faults.add(points);
}

/// Which engine a parameter sweep uses per point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SweepEngine {
    /// Event-queue replay for every point (the oracle).
    #[default]
    Replay,
    /// DAG evaluation where it is provably exact (contention-flat
    /// machines, no faults); automatic fallback to replay elsewhere.
    Dag,
}

impl SweepEngine {
    /// Parse a CLI value (`replay` | `dag`).
    pub fn parse(s: &str) -> Option<SweepEngine> {
        match s {
            "replay" => Some(SweepEngine::Replay),
            "dag" => Some(SweepEngine::Dag),
            _ => None,
        }
    }

    /// Display label (the CLI spelling).
    pub fn label(self) -> &'static str {
        match self {
            SweepEngine::Replay => "replay",
            SweepEngine::Dag => "dag",
        }
    }
}

/// Process-global engine selection, like the runner's jobs knob: the
/// `repro` binary sets it from `--sweep-engine` once, and every sweep
/// entry point reads it. Default is [`SweepEngine::Replay`].
static SWEEP_ENGINE: AtomicU8 = AtomicU8::new(0);

/// Select the engine used by sweep entry points that don't take one
/// explicitly.
pub fn set_sweep_engine(engine: SweepEngine) {
    SWEEP_ENGINE.store(engine as u8, Ordering::Relaxed);
}

/// The currently selected sweep engine.
pub fn sweep_engine() -> SweepEngine {
    match SWEEP_ENGINE.load(Ordering::Relaxed) {
        0 => SweepEngine::Replay,
        _ => SweepEngine::Dag,
    }
}

const NONE: u32 = u32::MAX;

/// One compiled task node; mirrors [`Op`] with matching resolved to
/// integer message/channel/instance ids. Kept to 16 bytes — evaluation
/// streams every node once per sweep point, so the fat payloads
/// (workloads, byte sizes) live in side tables.
#[derive(Debug, Clone, Copy)]
enum Node {
    /// `cost` indexes the compiled `(Workload, threads)` side table.
    Compute { cost: u32 },
    Delay { time: SimTime },
    Send { chan: u32, msg: u32, req: u32 },
    /// `chan`/`msg` are the *paired send's*; [`NONE`] when no send
    /// matches (a wait on such a receive never completes, as in replay).
    Recv { chan: u32, msg: u32, req: u32 },
    Wait { req: u32 },
    Coll { inst: u32 },
    Mark { id: u32 },
}

/// A distinct (source rank, destination rank, payload) combination.
/// Edge costs depend on nothing else, so evaluation prices each channel
/// once per point and every message on it reuses the result; `class`
/// indexes the deduplicated payload-size table, so byte-dependent terms
/// are priced once per distinct size.
#[derive(Debug, Clone, Copy)]
struct Channel {
    src: u32,
    dst: u32,
    class: u32,
}

/// One collective occurrence (super-node).
#[derive(Debug, Clone, Copy)]
struct CollSpec {
    comm: u32,
    /// Index into the deduplicated (comm, op) cost table.
    cost: u32,
}

/// Per-point cost of one payload class: the byte-dependent terms of
/// the wire model, priced once per distinct size and shared by every
/// channel carrying it.
struct ClassCost {
    serial: SimTime,
    shm_serial: SimTime,
    copy: SimTime,
    eager: bool,
}

/// Per-point cost of one channel (route geometry + payload class).
struct ChanCost {
    wire: SimTime,
    rdv_extra: SimTime,
    copy: SimTime,
    eager: bool,
}

/// Machine-level cost tables: everything a sweep point needs that does
/// not depend on the rank layout. Mappings only move ranks, so a
/// mapping sweep builds these once and re-prices routes per point.
struct MachCosts {
    machine: MachineSpec,
    ambient: f64,
    /// The `class_bytes` the costs were priced for — the cache is
    /// shared across DAGs (thread-local), so the byte-class table is
    /// part of the key, not just the machine.
    classes: Vec<u64>,
    node_model: NodeModel,
    class_costs: Vec<ClassCost>,
    /// Rendezvous handshake round trip (zero-byte wire time plus both
    /// overheads), route-independent part, off-node / same-node.
    hs_off: SimTime,
    hs_shm: SimTime,
}

/// Structure-of-arrays base cost tables for one fully-specified sweep
/// point (machine + layout + mode), split by the machine parameter
/// group that prices each array. This is what Monte-Carlo delta
/// re-pricing works against: a perturbed sample rebuilds only the
/// arrays its [`Perturbation::groups`] bitmask touches and reuses the
/// rest bit-for-bit. Cached per thread while the point is unchanged —
/// on a sensitivity battery that is every batch after the first.
struct PointCosts {
    // cache key: the DAG identity (channel/compute/collective ids are
    // per-DAG) plus everything the tables were priced from
    uid: u64,
    machine: MachineSpec,
    mode: ExecMode,
    threads: u32,
    ambient: f64,
    hop_scale: f64,
    tasks_per_node: usize,
    torus: Torus3D,
    node_of_rank: Vec<usize>,
    /// [`ParamGroups::HOP_LAT`]: off-node route latency per channel.
    chan_hop: Vec<SimTime>,
    /// [`ParamGroups::LINK_BW`]: off-node per-byte serialization per
    /// channel (expanded from the byte-class table).
    chan_serial: Vec<SimTime>,
    /// Fused base column `(wire, rdv_extra)` per channel — exactly what
    /// the scalar pass prices, so untouched lanes copy these bits.
    chan_wire: Vec<(SimTime, SimTime)>,
    /// On-node channels ride the shared-memory path; link-bandwidth and
    /// hop-latency perturbations never touch them.
    chan_on: Vec<bool>,
    chan_copy: Vec<SimTime>,
    chan_eager: Vec<bool>,
    /// [`ParamGroups::COMPUTE`]: resolved duration per compute entry.
    compute: Vec<SimTime>,
    /// [`ParamGroups::COLLECTIVE`]: duration per (comm, op) cost entry.
    coll: Vec<SimTime>,
    /// Route-independent rendezvous handshake part (overheads), shared
    /// by every off-node channel.
    hs_off: SimTime,
}

/// Lane-kernel cost scaling with exact pass-through at 1.0 (so
/// untouched factors keep base bits): scales directly in the picosecond
/// domain — one multiply, a round, and a saturating cast, all
/// branch-free and if-convertible, so the per-lane loops stay SIMD.
/// (`SimTime::scale` round-trips through seconds, which costs a divide
/// and NaN/overflow branches per lane — that serialized the kernels.)
/// Cost-table values sit far below 2^53 ps, where the f64 round-trip is
/// lossless, and the `MAX` sentinel saturates back to itself.
#[inline(always)]
#[allow(clippy::manual_clamp)] // .clamp() passes NaN through; .max(0.0) maps it to 0.0
fn scale_ps(t: SimTime, factor: f64) -> SimTime {
    // Round-to-nearest via +0.5 and a truncating conversion:
    // `f64::round` (half-away-from-zero) has no single x86 instruction,
    // and the saturating `as u64` cast gets scalarized by the
    // vectorizer — so clamp explicitly (two vector min/max ops; NaN
    // lands on 0.0 through max) and convert with the raw instruction.
    // The clamp ceiling only bites past 2^63 ps ≈ 107 simulated days
    // for a single cost entry, far beyond any priced cost.
    let x = (t.as_ps() as f64 * factor + 0.5).max(0.0).min(9.2e18);
    // SAFETY: x is clamped to [0, 9.2e18], inside u64's exact range.
    let scaled = SimTime::from_ps(unsafe { x.to_int_unchecked::<u64>() });
    if factor == 1.0 {
        t
    } else {
        scaled
    }
}

/// Fixed-width view of one node's lane block. Converting the slice to
/// an array reference hoists the bounds check out of the per-lane
/// loops, which is what lets them autovectorize.
#[inline(always)]
fn lanes<const L: usize, T>(s: &[T], at: usize) -> &[T; L] {
    (&s[at..at + L]).try_into().unwrap()
}

/// Mutable fixed-width view of one node's lane block.
#[inline(always)]
fn lanes_mut<const L: usize, T>(s: &mut [T], at: usize) -> &mut [T; L] {
    (&mut s[at..at + L]).try_into().unwrap()
}

/// Reusable evaluation state: cached machine tables plus the per-point
/// scratch arrays. [`TraceDag::evaluate_many`] threads one of these
/// through a whole sweep so points after the first allocate nothing.
#[derive(Default)]
struct EvalCtx {
    mach: Option<MachCosts>,
    point: Option<PointCosts>,
    torus: Option<Torus3D>,
    coords: Vec<Coord>,
    chan_costs: Vec<ChanCost>,
    run_start: Vec<SimTime>,
    req_val: Vec<SimTime>,
    req_msg: Vec<u32>,
    req_chan: Vec<u32>,
    msg_arrive: Vec<SimTime>,
    msg_post: Vec<(SimTime, SimTime)>,
    inst_arrived: Vec<u32>,
    inst_latest: Vec<SimTime>,
    // lane-batched pass (`stream_lanes`): timing state widened to L
    // interleaved lanes; structural state stays in the scalar arrays
    lane_chan: Vec<(SimTime, SimTime)>,
    chan_copy: Vec<SimTime>,
    chan_eager: Vec<bool>,
    lane_compute: Vec<SimTime>,
    lane_coll: Vec<SimTime>,
    /// Per-lane factor on inline `Delay` durations (delays model OS
    /// noise/imbalance, so the COMPUTE perturbation group scales them);
    /// all 1.0 — exact pass-through — for mapping batches. Perturbed
    /// batches also scale `Compute` nodes by it (same parameter group).
    lane_delay: Vec<f64>,
    // Perturbed batches don't materialize lane cost arrays at all: a
    // perturbed lane's cost is `base ⊗ factor`, so the stream computes
    // it in registers from the base SoA tables plus these per-lane
    // factors (`scale_or` passes base bits through at exactly 1.0).
    lane_inv_bw: Vec<f64>,
    lane_hop_scale: Vec<f64>,
    lane_coll_scale: Vec<f64>,
    lane_req_val: Vec<SimTime>,
    lane_msg_arrive: Vec<SimTime>,
    // (receive's run start, receive's post clock), split into two flat
    // arrays: the interleaved pair cost a shuffle per lane vector in
    // the hottest (`Wait`) arm
    lane_msg_post_rs: Vec<SimTime>,
    lane_msg_post_clk: Vec<SimTime>,
    lane_run_start: Vec<SimTime>,
    lane_inst_latest: Vec<SimTime>,
}

// The scratch is thread-local so back-to-back sweeps (one call per
// halo config, one per perturbed batch) reuse warmed allocations
// instead of page-faulting megabytes of fresh arrays per batch. Reuse
// across different DAGs is safe: every slot a pass reads is written
// earlier in the same pass, the machine-table cache keys on the
// byte-class table as well as the machine, and the point-table cache
// keys on the DAG's unique id.
thread_local! {
    static CTX: std::cell::RefCell<EvalCtx> = std::cell::RefCell::new(EvalCtx::default());
}

/// Monotonic id per compiled DAG: the thread-local point-cost cache
/// stores per-DAG arrays (indexed by channel/compute/collective ids),
/// so the DAG identity is part of its key. Clones share the id — they
/// are structurally identical, so shared tables stay valid.
static DAG_UID: AtomicU64 = AtomicU64::new(0);

/// A fixed topological order: the contiguous node stream, the
/// (rank, length) runs tiling it, and any structural deadlock as
/// (stuck-rank count, example rank, its op index).
type Schedule = (Vec<Node>, Vec<(u32, u32)>, Option<(usize, usize, usize)>);

/// Structure counts of a compiled DAG (for benches and reports).
#[derive(Debug, Clone, Copy)]
pub struct DagStats {
    /// Task nodes (one per trace op).
    pub nodes: u64,
    /// Dependency edges: intra-rank program order + message pairs +
    /// collective membership (in and out).
    pub edges: u64,
    /// Distinct (src, dst, bytes) channels.
    pub channels: u64,
    /// Matched point-to-point messages.
    pub messages: u64,
    /// Collective super-nodes.
    pub collectives: u64,
}

/// A trace set compiled to a flat task DAG. Arena-style storage: every
/// cross-reference is an integer id into a `Vec`, nothing is allocated
/// per node at evaluation time beyond the per-point scratch arrays.
#[derive(Debug, Clone)]
pub struct TraceDag {
    /// See [`DAG_UID`].
    uid: u64,
    ranks: usize,
    n_nodes: u64,
    /// Task nodes in one fixed machine-independent topological order;
    /// the happens-before relation is cost-free, so every evaluation is
    /// a single linear sweep over this stream.
    stream: Vec<Node>,
    /// `(rank, length)` runs tiling `stream`: each run is a maximal
    /// stretch one rank executes without blocking on another.
    runs: Vec<(u32, u32)>,
    /// Flat request arena offsets (`req_base[r] + Req.0`).
    req_base: Vec<u32>,
    channels: Vec<Channel>,
    /// Sorted distinct payload sizes; `Channel::class` indexes this.
    class_bytes: Vec<u64>,
    /// Side table for [`Node::Compute`] (adjacent-duplicate compressed:
    /// a rank repeating one workload shares a single entry).
    compute_costs: Vec<(Workload, u32)>,
    n_msgs: u32,
    insts: Vec<CollSpec>,
    /// Deduplicated (comm, op) pairs; evaluation prices each once.
    coll_costs: Vec<(u32, CollectiveOp)>,
    comms: Vec<Vec<usize>>,
    /// Structural deadlock, detected once at compile time:
    /// `(unfinished rank count, example rank, example op index)`.
    deadlock: Option<(usize, usize, usize)>,
    total_bytes: u64,
    total_msgs: u64,
    seq_edges: u64,
    msg_edges: u64,
    coll_edges: u64,
}

impl TraceDag {
    /// True when DAG evaluation is exact on `machine`: the wire model's
    /// contended path collapses to the contention-free one (infinite
    /// route diversity), so a topological pass reproduces the replay
    /// bit-for-bit. Sweep entry points use this to fall back to replay.
    pub fn exact_for(machine: &MachineSpec) -> bool {
        machine.contention_flat()
    }

    /// Compile traces that only use `CommId::WORLD`.
    pub fn compile_world(traces: &[Vec<Op>]) -> TraceDag {
        Self::compile(traces, &[(0..traces.len()).collect()])
    }

    /// Compile one trace per rank into a task DAG. `comms[0]` must be
    /// the world communicator; further entries mirror the ids handed
    /// out by `TraceSim::register_comm`. Compilation is independent of
    /// machine, mapping and mode — the same DAG serves every sweep
    /// point.
    pub fn compile(traces: &[Vec<Op>], comms: &[Vec<usize>]) -> TraceDag {
        let n = traces.len();
        assert!(
            !comms.is_empty() && comms[0].len() == n,
            "comm 0 must be the world communicator"
        );
        let total_ops: usize = traces.iter().map(|t| t.len()).sum();
        assert!(total_ops < NONE as usize, "trace too large for u32 node ids");

        let mut nodes: Vec<Node> = Vec::with_capacity(total_ops);
        let mut rank_ofs: Vec<u32> = Vec::with_capacity(n + 1);
        let mut req_counts: Vec<u32> = vec![0; n];
        // Matching is sort-based on packed integer keys: hashing every
        // endpoint through a general-purpose map costs more than the
        // rest of compilation combined, and fat tuple keys sort several
        // times slower than u128s. Each send/receive contributes
        // src·2⁹⁶ | dst·2⁶⁴ | tag·2³² | node — the node id in the low
        // bits makes an unstable sort order-preserving per key, and
        // per-key node order IS the replay's FIFO posting order,
        // because one rank owns each side of a key.
        let mut send_keys: Vec<(u128, u64)> = Vec::with_capacity(total_ops / 4);
        let mut recv_keys: Vec<u128> = Vec::with_capacity(total_ops / 4);
        let mut compute_costs: Vec<(Workload, u32)> = Vec::new();
        let mut coll_seq: Vec<Vec<(u32, u64)>> = vec![Vec::new(); n];
        let mut inst_ids: Vec<Vec<u32>> = vec![Vec::new(); comms.len()];
        let mut insts: Vec<CollSpec> = Vec::new();
        let mut inst_ops: Vec<CollectiveOp> = Vec::new();
        let mut total_bytes = 0u64;
        let mut total_msgs = 0u64;
        let mut seq_edges = 0u64;
        let mut coll_edges = 0u64;

        for (r, trace) in traces.iter().enumerate() {
            rank_ofs.push(nodes.len() as u32);
            seq_edges += trace.len().saturating_sub(1) as u64;
            let note_req = |req_counts: &mut Vec<u32>, req: crate::ops::Req| {
                if req.0 >= req_counts[r] {
                    req_counts[r] = req.0 + 1;
                }
                req.0
            };
            for op in trace {
                let idx = nodes.len() as u32;
                match *op {
                    Op::Compute { work, threads } => {
                        let cost = match compute_costs.last() {
                            Some(&(w, t)) if w == work && t == threads => {
                                compute_costs.len() - 1
                            }
                            _ => {
                                compute_costs.push((work, threads));
                                compute_costs.len() - 1
                            }
                        };
                        nodes.push(Node::Compute { cost: cost as u32 });
                    }
                    Op::Delay { time } => nodes.push(Node::Delay { time }),
                    Op::Isend { dst, tag, bytes, req } => {
                        assert!(dst < n, "rank {r}: isend to out-of-range rank {dst}");
                        let (src, dst) = (r as u128, dst as u128);
                        send_keys.push((
                            (src << 96) | (dst << 64) | ((tag as u128) << 32) | idx as u128,
                            bytes,
                        ));
                        let req = note_req(&mut req_counts, req);
                        nodes.push(Node::Send { chan: NONE, msg: NONE, req });
                        total_bytes += bytes;
                        total_msgs += 1;
                    }
                    Op::Irecv { src, tag, bytes: _, req } => {
                        assert!(src < n, "rank {r}: irecv from out-of-range rank {src}");
                        recv_keys.push(
                            ((src as u128) << 96) | ((r as u128) << 64) | ((tag as u128) << 32) | idx as u128,
                        );
                        let req = note_req(&mut req_counts, req);
                        nodes.push(Node::Recv { chan: NONE, msg: NONE, req });
                    }
                    Op::Wait { req } => {
                        let req = note_req(&mut req_counts, req);
                        nodes.push(Node::Wait { req });
                    }
                    Op::Collective { comm, op } => {
                        let cid = comm.0 as usize;
                        assert!(cid < comms.len(), "rank {r}: collective on unregistered comm {cid}");
                        let counters = &mut coll_seq[r];
                        let pos = match counters.iter().position(|(c, _)| *c == comm.0) {
                            Some(p) => p,
                            None => {
                                counters.push((comm.0, 0));
                                counters.len() - 1
                            }
                        };
                        let seq = counters[pos].1 as usize;
                        counters[pos].1 += 1;
                        let table = &mut inst_ids[cid];
                        if table.len() <= seq {
                            table.resize(seq + 1, NONE);
                        }
                        if table[seq] == NONE {
                            table[seq] = insts.len() as u32;
                            insts.push(CollSpec { comm: comm.0, cost: NONE });
                            inst_ops.push(op);
                        } else {
                            assert_eq!(
                                inst_ops[table[seq] as usize], op,
                                "rank {r}: collective mismatch on comm {}",
                                comm.0
                            );
                        }
                        coll_edges += 2; // arrival in-edge + completion out-edge
                        nodes.push(Node::Coll { inst: table[seq] });
                    }
                    Op::Mark { id } => nodes.push(Node::Mark { id }),
                }
            }
        }
        rank_ofs.push(nodes.len() as u32);

        // One walk resolves both channel identity and FIFO pairing.
        // Sorting groups sends by (src, dst) and orders them by tag
        // then posting order; receives sort the same way, so the k-th
        // send on each (src, dst, tag) key meets the k-th posted
        // receive in a two-pointer walk — the replay's FIFO matching.
        // Leftovers on either side stay unmatched, as in replay (an
        // unconsumed send arrives into the void; a wait on an unpaired
        // receive blocks). Channels are discovered along the way: one
        // per distinct payload inside each (src, dst) group, tracked in
        // a group-local table (groups are contiguous after the sort).
        // Neither side needs a global sort. The scan appends rank-major,
        // so send keys are already grouped by their leading src field —
        // each rank's small block sorts independently. Receive keys are
        // grouped by receiver (the key's *dst* field), so one stable
        // counting scatter regroups them by src first; the in-bucket
        // sort then yields the same global (src, dst, tag, posting)
        // order the old full sorts produced, at a fraction of the cost.
        {
            let mut i = 0;
            while i < send_keys.len() {
                let src = send_keys[i].0 >> 96;
                let mut j = i + 1;
                while j < send_keys.len() && send_keys[j].0 >> 96 == src {
                    j += 1;
                }
                send_keys[i..j].sort_unstable();
                i = j;
            }
        }
        {
            let mut start = vec![0u32; n + 1];
            for &k in &recv_keys {
                start[(k >> 96) as usize + 1] += 1;
            }
            for s in 0..n {
                start[s + 1] += start[s];
            }
            let mut scattered = vec![0u128; recv_keys.len()];
            let mut cursor = start;
            for &k in &recv_keys {
                let s = (k >> 96) as usize;
                scattered[cursor[s] as usize] = k;
                cursor[s] += 1;
            }
            recv_keys = scattered;
            let mut i = 0;
            while i < recv_keys.len() {
                let src = recv_keys[i] >> 96;
                let mut j = i + 1;
                while j < recv_keys.len() && recv_keys[j] >> 96 == src {
                    j += 1;
                }
                recv_keys[i..j].sort_unstable();
                i = j;
            }
        }
        let mut channels: Vec<Channel> = Vec::new();
        let mut chan_bytes: Vec<u64> = Vec::new();
        let mut n_msgs = 0u32;
        let mut msg_edges = 0u64;
        let mut j = 0usize;
        let mut cur_pair = u64::MAX;
        let mut local: Vec<(u64, u32)> = Vec::new();
        for &(skey, bytes) in &send_keys {
            let pair = (skey >> 64) as u64; // src·2³² | dst
            if pair != cur_pair {
                cur_pair = pair;
                local.clear();
            }
            let chan = match local.iter().find(|&&(b, _)| b == bytes) {
                Some(&(_, c)) => c,
                None => {
                    let c = channels.len() as u32;
                    channels.push(Channel {
                        src: (pair >> 32) as u32,
                        dst: pair as u32,
                        class: NONE,
                    });
                    chan_bytes.push(bytes);
                    local.push((bytes, c));
                    c
                }
            };
            let key = skey >> 32; // src | dst | tag
            while j < recv_keys.len() && (recv_keys[j] >> 32) < key {
                j += 1;
            }
            let mut msg = NONE;
            if j < recv_keys.len() && (recv_keys[j] >> 32) == key {
                let r_node = recv_keys[j] as u32;
                j += 1;
                msg = n_msgs;
                n_msgs += 1;
                msg_edges += 1;
                if let Node::Recv { chan: rc, msg: rm, .. } = &mut nodes[r_node as usize] {
                    *rc = chan;
                    *rm = msg;
                }
            }
            if let Node::Send { chan: c, msg: m, .. } = &mut nodes[skey as u32 as usize] {
                *c = chan;
                *m = msg;
            }
        }
        // Collapse payload sizes into sorted byte classes.
        let mut class_bytes = chan_bytes.clone();
        class_bytes.sort_unstable();
        class_bytes.dedup();
        for (c, &b) in channels.iter_mut().zip(&chan_bytes) {
            c.class = class_bytes.binary_search(&b).expect("class table covers channels") as u32;
        }

        // Deduplicate (comm, op) collective costs.
        let mut coll_costs: Vec<(u32, CollectiveOp)> = Vec::new();
        for (i, spec) in insts.iter_mut().enumerate() {
            let op = inst_ops[i];
            let pos = match coll_costs.iter().position(|&(c, o)| c == spec.comm && o == op) {
                Some(p) => p,
                None => {
                    coll_costs.push((spec.comm, op));
                    coll_costs.len() - 1
                }
            };
            spec.cost = pos as u32;
        }

        let mut req_base = Vec::with_capacity(n + 1);
        let mut acc = 0u32;
        for &count in &req_counts {
            req_base.push(acc);
            acc += count;
        }
        req_base.push(acc);

        let (stream, runs, deadlock) =
            Self::schedule(n, &nodes, &rank_ofs, &req_base, n_msgs, &insts, comms);

        let m = metrics();
        m.compiles.inc();
        m.nodes.add(total_ops as u64);
        m.edges.add(seq_edges + msg_edges + coll_edges);

        TraceDag {
            uid: DAG_UID.fetch_add(1, Ordering::Relaxed),
            ranks: n,
            n_nodes: total_ops as u64,
            stream,
            runs,
            req_base,
            channels,
            class_bytes,
            compute_costs,
            n_msgs,
            insts,
            coll_costs,
            comms: comms.to_vec(),
            total_bytes,
            total_msgs,
            seq_edges,
            msg_edges,
            coll_edges,
            deadlock,
        }
    }

    /// Fix a topological evaluation order once, at compile time. The
    /// happens-before relation (program order, message pairs,
    /// collective membership) carries no costs, so one structural
    /// worklist pass here buys every future evaluation a straight
    /// linear sweep; the same pass detects structural deadlock (the
    /// schedule simply never reaches the stuck ops). Returns the
    /// ordered node stream, the (rank, length) runs tiling it, and any
    /// deadlock.
    #[allow(clippy::too_many_arguments)]
    fn schedule(
        n: usize,
        nodes: &[Node],
        rank_ofs: &[u32],
        req_base: &[u32],
        n_msgs: u32,
        insts: &[CollSpec],
        comms: &[Vec<usize>],
    ) -> Schedule {
        /// Request already satisfiable when waited on (send requests,
        /// consumed receive requests).
        const RESOLVED: u32 = u32::MAX - 1;
        let mut stream: Vec<Node> = Vec::with_capacity(nodes.len());
        let mut runs: Vec<(u32, u32)> = Vec::new();
        fn emit(stream: &mut Vec<Node>, runs: &mut Vec<(u32, u32)>, node: Node, r: u32) {
            stream.push(node);
            match runs.last_mut() {
                Some((rank, len)) if *rank == r => *len += 1,
                _ => runs.push((r, 1)),
            }
        }
        let mut pc: Vec<usize> = (0..n).map(|r| rank_ofs[r] as usize).collect();
        let mut req_state: Vec<u32> = vec![NONE; req_base[n] as usize];
        let mut sent = vec![false; n_msgs as usize];
        let mut msg_waiter: Vec<u32> = vec![NONE; n_msgs as usize];
        let mut inst_arrived = vec![0u32; insts.len()];
        #[derive(Clone, Copy, PartialEq)]
        enum St {
            Ready,
            Susp,
            Stuck,
            Done,
        }
        let mut state = vec![St::Ready; n];
        let mut stack: Vec<usize> = (0..n).rev().collect();
        let mut done_count = 0usize;

        while let Some(r) = stack.pop() {
            if state[r] != St::Ready {
                continue;
            }
            'advance: loop {
                if pc[r] == rank_ofs[r + 1] as usize {
                    state[r] = St::Done;
                    done_count += 1;
                    break 'advance;
                }
                let node = nodes[pc[r]];
                match node {
                    Node::Send { msg, req, .. } => {
                        emit(&mut stream, &mut runs, node, r as u32);
                        req_state[(req_base[r] + req) as usize] = RESOLVED;
                        if msg != NONE {
                            sent[msg as usize] = true;
                            let w = msg_waiter[msg as usize];
                            if w != NONE {
                                state[w as usize] = St::Ready;
                                stack.push(w as usize);
                            }
                        }
                        pc[r] += 1;
                    }
                    Node::Recv { msg, req, .. } => {
                        emit(&mut stream, &mut runs, node, r as u32);
                        // NONE (no paired send) makes a later wait stick
                        req_state[(req_base[r] + req) as usize] = msg;
                        pc[r] += 1;
                    }
                    Node::Wait { req } => {
                        let ri = (req_base[r] + req) as usize;
                        match req_state[ri] {
                            RESOLVED => {
                                emit(&mut stream, &mut runs, node, r as u32);
                                pc[r] += 1;
                            }
                            NONE => {
                                // a receive nothing sends to, or a
                                // request never created: blocks forever
                                state[r] = St::Stuck;
                                break 'advance;
                            }
                            m if sent[m as usize] => {
                                req_state[ri] = RESOLVED;
                                emit(&mut stream, &mut runs, node, r as u32);
                                pc[r] += 1;
                            }
                            m => {
                                // paired send not scheduled yet —
                                // suspend; the send wakes us
                                msg_waiter[m as usize] = r as u32;
                                state[r] = St::Susp;
                                break 'advance;
                            }
                        }
                    }
                    Node::Coll { inst } => {
                        let i = inst as usize;
                        emit(&mut stream, &mut runs, node, r as u32);
                        inst_arrived[i] += 1;
                        let members = &comms[insts[i].comm as usize];
                        if (inst_arrived[i] as usize) < members.len() {
                            state[r] = St::Susp;
                            break 'advance;
                        }
                        // last member in: everyone else is parked on
                        // exactly this node — step them all past it
                        for &m in members {
                            if m != r {
                                pc[m] += 1;
                                state[m] = St::Ready;
                                stack.push(m);
                            }
                        }
                        pc[r] += 1;
                    }
                    _ => {
                        emit(&mut stream, &mut runs, node, r as u32);
                        pc[r] += 1;
                    }
                }
            }
        }

        let deadlock = if done_count < n {
            let stuck: Vec<usize> = (0..n).filter(|&r| state[r] != St::Done).collect();
            Some((stuck.len(), stuck[0], pc[stuck[0]] - rank_ofs[stuck[0]] as usize))
        } else {
            None
        };
        (stream, runs, deadlock)
    }

    /// Number of ranks compiled.
    pub fn ranks(&self) -> usize {
        self.ranks
    }

    /// Structural deadlock detected at compile time, as `(unfinished
    /// rank count, example rank, example op index)` — `None` when the
    /// traces can finish. The fuzzer's differential oracle cross-checks
    /// this against the replay engine's own deadlock diagnosis.
    pub fn deadlock(&self) -> Option<(usize, usize, usize)> {
        self.deadlock
    }

    /// Structure counts, for benches and the sweep report.
    pub fn stats(&self) -> DagStats {
        DagStats {
            nodes: self.n_nodes,
            edges: self.seq_edges + self.msg_edges + self.coll_edges,
            channels: self.channels.len() as u64,
            messages: self.msg_edges,
            collectives: self.insts.len() as u64,
        }
    }

    /// Evaluate one (machine, mapping, mode) point: a single streaming
    /// pass over the precompiled schedule, re-costing edges from `cfg`
    /// — no event queue, no message matching, no worklist. Exact
    /// against replay when [`TraceDag::exact_for`] holds for
    /// `cfg.machine`; a contention-free lower bound otherwise.
    ///
    /// Panics with the replay engine's deadlock diagnostic when the
    /// compiled traces cannot finish (the defect is structural, so it
    /// was already detected at compile time).
    pub fn evaluate(&self, cfg: &SimConfig) -> SimResult {
        let m = metrics();
        m.points.inc();
        m.scalar_points.inc();
        self.evaluate_in(cfg, &mut EvalCtx::default())
    }

    /// Evaluate a whole batch of points, identical to calling
    /// [`TraceDag::evaluate`] on each but reusing the scratch arrays
    /// and the machine-level cost tables across points — on a mapping
    /// sweep everything but the route pricing and the streaming pass
    /// itself is shared, so points after the first allocate nothing.
    pub fn evaluate_many(&self, cfgs: &[SimConfig]) -> Vec<SimResult> {
        /// Widest lane batch: saturates the node decode amortization on
        /// big batteries while keeping the per-request lane stripe
        /// within a few cache lines.
        const WIDE: usize = 32;
        /// Narrow batch: the Fig 2 mapping-set size, and one cache line
        /// of `SimTime`s per request.
        const L: usize = 8;
        // Lanes share every machine-derived table, so a batch must
        // agree on everything except the rank layout.
        fn same_machine(a: &SimConfig, b: &SimConfig) -> bool {
            a.machine == b.machine
                && a.mode == b.mode
                && a.threads == b.threads
                && a.layout.torus == b.layout.torus
                && a.layout.ambient_flows == b.layout.ambient_flows
        }
        let m = metrics();
        m.points.add(cfgs.len() as u64);
        CTX.with(|ctx| {
            let ctx = &mut ctx.borrow_mut();
            let mut out = Vec::with_capacity(cfgs.len());
            let mut i = 0;
            while i < cfgs.len() {
                let rem = cfgs.len() - i;
                if rem >= WIDE && cfgs[i + 1..i + WIDE].iter().all(|c| same_machine(&cfgs[i], c))
                {
                    m.lane_batches.inc();
                    m.lane_points.add(WIDE as u64);
                    self.evaluate_lanes::<WIDE>(&cfgs[i..i + WIDE], ctx, &mut out);
                    i += WIDE;
                } else if rem >= L
                    && cfgs[i + 1..i + L].iter().all(|c| same_machine(&cfgs[i], c))
                {
                    m.lane_batches.inc();
                    m.lane_points.add(L as u64);
                    self.evaluate_lanes::<L>(&cfgs[i..i + L], ctx, &mut out);
                    i += L;
                } else {
                    m.scalar_points.inc();
                    out.push(self.evaluate_in(&cfgs[i], ctx));
                    i += 1;
                }
            }
            out
        })
    }

    /// Evaluate Monte-Carlo perturbation `samples` around one sweep
    /// point: the base cost tables for `cfg` are priced once (and
    /// cached per thread across calls), then each sample *delta
    /// re-prices* only the structure-of-arrays cost tables its
    /// [`Perturbation::groups`] bitmask touches — untouched groups
    /// reuse the base arrays bit-for-bit, so an identity sample is
    /// bit-identical to [`TraceDag::evaluate`]. Samples are packed into
    /// wide lane batches (the last partial batch padded by repeating
    /// its final sample); results come back in sample order, one per
    /// sample, independent of the batch decomposition.
    pub fn evaluate_perturbed(&self, cfg: &SimConfig, samples: &[Perturbation]) -> Vec<SimResult> {
        const WIDE: usize = 32;
        const L: usize = 8;
        let n = self.ranks;
        assert_eq!(cfg.ranks(), n, "layout must place exactly the compiled ranks");
        if let Some((count, rank, op)) = self.deadlock {
            panic!("deadlock: {count} ranks did not finish, e.g. rank {rank} at op {op}");
        }
        if samples.is_empty() {
            return Vec::new();
        }
        let m = metrics();
        m.points.add(samples.len() as u64);
        m.sens_samples.add(samples.len() as u64);
        m.sens_group_arrays.add(samples.len() as u64 * ParamGroups::COUNT as u64);
        m.sens_repriced
            .add(samples.iter().map(|s| s.groups().count() as u64).sum());
        let o_send = cfg.machine.nic.o_send;
        let o_recv = cfg.machine.nic.o_recv;
        CTX.with(|ctx| {
            let ctx = &mut ctx.borrow_mut();
            self.ensure_point_costs(cfg, ctx);
            // Take the base tables out so pricing can read them while
            // writing the lane scratch; restored before returning.
            let pc = ctx.point.take().expect("point tables just ensured");
            let mut out = Vec::with_capacity(samples.len());
            let mut i = 0;
            while samples.len() - i >= WIDE {
                m.sens_lane_slots.add(WIDE as u64);
                Self::price_perturbed::<WIDE>(&samples[i..i + WIDE], ctx);
                self.stream_lanes::<WIDE, true>(o_send, o_recv, Some(&pc), ctx, &mut out);
                i += WIDE;
            }
            while samples.len() - i > 1 {
                let take = (samples.len() - i).min(L);
                m.sens_lane_slots.add(L as u64);
                Self::price_perturbed::<L>(&samples[i..i + take], ctx);
                self.stream_lanes::<L, true>(o_send, o_recv, Some(&pc), ctx, &mut out);
                out.truncate(out.len() - (L - take));
                i += take;
            }
            if i < samples.len() {
                m.sens_lane_slots.inc();
                Self::price_perturbed::<1>(&samples[i..], ctx);
                self.stream_lanes::<1, true>(o_send, o_recv, Some(&pc), ctx, &mut out);
            }
            ctx.point = Some(pc);
            out
        })
    }

    /// Ensure `mach` caches the machine-level tables for `cfg`
    /// (byte-class costs, handshake constants, the node model) —
    /// rebuilt only when the machine or ambient load actually changed,
    /// which on a mapping sweep is never after the first point.
    fn mach_costs<'a>(
        &self,
        cfg: &SimConfig,
        p2p: &P2pModel,
        mach: &'a mut Option<MachCosts>,
    ) -> &'a MachCosts {
        let ambient = cfg.layout.ambient_flows;
        if mach.as_ref().is_none_or(|m| {
            m.ambient != ambient || m.classes != self.class_bytes || m.machine != cfg.machine
        }) {
            let eager_threshold = cfg.machine.nic.eager_threshold;
            let copy_bw = cfg.machine.mem.bw_bytes / 4.0;
            let o_send = cfg.machine.nic.o_send;
            let o_recv = cfg.machine.nic.o_recv;
            *mach = Some(MachCosts {
                machine: cfg.machine.clone(),
                ambient,
                classes: self.class_bytes.clone(),
                node_model: NodeModel::new(cfg.machine.clone()),
                class_costs: self
                    .class_bytes
                    .iter()
                    .map(|&b| ClassCost {
                        serial: p2p.serial_cost(b),
                        shm_serial: p2p.shm_serial_cost(b),
                        copy: SimTime::from_secs(b as f64 / copy_bw),
                        eager: b <= eager_threshold,
                    })
                    .collect(),
                // rendezvous handshake round trip: a zero-byte wire
                // time plus both overheads (route-independent part)
                hs_off: p2p.serial_cost(0) + o_send + o_recv,
                hs_shm: p2p.shm_base() + p2p.shm_serial_cost(0) + o_send + o_recv,
            });
        }
        mach.as_ref().expect("machine tables just ensured")
    }

    /// Ensure `ctx.point` holds the structure-of-arrays base cost
    /// tables for `cfg` — the split (hop / serial / compute /
    /// collective) arrays delta re-pricing scales plus the fused
    /// per-channel column untouched lanes copy. Rebuilt only when the
    /// point actually changed, which on a sensitivity battery is never
    /// after the first batch.
    fn ensure_point_costs(&self, cfg: &SimConfig, ctx: &mut EvalCtx) {
        let lay = &cfg.layout;
        if ctx.point.as_ref().is_some_and(|pc| {
            pc.uid == self.uid
                && pc.mode == cfg.mode
                && pc.threads == cfg.threads
                && pc.ambient == lay.ambient_flows
                && pc.hop_scale == lay.hop_scale
                && pc.tasks_per_node == lay.tasks_per_node
                && pc.torus == lay.torus
                && pc.node_of_rank == lay.node_of_rank
                && pc.machine == cfg.machine
        }) {
            return;
        }
        let p2p = P2pModel::new(&cfg.machine, lay.torus).with_ambient(lay.ambient_flows);
        let EvalCtx { mach, torus: cached_torus, coords, .. } = &mut *ctx;
        let mc = self.mach_costs(cfg, &p2p, mach);
        let torus = p2p.torus();
        if *cached_torus != Some(*torus) {
            *cached_torus = Some(*torus);
            coords.clear();
            coords.extend((0..torus.nodes()).map(|i| torus.coord(i)));
        }
        let nchan = self.channels.len();
        let mut chan_hop = vec![SimTime::ZERO; nchan];
        let mut chan_serial = vec![SimTime::ZERO; nchan];
        let mut chan_wire = vec![(SimTime::ZERO, SimTime::ZERO); nchan];
        let mut chan_on = vec![false; nchan];
        let mut chan_copy = vec![SimTime::ZERO; nchan];
        let mut chan_eager = vec![false; nchan];
        // Hop geometry depends only on the (src, dst) pair, not the
        // payload class; compile emits a pair's classes consecutively.
        let mut prev_pair = (u32::MAX, u32::MAX);
        let mut hop = SimTime::ZERO;
        let mut on_node = false;
        for (ci, c) in self.channels.iter().enumerate() {
            if (c.src, c.dst) != prev_pair {
                prev_pair = (c.src, c.dst);
                let src_node = lay.node_of_rank[c.src as usize];
                let dst_node = lay.node_of_rank[c.dst as usize];
                on_node = src_node == dst_node;
                if !on_node {
                    hop = p2p.hop_cost(torus.hops(coords[src_node], coords[dst_node]));
                }
            }
            let cl = &mc.class_costs[c.class as usize];
            let (wire, hs) = if on_node {
                (p2p.shm_base() + cl.shm_serial, mc.hs_shm)
            } else {
                chan_hop[ci] = hop;
                chan_serial[ci] = cl.serial;
                (hop + cl.serial, hop + mc.hs_off)
            };
            chan_wire[ci] = (wire, if cl.eager { SimTime::ZERO } else { hs });
            chan_on[ci] = on_node;
            chan_copy[ci] = cl.copy;
            chan_eager[ci] = cl.eager;
        }
        let hs_off = mc.hs_off;
        let compute: Vec<SimTime> = self
            .compute_costs
            .iter()
            .map(|&(work, threads)| mc.node_model.time(&work, cfg.mode, threads))
            .collect();
        let coll: Vec<SimTime> = if self.insts.is_empty() {
            Vec::new()
        } else {
            let models: Vec<CollectiveModel> = self
                .comms
                .iter()
                .map(|m| {
                    CollectiveModel::with_hop_scale(
                        &cfg.machine,
                        m.len(),
                        lay.tasks_per_node,
                        lay.hop_scale,
                    )
                })
                .collect();
            self.coll_costs
                .iter()
                .map(|&(comm, op)| models[comm as usize].time(op))
                .collect()
        };
        ctx.point = Some(PointCosts {
            uid: self.uid,
            machine: cfg.machine.clone(),
            mode: cfg.mode,
            threads: cfg.threads,
            ambient: lay.ambient_flows,
            hop_scale: lay.hop_scale,
            tasks_per_node: lay.tasks_per_node,
            torus: *torus,
            node_of_rank: lay.node_of_rank.clone(),
            chan_hop,
            chan_serial,
            chan_wire,
            chan_on,
            chan_copy,
            chan_eager,
            compute,
            coll,
            hs_off,
        });
    }

    /// Price up to `L` perturbation samples (lane `l ≥ samples.len()`
    /// repeats the last sample — padding for a partial final batch).
    /// Delta re-pricing taken to its limit: nothing is materialized per
    /// (cost, lane) at all. A perturbed lane's cost is always
    /// `base ⊗ factor`, so pricing stores only the four per-lane scale
    /// factors and the streaming pass applies them in registers against
    /// the base SoA tables — an untouched group's factor is exactly 1.0
    /// and `scale_or` passes the base bits through unchanged, so
    /// identity lanes stay bit-identical.
    fn price_perturbed<const L: usize>(samples: &[Perturbation], ctx: &mut EvalCtx) {
        debug_assert!(!samples.is_empty() && samples.len() <= L);
        let EvalCtx { lane_delay, lane_inv_bw, lane_hop_scale, lane_coll_scale, .. } = &mut *ctx;
        for v in [&mut *lane_delay, &mut *lane_inv_bw, &mut *lane_hop_scale, &mut *lane_coll_scale]
        {
            v.clear();
            v.resize(L, 1.0);
        }
        let last = samples.len() - 1;
        for l in 0..L {
            let p = &samples[l.min(last)];
            lane_delay[l] = p.compute_scale;
            // bandwidth multiplies; serialization time divides (1/1.0
            // is exactly 1.0, so an untouched link keeps base bits)
            lane_inv_bw[l] = 1.0 / p.bw_scale;
            lane_hop_scale[l] = p.hop_scale;
            lane_coll_scale[l] = p.coll_scale;
        }
    }

    fn evaluate_in(&self, cfg: &SimConfig, ctx: &mut EvalCtx) -> SimResult {
        let n = self.ranks;
        assert_eq!(cfg.ranks(), n, "layout must place exactly the compiled ranks");
        if let Some((count, rank, op)) = self.deadlock {
            panic!("deadlock: {count} ranks did not finish, e.g. rank {rank} at op {op}");
        }
        let p2p =
            P2pModel::new(&cfg.machine, cfg.layout.torus).with_ambient(cfg.layout.ambient_flows);
        let o_send = cfg.machine.nic.o_send;
        let o_recv = cfg.machine.nic.o_recv;

        let EvalCtx {
            mach,
            torus: cached_torus,
            coords,
            chan_costs,
            run_start,
            req_val,
            req_msg,
            req_chan,
            msg_arrive,
            msg_post,
            inst_arrived,
            inst_latest,
            ..
        } = ctx;

        // Re-cost the edge classes for this point. Byte-dependent terms
        // are priced per payload class (a handful of float divides,
        // cached while the machine is unchanged), routes per channel
        // (integer hop geometry only), and coordinates once per torus —
        // the split keeps the pricing loop free of floating point, and
        // `SimTime`'s integer addition keeps it bit-identical to
        // `P2pModel::wire_time`.
        let mc = self.mach_costs(cfg, &p2p, mach);
        let node_model = &mc.node_model;

        let torus = p2p.torus();
        if *cached_torus != Some(*torus) {
            *cached_torus = Some(*torus);
            coords.clear();
            coords.extend((0..torus.nodes()).map(|i| torus.coord(i)));
        }
        chan_costs.clear();
        chan_costs.extend(self.channels.iter().map(|c| {
            let src_node = cfg.layout.node_of_rank[c.src as usize];
            let dst_node = cfg.layout.node_of_rank[c.dst as usize];
            let cl = &mc.class_costs[c.class as usize];
            let (wire, hs) = if src_node == dst_node {
                // on-node: shared-memory path, no hops
                (p2p.shm_base() + cl.shm_serial, mc.hs_shm)
            } else {
                let hop = p2p.hop_cost(torus.hops(coords[src_node], coords[dst_node]));
                (hop + cl.serial, hop + mc.hs_off)
            };
            ChanCost {
                wire,
                rdv_extra: if cl.eager { SimTime::ZERO } else { hs },
                copy: cl.copy,
                eager: cl.eager,
            }
        }));
        let coll_dur: Vec<SimTime> = if self.insts.is_empty() {
            Vec::new()
        } else {
            let coll_models: Vec<CollectiveModel> = self
                .comms
                .iter()
                .map(|m| {
                    CollectiveModel::with_hop_scale(
                        &cfg.machine,
                        m.len(),
                        cfg.layout.tasks_per_node,
                        cfg.layout.hop_scale,
                    )
                })
                .collect();
            self.coll_costs
                .iter()
                .map(|&(comm, op)| coll_models[comm as usize].time(op))
                .collect()
        };

        // Per-point state. The per-rank clocks and marks move into the
        // returned `SimResult`, so they are fresh allocations; the big
        // request/message scratch is reused across points WITHOUT a
        // reset — safe because every slot the pass reads was written
        // earlier in the same pass (program order puts each request's
        // send/receive before its wait, and the schedule puts each
        // message's send before the consuming wait), and stuck ranks
        // never make it into the stream.
        let mut clock = vec![SimTime::ZERO; n];
        let mut busy = vec![SimTime::ZERO; n];
        let mut marks: Vec<Vec<(u32, SimTime)>> = vec![Vec::new(); n];
        run_start.clear();
        run_start.resize(n, SimTime::ZERO);
        let nreq = self.req_base[n] as usize;
        if req_val.len() < nreq {
            req_val.resize(nreq, SimTime::MAX);
            req_msg.resize(nreq, NONE);
            req_chan.resize(nreq, NONE);
        }
        if msg_arrive.len() < self.n_msgs as usize {
            msg_arrive.resize(self.n_msgs as usize, SimTime::MAX);
            // (receive's run start, receive's post clock) — the two
            // replay quantities the unexpected decision needs
            msg_post.resize(self.n_msgs as usize, (SimTime::MAX, SimTime::MAX));
        }
        inst_arrived.clear();
        inst_arrived.resize(self.insts.len(), 0);
        inst_latest.clear();
        inst_latest.resize(self.insts.len(), SimTime::ZERO);

        // The streaming pass. Within a run one rank executes alone, so
        // its clocks live in locals; they spill only around collective
        // merges (which touch other ranks' clocks) and at run ends.
        let mut si = 0usize;
        for &(rank, len) in &self.runs {
            let r = rank as usize;
            let rb = self.req_base[r] as usize;
            let mut clk = clock[r];
            let mut rs = run_start[r];
            let mut bz = busy[r];
            for node in &self.stream[si..si + len as usize] {
                match *node {
                    Node::Compute { cost } => {
                        let (work, threads) = self.compute_costs[cost as usize];
                        let t = node_model.time(&work, cfg.mode, threads);
                        clk += t;
                        bz += t;
                    }
                    Node::Delay { time } => {
                        clk += time;
                        bz += time;
                    }
                    Node::Send { chan, msg, req } => {
                        clk += o_send;
                        let c = &chan_costs[chan as usize];
                        let inject = clk;
                        let arrive = inject + c.rdv_extra + c.wire;
                        req_val[rb + req as usize] = if c.eager { inject } else { arrive };
                        if msg != NONE {
                            msg_arrive[msg as usize] = arrive;
                        }
                    }
                    Node::Recv { chan, msg, req } => {
                        clk += o_recv;
                        let ri = rb + req as usize;
                        req_val[ri] = SimTime::MAX;
                        req_msg[ri] = msg;
                        req_chan[ri] = chan;
                        if msg != NONE {
                            msg_post[msg as usize] = (rs, clk);
                        }
                    }
                    Node::Wait { req } => {
                        let ri = rb + req as usize;
                        let val = req_val[ri];
                        if val != SimTime::MAX {
                            if val > clk {
                                clk = val;
                            }
                            continue;
                        }
                        // the schedule guarantees the paired send
                        // already ran, so the arrival time is known
                        let m = req_msg[ri] as usize;
                        let a = msg_arrive[m];
                        // Unexpected iff the arrival popped before the
                        // receive's run began; then completion is the
                        // post-time copy, else the arrival itself
                        // (which also starts a new run when it blocked
                        // us).
                        let (post_rs, post_clock) = msg_post[m];
                        let done = if a < post_rs {
                            post_clock + chan_costs[req_chan[ri] as usize].copy
                        } else {
                            if a > rs {
                                rs = a;
                            }
                            a
                        };
                        req_val[ri] = done;
                        req_msg[ri] = NONE;
                        if done > clk {
                            clk = done;
                        }
                    }
                    Node::Coll { inst } => {
                        let i = inst as usize;
                        inst_arrived[i] += 1;
                        if clk > inst_latest[i] {
                            inst_latest[i] = clk;
                        }
                        let spec = self.insts[i];
                        let members = &self.comms[spec.comm as usize];
                        if (inst_arrived[i] as usize) < members.len() {
                            continue; // suspend: this ends the run
                        }
                        // last member in: complete the super-node and
                        // release everyone at `latest + duration`
                        // (their next ops are scheduled after this)
                        let done = inst_latest[i] + coll_dur[spec.cost as usize];
                        clock[r] = clk;
                        for &m in members {
                            if done > clock[m] {
                                clock[m] = done;
                            }
                            run_start[m] = done;
                        }
                        clk = clock[r];
                        rs = run_start[r];
                    }
                    Node::Mark { id } => {
                        marks[r].push((id, clk));
                    }
                }
            }
            si += len as usize;
            clock[r] = clk;
            run_start[r] = rs;
            busy[r] = bz;
        }

        SimResult {
            finish: clock,
            busy,
            bytes_sent: self.total_bytes,
            messages: self.total_msgs,
            marks,
        }
    }

    /// The lane-batched streaming pass: evaluate `L` points sharing one
    /// machine (differing only in rank layout) in ONE walk of the
    /// schedule. The schedule fixes all control flow, so everything
    /// structural — request→message pairing, resolved-vs-pending wait
    /// state, collective membership counts — is identical across lanes
    /// and stays in scalar arrays; only timing state (clocks, route
    /// costs, arrival times) widens to `L` interleaved lanes, so one
    /// request's lanes share a cache line and the node decode + dispatch
    /// cost is paid once for all `L` points.
    fn evaluate_lanes<const L: usize>(
        &self,
        cfgs: &[SimConfig],
        ctx: &mut EvalCtx,
        out: &mut Vec<SimResult>,
    ) {
        debug_assert_eq!(cfgs.len(), L);
        let n = self.ranks;
        for cfg in cfgs {
            assert_eq!(cfg.ranks(), n, "layout must place exactly the compiled ranks");
        }
        if let Some((count, rank, op)) = self.deadlock {
            panic!("deadlock: {count} ranks did not finish, e.g. rank {rank} at op {op}");
        }
        let cfg0 = &cfgs[0];
        let o_send = cfg0.machine.nic.o_send;
        let o_recv = cfg0.machine.nic.o_recv;

        let EvalCtx {
            mach,
            torus: cached_torus,
            coords,
            lane_chan,
            chan_copy,
            chan_eager,
            lane_compute,
            lane_coll,
            lane_delay,
            ..
        } = &mut *ctx;

        // Machine-level tables are shared across lanes (the batch
        // dispatcher guarantees one machine); routes are priced per
        // lane into the interleaved channel table. The copy cost and
        // eager flag depend only on the payload class, so they stay
        // per-channel scalars.
        let p2p =
            P2pModel::new(&cfg0.machine, cfg0.layout.torus).with_ambient(cfg0.layout.ambient_flows);
        let mc = self.mach_costs(cfg0, &p2p, mach);
        let torus = p2p.torus();
        if *cached_torus != Some(*torus) {
            *cached_torus = Some(*torus);
            coords.clear();
            coords.extend((0..torus.nodes()).map(|i| torus.coord(i)));
        }
        chan_copy.clear();
        chan_eager.clear();
        for c in &self.channels {
            let cl = &mc.class_costs[c.class as usize];
            chan_copy.push(cl.copy);
            chan_eager.push(cl.eager);
        }
        lane_chan.clear();
        lane_chan.resize(self.channels.len() * L, (SimTime::ZERO, SimTime::ZERO));
        // Channel-outer, lane-inner: one contiguous 16·L-byte write per
        // channel, and the hop geometry — which depends only on the
        // (src, dst) rank pair, not the payload class — is computed
        // once per pair (compile emits a pair's classes consecutively).
        let mut prev_pair = (u32::MAX, u32::MAX);
        let mut hop = [SimTime::ZERO; L];
        let mut on_node = [false; L];
        for (ci, c) in self.channels.iter().enumerate() {
            if (c.src, c.dst) != prev_pair {
                prev_pair = (c.src, c.dst);
                for (l, cfg) in cfgs.iter().enumerate() {
                    let src_node = cfg.layout.node_of_rank[c.src as usize];
                    let dst_node = cfg.layout.node_of_rank[c.dst as usize];
                    on_node[l] = src_node == dst_node;
                    if !on_node[l] {
                        hop[l] = p2p.hop_cost(torus.hops(coords[src_node], coords[dst_node]));
                    }
                }
            }
            let cl = &mc.class_costs[c.class as usize];
            for l in 0..L {
                let (wire, hs) = if on_node[l] {
                    // on-node: shared-memory path, no hops
                    (p2p.shm_base() + cl.shm_serial, mc.hs_shm)
                } else {
                    (hop[l] + cl.serial, hop[l] + mc.hs_off)
                };
                lane_chan[ci * L + l] = (wire, if cl.eager { SimTime::ZERO } else { hs });
            }
        }
        // Compute durations are layout-independent, so the batch shares
        // one priced value per compute entry across all lanes.
        lane_compute.clear();
        lane_compute.resize(self.compute_costs.len() * L, SimTime::ZERO);
        for (e, &(work, threads)) in self.compute_costs.iter().enumerate() {
            let t = mc.node_model.time(&work, cfg0.mode, threads);
            lane_compute[e * L..e * L + L].fill(t);
        }
        lane_delay.clear();
        lane_delay.resize(L, 1.0);
        lane_coll.clear();
        lane_coll.resize(self.coll_costs.len() * L, SimTime::ZERO);
        if !self.insts.is_empty() {
            for (l, cfg) in cfgs.iter().enumerate() {
                let models: Vec<CollectiveModel> = self
                    .comms
                    .iter()
                    .map(|m| {
                        CollectiveModel::with_hop_scale(
                            &cfg.machine,
                            m.len(),
                            cfg.layout.tasks_per_node,
                            cfg.layout.hop_scale,
                        )
                    })
                    .collect();
                for (k, &(comm, op)) in self.coll_costs.iter().enumerate() {
                    lane_coll[k * L + l] = models[comm as usize].time(op);
                }
            }
        }

        self.stream_lanes::<L, false>(o_send, o_recv, None, ctx, out);
    }

    /// The wide streaming pass shared by mapping batches
    /// ([`TraceDag::evaluate_lanes`]) and perturbed batches
    /// ([`TraceDag::evaluate_perturbed`]): evaluate `L` lanes whose
    /// cost tables are already priced into the ctx lane arrays in ONE
    /// walk of the schedule. The schedule fixes all control flow, so
    /// everything structural — request→message pairing,
    /// resolved-vs-pending wait state, collective membership counts —
    /// is identical across lanes and stays in scalar arrays; only
    /// timing state (clocks, route costs, arrival times) widens to `L`
    /// interleaved lanes, so one request's lanes share a cache line and
    /// the node decode + dispatch cost is paid once for all `L` points.
    fn stream_lanes<const L: usize, const FACTORED: bool>(
        &self,
        o_send: SimTime,
        o_recv: SimTime,
        pc: Option<&PointCosts>,
        ctx: &mut EvalCtx,
        out: &mut Vec<SimResult>,
    ) {
        // The lane loops are pure u64 add/max/select chains — exactly
        // what 4- and 8-wide integer SIMD eats — but the portable
        // baseline build can't use those instructions. Compile the
        // kernel three times and pick the widest ISA the CPU reports;
        // every path runs the same integer arithmetic, so results stay
        // bit-identical across the dispatch.
        #[cfg(target_arch = "x86_64")]
        {
            // `HPCSIM_ISA=avx2|scalar` caps the dispatch below what the
            // CPU reports — an escape hatch for parts that downclock
            // under 512-bit vectors (results are bit-identical either
            // way, only throughput changes).
            static ISA: std::sync::OnceLock<u8> = std::sync::OnceLock::new();
            let isa = *ISA.get_or_init(|| match std::env::var("HPCSIM_ISA").as_deref() {
                Ok("scalar") => 0,
                Ok("avx2") if std::is_x86_feature_detected!("avx2") => 1,
                _ => {
                    if std::is_x86_feature_detected!("avx512f")
                        && std::is_x86_feature_detected!("avx512dq")
                        && std::is_x86_feature_detected!("avx512bw")
                        && std::is_x86_feature_detected!("avx512vl")
                    {
                        2
                    } else if std::is_x86_feature_detected!("avx2") {
                        1
                    } else {
                        0
                    }
                }
            });
            if isa == 2 {
                // SAFETY: the matching CPU features were detected above.
                return unsafe {
                    self.stream_lanes_avx512::<L, FACTORED>(o_send, o_recv, pc, ctx, out)
                };
            }
            if isa == 1 {
                // SAFETY: the matching CPU features were detected above.
                return unsafe {
                    self.stream_lanes_avx2::<L, FACTORED>(o_send, o_recv, pc, ctx, out)
                };
            }
        }
        self.stream_lanes_impl::<L, FACTORED>(o_send, o_recv, pc, ctx, out)
    }

    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx512f,avx512dq,avx512bw,avx512vl")]
    unsafe fn stream_lanes_avx512<const L: usize, const FACTORED: bool>(
        &self,
        o_send: SimTime,
        o_recv: SimTime,
        pc: Option<&PointCosts>,
        ctx: &mut EvalCtx,
        out: &mut Vec<SimResult>,
    ) {
        self.stream_lanes_impl::<L, FACTORED>(o_send, o_recv, pc, ctx, out)
    }

    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    unsafe fn stream_lanes_avx2<const L: usize, const FACTORED: bool>(
        &self,
        o_send: SimTime,
        o_recv: SimTime,
        pc: Option<&PointCosts>,
        ctx: &mut EvalCtx,
        out: &mut Vec<SimResult>,
    ) {
        self.stream_lanes_impl::<L, FACTORED>(o_send, o_recv, pc, ctx, out)
    }

    #[inline(always)]
    fn stream_lanes_impl<const L: usize, const FACTORED: bool>(
        &self,
        o_send: SimTime,
        o_recv: SimTime,
        pc: Option<&PointCosts>,
        ctx: &mut EvalCtx,
        out: &mut Vec<SimResult>,
    ) {
        let n = self.ranks;
        let EvalCtx {
            req_msg,
            req_chan,
            inst_arrived,
            lane_chan,
            chan_copy,
            chan_eager,
            lane_compute,
            lane_coll,
            lane_delay,
            lane_inv_bw,
            lane_hop_scale,
            lane_coll_scale,
            lane_req_val,
            lane_msg_arrive,
            lane_msg_post_rs,
            lane_msg_post_clk,
            lane_run_start,
            lane_inst_latest,
            ..
        } = &mut *ctx;
        // Factored (perturbed) batches read the structural per-channel
        // tables straight off the base point; mapping batches priced
        // them into the ctx copies.
        let (chan_copy, chan_eager): (&[SimTime], &[bool]) = match pc {
            Some(p) => (&p.chan_copy, &p.chan_eager),
            None => (chan_copy, chan_eager),
        };
        // Per-lane factors as fixed arrays: indexing the ctx `Vec`s
        // directly would re-prove bounds per lane inside the hot loops,
        // which blocks their vectorization.
        let f_delay: [f64; L] = *lanes(lane_delay, 0);
        let (f_inv_bw, f_hop, f_coll): ([f64; L], [f64; L], [f64; L]) = if FACTORED {
            (*lanes(lane_inv_bw, 0), *lanes(lane_hop_scale, 0), *lanes(lane_coll_scale, 0))
        } else {
            ([1.0; L], [1.0; L], [1.0; L])
        };
        // Batch-level delta re-pricing: a sensitivity battery feeds
        // whole chunks from one parameter group, so the other groups'
        // factors are 1.0 across every lane — those arms then skip the
        // per-lane float scaling entirely and broadcast base bits.
        let id_link = f_inv_bw == [1.0; L] && f_hop == [1.0; L];
        let id_comp = f_delay == [1.0; L];
        let id_coll = f_coll == [1.0; L];

        // Per-batch state; same no-reset invariant as the scalar pass
        // for the request/message scratch (every slot read was written
        // earlier in the same pass).
        let mut clock = vec![SimTime::ZERO; n * L];
        let mut busy = vec![SimTime::ZERO; n * L];
        // allocated lazily: most DAGs carry no marks, and the n·L
        // scratch plus its per-lane de-interleave is pure overhead then
        let mut marks: Vec<Vec<(u32, SimTime)>> = Vec::new();
        lane_run_start.clear();
        lane_run_start.resize(n * L, SimTime::ZERO);
        let nreq = self.req_base[n] as usize;
        if lane_req_val.len() < nreq * L {
            lane_req_val.resize(nreq * L, SimTime::MAX);
        }
        if req_msg.len() < nreq {
            req_msg.resize(nreq, NONE);
            req_chan.resize(nreq, NONE);
        }
        let nm = self.n_msgs as usize;
        if lane_msg_arrive.len() < nm * L {
            lane_msg_arrive.resize(nm * L, SimTime::MAX);
            lane_msg_post_rs.resize(nm * L, SimTime::MAX);
            lane_msg_post_clk.resize(nm * L, SimTime::MAX);
        }
        inst_arrived.clear();
        inst_arrived.resize(self.insts.len(), 0);
        lane_inst_latest.clear();
        lane_inst_latest.resize(self.insts.len() * L, SimTime::ZERO);

        let mut si = 0usize;
        for &(rank, len) in &self.runs {
            let r = rank as usize;
            let rb = self.req_base[r] as usize;
            let mut clk = [SimTime::ZERO; L];
            let mut rs = [SimTime::ZERO; L];
            let mut bz = [SimTime::ZERO; L];
            clk.copy_from_slice(&clock[r * L..r * L + L]);
            rs.copy_from_slice(&lane_run_start[r * L..r * L + L]);
            bz.copy_from_slice(&busy[r * L..r * L + L]);
            for node in &self.stream[si..si + len as usize] {
                match *node {
                    Node::Compute { cost } => {
                        if FACTORED {
                            // compute cost is layout-independent: one
                            // base value, scaled per lane in registers
                            let t = pc.unwrap().compute[cost as usize];
                            if id_comp {
                                for l in 0..L {
                                    clk[l] = clk[l].saturating_add(t);
                                    bz[l] = bz[l].saturating_add(t);
                                }
                            } else {
                                for l in 0..L {
                                    let c = scale_ps(t, f_delay[l]);
                                    clk[l] = clk[l].saturating_add(c);
                                    bz[l] = bz[l].saturating_add(c);
                                }
                            }
                        } else {
                            let c = lanes::<L, _>(lane_compute, cost as usize * L);
                            for l in 0..L {
                                clk[l] = clk[l].saturating_add(c[l]);
                                bz[l] = bz[l].saturating_add(c[l]);
                            }
                        }
                    }
                    Node::Delay { time } => {
                        if id_comp {
                            for l in 0..L {
                                clk[l] = clk[l].saturating_add(time);
                                bz[l] = bz[l].saturating_add(time);
                            }
                        } else {
                            for l in 0..L {
                                let t = scale_ps(time, f_delay[l]);
                                clk[l] = clk[l].saturating_add(t);
                                bz[l] = bz[l].saturating_add(t);
                            }
                        }
                    }
                    Node::Send { chan, msg, req } => {
                        let ci = chan as usize;
                        let eager = chan_eager[ci];
                        let rv = lanes_mut::<L, _>(lane_req_val, (rb + req as usize) * L);
                        let mut arrive = [SimTime::ZERO; L];
                        if FACTORED {
                            let p = pc.unwrap();
                            if p.chan_on[ci] || id_link {
                                // shared-memory path (link parameters
                                // don't price it) or a batch that
                                // leaves the link untouched: base bits
                                let (wire, rdv) = p.chan_wire[ci];
                                for l in 0..L {
                                    clk[l] = clk[l].saturating_add(o_send);
                                    arrive[l] = clk[l].saturating_add(rdv).saturating_add(wire);
                                    rv[l] = if eager { clk[l] } else { arrive[l] };
                                }
                            } else {
                                let hop = p.chan_hop[ci];
                                let serial = p.chan_serial[ci];
                                let hs_off = p.hs_off;
                                for l in 0..L {
                                    clk[l] = clk[l].saturating_add(o_send);
                                    let h = scale_ps(hop, f_hop[l]);
                                    let wire =
                                        h.saturating_add(scale_ps(serial, f_inv_bw[l]));
                                    let rdv = if eager {
                                        SimTime::ZERO
                                    } else {
                                        h.saturating_add(hs_off)
                                    };
                                    arrive[l] = clk[l].saturating_add(rdv).saturating_add(wire);
                                    rv[l] = if eager { clk[l] } else { arrive[l] };
                                }
                            }
                        } else {
                            let ch = lanes::<L, _>(lane_chan, ci * L);
                            for l in 0..L {
                                clk[l] = clk[l].saturating_add(o_send);
                                let (wire, rdv) = ch[l];
                                arrive[l] = clk[l].saturating_add(rdv).saturating_add(wire);
                                rv[l] = if eager { clk[l] } else { arrive[l] };
                            }
                        }
                        if msg != NONE {
                            lanes_mut::<L, _>(lane_msg_arrive, msg as usize * L)
                                .copy_from_slice(&arrive);
                        }
                    }
                    Node::Recv { chan, msg, req } => {
                        let ri0 = rb + req as usize;
                        req_msg[ri0] = msg;
                        req_chan[ri0] = chan;
                        let rv = lanes_mut::<L, _>(lane_req_val, ri0 * L);
                        for l in 0..L {
                            clk[l] = clk[l].saturating_add(o_recv);
                            rv[l] = SimTime::MAX;
                        }
                        if msg != NONE {
                            lanes_mut::<L, _>(lane_msg_post_rs, msg as usize * L)
                                .copy_from_slice(&rs);
                            lanes_mut::<L, _>(lane_msg_post_clk, msg as usize * L)
                                .copy_from_slice(&clk);
                        }
                    }
                    Node::Wait { req } => {
                        let ri0 = rb + req as usize;
                        // resolved-vs-pending is structural (a send
                        // request, or a receive already waited), so
                        // lane 0 decides for the batch
                        if lane_req_val[ri0 * L] != SimTime::MAX {
                            let rv = lanes::<L, _>(lane_req_val, ri0 * L);
                            // unconditional blended stores, not masked
                            // stores: a masked store to `clk` defeats
                            // store-to-load forwarding and the very
                            // next node reloads `clk` from the stack
                            for l in 0..L {
                                clk[l] = clk[l].max(rv[l]);
                            }
                            continue;
                        }
                        let m = req_msg[ri0] as usize * L;
                        let copy = chan_copy[req_chan[ri0] as usize];
                        let ma = lanes::<L, _>(lane_msg_arrive, m);
                        let mp_rs = lanes::<L, _>(lane_msg_post_rs, m);
                        let mp_clk = lanes::<L, _>(lane_msg_post_clk, m);
                        let rv = lanes_mut::<L, _>(lane_req_val, ri0 * L);
                        // branchless per lane, all stores unconditional:
                        // conditional (masked) stores to `rs`/`clk` stall
                        // the reload in the next node
                        for l in 0..L {
                            let a = ma[l];
                            // unexpected iff the arrival popped before
                            // the receive's run began (per lane)
                            let unexpected = a < mp_rs[l];
                            let copied = mp_clk[l].saturating_add(copy);
                            let done = if unexpected { copied } else { a };
                            rs[l] = if unexpected { rs[l] } else { rs[l].max(a) };
                            rv[l] = done;
                            clk[l] = clk[l].max(done);
                        }
                        req_msg[ri0] = NONE;
                    }
                    Node::Coll { inst } => {
                        let i = inst as usize;
                        inst_arrived[i] += 1;
                        let il = i * L;
                        {
                            let latest = lanes_mut::<L, _>(lane_inst_latest, il);
                            for l in 0..L {
                                latest[l] = latest[l].max(clk[l]);
                            }
                        }
                        let spec = self.insts[i];
                        let members = &self.comms[spec.comm as usize];
                        if (inst_arrived[i] as usize) < members.len() {
                            continue; // suspend: this ends the run
                        }
                        let cb = spec.cost as usize * L;
                        clock[r * L..r * L + L].copy_from_slice(&clk);
                        let latest = lanes::<L, _>(lane_inst_latest, il);
                        let mut done = [SimTime::ZERO; L];
                        if FACTORED {
                            let t = pc.unwrap().coll[spec.cost as usize];
                            if id_coll {
                                for l in 0..L {
                                    done[l] = latest[l].saturating_add(t);
                                }
                            } else {
                                for l in 0..L {
                                    done[l] = latest[l].saturating_add(scale_ps(t, f_coll[l]));
                                }
                            }
                        } else {
                            let cost = lanes::<L, _>(lane_coll, cb);
                            for l in 0..L {
                                done[l] = latest[l].saturating_add(cost[l]);
                            }
                        }
                        for &mr in members {
                            let cl = lanes_mut::<L, _>(&mut clock, mr * L);
                            let st = lanes_mut::<L, _>(lane_run_start, mr * L);
                            for l in 0..L {
                                cl[l] = cl[l].max(done[l]);
                                st[l] = done[l];
                            }
                        }
                        clk.copy_from_slice(&clock[r * L..r * L + L]);
                        rs.copy_from_slice(&lane_run_start[r * L..r * L + L]);
                    }
                    Node::Mark { id } => {
                        if marks.is_empty() {
                            marks.resize(n * L, Vec::new());
                        }
                        for l in 0..L {
                            marks[r * L + l].push((id, clk[l]));
                        }
                    }
                }
            }
            si += len as usize;
            clock[r * L..r * L + L].copy_from_slice(&clk);
            lane_run_start[r * L..r * L + L].copy_from_slice(&rs);
            busy[r * L..r * L + L].copy_from_slice(&bz);
        }

        // de-interleave one SimResult per lane
        for l in 0..L {
            out.push(SimResult {
                finish: (0..n).map(|r| clock[r * L + l]).collect(),
                busy: (0..n).map(|r| busy[r * L + l]).collect(),
                bytes_sent: self.total_bytes,
                messages: self.total_msgs,
                marks: if marks.is_empty() {
                    vec![Vec::new(); n]
                } else {
                    (0..n).map(|r| std::mem::take(&mut marks[r * L + l])).collect()
                },
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{FnProgram, Mpi, Program};
    use crate::sim::TraceSim;
    use hpcsim_engine::SimTime;
    use hpcsim_machine::registry::{bluegene_p, xt4_qc};
    use hpcsim_machine::ExecMode;
    use hpcsim_net::DType;
    use hpcsim_topo::Mapping;

    /// Replay and DAG-evaluate the same traces on a contention-flat
    /// machine; every observable must agree exactly.
    fn check<P: Program>(prog: &P, machine: MachineSpec, ranks: usize, mode: ExecMode) {
        let cfg = SimConfig::new(machine.with_flat_contention(), ranks, mode);
        let traces = TraceSim::trace_program(prog, ranks, cfg.threads);
        let replay = TraceSim::new(cfg.clone()).replay_traces(&traces);
        let dag = TraceDag::compile_world(&traces).evaluate(&cfg);
        assert_eq!(replay.finish, dag.finish);
        assert_eq!(replay.busy, dag.busy);
        assert_eq!(replay.bytes_sent, dag.bytes_sent);
        assert_eq!(replay.messages, dag.messages);
        assert_eq!(replay.marks, dag.marks);
    }

    #[test]
    fn ping_pong_matches_replay() {
        let prog = FnProgram(|mpi: &mut Mpi| match mpi.rank() {
            0 => {
                mpi.send(1, 0, 8);
                mpi.recv(1, 1, 8);
            }
            _ => {
                mpi.recv(0, 0, 8);
                mpi.send(0, 1, 8);
            }
        });
        check(&prog, bluegene_p(), 2, ExecMode::Smp);
        check(&prog, xt4_qc(), 2, ExecMode::Smp);
    }

    #[test]
    fn same_tag_fifo_matches_replay() {
        check(
            &FnProgram(|mpi: &mut Mpi| {
                if mpi.rank() == 0 {
                    mpi.send(1, 9, 64);
                    mpi.send(1, 9, 64);
                } else {
                    mpi.recv(0, 9, 64);
                    mpi.recv(0, 9, 64);
                }
            }),
            bluegene_p(),
            2,
            ExecMode::Smp,
        );
    }

    #[test]
    fn unexpected_message_copy_matches_replay() {
        for delay_us in [0u64, 1, 100, 10_000] {
            check(
                &FnProgram(move |mpi: &mut Mpi| {
                    if mpi.rank() == 0 {
                        mpi.send(1, 0, 1024);
                    } else {
                        mpi.delay(SimTime::from_us(delay_us));
                        mpi.recv(0, 0, 1024);
                    }
                }),
                bluegene_p(),
                2,
                ExecMode::Smp,
            );
        }
    }

    #[test]
    fn rendezvous_matches_replay() {
        let big = bluegene_p().nic.eager_threshold * 100;
        check(
            &FnProgram(move |mpi: &mut Mpi| {
                if mpi.rank() == 0 {
                    mpi.send(1, 0, big);
                } else {
                    mpi.recv(0, 0, big);
                }
            }),
            bluegene_p(),
            2,
            ExecMode::Smp,
        );
    }

    #[test]
    fn ring_exchange_matches_replay_across_mappings() {
        let prog = FnProgram(|mpi: &mut Mpi| {
            let next = (mpi.rank() + 1) % mpi.size();
            let prev = (mpi.rank() + mpi.size() - 1) % mpi.size();
            mpi.sendrecv(next, 0, 65_536, prev, 0, 65_536);
            mpi.allreduce(crate::ops::CommId::WORLD, 8, DType::F64);
        });
        let machine = bluegene_p().with_flat_contention();
        let traces = TraceSim::trace_program(&prog, 64, 1);
        let dag = TraceDag::compile_world(&traces);
        for (_, mapping) in Mapping::fig2_set() {
            let layout = crate::layout::RankLayout::bluegene(&machine, 64, ExecMode::Vn, mapping);
            let cfg =
                SimConfig { machine: machine.clone(), mode: ExecMode::Vn, threads: 1, layout };
            let replay = TraceSim::new(cfg.clone()).replay_traces(&traces);
            let fast = dag.evaluate(&cfg);
            assert_eq!(replay.finish, fast.finish, "mapping {mapping:?}");
            assert_eq!(replay.busy, fast.busy);
        }
    }

    #[test]
    fn collective_straggler_matches_replay() {
        check(
            &FnProgram(|mpi: &mut Mpi| {
                if mpi.rank() == 3 {
                    mpi.delay(SimTime::from_us(500));
                }
                mpi.barrier(crate::ops::CommId::WORLD);
                mpi.mark(7);
                mpi.allreduce(crate::ops::CommId::WORLD, 32 * 1024, DType::F32);
            }),
            bluegene_p(),
            8,
            ExecMode::Vn,
        );
    }

    #[test]
    fn subcommunicator_matches_replay() {
        let machine = bluegene_p().with_flat_contention();
        let cfg = SimConfig::new(machine, 8, ExecMode::Vn);
        let mut sim = TraceSim::new(cfg.clone());
        let evens = sim.register_comm((0..8).step_by(2).collect());
        let prog = FnProgram(move |mpi: &mut Mpi| {
            if mpi.rank().is_multiple_of(2) {
                mpi.allreduce(evens, 1024, DType::F64);
            }
        });
        let traces = TraceSim::trace_program(&prog, 8, 1);
        let replay = sim.replay_traces(&traces);
        let world: Vec<usize> = (0..8).collect();
        let members: Vec<usize> = (0..8).step_by(2).collect();
        let dag = TraceDag::compile(&traces, &[world, members]).evaluate(&cfg);
        assert_eq!(replay.finish, dag.finish);
        assert_eq!(replay.busy, dag.busy);
    }

    #[test]
    fn unmatched_send_and_unwaited_recv_match_replay() {
        // rank 0 sends a message nobody receives; rank 1 posts a receive
        // it never waits on — both finish in either engine
        check(
            &FnProgram(|mpi: &mut Mpi| {
                if mpi.rank() == 0 {
                    let s = mpi.isend(1, 5, 256);
                    mpi.wait(s);
                } else {
                    let _never = mpi.irecv(0, 6, 256);
                    mpi.delay(SimTime::from_us(3));
                }
            }),
            bluegene_p(),
            2,
            ExecMode::Smp,
        );
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn deadlock_is_detected() {
        let prog = FnProgram(|mpi: &mut Mpi| {
            let peer = 1 - mpi.rank();
            mpi.recv(peer, 0, 8);
        });
        let cfg = SimConfig::new(bluegene_p().with_flat_contention(), 2, ExecMode::Smp);
        let traces = TraceSim::trace_program(&prog, 2, 1);
        let _ = TraceDag::compile_world(&traces).evaluate(&cfg);
    }

    #[test]
    fn stats_count_structure() {
        let prog = FnProgram(|mpi: &mut Mpi| {
            if mpi.rank() == 0 {
                mpi.send(1, 0, 64);
            } else {
                mpi.recv(0, 0, 64);
            }
            mpi.barrier(crate::ops::CommId::WORLD);
        });
        let traces = TraceSim::trace_program(&prog, 2, 1);
        let s = TraceDag::compile_world(&traces).stats();
        // rank 0: isend+wait+coll, rank 1: irecv+wait+coll
        assert_eq!(s.nodes, 6);
        assert_eq!(s.messages, 1);
        assert_eq!(s.channels, 1);
        assert_eq!(s.collectives, 1);
        assert_eq!(s.edges, 4 + 1 + 4); // program order + message + coll in/out
    }

    /// A ring exchange with a collective and marks — touches every
    /// cost group — compiled once for the perturbation tests.
    fn perturb_fixture() -> (TraceDag, SimConfig) {
        let prog = FnProgram(|mpi: &mut Mpi| {
            let next = (mpi.rank() + 1) % mpi.size();
            let prev = (mpi.rank() + mpi.size() - 1) % mpi.size();
            mpi.delay(SimTime::from_us(3));
            mpi.sendrecv(next, 0, 65_536, prev, 0, 65_536);
            mpi.mark(1);
            mpi.allreduce(crate::ops::CommId::WORLD, 8, DType::F64);
        });
        let machine = bluegene_p().with_flat_contention();
        let traces = TraceSim::trace_program(&prog, 64, 1);
        let dag = TraceDag::compile_world(&traces);
        let cfg = SimConfig::new(machine, 64, ExecMode::Vn);
        (dag, cfg)
    }

    #[test]
    fn identity_perturbation_is_bit_identical() {
        let (dag, cfg) = perturb_fixture();
        let base = dag.evaluate(&cfg);
        // every dispatch shape: scalar, padded narrow, full narrow,
        // wide + remainder
        for k in [1usize, 3, 8, 33, 40] {
            let res = dag.evaluate_perturbed(&cfg, &vec![Perturbation::IDENTITY; k]);
            assert_eq!(res.len(), k);
            for r in &res {
                assert_eq!(r.finish, base.finish, "batch of {k}");
                assert_eq!(r.busy, base.busy);
                assert_eq!(r.marks, base.marks);
            }
        }
    }

    #[test]
    fn perturbed_results_are_batch_invariant() {
        use hpcsim_machine::{PerturbSpec, PerturbationSampler};
        let (dag, cfg) = perturb_fixture();
        let sampler = PerturbationSampler::new(11, PerturbSpec::default());
        let mut samples: Vec<Perturbation> = (0..45).map(|i| sampler.sample(i)).collect();
        samples[7] = Perturbation::IDENTITY; // mix an identity lane in
        let batched = dag.evaluate_perturbed(&cfg, &samples);
        for (i, s) in samples.iter().enumerate() {
            let single = dag.evaluate_perturbed(&cfg, std::slice::from_ref(s));
            assert_eq!(batched[i].finish, single[0].finish, "sample {i}");
            assert_eq!(batched[i].busy, single[0].busy, "sample {i}");
        }
    }

    #[test]
    fn perturbations_move_costs_the_right_way() {
        let (dag, cfg) = perturb_fixture();
        let base = dag.evaluate(&cfg).makespan();
        let slower = [
            Perturbation { bw_scale: 0.5, ..Perturbation::IDENTITY },
            Perturbation { hop_scale: 2.0, ..Perturbation::IDENTITY },
            Perturbation { compute_scale: 2.0, ..Perturbation::IDENTITY },
            Perturbation { coll_scale: 2.0, ..Perturbation::IDENTITY },
        ];
        for (i, r) in dag.evaluate_perturbed(&cfg, &slower).iter().enumerate() {
            assert!(r.makespan() > base, "slowdown sample {i} must cost more");
        }
        let faster = Perturbation { bw_scale: 2.0, hop_scale: 0.5, ..Perturbation::IDENTITY };
        let r = &dag.evaluate_perturbed(&cfg, &[faster])[0];
        assert!(r.makespan() < base, "a faster network must cost less");
    }

    #[test]
    fn engine_selector_round_trips() {
        assert_eq!(SweepEngine::parse("replay"), Some(SweepEngine::Replay));
        assert_eq!(SweepEngine::parse("dag"), Some(SweepEngine::Dag));
        assert_eq!(SweepEngine::parse("fast"), None);
        assert_eq!(SweepEngine::Dag.label(), "dag");
        let before = sweep_engine();
        set_sweep_engine(SweepEngine::Dag);
        assert_eq!(sweep_engine(), SweepEngine::Dag);
        set_sweep_engine(before);
    }
}
