//! Replay results and derived metrics.

use hpcsim_engine::SimTime;
use serde::Serialize;

/// A diagnosed replay failure under fault injection. The replay engine
/// raises these instead of wedging its event queue: a stuck message is
/// named (rank, peer, tag, size) so the operator can see *which* traffic
/// the fault plan killed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimError {
    /// A message exhausted its retransmit budget.
    Stalled {
        /// Sending rank (the one that gives up).
        rank: usize,
        /// Destination rank.
        peer: usize,
        /// MPI tag.
        tag: u32,
        /// Payload size.
        bytes: u64,
        /// Consecutive lost attempts observed.
        lost: u32,
        /// Index of the originating send in the rank's program trace.
        op: usize,
    },
    /// Link outages cut every route between two ranks' nodes.
    Unreachable {
        /// Sending rank.
        rank: usize,
        /// Destination rank.
        peer: usize,
        /// MPI tag.
        tag: u32,
        /// Payload size.
        bytes: u64,
    },
    /// The event queue kept cycling without the clock advancing: the
    /// step-budget watchdog tripped. Unlike [`SimError::Stalled`] (a
    /// diagnosed protocol dead end) this names a scheduling livelock —
    /// the engine was still busy, just not going anywhere.
    Livelock {
        /// Rank whose event tripped the watchdog.
        rank: usize,
        /// Events processed since the clock last advanced.
        steps: u64,
    },
    /// The event queue drained with ranks still blocked: a structural
    /// deadlock (e.g. a receive nobody sends to, or mismatched
    /// collective participation).
    Deadlock {
        /// How many ranks never finished.
        unfinished: usize,
        /// Example stuck rank.
        rank: usize,
        /// That rank's program op index.
        op: usize,
    },
    /// Two members recorded different collectives at the same sequence
    /// slot on one communicator.
    CollectiveMismatch {
        /// Rank whose collective disagreed with an earlier member's.
        rank: usize,
        /// The communicator id.
        comm: u32,
        /// The disagreeing rank's program op index.
        op: usize,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Stalled { rank, peer, tag, bytes, lost, op } => write!(
                f,
                "rank {rank} stalled at op {op}: message to rank {peer} (tag {tag}, {bytes} \
                 bytes) lost {lost} times; retransmit budget exhausted"
            ),
            SimError::Unreachable { rank, peer, tag, bytes } => write!(
                f,
                "rank {rank}: no surviving route to rank {peer} (tag {tag}, {bytes} bytes); \
                 destination cut off by link outages"
            ),
            SimError::Livelock { rank, steps } => write!(
                f,
                "livelock: event queue cycled {steps} steps without clock progress \
                 (last event on rank {rank}); step-budget watchdog tripped"
            ),
            // keep the historical panic text: replay_traces panics with
            // exactly this Display, and callers match on "deadlock"
            SimError::Deadlock { unfinished, rank, op } => write!(
                f,
                "deadlock: {unfinished} ranks did not finish, e.g. rank {rank} at op {op}"
            ),
            SimError::CollectiveMismatch { rank, comm, op } => write!(
                f,
                "rank {rank}: collective mismatch on comm {comm} at op {op}"
            ),
        }
    }
}

impl std::error::Error for SimError {}

/// Outcome of one replay.
#[derive(Debug, Clone, Serialize)]
pub struct SimResult {
    /// Per-rank completion time.
    pub finish: Vec<SimTime>,
    /// Per-rank time spent in compute/delay (the rest is communication
    /// and waiting).
    pub busy: Vec<SimTime>,
    /// Total payload bytes sent over point-to-point messages.
    pub bytes_sent: u64,
    /// Total point-to-point message count.
    pub messages: u64,
    /// Per-rank `(label, time)` marks recorded by the program.
    pub marks: Vec<Vec<(u32, SimTime)>>,
}

impl SimResult {
    /// Wall-clock of the whole job: the last rank's finish time.
    pub fn makespan(&self) -> SimTime {
        self.finish.iter().copied().max().unwrap_or(SimTime::ZERO)
    }

    /// Mean fraction of the makespan ranks spent computing — the
    /// utilization the power model charges dynamic energy for.
    pub fn mean_utilization(&self) -> f64 {
        let span = self.makespan().as_secs();
        if span <= 0.0 || self.finish.is_empty() {
            return 0.0;
        }
        let total_busy: f64 = self.busy.iter().map(|t| t.as_secs()).sum();
        (total_busy / (span * self.finish.len() as f64)).clamp(0.0, 1.0)
    }

    /// Time of rank `rank`'s mark with label `id` (first occurrence).
    pub fn mark(&self, rank: usize, id: u32) -> Option<SimTime> {
        self.marks.get(rank)?.iter().find(|(l, _)| *l == id).map(|&(_, t)| t)
    }

    /// Duration between two marks on one rank.
    pub fn mark_span(&self, rank: usize, from: u32, to: u32) -> Option<SimTime> {
        let a = self.mark(rank, from)?;
        let b = self.mark(rank, to)?;
        Some(b.saturating_sub(a))
    }

    /// Spread between the earliest and latest rank finish — a load
    /// imbalance indicator.
    pub fn finish_skew(&self) -> SimTime {
        let max = self.finish.iter().copied().max().unwrap_or(SimTime::ZERO);
        let min = self.finish.iter().copied().min().unwrap_or(SimTime::ZERO);
        max.saturating_sub(min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result() -> SimResult {
        SimResult {
            finish: vec![SimTime::from_us(10), SimTime::from_us(20)],
            busy: vec![SimTime::from_us(5), SimTime::from_us(10)],
            bytes_sent: 100,
            messages: 2,
            marks: vec![
                vec![(1, SimTime::from_us(2)), (2, SimTime::from_us(8))],
                vec![],
            ],
        }
    }

    #[test]
    fn makespan_is_max_finish() {
        assert_eq!(result().makespan(), SimTime::from_us(20));
    }

    #[test]
    fn utilization_is_busy_over_span() {
        // (5 + 10) / (20 * 2) = 0.375
        assert!((result().mean_utilization() - 0.375).abs() < 1e-12);
    }

    #[test]
    fn empty_result_is_safe() {
        let r = SimResult { finish: vec![], busy: vec![], bytes_sent: 0, messages: 0, marks: vec![] };
        assert_eq!(r.makespan(), SimTime::ZERO);
        assert_eq!(r.mean_utilization(), 0.0);
        assert_eq!(r.finish_skew(), SimTime::ZERO);
    }

    #[test]
    fn marks_and_spans() {
        let r = result();
        assert_eq!(r.mark(0, 2), Some(SimTime::from_us(8)));
        assert_eq!(r.mark(1, 1), None);
        assert_eq!(r.mark_span(0, 1, 2), Some(SimTime::from_us(6)));
    }

    #[test]
    fn skew() {
        assert_eq!(result().finish_skew(), SimTime::from_us(10));
    }
}
