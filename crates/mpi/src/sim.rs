//! Event-driven trace replay.
//!
//! Every rank's trace is replayed against the machine, layout and network
//! models. Ranks advance greedily until they block (on an unmatched
//! receive or a collective); message arrivals and collective completions
//! are events that unblock them. The event queue's deterministic FIFO
//! tie-break makes whole runs bit-reproducible.
//!
//! Protocol semantics implemented here (and the observable effects they
//! produce):
//!
//! * **eager** sends (≤ threshold) complete locally at injection; if the
//!   message lands before its receive is posted, matching pays an
//!   unexpected-message copy — so receive-first code beats send-first
//!   code for mid-sized halos (Fig 2a/b).
//! * **rendezvous** sends add a handshake round trip and complete only
//!   when the payload has drained — so `MPI_Sendrecv`'s serialization of
//!   exchange directions costs real time at large sizes.
//! * **collectives** complete `model_duration` after the *last* member
//!   arrives; early arrivals wait — load imbalance becomes collective
//!   time, exactly the effect the paper dissects with POP's timing
//!   barrier (Fig 4b).

use crate::layout::RankLayout;
use crate::ops::{Op, Req};
use crate::program::{Mpi, Program};
use crate::result::{SimError, SimResult};
use hpcsim_engine::{EventQueue, SimTime};
use hpcsim_faults::{FaultPlan, LinkFaults, LossModel, NoiseModel};
use hpcsim_machine::{ExecMode, MachineSpec, NodeModel};
use hpcsim_net::{
    CollectiveModel, CollectiveOp, FlowHandle, FlowTracker, P2pModel, RetransmitPolicy,
};
use hpcsim_obs as obs;
use hpcsim_probe::{GaugeId, NoopTracer, SpanEvent, SpanKind, Tracer};
use std::sync::LazyLock;

use crate::ops::CommId;

/// Obs counters for the replay engine and its fault diagnoses. All
/// volatile: replays only happen for points the DAG engine and the
/// scenario cache did not absorb.
struct ObsMetrics {
    replay_runs: &'static obs::Counter,
    fault_retransmits: &'static obs::Counter,
    fault_detour_legs: &'static obs::Counter,
    fault_stalls: &'static obs::Counter,
}

fn metrics() -> &'static ObsMetrics {
    use obs::Class::Volatile;
    static M: LazyLock<ObsMetrics> = LazyLock::new(|| ObsMetrics {
        replay_runs: obs::counter(
            "hpcsim_replay_runs_total",
            "Event-queue trace replays executed",
            Volatile,
        ),
        fault_retransmits: obs::counter(
            "hpcsim_fault_retransmits_total",
            "Lost messages re-sent under a fault plan",
            Volatile,
        ),
        fault_detour_legs: obs::counter(
            "hpcsim_fault_detour_legs_total",
            "Messages routed around dead links via a dog-leg detour",
            Volatile,
        ),
        fault_stalls: obs::counter(
            "hpcsim_fault_stalls_total",
            "Replays stopped by a fault-induced stall or unreachable peer",
            Volatile,
        ),
    });
    &M
}

/// Simulation configuration: machine + mode + layout.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// The machine to simulate.
    pub machine: MachineSpec,
    /// Execution mode (drives resource sharing and layout density).
    pub mode: ExecMode,
    /// Default OpenMP threads per task for `compute` blocks.
    pub threads: u32,
    /// Rank placement.
    pub layout: RankLayout,
}

impl SimConfig {
    /// Default configuration: `ranks` tasks on `machine` in `mode`, with
    /// the family's default mapping and compact placement.
    pub fn new(machine: MachineSpec, ranks: usize, mode: ExecMode) -> Self {
        let layout = RankLayout::default_for(&machine, ranks, mode);
        SimConfig { machine, mode, threads: 1, layout }
    }

    /// Number of ranks.
    pub fn ranks(&self) -> usize {
        self.layout.ranks()
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Blocked {
    None,
    OnReq(Req),
    OnCollective,
}

/// An in-flight message. `FlowHandle` is a fixed-size `Copy` value, so
/// the network registration rides inline instead of through a side
/// ledger. Slots are recycled through a free-list once the message has
/// been matched, so the ledger's footprint is bounded by the number of
/// messages simultaneously in flight, not the total sent.
#[derive(Debug)]
struct Msg {
    src: usize,
    dst: usize,
    tag: u32,
    bytes: u64,
    flow: Option<FlowHandle>,
    /// Second route leg when fault detours dog-leg around an outage
    /// (`None` on the pristine path and for direct detours).
    flow2: Option<FlowHandle>,
}

/// Active fault injection, derived from a [`FaultPlan`] at
/// [`TraceSim::set_faults`] time. All draws at replay time are stateless
/// hashes, so the schedule is identical at any `--jobs` count.
#[derive(Debug, Clone)]
struct FaultContext {
    link_faults: Option<LinkFaults>,
    noise: Option<NoiseModel>,
    loss: Option<LossModel>,
    retransmit: RetransmitPolicy,
}

#[derive(Debug, Clone, Copy)]
enum Ev {
    Resume(usize),
    Arrive { msg: usize },
}

#[derive(Debug, Default)]
struct CollInstance {
    arrived: usize,
    latest: SimTime,
    op: Option<CollectiveOp>,
    done: Option<SimTime>,
}

/// Per-rank message-matching table: one flat append-only vec of
/// `(key, slot)` pairs scanned from a moving head. A pop takes the
/// first live entry with the key (FIFO per key, since pushes append in
/// order) and leaves a tombstone; the head skips leading tombstones so
/// a fully-drained table stays O(1). In-flight counts per rank are
/// small (a few neighbours × a few tags), so the scan is short — and
/// unlike a per-key queue-map there is exactly one allocation per rank,
/// not one per (src, tag) pair.
#[derive(Debug)]
struct MatchQueues<T> {
    slots: Vec<(u64, Option<T>)>,
    head: usize,
    live: usize,
}

impl<T> Default for MatchQueues<T> {
    fn default() -> Self {
        MatchQueues { slots: Vec::new(), head: 0, live: 0 }
    }
}

impl<T> MatchQueues<T> {
    fn key(src: usize, tag: u32) -> u64 {
        ((src as u64) << 32) | tag as u64
    }

    /// Pop the FIFO-oldest live entry for (src, tag), if any.
    fn pop(&mut self, src: usize, tag: u32) -> Option<T> {
        let key = Self::key(src, tag);
        while self.head < self.slots.len() && self.slots[self.head].1.is_none() {
            self.head += 1;
        }
        if self.head == self.slots.len() {
            self.slots.clear();
            self.head = 0;
            return None;
        }
        for (k, slot) in &mut self.slots[self.head..] {
            if *k == key && slot.is_some() {
                self.live -= 1;
                return slot.take();
            }
        }
        None
    }

    /// Append an entry for (src, tag).
    fn push(&mut self, src: usize, tag: u32, item: T) {
        self.live += 1;
        self.slots.push((Self::key(src, tag), Some(item)));
    }

    /// Number of live (non-tombstone) entries — the table's occupancy.
    fn live(&self) -> usize {
        self.live
    }
}

/// The replay engine. Construct, optionally register sub-communicators,
/// then [`TraceSim::run`] a program.
pub struct TraceSim {
    cfg: SimConfig,
    node_model: NodeModel,
    p2p: P2pModel,
    tracker: FlowTracker,
    comms: Vec<Vec<usize>>,
    coll_models: Vec<CollectiveModel>,
    faults: Option<FaultContext>,
    step_budget: Option<u64>,
}

impl TraceSim {
    /// Build an engine for `cfg`. `CommId::WORLD` is pre-registered.
    pub fn new(cfg: SimConfig) -> Self {
        let node_model = NodeModel::new(cfg.machine.clone());
        let p2p = P2pModel::new(&cfg.machine, cfg.layout.torus).with_ambient(cfg.layout.ambient_flows);
        let tracker = FlowTracker::new(&cfg.layout.torus);
        let world: Vec<usize> = (0..cfg.ranks()).collect();
        let world_model = CollectiveModel::with_hop_scale(
            &cfg.machine,
            world.len(),
            cfg.layout.tasks_per_node,
            cfg.layout.hop_scale,
        );
        TraceSim {
            cfg,
            node_model,
            p2p,
            tracker,
            comms: vec![world],
            coll_models: vec![world_model],
            faults: None,
            step_budget: None,
        }
    }

    /// Override the livelock watchdog's step budget: the maximum number
    /// of events the replay may process without the clock advancing
    /// before it gives up with [`SimError::Livelock`]. The default
    /// budget is derived from the trace's own event bound (one initial
    /// resume per rank, two events per send, one per collective entry),
    /// which a well-formed replay cannot exceed even if every event
    /// lands at the same timestamp — so the watchdog never misfires on
    /// legitimate programs. Fuzzing sets a tighter budget to bound
    /// adversarial scenarios in wall-clock time.
    pub fn set_step_budget(&mut self, budget: Option<u64>) {
        self.step_budget = budget;
    }

    /// Arm fault injection from a seeded plan. Link faults are drawn for
    /// this engine's torus; the noise amplitude follows the machine's
    /// BG/P-vs-XT4 asymmetry; retransmits use the default policy. With
    /// no call (or after [`TraceSim::clear_faults`]) the replay path is
    /// byte-identical to the pristine engine.
    pub fn set_faults(&mut self, plan: &FaultPlan) {
        let links = self.cfg.layout.torus.links();
        self.faults = Some(FaultContext {
            link_faults: plan.link_faults(links),
            noise: plan.noise(self.cfg.machine.id.is_bluegene()),
            loss: plan.loss(),
            retransmit: RetransmitPolicy::default(),
        });
    }

    /// Disarm fault injection.
    pub fn clear_faults(&mut self) {
        self.faults = None;
    }

    /// Register a sub-communicator; returns its id. Members are world
    /// ranks and must be distinct.
    pub fn register_comm(&mut self, members: Vec<usize>) -> CommId {
        assert!(!members.is_empty());
        debug_assert!(members.iter().all(|&r| r < self.cfg.ranks()));
        let model = CollectiveModel::with_hop_scale(
            &self.cfg.machine,
            members.len(),
            self.cfg.layout.tasks_per_node,
            self.cfg.layout.hop_scale,
        );
        self.comms.push(members);
        self.coll_models.push(model);
        CommId((self.comms.len() - 1) as u32)
    }

    /// The simulation configuration.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Generate rank traces for `prog` without replaying them. A trace
    /// depends only on (program, ranks, threads) — not on the machine,
    /// mode, or layout — so one trace set can be replayed across many
    /// configurations (see [`TraceSim::replay_traces`]).
    pub fn trace_program<P: Program + ?Sized>(prog: &P, ranks: usize, threads: u32) -> Vec<Vec<Op>> {
        (0..ranks)
            .map(|r| {
                let mut mpi = Mpi::new(r, ranks, threads);
                prog.run(&mut mpi);
                mpi.into_ops()
            })
            .collect()
    }

    /// Generate all rank traces for `prog` and replay them.
    pub fn run<P: Program + ?Sized>(&mut self, prog: &P) -> SimResult {
        let traces = Self::trace_program(prog, self.cfg.ranks(), self.cfg.threads);
        self.replay_traces(&traces)
    }

    /// Generate all rank traces for `prog` and replay them with `tracer`
    /// observing (see [`TraceSim::replay_traces_probe`]).
    pub fn run_probe<P: Program + ?Sized, T: Tracer>(
        &mut self,
        prog: &P,
        tracer: &mut T,
    ) -> SimResult {
        let traces = Self::trace_program(prog, self.cfg.ranks(), self.cfg.threads);
        self.replay_traces_probe(&traces, tracer)
    }

    /// Replay pre-built traces (one per rank), consuming them.
    pub fn replay(&mut self, traces: Vec<Vec<Op>>) -> SimResult {
        self.replay_traces(&traces)
    }

    /// Replay borrowed traces (one per rank). Borrowing lets a parameter
    /// sweep (e.g. Fig 2's mapping comparison) build the trace set once
    /// and replay it under every configuration.
    pub fn replay_traces(&mut self, traces: &[Vec<Op>]) -> SimResult {
        self.replay_traces_probe(traces, &mut NoopTracer)
    }

    /// Fallible replay: a fault-injected stall, cut-off destination,
    /// structural deadlock, collective mismatch, or watchdog-detected
    /// livelock comes back as a diagnosed [`SimError`] instead of a
    /// panic.
    pub fn try_replay_traces(&mut self, traces: &[Vec<Op>]) -> Result<SimResult, SimError> {
        self.try_replay_traces_probe(traces, &mut NoopTracer)
    }

    /// Generate all rank traces for `prog` and replay them fallibly.
    pub fn try_run<P: Program + ?Sized>(&mut self, prog: &P) -> Result<SimResult, SimError> {
        let traces = Self::trace_program(prog, self.cfg.ranks(), self.cfg.threads);
        self.try_replay_traces(&traces)
    }

    /// Replay borrowed traces with an observability sink. Every hook is
    /// guarded by `if T::ENABLED`, so the [`NoopTracer`] instantiation
    /// (what [`TraceSim::replay_traces`] monomorphizes to) compiles to
    /// the uninstrumented replay loop.
    ///
    /// Span semantics (the per-rank *cpu* spans — Compute, Delay,
    /// Send/RecvOverhead, Wait, CollectiveWait — tile `[0, finish]`
    /// exactly; net spans may overlap):
    ///
    /// * `MsgWire` is attributed to the *sender's* net track and carries
    ///   the contention-free wire time in `aux`, so `dur - aux` is pure
    ///   contention stretch;
    /// * `Rendezvous` covers the handshake round trip before the payload
    ///   drains;
    /// * `UnexpectedCopy` sits on the receiver's net track at the late
    ///   `Irecv` (the copy cost surfaces on the cpu track as `Wait`).
    pub fn replay_traces_probe<T: Tracer>(
        &mut self,
        traces: &[Vec<Op>],
        tracer: &mut T,
    ) -> SimResult {
        match self.try_replay_traces_probe(traces, tracer) {
            Ok(res) => res,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible variant of [`TraceSim::replay_traces_probe`]: under fault
    /// injection a message that exhausts its retransmit budget (or whose
    /// destination is cut off by link outages) stops the replay with a
    /// [`SimError`] naming the stuck rank and message, instead of
    /// spinning or wedging the event queue.
    pub fn try_replay_traces_probe<T: Tracer>(
        &mut self,
        traces: &[Vec<Op>],
        tracer: &mut T,
    ) -> Result<SimResult, SimError> {
        let torus = *self.p2p.torus();
        let n = traces.len();
        assert_eq!(n, self.cfg.ranks(), "one trace per rank required");
        let eager_threshold = self.cfg.machine.nic.eager_threshold;
        let o_send = self.cfg.machine.nic.o_send;
        let o_recv = self.cfg.machine.nic.o_recv;
        // unexpected-message copy rate: payload memcpy through memory
        let copy_bw = self.cfg.machine.mem.bw_bytes / 4.0;

        // Fault-injection hooks. All `None` on the pristine path, where
        // every guarded branch below folds away to the legacy replay.
        let link_faults = self.faults.as_ref().and_then(|f| f.link_faults.as_ref());
        let fault_noise = self.faults.as_ref().and_then(|f| f.noise);
        let fault_loss = self.faults.as_ref().and_then(|f| f.loss);
        let retransmit = self.faults.as_ref().map_or_else(RetransmitPolicy::default, |f| f.retransmit);
        let mut compute_step = vec![0u64; if fault_noise.is_some() { n } else { 0 }];
        let mut send_seq = vec![0u64; if fault_loss.is_some() { n } else { 0 }];
        let mut total_retransmits = 0u64;
        let mut total_detour_legs = 0u64;
        let mut stalled: Option<SimError> = None;

        let mut clock = vec![SimTime::ZERO; n];
        let mut pc = vec![0usize; n];
        let mut blocked = vec![Blocked::None; n];
        let mut finished = vec![false; n];
        let mut busy = vec![SimTime::ZERO; n];
        let mut finish = vec![SimTime::ZERO; n];
        let mut marks: Vec<Vec<(u32, SimTime)>> = vec![Vec::new(); n];
        let mut req_done: Vec<Vec<Option<SimTime>>> = vec![Vec::new(); n];
        // per-destination-rank matching tables (dst is the index, not a key)
        let mut arrived: Vec<MatchQueues<usize>> = (0..n).map(|_| MatchQueues::default()).collect();
        let mut posted: Vec<MatchQueues<(usize, Req)>> =
            (0..n).map(|_| MatchQueues::default()).collect();
        let mut msgs: Vec<Msg> = Vec::new();
        let mut msg_free: Vec<usize> = Vec::new();
        // per-rank (comm, next seq) counters; a rank touches few comms
        let mut coll_seq: Vec<Vec<(u32, u64)>> = vec![Vec::new(); n];
        // collective instances indexed [comm][seq] — seqs are dense per comm
        let mut coll_state: Vec<Vec<CollInstance>> =
            (0..self.comms.len()).map(|_| Vec::new()).collect();
        let mut coll_current: Vec<Option<(u32, u64)>> = vec![None; n];
        let mut total_bytes = 0u64;
        let mut total_msgs = 0u64;

        // One initial resume per rank, one arrival per isend, one
        // completion resume per collective entry, plus match-time resumes
        // bounded by the send count.
        let sends: usize = traces
            .iter()
            .map(|t| t.iter().filter(|op| matches!(op, Op::Isend { .. })).count())
            .sum();
        let colls: usize = traces
            .iter()
            .map(|t| t.iter().filter(|op| matches!(op, Op::Collective { .. })).count())
            .sum();
        let mut events: EventQueue<Ev> = EventQueue::with_capacity(n + 2 * sends + colls);
        for r in 0..n {
            events.push(SimTime::ZERO, Ev::Resume(r));
        }

        // Livelock watchdog: a well-formed replay processes at most
        // n + 2*sends + colls events in total, so that many events at a
        // single timestamp is already impossible — exceeding it means
        // the queue is cycling without clock progress.
        let step_budget =
            self.step_budget.unwrap_or((n + 2 * sends + colls) as u64 + 1024);
        let mut last_progress = SimTime::ZERO;
        let mut stuck_steps = 0u64;

        fn ensure_req(v: &mut Vec<Option<SimTime>>, r: Req) {
            if v.len() <= r.0 as usize {
                v.resize(r.0 as usize + 1, None);
            }
        }

        while let Some(ev) = events.pop() {
            let now = ev.time;
            if now > last_progress {
                last_progress = now;
                stuck_steps = 0;
            } else {
                stuck_steps += 1;
                if stuck_steps > step_budget {
                    let rank = match ev.payload {
                        Ev::Resume(r) => r,
                        Ev::Arrive { msg } => msgs[msg].dst,
                    };
                    stalled = Some(SimError::Livelock { rank, steps: stuck_steps });
                    break;
                }
            }
            match ev.payload {
                Ev::Arrive { msg } => {
                    let (dst, src, tag, flow, flow2) = {
                        let m = &mut msgs[msg];
                        (m.dst, m.src, m.tag, m.flow.take(), m.flow2.take())
                    };
                    for h in flow.into_iter().chain(flow2) {
                        if T::ENABLED {
                            for l in h.segs().links(&torus) {
                                tracer.link_delta(l.0 as u32, now, -1);
                            }
                        }
                        self.tracker.release(h);
                    }
                    match posted[dst].pop(src, tag) {
                        Some((rank, req)) => {
                            // matched on arrival: the slot is dead
                            msg_free.push(msg);
                            ensure_req(&mut req_done[rank], req);
                            req_done[rank][req.0 as usize] = Some(now);
                            if blocked[rank] == Blocked::OnReq(req) {
                                blocked[rank] = Blocked::None;
                                events.push(now, Ev::Resume(rank));
                            }
                        }
                        None => {
                            arrived[dst].push(src, tag, msg);
                            if T::ENABLED {
                                tracer.gauge(
                                    GaugeId::ArrivedMatchDepth,
                                    arrived[dst].live() as u64,
                                );
                            }
                        }
                    }
                }
                Ev::Resume(r) => {
                    if finished[r] {
                        continue;
                    }
                    if clock[r] < now {
                        if T::ENABLED {
                            // the gap between blocking and this resume is
                            // time the rank spent blocked
                            let kind = if blocked[r] == Blocked::OnCollective {
                                SpanKind::CollectiveWait
                            } else {
                                SpanKind::Wait
                            };
                            tracer.span(SpanEvent::new(r as u32, kind, clock[r], now));
                        }
                        clock[r] = now;
                    }
                    'advance: loop {
                        if pc[r] >= traces[r].len() {
                            finished[r] = true;
                            finish[r] = clock[r];
                            break 'advance;
                        }
                        let op = traces[r][pc[r]];
                        match op {
                            Op::Compute { work, threads } => {
                                let mut t = self.node_model.time(&work, self.cfg.mode, threads);
                                if let Some(nm) = fault_noise {
                                    // OS-noise jitter: a stateless draw per
                                    // (rank, compute step), so the schedule
                                    // is identical at any worker count
                                    let step = compute_step[r];
                                    compute_step[r] = step + 1;
                                    t = t.scale(nm.factor(r, step));
                                }
                                if T::ENABLED && t > SimTime::ZERO {
                                    tracer.span(SpanEvent::new(
                                        r as u32,
                                        SpanKind::Compute,
                                        clock[r],
                                        clock[r] + t,
                                    ));
                                }
                                clock[r] += t;
                                busy[r] += t;
                                pc[r] += 1;
                            }
                            Op::Delay { time } => {
                                if T::ENABLED && time > SimTime::ZERO {
                                    tracer.span(SpanEvent::new(
                                        r as u32,
                                        SpanKind::Delay,
                                        clock[r],
                                        clock[r] + time,
                                    ));
                                }
                                clock[r] += time;
                                busy[r] += time;
                                pc[r] += 1;
                            }
                            Op::Isend { dst, tag, bytes, req } => {
                                if T::ENABLED && o_send > SimTime::ZERO {
                                    tracer.span(SpanEvent::new(
                                        r as u32,
                                        SpanKind::SendOverhead,
                                        clock[r],
                                        clock[r] + o_send,
                                    ));
                                }
                                clock[r] += o_send;
                                let mut inject = clock[r];
                                if let Some(lm) = fault_loss {
                                    let seq = send_seq[r];
                                    send_seq[r] = seq + 1;
                                    let lost = lm.lost_attempts(r, seq);
                                    if lost > 0 {
                                        match retransmit.penalty(lost) {
                                            Some(pen) => {
                                                total_retransmits += lost as u64;
                                                if T::ENABLED && pen > SimTime::ZERO {
                                                    tracer.span(
                                                        SpanEvent::new(
                                                            r as u32,
                                                            SpanKind::Retransmit,
                                                            inject,
                                                            inject + pen,
                                                        )
                                                        .with_msg(dst as u32, tag, bytes),
                                                    );
                                                }
                                                // the NIC re-sends in the
                                                // background: injection slips,
                                                // the cpu track does not
                                                inject += pen;
                                            }
                                            None => {
                                                stalled = Some(SimError::Stalled {
                                                    rank: r,
                                                    peer: dst,
                                                    tag,
                                                    bytes,
                                                    lost,
                                                    op: pc[r],
                                                });
                                                break 'advance;
                                            }
                                        }
                                    }
                                }
                                let src_node = self.cfg.layout.node_of_rank[r];
                                let dst_node = self.cfg.layout.node_of_rank[dst];
                                let (wire, handle, handle2) = match link_faults {
                                    None => {
                                        let (w, h) = self.p2p.wire_time_contended(
                                            &mut self.tracker,
                                            src_node,
                                            dst_node,
                                            bytes,
                                        );
                                        (w, h, None)
                                    }
                                    Some(lf) => match self.p2p.wire_time_contended_avoiding(
                                        &mut self.tracker,
                                        lf,
                                        src_node,
                                        dst_node,
                                        bytes,
                                    ) {
                                        Some(v) => {
                                            if v.2.is_some() {
                                                total_detour_legs += 1;
                                            }
                                            v
                                        }
                                        None => {
                                            stalled = Some(SimError::Unreachable {
                                                rank: r,
                                                peer: dst,
                                                tag,
                                                bytes,
                                            });
                                            break 'advance;
                                        }
                                    },
                                };
                                let eager = bytes <= eager_threshold;
                                let rdv_extra = if eager {
                                    SimTime::ZERO
                                } else {
                                    let mut hs = self.p2p.handshake_time(handle.as_ref());
                                    if let Some(h2) = handle2.as_ref() {
                                        // dog-leg detours pay the handshake
                                        // across both legs
                                        hs += self.p2p.handshake_time(Some(h2));
                                    }
                                    hs + o_send + o_recv
                                };
                                let arrive_t = inject + rdv_extra + wire;
                                if T::ENABLED {
                                    for h in handle.iter().chain(handle2.iter()) {
                                        for l in h.segs().links(&torus) {
                                            tracer.link_delta(l.0 as u32, inject, 1);
                                        }
                                    }
                                    if !eager {
                                        tracer.span(
                                            SpanEvent::new(
                                                r as u32,
                                                SpanKind::Rendezvous,
                                                inject,
                                                inject + rdv_extra,
                                            )
                                            .with_msg(dst as u32, tag, bytes),
                                        );
                                    }
                                    let base = self.p2p.wire_time(src_node, dst_node, bytes);
                                    tracer.span(
                                        SpanEvent::new(
                                            r as u32,
                                            SpanKind::MsgWire,
                                            inject + rdv_extra,
                                            arrive_t,
                                        )
                                        .with_msg(dst as u32, tag, bytes)
                                        .with_aux(base),
                                    );
                                }
                                let m = Msg { src: r, dst, tag, bytes, flow: handle, flow2: handle2 };
                                let midx = match msg_free.pop() {
                                    Some(slot) => {
                                        msgs[slot] = m;
                                        slot
                                    }
                                    None => {
                                        msgs.push(m);
                                        msgs.len() - 1
                                    }
                                };
                                events.push(arrive_t, Ev::Arrive { msg: midx });
                                ensure_req(&mut req_done[r], req);
                                req_done[r][req.0 as usize] =
                                    Some(if eager { inject } else { arrive_t });
                                total_bytes += bytes;
                                total_msgs += 1;
                                pc[r] += 1;
                            }
                            Op::Irecv { src, tag, bytes, req } => {
                                if T::ENABLED && o_recv > SimTime::ZERO {
                                    tracer.span(SpanEvent::new(
                                        r as u32,
                                        SpanKind::RecvOverhead,
                                        clock[r],
                                        clock[r] + o_recv,
                                    ));
                                }
                                clock[r] += o_recv;
                                ensure_req(&mut req_done[r], req);
                                match arrived[r].pop(src, tag) {
                                    Some(midx) => {
                                        // unexpected message: pay the copy,
                                        // priced by what actually arrived
                                        // (a mismatched receive size does
                                        // not change what was sent)
                                        let _ = bytes;
                                        let copy = SimTime::from_secs(
                                            msgs[midx].bytes as f64 / copy_bw,
                                        );
                                        if T::ENABLED {
                                            // always recorded, even zero-length:
                                            // the recorder's unexpected-message
                                            // counter rides on this span
                                            tracer.span(
                                                SpanEvent::new(
                                                    r as u32,
                                                    SpanKind::UnexpectedCopy,
                                                    clock[r],
                                                    clock[r] + copy,
                                                )
                                                .with_msg(src as u32, tag, bytes),
                                            );
                                        }
                                        msg_free.push(midx);
                                        req_done[r][req.0 as usize] = Some(clock[r] + copy);
                                    }
                                    None => {
                                        posted[r].push(src, tag, (r, req));
                                        if T::ENABLED {
                                            tracer.gauge(
                                                GaugeId::PostedMatchDepth,
                                                posted[r].live() as u64,
                                            );
                                        }
                                    }
                                }
                                pc[r] += 1;
                            }
                            Op::Wait { req } => {
                                ensure_req(&mut req_done[r], req);
                                match req_done[r][req.0 as usize] {
                                    Some(done) => {
                                        if done > clock[r] {
                                            if T::ENABLED {
                                                tracer.span(SpanEvent::new(
                                                    r as u32,
                                                    SpanKind::Wait,
                                                    clock[r],
                                                    done,
                                                ));
                                            }
                                            clock[r] = done;
                                        }
                                        pc[r] += 1;
                                    }
                                    None => {
                                        blocked[r] = Blocked::OnReq(req);
                                        break 'advance;
                                    }
                                }
                            }
                            Op::Collective { comm, op } => {
                                let cid = comm.0;
                                if let Some((kc, ks)) = coll_current[r] {
                                    // re-execution after completion
                                    let inst = &coll_state[kc as usize][ks as usize];
                                    let done = inst.done.expect("resumed before completion");
                                    coll_current[r] = None;
                                    blocked[r] = Blocked::None;
                                    if done > clock[r] {
                                        if T::ENABLED {
                                            tracer.span(SpanEvent::new(
                                                r as u32,
                                                SpanKind::CollectiveWait,
                                                clock[r],
                                                done,
                                            ));
                                        }
                                        clock[r] = done;
                                    }
                                    pc[r] += 1;
                                } else {
                                    let counters = &mut coll_seq[r];
                                    let pos = match counters.iter().position(|(c, _)| *c == cid) {
                                        Some(p) => p,
                                        None => {
                                            counters.push((cid, 0));
                                            counters.len() - 1
                                        }
                                    };
                                    let my_seq = counters[pos].1;
                                    counters[pos].1 += 1;
                                    let key = (cid, my_seq);
                                    let members = self.comms[cid as usize].len();
                                    let instances = &mut coll_state[cid as usize];
                                    if instances.len() <= my_seq as usize {
                                        instances
                                            .resize_with(my_seq as usize + 1, CollInstance::default);
                                    }
                                    let inst = &mut instances[my_seq as usize];
                                    if let Some(prev) = inst.op {
                                        if prev != op {
                                            stalled = Some(SimError::CollectiveMismatch {
                                                rank: r,
                                                comm: cid,
                                                op: pc[r],
                                            });
                                            break 'advance;
                                        }
                                    } else {
                                        inst.op = Some(op);
                                    }
                                    inst.arrived += 1;
                                    if clock[r] > inst.latest {
                                        inst.latest = clock[r];
                                    }
                                    coll_current[r] = Some(key);
                                    if inst.arrived == members {
                                        let dur = self.coll_models[cid as usize].time(op);
                                        let done = inst.latest + dur;
                                        inst.done = Some(done);
                                        for &m in &self.comms[cid as usize] {
                                            events.push(done, Ev::Resume(m));
                                        }
                                    }
                                    blocked[r] = Blocked::OnCollective;
                                    break 'advance;
                                }
                            }
                            Op::Mark { id } => {
                                marks[r].push((id, clock[r]));
                                pc[r] += 1;
                            }
                        }
                    }
                }
            }
            if stalled.is_some() {
                break;
            }
        }

        if T::ENABLED {
            tracer.gauge(GaugeId::EventQueueDepth, events.high_water() as u64);
            if let Some(lf) = link_faults {
                tracer.gauge(GaugeId::LinkOutages, lf.n_dead() as u64);
            }
            if total_retransmits > 0 {
                tracer.gauge(GaugeId::Retransmits, total_retransmits);
            }
            let underflows = self.tracker.underflows();
            if underflows > 0 {
                tracer.gauge(GaugeId::FlowUnderflows, underflows);
            }
        }

        // one obs flush per replay — the per-message hot path above
        // never touches the registry
        let m = metrics();
        m.replay_runs.inc();
        m.fault_retransmits.add(total_retransmits);
        m.fault_detour_legs.add(total_detour_legs);
        if matches!(stalled, Some(SimError::Stalled { .. } | SimError::Unreachable { .. })) {
            m.fault_stalls.inc();
        }

        if let Some(e) = stalled {
            return Err(e);
        }

        let unfinished: Vec<usize> = (0..n).filter(|&r| !finished[r]).collect();
        if !unfinished.is_empty() {
            return Err(SimError::Deadlock {
                unfinished: unfinished.len(),
                rank: unfinished[0],
                op: pc[unfinished[0]],
            });
        }

        Ok(SimResult { finish, busy, bytes_sent: total_bytes, messages: total_msgs, marks })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::FnProgram;
    use hpcsim_machine::registry::{bluegene_p, xt4_qc};
    use hpcsim_machine::Workload;
    use hpcsim_net::DType;

    fn sim(machine: MachineSpec, ranks: usize, mode: ExecMode) -> TraceSim {
        TraceSim::new(SimConfig::new(machine, ranks, mode))
    }

    #[test]
    fn empty_program_finishes_at_zero() {
        let mut s = sim(bluegene_p(), 16, ExecMode::Vn);
        let res = s.run(&FnProgram(|_mpi: &mut Mpi| {}));
        assert_eq!(res.makespan(), SimTime::ZERO);
    }

    #[test]
    fn compute_only_is_busy_time() {
        let mut s = sim(bluegene_p(), 4, ExecMode::Vn);
        let res = s.run(&FnProgram(|mpi: &mut Mpi| {
            mpi.compute(Workload::Custom {
                flops: 3.06e9, // exactly 1 s at 90% of 3.4 GF/s
                dram_bytes: 0.0,
                simd_eff: 0.9,
                serial_frac: 0.0,
            });
        }));
        let t = res.makespan().as_secs();
        assert!((t - 1.0).abs() < 1e-9, "expected 1 s, got {t}");
        assert_eq!(res.busy[0], res.finish[0]);
    }

    #[test]
    fn ping_pong_round_trip() {
        let mut s = sim(bluegene_p(), 2, ExecMode::Smp);
        let res = s.run(&FnProgram(|mpi: &mut Mpi| {
            match mpi.rank() {
                0 => {
                    mpi.send(1, 0, 8);
                    mpi.recv(1, 1, 8);
                }
                _ => {
                    mpi.recv(0, 0, 8);
                    mpi.send(0, 1, 8);
                }
            }
        }));
        let rtt = res.makespan().as_secs();
        // two messages, each ~ o_send + o_recv + 1 hop
        assert!(rtt > 2e-6 && rtt < 20e-6, "rtt {rtt}");
    }

    #[test]
    fn message_ordering_matches_fifo() {
        // two same-tag messages must match in posting order
        let mut s = sim(bluegene_p(), 2, ExecMode::Smp);
        let res = s.run(&FnProgram(|mpi: &mut Mpi| {
            if mpi.rank() == 0 {
                mpi.send(1, 9, 64);
                mpi.send(1, 9, 64);
            } else {
                mpi.recv(0, 9, 64);
                mpi.recv(0, 9, 64);
            }
        }));
        assert_eq!(res.messages, 2);
        assert!(res.makespan() > SimTime::ZERO);
    }

    #[test]
    fn collective_waits_for_slowest() {
        let mut s = sim(bluegene_p(), 8, ExecMode::Vn);
        let res = s.run(&FnProgram(|mpi: &mut Mpi| {
            if mpi.rank() == 3 {
                mpi.delay(SimTime::from_us(500)); // straggler
            }
            mpi.barrier(CommId::WORLD);
        }));
        // everyone leaves the barrier after the straggler
        let min_finish = res.finish.iter().min().unwrap();
        assert!(*min_finish >= SimTime::from_us(500));
    }

    #[test]
    fn allreduce_dp_faster_than_sp_on_bgp() {
        let time_for = |dtype| {
            let mut s = sim(bluegene_p(), 256, ExecMode::Vn);
            let res = s.run(&FnProgram(move |mpi: &mut Mpi| {
                mpi.allreduce(CommId::WORLD, 32 * 1024, dtype);
            }));
            res.makespan()
        };
        assert!(time_for(DType::F64) < time_for(DType::F32));
    }

    #[test]
    fn subcommunicator_collectives() {
        let mut s = sim(bluegene_p(), 8, ExecMode::Vn);
        let evens = s.register_comm((0..8).step_by(2).collect());
        let res = s.run(&FnProgram(move |mpi: &mut Mpi| {
            if mpi.rank().is_multiple_of(2) {
                mpi.allreduce(evens, 1024, DType::F64);
            }
        }));
        // odd ranks finish immediately; evens take the collective time
        assert_eq!(res.finish[1], SimTime::ZERO);
        assert!(res.finish[0] > SimTime::ZERO);
    }

    #[test]
    fn unexpected_message_costs_a_copy() {
        // Receiver posts late for a big eager-ish message: the late-post
        // path must not be faster than the early-post path.
        let run = |recv_delay_us: u64| {
            let mut s = sim(bluegene_p(), 2, ExecMode::Smp);
            s.run(&FnProgram(move |mpi: &mut Mpi| {
                if mpi.rank() == 0 {
                    mpi.send(1, 0, 1024);
                } else {
                    mpi.delay(SimTime::from_us(recv_delay_us));
                    mpi.recv(0, 0, 1024);
                }
            }))
            .finish[1]
        };
        let early = run(0);
        let late = run(100);
        assert!(late > early);
        // the late receiver's extra cost exceeds its own delay
        assert!(late > SimTime::from_us(100));
    }

    #[test]
    fn rendezvous_send_blocks_until_drained() {
        let machine = bluegene_p();
        let thr = machine.nic.eager_threshold;
        let mut s = sim(machine, 2, ExecMode::Smp);
        let big = (thr * 100) as u64;
        let res = s.run(&FnProgram(move |mpi: &mut Mpi| {
            if mpi.rank() == 0 {
                mpi.send(1, 0, big);
            } else {
                mpi.recv(0, 0, big);
            }
        }));
        // sender cannot finish (wait returns) before the wire time of the
        // payload at 425 MB/s
        let wire_floor = big as f64 / 425e6;
        assert!(res.finish[0].as_secs() > wire_floor, "{} <= {wire_floor}", res.finish[0]);
    }

    #[test]
    fn eager_send_returns_immediately() {
        let mut s = sim(bluegene_p(), 2, ExecMode::Smp);
        let res = s.run(&FnProgram(|mpi: &mut Mpi| {
            if mpi.rank() == 0 {
                mpi.send(1, 0, 8); // far below eager threshold
            } else {
                mpi.delay(SimTime::from_ms(10));
                mpi.recv(0, 0, 8);
            }
        }));
        // sender is done in microseconds even though receiver is slow
        assert!(res.finish[0] < SimTime::from_us(50));
        assert!(res.finish[1] > SimTime::from_ms(10));
    }

    #[test]
    fn marks_record_phase_times() {
        let mut s = sim(bluegene_p(), 2, ExecMode::Smp);
        let res = s.run(&FnProgram(|mpi: &mut Mpi| {
            mpi.mark(1);
            mpi.delay(SimTime::from_us(10));
            mpi.mark(2);
        }));
        let m = &res.marks[0];
        assert_eq!(m.len(), 2);
        assert_eq!(m[0], (1, SimTime::ZERO));
        assert_eq!(m[1], (2, SimTime::from_us(10)));
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn deadlock_is_detected() {
        let mut s = sim(bluegene_p(), 2, ExecMode::Smp);
        let _ = s.run(&FnProgram(|mpi: &mut Mpi| {
            // both ranks receive a message nobody sends
            let peer = 1 - mpi.rank();
            mpi.recv(peer, 0, 8);
        }));
    }

    #[test]
    fn deadlock_is_a_diagnosed_error_on_the_fallible_path() {
        let mut s = sim(bluegene_p(), 2, ExecMode::Smp);
        let err = s
            .try_run(&FnProgram(|mpi: &mut Mpi| {
                let peer = 1 - mpi.rank();
                mpi.recv(peer, 0, 8);
            }))
            .expect_err("unmatched receives must deadlock");
        match err {
            SimError::Deadlock { unfinished, rank, op } => {
                assert_eq!(unfinished, 2);
                assert_eq!(rank, 0);
                // recv = [Irecv, Wait]; the rank is stuck on the Wait
                assert_eq!(op, 1);
            }
            other => panic!("expected deadlock, got {other}"),
        }
    }

    #[test]
    fn collective_mismatch_is_diagnosed() {
        let mut s = sim(bluegene_p(), 2, ExecMode::Smp);
        let err = s
            .try_run(&FnProgram(|mpi: &mut Mpi| {
                if mpi.rank() == 0 {
                    mpi.barrier(CommId::WORLD);
                } else {
                    mpi.allreduce(CommId::WORLD, 64, DType::F64);
                }
            }))
            .expect_err("disagreeing collectives must be diagnosed");
        match err {
            SimError::CollectiveMismatch { rank, comm, op } => {
                assert_eq!((rank, comm, op), (1, 0, 0));
            }
            other => panic!("expected collective mismatch, got {other}"),
        }
    }

    #[test]
    fn tight_step_budget_diagnoses_livelock() {
        let mut s = sim(bluegene_p(), 8, ExecMode::Vn);
        s.set_step_budget(Some(2));
        let err = s
            .try_run(&FnProgram(|mpi: &mut Mpi| {
                mpi.barrier(CommId::WORLD);
            }))
            .expect_err("8 same-time resumes must exceed a 2-step budget");
        match err {
            SimError::Livelock { rank, steps } => {
                assert_eq!(steps, 3);
                assert_eq!(rank, 2);
            }
            other => panic!("expected livelock, got {other}"),
        }
        assert!(err.to_string().contains("watchdog"));
    }

    #[test]
    fn default_step_budget_never_misfires() {
        // every event of this run lands at t=0 (zero-cost barrier chain
        // would; marks certainly do) — the derived budget must absorb it
        let mut s = sim(bluegene_p(), 64, ExecMode::Vn);
        let res = s
            .try_run(&FnProgram(|mpi: &mut Mpi| {
                for i in 0..16 {
                    mpi.mark(i);
                }
            }))
            .expect("pristine zero-time program must finish");
        assert_eq!(res.makespan(), SimTime::ZERO);
    }

    #[test]
    fn xt_faster_for_bandwidth_bound_exchange() {
        let run = |machine: MachineSpec| {
            let mut s = sim(machine, 2, ExecMode::Smp);
            s.run(&FnProgram(|mpi: &mut Mpi| {
                let peer = 1 - mpi.rank();
                mpi.sendrecv(peer, 0, 1 << 20, peer, 0, 1 << 20);
            }))
            .makespan()
        };
        let bgp = run(bluegene_p());
        let xt = run(xt4_qc());
        assert!(xt < bgp, "XT {xt} should beat BG/P {bgp} at 1 MiB");
    }

    #[test]
    fn determinism_across_runs() {
        let run = || {
            let mut s = sim(bluegene_p(), 32, ExecMode::Vn);
            s.run(&FnProgram(|mpi: &mut Mpi| {
                let next = (mpi.rank() + 1) % mpi.size();
                let prev = (mpi.rank() + mpi.size() - 1) % mpi.size();
                mpi.sendrecv(next, 0, 4096, prev, 0, 4096);
                mpi.allreduce(CommId::WORLD, 8, DType::F64);
            }))
        };
        let a = run();
        let b = run();
        assert_eq!(a.finish, b.finish);
        assert_eq!(a.bytes_sent, b.bytes_sent);
    }

    mod faults {
        use super::*;
        use hpcsim_faults::FaultProfile;

        fn ring_exchange(bytes: u64) -> FnProgram<impl Fn(&mut Mpi) + Copy> {
            FnProgram(move |mpi: &mut Mpi| {
                let next = (mpi.rank() + 1) % mpi.size();
                let prev = (mpi.rank() + mpi.size() - 1) % mpi.size();
                mpi.sendrecv(next, 0, bytes, prev, 0, bytes);
            })
        }

        #[test]
        fn disarmed_faults_leave_the_replay_untouched() {
            let prog = ring_exchange(4096);
            let mut a = sim(bluegene_p(), 16, ExecMode::Vn);
            let base = a.run(&prog);
            let mut b = sim(bluegene_p(), 16, ExecMode::Vn);
            b.set_faults(&FaultPlan::new(7, FaultProfile::Mixed));
            b.clear_faults();
            let again = b.run(&prog);
            assert_eq!(base.finish, again.finish);
            assert_eq!(base.bytes_sent, again.bytes_sent);
        }

        #[test]
        fn noise_slows_compute_deterministically() {
            let run = |seed: Option<u64>| {
                let mut s = sim(bluegene_p(), 8, ExecMode::Vn);
                if let Some(sd) = seed {
                    s.set_faults(&FaultPlan::new(sd, FaultProfile::Noise));
                }
                s.run(&FnProgram(|mpi: &mut Mpi| {
                    for _ in 0..50 {
                        mpi.compute(Workload::Custom {
                            flops: 3.06e7,
                            dram_bytes: 0.0,
                            simd_eff: 0.9,
                            serial_frac: 0.0,
                        });
                    }
                    mpi.barrier(CommId::WORLD);
                }))
            };
            let pristine = run(None);
            let noisy = run(Some(3));
            let again = run(Some(3));
            assert_eq!(noisy.finish, again.finish);
            // jitter only ever adds time
            assert!(noisy.makespan() > pristine.makespan());
        }

        #[test]
        fn link_faults_detour_and_complete() {
            let prog = ring_exchange(256 * 1024);
            let mut a = sim(bluegene_p(), 64, ExecMode::Vn);
            let pristine = a.run(&prog);
            let mut b = sim(bluegene_p(), 64, ExecMode::Vn);
            b.set_faults(&FaultPlan::new(11, FaultProfile::Link));
            let faulty = b.try_run(&prog).expect("detours should keep the job alive");
            assert!(faulty.makespan() >= pristine.makespan());
            assert_eq!(faulty.bytes_sent, pristine.bytes_sent);
        }

        #[test]
        fn exhausted_retransmits_stall_with_diagnosis() {
            let mut s = sim(bluegene_p(), 2, ExecMode::Smp);
            // force every attempt to drop: budget must run out
            s.faults = Some(FaultContext {
                link_faults: None,
                noise: None,
                loss: Some(LossModel::with_rates(1, 1.0, 8)),
                retransmit: RetransmitPolicy::default(),
            });
            let err = s
                .try_run(&FnProgram(|mpi: &mut Mpi| {
                    if mpi.rank() == 0 {
                        mpi.send(1, 7, 4096);
                    } else {
                        mpi.recv(0, 7, 4096);
                    }
                }))
                .expect_err("total loss must stall");
            match err {
                SimError::Stalled { rank, peer, tag, bytes, lost, op } => {
                    assert_eq!((rank, peer, tag, bytes), (0, 1, 7, 4096));
                    assert!(lost > RetransmitPolicy::default().max_retries);
                    // mpi.send() expands to [Isend, Wait]; the Isend is op 0
                    assert_eq!(op, 0);
                }
                other => panic!("expected a stall, got {other}"),
            }
            assert!(err.to_string().contains("retransmit budget exhausted"));
            assert!(err.to_string().contains("at op 0"));
        }

        #[test]
        fn fault_runs_are_reproducible() {
            let run = || {
                let mut s = sim(bluegene_p(), 32, ExecMode::Vn);
                s.set_faults(&FaultPlan::new(42, FaultProfile::Mixed));
                s.try_run(&FnProgram(|mpi: &mut Mpi| {
                    let next = (mpi.rank() + 1) % mpi.size();
                    let prev = (mpi.rank() + mpi.size() - 1) % mpi.size();
                    mpi.sendrecv(next, 0, 4096, prev, 0, 4096);
                    mpi.allreduce(CommId::WORLD, 8, DType::F64);
                }))
            };
            match (run(), run()) {
                (Ok(x), Ok(y)) => {
                    assert_eq!(x.finish, y.finish);
                    assert_eq!(x.bytes_sent, y.bytes_sent);
                }
                (Err(x), Err(y)) => assert_eq!(x, y),
                _ => panic!("fault runs diverged between executions"),
            }
        }
    }
}
