//! Rank-to-node layout: where each MPI rank physically lives.
//!
//! BlueGene jobs get a compact partition and place ranks by one of the
//! predefined orderings; XT jobs fill an allocator-provided (possibly
//! fragmented) node list in rank order. The layout is what turns a
//! logical communication pattern into physical routes — the entire
//! subject of the paper's Figure 2(c,d).

use hpcsim_machine::{ExecMode, MachineSpec};
use hpcsim_topo::{alloc_torus_dims, Mapping, Placement, Torus3D};

/// Placement of `ranks` MPI ranks onto torus nodes.
#[derive(Debug, Clone)]
pub struct RankLayout {
    /// The torus routes are computed on.
    pub torus: Torus3D,
    /// Machine-node index of each rank.
    pub node_of_rank: Vec<usize>,
    /// MPI tasks per node in this mode.
    pub tasks_per_node: usize,
    /// Ratio of this layout's mean route length to a compact layout's
    /// (1.0 for compact; > 1 under fragmentation).
    pub hop_scale: f64,
    /// Background flows per link from other jobs (fragmented allocations
    /// share links with neighbours; compact partitions are private).
    pub ambient_flows: f64,
}

impl RankLayout {
    /// BlueGene-style layout: compact partition, ranks placed by
    /// `mapping`.
    pub fn bluegene(machine: &MachineSpec, ranks: usize, mode: ExecMode, mapping: Mapping) -> Self {
        assert!(ranks >= 1);
        let tpn = mode.tasks_per_node(machine.cores_per_node) as usize;
        let nodes = ranks.div_ceil(tpn);
        let torus = Torus3D::new(alloc_torus_dims(nodes));
        let node_of_rank = (0..ranks)
            .map(|r| {
                let (coord, _slot) = mapping.place(r, &torus, tpn);
                torus.index(coord)
            })
            .collect();
        RankLayout { torus, node_of_rank, tasks_per_node: tpn, hop_scale: 1.0, ambient_flows: 0.0 }
    }

    /// XT-style layout: ranks fill the allocator's node list in order
    /// (`spread > 1` models a fragmented allocation).
    pub fn xt(machine: &MachineSpec, ranks: usize, mode: ExecMode, placement: Placement) -> Self {
        assert!(ranks >= 1);
        let tpn = mode.tasks_per_node(machine.cores_per_node) as usize;
        let nodes = ranks.div_ceil(tpn);
        let (torus, node_list) = placement.place(nodes);
        let node_of_rank = (0..ranks).map(|r| node_list[r / tpn]).collect();
        let compact_hops = Placement::Compact.mean_hops(nodes).max(1e-9);
        let hop_scale = (placement.mean_hops(nodes) / compact_hops).max(1.0);
        // A fragmented job threads through links that other jobs are
        // actively using; the interference grows with how scattered the
        // allocation is.
        let ambient_flows = match placement {
            Placement::Compact => 0.0,
            Placement::Fragmented { spread, .. } => (spread - 1.0).clamp(0.0, 2.0),
        };
        RankLayout { torus, node_of_rank, tasks_per_node: tpn, hop_scale, ambient_flows }
    }

    /// Default layout for a machine: TXYZ on BlueGene VN mode semantics,
    /// compact on the XT.
    pub fn default_for(machine: &MachineSpec, ranks: usize, mode: ExecMode) -> Self {
        if machine.id.is_bluegene() {
            let mapping = if mode == ExecMode::Smp { Mapping::xyzt() } else { Mapping::txyz() };
            Self::bluegene(machine, ranks, mode, mapping)
        } else {
            Self::xt(machine, ranks, mode, Placement::Compact)
        }
    }

    /// Number of ranks placed.
    pub fn ranks(&self) -> usize {
        self.node_of_rank.len()
    }

    /// Number of distinct nodes used.
    pub fn nodes_used(&self) -> usize {
        let mut v = self.node_of_rank.clone();
        v.sort_unstable();
        v.dedup();
        v.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcsim_machine::registry::{bluegene_p, xt4_qc};

    #[test]
    fn vn_mode_packs_four_per_node() {
        let l = RankLayout::bluegene(&bluegene_p(), 8192, ExecMode::Vn, Mapping::txyz());
        assert_eq!(l.tasks_per_node, 4);
        assert_eq!(l.nodes_used(), 2048);
        // TXYZ: ranks 0..4 share node 0
        assert_eq!(l.node_of_rank[0], l.node_of_rank[3]);
        assert_ne!(l.node_of_rank[3], l.node_of_rank[4]);
    }

    #[test]
    fn smp_mode_spreads_one_per_node() {
        let l = RankLayout::bluegene(&bluegene_p(), 2048, ExecMode::Smp, Mapping::xyzt());
        assert_eq!(l.tasks_per_node, 1);
        assert_eq!(l.nodes_used(), 2048);
    }

    #[test]
    fn mappings_change_physical_neighbours() {
        let a = RankLayout::bluegene(&bluegene_p(), 4096, ExecMode::Vn, Mapping::txyz());
        let b =
            RankLayout::bluegene(&bluegene_p(), 4096, ExecMode::Vn, Mapping::parse("TZYX").unwrap());
        assert_ne!(a.node_of_rank, b.node_of_rank);
    }

    #[test]
    fn xt_compact_layout_fills_in_order() {
        let l = RankLayout::xt(&xt4_qc(), 1024, ExecMode::Vn, Placement::Compact);
        assert_eq!(l.tasks_per_node, 4);
        assert_eq!(l.node_of_rank[0], 0);
        assert_eq!(l.node_of_rank[4], 1);
        assert!((l.hop_scale - 1.0).abs() < 1e-9);
    }

    #[test]
    fn xt_fragmented_layout_has_longer_routes() {
        let l = RankLayout::xt(
            &xt4_qc(),
            1024,
            ExecMode::Vn,
            Placement::Fragmented { spread: 2.0, seed: 11 },
        );
        assert!(l.hop_scale > 1.0, "hop_scale {}", l.hop_scale);
        assert_eq!(l.ranks(), 1024);
    }

    #[test]
    fn default_layouts_by_family() {
        let b = RankLayout::default_for(&bluegene_p(), 256, ExecMode::Vn);
        assert_eq!(b.tasks_per_node, 4);
        let x = RankLayout::default_for(&xt4_qc(), 256, ExecMode::Smp);
        assert_eq!(x.tasks_per_node, 1);
        assert_eq!(x.nodes_used(), 256);
    }

    #[test]
    fn ranks_not_multiple_of_tpn() {
        let l = RankLayout::bluegene(&bluegene_p(), 5, ExecMode::Vn, Mapping::txyz());
        assert_eq!(l.ranks(), 5);
        assert_eq!(l.nodes_used(), 2);
    }
}
