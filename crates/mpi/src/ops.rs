//! Trace operations.
//!
//! The vocabulary a rank program records. Kept deliberately small: the
//! replay engine implements blocking operations in terms of the
//! non-blocking ones exactly as real MPI implementations do.

use hpcsim_engine::SimTime;
use hpcsim_machine::Workload;
use hpcsim_net::CollectiveOp;
use serde::{Deserialize, Serialize};

/// A communicator handle. `CommId(0)` is `MPI_COMM_WORLD`; sub-
/// communicators are registered with the simulator before the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CommId(pub u32);

impl CommId {
    /// The world communicator.
    pub const WORLD: CommId = CommId(0);
}

/// A request handle returned by the non-blocking operations; local to the
/// issuing rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Req(pub u32);

/// One recorded operation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub enum Op {
    /// Local computation described symbolically; the engine prices it via
    /// the node model with the run's execution mode and `threads`.
    Compute {
        /// What is computed.
        work: Workload,
        /// OpenMP threads used for this block.
        threads: u32,
    },
    /// A fixed local delay (I/O stubs, imposed imbalance, …).
    Delay {
        /// Duration of the delay.
        time: SimTime,
    },
    /// Non-blocking send of `bytes` to world rank `dst`.
    Isend {
        /// Destination world rank.
        dst: usize,
        /// Match tag.
        tag: u32,
        /// Payload bytes.
        bytes: u64,
        /// Request slot.
        req: Req,
    },
    /// Non-blocking receive of `bytes` from world rank `src`.
    Irecv {
        /// Source world rank.
        src: usize,
        /// Match tag.
        tag: u32,
        /// Payload bytes (must match the send).
        bytes: u64,
        /// Request slot.
        req: Req,
    },
    /// Block until `req` completes.
    Wait {
        /// The request to complete.
        req: Req,
    },
    /// A collective over `comm`; every member must record the same
    /// sequence of collectives on a given communicator.
    Collective {
        /// The communicator.
        comm: CommId,
        /// Which collective and payload.
        op: CollectiveOp,
    },
    /// Record this rank's current virtual time under a label (phase
    /// timers, à la POP's barotropic/baroclinic breakdown).
    Mark {
        /// Program-defined label.
        id: u32,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn world_is_comm_zero() {
        assert_eq!(CommId::WORLD, CommId(0));
    }

    #[test]
    fn ops_are_small() {
        // Traces can hold millions of ops at 40k ranks; keep them compact.
        assert!(
            std::mem::size_of::<Op>() <= 64,
            "Op grew to {} bytes",
            std::mem::size_of::<Op>()
        );
    }
}
