//! Property tests of the node cost model: the roofline is monotone,
//! resource sharing never creates speedups from nothing, and workload
//! resolution is well-behaved across the whole parameter space.

use hpcsim_machine::registry::all_machines;
use hpcsim_machine::{ExecMode, MachineSpec, NodeModel, Workload};
use proptest::prelude::*;

fn machine_strategy() -> impl Strategy<Value = MachineSpec> {
    (0usize..5).prop_map(|i| all_machines().swap_remove(i))
}

fn workload_strategy() -> impl Strategy<Value = Workload> {
    prop_oneof![
        (8u64..3000).prop_map(|n| Workload::Dgemm { n }),
        (1u64..10_000_000).prop_map(|n| Workload::StreamTriad { n }),
        (4u32..24).prop_map(|l| Workload::Fft1d { n: 1 << l }),
        (1u64..1_000_000, 1.0f64..10_000.0, 1.0f64..500.0)
            .prop_map(|(p, f, b)| Workload::Stencil { points: p, flops_per_point: f, bytes_per_point: b }),
        (1u64..1_000_000, 10.0f64..50_000.0)
            .prop_map(|(p, f)| Workload::Chemistry { points: p, flops_per_point: f }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Every workload takes positive, finite time on every machine in
    /// every mode.
    #[test]
    fn time_is_positive_finite(m in machine_strategy(), w in workload_strategy()) {
        let model = NodeModel::new(m);
        for mode in [ExecMode::Smp, ExecMode::Dual, ExecMode::Vn] {
            let t = model.time(&w, mode, 1);
            prop_assert!(t > hpcsim_engine::SimTime::ZERO, "{w:?} free in {mode:?}");
            prop_assert!(!t.is_never());
        }
    }

    /// Scaling a workload's size scales its time at least proportionally
    /// minus rounding (no sublinear magic).
    #[test]
    fn bigger_stencils_cost_more(
        m in machine_strategy(),
        points in 1000u64..1_000_000,
        fpp in 1.0f64..1000.0
    ) {
        let model = NodeModel::new(m);
        let small = Workload::Stencil { points, flops_per_point: fpp, bytes_per_point: 32.0 };
        let big = Workload::Stencil { points: points * 2, flops_per_point: fpp, bytes_per_point: 32.0 };
        let ts = model.time(&small, ExecMode::Vn, 1);
        let tb = model.time(&big, ExecMode::Vn, 1);
        prop_assert!(tb >= ts.scale(1.9), "{ts} -> {tb}");
    }

    /// Sustained flops never exceed the core's peak, anywhere in the
    /// workload space.
    #[test]
    fn never_beyond_peak(m in machine_strategy(), w in workload_strategy()) {
        let peak = m.core_peak_flops();
        let model = NodeModel::new(m);
        for mode in [ExecMode::Smp, ExecMode::Vn] {
            prop_assert!(model.sustained_flops(&w, mode, 1) <= peak * 1.0001);
        }
    }

    /// Sustained bandwidth never exceeds the node's memory bandwidth.
    #[test]
    fn never_beyond_memory(m in machine_strategy(), n in 1000u64..10_000_000) {
        let bw = m.mem.bw_bytes;
        let model = NodeModel::new(m);
        let w = Workload::StreamTriad { n };
        prop_assert!(model.sustained_bandwidth(&w, ExecMode::Vn, 1) <= bw);
        prop_assert!(model.sustained_bandwidth(&w, ExecMode::Smp, 4) <= bw);
    }

    /// More threads never slow a task down (Amdahl is monotone).
    #[test]
    fn threads_monotone(m in machine_strategy(), w in workload_strategy(), t1 in 1u32..4, t2 in 1u32..4) {
        let model = NodeModel::new(m);
        let (lo, hi) = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
        prop_assert!(model.time(&w, ExecMode::Smp, hi) <= model.time(&w, ExecMode::Smp, lo));
    }

    /// Sharing a node (VN) is never faster per task than having it alone
    /// (SMP) for single-threaded work.
    #[test]
    fn vn_never_faster_than_smp(m in machine_strategy(), w in workload_strategy()) {
        let model = NodeModel::new(m);
        let smp = model.time(&w, ExecMode::Smp, 1);
        let vn = model.time(&w, ExecMode::Vn, 1);
        prop_assert!(vn >= smp, "VN {vn} beat SMP {smp} for {w:?}");
    }

    /// Cost resolution: flops and traffic are non-negative and finite for
    /// any cache size, including degenerate ones.
    #[test]
    fn cost_resolution_total(w in workload_strategy(), cache in 0.0f64..1e9) {
        let c = w.cost(cache);
        prop_assert!(c.flops >= 0.0 && c.flops.is_finite());
        prop_assert!(c.dram_bytes >= 0.0 && c.dram_bytes.is_finite());
        prop_assert!(c.simd_eff > 0.0 && c.simd_eff <= 1.0);
        prop_assert!((0.0..1.0).contains(&c.serial_frac));
    }

    /// Less cache never reduces DRAM traffic.
    #[test]
    fn traffic_monotone_in_cache(w in workload_strategy(), c1 in 1e4f64..1e8, c2 in 1e4f64..1e8) {
        let (small, large) = if c1 <= c2 { (c1, c2) } else { (c2, c1) };
        prop_assert!(w.cost(small).dram_bytes >= w.cost(large).dram_bytes * 0.999);
    }
}
