//! Execution modes.
//!
//! BG/P runs compute nodes in one of three modes (§I.A of the paper):
//! SMP (one MPI task, up to 4 threads), DUAL (two tasks, up to 2 threads
//! each — new in BG/P), and VN (four single-threaded tasks). The Cray XT
//! has the analogous SN (one task/node) and VN (one task/core) modes.
//! The mode determines how node resources — cores, memory capacity, shared
//! L3, memory bandwidth, and the NIC — are partitioned among MPI tasks.

use serde::{Deserialize, Serialize};

/// How MPI tasks are laid onto a compute node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ExecMode {
    /// One MPI task per node ("SMP" on BlueGene, "SN" on the XT); the task
    /// may spawn threads onto the remaining cores.
    Smp,
    /// Two MPI tasks per node, resources split evenly (BG/P "DUAL" mode).
    Dual,
    /// One MPI task per core ("VN" — virtual node mode).
    Vn,
}

impl ExecMode {
    /// MPI tasks per node for a machine with `cores_per_node` cores.
    /// DUAL on a 2-core machine coincides with VN.
    pub fn tasks_per_node(self, cores_per_node: u32) -> u32 {
        match self {
            ExecMode::Smp => 1,
            ExecMode::Dual => 2.min(cores_per_node),
            ExecMode::Vn => cores_per_node,
        }
    }

    /// Maximum threads each MPI task may use.
    pub fn max_threads_per_task(self, cores_per_node: u32) -> u32 {
        (cores_per_node / self.tasks_per_node(cores_per_node)).max(1)
    }

    /// Memory capacity available to each task, bytes.
    pub fn mem_per_task(self, node_mem_bytes: f64, cores_per_node: u32) -> f64 {
        node_mem_bytes / self.tasks_per_node(cores_per_node) as f64
    }

    /// The mode's name in the paper's terminology for the given family.
    pub fn label(self, is_bluegene: bool) -> &'static str {
        match (self, is_bluegene) {
            (ExecMode::Smp, true) => "SMP",
            (ExecMode::Smp, false) => "SN",
            (ExecMode::Dual, _) => "DUAL",
            (ExecMode::Vn, _) => "VN",
        }
    }

    /// All modes in increasing tasks-per-node order.
    pub fn all() -> [ExecMode; 3] {
        [ExecMode::Smp, ExecMode::Dual, ExecMode::Vn]
    }

    /// Number of nodes needed to host `ntasks` MPI tasks.
    pub fn nodes_for_tasks(self, ntasks: u64, cores_per_node: u32) -> u64 {
        let tpn = self.tasks_per_node(cores_per_node) as u64;
        ntasks.div_ceil(tpn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tasks_per_node_bgp() {
        assert_eq!(ExecMode::Smp.tasks_per_node(4), 1);
        assert_eq!(ExecMode::Dual.tasks_per_node(4), 2);
        assert_eq!(ExecMode::Vn.tasks_per_node(4), 4);
    }

    #[test]
    fn dual_degenerates_on_two_core_nodes() {
        assert_eq!(ExecMode::Dual.tasks_per_node(2), 2);
        assert_eq!(ExecMode::Vn.tasks_per_node(2), 2);
    }

    #[test]
    fn threads_per_task() {
        assert_eq!(ExecMode::Smp.max_threads_per_task(4), 4);
        assert_eq!(ExecMode::Dual.max_threads_per_task(4), 2);
        assert_eq!(ExecMode::Vn.max_threads_per_task(4), 1);
        assert_eq!(ExecMode::Smp.max_threads_per_task(2), 2);
    }

    #[test]
    fn memory_split() {
        let two_gib = 2.0 * (1u64 << 30) as f64;
        assert_eq!(ExecMode::Vn.mem_per_task(two_gib, 4), two_gib / 4.0);
        assert_eq!(ExecMode::Smp.mem_per_task(two_gib, 4), two_gib);
    }

    #[test]
    fn labels_follow_family_convention() {
        assert_eq!(ExecMode::Smp.label(true), "SMP");
        assert_eq!(ExecMode::Smp.label(false), "SN");
        assert_eq!(ExecMode::Vn.label(true), "VN");
        assert_eq!(ExecMode::Vn.label(false), "VN");
    }

    #[test]
    fn nodes_for_tasks_rounds_up() {
        assert_eq!(ExecMode::Vn.nodes_for_tasks(8192, 4), 2048);
        assert_eq!(ExecMode::Smp.nodes_for_tasks(8192, 4), 8192);
        assert_eq!(ExecMode::Dual.nodes_for_tasks(5, 4), 3);
        assert_eq!(ExecMode::Vn.nodes_for_tasks(1, 4), 1);
    }
}
