//! # hpcsim-machine
//!
//! Machine models for the five systems compared in *Early Evaluation of IBM
//! BlueGene/P* (SC08): BlueGene/L, BlueGene/P, Cray XT3, Cray XT4
//! (dual-core), and Cray XT4 (quad-core). The crate owns:
//!
//! * [`arch`] — the static description of a machine: core, cache hierarchy,
//!   memory system, NIC/network endpoints, packaging and power parameters.
//!   These are the rows of the paper's **Table 1**.
//! * [`registry`] — constructors for the five studied machines with the
//!   paper's published parameters, plus the ORNL ("Eugene", 2 racks) and
//!   ANL ("Intrepid", 40 racks) installation descriptions.
//! * [`exec`] — execution modes: SMP / DUAL / VN on BlueGene, SN / VN on
//!   the XT, and the rules for how node resources (cores, memory, L3,
//!   memory bandwidth, NIC) are shared between MPI tasks in each mode.
//! * [`cost`] — symbolic workload descriptors ([`Workload`]) for the
//!   kernels and application phases in the study, resolved to concrete
//!   flop/DRAM-traffic costs against a given cache share.
//! * [`node_model`] — the roofline-with-cache-traffic model that converts
//!   a resolved cost into execution time on a given machine, mode and
//!   thread count. This is what makes DGEMM "compute-bound, XT wins on
//!   clock" and STREAM "bandwidth-bound, BG/P competitive" fall out of the
//!   same formula, as the paper observes.
//! * [`perturb`] — seeded multiplicative perturbations of the machine
//!   parameter groups (link bandwidth, hop latency, compute noise,
//!   collectives) for Monte-Carlo sensitivity sweeps; deterministic
//!   per-sample sub-RNGs from the engine's splittable RNG.

pub mod arch;
pub mod cost;
pub mod exec;
pub mod node_model;
pub mod perturb;
pub mod registry;

pub use arch::{
    CacheCoherence, CoreArch, L2Kind, MachineId, MachineSpec, MemorySpec, NicSpec, Packaging,
    PowerSpec,
};
pub use cost::{CostDesc, Workload};
pub use exec::ExecMode;
pub use node_model::NodeModel;
pub use perturb::{ParamGroups, Perturbation, PerturbSpec, PerturbationSampler};
pub use registry::{all_machines, machine, Installation};
