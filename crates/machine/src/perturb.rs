//! Seeded machine-parameter perturbations for Monte-Carlo sensitivity
//! sweeps.
//!
//! A sensitivity battery asks: how much does a predicted runtime move
//! when one machine parameter group wiggles around its Table-1 value?
//! Rather than materialising thousands of perturbed [`MachineSpec`]s
//! (each of which would force the DAG evaluator to rebuild its cached
//! cost tables), a [`Perturbation`] is a tiny set of multiplicative
//! factors — one per *parameter group* — that the evaluator applies as
//! a delta on top of its already-priced base tables. The groups mirror
//! the structure-of-arrays cost split in `hpcsim-mpi`'s DAG engine:
//!
//! * [`ParamGroups::LINK_BW`] — torus link / injection bandwidth
//!   (scales per-byte serialization; factor > 1 means *more* bandwidth,
//!   so less time);
//! * [`ParamGroups::HOP_LAT`] — per-hop router latency (scales the
//!   route-geometry term of every off-node message and rendezvous
//!   handshake);
//! * [`ParamGroups::COMPUTE`] — compute/OS-noise (scales resolved
//!   compute and delay durations; one-sided by default, noise only ever
//!   slows a node down);
//! * [`ParamGroups::COLLECTIVE`] — collective cost model (scales every
//!   collective duration).
//!
//! Sampling is deterministic and *splittable*: sample `i` draws from a
//! sub-RNG derived as `DetRng::new(seed, i)` (the engine's splitmix64
//! stream splitter), so a battery produces the same sample set no
//! matter how its index range is chunked across worker threads — the
//! property the `--jobs`-invariance tests pin.

use crate::arch::MachineSpec;
use hpcsim_engine::DetRng;

/// Bitmask of machine parameter groups a perturbation touches. The DAG
/// evaluator re-prices exactly the cost arrays whose group bit is set
/// and reuses its base tables for the rest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ParamGroups(pub u8);

impl ParamGroups {
    /// No groups: the identity perturbation.
    pub const NONE: ParamGroups = ParamGroups(0);
    /// Link/injection bandwidth (per-byte serialization).
    pub const LINK_BW: ParamGroups = ParamGroups(1 << 0);
    /// Per-hop router latency (route geometry term).
    pub const HOP_LAT: ParamGroups = ParamGroups(1 << 1);
    /// Compute / OS noise (compute and delay durations).
    pub const COMPUTE: ParamGroups = ParamGroups(1 << 2);
    /// Collective cost model.
    pub const COLLECTIVE: ParamGroups = ParamGroups(1 << 3);
    /// Every group.
    pub const ALL: ParamGroups = ParamGroups(0b1111);

    /// Number of distinct parameter groups.
    pub const COUNT: u32 = 4;

    /// True when every bit of `other` is set in `self`.
    #[inline]
    pub fn contains(self, other: ParamGroups) -> bool {
        self.0 & other.0 == other.0
    }

    /// True when `self` and `other` share any bit.
    #[inline]
    pub fn intersects(self, other: ParamGroups) -> bool {
        self.0 & other.0 != 0
    }

    /// Number of groups set.
    #[inline]
    pub fn count(self) -> u32 {
        self.0.count_ones()
    }

    /// Short label for reports (`bw`, `lat`, `compute`, `coll`,
    /// combinations joined with `+`, `none` when empty).
    pub fn label(self) -> String {
        let mut parts = Vec::new();
        if self.contains(Self::LINK_BW) {
            parts.push("bw");
        }
        if self.contains(Self::HOP_LAT) {
            parts.push("lat");
        }
        if self.contains(Self::COMPUTE) {
            parts.push("compute");
        }
        if self.contains(Self::COLLECTIVE) {
            parts.push("coll");
        }
        if parts.is_empty() {
            "none".to_string()
        } else {
            parts.join("+")
        }
    }
}

impl std::ops::BitOr for ParamGroups {
    type Output = ParamGroups;
    fn bitor(self, rhs: ParamGroups) -> ParamGroups {
        ParamGroups(self.0 | rhs.0)
    }
}

/// One Monte-Carlo sample: a multiplicative factor per parameter group.
/// A factor of exactly `1.0` means "untouched" — [`Perturbation::groups`]
/// leaves that group's bit clear, and the evaluator reuses its base
/// cost array bit-for-bit (an identity perturbation therefore
/// reproduces the unperturbed engine exactly, which the property tests
/// pin).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Perturbation {
    /// Link-bandwidth factor: serialization time is divided by this.
    pub bw_scale: f64,
    /// Per-hop latency factor: route latency is multiplied by this.
    pub hop_scale: f64,
    /// Compute factor: compute/delay durations are multiplied by this.
    pub compute_scale: f64,
    /// Collective factor: collective durations are multiplied by this.
    pub coll_scale: f64,
}

impl Perturbation {
    /// The identity: every factor 1.0, no groups touched.
    pub const IDENTITY: Perturbation =
        Perturbation { bw_scale: 1.0, hop_scale: 1.0, compute_scale: 1.0, coll_scale: 1.0 };

    /// The parameter groups this sample actually moves (factor ≠ 1.0).
    #[inline]
    pub fn groups(&self) -> ParamGroups {
        let mut g = ParamGroups::NONE;
        if self.bw_scale != 1.0 {
            g = g | ParamGroups::LINK_BW;
        }
        if self.hop_scale != 1.0 {
            g = g | ParamGroups::HOP_LAT;
        }
        if self.compute_scale != 1.0 {
            g = g | ParamGroups::COMPUTE;
        }
        if self.coll_scale != 1.0 {
            g = g | ParamGroups::COLLECTIVE;
        }
        g
    }

    /// True when no group is touched.
    #[inline]
    pub fn is_identity(&self) -> bool {
        self.groups() == ParamGroups::NONE
    }

    /// Materialise the perturbed machine: a copy of `base` with this
    /// sample's factors folded into the Table-1 parameters — link and
    /// injection bandwidth scaled up by `bw_scale`, per-hop router
    /// latency by `hop_scale`, core clock and per-core memory bandwidth
    /// divided by `compute_scale` (noise slows the whole node), and
    /// tree bandwidth divided by `coll_scale`.
    ///
    /// This is the *rebuild* form of a sample: evaluating it forces
    /// every cached cost table to be re-derived from the new spec. The
    /// DAG engine's delta re-pricing path applies the same factors
    /// directly to its structure-of-arrays base tables instead — that
    /// is the per-sample work this method exists to compare against
    /// (and what a caller without batched support would run).
    pub fn apply_to(&self, base: &MachineSpec) -> MachineSpec {
        let mut m = base.clone();
        m.nic.torus_link_bw *= self.bw_scale;
        m.nic.injection_bw *= self.bw_scale;
        m.nic.per_hop = m.nic.per_hop.scale(self.hop_scale);
        m.core.clock_hz /= self.compute_scale;
        m.core.mem_bw_core /= self.compute_scale;
        if let Some(bw) = m.nic.tree_bw.as_mut() {
            *bw /= self.coll_scale;
        }
        m
    }
}

impl Default for Perturbation {
    fn default() -> Self {
        Perturbation::IDENTITY
    }
}

/// Relative half-widths of the sampling distributions, per group.
/// Bandwidth, hop latency and collectives draw uniformly from
/// `[1 - frac, 1 + frac]` (symmetric manufacturing/measurement
/// uncertainty); compute noise draws from `[1, 1 + frac]` (OS noise
/// only ever slows a node down, per the BlueGene CNK-vs-Linux noise
/// story the paper leans on).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerturbSpec {
    /// Link-bandwidth half-width (symmetric).
    pub bw_frac: f64,
    /// Per-hop latency half-width (symmetric).
    pub hop_frac: f64,
    /// Compute-noise width (one-sided slowdown).
    pub compute_frac: f64,
    /// Collective half-width (symmetric).
    pub coll_frac: f64,
}

impl Default for PerturbSpec {
    /// Defaults sized to the measurement spreads the paper's
    /// microbenchmarks show: ±10% link bandwidth, ±20% per-hop latency,
    /// up to +5% OS noise, ±15% collective cost.
    fn default() -> Self {
        PerturbSpec { bw_frac: 0.10, hop_frac: 0.20, compute_frac: 0.05, coll_frac: 0.15 }
    }
}

/// Deterministic perturbation sampler: sample `i` is a pure function of
/// `(seed, i)` via the engine's splittable RNG, independent of draw
/// order and of how the index range is chunked across threads.
#[derive(Debug, Clone)]
pub struct PerturbationSampler {
    seed: u64,
    spec: PerturbSpec,
    groups: ParamGroups,
}

impl PerturbationSampler {
    /// Sampler perturbing every group around the base machine.
    pub fn new(seed: u64, spec: PerturbSpec) -> Self {
        PerturbationSampler { seed, spec, groups: ParamGroups::ALL }
    }

    /// Restrict sampling to `groups` (one-at-a-time sensitivity rows);
    /// unselected groups stay at exactly 1.0.
    pub fn only(mut self, groups: ParamGroups) -> Self {
        self.groups = groups;
        self
    }

    /// The groups this sampler perturbs.
    pub fn groups(&self) -> ParamGroups {
        self.groups
    }

    /// Draw sample `index`. Every sampler with the same `(seed, spec,
    /// groups)` returns the same perturbation for the same index. Draws
    /// for all four groups are consumed unconditionally so the same
    /// index yields the same underlying randomness regardless of the
    /// group restriction.
    pub fn sample(&self, index: u64) -> Perturbation {
        let mut rng = DetRng::new(self.seed, index);
        let sym = |u: f64, frac: f64| 1.0 + frac * (2.0 * u - 1.0);
        let (ub, uh, uc, ul) =
            (rng.next_f64(), rng.next_f64(), rng.next_f64(), rng.next_f64());
        let pick = |on: bool, v: f64| if on { v } else { 1.0 };
        Perturbation {
            bw_scale: pick(
                self.groups.contains(ParamGroups::LINK_BW),
                sym(ub, self.spec.bw_frac).max(1e-3),
            ),
            hop_scale: pick(
                self.groups.contains(ParamGroups::HOP_LAT),
                sym(uh, self.spec.hop_frac).max(0.0),
            ),
            compute_scale: pick(
                self.groups.contains(ParamGroups::COMPUTE),
                1.0 + self.spec.compute_frac * uc,
            ),
            coll_scale: pick(
                self.groups.contains(ParamGroups::COLLECTIVE),
                sym(ul, self.spec.coll_frac).max(0.0),
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_touches_no_groups() {
        assert!(Perturbation::IDENTITY.is_identity());
        assert_eq!(Perturbation::IDENTITY.groups(), ParamGroups::NONE);
        assert_eq!(Perturbation::default(), Perturbation::IDENTITY);
    }

    #[test]
    fn groups_track_factors() {
        let p = Perturbation { bw_scale: 0.9, ..Perturbation::IDENTITY };
        assert_eq!(p.groups(), ParamGroups::LINK_BW);
        let p = Perturbation { hop_scale: 1.2, coll_scale: 0.8, ..Perturbation::IDENTITY };
        assert!(p.groups().contains(ParamGroups::HOP_LAT));
        assert!(p.groups().contains(ParamGroups::COLLECTIVE));
        assert!(!p.groups().intersects(ParamGroups::LINK_BW | ParamGroups::COMPUTE));
        assert_eq!(p.groups().count(), 2);
    }

    #[test]
    fn labels_render() {
        assert_eq!(ParamGroups::NONE.label(), "none");
        assert_eq!(ParamGroups::LINK_BW.label(), "bw");
        assert_eq!((ParamGroups::HOP_LAT | ParamGroups::COLLECTIVE).label(), "lat+coll");
        assert_eq!(ParamGroups::ALL.label(), "bw+lat+compute+coll");
    }

    #[test]
    fn apply_to_materialises_the_factors() {
        let base = crate::registry::bluegene_p();
        let p = Perturbation {
            bw_scale: 2.0,
            hop_scale: 0.5,
            compute_scale: 1.25,
            coll_scale: 2.0,
        };
        let m = p.apply_to(&base);
        assert_eq!(m.nic.torus_link_bw, base.nic.torus_link_bw * 2.0);
        assert_eq!(m.nic.injection_bw, base.nic.injection_bw * 2.0);
        assert_eq!(m.nic.per_hop, base.nic.per_hop.scale(0.5));
        assert_eq!(m.core.clock_hz, base.core.clock_hz / 1.25);
        assert_eq!(m.core.mem_bw_core, base.core.mem_bw_core / 1.25);
        assert_eq!(m.nic.tree_bw.unwrap(), base.nic.tree_bw.unwrap() / 2.0);
        // the identity sample materialises the base spec unchanged
        assert_eq!(Perturbation::IDENTITY.apply_to(&base), base);
    }

    #[test]
    fn sampling_is_deterministic_and_order_free() {
        let s = PerturbationSampler::new(42, PerturbSpec::default());
        let a: Vec<Perturbation> = (0..16).map(|i| s.sample(i)).collect();
        let b: Vec<Perturbation> = (0..16).rev().map(|i| s.sample(i)).collect();
        for (i, p) in a.iter().enumerate() {
            assert_eq!(*p, b[15 - i], "sample {i} must not depend on draw order");
        }
        // a fresh sampler with the same seed agrees exactly
        let s2 = PerturbationSampler::new(42, PerturbSpec::default());
        assert_eq!(s.sample(7), s2.sample(7));
        // different seeds diverge
        let s3 = PerturbationSampler::new(43, PerturbSpec::default());
        assert_ne!(s.sample(7), s3.sample(7));
    }

    #[test]
    fn samples_respect_spec_ranges() {
        let spec = PerturbSpec::default();
        let s = PerturbationSampler::new(7, spec);
        for i in 0..256 {
            let p = s.sample(i);
            assert!((1.0 - p.bw_scale).abs() <= spec.bw_frac + 1e-12);
            assert!((1.0 - p.hop_scale).abs() <= spec.hop_frac + 1e-12);
            assert!(p.compute_scale >= 1.0 && p.compute_scale <= 1.0 + spec.compute_frac + 1e-12);
            assert!((1.0 - p.coll_scale).abs() <= spec.coll_frac + 1e-12);
        }
    }

    #[test]
    fn group_restriction_pins_other_factors() {
        let s = PerturbationSampler::new(9, PerturbSpec::default()).only(ParamGroups::HOP_LAT);
        for i in 0..64 {
            let p = s.sample(i);
            assert_eq!(p.bw_scale, 1.0);
            assert_eq!(p.compute_scale, 1.0);
            assert_eq!(p.coll_scale, 1.0);
            assert_eq!(p.groups(), ParamGroups::HOP_LAT, "hop draw landed on exactly 1.0?");
        }
        // the restricted sampler's hop draw matches the unrestricted one
        let all = PerturbationSampler::new(9, PerturbSpec::default());
        for i in 0..64 {
            assert_eq!(s.sample(i).hop_scale, all.sample(i).hop_scale);
        }
    }
}
