//! Symbolic workload descriptors and their resolution to concrete costs.
//!
//! A [`Workload`] names *what* a task computes (a DGEMM of order n, a
//! STREAM triad over n elements, a stencil sweep, a chemistry evaluation…)
//! without fixing *how expensive* it is — that depends on the machine's
//! cache share and the kernel's achievable SIMD efficiency. Resolution to
//! a [`CostDesc`] (flops + DRAM traffic + efficiency factors) happens in
//! [`Workload::cost`], given the cache capacity available to the task.
//! The node model then applies the roofline.
//!
//! The traffic formulas are the standard I/O-complexity results: a blocked
//! DGEMM moves `O(n³/√C)` words, an out-of-cache FFT makes
//! `⌈log(n·16/C)⌉`-ish passes, STREAM moves a fixed number of bytes per
//! element including the write-allocate, etc. They are deliberately simple
//! — the paper's observations hinge on *which side of the roofline* each
//! kernel sits on, not on cycle-accurate traffic.

use serde::{Deserialize, Serialize};

/// Resolved cost of one task-local piece of work.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostDesc {
    /// Useful double-precision floating-point operations.
    pub flops: f64,
    /// Bytes that must move between DRAM and the chip.
    pub dram_bytes: f64,
    /// Fraction of peak per-cycle flops the kernel's instruction mix can
    /// issue (vectorization/FMA-pairing quality of the kernel+compiler).
    pub simd_eff: f64,
    /// Amdahl serial fraction when the task is threaded (OpenMP).
    pub serial_frac: f64,
    /// Whether the kernel is irregular application code (subject to the
    /// machine's `irregular_eff` in-order penalty) rather than a tuned
    /// library kernel.
    pub irregular: bool,
}

impl CostDesc {
    /// A pure-compute cost (no memory traffic).
    pub fn compute(flops: f64, simd_eff: f64) -> Self {
        CostDesc { flops, dram_bytes: 0.0, simd_eff, serial_frac: 0.0, irregular: false }
    }

    /// Sum of two costs executed back to back.
    pub fn then(self, other: CostDesc) -> CostDesc {
        let f = self.flops + other.flops;
        // Weighted efficiency so that total flop-time is preserved.
        let t_self = if self.simd_eff > 0.0 { self.flops / self.simd_eff } else { 0.0 };
        let t_other = if other.simd_eff > 0.0 { other.flops / other.simd_eff } else { 0.0 };
        let eff = if t_self + t_other > 0.0 { f / (t_self + t_other) } else { 1.0 };
        CostDesc {
            flops: f,
            dram_bytes: self.dram_bytes + other.dram_bytes,
            simd_eff: eff.clamp(0.0, 1.0),
            serial_frac: self.serial_frac.max(other.serial_frac),
            irregular: self.irregular || other.irregular,
        }
    }

    /// Scale the whole cost by a positive factor (e.g. "per timestep" ×
    /// steps).
    pub fn scaled(self, k: f64) -> CostDesc {
        CostDesc { flops: self.flops * k, dram_bytes: self.dram_bytes * k, ..self }
    }
}

/// What one MPI task computes locally. See module docs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Workload {
    /// Dense matrix multiply, C ← C + A·B with square order `n`
    /// (vendor BLAS: ESSL on BlueGene, ACML on the XT).
    Dgemm { n: u64 },
    /// LU trailing-matrix update of an `m×n` block with inner dimension
    /// `k` (the flop carrier of HPL).
    LuUpdate { m: u64, n: u64, k: u64 },
    /// STREAM copy: a[i] = b[i].
    StreamCopy { n: u64 },
    /// STREAM scale: a[i] = q*b[i].
    StreamScale { n: u64 },
    /// STREAM add: a[i] = b[i] + c[i].
    StreamAdd { n: u64 },
    /// STREAM triad: a[i] = b[i] + q*c[i].
    StreamTriad { n: u64 },
    /// Complex-to-complex 1-D FFT of `n` points (stock HPCC kernel, not
    /// the vendor library — per the paper's methodology).
    Fft1d { n: u64 },
    /// RandomAccess: `updates` read-modify-writes at random addresses in a
    /// `table_bytes` table.
    RandomAccess { updates: u64, table_bytes: u64 },
    /// Regular grid sweep: `points` points at `flops_per_point` flops and
    /// `bytes_per_point` DRAM bytes each (covers POP baroclinic, S3D
    /// derivatives, CAM dynamics, CG sparse ops).
    Stencil { points: u64, flops_per_point: f64, bytes_per_point: f64 },
    /// Pointwise chemistry / physics column work: compute-dominated,
    /// poorly vectorizable (S3D reaction rates, CAM physics).
    Chemistry { points: u64, flops_per_point: f64 },
    /// Short-range MD force evaluation over `pairs` interactions.
    MdForce { pairs: u64, flops_per_pair: f64 },
    /// Fully explicit cost, for calibration and tests.
    Custom { flops: f64, dram_bytes: f64, simd_eff: f64, serial_frac: f64 },
}

impl Workload {
    /// Resolve to a concrete cost given the task's available cache in
    /// bytes (private + its share of the node's last-level cache).
    pub fn cost(&self, cache_bytes: f64) -> CostDesc {
        let cache = cache_bytes.max(4.0 * 1024.0); // defensive floor: 4 KiB
        match *self {
            Workload::Dgemm { n } => {
                let n = n as f64;
                let flops = 2.0 * n * n * n;
                // Blocked matmul: block edge b = sqrt(C/(3*8)); each of the
                // n/b panel passes streams the n×n operand once.
                let b = (cache / 24.0).sqrt().max(8.0);
                let passes = (n / b).max(1.0);
                let dram = 8.0 * n * n * (2.0 * passes + 2.0);
                CostDesc { flops, dram_bytes: dram, simd_eff: 0.90, serial_frac: 0.02, irregular: false }
            }
            Workload::LuUpdate { m, n, k } => {
                let (m, n, k) = (m as f64, n as f64, k as f64);
                let flops = 2.0 * m * n * k;
                let b = (cache / 24.0).sqrt().max(8.0);
                let passes = (k / b).max(1.0);
                let dram = 8.0 * (m * n) * (passes + 2.0) + 8.0 * (m * k + k * n);
                // Slightly below straight DGEMM: pivoting and triangular solves.
                CostDesc { flops, dram_bytes: dram, simd_eff: 0.85, serial_frac: 0.04, irregular: false }
            }
            Workload::StreamCopy { n } | Workload::StreamScale { n } => {
                // read 8 + write 8 + write-allocate 8 per element
                let flops = if matches!(self, Workload::StreamScale { .. }) { n as f64 } else { 0.0 };
                CostDesc { flops, dram_bytes: 24.0 * n as f64, simd_eff: 1.0, serial_frac: 0.0, irregular: false }
            }
            Workload::StreamAdd { n } => {
                CostDesc { flops: n as f64, dram_bytes: 32.0 * n as f64, simd_eff: 1.0, serial_frac: 0.0, irregular: false }
            }
            Workload::StreamTriad { n } => {
                CostDesc { flops: 2.0 * n as f64, dram_bytes: 32.0 * n as f64, simd_eff: 1.0, serial_frac: 0.0, irregular: false }
            }
            Workload::Fft1d { n } => {
                let nf = n as f64;
                let flops = 5.0 * nf * nf.log2().max(1.0);
                let footprint = 16.0 * nf; // complex f64
                let passes = if footprint <= cache {
                    1.0
                } else {
                    // multi-pass out-of-cache FFT: each pass streams the
                    // dataset in and out
                    (footprint / cache).log2().ceil().max(1.0) + 1.0
                };
                let dram = 2.0 * footprint * passes;
                // stock (non-vendor) FFT: modest vectorization
                CostDesc { flops, dram_bytes: dram, simd_eff: 0.33, serial_frac: 0.05, irregular: false }
            }
            Workload::RandomAccess { updates, table_bytes } => {
                // Each update touches a random cache line; when the table
                // dwarfs the cache every update is a DRAM line round trip.
                let line = 64.0;
                let miss_frac = (1.0 - cache / table_bytes as f64).clamp(0.0, 1.0);
                let dram = updates as f64 * miss_frac * 2.0 * line;
                CostDesc { flops: 0.0, dram_bytes: dram, simd_eff: 1.0, serial_frac: 0.0, irregular: false }
            }
            Workload::Stencil { points, flops_per_point, bytes_per_point } => CostDesc {
                flops: points as f64 * flops_per_point,
                dram_bytes: points as f64 * bytes_per_point,
                simd_eff: 0.16,
                serial_frac: 0.03,
                irregular: true,
            },
            Workload::Chemistry { points, flops_per_point } => CostDesc {
                flops: points as f64 * flops_per_point,
                dram_bytes: points as f64 * 64.0, // state vector in/out
                simd_eff: 0.24,
                serial_frac: 0.02,
                irregular: true,
            },
            Workload::MdForce { pairs, flops_per_pair } => CostDesc {
                flops: pairs as f64 * flops_per_pair,
                dram_bytes: pairs as f64 * 24.0, // neighbor-list traffic
                simd_eff: 0.35,
                serial_frac: 0.03,
                irregular: true,
            },
            Workload::Custom { flops, dram_bytes, simd_eff, serial_frac } => {
                CostDesc { flops, dram_bytes, simd_eff, serial_frac, irregular: false }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MIB: f64 = (1u64 << 20) as f64;

    #[test]
    fn dgemm_is_compute_dominated_with_cache() {
        let c = Workload::Dgemm { n: 1000 }.cost(8.0 * MIB);
        // arithmetic intensity well above typical machine balance (~1 F/B)
        assert!(c.flops / c.dram_bytes > 10.0, "AI = {}", c.flops / c.dram_bytes);
        assert_eq!(c.flops, 2e9);
    }

    #[test]
    fn dgemm_traffic_grows_when_cache_shrinks() {
        let big = Workload::Dgemm { n: 2000 }.cost(8.0 * MIB);
        let small = Workload::Dgemm { n: 2000 }.cost(0.5 * MIB);
        assert!(small.dram_bytes > big.dram_bytes);
        assert_eq!(small.flops, big.flops);
    }

    #[test]
    fn stream_triad_bytes_per_element() {
        let c = Workload::StreamTriad { n: 1_000_000 }.cost(8.0 * MIB);
        assert_eq!(c.dram_bytes, 32e6);
        assert_eq!(c.flops, 2e6);
    }

    #[test]
    fn stream_variants_ordering() {
        let n = 1_000_000;
        let copy = Workload::StreamCopy { n }.cost(MIB);
        let add = Workload::StreamAdd { n }.cost(MIB);
        assert!(add.dram_bytes > copy.dram_bytes);
        assert_eq!(copy.flops, 0.0);
    }

    #[test]
    fn fft_goes_multipass_out_of_cache() {
        let incache = Workload::Fft1d { n: 1 << 14 }.cost(8.0 * MIB); // 256 KiB data
        let outcache = Workload::Fft1d { n: 1 << 24 }.cost(8.0 * MIB); // 256 MiB data
        let bytes_per_point_in = incache.dram_bytes / (1u64 << 14) as f64;
        let bytes_per_point_out = outcache.dram_bytes / (1u64 << 24) as f64;
        assert!(bytes_per_point_out > bytes_per_point_in * 2.0);
    }

    #[test]
    fn random_access_miss_fraction() {
        let big_table = Workload::RandomAccess { updates: 1000, table_bytes: 1 << 30 }.cost(8.0 * MIB);
        let tiny_table = Workload::RandomAccess { updates: 1000, table_bytes: 1 << 20 }.cost(8.0 * MIB);
        assert!(big_table.dram_bytes > 0.9 * 1000.0 * 128.0);
        assert_eq!(tiny_table.dram_bytes, 0.0); // fits in cache entirely
    }

    #[test]
    fn then_accumulates_and_preserves_flop_time() {
        let a = CostDesc::compute(1e9, 0.5);
        let b = CostDesc::compute(1e9, 1.0);
        let c = a.then(b);
        assert_eq!(c.flops, 2e9);
        // time at eff: 1e9/0.5 + 1e9/1.0 = 3e9 "effective units"
        assert!((c.flops / c.simd_eff - 3e9).abs() < 1.0);
    }

    #[test]
    fn scaled_multiplies_work() {
        let c = Workload::StreamTriad { n: 100 }.cost(MIB).scaled(10.0);
        assert_eq!(c.dram_bytes, 32_000.0);
        assert_eq!(c.flops, 2000.0);
    }

    #[test]
    fn chemistry_is_low_simd_compute() {
        let c = Workload::Chemistry { points: 1 << 20, flops_per_point: 5000.0 }.cost(8.0 * MIB);
        assert!(c.simd_eff < 0.5);
        assert!(c.flops / c.dram_bytes > 10.0);
    }

    #[test]
    fn defensive_cache_floor() {
        // A zero cache share must not divide by zero or go negative.
        let c = Workload::Dgemm { n: 64 }.cost(0.0);
        assert!(c.dram_bytes.is_finite() && c.dram_bytes > 0.0);
    }
}
