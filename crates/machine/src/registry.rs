//! The five studied machines, parameterized per the paper's Table 1, and
//! the two BG/P installations used for the experiments.
//!
//! A note on sources: the paper's Table 1 lists the BG/P tree bandwidth as
//! 1700 MB/s (vs 700 MB/s on BG/L) and the torus injection bandwidth as
//! bidirectional aggregates (5.1 GB/s for BG/P = 6 links × 425 MB/s × 2
//! directions). The XT4/QC node peak is listed as 16.8 GF/s in Table 1 but
//! Table 3 reports 260.2 TF peak for 30,976 cores = 8.4 GF/core = 33.6
//! GF/node, consistent with the text ("both … can produce four floating
//! point results per cycle") — we follow Table 3 / the text (4 flops/cycle
//! at 2.1 GHz) since the power analysis depends on it.

use crate::arch::*;
use hpcsim_engine::SimTime;
use serde::Serialize;

/// Build the machine description for `id`.
pub fn machine(id: MachineId) -> MachineSpec {
    match id {
        MachineId::BgL => bluegene_l(),
        MachineId::BgP => bluegene_p(),
        MachineId::Xt3 => xt3(),
        MachineId::Xt4Dc => xt4_dc(),
        MachineId::Xt4Qc => xt4_qc(),
    }
}

/// All five machines in Table 1 order.
pub fn all_machines() -> Vec<MachineSpec> {
    [MachineId::BgL, MachineId::BgP, MachineId::Xt3, MachineId::Xt4Dc, MachineId::Xt4Qc]
        .into_iter()
        .map(machine)
        .collect()
}

/// IBM BlueGene/L: 2× PPC440 @ 700 MHz, software-coherent L1, 4 MiB L3.
pub fn bluegene_l() -> MachineSpec {
    MachineSpec {
        id: MachineId::BgL,
        cores_per_node: 2,
        core: CoreArch {
            name: "PowerPC 440 + Double Hummer",
            clock_hz: 700e6,
            flops_per_cycle: 4.0,
            l1_data_kib: 32,
            line_bytes: 32,
            l2: L2Kind::PrefetchEngine { streams: 14 },
            mem_bw_core: 2.2e9,
            irregular_eff: 0.40,
        },
        coherence: CacheCoherence::Software,
        l3_shared_mib: Some(4.0),
        mem: MemorySpec {
            capacity_gib: 1.0, // 0.5–1 GB configurations; we model 1 GB
            bw_bytes: 5.6e9,
            stream_eff_single: 0.80,
            stream_eff_loaded: 0.78,
            latency: SimTime::from_ns(90),
        },
        nic: NicSpec {
            torus_link_bw: 175e6,
            torus_links: 6,
            injection_bw: 2.1e9, // Table 1 (bidirectional aggregate)
            tree_bw: Some(700e6),
            has_barrier_network: true,
            o_send: SimTime::from_us_f64(1.6),
            o_recv: SimTime::from_us_f64(1.6),
            per_hop: SimTime::from_ns(98),
            eager_threshold: 1024,
            route_diversity: 2.0,
        },
        packaging: Packaging { nodes_per_rack: 1024, compute_per_io_node: 64 },
        power: PowerSpec {
            node_static_w: 5.0,
            core_idle_w: 1.0,
            core_dyn_w: 2.2,
            mem_w: 3.0,
            nic_w: 1.5,
            rack_overhead_w: 1200.0,
            psu_efficiency: 0.92,
        },
    }
}

/// IBM BlueGene/P: 4× PPC450 @ 850 MHz, hardware-coherent, 8 MiB L3,
/// 13.6 GF/s and 13.6 GB/s per node — the paper's subject.
pub fn bluegene_p() -> MachineSpec {
    MachineSpec {
        id: MachineId::BgP,
        cores_per_node: 4,
        core: CoreArch {
            name: "PowerPC 450 + Double Hummer",
            clock_hz: 850e6,
            flops_per_cycle: 4.0,
            l1_data_kib: 32,
            line_bytes: 32,
            l2: L2Kind::PrefetchEngine { streams: 14 },
            mem_bw_core: 3.0e9,
            irregular_eff: 0.42,
        },
        coherence: CacheCoherence::Hardware,
        l3_shared_mib: Some(8.0),
        mem: MemorySpec {
            capacity_gib: 2.0,
            bw_bytes: 13.6e9,
            stream_eff_single: 0.82,
            stream_eff_loaded: 0.78,
            latency: SimTime::from_ns(85),
        },
        nic: NicSpec {
            torus_link_bw: 425e6,
            torus_links: 6,
            injection_bw: 5.1e9, // Table 1 (bidirectional aggregate)
            tree_bw: Some(1700e6),
            has_barrier_network: true,
            o_send: SimTime::from_us_f64(1.1),
            o_recv: SimTime::from_us_f64(1.1),
            per_hop: SimTime::from_ns(64),
            eager_threshold: 1200,
            route_diversity: 3.0,
        },
        packaging: Packaging { nodes_per_rack: 1024, compute_per_io_node: 64 },
        power: PowerSpec {
            node_static_w: 7.0,
            core_idle_w: 1.2,
            core_dyn_w: 2.3,
            mem_w: 5.0,
            nic_w: 2.0,
            rack_overhead_w: 1500.0,
            psu_efficiency: 0.93,
        },
    }
}

/// Cray XT3: 2× Opteron @ 2.6 GHz (2 flops/cycle), SeaStar, DDR-400.
pub fn xt3() -> MachineSpec {
    MachineSpec {
        id: MachineId::Xt3,
        cores_per_node: 2,
        core: CoreArch {
            name: "Opteron (dual-core, K8)",
            clock_hz: 2.6e9,
            flops_per_cycle: 2.0,
            l1_data_kib: 64,
            line_bytes: 64,
            l2: L2Kind::Cache { kib: 1024 },
            mem_bw_core: 4.4e9,
            irregular_eff: 1.0,
        },
        coherence: CacheCoherence::Hardware,
        l3_shared_mib: None,
        mem: MemorySpec {
            capacity_gib: 4.0,
            bw_bytes: 6.4e9,
            stream_eff_single: 0.68,
            stream_eff_loaded: 0.60,
            latency: SimTime::from_ns(95),
        },
        nic: NicSpec {
            torus_link_bw: 2.2e9, // SeaStar sustained per direction
            torus_links: 6,
            injection_bw: 6.4e9, // HyperTransport to NIC (Table 1)
            tree_bw: None,
            has_barrier_network: false,
            o_send: SimTime::from_us_f64(2.4),
            o_recv: SimTime::from_us_f64(2.4),
            per_hop: SimTime::from_ns(290),
            eager_threshold: 16 * 1024,
            route_diversity: 1.0,
        },
        packaging: Packaging { nodes_per_rack: 96, compute_per_io_node: 64 },
        power: PowerSpec {
            node_static_w: 25.0,
            core_idle_w: 10.0,
            core_dyn_w: 18.0,
            mem_w: 18.0,
            nic_w: 12.0,
            rack_overhead_w: 3500.0,
            psu_efficiency: 0.85,
        },
    }
}

/// Cray XT4 dual-core: XT3 cores with SeaStar2 and DDR2-667.
pub fn xt4_dc() -> MachineSpec {
    let mut m = xt3();
    m.id = MachineId::Xt4Dc;
    m.core.name = "Opteron (dual-core, K8, XT4)";
    m.core.mem_bw_core = 5.2e9;
    m.mem.bw_bytes = 10.6e9;
    m.mem.stream_eff_single = 0.62;
    m.mem.stream_eff_loaded = 0.55;
    m.mem.latency = SimTime::from_ns(90);
    m.nic.torus_link_bw = 3.8e9; // SeaStar2 sustained per direction
    m.nic.per_hop = SimTime::from_ns(250);
    // The paper's dual-core XT4 data were (partly) collected under the
    // Catamount lightweight kernel, whose MPI latency was well below
    // CNL's — reflected in lower per-message overheads than XT3/QC.
    m.nic.o_send = SimTime::from_us_f64(1.7);
    m.nic.o_recv = SimTime::from_us_f64(1.7);
    m
}

/// Cray XT4 quad-core: 4× Opteron "Barcelona" @ 2.1 GHz (4 flops/cycle),
/// 512 KiB private L2 + 2 MiB shared L3, DDR2-800, SeaStar2.
pub fn xt4_qc() -> MachineSpec {
    MachineSpec {
        id: MachineId::Xt4Qc,
        cores_per_node: 4,
        core: CoreArch {
            name: "Opteron (quad-core, Barcelona)",
            clock_hz: 2.1e9,
            flops_per_cycle: 4.0,
            l1_data_kib: 64,
            line_bytes: 64,
            l2: L2Kind::Cache { kib: 512 },
            mem_bw_core: 5.5e9,
            irregular_eff: 0.55,
        },
        coherence: CacheCoherence::Hardware,
        l3_shared_mib: Some(2.0),
        mem: MemorySpec {
            capacity_gib: 8.0,
            bw_bytes: 12.8e9,
            stream_eff_single: 0.55,
            stream_eff_loaded: 0.62,
            latency: SimTime::from_ns(105),
        },
        nic: NicSpec {
            torus_link_bw: 3.8e9,
            torus_links: 6,
            injection_bw: 6.4e9,
            tree_bw: None,
            has_barrier_network: false,
            o_send: SimTime::from_us_f64(2.0),
            o_recv: SimTime::from_us_f64(2.0),
            per_hop: SimTime::from_ns(250),
            eager_threshold: 16 * 1024,
            route_diversity: 1.0,
        },
        packaging: Packaging { nodes_per_rack: 96, compute_per_io_node: 64 },
        power: PowerSpec {
            node_static_w: 30.0,
            core_idle_w: 5.0,
            core_dyn_w: 15.0,
            mem_w: 25.0,
            nic_w: 12.0,
            rack_overhead_w: 3500.0,
            psu_efficiency: 0.87,
        },
    }
}

/// A named installation of a machine: racks, node count, and site.
/// Captures "Eugene" (ORNL, 2 racks), "Intrepid" (ANL, 40 racks) and the
/// ORNL XT "Jaguar" partitions.
#[derive(Debug, Clone, Serialize)]
pub struct Installation {
    /// Site/system name.
    pub name: &'static str,
    /// The machine type installed.
    pub machine: MachineSpec,
    /// Number of racks.
    pub racks: u32,
}

impl Installation {
    /// ORNL "Eugene": 2 racks of BG/P, 2048 nodes, 8192 cores.
    pub fn eugene() -> Self {
        Installation { name: "Eugene (ORNL BG/P)", machine: bluegene_p(), racks: 2 }
    }

    /// ANL "Intrepid": 40 racks of BG/P.
    pub fn intrepid() -> Self {
        Installation { name: "Intrepid (ANL BG/P)", machine: bluegene_p(), racks: 40 }
    }

    /// ORNL "Jaguar" in its 2008 quad-core configuration (7,832 nodes /
    /// 31,328 cores class; the paper's power table uses 30,976 cores).
    pub fn jaguar_qc() -> Self {
        Installation { name: "Jaguar (ORNL XT4/QC)", machine: xt4_qc(), racks: 84 }
    }

    /// Total compute nodes.
    pub fn nodes(&self) -> u64 {
        self.racks as u64 * self.machine.packaging.nodes_per_rack as u64
    }

    /// Total compute cores.
    pub fn cores(&self) -> u64 {
        self.nodes() * self.machine.cores_per_node as u64
    }

    /// Aggregate peak flop rate.
    pub fn peak_flops(&self) -> f64 {
        self.nodes() as f64 * self.machine.node_peak_flops()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Table 1 row: peak performance per node.
    #[test]
    fn node_peaks_match_table1() {
        assert!((bluegene_l().node_peak_flops() - 5.6e9).abs() < 1e6);
        assert!((bluegene_p().node_peak_flops() - 13.6e9).abs() < 1e6);
        assert!((xt3().node_peak_flops() - 10.4e9).abs() < 1e6);
        assert!((xt4_dc().node_peak_flops() - 10.4e9).abs() < 1e6);
        // Table 3-consistent value (see module docs re the 16.8 discrepancy).
        assert!((xt4_qc().node_peak_flops() - 33.6e9).abs() < 1e6);
    }

    /// Paper §I.A: 3.4 GF/s per core, 13.6 GF/s per BG/P compute node.
    #[test]
    fn bgp_core_peak_is_3_4_gf() {
        assert!((bluegene_p().core_peak_flops() - 3.4e9).abs() < 1e3);
    }

    /// Table 1 row: main memory bandwidth.
    #[test]
    fn memory_bandwidths_match_table1() {
        assert_eq!(bluegene_l().mem.bw_bytes, 5.6e9);
        assert_eq!(bluegene_p().mem.bw_bytes, 13.6e9);
        assert_eq!(xt3().mem.bw_bytes, 6.4e9);
        assert_eq!(xt4_dc().mem.bw_bytes, 10.6e9);
        assert_eq!(xt4_qc().mem.bw_bytes, 12.8e9);
    }

    /// §I.A density claim: 4096 cores/rack on BG/P, 192 on XT3, 384 on XT4/QC.
    #[test]
    fn rack_density_matches_prose() {
        assert_eq!(bluegene_p().cores_per_rack(), 4096);
        assert_eq!(xt3().cores_per_rack(), 192);
        assert_eq!(xt4_qc().cores_per_rack(), 384);
    }

    /// §I.A: torus link 425 MB/s per direction, 5.1 GB/s bidirectional/node.
    #[test]
    fn bgp_torus_bandwidth() {
        let m = bluegene_p();
        assert_eq!(m.nic.torus_link_bw, 425e6);
        let bidir = m.nic.torus_link_bw * m.nic.torus_links as f64 * 2.0;
        assert!((bidir - 5.1e9).abs() < 1e6);
        assert_eq!(m.nic.injection_bw, 5.1e9);
    }

    /// Tree network exists only on the BlueGene family.
    #[test]
    fn tree_network_presence() {
        assert!(bluegene_l().nic.tree_bw.is_some());
        assert!(bluegene_p().nic.tree_bw.is_some());
        assert!(xt3().nic.tree_bw.is_none());
        assert!(xt4_qc().nic.tree_bw.is_none());
        assert!(bluegene_p().nic.has_barrier_network);
        assert!(!xt4_qc().nic.has_barrier_network);
    }

    /// Coherence column: only BG/L is software-coherent.
    #[test]
    fn coherence_column() {
        assert_eq!(bluegene_l().coherence, CacheCoherence::Software);
        for m in [bluegene_p(), xt3(), xt4_dc(), xt4_qc()] {
            assert_eq!(m.coherence, CacheCoherence::Hardware);
        }
    }

    /// BG/P's low-latency design: smaller per-message overhead and per-hop
    /// cost than any XT — the paper's "BG/P strength is low latency".
    #[test]
    fn bgp_has_lowest_latency_parameters() {
        let bgp = bluegene_p();
        for xt in [xt3(), xt4_dc(), xt4_qc()] {
            assert!(bgp.nic.o_send < xt.nic.o_send);
            assert!(bgp.nic.per_hop < xt.nic.per_hop);
            // and the converse: XT links are fatter (bandwidth strength)
            assert!(xt.nic.torus_link_bw > bgp.nic.torus_link_bw);
        }
    }

    /// Installations: Eugene = 2048 nodes / 8192 cores; Intrepid 40 racks.
    #[test]
    fn installations_match_paper() {
        let e = Installation::eugene();
        assert_eq!(e.nodes(), 2048);
        assert_eq!(e.cores(), 8192);
        let i = Installation::intrepid();
        assert_eq!(i.cores(), 163_840);
        // 72-rack BG/P would be ~1 PF/s (paper §I.A)
        let pf = Installation { name: "petaflop", machine: bluegene_p(), racks: 72 };
        assert!((pf.peak_flops() - 1.002e15).abs() < 1e13);
    }

    #[test]
    fn all_machines_returns_five_unique() {
        let ms = all_machines();
        assert_eq!(ms.len(), 5);
        let mut ids: Vec<_> = ms.iter().map(|m| m.id).collect();
        ids.dedup();
        assert_eq!(ids.len(), 5);
    }

    /// Memory per node column (GB): 1 / 2 / 4 / 4 / 8.
    #[test]
    fn memory_capacity_column() {
        assert_eq!(bluegene_l().mem.capacity_gib, 1.0);
        assert_eq!(bluegene_p().mem.capacity_gib, 2.0);
        assert_eq!(xt3().mem.capacity_gib, 4.0);
        assert_eq!(xt4_dc().mem.capacity_gib, 4.0);
        assert_eq!(xt4_qc().mem.capacity_gib, 8.0);
    }
}
