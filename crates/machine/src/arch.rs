//! Static machine descriptions — the contents of the paper's Table 1 plus
//! the power parameters needed for Table 3.
//!
//! Everything here is plain data; behaviour lives in [`crate::node_model`]
//! and in the `hpcsim-net` / `hpcsim-power` crates.

use hpcsim_engine::SimTime;
use serde::{Deserialize, Serialize};

/// Identifier for one of the studied systems.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MachineId {
    /// IBM BlueGene/L (the predecessor; appears in Fig 7c and Fig 8).
    BgL,
    /// IBM BlueGene/P — the paper's subject.
    BgP,
    /// Cray XT3 (dual-core Opteron, SeaStar).
    Xt3,
    /// Cray XT4 dual-core (SeaStar2, DDR2-667).
    Xt4Dc,
    /// Cray XT4 quad-core Barcelona (SeaStar2, DDR2-800).
    Xt4Qc,
}

impl MachineId {
    /// Short display label used in tables and figure legends.
    pub fn label(self) -> &'static str {
        match self {
            MachineId::BgL => "BG/L",
            MachineId::BgP => "BG/P",
            MachineId::Xt3 => "XT3",
            MachineId::Xt4Dc => "XT4/DC",
            MachineId::Xt4Qc => "XT4/QC",
        }
    }

    /// True for members of the BlueGene family (tree + barrier networks).
    pub fn is_bluegene(self) -> bool {
        matches!(self, MachineId::BgL | MachineId::BgP)
    }
}

impl std::fmt::Display for MachineId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// L1 cache coherence regime. BG/L's L1 was not coherent (software managed);
/// BG/P made the node a conventional cache-coherent SMP, which is what
/// enables its SMP/DUAL OpenMP modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CacheCoherence {
    /// Software-managed coherence (BG/L).
    Software,
    /// Hardware coherence (everything else in the study).
    Hardware,
}

/// The second cache level differs qualitatively between the families:
/// BlueGene has a small stream-prefetch engine, the Opterons a real cache.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum L2Kind {
    /// BlueGene "L2": a prefetch engine tracking N sequential streams.
    /// Effective at hiding DRAM latency for streaming access, useless for
    /// irregular access.
    PrefetchEngine {
        /// Number of concurrent sequential streams tracked.
        streams: u32,
    },
    /// Conventional private L2 cache of the given capacity.
    Cache {
        /// Capacity in KiB.
        kib: u64,
    },
}

/// Per-core microarchitecture parameters.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct CoreArch {
    /// Marketing/microarchitecture name.
    pub name: &'static str,
    /// Core clock in Hz.
    pub clock_hz: f64,
    /// Peak double-precision flops per cycle (FMA pipes × 2).
    /// BG/P "Double Hummer": 4. Opteron Barcelona: 4. Older Opterons: 2.
    pub flops_per_cycle: f64,
    /// Private L1 data cache in KiB.
    pub l1_data_kib: u64,
    /// L1 cache line in bytes.
    pub line_bytes: u64,
    /// Second-level structure.
    pub l2: L2Kind,
    /// Maximum DRAM bandwidth one core can extract on a streaming kernel,
    /// bytes/s. A slow in-order core (PPC450) cannot saturate the node's
    /// memory system alone — which is why BG/P's STREAM declines little
    /// from single-process to embarrassingly-parallel mode while the
    /// Opteron's declines a lot (paper §II.A.1).
    pub mem_bw_core: f64,
    /// Efficiency multiplier for *irregular* application code (stencils
    /// with branches, chemistry, force loops) relative to tuned kernels.
    /// In-order cores (PPC450) lose more to dependency stalls than the
    /// out-of-order Opteron — this is why the paper's application ratios
    /// (XT4 3.6× on POP, ~3× on CAM) exceed the raw clock ratio of 2.47×.
    pub irregular_eff: f64,
}

impl CoreArch {
    /// Peak double-precision flop rate of one core.
    pub fn peak_flops(&self) -> f64 {
        self.clock_hz * self.flops_per_cycle
    }
}

/// Node memory system.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemorySpec {
    /// Capacity per node in GiB.
    pub capacity_gib: f64,
    /// Peak DRAM bandwidth per node, bytes/s.
    pub bw_bytes: f64,
    /// Fraction of peak bandwidth a single streaming task achieves
    /// (STREAM triad, one core).
    pub stream_eff_single: f64,
    /// Fraction of peak bandwidth achieved with all cores streaming
    /// (STREAM triad, embarrassingly-parallel mode). The paper observes
    /// BG/P declines *less* from single to loaded than the XT.
    pub stream_eff_loaded: f64,
    /// Main-memory access latency.
    pub latency: SimTime,
}

impl MemorySpec {
    /// Capacity in bytes.
    pub fn capacity_bytes(&self) -> f64 {
        self.capacity_gib * (1u64 << 30) as f64
    }
}

/// Network-interface characteristics stored with the machine (the network
/// *model* lives in `hpcsim-net`; these are the Table 1 hardware numbers).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NicSpec {
    /// Torus/mesh link bandwidth per direction, bytes/s
    /// (BG/P: 425 MB/s; XT SeaStar2: ~3.8 GB/s sustained of 6.4 peak).
    pub torus_link_bw: f64,
    /// Number of torus links per node (6 for a 3-D torus).
    pub torus_links: u32,
    /// Injection bandwidth from a node into the torus, bytes/s
    /// (Table 1 row "Torus Injection Bandwidth").
    pub injection_bw: f64,
    /// Dedicated collective-tree link bandwidth per direction, bytes/s
    /// (`None` on machines without a tree network).
    pub tree_bw: Option<f64>,
    /// Whether a dedicated global barrier/interrupt network exists.
    pub has_barrier_network: bool,
    /// MPI send overhead (software, per message).
    pub o_send: SimTime,
    /// MPI receive overhead (software, per message).
    pub o_recv: SimTime,
    /// Per-hop router latency on the torus.
    pub per_hop: SimTime,
    /// Eager→rendezvous protocol switch point in bytes.
    pub eager_threshold: u64,
    /// Effective number of alternative routes the router can spread a
    /// flow across (adaptive routing on BlueGene tori; 1.0 for the
    /// deterministic SeaStar).
    pub route_diversity: f64,
}

/// Per-component power-draw parameters, calibrated against the paper's
/// Table 3 operating points (see `hpcsim-power` calibration tests).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerSpec {
    /// Node baseline: SoC uncore / chipset / board, watts.
    pub node_static_w: f64,
    /// Per-core draw when idle/stalled, watts.
    pub core_idle_w: f64,
    /// Additional per-core draw at full utilization, watts.
    pub core_dyn_w: f64,
    /// Memory subsystem per node at typical activity, watts.
    pub mem_w: f64,
    /// NIC/router per node, watts.
    pub nic_w: f64,
    /// Per-rack overhead (fans, link cards, service nodes), watts.
    pub rack_overhead_w: f64,
    /// AC→DC conversion efficiency (0, 1].
    pub psu_efficiency: f64,
}

/// Packaging: how many nodes share a rack (drives density and rack
/// overhead amortization — 1024 for BG/P vs 96 for the XT4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Packaging {
    /// Compute nodes per rack.
    pub nodes_per_rack: u32,
    /// Compute-node to I/O-node ratio (64:1 on the studied BG/P racks).
    pub compute_per_io_node: u32,
}

/// A complete machine description: one column of Table 1.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct MachineSpec {
    /// Which system this is.
    pub id: MachineId,
    /// Cores per node.
    pub cores_per_node: u32,
    /// Per-core parameters.
    pub core: CoreArch,
    /// L1 coherence regime.
    pub coherence: CacheCoherence,
    /// Shared last-level cache in MiB (`None` when the per-core L2 is the
    /// last level, as on XT3/XT4-DC).
    pub l3_shared_mib: Option<f64>,
    /// Memory system.
    pub mem: MemorySpec,
    /// Network endpoint hardware.
    pub nic: NicSpec,
    /// Packaging / density.
    pub packaging: Packaging,
    /// Power model parameters.
    pub power: PowerSpec,
}

impl MachineSpec {
    /// Peak double-precision flop rate per node (Table 1 row
    /// "Peak Performance").
    pub fn node_peak_flops(&self) -> f64 {
        self.core.peak_flops() * self.cores_per_node as f64
    }

    /// Peak flop rate per core.
    pub fn core_peak_flops(&self) -> f64 {
        self.core.peak_flops()
    }

    /// Shared last-level cache in bytes (zero when absent).
    pub fn l3_bytes(&self) -> f64 {
        self.l3_shared_mib.map_or(0.0, |m| m * (1u64 << 20) as f64)
    }

    /// Total private cache per core in bytes (L1 + private L2 if a cache).
    pub fn private_cache_bytes(&self) -> f64 {
        let l1 = (self.core.l1_data_kib * 1024) as f64;
        match self.core.l2 {
            L2Kind::Cache { kib } => l1 + (kib * 1024) as f64,
            L2Kind::PrefetchEngine { .. } => l1,
        }
    }

    /// Cores per rack (the paper's density argument: 4096 on BG/P vs 384
    /// on XT4/QC).
    pub fn cores_per_rack(&self) -> u32 {
        self.packaging.nodes_per_rack * self.cores_per_node
    }

    /// True when the wire model's contended path collapses to the
    /// contention-free one (infinite route diversity): sharing a link
    /// never slows a flow down. On such a machine the DAG sweep engine
    /// is exact against event-queue replay.
    pub fn contention_flat(&self) -> bool {
        self.nic.route_diversity.is_infinite()
    }

    /// A variant of this machine with idealized adaptive routing
    /// (infinite route diversity), so link sharing is free and
    /// [`MachineSpec::contention_flat`] holds. Used by fast-sweep
    /// batteries and by tests that pin DAG-vs-replay exactness.
    pub fn with_flat_contention(mut self) -> Self {
        self.nic.route_diversity = f64::INFINITY;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_core() -> CoreArch {
        CoreArch {
            name: "toy",
            clock_hz: 1e9,
            flops_per_cycle: 2.0,
            l1_data_kib: 32,
            line_bytes: 64,
            l2: L2Kind::Cache { kib: 512 },
            mem_bw_core: 4e9,
            irregular_eff: 1.0,
        }
    }

    #[test]
    fn core_peak_is_clock_times_width() {
        assert_eq!(toy_core().peak_flops(), 2e9);
    }

    #[test]
    fn private_cache_accounts_for_l2_kind() {
        let mut spec = MachineSpec {
            id: MachineId::Xt3,
            cores_per_node: 2,
            core: toy_core(),
            coherence: CacheCoherence::Hardware,
            l3_shared_mib: None,
            mem: MemorySpec {
                capacity_gib: 4.0,
                bw_bytes: 6.4e9,
                stream_eff_single: 0.5,
                stream_eff_loaded: 0.6,
                latency: SimTime::from_ns(100),
            },
            nic: NicSpec {
                torus_link_bw: 1e9,
                torus_links: 6,
                injection_bw: 2e9,
                tree_bw: None,
                has_barrier_network: false,
                o_send: SimTime::from_us(1),
                o_recv: SimTime::from_us(1),
                per_hop: SimTime::from_ns(50),
                eager_threshold: 1024,
                route_diversity: 1.0,
            },
            packaging: Packaging { nodes_per_rack: 96, compute_per_io_node: 64 },
            power: PowerSpec {
                node_static_w: 10.0,
                core_idle_w: 2.0,
                core_dyn_w: 5.0,
                mem_w: 5.0,
                nic_w: 5.0,
                rack_overhead_w: 1000.0,
                psu_efficiency: 0.9,
            },
        };
        assert_eq!(spec.private_cache_bytes(), (32 + 512) as f64 * 1024.0);
        spec.core.l2 = L2Kind::PrefetchEngine { streams: 14 };
        assert_eq!(spec.private_cache_bytes(), 32.0 * 1024.0);
        assert_eq!(spec.node_peak_flops(), 4e9);
        assert_eq!(spec.l3_bytes(), 0.0);
        assert_eq!(spec.cores_per_rack(), 192);
    }

    #[test]
    fn memory_capacity_is_binary_gib() {
        let mem = MemorySpec {
            capacity_gib: 2.0,
            bw_bytes: 13.6e9,
            stream_eff_single: 0.8,
            stream_eff_loaded: 0.8,
            latency: SimTime::from_ns(80),
        };
        assert_eq!(mem.capacity_bytes(), 2.0 * 1073741824.0);
    }

    #[test]
    fn machine_id_labels() {
        assert_eq!(MachineId::BgP.label(), "BG/P");
        assert_eq!(MachineId::Xt4Qc.to_string(), "XT4/QC");
        assert!(MachineId::BgL.is_bluegene());
        assert!(!MachineId::Xt3.is_bluegene());
    }
}
