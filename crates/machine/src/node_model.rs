//! The node performance model: a roofline with explicit resource sharing.
//!
//! Given a [`Workload`], an [`ExecMode`] and a thread count, the model
//! computes how long one MPI task needs for its local work on a given
//! machine:
//!
//! ```text
//! t = max( flops / F_eff , dram_bytes / B_eff )
//! F_eff = threads_speedup(t, serial_frac) · core_peak · simd_eff
//! B_eff = min( threads · core_bw_cap , node_bw · stream_eff / tasks )
//! ```
//!
//! The two branches of the `max` are exactly the paper's two stories:
//! DGEMM/HPL live on the compute branch, where the XT's 2.1–2.6 GHz
//! Opterons beat the 850 MHz PPC450 by the clock ratio; STREAM and the
//! barotropic solver live on the bandwidth branch, where BG/P's balanced
//! memory system keeps it competitive.

use crate::arch::MachineSpec;
use crate::cost::{CostDesc, Workload};
use crate::exec::ExecMode;
use hpcsim_engine::SimTime;

/// Performance model for one machine's compute node.
#[derive(Debug, Clone)]
pub struct NodeModel {
    spec: MachineSpec,
}

impl NodeModel {
    /// Build a model for `spec`.
    pub fn new(spec: MachineSpec) -> Self {
        NodeModel { spec }
    }

    /// The underlying machine description.
    pub fn spec(&self) -> &MachineSpec {
        &self.spec
    }

    /// Cache available to one task: its private caches plus an even share
    /// of the shared last-level cache.
    pub fn cache_per_task(&self, mode: ExecMode) -> f64 {
        let tasks = mode.tasks_per_node(self.spec.cores_per_node) as f64;
        self.spec.private_cache_bytes() + self.spec.l3_bytes() / tasks
    }

    /// Amdahl speedup for `threads` threads with serial fraction `s`.
    fn thread_speedup(threads: u32, s: f64) -> f64 {
        let t = threads.max(1) as f64;
        1.0 / (s + (1.0 - s) / t)
    }

    /// Effective flop rate of one task using `threads` threads on a kernel
    /// with the given SIMD efficiency and serial fraction.
    pub fn flop_rate(&self, threads: u32, simd_eff: f64, serial_frac: f64) -> f64 {
        self.spec.core_peak_flops() * simd_eff * Self::thread_speedup(threads, serial_frac)
    }

    /// Effective DRAM bandwidth available to one task.
    ///
    /// `threads` is the task's thread count; the number of *active cores
    /// on the node* is `tasks × threads`, which selects between the
    /// lightly-loaded and fully-loaded memory efficiencies.
    pub fn mem_bw_per_task(&self, mode: ExecMode, threads: u32) -> f64 {
        let tasks = mode.tasks_per_node(self.spec.cores_per_node) as f64;
        // A t-threaded task can always choose to stream from fewer
        // threads, so its bandwidth is the best over thread subsets —
        // which keeps bandwidth monotone in the thread count even when
        // loaded efficiency is below single-stream efficiency.
        let bw_for = |active_threads: f64| -> f64 {
            let active_cores = tasks * active_threads;
            let eff = if active_cores <= 1.0 {
                self.spec.mem.stream_eff_single
            } else {
                self.spec.mem.stream_eff_loaded
            };
            let node_share = self.spec.mem.bw_bytes * eff / tasks;
            let core_cap = self.spec.core.mem_bw_core * active_threads;
            node_share.min(core_cap)
        };
        bw_for(1.0).max(bw_for(threads.max(1) as f64))
    }

    /// Time for one task to execute `cost` (already resolved).
    pub fn time_for_cost(&self, cost: &CostDesc, mode: ExecMode, threads: u32) -> SimTime {
        let threads = threads.clamp(1, mode.max_threads_per_task(self.spec.cores_per_node));
        let irr = if cost.irregular { self.spec.core.irregular_eff } else { 1.0 };
        let t_flops = if cost.flops > 0.0 {
            cost.flops
                / self.flop_rate(threads, (cost.simd_eff * irr).max(1e-3), cost.serial_frac)
        } else {
            0.0
        };
        let t_mem = if cost.dram_bytes > 0.0 {
            cost.dram_bytes / self.mem_bw_per_task(mode, threads)
        } else {
            0.0
        };
        SimTime::from_secs(t_flops.max(t_mem))
    }

    /// Time for one task to execute `workload` in `mode` with `threads`
    /// OpenMP threads.
    pub fn time(&self, workload: &Workload, mode: ExecMode, threads: u32) -> SimTime {
        let cost = workload.cost(self.cache_per_task(mode));
        self.time_for_cost(&cost, mode, threads)
    }

    /// Sustained flop rate for `workload` (flops / time); zero for
    /// flop-free workloads.
    pub fn sustained_flops(&self, workload: &Workload, mode: ExecMode, threads: u32) -> f64 {
        let cost = workload.cost(self.cache_per_task(mode));
        let t = self.time_for_cost(&cost, mode, threads).as_secs();
        if t <= 0.0 {
            0.0
        } else {
            cost.flops / t
        }
    }

    /// Sustained DRAM bandwidth for `workload` (bytes / time).
    pub fn sustained_bandwidth(&self, workload: &Workload, mode: ExecMode, threads: u32) -> f64 {
        let cost = workload.cost(self.cache_per_task(mode));
        let t = self.time_for_cost(&cost, mode, threads).as_secs();
        if t <= 0.0 {
            0.0
        } else {
            cost.dram_bytes / t
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{bluegene_p, xt4_qc};

    fn bgp() -> NodeModel {
        NodeModel::new(bluegene_p())
    }
    fn qc() -> NodeModel {
        NodeModel::new(xt4_qc())
    }

    /// DGEMM per task in VN mode: BG/P ≈ 0.9·3.4 GF, XT4/QC ≈ 0.9·8.4 GF.
    /// The paper: "the BG/P's lower clock rate [is] the likely reason for
    /// its smaller processing rate on the DGEMM".
    #[test]
    fn dgemm_rates_follow_clock_ratio() {
        let w = Workload::Dgemm { n: 2000 };
        let r_bgp = bgp().sustained_flops(&w, ExecMode::Vn, 1);
        let r_qc = qc().sustained_flops(&w, ExecMode::Vn, 1);
        assert!(r_bgp > 2.7e9 && r_bgp < 3.2e9, "BG/P DGEMM {r_bgp:.3e}");
        assert!(r_qc > 6.5e9 && r_qc < 8.0e9, "QC DGEMM {r_qc:.3e}");
        let ratio = r_qc / r_bgp;
        assert!(ratio > 2.0 && ratio < 2.9, "clock-driven ratio {ratio}");
    }

    /// STREAM triad, embarrassingly parallel (all cores): BG/P per-task
    /// bandwidth must EXCEED the XT4/QC's — the paper's §II.A.1 surprise.
    #[test]
    fn stream_ep_bgp_beats_qc() {
        let w = Workload::StreamTriad { n: 2_000_000 };
        let b_bgp = bgp().sustained_bandwidth(&w, ExecMode::Vn, 1);
        let b_qc = qc().sustained_bandwidth(&w, ExecMode::Vn, 1);
        assert!(b_bgp > b_qc, "BG/P {b_bgp:.3e} vs QC {b_qc:.3e}");
        // and in plausible absolute ranges (GB/s per task)
        assert!(b_bgp > 2.2e9 && b_bgp < 3.2e9);
        assert!(b_qc > 1.5e9 && b_qc < 2.4e9);
    }

    /// Single-process STREAM declines less on BG/P than on the XT when all
    /// cores become active (the core-bandwidth cap at work).
    #[test]
    fn stream_decline_single_to_ep() {
        let w = Workload::StreamTriad { n: 2_000_000 };
        let decline = |m: &NodeModel| {
            let single = m.sustained_bandwidth(&w, ExecMode::Smp, 1);
            let ep = m.sustained_bandwidth(&w, ExecMode::Vn, 1);
            single / ep
        };
        let d_bgp = decline(&bgp());
        let d_qc = decline(&qc());
        assert!(d_bgp < d_qc, "BG/P decline {d_bgp:.2} vs QC {d_qc:.2}");
        assert!(d_bgp < 1.5, "BG/P nearly flat, got {d_bgp:.2}");
        assert!(d_qc > 2.0, "QC declines hard, got {d_qc:.2}");
    }

    /// VN mode quarters the L3 share on BG/P.
    #[test]
    fn cache_share_by_mode() {
        let m = bgp();
        let smp = m.cache_per_task(ExecMode::Smp);
        let vn = m.cache_per_task(ExecMode::Vn);
        let l3 = 8.0 * 1024.0 * 1024.0;
        let l1 = 32.0 * 1024.0;
        assert_eq!(smp, l1 + l3);
        assert_eq!(vn, l1 + l3 / 4.0);
    }

    /// OpenMP threading: 4 threads in SMP mode approach but do not reach
    /// 4× one VN task for a slightly-serial kernel.
    #[test]
    fn openmp_speedup_bounded_by_amdahl() {
        let m = bgp();
        let w = Workload::Chemistry { points: 1 << 20, flops_per_point: 1000.0 };
        let t1 = m.time(&w, ExecMode::Smp, 1).as_secs();
        let t4 = m.time(&w, ExecMode::Smp, 4).as_secs();
        let speedup = t1 / t4;
        assert!(speedup > 3.0 && speedup < 4.0, "speedup {speedup}");
    }

    /// Thread counts are clamped to the mode's limit: VN tasks cannot
    /// thread.
    #[test]
    fn threads_clamped_by_mode() {
        let m = bgp();
        let w = Workload::Dgemm { n: 500 };
        assert_eq!(m.time(&w, ExecMode::Vn, 4), m.time(&w, ExecMode::Vn, 1));
        assert_eq!(m.time(&w, ExecMode::Dual, 4), m.time(&w, ExecMode::Dual, 2));
    }

    /// Zero-flop workloads report zero sustained flops, not NaN.
    #[test]
    fn flop_free_workload_is_finite() {
        let m = bgp();
        let w = Workload::StreamCopy { n: 1000 };
        assert_eq!(m.sustained_flops(&w, ExecMode::Vn, 1), 0.0);
        assert!(m.time(&w, ExecMode::Vn, 1) > SimTime::ZERO);
    }

    /// The roofline's compute branch: a pure-compute workload's time is
    /// inversely proportional to SIMD efficiency.
    #[test]
    fn compute_branch_scales_with_simd_eff() {
        let m = qc();
        let hi = Workload::Custom { flops: 1e9, dram_bytes: 0.0, simd_eff: 1.0, serial_frac: 0.0 };
        let lo = Workload::Custom { flops: 1e9, dram_bytes: 0.0, simd_eff: 0.25, serial_frac: 0.0 };
        let r = m.time(&lo, ExecMode::Vn, 1).as_secs() / m.time(&hi, ExecMode::Vn, 1).as_secs();
        assert!((r - 4.0).abs() < 1e-6);
    }

    /// Memory-bound workload time halves when the task count halves
    /// (DUAL vs VN on the bandwidth branch).
    #[test]
    fn bandwidth_branch_scales_with_tasks() {
        let m = qc();
        let w = Workload::StreamTriad { n: 10_000_000 };
        let t_vn = m.time(&w, ExecMode::Vn, 1).as_secs();
        let t_dual = m.time(&w, ExecMode::Dual, 1).as_secs();
        let r = t_vn / t_dual;
        assert!((r - 2.0).abs() < 0.2, "VN/DUAL ratio {r}");
    }
}
