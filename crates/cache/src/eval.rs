//! Spec-driven evaluation: what a tier-1 miss actually runs.
//!
//! One entry point, [`evaluate_in`], turns a [`ScenarioSpec`] into its
//! result vector through the cache:
//!
//! 1. tier-1 lookup on the spec hash — a hit returns immediately;
//! 2. for trace-replayable programs (HALO, MD), tier-2 lookup on the
//!    program sub-hash — a hit replays the shared trace, a miss records
//!    it once for everyone;
//! 3. the point is priced with exactly the same code path the direct
//!    entry points use (replay, or a DAG critical-path pass where the
//!    process-global [`SweepEngine`] selects it *and* it is provably
//!    exact), so cached and uncached runs are bit-identical.
//!
//! The result-vector layout per program is part of the store format:
//!
//! | program        | values                                              |
//! |----------------|-----------------------------------------------------|
//! | halo           | `[seconds_per_exchange]`                            |
//! | md             | `[seconds_per_step, ns_per_day]`                    |
//! | hpl            | `[seconds, gflops, efficiency]`                     |
//! | imb-allreduce  | `[usec]`                                            |
//! | pop            | `[syd, baroclinic_s, barrier_s, barotropic_s]`      |

use crate::spec::{ProgramSpec, ScenarioSpec};
use crate::store::ScenarioCache;
use hpcsim_apps as apps;
use hpcsim_faults::FaultPlan;
use hpcsim_hpcc as hpcc;
use hpcsim_mpi::{SweepEngine, TraceDag};
use std::sync::Arc;

/// Why a scenario could not be evaluated (today: a fault-induced stall;
/// the diagnostic is the replay engine's, verbatim).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvalError {
    /// Human-readable diagnosis.
    pub message: String,
}

impl std::fmt::Display for EvalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for EvalError {}

/// Evaluate `spec` through `cache` (both tiers + in-flight dedupe).
/// Returns the program's result vector (layout in the module docs).
pub fn evaluate_in(
    cache: &ScenarioCache,
    spec: &ScenarioSpec,
) -> Result<Arc<Vec<f64>>, EvalError> {
    let spec = spec.clone().canonicalized();
    cache
        .result(spec.hash(), || cold_evaluate(cache, &spec))
        .map_err(|message| EvalError { message })
}

/// The tier-1 miss path. Still consults tier 2 for trace sharing.
fn cold_evaluate(cache: &ScenarioCache, spec: &ScenarioSpec) -> Result<Vec<f64>, String> {
    let machine = &spec.machine;
    match &spec.program {
        ProgramSpec::Halo(cfg) => {
            let entry = cache.traces(spec.program_hash(), || hpcc::halo_traces(cfg));
            if let Some(f) = spec.faults {
                if hpcsim_mpi::sweep_engine() == SweepEngine::Dag {
                    // DAG never prices faults: this point replays
                    hpcsim_mpi::note_fallback_faults(1);
                }
                let plan = FaultPlan::new(f.seed, f.profile);
                let secs = hpcc::halo_eval_traces_faulty(
                    machine,
                    spec.mode,
                    spec.mapping,
                    cfg,
                    &entry.traces,
                    &plan,
                )
                .map_err(|e| e.to_string())?;
                Ok(vec![secs])
            } else {
                let dag = dag_if_selected(&entry, machine);
                Ok(vec![hpcc::halo_eval_traces(
                    machine,
                    spec.mode,
                    spec.mapping,
                    cfg,
                    &entry.traces,
                    dag.as_deref(),
                )])
            }
        }
        ProgramSpec::Md { ranks, cfg } => {
            let entry = cache.traces(spec.program_hash(), || apps::md_traces(*ranks, cfg));
            let dag = dag_if_selected(&entry, machine);
            let r = apps::md_eval_traces(machine, *ranks, cfg, &entry.traces, dag.as_deref());
            Ok(vec![r.seconds_per_step, r.ns_per_day])
        }
        ProgramSpec::Hpl(cfg) => {
            let r = hpcc::hpl_run(machine, spec.mode, cfg);
            Ok(vec![r.seconds, r.gflops, r.efficiency])
        }
        ProgramSpec::ImbAllreduce { ranks, bytes, dtype } => {
            let p = hpcc::imb_allreduce(machine, spec.mode, *ranks, *bytes, *dtype);
            Ok(vec![p.usec])
        }
        ProgramSpec::Pop { ranks, threads, cfg } => {
            let r = apps::pop_run(machine, spec.mode, *ranks, *threads, cfg);
            Ok(vec![r.syd, r.baroclinic_s, r.barrier_s, r.barotropic_s])
        }
    }
}

/// The shared compiled DAG, but only when the process-global engine
/// selector asks for it and it is provably exact on this machine — the
/// same gate the direct sweep entry points apply, so engine selection
/// never changes a cached value.
fn dag_if_selected(
    entry: &crate::store::TraceEntry,
    machine: &hpcsim_machine::MachineSpec,
) -> Option<Arc<TraceDag>> {
    if hpcsim_mpi::sweep_engine() == SweepEngine::Dag {
        if TraceDag::exact_for(machine) {
            return Some(Arc::clone(entry.dag()));
        }
        hpcsim_mpi::note_fallback_contention(1);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::CacheConfig;
    use hpcsim_faults::FaultProfile;
    use hpcsim_hpcc::{HaloConfig, HaloProtocol};
    use hpcsim_machine::registry::{bluegene_p, xt4_dc};
    use hpcsim_machine::ExecMode;
    use hpcsim_topo::{Grid2D, Mapping};

    fn cache() -> ScenarioCache {
        ScenarioCache::new(CacheConfig::default())
    }

    fn halo_cfg() -> HaloConfig {
        HaloConfig {
            grid: Grid2D::new(8, 8),
            words: 2048,
            protocol: HaloProtocol::IrecvIsend,
            reps: 2,
        }
    }

    #[test]
    fn halo_matches_direct_entry_point_bitwise() {
        let m = bluegene_p();
        let c = cache();
        for mapping in [Mapping::txyz(), Mapping::xyzt()] {
            let spec = ScenarioSpec::halo(&m, ExecMode::Vn, mapping, halo_cfg());
            let cached = evaluate_in(&c, &spec).unwrap();
            let direct = hpcc::halo_run(&m, ExecMode::Vn, mapping, &halo_cfg());
            assert_eq!(cached[0].to_bits(), direct.to_bits());
        }
        let s = c.stats();
        assert_eq!(s.result_misses, 2);
        assert_eq!(s.trace_hits, 1, "second mapping shares the tier-2 trace");
    }

    #[test]
    fn md_matches_direct_entry_point_bitwise() {
        let m = xt4_dc();
        let c = cache();
        let spec = ScenarioSpec::md(&m, 64, apps::MdConfig::lammps_rub());
        let cached = evaluate_in(&c, &spec).unwrap();
        let direct = apps::md_run(&m, 64, &apps::MdConfig::lammps_rub());
        assert_eq!(cached[0].to_bits(), direct.seconds_per_step.to_bits());
        assert_eq!(cached[1].to_bits(), direct.ns_per_day.to_bits());
        // warm lookup: no new evaluation
        let warm = evaluate_in(&c, &spec).unwrap();
        assert_eq!(warm[0].to_bits(), cached[0].to_bits());
        assert_eq!(c.stats().result_hits, 1);
    }

    #[test]
    fn faulty_halo_round_trips_and_errors_stay_uncached() {
        let m = bluegene_p();
        let c = cache();
        let spec = ScenarioSpec::halo(&m, ExecMode::Vn, Mapping::txyz(), halo_cfg())
            .with_faults(5, FaultProfile::Mixed);
        let cached = evaluate_in(&c, &spec).unwrap();
        let direct = hpcc::halo_run_faulty(
            &m,
            ExecMode::Vn,
            Mapping::txyz(),
            &halo_cfg(),
            &FaultPlan::new(5, FaultProfile::Mixed),
        )
        .unwrap();
        assert_eq!(cached[0].to_bits(), direct.to_bits());
        // faulty and pristine specs are distinct tier-1 entries sharing tier 2
        let pristine = ScenarioSpec::halo(&m, ExecMode::Vn, Mapping::txyz(), halo_cfg());
        let p = evaluate_in(&c, &pristine).unwrap();
        assert!(p[0] <= cached[0], "faults never speed a halo up");
        assert_eq!(c.stats().trace_hits, 1);
    }

    #[test]
    fn dag_engine_selection_does_not_change_cached_values() {
        use hpcsim_mpi::set_sweep_engine;
        let flat = bluegene_p().with_flat_contention();
        let spec = ScenarioSpec::halo(&flat, ExecMode::Vn, Mapping::xyzt(), halo_cfg());
        let c_replay = cache();
        set_sweep_engine(SweepEngine::Replay);
        let replay = evaluate_in(&c_replay, &spec).unwrap();
        let c_dag = cache();
        set_sweep_engine(SweepEngine::Dag);
        let dag = evaluate_in(&c_dag, &spec).unwrap();
        set_sweep_engine(SweepEngine::Replay);
        assert_eq!(replay[0].to_bits(), dag[0].to_bits());
    }

    #[test]
    fn hpl_imb_pop_cache_through_tier1() {
        let m = bluegene_p();
        let c = cache();
        let specs = [
            ScenarioSpec::hpl(
                &m,
                ExecMode::Vn,
                hpcc::HplConfig { n: 4096, nb: 128, grid: Grid2D::new(4, 4), samples: 2 },
            ),
            ScenarioSpec::imb_allreduce(&m, ExecMode::Vn, 32, 1024, hpcsim_net::DType::F64),
            ScenarioSpec::pop(&m, ExecMode::Vn, 16, 1, apps::PopConfig::default()),
        ];
        for spec in &specs {
            let first = evaluate_in(&c, spec).unwrap();
            let second = evaluate_in(&c, spec).unwrap();
            assert_eq!(
                first.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                second.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            );
            assert!(first.iter().all(|v| v.is_finite() && *v >= 0.0));
        }
        let s = c.stats();
        assert_eq!((s.result_misses, s.result_hits), (3, 3));
        // none of these are trace-replayable: tier 2 untouched
        assert_eq!((s.trace_misses, s.trace_hits), (0, 0));
    }
}
