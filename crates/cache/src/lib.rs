//! # hpcsim-cache
//!
//! Content-addressed memoization of what-if scenario queries.
//!
//! Production what-if traffic is dominated by repeated and
//! near-repeated queries: sensitivity sweeps orbit a design point,
//! dashboards re-ask the same questions, and concurrent users collide
//! on popular scenarios. This crate makes those queries cheap,
//! end-to-end:
//!
//! * [`ScenarioSpec`] — the canonical, hashable identity of one query
//!   (program × machine × mapping × mode × fault seed/profile), with a
//!   stable text serialization and a 128-bit FNV-1a content hash
//!   ([`spec`] module docs cover the canonicalization rules);
//! * [`ScenarioCache`] — a two-tier store: tier 1 memoizes full results
//!   by spec hash, tier 2 shards recorded traces by the program-only
//!   sub-hash so a *new* machine/mapping query replays a cached trace
//!   instead of re-recording it ([`store`] module docs);
//! * [`evaluate`] / [`evaluate_in`] — the evaluation front door used by
//!   the figure batteries, the `repro` CLI and the examples.
//!
//! Correctness invariant: with the cache enabled, disabled, cold, warm,
//! in-memory or disk-backed, every query returns bit-identical values —
//! the cache may only change *when* a simulation runs, never what it
//! produces. The repro CLI's byte-identity tests pin this.
//!
//! ## The process-global cache
//!
//! Library entry points share one [`global`] cache (enabled, in-memory,
//! bounded) so independent call sites coalesce. `repro` reconfigures it
//! at startup from `--cache-dir`/`--no-cache` via [`configure`].

pub mod eval;
pub mod spec;
pub mod store;

pub use eval::{evaluate_in, EvalError};
pub use spec::{
    fnv1a_128, machine_from_canon, machine_to_canon, FaultSpec, ProgramSpec, ScenarioSpec,
    SpecHash, SpecParseError,
};
pub use store::{CacheConfig, CacheStats, ScenarioCache, TraceEntry};

use std::sync::{Arc, Mutex, OnceLock};

fn global_slot() -> &'static Mutex<Arc<ScenarioCache>> {
    static SLOT: OnceLock<Mutex<Arc<ScenarioCache>>> = OnceLock::new();
    SLOT.get_or_init(|| Mutex::new(Arc::new(ScenarioCache::new(CacheConfig::default()))))
}

/// The process-global scenario cache.
pub fn global() -> Arc<ScenarioCache> {
    Arc::clone(&global_slot().lock().unwrap())
}

/// Replace the process-global cache (e.g. from `repro`'s
/// `--cache-dir`/`--no-cache` flags). Call before issuing queries —
/// in-flight evaluations against the old cache finish there.
pub fn configure(cfg: CacheConfig) {
    *global_slot().lock().unwrap() = Arc::new(ScenarioCache::new(cfg));
}

/// Evaluate a spec through the process-global cache. See
/// [`eval`] module docs for the result-vector layout per program.
pub fn evaluate(spec: &ScenarioSpec) -> Result<Arc<Vec<f64>>, EvalError> {
    evaluate_in(&global(), spec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcsim_hpcc::{HaloConfig, HaloProtocol};
    use hpcsim_machine::registry::bluegene_p;
    use hpcsim_machine::ExecMode;
    use hpcsim_topo::{Grid2D, Mapping};

    #[test]
    fn global_cache_memoizes_across_call_sites() {
        let spec = ScenarioSpec::halo(
            &bluegene_p(),
            ExecMode::Vn,
            Mapping::txyz(),
            HaloConfig {
                grid: Grid2D::new(4, 4),
                words: 64,
                protocol: HaloProtocol::Sendrecv,
                reps: 1,
            },
        );
        let a = evaluate(&spec).unwrap();
        let before = global().stats();
        let b = evaluate(&spec).unwrap();
        let after = global().stats();
        assert_eq!(a[0].to_bits(), b[0].to_bits());
        assert!(after.result_hits > before.result_hits);
    }
}
