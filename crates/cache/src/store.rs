//! The two-tier content-addressed store.
//!
//! * **Tier 1 — results**: spec hash → the full result vector of the
//!   evaluated scenario, stored as exact f64 bit patterns. A hit skips
//!   *all* simulation.
//! * **Tier 2 — traces**: program sub-hash → the recorded per-rank op
//!   traces (plus a lazily compiled [`TraceDag`]). A tier-1 miss whose
//!   program was seen before replays the shared trace instead of
//!   re-recording it — the record-once/replay-per-point split, made
//!   persistent.
//!
//! Both tiers are sharded `Mutex<HashMap>`s with:
//!
//! * **in-flight dedupe** — concurrent identical requests (e.g. the same
//!   spec issued from several `parmap` workers) coalesce onto one
//!   evaluation; followers block on a condvar and receive the leader's
//!   value;
//! * **FIFO eviction** — each tier is bounded; inserting past the cap
//!   evicts the oldest entry (the access pattern this serves — sweeps
//!   around a design point — has little recency skew, so FIFO ≈ LRU at
//!   far lower bookkeeping cost);
//! * an optional **on-disk layer** — misses consult
//!   `<dir>/results/<hash>` / `<dir>/traces/<hash>` and successful
//!   evaluations write through (temp file + rename, so concurrent
//!   processes never observe a torn entry).
//!
//! Failed evaluations (fault-induced stalls) are *not* cached: they are
//! deterministic, so recomputing reproduces the same diagnostic, and
//! keeping error states out of the store keeps its invariant simple —
//! every stored value is a completed simulation.

use crate::spec::SpecHash;
use hpcsim_mpi::{Op, TraceDag};
use hpcsim_obs::{self as obs, log_warn_once};
use std::collections::{HashMap, VecDeque};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, LazyLock, Mutex, OnceLock};

const SHARDS: usize = 16;

/// Process-global obs metrics the cache feeds alongside the
/// per-instance [`CacheStats`] cells. Lookups *issued* are
/// [`Deterministic`](obs::Class::Deterministic): the battery issues the
/// same set of lookups regardless of worker count or cache temperature.
/// How a lookup was satisfied (memory hit vs flight coalesce vs disk
/// hit vs compute) genuinely depends on both, so those counters are
/// [`Volatile`](obs::Class::Volatile).
struct ObsMetrics {
    result_lookups: &'static obs::Counter,
    trace_lookups: &'static obs::Counter,
    result_hits: &'static obs::Counter,
    result_misses: &'static obs::Counter,
    coalesced: &'static obs::Counter,
    disk_result_hits: &'static obs::Counter,
    trace_hits: &'static obs::Counter,
    trace_misses: &'static obs::Counter,
    disk_trace_hits: &'static obs::Counter,
    evictions: &'static obs::Counter,
    disk_read_bytes: &'static obs::Counter,
    disk_write_bytes: &'static obs::Counter,
    disk_errors: &'static obs::Counter,
    compute_wall: &'static obs::Histogram,
}

fn metrics() -> &'static ObsMetrics {
    use obs::Class::{Deterministic, Volatile};
    static M: LazyLock<ObsMetrics> = LazyLock::new(|| ObsMetrics {
        result_lookups: obs::counter(
            "hpcsim_cache_result_lookups_total",
            "Tier-1 lookups issued",
            Deterministic,
        ),
        trace_lookups: obs::counter(
            "hpcsim_cache_trace_lookups_total",
            "Tier-2 lookups issued (only on tier-1 misses, so temperature-dependent)",
            Volatile,
        ),
        result_hits: obs::counter(
            "hpcsim_cache_result_hits_total",
            "Tier-1 lookups served from memory or disk",
            Volatile,
        ),
        result_misses: obs::counter(
            "hpcsim_cache_result_misses_total",
            "Tier-1 lookups that evaluated",
            Volatile,
        ),
        coalesced: obs::counter(
            "hpcsim_cache_coalesced_total",
            "Lookups coalesced onto a concurrent identical evaluation",
            Volatile,
        ),
        disk_result_hits: obs::counter(
            "hpcsim_cache_disk_result_hits_total",
            "Tier-1 hits satisfied by the on-disk layer",
            Volatile,
        ),
        trace_hits: obs::counter(
            "hpcsim_cache_trace_hits_total",
            "Tier-2 lookups served from memory or disk",
            Volatile,
        ),
        trace_misses: obs::counter(
            "hpcsim_cache_trace_misses_total",
            "Tier-2 lookups that recorded a trace",
            Volatile,
        ),
        disk_trace_hits: obs::counter(
            "hpcsim_cache_disk_trace_hits_total",
            "Tier-2 hits satisfied by the on-disk layer",
            Volatile,
        ),
        evictions: obs::counter(
            "hpcsim_cache_evictions_total",
            "Entries dropped by the FIFO bound (both tiers)",
            Volatile,
        ),
        disk_read_bytes: obs::counter(
            "hpcsim_cache_disk_read_bytes_total",
            "Bytes read from the on-disk layer",
            Volatile,
        ),
        disk_write_bytes: obs::counter(
            "hpcsim_cache_disk_write_bytes_total",
            "Bytes written through to the on-disk layer",
            Volatile,
        ),
        disk_errors: obs::counter(
            "hpcsim_cache_disk_errors_total",
            "Disk-layer read/write/parse failures absorbed (results recomputed)",
            Volatile,
        ),
        compute_wall: obs::histogram(
            "hpcsim_cache_compute_wall_ns",
            "Host wall-clock per tier-1 leader evaluation",
        ),
    });
    &M
}

/// Construction-time options for a [`ScenarioCache`].
#[derive(Debug, Clone)]
pub struct CacheConfig {
    /// When false, every lookup computes directly (no memoization, no
    /// stats) — the `--no-cache` escape hatch.
    pub enabled: bool,
    /// Optional on-disk layer root. Created on first use.
    pub dir: Option<PathBuf>,
    /// Tier-1 capacity in results.
    pub result_cap: usize,
    /// Tier-2 capacity in trace worlds (each can be large: cap is small).
    pub trace_cap: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig { enabled: true, dir: None, result_cap: 65_536, trace_cap: 64 }
    }
}

/// Monotonic hit/miss counters. Snapshot with [`ScenarioCache::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Tier-1 lookups served from memory or disk.
    pub result_hits: u64,
    /// Tier-1 lookups that had to evaluate.
    pub result_misses: u64,
    /// Lookups that coalesced onto a concurrent identical evaluation.
    pub coalesced: u64,
    /// Tier-1 hits satisfied by the on-disk layer.
    pub disk_result_hits: u64,
    /// Tier-2 lookups served from memory or disk.
    pub trace_hits: u64,
    /// Tier-2 lookups that had to record a trace.
    pub trace_misses: u64,
    /// Tier-2 hits satisfied by the on-disk layer.
    pub disk_trace_hits: u64,
    /// Entries dropped by the FIFO bound (both tiers).
    pub evictions: u64,
}

/// One per-instance counter cell tied to its process-global obs twin:
/// a bump feeds both the `ScenarioCache::stats` snapshot (this cache)
/// and the run-wide registry (all caches in the process).
struct Stat {
    cell: AtomicU64,
    obs: &'static obs::Counter,
}

impl Stat {
    fn new(obs: &'static obs::Counter) -> Self {
        Stat { cell: AtomicU64::new(0), obs }
    }

    fn bump(&self) {
        self.cell.fetch_add(1, Ordering::Relaxed);
        self.obs.inc();
    }

    fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

struct StatCells {
    result_hits: Stat,
    result_misses: Stat,
    coalesced: Stat,
    disk_result_hits: Stat,
    trace_hits: Stat,
    trace_misses: Stat,
    disk_trace_hits: Stat,
    evictions: Stat,
}

impl StatCells {
    fn new() -> Self {
        let m = metrics();
        StatCells {
            result_hits: Stat::new(m.result_hits),
            result_misses: Stat::new(m.result_misses),
            coalesced: Stat::new(m.coalesced),
            disk_result_hits: Stat::new(m.disk_result_hits),
            trace_hits: Stat::new(m.trace_hits),
            trace_misses: Stat::new(m.trace_misses),
            disk_trace_hits: Stat::new(m.disk_trace_hits),
            evictions: Stat::new(m.evictions),
        }
    }
}

/// A recorded trace world plus its lazily compiled DAG. Shared by every
/// query replaying the same program.
pub struct TraceEntry {
    /// Per-rank op traces, exactly as recorded.
    pub traces: Vec<Vec<Op>>,
    dag: OnceLock<Arc<TraceDag>>,
}

impl TraceEntry {
    /// Wrap freshly recorded (or loaded) traces.
    pub fn new(traces: Vec<Vec<Op>>) -> Self {
        TraceEntry { traces, dag: OnceLock::new() }
    }

    /// The compiled DAG, built on first demand and reused by every
    /// subsequent DAG-engine evaluation of this program.
    pub fn dag(&self) -> &Arc<TraceDag> {
        self.dag.get_or_init(|| Arc::new(TraceDag::compile_world(&self.traces)))
    }
}

/// What a follower thread receives from an in-flight leader.
type FlightOutcome<V> = Result<V, String>;

struct Flight<V> {
    done: Mutex<Option<FlightOutcome<V>>>,
    cv: Condvar,
}

impl<V: Clone> Flight<V> {
    fn new() -> Self {
        Flight { done: Mutex::new(None), cv: Condvar::new() }
    }

    fn publish(&self, outcome: FlightOutcome<V>) {
        *self.done.lock().unwrap() = Some(outcome);
        self.cv.notify_all();
    }

    fn wait(&self) -> FlightOutcome<V> {
        let mut guard = self.done.lock().unwrap();
        loop {
            if let Some(outcome) = guard.as_ref() {
                return outcome.clone();
            }
            guard = self.cv.wait(guard).unwrap();
        }
    }
}

enum Slot<V> {
    Ready(V),
    InFlight(Arc<Flight<V>>),
}

struct Shard<V> {
    map: HashMap<u128, Slot<V>>,
    fifo: VecDeque<u128>,
}

impl<V> Default for Shard<V> {
    fn default() -> Self {
        Shard { map: HashMap::new(), fifo: VecDeque::new() }
    }
}

struct Tier<V> {
    shards: Vec<Mutex<Shard<V>>>,
    /// Per-shard FIFO capacity (total cap split across shards).
    shard_cap: usize,
}

impl<V: Clone> Tier<V> {
    fn new(cap: usize) -> Self {
        Tier {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            shard_cap: cap.div_ceil(SHARDS).max(1),
        }
    }

    fn shard(&self, hash: SpecHash) -> &Mutex<Shard<V>> {
        // low bits of FNV are well mixed
        &self.shards[(hash.0 as usize) % SHARDS]
    }

    /// The dedupe engine shared by both tiers. Exactly one caller per
    /// hash evaluates; everyone else gets its value (memory hit, flight
    /// coalesce, or disk hit).
    #[allow(clippy::too_many_arguments)]
    fn get_or_compute(
        &self,
        hash: SpecHash,
        hits: &Stat,
        misses: &Stat,
        coalesced: &Stat,
        disk_hits: &Stat,
        evictions: &Stat,
        disk_load: impl FnOnce() -> Option<V>,
        disk_store: impl FnOnce(&V),
        compute: impl FnOnce() -> Result<V, String>,
    ) -> Result<V, String> {
        let flight: Arc<Flight<V>>;
        {
            let mut shard = self.shard(hash).lock().unwrap();
            match shard.map.get(&hash.0) {
                Some(Slot::Ready(v)) => {
                    hits.bump();
                    return Ok(v.clone());
                }
                Some(Slot::InFlight(f)) => {
                    let f = Arc::clone(f);
                    drop(shard);
                    coalesced.bump();
                    return f.wait().map_err(|e| format!("coalesced onto failed evaluation: {e}"));
                }
                None => {
                    flight = Arc::new(Flight::new());
                    shard.map.insert(hash.0, Slot::InFlight(Arc::clone(&flight)));
                }
            }
        }

        // We are the leader. Never hold the shard lock while loading,
        // computing or touching disk.
        let outcome: Result<(V, bool), String> = match disk_load() {
            Some(v) => Ok((v, true)),
            None => {
                let computed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(compute));
                match computed {
                    Ok(Ok(v)) => Ok((v, false)),
                    Ok(Err(e)) => Err(e),
                    Err(panic) => {
                        // release followers, forget the slot, re-raise
                        // (&*: coerce to the payload, not the Box-as-Any)
                        let msg = panic_message(&*panic);
                        flight.publish(Err(msg));
                        self.shard(hash).lock().unwrap().map.remove(&hash.0);
                        std::panic::resume_unwind(panic);
                    }
                }
            }
        };

        match outcome {
            Ok((v, from_disk)) => {
                if from_disk {
                    hits.bump();
                    disk_hits.bump();
                } else {
                    misses.bump();
                    disk_store(&v);
                }
                flight.publish(Ok(v.clone()));
                let mut shard = self.shard(hash).lock().unwrap();
                shard.map.insert(hash.0, Slot::Ready(v.clone()));
                shard.fifo.push_back(hash.0);
                while shard.fifo.len() > self.shard_cap {
                    if let Some(old) = shard.fifo.pop_front() {
                        if matches!(shard.map.get(&old), Some(Slot::Ready(_))) {
                            shard.map.remove(&old);
                            evictions.bump();
                        }
                    }
                }
                Ok(v)
            }
            Err(e) => {
                misses.bump();
                flight.publish(Err(e.clone()));
                self.shard(hash).lock().unwrap().map.remove(&hash.0);
                Err(e)
            }
        }
    }
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic".to_string()
    }
}

/// The two-tier scenario store. Cheap to share (`Arc`); all methods take
/// `&self` and are safe under any `parmap` worker count.
pub struct ScenarioCache {
    cfg: CacheConfig,
    results: Tier<Arc<Vec<f64>>>,
    traces: Tier<Arc<TraceEntry>>,
    stats: StatCells,
}

impl ScenarioCache {
    /// An empty cache with the given bounds/backing.
    pub fn new(cfg: CacheConfig) -> Self {
        ScenarioCache {
            results: Tier::new(cfg.result_cap),
            traces: Tier::new(cfg.trace_cap),
            cfg,
            stats: StatCells::new(),
        }
    }

    /// Whether lookups memoize at all.
    pub fn enabled(&self) -> bool {
        self.cfg.enabled
    }

    /// The on-disk layer root, if configured.
    pub fn dir(&self) -> Option<&Path> {
        self.cfg.dir.as_deref()
    }

    /// Snapshot the counters.
    pub fn stats(&self) -> CacheStats {
        let s = &self.stats;
        CacheStats {
            result_hits: s.result_hits.get(),
            result_misses: s.result_misses.get(),
            coalesced: s.coalesced.get(),
            disk_result_hits: s.disk_result_hits.get(),
            trace_hits: s.trace_hits.get(),
            trace_misses: s.trace_misses.get(),
            disk_trace_hits: s.disk_trace_hits.get(),
            evictions: s.evictions.get(),
        }
    }

    /// Tier-1 lookup: the memoized result vector for `hash`, computing
    /// (and storing) it on a miss. `compute` may fail; failures are
    /// returned to every coalesced waiter and never cached.
    pub fn result(
        &self,
        hash: SpecHash,
        compute: impl FnOnce() -> Result<Vec<f64>, String>,
    ) -> Result<Arc<Vec<f64>>, String> {
        let m = metrics();
        m.result_lookups.inc();
        // leader-side wall clock; the Instant is skipped entirely while
        // the registry is disabled
        let timed = || {
            let start = obs::enabled().then(std::time::Instant::now);
            let r = compute().map(Arc::new);
            if let Some(t) = start {
                m.compute_wall.record_duration(t.elapsed());
            }
            r
        };
        if !self.cfg.enabled {
            return timed();
        }
        let s = &self.stats;
        self.results.get_or_compute(
            hash,
            &s.result_hits,
            &s.result_misses,
            &s.coalesced,
            &s.disk_result_hits,
            &s.evictions,
            || self.load_result(hash),
            |v| self.store_result(hash, v),
            timed,
        )
    }

    /// Tier-2 lookup: the shared trace world for a program sub-hash,
    /// recording it on a miss. Recording is infallible (trace capture
    /// involves no machine model), so this never errors.
    pub fn traces(
        &self,
        program_hash: SpecHash,
        record: impl FnOnce() -> Vec<Vec<Op>>,
    ) -> Arc<TraceEntry> {
        metrics().trace_lookups.inc();
        if !self.cfg.enabled {
            return Arc::new(TraceEntry::new(record()));
        }
        let s = &self.stats;
        self.traces
            .get_or_compute(
                program_hash,
                &s.trace_hits,
                &s.trace_misses,
                &s.coalesced,
                &s.disk_trace_hits,
                &s.evictions,
                || self.load_traces(program_hash),
                |v| self.store_traces(program_hash, v),
                || Ok(Arc::new(TraceEntry::new(record()))),
            )
            .expect("trace recording is infallible")
    }

    // ----- on-disk layer -------------------------------------------------

    fn result_path(&self, hash: SpecHash) -> Option<PathBuf> {
        self.cfg.dir.as_ref().map(|d| d.join("results").join(hash.to_string()))
    }

    fn trace_path(&self, hash: SpecHash) -> Option<PathBuf> {
        self.cfg.dir.as_ref().map(|d| d.join("traces").join(hash.to_string()))
    }

    fn load_result(&self, hash: SpecHash) -> Option<Arc<Vec<f64>>> {
        let path = self.result_path(hash)?;
        let text = read_entry(&path)?;
        let parsed = parse_result_file(&text);
        if parsed.is_none() {
            metrics().disk_errors.inc();
            log_warn_once!(
                "cache: corrupt result entry {} ignored; recomputing",
                path.display()
            );
        }
        parsed.map(Arc::new)
    }

    fn store_result(&self, hash: SpecHash, v: &Arc<Vec<f64>>) {
        if let Some(path) = self.result_path(hash) {
            let mut text = format!("hpcsim-result/1 {}\n", v.len());
            for x in v.iter() {
                text.push_str(&format!("0x{:016x}\n", x.to_bits()));
            }
            write_entry(&path, &text);
        }
    }

    fn load_traces(&self, hash: SpecHash) -> Option<Arc<TraceEntry>> {
        let path = self.trace_path(hash)?;
        let text = read_entry(&path)?;
        match hpcsim_mpi::parse_traces(&text) {
            Ok(traces) => Some(Arc::new(TraceEntry::new(traces))),
            Err(e) => {
                metrics().disk_errors.inc();
                log_warn_once!(
                    "cache: corrupt trace entry {} ignored ({e}); re-recording",
                    path.display()
                );
                None
            }
        }
    }

    fn store_traces(&self, hash: SpecHash, v: &Arc<TraceEntry>) {
        if let Some(path) = self.trace_path(hash) {
            write_entry(&path, &hpcsim_mpi::write_traces(&v.traces));
        }
    }
}

/// Read one disk-layer entry. A missing file is the normal miss path; a
/// *failed* read (permissions, I/O error) is absorbed — the entry is
/// recomputed — but counted and diagnosed once.
fn read_entry(path: &Path) -> Option<String> {
    match std::fs::read_to_string(path) {
        Ok(text) => {
            metrics().disk_read_bytes.add(text.len() as u64);
            Some(text)
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => None,
        Err(e) => {
            metrics().disk_errors.inc();
            log_warn_once!("cache: disk read of {} failed ({e}); recomputing", path.display());
            None
        }
    }
}

/// Write-through one disk-layer entry. Failures leave the cache
/// memory-only for that entry (results are unaffected) but are counted
/// and diagnosed once.
fn write_entry(path: &Path, text: &str) {
    match write_atomic(path, text) {
        Ok(()) => metrics().disk_write_bytes.add(text.len() as u64),
        Err(e) => {
            metrics().disk_errors.inc();
            log_warn_once!(
                "cache: disk write of {} failed ({e}); entry stays memory-only",
                path.display()
            );
        }
    }
}

fn parse_result_file(text: &str) -> Option<Vec<f64>> {
    let mut lines = text.lines();
    let mut header = lines.next()?.split_ascii_whitespace();
    if header.next()? != "hpcsim-result/1" {
        return None;
    }
    let len: usize = header.next()?.parse().ok()?;
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        let bits = u64::from_str_radix(lines.next()?.strip_prefix("0x")?, 16).ok()?;
        out.push(f64::from_bits(bits));
    }
    Some(out)
}

/// Write `text` to `path` via a same-directory temp file + rename, so a
/// concurrent reader sees either nothing or the complete entry. Disk-
/// layer writes are best-effort — the caller ([`write_entry`]) counts
/// and reports failures; results never depend on them.
fn write_atomic(path: &Path, text: &str) -> std::io::Result<()> {
    let Some(parent) = path.parent() else { return Ok(()) };
    std::fs::create_dir_all(parent)?;
    let tmp = parent.join(format!(
        ".tmp.{}.{}",
        std::process::id(),
        path.file_name().and_then(|n| n.to_str()).unwrap_or("entry")
    ));
    std::fs::write(&tmp, text)?;
    if let Err(e) = std::fs::rename(&tmp, path) {
        let _ = std::fs::remove_file(&tmp);
        return Err(e);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn hash(n: u128) -> SpecHash {
        SpecHash(n)
    }

    fn mem_cache() -> ScenarioCache {
        ScenarioCache::new(CacheConfig::default())
    }

    #[test]
    fn result_memoizes_and_counts() {
        let cache = mem_cache();
        let calls = AtomicUsize::new(0);
        for _ in 0..3 {
            let v = cache
                .result(hash(7), || {
                    calls.fetch_add(1, Ordering::SeqCst);
                    Ok(vec![1.5, 2.5])
                })
                .unwrap();
            assert_eq!(*v, vec![1.5, 2.5]);
        }
        assert_eq!(calls.load(Ordering::SeqCst), 1);
        let s = cache.stats();
        assert_eq!((s.result_hits, s.result_misses), (2, 1));
    }

    #[test]
    fn errors_are_returned_but_never_cached() {
        let cache = mem_cache();
        let calls = AtomicUsize::new(0);
        for _ in 0..2 {
            let e = cache
                .result(hash(9), || {
                    calls.fetch_add(1, Ordering::SeqCst);
                    Err("stalled".to_string())
                })
                .unwrap_err();
            assert!(e.contains("stalled"));
        }
        // both lookups computed: the failure was not memoized
        assert_eq!(calls.load(Ordering::SeqCst), 2);
        assert!(cache.result(hash(9), || Ok(vec![4.0])).is_ok());
    }

    #[test]
    fn disabled_cache_computes_every_time() {
        let cache = ScenarioCache::new(CacheConfig { enabled: false, ..CacheConfig::default() });
        let calls = AtomicUsize::new(0);
        for _ in 0..2 {
            cache
                .result(hash(1), || {
                    calls.fetch_add(1, Ordering::SeqCst);
                    Ok(vec![0.0])
                })
                .unwrap();
        }
        assert_eq!(calls.load(Ordering::SeqCst), 2);
        assert_eq!(cache.stats(), CacheStats::default());
    }

    #[test]
    fn fifo_eviction_bounds_each_shard() {
        let cache = ScenarioCache::new(CacheConfig {
            result_cap: SHARDS, // one entry per shard
            ..CacheConfig::default()
        });
        // land many entries in the same shard: hashes ≡ 3 (mod SHARDS)
        for i in 0..4u128 {
            cache.result(hash(3 + i * SHARDS as u128), || Ok(vec![i as f64])).unwrap();
        }
        let s = cache.stats();
        assert_eq!(s.evictions, 3, "{s:?}");
        // oldest evicted: recomputes
        let calls = AtomicUsize::new(0);
        cache
            .result(hash(3), || {
                calls.fetch_add(1, Ordering::SeqCst);
                Ok(vec![9.0])
            })
            .unwrap();
        assert_eq!(calls.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn concurrent_identical_requests_coalesce() {
        let cache = Arc::new(mem_cache());
        let calls = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let cache = Arc::clone(&cache);
            let calls = Arc::clone(&calls);
            handles.push(std::thread::spawn(move || {
                cache
                    .result(hash(42), || {
                        calls.fetch_add(1, Ordering::SeqCst);
                        // widen the in-flight window
                        std::thread::sleep(std::time::Duration::from_millis(30));
                        Ok(vec![3.25])
                    })
                    .unwrap()
            }));
        }
        for h in handles {
            assert_eq!(*h.join().unwrap(), vec![3.25]);
        }
        assert_eq!(calls.load(Ordering::SeqCst), 1, "leader evaluated once");
        let s = cache.stats();
        assert_eq!(s.result_misses, 1);
        assert_eq!(s.result_hits + s.coalesced, 7, "{s:?}");
    }

    #[test]
    fn leader_panic_releases_followers_and_clears_slot() {
        let cache = Arc::new(mem_cache());
        let leader = {
            let cache = Arc::clone(&cache);
            std::thread::spawn(move || {
                let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    cache.result(hash(13), || {
                        std::thread::sleep(std::time::Duration::from_millis(30));
                        panic!("scenario exploded")
                    })
                }));
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(5));
        // this either coalesces onto the failing flight (gets an Err) or
        // arrives after cleanup and computes fresh — both must terminate
        let second = cache.result(hash(13), || Ok(vec![1.0]));
        leader.join().unwrap();
        match second {
            Ok(v) => assert_eq!(*v, vec![1.0]),
            Err(e) => assert!(e.contains("scenario exploded"), "{e}"),
        }
        // slot is clean afterwards
        assert_eq!(*cache.result(hash(13), || Ok(vec![2.0])).unwrap(), vec![2.0]);
    }

    #[test]
    fn disk_layer_round_trips_results_and_traces() {
        let dir = std::env::temp_dir().join(format!("hpcsim-cache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = CacheConfig { dir: Some(dir.clone()), ..CacheConfig::default() };

        let a = ScenarioCache::new(cfg.clone());
        let v = a.result(hash(77), || Ok(vec![0.1, f64::INFINITY, -0.0])).unwrap();
        let traces = vec![vec![Op::Mark { id: 1 }], vec![Op::Mark { id: 2 }]];
        let t = a.traces(hash(78), || traces.clone());
        assert_eq!(t.traces, traces);

        // a fresh cache over the same dir serves both without computing
        let b = ScenarioCache::new(cfg);
        let v2 = b
            .result(hash(77), || panic!("must come from disk"))
            .unwrap();
        assert_eq!(v2.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                   v.iter().map(|x| x.to_bits()).collect::<Vec<_>>());
        let t2 = b.traces(hash(78), || panic!("must come from disk"));
        assert_eq!(t2.traces, traces);
        let s = b.stats();
        assert_eq!(s.disk_result_hits, 1);
        assert_eq!(s.disk_trace_hits, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn trace_entry_compiles_dag_once() {
        let traces = vec![vec![Op::Mark { id: 1 }]];
        let entry = TraceEntry::new(traces);
        let d1 = Arc::as_ptr(entry.dag());
        let d2 = Arc::as_ptr(entry.dag());
        assert_eq!(d1, d2);
    }
}
