//! Canonical, hashable scenario specifications.
//!
//! A [`ScenarioSpec`] is the complete identity of one what-if query:
//! program × machine × mapping × execution mode × fault seed/profile.
//! Two queries with equal canonical forms are *the same experiment* and
//! must produce bit-identical results — that equivalence is what the
//! content-addressed store memoizes.
//!
//! ## Canonicalization
//!
//! The canonical form normalizes away dimensions a query provably
//! ignores, so equivalent queries share a hash **by construction**:
//!
//! * **mapping** is forced to `TXYZ` unless the program is HALO *and*
//!   the machine is a BlueGene — every other entry point lays ranks out
//!   with [`hpcsim_mpi::RankLayout::default_for`], which never reads the
//!   mapping;
//! * **mode** is forced to `VN` for the MD proxies (their entry points
//!   always run virtual-node mode);
//! * **faults** are dropped unless the program is HALO (the only
//!   fault-replayable entry point);
//! * the machine's `core.name` is excluded — it is display-only and
//!   feeds no model.
//!
//! Anything else that differs produces a different canonical text and
//! therefore (FNV-1a 128) a different hash. Every float is serialized
//! as its IEEE-754 bit pattern, so serialize → parse → re-serialize is
//! the identity and hashing is exact, not approximate.
//!
//! ## Sub-keys
//!
//! [`ScenarioSpec::program_hash`] hashes only the `program` line. For
//! the trace-replayable programs (HALO, MD) the recorded trace depends
//! on nothing else — not machine, mapping, mode or faults — so the
//! program hash is the tier-2 key under which traces are shared by
//! every query that replays the same program.

use hpcsim_apps::{MdCode, MdConfig};
use hpcsim_faults::FaultProfile;
use hpcsim_hpcc::{HaloConfig, HaloProtocol, HplConfig};
use hpcsim_machine::{
    CacheCoherence, CoreArch, ExecMode, L2Kind, MachineId, MachineSpec, MemorySpec, NicSpec,
    Packaging, PowerSpec,
};
use hpcsim_engine::SimTime;
use hpcsim_net::DType;
use hpcsim_topo::{Grid2D, Mapping};
use std::fmt::Write as _;

/// Format-identifying first line of a canonical spec.
pub const SPEC_MAGIC: &str = "hpcsim-scenario/1";

/// 128-bit FNV-1a content hash of a canonical spec (or program line).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpecHash(pub u128);

impl std::fmt::Display for SpecHash {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// FNV-1a, 128-bit variant: well-distributed, dependency-free, and
/// stable across platforms/runs (unlike `DefaultHasher`).
pub fn fnv1a_128(bytes: &[u8]) -> SpecHash {
    const OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
    const PRIME: u128 = 0x0000000001000000000000000000013b;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= b as u128;
        h = h.wrapping_mul(PRIME);
    }
    SpecHash(h)
}

/// The program axis of a scenario: which benchmark/proxy, at what
/// configuration, on how many ranks.
#[derive(Debug, Clone, PartialEq)]
pub enum ProgramSpec {
    /// Wallcraft HALO exchange (Fig 2); ranks = `grid.size()`.
    Halo(HaloConfig),
    /// MD proxy (Fig 8): LAMMPS- or PMEMD-shaped communication.
    Md {
        /// MPI ranks.
        ranks: usize,
        /// Code + problem.
        cfg: MdConfig,
    },
    /// HPL (Table 2 / Fig 4); ranks = `cfg.grid.size()`.
    Hpl(HplConfig),
    /// IMB Allreduce latency at one point (Fig 6).
    ImbAllreduce {
        /// MPI ranks.
        ranks: usize,
        /// Payload bytes.
        bytes: u64,
        /// Element type.
        dtype: DType,
    },
    /// POP ocean proxy (Fig 7).
    Pop {
        /// MPI ranks.
        ranks: usize,
        /// OpenMP threads per task.
        threads: u32,
        /// Problem configuration.
        cfg: hpcsim_apps::PopConfig,
    },
}

impl ProgramSpec {
    /// Whether this program's recorded trace can be replayed standalone
    /// (no extra simulator state such as registered communicators), i.e.
    /// whether tier 2 of the cache can serve it.
    pub fn trace_replayable(&self) -> bool {
        matches!(self, ProgramSpec::Halo(_) | ProgramSpec::Md { .. })
    }

    /// MPI ranks the program runs on.
    pub fn ranks(&self) -> usize {
        match self {
            ProgramSpec::Halo(cfg) => cfg.grid.size(),
            ProgramSpec::Md { ranks, .. } => *ranks,
            ProgramSpec::Hpl(cfg) => cfg.grid.size(),
            ProgramSpec::ImbAllreduce { ranks, .. } => *ranks,
            ProgramSpec::Pop { ranks, .. } => *ranks,
        }
    }
}

/// Fault-injection axis: the seed and profile of a
/// [`hpcsim_faults::FaultPlan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// Plan seed.
    pub seed: u64,
    /// Which fault ingredients are armed.
    pub profile: FaultProfile,
}

/// One complete what-if query. Construct with the typed helpers
/// ([`ScenarioSpec::halo`], [`ScenarioSpec::md`], …), which apply the
/// canonicalization rules up front.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// What runs.
    pub program: ProgramSpec,
    /// Where it runs.
    pub machine: MachineSpec,
    /// Execution mode (task placement onto nodes).
    pub mode: ExecMode,
    /// Rank→processor mapping (meaningful for HALO on BlueGene only).
    pub mapping: Mapping,
    /// Armed fault plan, if any (HALO only).
    pub faults: Option<FaultSpec>,
}

impl ScenarioSpec {
    /// A HALO query.
    pub fn halo(machine: &MachineSpec, mode: ExecMode, mapping: Mapping, cfg: HaloConfig) -> Self {
        ScenarioSpec {
            program: ProgramSpec::Halo(cfg),
            machine: machine.clone(),
            mode,
            mapping,
            faults: None,
        }
        .canonicalized()
    }

    /// An MD query (always VN mode; mapping immaterial).
    pub fn md(machine: &MachineSpec, ranks: usize, cfg: MdConfig) -> Self {
        ScenarioSpec {
            program: ProgramSpec::Md { ranks, cfg },
            machine: machine.clone(),
            mode: ExecMode::Vn,
            mapping: Mapping::txyz(),
            faults: None,
        }
        .canonicalized()
    }

    /// An HPL query.
    pub fn hpl(machine: &MachineSpec, mode: ExecMode, cfg: HplConfig) -> Self {
        ScenarioSpec {
            program: ProgramSpec::Hpl(cfg),
            machine: machine.clone(),
            mode,
            mapping: Mapping::txyz(),
            faults: None,
        }
        .canonicalized()
    }

    /// An IMB Allreduce query.
    pub fn imb_allreduce(
        machine: &MachineSpec,
        mode: ExecMode,
        ranks: usize,
        bytes: u64,
        dtype: DType,
    ) -> Self {
        ScenarioSpec {
            program: ProgramSpec::ImbAllreduce { ranks, bytes, dtype },
            machine: machine.clone(),
            mode,
            mapping: Mapping::txyz(),
            faults: None,
        }
        .canonicalized()
    }

    /// A POP query.
    pub fn pop(
        machine: &MachineSpec,
        mode: ExecMode,
        ranks: usize,
        threads: u32,
        cfg: hpcsim_apps::PopConfig,
    ) -> Self {
        ScenarioSpec {
            program: ProgramSpec::Pop { ranks, threads, cfg },
            machine: machine.clone(),
            mode,
            mapping: Mapping::txyz(),
            faults: None,
        }
        .canonicalized()
    }

    /// This spec with an armed fault plan (HALO only: canonicalization
    /// drops faults on programs without a fault-replay entry point).
    pub fn with_faults(mut self, seed: u64, profile: FaultProfile) -> Self {
        self.faults = Some(FaultSpec { seed, profile });
        self.canonicalized()
    }

    /// Apply the normalization rules from the module docs. Idempotent.
    pub fn canonicalized(mut self) -> Self {
        let mapping_live =
            matches!(self.program, ProgramSpec::Halo(_)) && self.machine.id.is_bluegene();
        if !mapping_live {
            self.mapping = Mapping::txyz();
        }
        if matches!(self.program, ProgramSpec::Md { .. }) {
            self.mode = ExecMode::Vn;
        }
        if !matches!(self.program, ProgramSpec::Halo(_)) {
            self.faults = None;
        }
        self.machine.core.name = "";
        self
    }

    /// The stable canonical text (see module docs for the guarantees).
    pub fn to_canon(&self) -> String {
        let c = self.clone().canonicalized();
        let mut out = String::with_capacity(512);
        out.push_str(SPEC_MAGIC);
        out.push('\n');
        write_program(&mut out, &c.program);
        write_machine(&mut out, &c.machine);
        let mode = match c.mode {
            ExecMode::Smp => "smp",
            ExecMode::Dual => "dual",
            ExecMode::Vn => "vn",
        };
        let _ = writeln!(out, "mode {mode}");
        let _ = writeln!(out, "mapping {}", c.mapping.name());
        match c.faults {
            None => out.push_str("faults none\n"),
            Some(f) => {
                let _ = writeln!(out, "faults {} {}", f.seed, f.profile.label());
            }
        }
        out
    }

    /// Content hash of the full canonical form: the tier-1 result key.
    pub fn hash(&self) -> SpecHash {
        fnv1a_128(self.to_canon().as_bytes())
    }

    /// Content hash of the program line alone: the tier-2 trace key.
    /// Every query replaying the same program shares this, whatever its
    /// machine/mapping/mode/faults.
    pub fn program_hash(&self) -> SpecHash {
        let mut line = String::with_capacity(96);
        write_program(&mut line, &self.clone().canonicalized().program);
        fnv1a_128(line.as_bytes())
    }

    /// Parse a canonical text back into a spec (machine `core.name`
    /// comes back empty — it is not part of the canonical form).
    pub fn parse(text: &str) -> Result<ScenarioSpec, SpecParseError> {
        parse_spec(text)
    }
}

/// Render a machine's canonical lines (machine/core/mem/nic/pack/power)
/// standalone, exactly as they appear inside [`ScenarioSpec::to_canon`].
/// The fuzz corpus embeds machines this way so corpus entries round-trip
/// through the same exact bit-level form the scenario cache hashes.
pub fn machine_to_canon(m: &MachineSpec) -> String {
    let mut out = String::with_capacity(384);
    let mut c = m.clone();
    c.core.name = "";
    write_machine(&mut out, &c);
    out
}

/// Parse machine canonical lines produced by [`machine_to_canon`]
/// (`core.name` comes back empty, as in [`ScenarioSpec::parse`]).
pub fn machine_from_canon(text: &str) -> Result<MachineSpec, SpecParseError> {
    let mut lines = Lines { iter: text.lines(), line: 0 };
    let m = parse_machine(&mut lines)?;
    for (line, extra) in (lines.line + 1..).zip(lines.iter) {
        if !extra.trim().is_empty() {
            return Err(SpecParseError { line, message: format!("trailing content {extra:?}") });
        }
    }
    Ok(m)
}

fn push_bits(out: &mut String, v: f64) {
    let _ = write!(out, " 0x{:016x}", v.to_bits());
}

fn write_program(out: &mut String, p: &ProgramSpec) {
    match p {
        ProgramSpec::Halo(cfg) => {
            let proto = match cfg.protocol {
                HaloProtocol::IrecvIsend => "irecv-isend",
                HaloProtocol::IsendIrecv => "isend-irecv",
                HaloProtocol::Sendrecv => "sendrecv",
            };
            let _ = writeln!(
                out,
                "program halo {} {} {} {proto} {}",
                cfg.grid.rows, cfg.grid.cols, cfg.words, cfg.reps
            );
        }
        ProgramSpec::Md { ranks, cfg } => {
            let code = match cfg.code {
                MdCode::Lammps => "lammps",
                MdCode::Pmemd => "pmemd",
            };
            let _ = writeln!(
                out,
                "program md {ranks} {code} {} {} {} {} {}",
                cfg.atoms, cfg.neighbors, cfg.pme_mesh, cfg.output_every, cfg.steps
            );
        }
        ProgramSpec::Hpl(cfg) => {
            let _ = writeln!(
                out,
                "program hpl {} {} {} {} {}",
                cfg.n, cfg.nb, cfg.grid.rows, cfg.grid.cols, cfg.samples
            );
        }
        ProgramSpec::ImbAllreduce { ranks, bytes, dtype } => {
            let _ = writeln!(out, "program imb-allreduce {ranks} {bytes} {}", dtype_name(*dtype));
        }
        ProgramSpec::Pop { ranks, threads, cfg } => {
            let _ = write!(
                out,
                "program pop {ranks} {threads} {} {} {}",
                cfg.nx, cfg.ny, cfg.nz
            );
            push_bits(out, cfg.steps_per_day);
            let _ = write!(out, " {} {} {}", cfg.cg_iters, cfg.chron_gear as u8, cfg.cg_sim);
            push_bits(out, cfg.flops_per_point);
            push_bits(out, cfg.imbalance);
            out.push('\n');
        }
    }
}

fn dtype_name(d: DType) -> &'static str {
    match d {
        DType::F32 => "f32",
        DType::F64 => "f64",
        DType::Int => "int",
    }
}

fn write_machine(out: &mut String, m: &MachineSpec) {
    let id = match m.id {
        MachineId::BgL => "bgl",
        MachineId::BgP => "bgp",
        MachineId::Xt3 => "xt3",
        MachineId::Xt4Dc => "xt4dc",
        MachineId::Xt4Qc => "xt4qc",
    };
    let coh = match m.coherence {
        CacheCoherence::Software => "sw",
        CacheCoherence::Hardware => "hw",
    };
    let _ = write!(out, "machine {id} {} {coh}", m.cores_per_node);
    match m.l3_shared_mib {
        None => out.push_str(" none"),
        Some(v) => push_bits(out, v),
    }
    out.push('\n');

    // core.name is deliberately absent: display-only (see module docs)
    let _ = write!(out, "core");
    push_bits(out, m.core.clock_hz);
    push_bits(out, m.core.flops_per_cycle);
    let _ = write!(out, " {} {}", m.core.l1_data_kib, m.core.line_bytes);
    match m.core.l2 {
        L2Kind::PrefetchEngine { streams } => {
            let _ = write!(out, " pf {streams}");
        }
        L2Kind::Cache { kib } => {
            let _ = write!(out, " cache {kib}");
        }
    }
    push_bits(out, m.core.mem_bw_core);
    push_bits(out, m.core.irregular_eff);
    out.push('\n');

    let _ = write!(out, "mem");
    push_bits(out, m.mem.capacity_gib);
    push_bits(out, m.mem.bw_bytes);
    push_bits(out, m.mem.stream_eff_single);
    push_bits(out, m.mem.stream_eff_loaded);
    let _ = writeln!(out, " {}", m.mem.latency.0);

    let _ = write!(out, "nic");
    push_bits(out, m.nic.torus_link_bw);
    let _ = write!(out, " {}", m.nic.torus_links);
    push_bits(out, m.nic.injection_bw);
    match m.nic.tree_bw {
        None => out.push_str(" none"),
        Some(v) => push_bits(out, v),
    }
    let _ = write!(
        out,
        " {} {} {} {} {}",
        m.nic.has_barrier_network as u8, m.nic.o_send.0, m.nic.o_recv.0, m.nic.per_hop.0,
        m.nic.eager_threshold
    );
    push_bits(out, m.nic.route_diversity);
    out.push('\n');

    let _ = writeln!(
        out,
        "pack {} {}",
        m.packaging.nodes_per_rack, m.packaging.compute_per_io_node
    );

    let _ = write!(out, "power");
    for v in [
        m.power.node_static_w,
        m.power.core_idle_w,
        m.power.core_dyn_w,
        m.power.mem_w,
        m.power.nic_w,
        m.power.rack_overhead_w,
        m.power.psu_efficiency,
    ] {
        push_bits(out, v);
    }
    out.push('\n');
}

/// One-line diagnosis of a malformed canonical spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for SpecParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "spec line {}: {}", self.line, self.message)
    }
}

struct Cursor<'a> {
    line: usize,
    toks: std::str::SplitAsciiWhitespace<'a>,
}

impl<'a> Cursor<'a> {
    fn err<T>(&self, message: impl Into<String>) -> Result<T, SpecParseError> {
        Err(SpecParseError { line: self.line, message: message.into() })
    }

    fn tok(&mut self, what: &str) -> Result<&'a str, SpecParseError> {
        match self.toks.next() {
            Some(t) => Ok(t),
            None => Err(SpecParseError { line: self.line, message: format!("missing {what}") }),
        }
    }

    fn u64(&mut self, what: &str) -> Result<u64, SpecParseError> {
        let t = self.tok(what)?;
        t.parse().map_err(|_| SpecParseError {
            line: self.line,
            message: format!("bad {what} {t:?}"),
        })
    }

    fn usize(&mut self, what: &str) -> Result<usize, SpecParseError> {
        Ok(self.u64(what)? as usize)
    }

    fn u32(&mut self, what: &str) -> Result<u32, SpecParseError> {
        Ok(self.u64(what)? as u32)
    }

    fn bits(&mut self, what: &str) -> Result<f64, SpecParseError> {
        let t = self.tok(what)?;
        let hex = t.strip_prefix("0x").ok_or(SpecParseError {
            line: self.line,
            message: format!("{what} must be 0x-prefixed bits, got {t:?}"),
        })?;
        let bits = u64::from_str_radix(hex, 16).map_err(|_| SpecParseError {
            line: self.line,
            message: format!("bad {what} bits {t:?}"),
        })?;
        Ok(f64::from_bits(bits))
    }

    fn bool01(&mut self, what: &str) -> Result<bool, SpecParseError> {
        match self.tok(what)? {
            "0" => Ok(false),
            "1" => Ok(true),
            t => self.err(format!("bad {what} {t:?} (want 0/1)")),
        }
    }

    fn finish(mut self) -> Result<(), SpecParseError> {
        match self.toks.next() {
            None => Ok(()),
            Some(t) => Err(SpecParseError {
                line: self.line,
                message: format!("trailing token {t:?}"),
            }),
        }
    }
}

struct Lines<'a> {
    iter: std::str::Lines<'a>,
    line: usize,
}

impl<'a> Lines<'a> {
    fn next(&mut self, what: &str) -> Result<Cursor<'a>, SpecParseError> {
        match self.iter.next() {
            Some(l) => {
                self.line += 1;
                Ok(Cursor { line: self.line, toks: l.split_ascii_whitespace() })
            }
            None => Err(SpecParseError {
                line: self.line,
                message: format!("missing {what} line"),
            }),
        }
    }
}

fn parse_spec(text: &str) -> Result<ScenarioSpec, SpecParseError> {
    let mut lines = Lines { iter: text.lines(), line: 0 };
    let next = &mut lines;

    let mut c = next.next("magic")?;
    if c.tok("magic")? != SPEC_MAGIC {
        return c.err("bad magic");
    }
    c.finish()?;

    let mut c = next.next("program")?;
    if c.tok("program keyword")? != "program" {
        return c.err("expected program line");
    }
    let program = parse_program(&mut c)?;
    c.finish()?;

    let machine = parse_machine(next)?;

    let mut c = next.next("mode")?;
    if c.tok("mode keyword")? != "mode" {
        return c.err("expected mode line");
    }
    let mode = match c.tok("mode")? {
        "smp" => ExecMode::Smp,
        "dual" => ExecMode::Dual,
        "vn" => ExecMode::Vn,
        t => return c.err(format!("bad mode {t:?}")),
    };
    c.finish()?;

    let mut c = next.next("mapping")?;
    if c.tok("mapping keyword")? != "mapping" {
        return c.err("expected mapping line");
    }
    let name = c.tok("mapping name")?;
    let mapping = match Mapping::parse(name) {
        Some(m) => m,
        None => return c.err(format!("bad mapping {name:?}")),
    };
    c.finish()?;

    let mut c = next.next("faults")?;
    if c.tok("faults keyword")? != "faults" {
        return c.err("expected faults line");
    }
    let faults = match c.tok("faults seed")? {
        "none" => None,
        seed => {
            let seed: u64 = match seed.parse() {
                Ok(s) => s,
                Err(_) => return c.err(format!("bad fault seed {seed:?}")),
            };
            let prof = c.tok("fault profile")?;
            match FaultProfile::parse(prof) {
                Some(profile) => Some(FaultSpec { seed, profile }),
                None => return c.err(format!("bad fault profile {prof:?}")),
            }
        }
    };
    c.finish()?;

    for (line, extra) in (lines.line + 1..).zip(lines.iter) {
        if !extra.trim().is_empty() {
            return Err(SpecParseError { line, message: format!("trailing content {extra:?}") });
        }
    }

    Ok(ScenarioSpec { program, machine, mode, mapping, faults }.canonicalized())
}

fn parse_program(c: &mut Cursor<'_>) -> Result<ProgramSpec, SpecParseError> {
    Ok(match c.tok("program kind")? {
        "halo" => {
            let rows = c.usize("rows")?;
            let cols = c.usize("cols")?;
            let words = c.u64("words")?;
            let protocol = match c.tok("protocol")? {
                "irecv-isend" => HaloProtocol::IrecvIsend,
                "isend-irecv" => HaloProtocol::IsendIrecv,
                "sendrecv" => HaloProtocol::Sendrecv,
                t => return c.err(format!("bad protocol {t:?}")),
            };
            let reps = c.u32("reps")?;
            ProgramSpec::Halo(HaloConfig { grid: Grid2D::new(rows, cols), words, protocol, reps })
        }
        "md" => {
            let ranks = c.usize("ranks")?;
            let code = match c.tok("code")? {
                "lammps" => MdCode::Lammps,
                "pmemd" => MdCode::Pmemd,
                t => return c.err(format!("bad md code {t:?}")),
            };
            ProgramSpec::Md {
                ranks,
                cfg: MdConfig {
                    code,
                    atoms: c.u64("atoms")?,
                    neighbors: c.u64("neighbors")?,
                    pme_mesh: c.u64("pme_mesh")?,
                    output_every: c.u32("output_every")?,
                    steps: c.u32("steps")?,
                },
            }
        }
        "hpl" => ProgramSpec::Hpl(HplConfig {
            n: c.u64("n")?,
            nb: c.u64("nb")?,
            grid: {
                let rows = c.usize("rows")?;
                Grid2D::new(rows, c.usize("cols")?)
            },
            samples: c.usize("samples")?,
        }),
        "imb-allreduce" => ProgramSpec::ImbAllreduce {
            ranks: c.usize("ranks")?,
            bytes: c.u64("bytes")?,
            dtype: match c.tok("dtype")? {
                "f32" => DType::F32,
                "f64" => DType::F64,
                "int" => DType::Int,
                t => return c.err(format!("bad dtype {t:?}")),
            },
        },
        "pop" => ProgramSpec::Pop {
            ranks: c.usize("ranks")?,
            threads: c.u32("threads")?,
            cfg: hpcsim_apps::PopConfig {
                nx: c.u64("nx")?,
                ny: c.u64("ny")?,
                nz: c.u64("nz")?,
                steps_per_day: c.bits("steps_per_day")?,
                cg_iters: c.u64("cg_iters")?,
                chron_gear: c.bool01("chron_gear")?,
                cg_sim: c.u64("cg_sim")?,
                flops_per_point: c.bits("flops_per_point")?,
                imbalance: c.bits("imbalance")?,
            },
        },
        t => return c.err(format!("unknown program {t:?}")),
    })
}

fn parse_machine(next: &mut Lines<'_>) -> Result<MachineSpec, SpecParseError> {
    let mut c = next.next("machine")?;
    if c.tok("machine keyword")? != "machine" {
        return c.err("expected machine line");
    }
    let id = match c.tok("machine id")? {
        "bgl" => MachineId::BgL,
        "bgp" => MachineId::BgP,
        "xt3" => MachineId::Xt3,
        "xt4dc" => MachineId::Xt4Dc,
        "xt4qc" => MachineId::Xt4Qc,
        t => return c.err(format!("bad machine id {t:?}")),
    };
    let cores_per_node = c.u32("cores_per_node")?;
    let coherence = match c.tok("coherence")? {
        "sw" => CacheCoherence::Software,
        "hw" => CacheCoherence::Hardware,
        t => return c.err(format!("bad coherence {t:?}")),
    };
    let l3_shared_mib = match c.tok("l3")? {
        "none" => None,
        t => Some(bits_of(&c, "l3", t)?),
    };
    c.finish()?;

    let mut c = next.next("core")?;
    if c.tok("core keyword")? != "core" {
        return c.err("expected core line");
    }
    let clock_hz = c.bits("clock_hz")?;
    let flops_per_cycle = c.bits("flops_per_cycle")?;
    let l1_data_kib = c.u64("l1_data_kib")?;
    let line_bytes = c.u64("line_bytes")?;
    let l2 = match c.tok("l2 kind")? {
        "pf" => L2Kind::PrefetchEngine { streams: c.u32("streams")? },
        "cache" => L2Kind::Cache { kib: c.u64("kib")? },
        t => return c.err(format!("bad l2 kind {t:?}")),
    };
    let core = CoreArch {
        name: "",
        clock_hz,
        flops_per_cycle,
        l1_data_kib,
        line_bytes,
        l2,
        mem_bw_core: c.bits("mem_bw_core")?,
        irregular_eff: c.bits("irregular_eff")?,
    };
    c.finish()?;

    let mut c = next.next("mem")?;
    if c.tok("mem keyword")? != "mem" {
        return c.err("expected mem line");
    }
    let mem = MemorySpec {
        capacity_gib: c.bits("capacity_gib")?,
        bw_bytes: c.bits("bw_bytes")?,
        stream_eff_single: c.bits("stream_eff_single")?,
        stream_eff_loaded: c.bits("stream_eff_loaded")?,
        latency: SimTime(c.u64("latency")?),
    };
    c.finish()?;

    let mut c = next.next("nic")?;
    if c.tok("nic keyword")? != "nic" {
        return c.err("expected nic line");
    }
    let torus_link_bw = c.bits("torus_link_bw")?;
    let torus_links = c.u32("torus_links")?;
    let injection_bw = c.bits("injection_bw")?;
    let tree_bw = match c.tok("tree_bw")? {
        "none" => None,
        t => Some(bits_of(&c, "tree_bw", t)?),
    };
    let nic = NicSpec {
        torus_link_bw,
        torus_links,
        injection_bw,
        tree_bw,
        has_barrier_network: c.bool01("has_barrier_network")?,
        o_send: SimTime(c.u64("o_send")?),
        o_recv: SimTime(c.u64("o_recv")?),
        per_hop: SimTime(c.u64("per_hop")?),
        eager_threshold: c.u64("eager_threshold")?,
        route_diversity: c.bits("route_diversity")?,
    };
    c.finish()?;

    let mut c = next.next("pack")?;
    if c.tok("pack keyword")? != "pack" {
        return c.err("expected pack line");
    }
    let packaging = Packaging {
        nodes_per_rack: c.u32("nodes_per_rack")?,
        compute_per_io_node: c.u32("compute_per_io_node")?,
    };
    c.finish()?;

    let mut c = next.next("power")?;
    if c.tok("power keyword")? != "power" {
        return c.err("expected power line");
    }
    let power = PowerSpec {
        node_static_w: c.bits("node_static_w")?,
        core_idle_w: c.bits("core_idle_w")?,
        core_dyn_w: c.bits("core_dyn_w")?,
        mem_w: c.bits("mem_w")?,
        nic_w: c.bits("nic_w")?,
        rack_overhead_w: c.bits("rack_overhead_w")?,
        psu_efficiency: c.bits("psu_efficiency")?,
    };
    c.finish()?;

    Ok(MachineSpec {
        id,
        cores_per_node,
        core,
        coherence,
        l3_shared_mib,
        mem,
        nic,
        packaging,
        power,
    })
}

fn bits_of(c: &Cursor<'_>, what: &str, t: &str) -> Result<f64, SpecParseError> {
    let hex = t.strip_prefix("0x").ok_or(SpecParseError {
        line: c.line,
        message: format!("{what} must be 0x-prefixed bits, got {t:?}"),
    })?;
    let bits = u64::from_str_radix(hex, 16).map_err(|_| SpecParseError {
        line: c.line,
        message: format!("bad {what} bits {t:?}"),
    })?;
    Ok(f64::from_bits(bits))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcsim_machine::registry::{bluegene_p, xt4_dc};

    fn halo_cfg() -> HaloConfig {
        HaloConfig {
            grid: Grid2D::new(16, 8),
            words: 2048,
            protocol: HaloProtocol::IrecvIsend,
            reps: 2,
        }
    }

    #[test]
    fn canon_round_trips_through_parse() {
        let specs = [
            ScenarioSpec::halo(&bluegene_p(), ExecMode::Vn, Mapping::xyzt(), halo_cfg()),
            ScenarioSpec::halo(&bluegene_p(), ExecMode::Vn, Mapping::txyz(), halo_cfg())
                .with_faults(42, FaultProfile::Mixed),
            ScenarioSpec::md(&xt4_dc(), 64, MdConfig::pmemd_rub()),
            ScenarioSpec::hpl(
                &bluegene_p(),
                ExecMode::Smp,
                HplConfig { n: 10_000, nb: 144, grid: Grid2D::new(8, 8), samples: 4 },
            ),
            ScenarioSpec::imb_allreduce(&xt4_dc(), ExecMode::Vn, 128, 32_768, DType::F64),
            ScenarioSpec::pop(&bluegene_p(), ExecMode::Vn, 256, 1, hpcsim_apps::PopConfig::default()),
        ];
        for spec in specs {
            let canon = spec.to_canon();
            let parsed = ScenarioSpec::parse(&canon).expect("parse");
            assert_eq!(parsed.to_canon(), canon);
            assert_eq!(parsed.hash(), spec.hash());
            assert_eq!(parsed.program_hash(), spec.program_hash());
        }
    }

    #[test]
    fn canonicalization_collides_only_by_construction() {
        let m = bluegene_p();
        let xt = xt4_dc();
        // mapping is live for halo-on-bluegene …
        let a = ScenarioSpec::halo(&m, ExecMode::Vn, Mapping::txyz(), halo_cfg());
        let b = ScenarioSpec::halo(&m, ExecMode::Vn, Mapping::xyzt(), halo_cfg());
        assert_ne!(a.hash(), b.hash());
        // … but normalized away on a machine whose layout ignores it
        let c = ScenarioSpec::halo(&xt, ExecMode::Vn, Mapping::txyz(), halo_cfg());
        let d = ScenarioSpec::halo(&xt, ExecMode::Vn, Mapping::xyzt(), halo_cfg());
        assert_eq!(c.hash(), d.hash());
        // mode is normalized for MD (always VN) …
        let e = ScenarioSpec {
            mode: ExecMode::Smp,
            ..ScenarioSpec::md(&m, 64, MdConfig::lammps_rub())
        }
        .canonicalized();
        assert_eq!(e.hash(), ScenarioSpec::md(&m, 64, MdConfig::lammps_rub()).hash());
        // … and faults are dropped on fault-less entry points
        let f = ScenarioSpec::md(&m, 64, MdConfig::lammps_rub()).with_faults(9, FaultProfile::Link);
        assert_eq!(f.hash(), ScenarioSpec::md(&m, 64, MdConfig::lammps_rub()).hash());
        // display-only name never splits a hash
        let mut named = m.clone();
        named.core.name = "double hummer";
        assert_eq!(
            ScenarioSpec::halo(&named, ExecMode::Vn, Mapping::txyz(), halo_cfg()).hash(),
            a.hash()
        );
    }

    #[test]
    fn axes_that_matter_split_the_hash() {
        let m = bluegene_p();
        let base = ScenarioSpec::halo(&m, ExecMode::Vn, Mapping::txyz(), halo_cfg());
        let mut words = halo_cfg();
        words.words = 4096;
        let variants = [
            ScenarioSpec::halo(&m, ExecMode::Vn, Mapping::txyz(), words),
            ScenarioSpec::halo(&m, ExecMode::Smp, Mapping::txyz(), halo_cfg()),
            ScenarioSpec::halo(&xt4_dc(), ExecMode::Vn, Mapping::txyz(), halo_cfg()),
            ScenarioSpec::halo(&m.clone().with_flat_contention(), ExecMode::Vn, Mapping::txyz(), halo_cfg()),
            base.clone().with_faults(1, FaultProfile::Link),
            base.clone().with_faults(2, FaultProfile::Link),
            base.clone().with_faults(1, FaultProfile::Noise),
        ];
        for v in &variants {
            assert_ne!(v.hash(), base.hash(), "{}", v.to_canon());
        }
        // program hash tracks the program alone
        assert_eq!(variants[1].program_hash(), base.program_hash());
        assert_eq!(variants[2].program_hash(), base.program_hash());
        assert_ne!(variants[0].program_hash(), base.program_hash());
    }

    #[test]
    fn malformed_canon_is_diagnosed() {
        assert!(ScenarioSpec::parse("").is_err());
        assert!(ScenarioSpec::parse("nonsense\n").is_err());
        let good = ScenarioSpec::md(&bluegene_p(), 8, MdConfig::lammps_rub()).to_canon();
        // drop the faults line
        let truncated: String =
            good.lines().take(8).map(|l| format!("{l}\n")).collect();
        assert!(ScenarioSpec::parse(&truncated).is_err());
        // corrupt a float into a decimal
        let bad = good.replace("0x", "zz");
        assert!(ScenarioSpec::parse(&bad).is_err());
    }

    #[test]
    fn machine_canon_round_trips_standalone() {
        for m in [bluegene_p(), xt4_dc(), bluegene_p().with_flat_contention()] {
            let canon = machine_to_canon(&m);
            let parsed = machine_from_canon(&canon).expect("machine parse");
            assert_eq!(machine_to_canon(&parsed), canon);
        }
        assert!(machine_from_canon("garbage\n").is_err());
        let canon = machine_to_canon(&bluegene_p());
        assert!(machine_from_canon(&format!("{canon}extra\n")).is_err());
    }

    #[test]
    fn hash_is_stable_across_calls_and_documents_itself() {
        let spec = ScenarioSpec::halo(&bluegene_p(), ExecMode::Vn, Mapping::txyz(), halo_cfg());
        assert_eq!(spec.hash(), spec.hash());
        assert_eq!(format!("{}", spec.hash()).len(), 32);
        // FNV-1a-128 sanity pin on a known vector ("a")
        assert_eq!(
            format!("{}", fnv1a_128(b"a")),
            "d228cb696f1a8caf78912b704e4a8964"
        );
    }
}
