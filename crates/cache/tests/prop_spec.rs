//! Property tests pinning the canonical spec form: serialize →
//! deserialize → re-hash is the identity over randomized scenarios
//! across every program family, machine, mode, mapping and fault
//! profile — and distinct canonical forms never share a hash (the
//! documented by-construction collisions are exactly the axes
//! canonicalization erases).

use hpcsim_cache::{ScenarioSpec, SpecHash};
use hpcsim_faults::FaultProfile;
use hpcsim_hpcc::{HaloConfig, HaloProtocol, HplConfig};
use hpcsim_machine::registry::all_machines;
use hpcsim_machine::ExecMode;
use hpcsim_net::DType;
use hpcsim_topo::{Grid2D, Mapping};
use proptest::prelude::*;

/// Deterministic spec from a seed: a splitmix walk picks every axis, so
/// one `u64` names a point in the full scenario space.
fn spec_from_seed(seed: u64) -> ScenarioSpec {
    let mut state = seed;
    let mut next = move || {
        state = hpcsim_engine::splitmix64(state);
        state
    };
    let machines = all_machines();
    let machine = &machines[(next() % machines.len() as u64) as usize];
    let mode = match next() % 3 {
        0 => ExecMode::Vn,
        1 => ExecMode::Dual,
        _ => ExecMode::Smp,
    };
    let mappings = Mapping::predefined();
    let (_, mapping) = mappings[(next() % mappings.len() as u64) as usize];
    let spec = match next() % 5 {
        0 => {
            let protos = HaloProtocol::all();
            let cfg = HaloConfig {
                grid: Grid2D::new(1 + (next() % 16) as usize, 1 + (next() % 16) as usize),
                words: 1 + next() % 65_536,
                protocol: protos[(next() % protos.len() as u64) as usize],
                reps: 1 + (next() % 4) as u32,
            };
            ScenarioSpec::halo(machine, mode, mapping, cfg)
        }
        1 => {
            let cfg = if next() % 2 == 0 {
                hpcsim_apps::MdConfig::lammps_rub()
            } else {
                hpcsim_apps::MdConfig::pmemd_rub()
            };
            ScenarioSpec::md(machine, 2 + (next() % 128) as usize, cfg)
        }
        2 => {
            let cfg = HplConfig {
                n: 256 + next() % 8192,
                nb: 32 + next() % 224,
                grid: Grid2D::near_square(1 + (next() % 256) as usize),
                samples: 1 + (next() % 4) as usize,
            };
            ScenarioSpec::hpl(machine, mode, cfg)
        }
        3 => {
            let dtype = match next() % 3 {
                0 => DType::F32,
                1 => DType::F64,
                _ => DType::Int,
            };
            ScenarioSpec::imb_allreduce(
                machine,
                mode,
                2 + (next() % 1024) as usize,
                8 + next() % (1 << 20),
                dtype,
            )
        }
        _ => {
            let cfg = hpcsim_apps::PopConfig {
                chron_gear: next() % 2 == 0,
                ..hpcsim_apps::PopConfig::default()
            };
            ScenarioSpec::pop(
                machine,
                mode,
                16 + (next() % 2048) as usize,
                1 + (next() % 4) as u32,
                cfg,
            )
        }
    };
    if next() % 3 == 0 {
        let profile = match next() % 4 {
            0 => FaultProfile::Link,
            1 => FaultProfile::Noise,
            2 => FaultProfile::Loss,
            _ => FaultProfile::Mixed,
        };
        spec.with_faults(next(), profile)
    } else {
        spec
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// serialize → deserialize → re-hash is the identity: the parsed
    /// spec re-serializes to the same bytes, hashes to the same value,
    /// keys the same tier-2 shard, and canonicalization is idempotent.
    #[test]
    fn canon_parse_rehash_is_identity(seed: u64) {
        let canon = spec_from_seed(seed).canonicalized();
        let text = canon.to_canon();
        let parsed = ScenarioSpec::parse(&text).expect("canonical text must parse");
        assert_eq!(parsed.to_canon(), text, "parse must invert serialization");
        assert_eq!(parsed.hash(), canon.hash(), "hash must survive the round trip");
        assert_eq!(parsed.program_hash(), canon.program_hash());
        // canonicalization is idempotent on both sides of the trip
        assert_eq!(canon.clone().canonicalized().to_canon(), text);
        assert_eq!(parsed.clone().canonicalized().to_canon(), text);
        // and the hash is a pure function of the canonical bytes
        assert_eq!(canon.hash(), hpcsim_cache::fnv1a_128(text.as_bytes()));
    }

    /// Distinct specs collide only by construction: whenever two
    /// randomized scenarios serialize differently they must hash
    /// differently, and identical serializations (the canonicalized
    /// axes) must agree on the hash.
    #[test]
    fn distinct_canonical_forms_never_share_a_hash(seed_a: u64, seed_b: u64) {
        let a = spec_from_seed(seed_a).canonicalized();
        let b = spec_from_seed(seed_b).canonicalized();
        let (ha, hb): (SpecHash, SpecHash) = (a.hash(), b.hash());
        if a.to_canon() == b.to_canon() {
            assert_eq!(ha, hb);
        } else {
            assert_ne!(ha, hb, "hash collision:\n{}\n-- vs --\n{}", a.to_canon(), b.to_canon());
        }
    }
}
