//! Traced scenario batteries: run representative scenarios of a figure
//! with the [`hpcsim_probe`] recorder attached, then render breakdown
//! tables, Chrome traces, and a metrics report.
//!
//! Tracing a full `run_experiment` battery would record millions of
//! spans per figure; instead each traceable figure nominates a handful
//! of representative scenarios (the paper's interesting corners) that
//! reproduce its communication structure faithfully. Scenarios fan out
//! through [`parmap`] and are collected in input order, so the exported
//! trace and metrics are byte-identical regardless of `--jobs`.

use crate::experiment::{ExperimentId, Scale};
use crate::report::Table;
use crate::runner::parmap;
use hpcsim_apps::{md_run_probe, MdConfig};
use hpcsim_engine::stats::{Histogram, OnlineStats};
use hpcsim_engine::SimTime;
use hpcsim_hpcc as hpcc;
use hpcsim_machine::registry::bluegene_p;
use hpcsim_machine::ExecMode;
use hpcsim_net::DType;
use hpcsim_probe::{
    chrome_trace, metrics_report_json, trace_csv, GaugeId, MetricsRegistry, RingRecorder,
    SpanKind,
};
use hpcsim_topo::{Grid2D, Mapping};

/// One traced scenario: the recorder plus the replay facts needed to
/// cross-check it.
#[derive(Debug, Clone)]
pub struct TracedScenario {
    /// Human-readable scenario label (also the trace process name).
    pub label: String,
    /// Ranks that participated.
    pub ranks: usize,
    /// Job wall-clock.
    pub makespan: SimTime,
    /// Per-rank finish times (the cpu track tiles `[0, finish[r]]`).
    pub finish: Vec<SimTime>,
    /// Point-to-point messages sent.
    pub messages: u64,
    /// Point-to-point payload bytes sent.
    pub bytes: u64,
    /// The attached recorder.
    pub recorder: RingRecorder,
}

/// All traced scenarios of one figure.
#[derive(Debug, Clone)]
pub struct TraceReport {
    /// Which figure the scenarios belong to.
    pub id: ExperimentId,
    /// Scenarios in battery order.
    pub scenarios: Vec<TracedScenario>,
}

/// Specification of one traced scenario — `Send + Sync` so the battery
/// can fan out through [`parmap`].
enum Spec {
    Halo { protocol: hpcc::HaloProtocol, words: u64, grid: Grid2D },
    Allreduce { ranks: usize, bytes: u64, dtype: DType },
    Bcast { ranks: usize, bytes: u64 },
    Md { name: &'static str, ranks: usize, cfg: MdConfig },
}

impl Spec {
    fn run(&self, faults: Option<&hpcsim_faults::FaultPlan>) -> TracedScenario {
        let machine = bluegene_p();
        let mut rec = RingRecorder::new();
        let (label, res) = match self {
            Spec::Halo { protocol, words, grid } => {
                let cfg = hpcc::HaloConfig {
                    grid: *grid,
                    words: *words,
                    protocol: *protocol,
                    reps: 2,
                };
                let (_, res) = hpcc::halo_run_probe_with(
                    &machine,
                    ExecMode::Vn,
                    Mapping::txyz(),
                    &cfg,
                    faults,
                    &mut rec,
                );
                let label = format!(
                    "halo {}x{} {} {}w",
                    grid.rows,
                    grid.cols,
                    protocol.label(),
                    words
                );
                (label, res)
            }
            Spec::Allreduce { ranks, bytes, dtype } => {
                let (_, res) = hpcc::imb_allreduce_probe(
                    &machine,
                    ExecMode::Vn,
                    *ranks,
                    *bytes,
                    *dtype,
                    &mut rec,
                );
                (format!("allreduce {bytes}B {dtype:?} {ranks}r"), res)
            }
            Spec::Bcast { ranks, bytes } => {
                let (_, res) =
                    hpcc::imb_bcast_probe(&machine, ExecMode::Vn, *ranks, *bytes, &mut rec);
                (format!("bcast {bytes}B {ranks}r"), res)
            }
            Spec::Md { name, ranks, cfg } => {
                let (_, res) = md_run_probe(&machine, *ranks, cfg, &mut rec);
                (format!("{name} {ranks}r"), res)
            }
        };
        TracedScenario {
            label,
            ranks: res.finish.len(),
            makespan: res.makespan(),
            finish: res.finish.clone(),
            messages: res.messages,
            bytes: res.bytes_sent,
            recorder: rec,
        }
    }
}

/// The figures with a traced battery.
pub fn traceable() -> [ExperimentId; 3] {
    [ExperimentId::Fig2, ExperimentId::Fig3, ExperimentId::Fig8]
}

/// Run the traced battery for one figure; `None` if the figure has no
/// traced battery. Scenarios run through [`parmap`] and are merged in
/// input order, so output is identical at any `--jobs`.
pub fn trace_experiment(id: ExperimentId, scale: Scale) -> Option<TraceReport> {
    trace_experiment_with(id, scale, None)
}

/// [`trace_experiment`] with an optional armed fault plan. The plan
/// reaches the point-to-point replay path (the HALO scenarios, where
/// detours, retransmit spans and outage gauges show up in the trace);
/// collective- and app-level scenarios are replayed pristine for now.
/// With `faults` of `None` this is byte-for-byte [`trace_experiment`].
pub fn trace_experiment_with(
    id: ExperimentId,
    scale: Scale,
    faults: Option<&hpcsim_faults::FaultPlan>,
) -> Option<TraceReport> {
    let specs: Vec<Spec> = match id {
        ExperimentId::Fig2 => {
            // nearest-neighbour halo: both extremes of the word sweep
            // plus the protocol that serializes the four directions
            let grid = Grid2D::near_square(scale.ranks(8192));
            vec![
                Spec::Halo { protocol: hpcc::HaloProtocol::IrecvIsend, words: 2048, grid },
                Spec::Halo { protocol: hpcc::HaloProtocol::Sendrecv, words: 2048, grid },
                Spec::Halo { protocol: hpcc::HaloProtocol::IrecvIsend, words: 32768, grid },
            ]
        }
        ExperimentId::Fig3 => {
            // collectives at the fixed 32 KiB point: the tree-eligible
            // double-precision Allreduce, its single-precision twin
            // (no tree), and Bcast
            let ranks = scale.ranks(8192);
            let bytes = 32 * 1024;
            vec![
                Spec::Allreduce { ranks, bytes, dtype: DType::F64 },
                Spec::Allreduce { ranks, bytes, dtype: DType::F32 },
                Spec::Bcast { ranks, bytes },
            ]
        }
        ExperimentId::Fig8 => {
            let ranks = scale.ranks(2048);
            vec![
                Spec::Md { name: "lammps", ranks, cfg: MdConfig::lammps_rub() },
                Spec::Md { name: "pmemd", ranks, cfg: MdConfig::pmemd_rub() },
            ]
        }
        _ => return None,
    };
    let scenarios = parmap(&specs, |s| s.run(faults));
    Some(TraceReport { id, scenarios })
}

/// Per-scenario time breakdown of a traced figure: where simulated time
/// goes, split by the probe's span categories. The four cpu columns sum
/// to the mean rank finish time; the four network columns overlap them
/// (a blocked rank's `wait` *is* wire + contention + handshake seen
/// from the other side).
pub fn breakdown_table(report: &TraceReport) -> Table {
    let mut headers = vec!["Scenario", "Ranks", "Makespan (us)", "CPU mean (us)"];
    headers.extend(hpcsim_probe::TimeBreakdown::ZERO.fields().map(|(n, _)| n));
    let title = format!("{}: traced time breakdown (per-rank mean, us)", report.id.slug());
    let mut t = Table::new(&title, &headers);
    for s in &report.scenarios {
        let b = s.recorder.breakdown();
        let ranks = s.ranks.max(1) as f64;
        let mut row = vec![
            s.label.clone(),
            s.ranks.to_string(),
            format!("{:.3}", s.makespan.as_us()),
            format!("{:.3}", b.cpu_total().as_us() / ranks),
        ];
        row.extend(b.fields().iter().map(|(_, v)| format!("{:.3}", v.as_us() / ranks)));
        t.push_row(row);
    }
    t
}

/// Metrics registry for one traced scenario: replay facts, recorder
/// counters, queue-depth gauges, link-utilization summary, wire-latency
/// quantiles, and the time breakdown.
pub fn scenario_metrics(s: &TracedScenario) -> MetricsRegistry {
    let mut reg = MetricsRegistry::new(&s.label);
    reg.counter("ranks", s.ranks as u64)
        .counter("messages", s.messages)
        .counter("bytes_sent", s.bytes)
        .gauge("makespan_us", s.makespan.as_us())
        .counter("spans_recorded", s.recorder.total_spans())
        .counter("spans_dropped", s.recorder.dropped())
        .counter("unexpected_messages", s.recorder.unexpected());
    for g in GaugeId::all() {
        let v = s.recorder.gauge_value(g);
        // fault-era gauges only appear once fault injection fired, so a
        // pristine run's metrics report keeps its pre-fault schema
        let fault_gauge = matches!(
            g,
            GaugeId::LinkOutages | GaugeId::Retransmits | GaugeId::FlowUnderflows
        );
        if !fault_gauge || v != 0 {
            reg.counter(g.label(), v);
        }
    }

    // contention heatmap summary: peak and time-mean load per used link
    let usage = s.recorder.link_usage(s.makespan);
    let mut peak = OnlineStats::new();
    let mut mean = OnlineStats::new();
    for u in &usage {
        peak.push(u.peak as f64);
        mean.push(u.mean);
    }
    reg.counter("links_used", usage.len() as u64)
        .stats("link_peak_flows", &peak)
        .stats("link_mean_load", &mean);

    // wire latency distribution over retained message spans
    let mut h = Histogram::latency();
    for ev in s.recorder.spans() {
        if ev.kind == SpanKind::MsgWire {
            h.record(ev.dur().as_secs());
        }
    }
    reg.quantiles("msg_wire_seconds", &h);

    for (name, v) in s.recorder.breakdown().fields() {
        reg.gauge(format!("{name}_total_us"), v.as_us());
    }
    reg
}

/// JSON metrics report over a set of traced figures
/// (`hpcsim-probe-metrics/1` schema).
pub fn metrics_json(reports: &[TraceReport]) -> String {
    let experiments: Vec<(String, Vec<MetricsRegistry>)> = reports
        .iter()
        .map(|r| (r.id.slug().to_string(), r.scenarios.iter().map(scenario_metrics).collect()))
        .collect();
    metrics_report_json(&experiments)
}

fn named_recorders(reports: &[TraceReport]) -> Vec<(String, &RingRecorder)> {
    reports
        .iter()
        .flat_map(|r| {
            r.scenarios
                .iter()
                .map(move |s| (format!("{}/{}", r.id.slug(), s.label), &s.recorder))
        })
        .collect()
}

/// Chrome `trace_event` JSON over a set of traced figures — one trace
/// process per scenario, loadable in Perfetto / `chrome://tracing`.
pub fn chrome_json(reports: &[TraceReport]) -> String {
    chrome_trace(&named_recorders(reports))
}

/// Flat CSV of every retained span over a set of traced figures.
pub fn spans_csv(reports: &[TraceReport]) -> String {
    trace_csv(&named_recorders(reports))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcsim_probe::validate_trace;

    fn small_fig2() -> TraceReport {
        trace_experiment(ExperimentId::Fig2, Scale::Quick).unwrap()
    }

    #[test]
    fn untraceable_figures_return_none() {
        assert!(trace_experiment(ExperimentId::Table1, Scale::Quick).is_none());
        for id in traceable() {
            // cheap existence check: the dispatcher recognises the id
            // without running it (Fig2 is exercised below)
            assert!(ExperimentId::from_slug(id.slug()).is_some());
        }
    }

    #[test]
    fn fig2_battery_traces_and_validates() {
        let report = small_fig2();
        assert_eq!(report.scenarios.len(), 3);
        for s in &report.scenarios {
            assert!(s.makespan > SimTime::ZERO, "{}", s.label);
            assert_eq!(s.recorder.dropped(), 0, "{}", s.label);
            // cpu spans tile each rank's clock exactly
            let sums = s.recorder.cpu_sums();
            assert_eq!(sums.len(), s.finish.len(), "{}", s.label);
            for (r, (&sum, &fin)) in sums.iter().zip(&s.finish).enumerate() {
                assert_eq!(sum, fin, "{}: rank {r}", s.label);
            }
        }
        let json = chrome_json(std::slice::from_ref(&report));
        let stats = validate_trace(&json).expect("fig2 trace must validate");
        assert!(stats.spans > 0);

        let table = breakdown_table(&report);
        assert_eq!(table.rows.len(), 3);
    }

    #[test]
    fn fig2_metrics_are_populated() {
        let report = small_fig2();
        let json = metrics_json(std::slice::from_ref(&report));
        assert!(json.contains("\"hpcsim-probe-metrics/1\""));
        assert!(json.contains("\"fig2\""));
        for s in &report.scenarios {
            let reg = scenario_metrics(s);
            let get = |k: &str| {
                reg.entries()
                    .iter()
                    .find(|(n, _)| n == k)
                    .unwrap_or_else(|| panic!("{}: missing metric {k}", s.label))
                    .1
                    .clone()
            };
            match get("links_used") {
                hpcsim_probe::MetricValue::Counter(n) => assert!(n > 0, "{}", s.label),
                v => panic!("links_used not a counter: {v:?}"),
            }
            match get("messages") {
                hpcsim_probe::MetricValue::Counter(n) => {
                    assert_eq!(n, s.messages, "{}", s.label)
                }
                v => panic!("messages not a counter: {v:?}"),
            }
        }
    }
}
