//! Timed cold-vs-warm comparison of the scenario cache on a repeated
//! Fig 2(c,d)-style query mix — the measurement behind the
//! `scenario_cache` entry in `BENCH_repro.json` (schema v4) and the
//! release-gated warm-speedup guard.
//!
//! The mix is the 32-point mapping scan (two panel rank counts × eight
//! mappings × two representative halo sizes) on the *real* BG/P, with
//! every point issued twice per pass — production what-if traffic
//! repeats itself, and the duplicate issues exercise the in-flight
//! dedupe under the worker pool. The cold pass pays for recording and
//! replay (tier 2 deduplicates the recordings: eight mappings share
//! each trace); the warm pass is pure tier-1 lookups. Agreement is
//! checked bit-for-bit: a cache hit must return exactly the bytes the
//! cold evaluation produced.

use hpcsim_cache::{evaluate_in, CacheConfig, ScenarioCache, ScenarioSpec};
use hpcsim_hpcc as hpcc;
use hpcsim_machine::registry::bluegene_p;
use hpcsim_machine::ExecMode;
use hpcsim_topo::{Grid2D, Mapping};

use crate::experiment::Scale;
use crate::runner::parmap;

/// Outcome of running the repeated query mix cold and then warm.
#[derive(Debug, Clone, Copy)]
pub struct ScenarioCacheStats {
    /// Distinct scenario specs in the mix (panels × mappings × sizes).
    pub points: u64,
    /// Queries issued per pass (every spec twice).
    pub queries: u64,
    /// Wall seconds for the cold pass (cache empty).
    pub cold_seconds: f64,
    /// Wall seconds for the warm pass (same queries again).
    pub warm_seconds: f64,
    /// Tier-1 result hits across both passes.
    pub result_hits: u64,
    /// Tier-1 result misses (= evaluations actually run).
    pub result_misses: u64,
    /// Queries that coalesced onto an identical in-flight evaluation.
    pub coalesced: u64,
    /// Tier-2 trace-store hits (mappings sharing a recording).
    pub trace_hits: u64,
    /// Tier-2 trace-store misses (= traces actually recorded).
    pub trace_misses: u64,
    /// Whether the warm pass returned bit-identical values.
    pub bitwise_identical: bool,
}

impl ScenarioCacheStats {
    /// Cold-over-warm wall-clock ratio.
    pub fn speedup(&self) -> f64 {
        self.cold_seconds / self.warm_seconds.max(1e-12)
    }
}

/// Run the Fig 2(c,d)-style query mix against a fresh in-memory cache:
/// one cold pass, one warm pass, both fanned out over the worker pool.
pub fn scenario_cache_battery(scale: Scale) -> ScenarioCacheStats {
    let machine = bluegene_p();
    let mappings: Vec<Mapping> = Mapping::fig2_set().iter().map(|&(_, m)| m).collect();
    let words = [2048u64, 32_768];
    let grids = [
        Grid2D::near_square(scale.ranks(4096)),
        Grid2D::near_square(scale.ranks(8192)),
    ];
    let specs: Vec<ScenarioSpec> = grids
        .iter()
        .flat_map(|&grid| {
            let machine = &machine;
            let mappings = &mappings;
            words.iter().flat_map(move |&w| {
                mappings.iter().map(move |&mapping| {
                    let cfg = hpcc::HaloConfig {
                        grid,
                        words: w,
                        protocol: hpcc::HaloProtocol::IrecvIsend,
                        reps: 2,
                    };
                    ScenarioSpec::halo(machine, ExecMode::Vn, mapping, cfg)
                })
            })
        })
        .collect();
    // every spec issued twice per pass, interleaved so the duplicate of
    // a point lands on a different worker while the first may still be
    // in flight
    let queries: Vec<usize> = (0..specs.len()).chain(0..specs.len()).collect();

    let cache = ScenarioCache::new(CacheConfig::default());
    let run = || -> (f64, Vec<u64>) {
        let t0 = std::time::Instant::now();
        let bits = parmap(&queries, |&i| {
            evaluate_in(&cache, &specs[i]).expect("pristine halo scenarios evaluate")[0].to_bits()
        });
        (t0.elapsed().as_secs_f64(), bits)
    };
    let (cold_seconds, cold_bits) = run();
    let (warm_seconds, warm_bits) = run();

    let s = cache.stats();
    ScenarioCacheStats {
        points: specs.len() as u64,
        queries: queries.len() as u64,
        cold_seconds,
        warm_seconds,
        result_hits: s.result_hits,
        result_misses: s.result_misses,
        coalesced: s.coalesced,
        trace_hits: s.trace_hits,
        trace_misses: s.trace_misses,
        bitwise_identical: cold_bits == warm_bits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn battery_shape_and_identity_at_quick_scale() {
        let s = scenario_cache_battery(Scale::Quick);
        assert_eq!(s.points, 32);
        assert_eq!(s.queries, 64);
        assert!(s.bitwise_identical, "warm lookups must return cold bits");
        // the cold pass evaluates each distinct point exactly once
        // (dupes hit or coalesce); the warm pass is pure hits
        assert!(s.result_misses <= s.points, "no point may evaluate twice");
        assert!(s.result_hits >= s.queries, "the warm pass must be pure hits");
        // eight mappings per (grid, words) pair share one recording
        assert_eq!(s.trace_misses, 4, "exactly one recording per (grid, words)");
        // every other cold evaluation found its trace already recorded
        // or in flight (the coalesced counter spans both tiers)
        assert!(
            s.trace_hits + s.coalesced >= s.result_misses - s.trace_misses,
            "mappings must share traces: {s:?}"
        );
        assert!(s.cold_seconds > 0.0 && s.warm_seconds > 0.0);
    }
}
