//! Deterministic parallel scenario execution.
//!
//! Every experiment in the battery is a pile of independent simulation
//! points — (machine, mode, ranks, size, …) tuples, each replayed in its
//! own `TraceSim`. The experiment functions collect those points into a
//! declarative list and hand it to [`parmap`], which fans the points out
//! over a worker pool and returns results **in input order**. Because
//! each point is a pure function of its inputs and assembly order never
//! depends on completion order, rendered artifacts are byte-identical at
//! any worker count — the `parallel_determinism` integration test pins
//! this for all twelve experiments.
//!
//! The pool size is a process-global knob ([`set_jobs`]) so the `repro`
//! binary's `--jobs N` reaches every experiment without threading a
//! parameter through the whole call tree.

use hpcsim_obs as obs;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::LazyLock;

/// Obs metrics for the runner. Scenario and panic counts are
/// deterministic: the battery executes the same scenarios (and the same
/// ones panic) at any worker count, under either sweep engine, and at
/// any cache temperature — panicking evaluations are never cached.
struct ObsMetrics {
    scenarios: &'static obs::Counter,
    panics: &'static obs::Counter,
    wall: &'static obs::Histogram,
}

fn metrics() -> &'static ObsMetrics {
    use obs::Class::Deterministic;
    static M: LazyLock<ObsMetrics> = LazyLock::new(|| ObsMetrics {
        scenarios: obs::counter(
            "hpcsim_scenarios_total",
            "Scenario evaluations executed by the runner",
            Deterministic,
        ),
        panics: obs::counter(
            "hpcsim_scenario_panics_total",
            "Scenario evaluations isolated after panicking",
            Deterministic,
        ),
        wall: obs::histogram(
            "hpcsim_scenario_wall_ns",
            "Host wall-clock per scenario evaluation",
        ),
    });
    &M
}

/// 0 means "auto": one worker per available core.
static JOBS: AtomicUsize = AtomicUsize::new(0);

/// Set the worker-pool size for subsequent [`parmap`] calls. `0` restores
/// the default (one worker per available core).
pub fn set_jobs(n: usize) {
    JOBS.store(n, Ordering::SeqCst);
}

/// The effective worker count: the last [`set_jobs`] value, or the number
/// of available cores when unset.
pub fn jobs() -> usize {
    match JOBS.load(Ordering::SeqCst) {
        0 => std::thread::available_parallelism().map_or(1, |n| n.get()),
        n => n,
    }
}

/// A captured scenario panic: which input index blew up, and the panic
/// payload rendered to a string. Produced by [`try_parmap`]; turned into
/// a structured battery-failure row by the resilience harness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioPanic {
    /// Index of the failing scenario in the input slice.
    pub index: usize,
    /// The panic payload (or a placeholder for non-string payloads).
    pub message: String,
}

impl std::fmt::Display for ScenarioPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "scenario {} panicked: {}", self.index, self.message)
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Evaluate `f` over every scenario in `items` on up to [`jobs`] worker
/// threads; results come back in input order regardless of which worker
/// finished first. Workers pull scenarios from a shared atomic cursor, so
/// an expensive point at the front doesn't serialize the tail.
///
/// A panic in `f` aborts the whole battery with a message naming the
/// failing scenario index; use [`try_parmap`] to isolate failures
/// per-scenario instead.
pub fn parmap<I, O, F>(items: &[I], f: F) -> Vec<O>
where
    I: Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    try_parmap(items, f)
        .into_iter()
        .map(|r| match r {
            Ok(v) => v,
            Err(p) => panic!("{p}"),
        })
        .collect()
}

/// [`parmap`] with per-scenario panic isolation: each scenario runs under
/// `catch_unwind`, so one poisoned point comes back as a
/// [`ScenarioPanic`] in its slot while every other scenario still
/// completes and returns `Ok` — a worker thread never dies with other
/// scenarios' results in its lap.
pub fn try_parmap<I, O, F>(items: &[I], f: F) -> Vec<Result<O, ScenarioPanic>>
where
    I: Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    use std::panic::{catch_unwind, AssertUnwindSafe};

    let n = items.len();
    let m = metrics();
    let run_one = |i: usize| -> Result<O, ScenarioPanic> {
        m.scenarios.inc();
        // skip the Instant syscalls entirely while obs is off
        let start = obs::enabled().then(std::time::Instant::now);
        let out = catch_unwind(AssertUnwindSafe(|| f(&items[i])))
            .map_err(|p| ScenarioPanic { index: i, message: panic_message(p.as_ref()) });
        if let Some(t) = start {
            m.wall.record_duration(t.elapsed());
        }
        if out.is_err() {
            m.panics.inc();
        }
        out
    };
    let workers = jobs().min(n);
    if workers <= 1 {
        return (0..n).map(run_one).collect();
    }

    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<Result<O, ScenarioPanic>>> = (0..n).map(|_| None).collect();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    let mut done = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        done.push((i, run_one(i)));
                    }
                    done
                })
            })
            .collect();
        for h in handles {
            // scenario panics are caught inside run_one, so a worker can
            // only die on a panic escaping the catch (e.g. abort-on-panic
            // payload drops) — fold even that into a per-slot error
            if let Ok(batch) = h.join() {
                for (i, v) in batch {
                    slots[i] = Some(v);
                }
            }
        }
    });
    slots
        .into_iter()
        .enumerate()
        .map(|(i, o)| {
            o.unwrap_or_else(|| {
                Err(ScenarioPanic { index: i, message: "scenario result lost to a worker crash".to_string() })
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        // make early items the slowest so out-of-order completion is likely
        let items: Vec<usize> = (0..64).collect();
        let out = parmap(&items, |&i| {
            if i < 8 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            i * 10
        });
        assert_eq!(out, (0..64).map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single() {
        let none: Vec<u32> = vec![];
        assert!(parmap(&none, |&x| x).is_empty());
        assert_eq!(parmap(&[7u32], |&x| x + 1), vec![8]);
    }

    #[test]
    fn poisoned_scenario_is_isolated() {
        let items: Vec<usize> = (0..16).collect();
        let out = try_parmap(&items, |&i| {
            if i == 5 {
                panic!("boom at {i}");
            }
            i * 2
        });
        assert_eq!(out.len(), 16);
        for (i, r) in out.iter().enumerate() {
            if i == 5 {
                let p = r.as_ref().expect_err("scenario 5 must fail");
                assert_eq!(p.index, 5);
                assert!(p.message.contains("boom at 5"), "{}", p.message);
            } else {
                assert_eq!(*r.as_ref().expect("healthy scenario"), i * 2);
            }
        }
    }

    #[test]
    #[should_panic(expected = "scenario 3 panicked")]
    fn parmap_names_the_failing_scenario() {
        let items: Vec<usize> = (0..8).collect();
        let _ = parmap(&items, |&i| {
            if i == 3 {
                panic!("bad point");
            }
            i
        });
    }

    #[test]
    fn jobs_knob_round_trips() {
        let before = jobs();
        set_jobs(3);
        assert_eq!(jobs(), 3);
        set_jobs(0);
        assert!(jobs() >= 1);
        set_jobs(if before == 0 { 0 } else { before });
    }
}
