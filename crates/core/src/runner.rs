//! Deterministic parallel scenario execution.
//!
//! Every experiment in the battery is a pile of independent simulation
//! points — (machine, mode, ranks, size, …) tuples, each replayed in its
//! own `TraceSim`. The experiment functions collect those points into a
//! declarative list and hand it to [`parmap`], which fans the points out
//! over a worker pool and returns results **in input order**. Because
//! each point is a pure function of its inputs and assembly order never
//! depends on completion order, rendered artifacts are byte-identical at
//! any worker count — the `parallel_determinism` integration test pins
//! this for all twelve experiments.
//!
//! The pool size is a process-global knob ([`set_jobs`]) so the `repro`
//! binary's `--jobs N` reaches every experiment without threading a
//! parameter through the whole call tree.

use std::sync::atomic::{AtomicUsize, Ordering};

/// 0 means "auto": one worker per available core.
static JOBS: AtomicUsize = AtomicUsize::new(0);

/// Set the worker-pool size for subsequent [`parmap`] calls. `0` restores
/// the default (one worker per available core).
pub fn set_jobs(n: usize) {
    JOBS.store(n, Ordering::SeqCst);
}

/// The effective worker count: the last [`set_jobs`] value, or the number
/// of available cores when unset.
pub fn jobs() -> usize {
    match JOBS.load(Ordering::SeqCst) {
        0 => std::thread::available_parallelism().map_or(1, |n| n.get()),
        n => n,
    }
}

/// Evaluate `f` over every scenario in `items` on up to [`jobs`] worker
/// threads; results come back in input order regardless of which worker
/// finished first. Workers pull scenarios from a shared atomic cursor, so
/// an expensive point at the front doesn't serialize the tail.
pub fn parmap<I, O, F>(items: &[I], f: F) -> Vec<O>
where
    I: Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    let n = items.len();
    let workers = jobs().min(n);
    if workers <= 1 {
        return items.iter().map(f).collect();
    }

    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<O>> = (0..n).map(|_| None).collect();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    let mut done = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        done.push((i, f(&items[i])));
                    }
                    done
                })
            })
            .collect();
        for h in handles {
            for (i, v) in h.join().expect("scenario worker panicked") {
                slots[i] = Some(v);
            }
        }
    });
    slots.into_iter().map(|o| o.expect("every scenario slot filled")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        // make early items the slowest so out-of-order completion is likely
        let items: Vec<usize> = (0..64).collect();
        let out = parmap(&items, |&i| {
            if i < 8 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            i * 10
        });
        assert_eq!(out, (0..64).map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single() {
        let none: Vec<u32> = vec![];
        assert!(parmap(&none, |&x| x).is_empty());
        assert_eq!(parmap(&[7u32], |&x| x + 1), vec![8]);
    }

    #[test]
    fn jobs_knob_round_trips() {
        let before = jobs();
        set_jobs(3);
        assert_eq!(jobs(), 3);
        set_jobs(0);
        assert!(jobs() >= 1);
        set_jobs(if before == 0 { 0 } else { before });
    }
}
