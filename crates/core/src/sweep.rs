//! Timed comparison of the sweep engines on the Fig 2(c,d) mapping
//! scan — the measurement behind the `fig2_mapping_sweep` entry in
//! `BENCH_repro.json` (schema v3) and the release-gated speedup guard.
//!
//! The scan runs on a contention-flat BG/P variant
//! ([`MachineSpec::with_flat_contention`]) so the DAG path is live (on
//! the real, contended BG/P the Dag engine falls back to replay and the
//! comparison would be vacuous). Agreement is checked point by point:
//! both engines must produce bit-identical seconds-per-exchange.

use hpcsim_hpcc as hpcc;
use hpcsim_machine::registry::bluegene_p;
use hpcsim_machine::{ExecMode, MachineSpec};
use hpcsim_mpi::{SweepEngine, TraceDag};
use hpcsim_topo::{Grid2D, Mapping};

use crate::experiment::Scale;

/// Outcome of racing the two engines over the 32-point mapping sweep.
#[derive(Debug, Clone, Copy)]
pub struct MappingSweepStats {
    /// Sweep points evaluated per engine (panels × mappings × sizes).
    pub points: u64,
    /// Wall seconds for the per-point replay engine (min of 3 timed
    /// rounds after a warmup round).
    pub replay_seconds: f64,
    /// Wall seconds for compile-once-evaluate-per-point DAG engine
    /// (compilation included; min of 3 timed rounds after a warmup).
    pub dag_seconds: f64,
    /// Task nodes in the largest compiled DAG.
    pub dag_nodes: u64,
    /// Dependency edges in the largest compiled DAG.
    pub dag_edges: u64,
    /// Whether every point agreed bit-for-bit across engines.
    pub engines_agree: bool,
}

impl MappingSweepStats {
    /// Replay-over-DAG wall-clock ratio.
    pub fn speedup(&self) -> f64 {
        self.replay_seconds / self.dag_seconds.max(1e-12)
    }
}

/// The Fig 2(c,d) sweep shape: both panel rank counts × the eight
/// predefined mappings × two representative halo sizes (one eager, one
/// rendezvous) = 32 points, evaluated under both engines and timed.
pub fn fig2_mapping_sweep(scale: Scale) -> MappingSweepStats {
    let machine: MachineSpec = bluegene_p().with_flat_contention();
    let mappings: Vec<Mapping> = Mapping::fig2_set().iter().map(|&(_, m)| m).collect();
    let words = [2048u64, 32_768];
    let grids = [
        Grid2D::near_square(scale.ranks(4096)),
        Grid2D::near_square(scale.ranks(8192)),
    ];
    let cfgs: Vec<hpcc::HaloConfig> = grids
        .iter()
        .flat_map(|&grid| {
            words.iter().map(move |&w| hpcc::HaloConfig {
                grid,
                words: w,
                protocol: hpcc::HaloProtocol::IrecvIsend,
                reps: 2,
            })
        })
        .collect();
    let points = (cfgs.len() * mappings.len()) as u64;

    // Record each config's trace ONCE, outside both timed regions: the
    // trace is identical input to both engines (it depends only on
    // grid/words/protocol), so neither engine should be billed for it.
    // The replay region is then 32 × (layout + event-queue replay); the
    // DAG region is 4 × compile + 32 critical-path evaluations —
    // compilation is the DAG engine's real cost and stays inside.
    let traced: Vec<(hpcc::HaloConfig, Vec<Vec<hpcsim_mpi::Op>>)> = cfgs
        .into_iter()
        .map(|cfg| {
            let traces = hpcc::halo_traces(&cfg);
            (cfg, traces)
        })
        .collect();

    let run = |engine: SweepEngine| -> (f64, Vec<Vec<f64>>) {
        let t0 = std::time::Instant::now();
        let results = traced
            .iter()
            .map(|(cfg, traces)| {
                hpcc::halo_run_traces_with(&machine, ExecMode::Vn, &mappings, cfg, traces, engine)
            })
            .collect();
        (t0.elapsed().as_secs_f64(), results)
    };
    // One untimed round first: the entry tracks steady-state engine
    // cost, and a cold first call bills page faults for the compile
    // arenas and lane scratch against whichever engine runs first.
    // Then min-of-3 timed rounds per engine: the CI wall-clock smoke
    // compares this entry against the committed report, and a single
    // timed round is at the mercy of scheduler noise on shared
    // runners; the minimum is the stable steady-state estimator.
    let (_, warm_replay) = run(SweepEngine::Replay);
    let (_, warm_dag) = run(SweepEngine::Dag);
    let mut replay_seconds = f64::INFINITY;
    let mut dag_seconds = f64::INFINITY;
    let mut engines_agree = true;
    for _ in 0..3 {
        let (rs, replay_results) = run(SweepEngine::Replay);
        let (ds, dag_results) = run(SweepEngine::Dag);
        replay_seconds = replay_seconds.min(rs);
        dag_seconds = dag_seconds.min(ds);
        engines_agree = engines_agree
            && replay_results == dag_results
            && warm_replay == replay_results
            && warm_dag == dag_results;
    }

    let (mut dag_nodes, mut dag_edges) = (0u64, 0u64);
    for (_, traces) in &traced {
        let stats = TraceDag::compile_world(traces).stats();
        if stats.nodes > dag_nodes {
            dag_nodes = stats.nodes;
            dag_edges = stats.edges;
        }
    }

    MappingSweepStats {
        points,
        replay_seconds,
        dag_seconds,
        dag_nodes,
        dag_edges,
        engines_agree,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_engines_agree_at_quick_scale() {
        let s = fig2_mapping_sweep(Scale::Quick);
        assert!(s.engines_agree, "DAG and replay diverged on a flat machine");
        assert_eq!(s.points, 32);
        assert!(s.dag_nodes > 0 && s.dag_edges > s.dag_nodes / 2);
        assert!(s.replay_seconds > 0.0 && s.dag_seconds > 0.0);
    }
}
