//! The resilience battery: Figure 2's HALO sweep re-run under each
//! fault profile, reporting slowdown versus the pristine run.
//!
//! Each scenario (a halo size on the near-square grid) is one
//! [`try_parmap`] work item, so a scenario that panics — whether from a
//! genuine bug or the hidden self-test poison — becomes a structured
//! [`ScenarioError`] row while every other scenario still completes.
//! A fault plan that stalls a scenario (retransmit budget exhausted, or
//! a destination cut off) is *not* a panic: the stall diagnostic shows
//! up in that profile's table cell instead.
//!
//! All fault draws are seeded, so the battery is byte-identical at any
//! `--jobs` count.

use crate::experiment::Scale;
use crate::report::Table;
use crate::runner::try_parmap;
use hpcsim_faults::{FaultPlan, FaultProfile};
use hpcsim_hpcc as hpcc;
use hpcsim_machine::registry::bluegene_p;
use hpcsim_machine::ExecMode;
use hpcsim_topo::{Grid2D, Mapping};

/// A scenario that failed with a panic (captured by the harness) rather
/// than a diagnosed fault outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioError {
    /// Index of the scenario in battery order.
    pub index: usize,
    /// The scenario's label.
    pub label: String,
    /// The captured panic message.
    pub message: String,
}

/// The battery's output: the slowdown table plus any scenario failures.
#[derive(Debug, Clone)]
pub struct ResilienceReport {
    /// One row per surviving scenario: pristine time, then per-profile
    /// time and slowdown factor.
    pub table: Table,
    /// Scenarios that panicked, in battery order.
    pub errors: Vec<ScenarioError>,
}

impl ResilienceReport {
    /// True when every scenario completed without panicking.
    pub fn all_ok(&self) -> bool {
        self.errors.is_empty()
    }
}

struct Spec {
    label: String,
    words: u64,
    grid: Grid2D,
    poison: bool,
}

struct Row {
    label: String,
    pristine_us: f64,
    /// Per-profile `(microseconds, slowdown)`; `Err` carries the stall
    /// diagnostic.
    by_profile: Vec<Result<(f64, f64), String>>,
}

fn run_spec(spec: &Spec, seed: u64) -> Row {
    assert!(!spec.poison, "resilience self-test: deliberately poisoned scenario '{}'", spec.label);
    let machine = bluegene_p();
    let cfg = hpcc::HaloConfig {
        grid: spec.grid,
        words: spec.words,
        protocol: hpcc::HaloProtocol::IrecvIsend,
        reps: 2,
    };
    let pristine = hpcc::halo_run(&machine, ExecMode::Vn, Mapping::txyz(), &cfg);
    let by_profile = FaultProfile::all()
        .into_iter()
        .map(|profile| {
            let plan = FaultPlan::new(seed, profile);
            hpcc::halo_run_faulty(&machine, ExecMode::Vn, Mapping::txyz(), &cfg, &plan)
                .map(|t| (t * 1e6, if pristine > 0.0 { t / pristine } else { 1.0 }))
                .map_err(|e| e.to_string())
        })
        .collect();
    Row { label: spec.label.clone(), pristine_us: pristine * 1e6, by_profile }
}

/// Run the resilience battery: the Fig 2 halo sweep, pristine and under
/// every fault profile seeded from `seed`. `inject_panic` appends a
/// deliberately-panicking scenario — the battery harness's self-test —
/// which must come back as a [`ScenarioError`] without disturbing the
/// other rows.
pub fn resilience_battery(seed: u64, scale: Scale, inject_panic: bool) -> ResilienceReport {
    let grid = Grid2D::near_square(scale.ranks(8192));
    let mut specs: Vec<Spec> = [512u64, 8192, 32768]
        .into_iter()
        .map(|words| Spec {
            label: format!("halo {}x{} {}w", grid.rows, grid.cols, words),
            words,
            grid,
            poison: false,
        })
        .collect();
    if inject_panic {
        specs.push(Spec {
            label: "selftest-panic".to_string(),
            words: 8,
            grid,
            poison: true,
        });
    }

    let mut headers = vec!["Scenario".to_string(), "Pristine (us)".to_string()];
    for p in FaultProfile::all() {
        headers.push(format!("{} (us)", p.label()));
        headers.push(format!("{} x", p.label()));
    }
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let title = format!("resilience: Fig 2 halo sweep under fault profiles (seed {seed})");
    let mut table = Table::new(&title, &header_refs);

    let mut errors = Vec::new();
    for (i, outcome) in try_parmap(&specs, |s| run_spec(s, seed)).into_iter().enumerate() {
        match outcome {
            Ok(row) => {
                let mut cells = vec![row.label, format!("{:.3}", row.pristine_us)];
                for cell in row.by_profile {
                    match cell {
                        Ok((us, slowdown)) => {
                            cells.push(format!("{us:.3}"));
                            cells.push(format!("{slowdown:.3}"));
                        }
                        Err(diag) => {
                            cells.push(format!("FAIL: {diag}"));
                            cells.push("-".to_string());
                        }
                    }
                }
                table.push_row(cells);
            }
            Err(p) => errors.push(ScenarioError {
                index: i,
                label: specs[i].label.clone(),
                message: p.message,
            }),
        }
    }
    ResilienceReport { table, errors }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn battery_completes_and_reports_slowdowns() {
        let report = resilience_battery(5, Scale::Quick, false);
        assert!(report.all_ok(), "{:?}", report.errors);
        assert_eq!(report.table.rows.len(), 3);
        // every profile column filled, noise profile never speeds things up
        for row in &report.table.rows {
            assert_eq!(row.len(), 2 + 2 * FaultProfile::all().len());
            let noise_col = 2 + 2 * FaultProfile::all().iter().position(|p| *p == FaultProfile::Noise).unwrap() + 1;
            let noise_x: f64 = row[noise_col].parse().expect("noise slowdown cell");
            assert!(noise_x >= 0.999, "noise slowdown {noise_x} in {row:?}");
        }
    }

    #[test]
    fn battery_is_reproducible() {
        let a = resilience_battery(9, Scale::Quick, false);
        let b = resilience_battery(9, Scale::Quick, false);
        assert_eq!(a.table.render(), b.table.render());
    }

    #[test]
    fn poisoned_scenario_is_reported_not_fatal() {
        let report = resilience_battery(5, Scale::Quick, true);
        assert_eq!(report.errors.len(), 1);
        let e = &report.errors[0];
        assert_eq!(e.label, "selftest-panic");
        assert!(e.message.contains("deliberately poisoned"), "{}", e.message);
        // the healthy scenarios all still completed
        assert_eq!(report.table.rows.len(), 3);
        assert!(!report.all_ok());
    }
}
