//! Ablation studies: how much does each BG/P design feature actually
//! buy? The paper measures two fixed designs; the simulator lets us
//! remove one feature at a time and re-run the workloads that stress it.
//!
//! Ablations provided (each returns the feature's speedup factor on the
//! workload that showcases it):
//!
//! * **collective tree** — remove the tree/barrier networks and rerun
//!   the IMB Allreduce/Bcast points and POP;
//! * **adaptive routing** — set route diversity to 1 and rerun a
//!   bandwidth-bound HALO exchange;
//! * **DMA/eager threshold** — shrink the eager window to force
//!   rendezvous on halo-sized messages;
//! * **memory bandwidth** — give BG/P the XT3's 6.4 GB/s and rerun
//!   STREAM-bound work;
//! * **double hummer** — halve flops/cycle and rerun DGEMM.

use crate::report::Table;
use crate::runner::parmap;
use hpcsim_apps::{pop_run, PopConfig};
use hpcsim_hpcc::{halo_run, imb_allreduce, imb_bcast, HaloConfig, HaloProtocol};
use hpcsim_machine::registry::bluegene_p;
use hpcsim_machine::{ExecMode, MachineSpec, NodeModel, Workload};
use hpcsim_net::DType;
use hpcsim_topo::{Grid2D, Mapping};

/// One ablation's outcome.
#[derive(Debug, Clone)]
pub struct Ablation {
    /// Feature removed.
    pub feature: &'static str,
    /// Workload used to measure it.
    pub workload: &'static str,
    /// Slowdown factor when the feature is removed (>1 means the
    /// feature helps).
    pub slowdown: f64,
}

fn without_tree(m: &MachineSpec) -> MachineSpec {
    let mut m = m.clone();
    m.nic.tree_bw = None;
    m.nic.has_barrier_network = false;
    m
}

fn without_adaptive_routing(m: &MachineSpec) -> MachineSpec {
    let mut m = m.clone();
    m.nic.route_diversity = 1.0;
    m
}

fn with_tiny_eager(m: &MachineSpec) -> MachineSpec {
    let mut m = m.clone();
    m.nic.eager_threshold = 64;
    m
}

fn with_xt3_memory(m: &MachineSpec) -> MachineSpec {
    let mut m = m.clone();
    m.mem.bw_bytes = 6.4e9;
    m
}

fn without_double_hummer(m: &MachineSpec) -> MachineSpec {
    let mut m = m.clone();
    m.core.flops_per_cycle = 2.0;
    m
}

/// Run the full ablation battery on BG/P at `ranks` tasks.
///
/// Each measurement is a self-contained with/without pair, so the
/// battery is expressed as a scenario set and fanned out over the
/// worker pool; results come back in the declared order.
pub fn run_ablations(ranks: usize) -> Vec<Ablation> {
    let base = bluegene_p();
    let pop_cfg = PopConfig::default();
    let halo_cfg = HaloConfig {
        grid: Grid2D::near_square(ranks),
        words: 32_768,
        protocol: HaloProtocol::IrecvIsend,
        reps: 2,
    };
    let mid_cfg = HaloConfig { words: 128, ..halo_cfg.clone() };

    type Unit<'a> = Box<dyn Fn() -> Ablation + Sync + 'a>;
    let units: Vec<Unit<'_>> = vec![
        // 1. collective tree: Allreduce latency at 32 KiB
        Box::new(|| {
            let t_with = imb_allreduce(&base, ExecMode::Vn, ranks, 32 * 1024, DType::F64).usec;
            let t_without =
                imb_allreduce(&without_tree(&base), ExecMode::Vn, ranks, 32 * 1024, DType::F64)
                    .usec;
            Ablation {
                feature: "collective tree",
                workload: "Allreduce 32KiB",
                slowdown: t_without / t_with,
            }
        }),
        // ... and Bcast
        Box::new(|| {
            let b_with = imb_bcast(&base, ExecMode::Vn, ranks, 32 * 1024).usec;
            let b_without = imb_bcast(&without_tree(&base), ExecMode::Vn, ranks, 32 * 1024).usec;
            Ablation {
                feature: "collective tree",
                workload: "Bcast 32KiB",
                slowdown: b_without / b_with,
            }
        }),
        // ... and end-to-end POP (the barotropic solver leans on it)
        Box::new(|| {
            let syd_with = pop_run(&base, ExecMode::Vn, ranks, 1, &pop_cfg).syd;
            let syd_without = pop_run(&without_tree(&base), ExecMode::Vn, ranks, 1, &pop_cfg).syd;
            Ablation {
                feature: "collective tree",
                workload: "POP 0.1deg (SYD)",
                slowdown: syd_with / syd_without,
            }
        }),
        // 2. adaptive routing: bandwidth-bound HALO
        Box::new(|| {
            let h_with = halo_run(&base, ExecMode::Vn, Mapping::txyz(), &halo_cfg);
            let h_without =
                halo_run(&without_adaptive_routing(&base), ExecMode::Vn, Mapping::txyz(), &halo_cfg);
            Ablation {
                feature: "adaptive routing",
                workload: "HALO 32768 words",
                slowdown: h_without / h_with,
            }
        }),
        // 3. eager threshold: mid-size halos forced into rendezvous
        Box::new(|| {
            let e_with = halo_run(&base, ExecMode::Vn, Mapping::txyz(), &mid_cfg);
            let e_without =
                halo_run(&with_tiny_eager(&base), ExecMode::Vn, Mapping::txyz(), &mid_cfg);
            Ablation {
                feature: "eager protocol window",
                workload: "HALO 128 words",
                slowdown: e_without / e_with,
            }
        }),
        // 4. memory bandwidth: STREAM triad per task
        Box::new(|| {
            let nm_with = NodeModel::new(base.clone());
            let nm_without = NodeModel::new(with_xt3_memory(&base));
            let w = Workload::StreamTriad { n: 4_000_000 };
            let s_with = nm_with.time(&w, ExecMode::Vn, 1).as_secs();
            let s_without = nm_without.time(&w, ExecMode::Vn, 1).as_secs();
            Ablation {
                feature: "13.6 GB/s memory (vs 6.4)",
                workload: "STREAM triad",
                slowdown: s_without / s_with,
            }
        }),
        // 5. double hummer: DGEMM per task
        Box::new(|| {
            let nm_with = NodeModel::new(base.clone());
            let nm_scalar = NodeModel::new(without_double_hummer(&base));
            let d = Workload::Dgemm { n: 1500 };
            let g_with = nm_with.time(&d, ExecMode::Vn, 1).as_secs();
            let g_without = nm_scalar.time(&d, ExecMode::Vn, 1).as_secs();
            Ablation {
                feature: "Double Hummer FPU",
                workload: "DGEMM n=1500",
                slowdown: g_without / g_with,
            }
        }),
    ];
    parmap(&units, |u| u())
}

/// Render the ablations as a table.
pub fn ablation_table(ranks: usize) -> Table {
    let mut t = Table::new(
        format!("Ablations: BG/P feature contributions ({ranks} tasks, VN mode)"),
        &["Feature removed", "Workload", "Slowdown"],
    );
    for a in run_ablations(ranks) {
        t.push_row(vec![
            a.feature.to_string(),
            a.workload.to_string(),
            format!("{:.2}x", a.slowdown),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_is_the_biggest_collective_lever() {
        let abl = run_ablations(512);
        let tree_allreduce = abl.iter().find(|a| a.workload == "Allreduce 32KiB").unwrap();
        let tree_bcast = abl.iter().find(|a| a.workload == "Bcast 32KiB").unwrap();
        assert!(tree_allreduce.slowdown > 3.0, "{tree_allreduce:?}");
        assert!(tree_bcast.slowdown > 2.0, "{tree_bcast:?}");
    }

    #[test]
    fn every_feature_helps_its_workload() {
        for a in run_ablations(256) {
            // >= 1 up to numerical noise; POP at small scale is genuinely
            // tree-insensitive (the paper's own science-metric nuance)
            assert!(
                a.slowdown > 0.999,
                "removing '{}' should not help {}: {:.3}",
                a.feature,
                a.workload,
                a.slowdown
            );
        }
    }

    #[test]
    fn double_hummer_halving_doubles_dgemm_time() {
        let abl = run_ablations(256);
        let dh = abl.iter().find(|a| a.feature == "Double Hummer FPU").unwrap();
        assert!((dh.slowdown - 2.0).abs() < 0.05, "{dh:?}");
    }

    #[test]
    fn pop_feels_the_tree_mildly_at_small_scale() {
        // at moderate scale POP is baroclinic-dominated, so removing the
        // tree costs percents, not multiples — the same nuance as the
        // paper's "less of a power advantage for science-driven metrics"
        let abl = run_ablations(512);
        let pop = abl.iter().find(|a| a.workload == "POP 0.1deg (SYD)").unwrap();
        assert!(pop.slowdown > 0.999 && pop.slowdown < 2.0, "{pop:?}");
    }

    #[test]
    fn table_renders() {
        let t = ablation_table(128);
        assert_eq!(t.rows.len(), 7);
        assert!(t.render().contains("Double Hummer"));
    }
}
