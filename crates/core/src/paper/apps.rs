//! Figures 4–8: the application studies (§III).

use crate::experiment::Scale;
use crate::report::Figure;
use crate::runner::parmap;
use hpcsim_apps as apps;
use hpcsim_machine::registry::{bluegene_l, bluegene_p, xt3, xt4_dc, xt4_qc};
use hpcsim_machine::ExecMode;

/// Figure 4: POP tenth-degree — (a) total SYD by mode/solver, (b) phase
/// breakdown on BG/P, (c) BG/P vs XT4 total, (d) phase comparison.
pub fn fig4(scale: Scale) -> Vec<Figure> {
    let bgp = bluegene_p();
    let xt = xt4_dc();
    let procs: Vec<usize> =
        [2048usize, 4096, 8192, 16384, 22500, 40000].iter().map(|&p| scale.ranks(p)).collect();
    let mut procs = procs;
    procs.dedup();
    let cfg = apps::PopConfig::default();

    // scenario set: every POP run in the four panels, in consumption
    // order; `chron: None` means "use the default config untouched"
    let machines = [&bgp, &xt];
    let series_a = [
        ("VN, ChronGear", ExecMode::Vn, true),
        ("VN, standard CG", ExecMode::Vn, false),
        ("DUAL, ChronGear", ExecMode::Dual, true),
        ("SMP, ChronGear", ExecMode::Smp, true),
    ];
    let mut points: Vec<(usize, ExecMode, Option<bool>, usize)> = Vec::new();
    for &(_, mode, chron) in &series_a {
        for &p in &procs {
            points.push((0, mode, Some(chron), p));
        }
    }
    for &p in &procs {
        points.push((0, ExecMode::Vn, None, p));
    }
    for mi in 0..machines.len() {
        for &p in &procs {
            points.push((mi, ExecMode::Vn, None, p));
        }
    }
    let results = parmap(&points, |&(mi, mode, chron, p)| match chron {
        Some(ch) => {
            apps::pop_run(machines[mi], mode, p, 1, &apps::PopConfig { chron_gear: ch, ..cfg.clone() })
        }
        None => apps::pop_run(machines[mi], mode, p, 1, &cfg),
    });
    let mut it = results.into_iter();

    let mut a = Figure::new("Fig 4(a): POP total performance on BG/P", "processes", "SYD");
    for (label, _, _) in series_a {
        let pts: Vec<(f64, f64)> =
            procs.iter().map(|&p| (p as f64, it.next().unwrap().syd)).collect();
        a.push_series(label, pts);
    }

    let mut b = Figure::new(
        "Fig 4(b): POP phase breakdown on BG/P (VN, ChronGear)",
        "processes",
        "seconds per simulated day",
    );
    let mut bc = Vec::new();
    let mut bt = Vec::new();
    let mut bar = Vec::new();
    for &p in &procs {
        let r = it.next().unwrap();
        bc.push((p as f64, r.baroclinic_s));
        bt.push((p as f64, r.barotropic_s));
        bar.push((p as f64, r.barrier_s));
    }
    b.push_series("Baroclinic", bc);
    b.push_series("Barotropic", bt);
    b.push_series("Timing barrier (imbalance)", bar);

    let mut c = Figure::new("Fig 4(c): POP total, BG/P vs XT4", "processes", "SYD");
    let mut d = Figure::new(
        "Fig 4(d): POP phases, BG/P vs XT4",
        "processes",
        "seconds per simulated day",
    );
    for label in ["BG/P", "XT4"] {
        let mut syd = Vec::new();
        let mut bc = Vec::new();
        let mut bt = Vec::new();
        for &p in &procs {
            let r = it.next().unwrap();
            syd.push((p as f64, r.syd));
            bc.push((p as f64, r.baroclinic_s));
            bt.push((p as f64, r.barotropic_s));
        }
        c.push_series(label, syd);
        d.push_series(format!("{label} baroclinic"), bc);
        d.push_series(format!("{label} barotropic"), bt);
    }
    vec![a, b, c, d]
}

/// Figure 5: CAM — (a) spectral dycore MPI vs hybrid on BG/P, (b) FV
/// dycore likewise, (c) spectral vs the XTs, (d) FV vs the XTs.
pub fn fig5(scale: Scale) -> Vec<Figure> {
    let bgp = bluegene_p();
    let core_counts: Vec<usize> =
        [16usize, 32, 64, 128, 256, 512].iter().map(|&c| scale.ranks(c * 4).max(16)).collect();
    let mut core_counts = core_counts;
    core_counts.dedup();

    // scenario set: one sweep per (machine, dycore config, MPI-vs-hybrid)
    // triple, listed in the exact order the four panels consume them
    let machines = [bgp, xt3(), xt4_qc()];
    let cfgs = [
        apps::CamConfig::t42(),
        apps::CamConfig::t85(),
        apps::CamConfig::fv_2deg(),
        apps::CamConfig::fv_half_deg(),
    ];
    let sweeps: [(usize, usize, bool); 13] = [
        (0, 0, false), (0, 0, true), (0, 1, false), (0, 1, true), // (a)
        (0, 2, true), (0, 3, true), (0, 2, false),                // (b)
        (0, 1, true), (0, 2, true),                               // (c,d) BG/P
        (1, 1, true), (1, 2, true),                               // (c,d) XT3
        (2, 1, true), (2, 2, true),                               // (c,d) XT4
    ];
    let mut points: Vec<(usize, usize, bool, usize)> = Vec::new();
    for &(mi, ci, hybrid) in &sweeps {
        for &cores in &core_counts {
            points.push((mi, ci, hybrid, cores));
        }
    }
    let values = parmap(&points, |&(mi, ci, hybrid, cores)| {
        let machine = &machines[mi];
        let r = if hybrid {
            let threads = machine.cores_per_node.min(4);
            apps::cam_run(
                machine,
                ExecMode::Smp,
                (cores / threads as usize).max(1),
                threads,
                &cfgs[ci],
            )
        } else {
            apps::cam_run(machine, ExecMode::Vn, cores, 1, &cfgs[ci])
        };
        r.years_per_day
    });
    let mut chunks = values.chunks(core_counts.len());
    let mut next = move || -> Vec<(f64, f64)> {
        core_counts.iter().zip(chunks.next().unwrap()).map(|(&c, &y)| (c as f64, y)).collect()
    };

    let mut a = Figure::new("Fig 5(a): CAM spectral on BG/P", "cores", "simulated years/day");
    for ci in [0usize, 1] {
        a.push_series(format!("{} MPI", cfgs[ci].name), next());
        a.push_series(format!("{} hybrid", cfgs[ci].name), next());
    }

    let mut b = Figure::new("Fig 5(b): CAM finite-volume on BG/P", "cores", "simulated years/day");
    for ci in [2usize, 3] {
        b.push_series(format!("{} hybrid", cfgs[ci].name), next());
    }
    b.push_series("FV 1.9x2.5 L26 MPI", next());

    let mut c = Figure::new("Fig 5(c): CAM T85 across machines", "cores", "simulated years/day");
    let mut d =
        Figure::new("Fig 5(d): CAM FV 1.9x2.5 across machines", "cores", "simulated years/day");
    for label in ["BG/P", "XT3", "XT4"] {
        c.push_series(label, next());
        d.push_series(label, next());
    }
    vec![a, b, c, d]
}

/// Figure 6: S3D weak scaling — cost per grid point per step across
/// machines.
pub fn fig6(scale: Scale) -> Vec<Figure> {
    let procs: Vec<usize> =
        [64usize, 512, 1728, 4096, 12000].iter().map(|&p| scale.ranks(p)).collect();
    let mut procs = procs;
    procs.dedup();
    let cfg = apps::S3dConfig::default();
    let machines = [bluegene_p(), xt3(), xt4_dc(), xt4_qc()];
    let mut points: Vec<(usize, usize)> = Vec::new();
    for mi in 0..machines.len() {
        for &p in &procs {
            points.push((mi, p));
        }
    }
    let values = parmap(&points, |&(mi, p)| {
        apps::s3d_run(&machines[mi], ExecMode::Vn, p, &cfg).core_hours_per_point_step
    });
    let mut f = Figure::new(
        "Fig 6: S3D weak scaling (50^3 points/rank)",
        "processes",
        "core-hours per grid point per step",
    );
    for (label, chunk) in
        ["BG/P", "XT3", "XT4/DC", "XT4/QC"].iter().zip(values.chunks(procs.len()))
    {
        let pts: Vec<(f64, f64)> =
            procs.iter().zip(chunk).map(|(&p, &v)| (p as f64, v)).collect();
        f.push_series(*label, pts);
    }
    vec![f]
}

/// Figure 7: GYRO — (a) B1-std strong scaling, (b) B3-gtc strong scaling,
/// (c) weak-scaled modified B3-gtc across machines.
pub fn fig7(scale: Scale) -> Vec<Figure> {
    let b1_procs: Vec<usize> = [16usize, 64, 256, 1024, 2048]
        .iter()
        .map(|&p| scale.ranks(p).max(16) / 16 * 16)
        .collect();
    let mut b1_procs = b1_procs;
    b1_procs.dedup();

    let b3_procs: Vec<usize> = b1_procs.iter().map(|&p| (p / 64 * 64).max(64)).collect::<Vec<_>>();
    let mut b3 = b3_procs;
    b3.dedup();
    let weak_procs: Vec<usize> = [64usize, 128, 256, 512, 1024]
        .iter()
        .map(|&p| scale.ranks(p).max(64) / 64 * 64)
        .collect();
    let mut weak = weak_procs;
    weak.dedup();

    // scenario set across all three panels; the worker returns raw
    // seconds/step and the panels invert where they plot steps/second
    let machines = [bluegene_p(), xt4_qc(), bluegene_l(), xt4_dc()];
    let cfgs = [
        apps::GyroConfig::b1_std(),
        apps::GyroConfig::b3_gtc(),
        apps::GyroConfig { problem: apps::GyroProblem::B3GtcModified, steps: 4 },
    ];
    let mut points: Vec<(usize, usize, usize)> = Vec::new();
    for mi in [0usize, 1] {
        for &p in &b1_procs {
            points.push((mi, 0, p));
        }
        for &p in &b3 {
            points.push((mi, 1, p));
        }
    }
    for mi in [0usize, 2, 3] {
        for &p in &weak {
            points.push((mi, 2, p));
        }
    }
    let secs = parmap(&points, |&(mi, ci, p)| {
        apps::gyro_run(&machines[mi], p, &cfgs[ci]).seconds_per_step
    });
    let mut it = secs.into_iter();

    let mut a = Figure::new("Fig 7(a): GYRO B1-std strong scaling", "processes", "steps/second");
    let mut b = Figure::new("Fig 7(b): GYRO B3-gtc strong scaling", "processes", "steps/second");
    for label in ["BG/P", "XT4"] {
        let pts: Vec<(f64, f64)> =
            b1_procs.iter().map(|&p| (p as f64, 1.0 / it.next().unwrap())).collect();
        a.push_series(label, pts);
        let pts: Vec<(f64, f64)> =
            b3.iter().map(|&p| (p as f64, 1.0 / it.next().unwrap())).collect();
        b.push_series(label, pts);
    }

    let mut c = Figure::new(
        "Fig 7(c): GYRO modified B3-gtc weak scaling",
        "processes",
        "seconds per step",
    );
    for label in ["BG/P", "BG/L", "XT"] {
        let pts: Vec<(f64, f64)> =
            weak.iter().map(|&p| (p as f64, it.next().unwrap())).collect();
        c.push_series(label, pts);
    }
    vec![a, b, c]
}

/// Figure 8: LAMMPS (a) and AMBER/PMEMD (b) on RuBisCO, BG/P vs XT3 and
/// XT4/DC.
pub fn fig8(scale: Scale) -> Vec<Figure> {
    let procs: Vec<usize> =
        [128usize, 256, 512, 1024, 2048, 4096].iter().map(|&p| scale.ranks(p)).collect();
    let mut procs = procs;
    procs.dedup();

    let cfgs = [apps::MdConfig::lammps_rub(), apps::MdConfig::pmemd_rub()];
    let machines = [bluegene_p(), xt3(), xt4_dc()];
    // One scenario per (code, rank count) fetches the trace from the
    // scenario cache's tier-2 store (keyed by the program-only
    // sub-hash, so any other battery or run asking about the same MD
    // program shares the recording) and scans all three machines from
    // it — the trace is machine-agnostic.
    let mut points: Vec<(usize, usize)> = Vec::new();
    for ci in 0..cfgs.len() {
        for &p in &procs {
            points.push((ci, p));
        }
    }
    let cache = hpcsim_cache::global();
    let scans = parmap(&points, |&(ci, p)| {
        let spec = hpcsim_cache::ScenarioSpec::md(&machines[0], p, cfgs[ci].clone());
        let entry = cache.traces(spec.program_hash(), || apps::md_traces(p, &cfgs[ci]));
        apps::md_run_machines_traces(&machines, p, &cfgs[ci], &entry.traces)
    });

    let mut panels = Vec::new();
    for (ci, title) in [
        "Fig 8(a): LAMMPS, RuBisCO 290,220 atoms",
        "Fig 8(b): AMBER/PMEMD, RuBisCO 290,220 atoms",
    ]
    .into_iter()
    .enumerate()
    {
        let mut f = Figure::new(title, "processes", "ns/day");
        for (mi, label) in ["BG/P", "XT3", "XT4/DC"].into_iter().enumerate() {
            let pts: Vec<(f64, f64)> = procs
                .iter()
                .enumerate()
                .map(|(pi, &p)| (p as f64, scans[ci * procs.len() + pi][mi].ns_per_day))
                .collect();
            f.push_series(label, pts);
        }
        panels.push(f);
    }
    panels
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_quick_has_four_panels_with_shapes() {
        let panels = fig4(Scale::Quick);
        assert_eq!(panels.len(), 4);
        // panel (c): XT above BG/P at every common x
        let c = &panels[2];
        let bgp = &c.series[0];
        let xt = &c.series[1];
        for (p_b, p_x) in bgp.points.iter().zip(&xt.points) {
            assert!(p_x.1 > p_b.1, "XT should lead at {} procs", p_b.0);
        }
    }

    #[test]
    fn fig6_quick_flat_series() {
        let panels = fig6(Scale::Quick);
        let f = &panels[0];
        for s in &f.series {
            let ys: Vec<f64> = s.points.iter().map(|p| p.1).collect();
            let min = ys.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = ys.iter().cloned().fold(0.0, f64::max);
            assert!(max / min < 1.25, "{} spread {:.2}", s.name, max / min);
        }
    }

    #[test]
    fn fig8_quick_lammps_beats_pmemd_at_scale() {
        let panels = fig8(Scale::Quick);
        let lammps = &panels[0];
        let pmemd = &panels[1];
        // on BG/P at the largest quick scale, LAMMPS achieves more ns/day
        let last_x = lammps.series[0].points.last().unwrap().0;
        let l = lammps.y_at("BG/P", last_x).unwrap();
        let p = pmemd.y_at("BG/P", last_x).unwrap();
        assert!(l > p, "LAMMPS {l:.2} vs PMEMD {p:.2} ns/day");
    }
}
