//! Figures 4–8: the application studies (§III).

use crate::experiment::Scale;
use crate::report::Figure;
use hpcsim_apps as apps;
use hpcsim_machine::registry::{bluegene_l, bluegene_p, xt3, xt4_dc, xt4_qc};
use hpcsim_machine::ExecMode;

/// Figure 4: POP tenth-degree — (a) total SYD by mode/solver, (b) phase
/// breakdown on BG/P, (c) BG/P vs XT4 total, (d) phase comparison.
pub fn fig4(scale: Scale) -> Vec<Figure> {
    let bgp = bluegene_p();
    let xt = xt4_dc();
    let procs: Vec<usize> =
        [2048usize, 4096, 8192, 16384, 22500, 40000].iter().map(|&p| scale.ranks(p)).collect();
    let mut procs = procs;
    procs.dedup();
    let cfg = apps::PopConfig::default();

    let mut a = Figure::new("Fig 4(a): POP total performance on BG/P", "processes", "SYD");
    for (label, mode, chron) in [
        ("VN, ChronGear", ExecMode::Vn, true),
        ("VN, standard CG", ExecMode::Vn, false),
        ("DUAL, ChronGear", ExecMode::Dual, true),
        ("SMP, ChronGear", ExecMode::Smp, true),
    ] {
        let pts: Vec<(f64, f64)> = procs
            .iter()
            .map(|&p| {
                let c = apps::PopConfig { chron_gear: chron, ..cfg.clone() };
                (p as f64, apps::pop_run(&bgp, mode, p, 1, &c).syd)
            })
            .collect();
        a.push_series(label, pts);
    }

    let mut b = Figure::new(
        "Fig 4(b): POP phase breakdown on BG/P (VN, ChronGear)",
        "processes",
        "seconds per simulated day",
    );
    let mut bc = Vec::new();
    let mut bt = Vec::new();
    let mut bar = Vec::new();
    for &p in &procs {
        let r = apps::pop_run(&bgp, ExecMode::Vn, p, 1, &cfg);
        bc.push((p as f64, r.baroclinic_s));
        bt.push((p as f64, r.barotropic_s));
        bar.push((p as f64, r.barrier_s));
    }
    b.push_series("Baroclinic", bc);
    b.push_series("Barotropic", bt);
    b.push_series("Timing barrier (imbalance)", bar);

    let mut c = Figure::new("Fig 4(c): POP total, BG/P vs XT4", "processes", "SYD");
    let mut d = Figure::new(
        "Fig 4(d): POP phases, BG/P vs XT4",
        "processes",
        "seconds per simulated day",
    );
    for (machine, label) in [(&bgp, "BG/P"), (&xt, "XT4")] {
        let mut syd = Vec::new();
        let mut bc = Vec::new();
        let mut bt = Vec::new();
        for &p in &procs {
            let r = apps::pop_run(machine, ExecMode::Vn, p, 1, &cfg);
            syd.push((p as f64, r.syd));
            bc.push((p as f64, r.baroclinic_s));
            bt.push((p as f64, r.barotropic_s));
        }
        c.push_series(label, syd);
        d.push_series(format!("{label} baroclinic"), bc);
        d.push_series(format!("{label} barotropic"), bt);
    }
    vec![a, b, c, d]
}

/// Figure 5: CAM — (a) spectral dycore MPI vs hybrid on BG/P, (b) FV
/// dycore likewise, (c) spectral vs the XTs, (d) FV vs the XTs.
pub fn fig5(scale: Scale) -> Vec<Figure> {
    let bgp = bluegene_p();
    let core_counts: Vec<usize> =
        [16usize, 32, 64, 128, 256, 512].iter().map(|&c| scale.ranks(c * 4).max(16)).collect();
    let mut core_counts = core_counts;
    core_counts.dedup();

    let sweep = |machine: &hpcsim_machine::MachineSpec,
                 cfg: &apps::CamConfig,
                 hybrid: bool|
     -> Vec<(f64, f64)> {
        core_counts
            .iter()
            .map(|&cores| {
                let r = if hybrid {
                    let threads = machine.cores_per_node.min(4);
                    apps::cam_run(
                        machine,
                        ExecMode::Smp,
                        (cores / threads as usize).max(1),
                        threads,
                        cfg,
                    )
                } else {
                    apps::cam_run(machine, ExecMode::Vn, cores, 1, cfg)
                };
                (cores as f64, r.years_per_day)
            })
            .collect()
    };

    let mut a = Figure::new("Fig 5(a): CAM spectral on BG/P", "cores", "simulated years/day");
    for cfg in [apps::CamConfig::t42(), apps::CamConfig::t85()] {
        a.push_series(format!("{} MPI", cfg.name), sweep(&bgp, &cfg, false));
        a.push_series(format!("{} hybrid", cfg.name), sweep(&bgp, &cfg, true));
    }

    let mut b = Figure::new("Fig 5(b): CAM finite-volume on BG/P", "cores", "simulated years/day");
    for cfg in [apps::CamConfig::fv_2deg(), apps::CamConfig::fv_half_deg()] {
        b.push_series(format!("{} hybrid", cfg.name), sweep(&bgp, &cfg, true));
    }
    b.push_series("FV 1.9x2.5 L26 MPI", sweep(&bgp, &apps::CamConfig::fv_2deg(), false));

    let mut c = Figure::new("Fig 5(c): CAM T85 across machines", "cores", "simulated years/day");
    let mut d =
        Figure::new("Fig 5(d): CAM FV 1.9x2.5 across machines", "cores", "simulated years/day");
    for (machine, label) in [(bluegene_p(), "BG/P"), (xt3(), "XT3"), (xt4_qc(), "XT4")] {
        c.push_series(label, sweep(&machine, &apps::CamConfig::t85(), true));
        d.push_series(label, sweep(&machine, &apps::CamConfig::fv_2deg(), true));
    }
    vec![a, b, c, d]
}

/// Figure 6: S3D weak scaling — cost per grid point per step across
/// machines.
pub fn fig6(scale: Scale) -> Vec<Figure> {
    let procs: Vec<usize> =
        [64usize, 512, 1728, 4096, 12000].iter().map(|&p| scale.ranks(p)).collect();
    let mut procs = procs;
    procs.dedup();
    let cfg = apps::S3dConfig::default();
    let mut f = Figure::new(
        "Fig 6: S3D weak scaling (50^3 points/rank)",
        "processes",
        "core-hours per grid point per step",
    );
    for (machine, label) in
        [(bluegene_p(), "BG/P"), (xt3(), "XT3"), (xt4_dc(), "XT4/DC"), (xt4_qc(), "XT4/QC")]
    {
        let pts: Vec<(f64, f64)> = procs
            .iter()
            .map(|&p| {
                (p as f64, apps::s3d_run(&machine, ExecMode::Vn, p, &cfg).core_hours_per_point_step)
            })
            .collect();
        f.push_series(label, pts);
    }
    vec![f]
}

/// Figure 7: GYRO — (a) B1-std strong scaling, (b) B3-gtc strong scaling,
/// (c) weak-scaled modified B3-gtc across machines.
pub fn fig7(scale: Scale) -> Vec<Figure> {
    let b1_procs: Vec<usize> = [16usize, 64, 256, 1024, 2048]
        .iter()
        .map(|&p| scale.ranks(p).max(16) / 16 * 16)
        .collect();
    let mut b1_procs = b1_procs;
    b1_procs.dedup();

    let mut a = Figure::new("Fig 7(a): GYRO B1-std strong scaling", "processes", "steps/second");
    let mut b = Figure::new("Fig 7(b): GYRO B3-gtc strong scaling", "processes", "steps/second");
    for (machine, label) in [(bluegene_p(), "BG/P"), (xt4_qc(), "XT4")] {
        let pts: Vec<(f64, f64)> = b1_procs
            .iter()
            .map(|&p| {
                (p as f64, 1.0 / apps::gyro_run(&machine, p, &apps::GyroConfig::b1_std()).seconds_per_step)
            })
            .collect();
        a.push_series(label, pts);
        let b3_procs: Vec<usize> =
            b1_procs.iter().map(|&p| (p / 64 * 64).max(64)).collect::<Vec<_>>();
        let mut b3 = b3_procs.clone();
        b3.dedup();
        let pts: Vec<(f64, f64)> = b3
            .iter()
            .map(|&p| {
                (p as f64, 1.0 / apps::gyro_run(&machine, p, &apps::GyroConfig::b3_gtc()).seconds_per_step)
            })
            .collect();
        b.push_series(label, pts);
    }

    let mut c = Figure::new(
        "Fig 7(c): GYRO modified B3-gtc weak scaling",
        "processes",
        "seconds per step",
    );
    let weak_procs: Vec<usize> = [64usize, 128, 256, 512, 1024]
        .iter()
        .map(|&p| scale.ranks(p).max(64) / 64 * 64)
        .collect();
    let mut weak = weak_procs;
    weak.dedup();
    let cfg = apps::GyroConfig { problem: apps::GyroProblem::B3GtcModified, steps: 4 };
    for (machine, label) in [(bluegene_p(), "BG/P"), (bluegene_l(), "BG/L"), (xt4_dc(), "XT")] {
        let pts: Vec<(f64, f64)> = weak
            .iter()
            .map(|&p| (p as f64, apps::gyro_run(&machine, p, &cfg).seconds_per_step))
            .collect();
        c.push_series(label, pts);
    }
    vec![a, b, c]
}

/// Figure 8: LAMMPS (a) and AMBER/PMEMD (b) on RuBisCO, BG/P vs XT3 and
/// XT4/DC.
pub fn fig8(scale: Scale) -> Vec<Figure> {
    let procs: Vec<usize> =
        [128usize, 256, 512, 1024, 2048, 4096].iter().map(|&p| scale.ranks(p)).collect();
    let mut procs = procs;
    procs.dedup();

    let mut panels = Vec::new();
    for (cfg, title) in [
        (apps::MdConfig::lammps_rub(), "Fig 8(a): LAMMPS, RuBisCO 290,220 atoms"),
        (apps::MdConfig::pmemd_rub(), "Fig 8(b): AMBER/PMEMD, RuBisCO 290,220 atoms"),
    ] {
        let mut f = Figure::new(title, "processes", "ns/day");
        for (machine, label) in [(bluegene_p(), "BG/P"), (xt3(), "XT3"), (xt4_dc(), "XT4/DC")] {
            let pts: Vec<(f64, f64)> = procs
                .iter()
                .map(|&p| (p as f64, apps::md_run(&machine, p, &cfg).ns_per_day))
                .collect();
            f.push_series(label, pts);
        }
        panels.push(f);
    }
    panels
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_quick_has_four_panels_with_shapes() {
        let panels = fig4(Scale::Quick);
        assert_eq!(panels.len(), 4);
        // panel (c): XT above BG/P at every common x
        let c = &panels[2];
        let bgp = &c.series[0];
        let xt = &c.series[1];
        for (p_b, p_x) in bgp.points.iter().zip(&xt.points) {
            assert!(p_x.1 > p_b.1, "XT should lead at {} procs", p_b.0);
        }
    }

    #[test]
    fn fig6_quick_flat_series() {
        let panels = fig6(Scale::Quick);
        let f = &panels[0];
        for s in &f.series {
            let ys: Vec<f64> = s.points.iter().map(|p| p.1).collect();
            let min = ys.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = ys.iter().cloned().fold(0.0, f64::max);
            assert!(max / min < 1.25, "{} spread {:.2}", s.name, max / min);
        }
    }

    #[test]
    fn fig8_quick_lammps_beats_pmemd_at_scale() {
        let panels = fig8(Scale::Quick);
        let lammps = &panels[0];
        let pmemd = &panels[1];
        // on BG/P at the largest quick scale, LAMMPS achieves more ns/day
        let last_x = lammps.series[0].points.last().unwrap().0;
        let l = lammps.y_at("BG/P", last_x).unwrap();
        let p = pmemd.y_at("BG/P", last_x).unwrap();
        assert!(l > p, "LAMMPS {l:.2} vs PMEMD {p:.2} ns/day");
    }
}
