//! Tables 1–2, Figures 1–3, and the TOP500 run (§I–II).

use crate::experiment::Scale;
use crate::report::{Figure, Table};
use crate::runner::parmap;
use hpcsim_engine::units::{fmt_bytes_bin, fmt_flops};
use hpcsim_hpcc as hpcc;
use hpcsim_machine::registry::{all_machines, bluegene_p, xt4_qc};
use hpcsim_machine::{ExecMode, L2Kind, MachineSpec};
use hpcsim_net::DType;
use hpcsim_topo::{Grid2D, Mapping, Placement};

/// Table 1: System Configuration Summary — the five machines' static
/// parameters, rows as features.
pub fn table1() -> Table {
    let machines = all_machines();
    let mut headers = vec!["Feature"];
    let labels: Vec<String> = machines.iter().map(|m| m.id.label().to_string()).collect();
    headers.extend(labels.iter().map(|s| s.as_str()));
    let mut t = Table::new("Table 1: System Configuration Summary", &headers);

    let row = |name: &str, f: &dyn Fn(&MachineSpec) -> String| -> Vec<String> {
        let mut r = vec![name.to_string()];
        r.extend(machines.iter().map(f));
        r
    };
    t.push_row(row("Cores per node", &|m| m.cores_per_node.to_string()));
    t.push_row(row("Core clock (MHz)", &|m| format!("{:.0}", m.core.clock_hz / 1e6)));
    t.push_row(row("Cache coherence", &|m| format!("{:?}", m.coherence)));
    t.push_row(row("L1 data / core", &|m| fmt_bytes_bin(m.core.l1_data_kib * 1024)));
    t.push_row(row("L2 / core", &|m| match m.core.l2 {
        L2Kind::PrefetchEngine { streams } => format!("{streams}-stream prefetch"),
        L2Kind::Cache { kib } => fmt_bytes_bin(kib * 1024),
    }));
    t.push_row(row("L3 shared", &|m| {
        m.l3_shared_mib.map_or("n/a".into(), |mib| format!("{mib}MiB"))
    }));
    t.push_row(row("Memory per node (GB)", &|m| format!("{}", m.mem.capacity_gib)));
    t.push_row(row("Memory BW (GB/s)", &|m| format!("{:.1}", m.mem.bw_bytes / 1e9)));
    t.push_row(row("Peak perf per node", &|m| fmt_flops(m.node_peak_flops())));
    t.push_row(row("Torus injection (GB/s)", &|m| format!("{:.1}", m.nic.injection_bw / 1e9)));
    t.push_row(row("Tree BW (MB/s)", &|m| {
        m.nic.tree_bw.map_or("n/a".into(), |b| format!("{:.0}", b / 1e6))
    }));
    t.push_row(row("Cores per rack", &|m| m.cores_per_rack().to_string()));
    t
}

/// Table 2: HPCC single-process (SP), embarrassingly-parallel (EP) and
/// communication tests, BG/P vs XT4/QC.
pub fn table2(scale: Scale) -> Table {
    let ranks = scale.ranks(4096);
    let bgp = bluegene_p();
    let xt = xt4_qc();
    use hpcc::epkernels::{dgemm_rate, fft_rate, ra_rate, stream_triad_rate, EpMode};
    // Each row is one probe; every (probe, machine) cell is an
    // independent simulation point fanned out over the worker pool.
    type Probe = Box<dyn Fn(&MachineSpec) -> f64 + Sync>;
    let probes: Vec<(&str, Probe)> = vec![
        ("SP DGEMM (GF/s)", Box::new(|m| dgemm_rate(m, EpMode::Single, 2000))),
        ("EP DGEMM (GF/s)", Box::new(|m| dgemm_rate(m, EpMode::Parallel, 2000))),
        ("SP STREAM triad (GB/s)", Box::new(|m| stream_triad_rate(m, EpMode::Single, 4_000_000))),
        ("EP STREAM triad (GB/s)", Box::new(|m| stream_triad_rate(m, EpMode::Parallel, 4_000_000))),
        ("EP FFT (GF/s)", Box::new(|m| fft_rate(m, EpMode::Parallel, 1 << 20))),
        ("EP RandomAccess (GUP/s)", Box::new(|m| ra_rate(m, EpMode::Parallel, 1 << 28))),
        ("Ping-pong latency (us)", Box::new(|m| hpcc::pingpong(m, 8, 1 << 21).0 * 1e6)),
        ("Ping-pong bandwidth (GB/s)", Box::new(|m| hpcc::pingpong(m, 8, 1 << 21).1 / 1e9)),
        (
            "Random-ring latency (us)",
            Box::new(move |m| {
                hpcc::random_ring(m, ExecMode::Vn, ranks, 8, 1 << 21, 1).latency_s * 1e6
            }),
        ),
        (
            "Random-ring BW (MB/s)",
            Box::new(move |m| {
                hpcc::random_ring(m, ExecMode::Vn, ranks, 8, 1 << 21, 1).bandwidth / 1e6
            }),
        ),
    ];
    let machines = [&bgp, &xt];
    let points: Vec<(usize, usize)> = (0..probes.len())
        .flat_map(|p| (0..machines.len()).map(move |m| (p, m)))
        .collect();
    let values = parmap(&points, |&(p, m)| (probes[p].1)(machines[m]));

    let mut t = Table::new(
        format!("Table 2: HPCC SP/EP and communication tests ({ranks} processes, VN mode)"),
        &["Test", "BG/P", "XT4/QC"],
    );
    for (p, (name, _)) in probes.iter().enumerate() {
        t.push_row(vec![
            name.to_string(),
            format!("{:.2} ", values[p * 2]),
            format!("{:.2} ", values[p * 2 + 1]),
        ]);
    }
    t
}

fn fig1_proc_counts(scale: Scale) -> Vec<usize> {
    let paper = [1024usize, 2048, 4096, 8192, 16384];
    let mut v: Vec<usize> = paper.iter().map(|&p| scale.ranks(p)).collect();
    v.dedup();
    v
}

/// Figure 1: HPCC parallel tests — (a) HPL, (b) FFT, (c) PTRANS,
/// (d) RandomAccess, BG/P vs XT4/QC in VN mode. XT problems are sized to
/// its 4× node memory, as in the paper.
pub fn fig1(scale: Scale) -> Vec<Figure> {
    let bgp = bluegene_p();
    let xt = xt4_qc();
    let procs = fig1_proc_counts(scale);

    let mut hpl_fig = Figure::new("Fig 1(a): HPL performance", "processes", "GFlop/s");
    let mut fft_fig = Figure::new("Fig 1(b): FFT performance", "processes", "GFlop/s");
    let mut ptr_fig = Figure::new("Fig 1(c): PTRANS performance", "processes", "GB/s");
    let mut ra_fig = Figure::new("Fig 1(d): RandomAccess performance", "processes", "GUP/s");

    // scenario set: (machine, procs, kernel) — every point independent
    let machines = [(&bgp, "BG/P"), (&xt, "XT4/QC")];
    let points: Vec<(usize, usize, usize)> = (0..machines.len())
        .flat_map(|mi| procs.iter().flat_map(move |&p| (0..4).map(move |k| (mi, p, k))))
        .collect();
    let values = parmap(&points, |&(mi, p, k)| {
        let machine = machines[mi].0;
        match k {
            0 => {
                let n = hpcc::hpl_problem_size(machine, p, ExecMode::Vn, 0.8);
                let cfg = hpcc::HplConfig { n, nb: 144, grid: Grid2D::near_square(p), samples: 6 };
                hpcc::hpl_run(machine, ExecMode::Vn, &cfg).gflops
            }
            1 => {
                let nf = hpcc::fft::fft_problem_size(machine, p, ExecMode::Vn, 0.3);
                hpcc::fft_run(machine, ExecMode::Vn, p, nf).gflops
            }
            2 => {
                // PTRANS matrix ~ sqrt of HPL's footprint share
                let n = hpcc::hpl_problem_size(machine, p, ExecMode::Vn, 0.8);
                let placement = if machine.id.is_bluegene() {
                    Placement::Compact
                } else {
                    Placement::Fragmented { spread: 1.5, seed: p as u64 }
                };
                hpcc::ptrans_run(machine, ExecMode::Vn, p, n / 2, placement).gbps
            }
            _ => hpcc::ra_run(machine, ExecMode::Vn, p, 1 << 26, 1 << 16).gups,
        }
    });

    let mut it = values.into_iter();
    for (_, label) in machines {
        let mut hpl_pts = Vec::new();
        let mut fft_pts = Vec::new();
        let mut ptr_pts = Vec::new();
        let mut ra_pts = Vec::new();
        for &p in &procs {
            let x = p as f64;
            hpl_pts.push((x, it.next().unwrap()));
            fft_pts.push((x, it.next().unwrap()));
            ptr_pts.push((x, it.next().unwrap()));
            ra_pts.push((x, it.next().unwrap()));
        }
        hpl_fig.push_series(label, hpl_pts);
        fft_fig.push_series(label, fft_pts);
        ptr_fig.push_series(label, ptr_pts);
        ra_fig.push_series(label, ra_pts);
    }
    vec![hpl_fig, fft_fig, ptr_fig, ra_fig]
}

/// Figure 2: HALO — (a,b) protocol comparison, (c,d) mapping comparison,
/// (e,f) virtual-grid shape scan, on BG/P.
pub fn fig2(scale: Scale) -> Vec<Figure> {
    let m = bluegene_p();
    let words: Vec<u64> = vec![2, 8, 32, 128, 512, 2048, 8192, 32768];
    let mut panels = Vec::new();

    // (a) protocols, VN mode, 8192 cores as 128x64; (b) SMP, 2048 as 64x32
    for (title, mode, paper_ranks) in [
        ("Fig 2(a): protocols, VN mode", ExecMode::Vn, 8192usize),
        ("Fig 2(b): protocols, SMP mode", ExecMode::Smp, 2048),
    ] {
        let ranks = scale.ranks(paper_ranks);
        let grid = Grid2D::near_square(ranks);
        let points: Vec<(hpcc::HaloProtocol, u64)> = hpcc::HaloProtocol::all()
            .into_iter()
            .flat_map(|proto| words.iter().map(move |&w| (proto, w)))
            .collect();
        let times = parmap(&points, |&(proto, w)| {
            let cfg = hpcc::HaloConfig { grid, words: w, protocol: proto, reps: 2 };
            hpcc::halo_run(&m, mode, Mapping::txyz(), &cfg) * 1e6
        });
        let mut fig = Figure::new(title, "halo words", "usec per exchange");
        for (proto, chunk) in hpcc::HaloProtocol::all().into_iter().zip(times.chunks(words.len()))
        {
            let pts: Vec<(f64, f64)> =
                words.iter().zip(chunk).map(|(&w, &t)| (w as f64, t)).collect();
            fig.push_series(proto.label(), pts);
        }
        panels.push(fig);
    }

    // (c,d) mappings at 4096 and 8192 cores, VN. Every (grid, halo
    // size, mapping) point goes through the process-global scenario
    // cache: a (grid, halo-size) pair's trace depends on neither the
    // mapping nor the panel, so tier 2 records it once and all eight
    // mappings replay (or DAG-evaluate) the shared trace, while tier 1
    // memoizes the finished points — the panels coincide entirely when
    // `scale` clamps them to the same rank count, and re-running the
    // figure in-process (or against `--cache-dir`) is pure lookups.
    let panel_specs =
        [("Fig 2(c): mappings, 4096 cores", 4096usize), ("Fig 2(d): mappings, 8192 cores", 8192)];
    let mappings: Vec<Mapping> = Mapping::fig2_set().iter().map(|&(_, m2)| m2).collect();
    let panel_grids: Vec<Grid2D> =
        panel_specs.iter().map(|&(_, pr)| Grid2D::near_square(scale.ranks(pr))).collect();
    let mut keys: Vec<(Grid2D, u64)> = Vec::new();
    for &grid in &panel_grids {
        for &w in &words {
            if !keys.iter().any(|&(kg, kw)| kg == grid && kw == w) {
                keys.push((grid, w));
            }
        }
    }
    let points_cd: Vec<(Grid2D, u64, Mapping)> = keys
        .iter()
        .flat_map(|&(grid, w)| mappings.iter().map(move |&mp| (grid, w, mp)))
        .collect();
    let cache = hpcsim_cache::global();
    let swept = parmap(&points_cd, |&(grid, w, mapping)| {
        let cfg =
            hpcc::HaloConfig { grid, words: w, protocol: hpcc::HaloProtocol::IrecvIsend, reps: 2 };
        let spec = hpcsim_cache::ScenarioSpec::halo(&m, ExecMode::Vn, mapping, cfg);
        hpcsim_cache::evaluate_in(&cache, &spec).expect("pristine halo scenarios evaluate")[0]
    });
    for (&(title, _), &grid) in panel_specs.iter().zip(&panel_grids) {
        let mut fig = Figure::new(title, "halo words", "usec per exchange");
        for (i, (name, _)) in Mapping::fig2_set().iter().enumerate() {
            let pts: Vec<(f64, f64)> = words
                .iter()
                .map(|&w| {
                    let ki = keys
                        .iter()
                        .position(|&(kg, kw)| kg == grid && kw == w)
                        .expect("every (panel grid, word) pair was swept");
                    (w as f64, swept[ki * mappings.len() + i] * 1e6)
                })
                .collect();
            fig.push_series(name.clone(), pts);
        }
        panels.push(fig);
    }

    // (e,f) grid-size scan with the default mapping
    for (title, mode, grids) in [
        (
            "Fig 2(e): grid sizes, VN mode",
            ExecMode::Vn,
            vec![256usize, 1024, 4096, 8192],
        ),
        ("Fig 2(f): grid sizes, SMP mode", ExecMode::Smp, vec![256, 1024, 2048]),
    ] {
        let mapping = if mode == ExecMode::Smp { Mapping::xyzt() } else { Mapping::txyz() };
        let grids2d: Vec<Grid2D> =
            grids.iter().map(|&paper_ranks| Grid2D::near_square(scale.ranks(paper_ranks))).collect();
        let points: Vec<(Grid2D, u64)> =
            grids2d.iter().flat_map(|&g| words.iter().map(move |&w| (g, w))).collect();
        let times = parmap(&points, |&(g, w)| {
            let cfg =
                hpcc::HaloConfig { grid: g, words: w, protocol: hpcc::HaloProtocol::IrecvIsend, reps: 2 };
            hpcc::halo_run(&m, mode, mapping, &cfg) * 1e6
        });
        let mut fig = Figure::new(title, "halo words", "usec per exchange");
        for (grid, chunk) in grids2d.iter().zip(times.chunks(words.len())) {
            let pts: Vec<(f64, f64)> =
                words.iter().zip(chunk).map(|(&w, &t)| (w as f64, t)).collect();
            fig.push_series(format!("{}x{}", grid.rows, grid.cols), pts);
        }
        panels.push(fig);
    }
    panels
}

/// Figure 3: IMB collectives — Allreduce and Bcast, latency vs message
/// size at 8192 processes and vs process count at 32 KiB, BG/P (DP and
/// SP Allreduce) vs XT4/QC.
pub fn fig3(scale: Scale) -> Vec<Figure> {
    let bgp = bluegene_p();
    let xt = xt4_qc();
    let fixed_ranks = scale.ranks(8192);
    let sizes: Vec<u64> = vec![8, 64, 512, 4096, 32 * 1024, 256 * 1024, 2 << 20];
    let proc_counts: Vec<usize> =
        [256usize, 1024, 4096, 8192, 16384].iter().map(|&p| scale.ranks(p)).collect();
    let fixed_bytes = 32 * 1024;

    let mut a = Figure::new(
        format!("Fig 3(a): Allreduce latency vs message size ({fixed_ranks} procs)"),
        "message bytes",
        "usec",
    );
    let mut b = Figure::new(
        "Fig 3(b): Allreduce latency vs process count (32KiB)",
        "processes",
        "usec",
    );
    let mut c = Figure::new(
        format!("Fig 3(c): Bcast latency vs message size ({fixed_ranks} procs)"),
        "message bytes",
        "usec",
    );
    let mut d = Figure::new("Fig 3(d): Bcast latency vs process count (32KiB)", "processes", "usec");

    // scenario set: every (collective, machine, ranks, bytes, dtype)
    // point, built in the exact order the panels consume them
    #[derive(Clone, Copy)]
    enum ImbPoint {
        Allreduce { mi: usize, ranks: usize, bytes: u64, dtype: DType },
        Bcast { mi: usize, ranks: usize, bytes: u64 },
    }
    let machines = [&bgp, &xt];
    let mut points: Vec<ImbPoint> = Vec::new();
    for (mi, dtype) in [(0, DType::F64), (0, DType::F32), (1, DType::F64)] {
        for &s in &sizes {
            points.push(ImbPoint::Allreduce { mi, ranks: fixed_ranks, bytes: s, dtype });
        }
    }
    for (mi, dtype) in [(0, DType::F64), (0, DType::F32), (1, DType::F64)] {
        for &p in &proc_counts {
            points.push(ImbPoint::Allreduce { mi, ranks: p, bytes: fixed_bytes, dtype });
        }
    }
    for mi in 0..machines.len() {
        for &s in &sizes {
            points.push(ImbPoint::Bcast { mi, ranks: fixed_ranks, bytes: s });
        }
        for &p in &proc_counts {
            points.push(ImbPoint::Bcast { mi, ranks: p, bytes: fixed_bytes });
        }
    }
    let values = parmap(&points, |&pt| match pt {
        ImbPoint::Allreduce { mi, ranks, bytes, dtype } => {
            hpcc::imb_allreduce(machines[mi], ExecMode::Vn, ranks, bytes, dtype).usec
        }
        ImbPoint::Bcast { mi, ranks, bytes } => {
            hpcc::imb_bcast(machines[mi], ExecMode::Vn, ranks, bytes).usec
        }
    });

    let mut it = values.into_iter();
    let mut next_pts = |xs: &[f64]| -> Vec<(f64, f64)> {
        xs.iter().map(|&x| (x, it.next().expect("imb point"))).collect()
    };
    let size_xs: Vec<f64> = sizes.iter().map(|&s| s as f64).collect();
    let proc_xs: Vec<f64> = proc_counts.iter().map(|&p| p as f64).collect();
    a.push_series("BG/P (double)", next_pts(&size_xs));
    a.push_series("BG/P (single)", next_pts(&size_xs));
    a.push_series("XT4/QC (double)", next_pts(&size_xs));
    b.push_series("BG/P (double)", next_pts(&proc_xs));
    b.push_series("BG/P (single)", next_pts(&proc_xs));
    b.push_series("XT4/QC (double)", next_pts(&proc_xs));
    for label in ["BG/P", "XT4/QC"] {
        c.push_series(label, next_pts(&size_xs));
        d.push_series(label, next_pts(&proc_xs));
    }
    vec![a, b, c, d]
}

/// §II.C: the TOP500 HPL run on the ORNL BG/P with power metering,
/// alongside the paper's reported values.
pub fn top500_table() -> Table {
    let r = hpcc::top500_run(&bluegene_p());
    let mut t = Table::new(
        "TOP500 HPL on ORNL BG/P (N=614399, NB=96, 64x128 grid, 8192 cores)",
        &["Metric", "Simulated", "Paper"],
    );
    t.push_row(vec![
        "HPL performance (GFlop/s)".into(),
        format!("{:.0}", r.hpl.gflops),
        "21400".into(),
    ]);
    t.push_row(vec![
        "Efficiency of peak".into(),
        format!("{:.1}%", r.hpl.efficiency * 100.0),
        "76.7%".into(),
    ]);
    t.push_row(vec!["Power (kW)".into(), format!("{:.1}", r.power_kw), "~63".into()]);
    t.push_row(vec![
        "MFlops/W".into(),
        format!("{:.1}", r.mflops_per_watt),
        "310.93 (Green500 #5)".into(),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_all_machines_and_features() {
        let t = table1();
        assert_eq!(t.headers.len(), 6); // feature + 5 machines
        assert_eq!(t.rows.len(), 12);
        let rendered = t.render();
        assert!(rendered.contains("BG/P"));
        assert!(rendered.contains("XT4/QC"));
        assert!(rendered.contains("13.60 GF/s"));
    }

    #[test]
    fn table2_quick_runs() {
        let t = table2(Scale::Quick);
        assert_eq!(t.rows.len(), 10);
        // every cell filled
        assert!(t.rows.iter().all(|r| r.iter().all(|c| !c.is_empty())));
    }

    #[test]
    fn fig3_quick_shapes() {
        let panels = fig3(Scale::Quick);
        assert_eq!(panels.len(), 4);
        let a = &panels[0];
        // DP beats SP on BG/P at 32KiB
        let dp = a.y_at("BG/P (double)", 32.0 * 1024.0).unwrap();
        let sp = a.y_at("BG/P (single)", 32.0 * 1024.0).unwrap();
        assert!(sp > 2.0 * dp, "SP {sp} vs DP {dp}");
        // Bcast: BG/P under XT at every size
        let c = &panels[2];
        for s in [8.0, 4096.0, 32.0 * 1024.0] {
            assert!(c.y_at("BG/P", s).unwrap() < c.y_at("XT4/QC", s).unwrap());
        }
    }

    #[test]
    fn top500_table_renders() {
        let t = top500_table();
        assert_eq!(t.rows.len(), 4);
        assert!(t.render().contains("MFlops/W"));
    }
}
