//! Table 3: the power comparison (§IV).
//!
//! The table derives every row from the models: aggregate draw under HPL
//! and under science codes, MFlops/W from the simulated HPL runs, POP
//! throughput (simulated-years-per-day) at 8192 cores, and the
//! iso-throughput comparison — how many cores and watts each machine
//! needs to reach 12 SYD.

use crate::experiment::Scale;
use crate::report::Table;
use crate::runner::parmap;
use hpcsim_apps as apps;
use hpcsim_hpcc as hpcc;
use hpcsim_machine::registry::{bluegene_p, xt4_dc, xt4_qc};
use hpcsim_machine::{ExecMode, MachineSpec};
use hpcsim_power::{PowerModel, UTIL_HPL, UTIL_SCIENCE};
use hpcsim_topo::Grid2D;

/// Find the POP SYD at a given core count (helper for the iso-SYD rows).
fn pop_syd(machine: &MachineSpec, cores: usize) -> f64 {
    apps::pop_run(machine, ExecMode::Vn, cores, 1, &apps::PopConfig::default()).syd
}

/// Search the core count needed to reach `target` SYD (coarse bisection
/// over a doubling ladder, capped at 65536).
fn cores_for_syd(machine: &MachineSpec, target: f64, scale: Scale) -> usize {
    let cap = match scale {
        Scale::Paper => 65_536usize,
        Scale::Quick => 4096,
    };
    let mut lo = 256usize;
    let mut hi = lo;
    while hi < cap && pop_syd(machine, hi) < target {
        lo = hi;
        hi *= 2;
    }
    if hi >= cap {
        return cap;
    }
    // one refinement step between lo and hi
    let mid = (lo + hi) / 2;
    if pop_syd(machine, mid) >= target {
        mid
    } else {
        hi
    }
}

/// Table 3: Power Comparison, BG/P (8192 cores) vs XT/QC (30976 cores).
pub fn table3(scale: Scale) -> Table {
    let bgp = bluegene_p();
    let xt = xt4_qc();
    let pm_b = PowerModel::new(bgp.clone());
    let pm_x = PowerModel::new(xt.clone());

    let cores_b = match scale {
        Scale::Paper => 8192usize,
        Scale::Quick => 1024,
    };
    let cores_x = match scale {
        Scale::Paper => 30_976usize,
        Scale::Quick => 1024,
    };

    // Paper: iso-throughput at 12 SYD. Quick scale caps the search at
    // 4096 cores, where neither machine reaches 12 — use a target both
    // can reach so the iso-power comparison stays meaningful.
    let syd_target = match scale {
        Scale::Paper => 12.0,
        Scale::Quick => 1.5,
    };
    // The paper's Table 3 POP throughput rows come from the Fig 4c
    // study, which ran on the dual-core XT4 under Catamount; its power
    // rows come from the quad-core system. We mirror that: SYD from
    // XT4/DC, watts from XT/QC per-core draw.
    let xt_pop = xt4_dc();

    // HPL runs for sustained flops
    let hpl = |machine: &MachineSpec, cores: usize| {
        let n = hpcc::hpl_problem_size(machine, cores, ExecMode::Vn, 0.7);
        let cfg = hpcc::HplConfig { n, nb: 96, grid: Grid2D::near_square(cores), samples: 8 };
        hpcc::hpl_run(machine, ExecMode::Vn, &cfg)
    };

    // scenario set: the six expensive simulations behind the table,
    // each a self-contained unit so the pool can run them concurrently
    type Unit<'a> = Box<dyn Fn() -> f64 + Sync + 'a>;
    let units: Vec<Unit<'_>> = vec![
        Box::new(|| hpl(&bgp, cores_b).gflops),
        Box::new(|| hpl(&xt, cores_x).gflops),
        Box::new(|| pop_syd(&bgp, cores_b.max(512))),
        Box::new(|| pop_syd(&xt_pop, cores_b.max(512))),
        Box::new(|| cores_for_syd(&bgp, syd_target, scale) as f64),
        Box::new(|| cores_for_syd(&xt_pop, syd_target, scale) as f64),
    ];
    let vals = parmap(&units, |u| u());
    let (hpl_b_gflops, hpl_x_gflops) = (vals[0], vals[1]);
    let (pop_b, pop_x) = (vals[2], vals[3]);
    let (iso_cores_b, iso_cores_x) = (vals[4] as usize, vals[5] as usize);

    let mut t = Table::new(
        format!(
            "Table 3: Power Comparison (BG/P {cores_b} cores, XT/QC {cores_x} cores{})",
            if scale == Scale::Quick { ", QUICK scale" } else { "" }
        ),
        &["Metric", "BG/P", "XT/QC"],
    );
    let kw = |w: f64| format!("{:.1}", w / 1e3);
    t.push_row(vec![
        "Measured aggregate power, HPL (kW)".into(),
        kw(pm_b.aggregate_w(cores_b as u64, UTIL_HPL)),
        kw(pm_x.aggregate_w(cores_x as u64, UTIL_HPL)),
    ]);
    t.push_row(vec![
        "  per core (W)".into(),
        format!("{:.1}", pm_b.per_core_w(UTIL_HPL)),
        format!("{:.1}", pm_x.per_core_w(UTIL_HPL)),
    ]);
    t.push_row(vec![
        "Measured aggregate power, normal (kW)".into(),
        kw(pm_b.aggregate_w(cores_b as u64, UTIL_SCIENCE)),
        kw(pm_x.aggregate_w(cores_x as u64, UTIL_SCIENCE)),
    ]);
    t.push_row(vec![
        "  per core (W)".into(),
        format!("{:.1}", pm_b.per_core_w(UTIL_SCIENCE)),
        format!("{:.1}", pm_x.per_core_w(UTIL_SCIENCE)),
    ]);
    t.push_row(vec![
        "Peak (TFlop/s)".into(),
        format!("{:.1}", bgp.core_peak_flops() * cores_b as f64 / 1e12),
        format!("{:.1}", xt.core_peak_flops() * cores_x as f64 / 1e12),
    ]);
    t.push_row(vec![
        "HPL Rmax (TFlop/s)".into(),
        format!("{:.1}", hpl_b_gflops / 1e3),
        format!("{:.1}", hpl_x_gflops / 1e3),
    ]);
    t.push_row(vec![
        "HPL MFlops/W".into(),
        format!("{:.1}", pm_b.mflops_per_watt(hpl_b_gflops * 1e9, cores_b as u64, UTIL_HPL)),
        format!("{:.1}", pm_x.mflops_per_watt(hpl_x_gflops * 1e9, cores_x as u64, UTIL_HPL)),
    ]);
    t.push_row(vec![
        format!("POP SYD @ {} cores", cores_b.max(512)),
        format!("{:.1}", pop_b),
        format!("{:.1}", pop_x),
    ]);
    t.push_row(vec![
        "  aggregate power (kW)".into(),
        kw(pm_b.aggregate_w(cores_b.max(512) as u64, UTIL_SCIENCE)),
        kw(pm_x.aggregate_w(cores_b.max(512) as u64, UTIL_SCIENCE)),
    ]);
    t.push_row(vec![
        format!("Approx. cores for POP SYD of {syd_target:.1}"),
        iso_cores_b.to_string(),
        iso_cores_x.to_string(),
    ]);
    t.push_row(vec![
        "  aggregate power (kW)".into(),
        kw(pm_b.aggregate_w(iso_cores_b as u64, UTIL_SCIENCE)),
        kw(pm_x.aggregate_w(iso_cores_x as u64, UTIL_SCIENCE)),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_quick_structure() {
        let t = table3(Scale::Quick);
        assert_eq!(t.rows.len(), 11);
        // per-core power columns reproduce the calibration anchors
        let hpl_per_core = &t.rows[1];
        let b: f64 = hpl_per_core[1].parse().unwrap();
        let x: f64 = hpl_per_core[2].parse().unwrap();
        assert!((b - 7.7).abs() < 0.6, "BG/P {b}");
        assert!((x - 51.0).abs() < 3.0, "XT {x}");
        // the famous ratio: ~6.6x per-core power
        let ratio = x / b;
        assert!((5.8..7.4).contains(&ratio), "ratio {ratio:.2}");
    }

    /// §IV's punchline: per-core the XT needs ~6.6× the power, but at
    /// iso-SYD the gap collapses (paper: 24% more aggregate power).
    #[test]
    fn iso_syd_narrows_the_gap() {
        let t = table3(Scale::Quick);
        let per_core_ratio: f64 = {
            let r = &t.rows[1];
            r[2].parse::<f64>().unwrap() / r[1].parse::<f64>().unwrap()
        };
        let iso_power_ratio: f64 = {
            let r = &t.rows[10];
            r[2].parse::<f64>().unwrap() / r[1].parse::<f64>().unwrap()
        };
        assert!(
            iso_power_ratio < per_core_ratio / 2.0,
            "iso-SYD ratio {iso_power_ratio:.2} should be far below per-core {per_core_ratio:.2}"
        );
    }
}
