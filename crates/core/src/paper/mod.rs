//! Regeneration of the paper's tables and figures, one function per
//! artifact. See `DESIGN.md` §4 for the experiment index.

pub mod apps;
pub mod micro;
pub mod power;
