//! Report primitives: tables and figure data series.
//!
//! Figures are reproduced as *data* (named series of (x, y) points) with
//! an aligned-text rendering and CSV export — the repository's stand-in
//! for the paper's plots.

use serde::Serialize;

/// A titled table of string cells.
#[derive(Debug, Clone, Serialize)]
pub struct Table {
    /// Table title (e.g. "Table 1: System Configuration Summary").
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows; each must match `headers.len()`.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// New empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header count).
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch in '{}'", self.title);
        self.rows.push(cells);
    }

    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Render as CSV (header row first).
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = self.headers.iter().map(|h| esc(h)).collect::<Vec<_>>().join(",");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// One named data series of a figure.
#[derive(Debug, Clone, Serialize)]
pub struct Series {
    /// Legend label (e.g. "BG/P VN").
    pub name: String,
    /// (x, y) points in plot order.
    pub points: Vec<(f64, f64)>,
}

/// A figure panel as data.
#[derive(Debug, Clone, Serialize)]
pub struct Figure {
    /// Panel title (e.g. "Fig 3(a): Allreduce latency vs message size").
    pub title: String,
    /// X axis label.
    pub x_label: String,
    /// Y axis label.
    pub y_label: String,
    /// Data series.
    pub series: Vec<Series>,
}

impl Figure {
    /// New empty figure.
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        Figure {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
        }
    }

    /// Add a series.
    pub fn push_series(&mut self, name: impl Into<String>, points: Vec<(f64, f64)>) {
        self.series.push(Series { name: name.into(), points });
    }

    /// Render as a cross-tabulated text table (x values down, one column
    /// per series).
    pub fn render(&self) -> String {
        let mut xs: Vec<f64> = self.series.iter().flat_map(|s| s.points.iter().map(|p| p.0)).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        xs.dedup();
        let mut out = format!("== {} ==\n", self.title);
        out.push_str(&format!("   [y: {}]\n", self.y_label));
        let mut header = vec![format!("{:>14}", self.x_label)];
        for s in &self.series {
            header.push(format!("{:>16}", s.name));
        }
        out.push_str(&header.join(" "));
        out.push('\n');
        for &x in &xs {
            let mut row = vec![format!("{x:>14.6}")];
            for s in &self.series {
                let y = s
                    .points
                    .iter()
                    .find(|p| p.0 == x)
                    .map(|p| format!("{:>16.6}", p.1))
                    .unwrap_or_else(|| format!("{:>16}", "-"));
                row.push(y);
            }
            out.push_str(&row.join(" "));
            out.push('\n');
        }
        out
    }

    /// CSV: `x,series1,series2,…`.
    pub fn to_csv(&self) -> String {
        let mut xs: Vec<f64> = self.series.iter().flat_map(|s| s.points.iter().map(|p| p.0)).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        xs.dedup();
        let mut out = String::from("x");
        for s in &self.series {
            out.push(',');
            out.push_str(&s.name.replace(',', ";"));
        }
        out.push('\n');
        for &x in &xs {
            out.push_str(&format!("{x}"));
            for s in &self.series {
                out.push(',');
                if let Some(p) = s.points.iter().find(|p| p.0 == x) {
                    out.push_str(&format!("{}", p.1));
                }
            }
            out.push('\n');
        }
        out
    }

    /// Y value of series `name` at `x`, if present (test helper).
    pub fn y_at(&self, name: &str, x: f64) -> Option<f64> {
        self.series
            .iter()
            .find(|s| s.name == name)?
            .points
            .iter()
            .find(|p| p.0 == x)
            .map(|p| p.1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_table() -> Table {
        let mut t = Table::new("T", &["a", "b"]);
        t.push_row(vec!["1".into(), "hello, world".into()]);
        t.push_row(vec!["22".into(), "x".into()]);
        t
    }

    #[test]
    fn table_renders_aligned() {
        let r = sample_table().render();
        assert!(r.contains("== T =="));
        let lines: Vec<&str> = r.lines().collect();
        // header + separator + 2 rows + title
        assert_eq!(lines.len(), 5);
    }

    #[test]
    fn table_csv_escapes_commas() {
        let csv = sample_table().to_csv();
        assert!(csv.contains("\"hello, world\""));
        assert!(csv.starts_with("a,b\n"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new("T", &["a", "b"]);
        t.push_row(vec!["only-one".into()]);
    }

    fn sample_figure() -> Figure {
        let mut f = Figure::new("F", "x", "y");
        f.push_series("s1", vec![(1.0, 10.0), (2.0, 20.0)]);
        f.push_series("s2", vec![(1.0, 11.0)]);
        f
    }

    #[test]
    fn figure_cross_tabulates() {
        let r = sample_figure().render();
        assert!(r.contains("s1"));
        assert!(r.contains("s2"));
        // x=2 has no s2 point: a dash appears
        assert!(r.lines().last().unwrap().contains('-'));
    }

    #[test]
    fn figure_csv_holes_are_empty() {
        let csv = sample_figure().to_csv();
        let last = csv.lines().last().unwrap();
        assert_eq!(last, "2,20,");
    }

    #[test]
    fn y_at_lookup() {
        let f = sample_figure();
        assert_eq!(f.y_at("s1", 2.0), Some(20.0));
        assert_eq!(f.y_at("s2", 2.0), None);
        assert_eq!(f.y_at("nope", 1.0), None);
    }
}
