//! # hpcsim-core
//!
//! The evaluation framework tying the substrates together: experiment
//! identifiers for **every table and figure in the paper**, a runner that
//! regenerates them at two scales, and report types (tables and figure
//! data series) that render to aligned text and CSV.
//!
//! ```no_run
//! use hpcsim_core::{run_experiment, ExperimentId, Scale};
//! let artifact = run_experiment(ExperimentId::Fig3, Scale::Quick);
//! println!("{}", artifact.render());
//! ```
//!
//! [`Scale::Quick`] uses reduced rank counts so the full battery runs in
//! minutes on a laptop; [`Scale::Paper`] uses the paper's own process
//! counts (up to 40,000 for POP). Shapes are preserved at both scales —
//! the integration tests pin them at `Quick`, the `repro` binary records
//! them at `Paper`.

pub mod ablations;
pub mod cache_bench;
pub mod experiment;
pub mod paper;
pub mod probe;
pub mod report;
pub mod resilience;
pub mod runner;
pub mod sensitivity;
pub mod sweep;

pub use ablations::{ablation_table, run_ablations, Ablation};
pub use cache_bench::{scenario_cache_battery, ScenarioCacheStats};
pub use experiment::{run_experiment, Artifact, ExperimentId, Scale};
pub use hpcsim_mpi::{set_sweep_engine, sweep_engine, SweepEngine};
pub use sweep::{fig2_mapping_sweep, MappingSweepStats};
pub use probe::{
    breakdown_table, chrome_json, metrics_json, scenario_metrics, spans_csv, trace_experiment,
    trace_experiment_with, traceable, TraceReport, TracedScenario,
};
pub use report::{Figure, Series, Table};
pub use resilience::{resilience_battery, ResilienceReport, ScenarioError};
pub use runner::{jobs, parmap, set_jobs, try_parmap, ScenarioPanic};
pub use sensitivity::{
    sensitivity_battery, sensitivity_battery_with, SensitivityRow, SensitivityStats,
};
// The leveled logger and the metrics registry live in the leaf
// `hpcsim-obs` crate (so even crates *below* core can feed them);
// re-export here so harness code reaches both through core.
pub use hpcsim_obs::{
    log_debug, log_error, log_info, log_warn, log_warn_once, log_level, set_log_level, LogLevel,
};
pub use hpcsim_obs as obs;
