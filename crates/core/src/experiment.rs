//! Experiment identifiers, scales, and the runner.

use crate::paper;
use crate::report::{Figure, Table};
use serde::Serialize;

/// Every table and figure in the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum ExperimentId {
    /// Table 1: system configuration summary.
    Table1,
    /// Table 2: HPCC single-process/EP and communication tests.
    Table2,
    /// Figure 1: HPCC parallel tests (HPL, FFT, PTRANS, RandomAccess).
    Fig1,
    /// Figure 2: HALO protocols, mappings, grid sizes.
    Fig2,
    /// Figure 3: IMB Allreduce and Bcast.
    Fig3,
    /// §II.C: the TOP500 HPL run with power.
    Top500,
    /// Figure 4: POP tenth-degree benchmark.
    Fig4,
    /// Figure 5: CAM.
    Fig5,
    /// Figure 6: S3D.
    Fig6,
    /// Figure 7: GYRO.
    Fig7,
    /// Figure 8: LAMMPS and PMEMD.
    Fig8,
    /// Table 3: power comparison.
    Table3,
}

impl ExperimentId {
    /// All experiments in paper order.
    pub fn all() -> [ExperimentId; 12] {
        use ExperimentId::*;
        [Table1, Table2, Fig1, Fig2, Fig3, Top500, Fig4, Fig5, Fig6, Fig7, Fig8, Table3]
    }

    /// Short slug for file names / CLI.
    pub fn slug(self) -> &'static str {
        use ExperimentId::*;
        match self {
            Table1 => "table1",
            Table2 => "table2",
            Fig1 => "fig1",
            Fig2 => "fig2",
            Fig3 => "fig3",
            Top500 => "top500",
            Fig4 => "fig4",
            Fig5 => "fig5",
            Fig6 => "fig6",
            Fig7 => "fig7",
            Fig8 => "fig8",
            Table3 => "table3",
        }
    }

    /// Parse a slug.
    pub fn from_slug(s: &str) -> Option<ExperimentId> {
        ExperimentId::all().into_iter().find(|e| e.slug() == s.trim().to_lowercase())
    }
}

/// How big to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Scale {
    /// Reduced rank counts: the full battery in minutes. Shapes hold.
    Quick,
    /// The paper's process counts (slow; use for the recorded repro).
    Paper,
}

impl Scale {
    /// Scale a paper-sized process count down for Quick runs.
    pub fn ranks(self, paper_ranks: usize) -> usize {
        match self {
            Scale::Paper => paper_ranks,
            Scale::Quick => (paper_ranks / 16).clamp(16, 2048),
        }
    }
}

/// The output of one experiment: tables and/or figure panels.
#[derive(Debug, Clone, Serialize)]
pub struct Artifact {
    /// Which experiment.
    pub id: ExperimentId,
    /// Scale it ran at.
    pub scale: Scale,
    /// Tables produced.
    pub tables: Vec<Table>,
    /// Figure panels produced.
    pub figures: Vec<Figure>,
}

impl Artifact {
    /// Render everything as text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for t in &self.tables {
            out.push_str(&t.render());
            out.push('\n');
        }
        for f in &self.figures {
            out.push_str(&f.render());
            out.push('\n');
        }
        out
    }

    /// Write CSV files (one per table/figure) into `dir`; returns the
    /// paths written.
    pub fn write_csv(&self, dir: &std::path::Path) -> std::io::Result<Vec<std::path::PathBuf>> {
        std::fs::create_dir_all(dir)?;
        let mut paths = Vec::new();
        for (i, t) in self.tables.iter().enumerate() {
            let p = dir.join(format!("{}_{}.csv", self.id.slug(), i));
            std::fs::write(&p, t.to_csv())?;
            paths.push(p);
        }
        for (i, f) in self.figures.iter().enumerate() {
            let p = dir.join(format!("{}_panel{}.csv", self.id.slug(), i));
            std::fs::write(&p, f.to_csv())?;
            paths.push(p);
        }
        Ok(paths)
    }
}

/// Run one experiment at the given scale.
pub fn run_experiment(id: ExperimentId, scale: Scale) -> Artifact {
    let (tables, figures) = match id {
        ExperimentId::Table1 => (vec![paper::micro::table1()], vec![]),
        ExperimentId::Table2 => (vec![paper::micro::table2(scale)], vec![]),
        ExperimentId::Fig1 => (vec![], paper::micro::fig1(scale)),
        ExperimentId::Fig2 => (vec![], paper::micro::fig2(scale)),
        ExperimentId::Fig3 => (vec![], paper::micro::fig3(scale)),
        ExperimentId::Top500 => (vec![paper::micro::top500_table()], vec![]),
        ExperimentId::Fig4 => (vec![], paper::apps::fig4(scale)),
        ExperimentId::Fig5 => (vec![], paper::apps::fig5(scale)),
        ExperimentId::Fig6 => (vec![], paper::apps::fig6(scale)),
        ExperimentId::Fig7 => (vec![], paper::apps::fig7(scale)),
        ExperimentId::Fig8 => (vec![], paper::apps::fig8(scale)),
        ExperimentId::Table3 => (vec![paper::power::table3(scale)], vec![]),
    };
    Artifact { id, scale, tables, figures }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slugs_round_trip() {
        for id in ExperimentId::all() {
            assert_eq!(ExperimentId::from_slug(id.slug()), Some(id));
        }
        assert_eq!(ExperimentId::from_slug("nope"), None);
        assert_eq!(ExperimentId::from_slug(" FIG3 "), Some(ExperimentId::Fig3));
    }

    #[test]
    fn quick_scale_shrinks() {
        assert_eq!(Scale::Quick.ranks(8192), 512);
        assert_eq!(Scale::Quick.ranks(40_000), 2048);
        assert_eq!(Scale::Quick.ranks(64), 16);
        assert_eq!(Scale::Paper.ranks(8192), 8192);
    }

    #[test]
    fn all_lists_twelve() {
        assert_eq!(ExperimentId::all().len(), 12);
    }
}
