//! Monte-Carlo sensitivity battery over the Fig 2 halo DAG — the
//! measurement behind the `sensitivity` entry in `BENCH_repro.json`
//! (schema v6) and the release-gated batched-throughput guard.
//!
//! The battery compiles a 4096-rank (quick: 256) stencil iteration
//! once — a per-rank stencil-update delay, the Fig 2 halo exchange,
//! and a convergence-norm allreduce per sweep, so every parameter
//! group owns real work in the DAG — then prices seeded multiplicative
//! perturbations of each machine parameter group (link bandwidth, hop
//! latency, compute noise, collectives, and all four together) through
//! the DAG engine's batched [`TraceDag::evaluate_perturbed`] path.
//! Per-group makespan statistics come from the engine's Welford
//! kernels ([`OnlineStats`]); the same sample set is re-run one sample
//! at a time to measure the batched-over-looped throughput gain.
//!
//! Everything that lands in the [`Table`] / CSV artifact is
//! deterministic: sample i of group g is a pure function of
//! `(seed, g, i)` via the splittable RNG, the batch chunking is fixed
//! (32 samples) regardless of the worker count, and [`parmap`]
//! preserves input order — so the rendered output is byte-identical
//! across `--jobs` settings. Wall-clock timings live only in the
//! stats struct (and hence the BENCH entry), never in the table.

use hpcsim_engine::{split_seed, splitmix64, OnlineStats, SimTime};
use hpcsim_hpcc as hpcc;
use hpcsim_machine::registry::bluegene_p;
use hpcsim_machine::{
    ExecMode, MachineSpec, ParamGroups, Perturbation, PerturbSpec, PerturbationSampler,
};
use hpcsim_mpi::{CommId, FnProgram, Mpi, SimConfig, SimResult, TraceDag, TraceSim};
use hpcsim_net::DType;
use hpcsim_topo::Grid2D;

use crate::experiment::Scale;
use crate::report::Table;
use crate::runner::parmap;

/// Fixed batch width handed to [`TraceDag::evaluate_perturbed`] per
/// [`parmap`] work item. Matches the engine's widest lane count so
/// full chunks run at 100% occupancy, and keeps the chunk decomposition
/// independent of the worker count (determinism across `--jobs`).
const CHUNK: usize = 32;

/// The perturbed parameter groups swept by the battery, in row order.
const GROUP_ROWS: [ParamGroups; 5] = [
    ParamGroups::LINK_BW,
    ParamGroups::HOP_LAT,
    ParamGroups::COMPUTE,
    ParamGroups::COLLECTIVE,
    ParamGroups::ALL,
];

/// One per-parameter-group row of the sensitivity table.
#[derive(Debug, Clone, PartialEq)]
pub struct SensitivityRow {
    /// Perturbed parameter group(s).
    pub groups: ParamGroups,
    /// Samples drawn for this row.
    pub samples: u64,
    /// Mean perturbed makespan, microseconds.
    pub mean_us: f64,
    /// Sample standard deviation of the makespan, microseconds.
    pub stddev_us: f64,
    /// Half-width of the normal-approximation 95% confidence interval
    /// on the mean (`1.96 · σ/√n`), microseconds.
    pub ci95_us: f64,
    /// Smallest perturbed makespan, microseconds.
    pub min_us: f64,
    /// Largest perturbed makespan, microseconds.
    pub max_us: f64,
    /// Mean shift relative to the unperturbed makespan, percent.
    pub delta_pct: f64,
}

/// Outcome of the Monte-Carlo sensitivity battery.
#[derive(Debug, Clone)]
pub struct SensitivityStats {
    /// Per-group sensitivity rows, in [`GROUP_ROWS`] order.
    pub rows: Vec<SensitivityRow>,
    /// Total perturbation samples across all rows.
    pub samples: u64,
    /// Unperturbed (baseline) makespan, microseconds.
    pub baseline_us: f64,
    /// Wall seconds for the batched pass (fixed 32-sample chunks fanned
    /// out over [`parmap`]).
    pub batched_seconds: f64,
    /// Wall seconds re-running the same samples one at a time,
    /// sequentially — the per-sample-loop baseline the batched path is
    /// judged against.
    pub looped_seconds: f64,
    /// Whether an identity perturbation reproduced the baseline
    /// [`TraceDag::evaluate_many`] result bit-for-bit.
    pub zero_identical: bool,
    /// Fraction of parameter-group cost arrays actually re-priced
    /// (touched groups / 4 per sample); the rest were copied from the
    /// cached base tables.
    pub repriced_fraction: f64,
    /// Mean lane occupancy of the batched pass: samples evaluated per
    /// SIMD-style lane slot allocated (1.0 = every lane carried a real
    /// sample, < 1.0 = padding on narrow tails).
    pub batch_occupancy: f64,
}

impl SensitivityStats {
    /// Looped-over-batched wall-clock ratio.
    pub fn speedup(&self) -> f64 {
        self.looped_seconds / self.batched_seconds.max(1e-12)
    }

    /// Render the per-group rows as an aligned report table. Contains
    /// only deterministic statistics — no wall-clock timings.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Monte-Carlo sensitivity: stencil iteration makespan by perturbed parameter group",
            &[
                "group", "samples", "mean_us", "ci95_us", "stddev_us", "min_us", "max_us",
                "delta_pct",
            ],
        );
        for r in &self.rows {
            t.push_row(vec![
                r.groups.label(),
                r.samples.to_string(),
                format!("{:.3}", r.mean_us),
                format!("{:.3}", r.ci95_us),
                format!("{:.3}", r.stddev_us),
                format!("{:.3}", r.min_us),
                format!("{:.3}", r.max_us),
                format!("{:+.3}", r.delta_pct),
            ]);
        }
        t
    }
}

/// Lane slots the engine allocates for a batch of `n` samples: full
/// 32-wide batches, then padded 8-wide batches, then a 1-wide tail.
/// Mirrors the dispatch in [`TraceDag::evaluate_perturbed`].
fn lane_slots(mut n: usize) -> u64 {
    let mut slots = 0u64;
    while n >= 32 {
        n -= 32;
        slots += 32;
    }
    while n > 1 {
        n -= n.min(8);
        slots += 8;
    }
    slots + n as u64
}

/// Trace the stencil iteration the battery prices: each sweep is a
/// per-rank stencil-update delay (compute group), the Fig 2 halo
/// exchange (link-bandwidth and hop-latency groups), and a
/// convergence-norm allreduce (collective group) — so every perturbed
/// parameter group owns real work in the compiled DAG. The compute
/// delay carries a deterministic per-rank jitter: stragglers are what
/// make compute noise visible in the makespan at all.
fn stencil_traces(grid: Grid2D, words: u64, reps: u32) -> Vec<Vec<hpcsim_mpi::Op>> {
    TraceSim::trace_program(
        &FnProgram(move |mpi: &mut Mpi| {
            let me = mpi.rank();
            for round in 0..reps {
                let jitter = splitmix64(((me as u64) << 32) | round as u64) % 10;
                mpi.delay(SimTime::from_us(20 + jitter));
                hpcc::halo_record_exchange(
                    mpi,
                    grid,
                    words,
                    hpcc::HaloProtocol::IrecvIsend,
                    round,
                );
                mpi.allreduce(CommId::WORLD, 8, DType::F64);
            }
        }),
        grid.size(),
        1,
    )
}

fn exact_match(a: &SimResult, b: &SimResult) -> bool {
    a.finish == b.finish
        && a.busy == b.busy
        && a.bytes_sent == b.bytes_sent
        && a.messages == b.messages
        && a.marks == b.marks
}

/// Run the sensitivity battery at the scale's default sample count
/// (200 per group at quick scale — the 1,000-sample acceptance run —
/// and 400 per group at paper scale).
pub fn sensitivity_battery(scale: Scale, seed: u64) -> SensitivityStats {
    let per_group = match scale {
        Scale::Quick => 200,
        Scale::Paper => 400,
    };
    sensitivity_battery_with(scale, seed, per_group)
}

/// [`sensitivity_battery`] with an explicit per-group sample count
/// (tests use small counts to keep debug builds fast).
pub fn sensitivity_battery_with(
    scale: Scale,
    seed: u64,
    samples_per_group: usize,
) -> SensitivityStats {
    let machine: MachineSpec = bluegene_p().with_flat_contention();
    let grid = Grid2D::near_square(scale.ranks(4096));
    let traces = stencil_traces(grid, 2048, 2);
    let ranks = traces.len();
    let dag = TraceDag::compile_world(&traces);
    let cfg = SimConfig::new(machine, ranks, ExecMode::Vn);

    let base = dag.evaluate_many(std::slice::from_ref(&cfg)).remove(0);
    let baseline_us = base.makespan().as_secs() * 1e6;
    let zero = dag
        .evaluate_perturbed(&cfg, std::slice::from_ref(&Perturbation::IDENTITY))
        .remove(0);
    let zero_identical = exact_match(&base, &zero);

    // Sample i of group g depends only on (seed, g, i): the sampler is
    // seeded from the split stream, so neither chunking nor worker
    // count can change what gets priced.
    let spec = PerturbSpec::default();
    let group_samples: Vec<Vec<Perturbation>> = GROUP_ROWS
        .iter()
        .enumerate()
        .map(|(g, &mask)| {
            let sampler = PerturbationSampler::new(split_seed(seed, g as u64), spec).only(mask);
            (0..samples_per_group as u64).map(|i| sampler.sample(i)).collect()
        })
        .collect();

    // Batched pass: fixed-width chunks across every group, fanned out
    // over the worker pool. parmap preserves input order, so results
    // regroup deterministically.
    let chunks: Vec<&[Perturbation]> = group_samples
        .iter()
        .flat_map(|s| s.chunks(CHUNK))
        .collect();
    let t0 = std::time::Instant::now();
    let chunk_results: Vec<Vec<SimResult>> =
        parmap(&chunks, |ch| dag.evaluate_perturbed(&cfg, ch));
    let batched_seconds = t0.elapsed().as_secs_f64();
    let mut results = chunk_results.into_iter().flatten();

    // Looped baseline: same samples, one at a time, each materialised
    // into a perturbed MachineSpec and evaluated as its own point.
    // This is what a Monte-Carlo driver without the batched
    // perturbation path does: every sample's machine differs, so the
    // evaluator re-derives its cached cost tables from scratch on each
    // call — exactly the rebuild that delta re-pricing avoids.
    let t1 = std::time::Instant::now();
    for samples in &group_samples {
        for s in samples {
            let mut c = cfg.clone();
            c.machine = s.apply_to(&cfg.machine);
            std::hint::black_box(dag.evaluate(&c));
        }
    }
    let looped_seconds = t1.elapsed().as_secs_f64();

    let mut rows = Vec::with_capacity(GROUP_ROWS.len());
    let mut repriced = 0u64;
    for (g, samples) in group_samples.iter().enumerate() {
        let mut stats = OnlineStats::new();
        for _ in samples {
            let r = results.next().expect("one result per sample");
            stats.push(r.makespan().as_secs() * 1e6);
        }
        repriced += samples.iter().map(|p| p.groups().count() as u64).sum::<u64>();
        let n = stats.count() as f64;
        let stddev = stats.stddev();
        rows.push(SensitivityRow {
            groups: GROUP_ROWS[g],
            samples: stats.count(),
            mean_us: stats.mean(),
            stddev_us: stddev,
            ci95_us: 1.96 * stddev / n.max(1.0).sqrt(),
            min_us: stats.min(),
            max_us: stats.max(),
            delta_pct: 100.0 * (stats.mean() - baseline_us) / baseline_us.max(1e-12),
        });
    }

    let samples = (GROUP_ROWS.len() * samples_per_group) as u64;
    let slots: u64 = chunks.iter().map(|c| lane_slots(c.len())).sum();
    SensitivityStats {
        rows,
        samples,
        baseline_us,
        batched_seconds,
        looped_seconds,
        zero_identical,
        repriced_fraction: repriced as f64
            / (samples as f64 * ParamGroups::COUNT as f64).max(1.0),
        batch_occupancy: samples as f64 / (slots as f64).max(1.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn battery_shape_at_quick_scale() {
        let s = sensitivity_battery_with(Scale::Quick, 7, 12);
        assert_eq!(s.samples, 60);
        assert_eq!(s.rows.len(), 5);
        assert!(s.zero_identical, "identity sample diverged from evaluate_many");
        assert!(s.baseline_us > 0.0);
        for r in &s.rows {
            assert_eq!(r.samples, 12);
            assert!(r.mean_us > 0.0 && r.min_us <= r.mean_us && r.mean_us <= r.max_us);
            assert!(r.ci95_us >= 0.0 && r.stddev_us >= 0.0);
        }
        // Single-group rows re-price 1 of 4 arrays; the `all` row 4 of 4
        // (up to samples that happen to draw an exact-1.0 factor).
        assert!(s.repriced_fraction > 0.25 && s.repriced_fraction <= 0.4 + 0.2);
        assert!(s.batch_occupancy > 0.0 && s.batch_occupancy <= 1.0);
        assert!(s.batched_seconds > 0.0 && s.looped_seconds > 0.0);
    }

    #[test]
    fn perturbed_rows_move_off_baseline() {
        let s = sensitivity_battery_with(Scale::Quick, 11, 16);
        // Every parameter group owns real work in the stencil DAG, so
        // every row must actually move the makespan: a flat row means
        // that group's costs are not being priced.
        for r in &s.rows {
            assert!(
                r.stddev_us > 0.0,
                "row {} shows no spread — its perturbations are not being priced",
                r.groups.label()
            );
        }
        let compute = &s.rows[2];
        assert!(
            compute.min_us >= s.baseline_us,
            "compute noise is one-sided slowdown; min {} fell below baseline {}",
            compute.min_us,
            s.baseline_us
        );
        assert!(compute.max_us > s.baseline_us);
    }

    #[test]
    fn lane_slot_model_matches_dispatch() {
        assert_eq!(lane_slots(0), 0);
        assert_eq!(lane_slots(1), 1);
        assert_eq!(lane_slots(2), 8);
        assert_eq!(lane_slots(8), 8);
        assert_eq!(lane_slots(9), 9);
        assert_eq!(lane_slots(10), 16);
        assert_eq!(lane_slots(32), 32);
        assert_eq!(lane_slots(33), 33);
        assert_eq!(lane_slots(40), 40);
        assert_eq!(lane_slots(47), 32 + 8 + 8);
    }
}
