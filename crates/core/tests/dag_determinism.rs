//! DAG-engine determinism regression: with `SweepEngine::Dag` selected,
//! the sweep-bearing experiments (Fig 2's mapping scan, Fig 8's machine
//! scan) must render byte-identically at `--jobs 1` and `--jobs 4`, and
//! identically to the replay engine (Dag falls back to replay wherever
//! it is not provably exact, so default repro output cannot change).
//!
//! Deliberately a separate integration-test binary: both `set_jobs` and
//! `set_sweep_engine` are process-wide knobs, so this test cannot share
//! a process with tests that assume the defaults.

use hpcsim_core::{
    run_experiment, set_jobs, set_sweep_engine, ExperimentId, Scale, SweepEngine,
};

#[test]
fn dag_engine_is_jobs_invariant_and_matches_replay() {
    for id in [ExperimentId::Fig2, ExperimentId::Fig8] {
        set_sweep_engine(SweepEngine::Replay);
        set_jobs(1);
        let replay = run_experiment(id, Scale::Quick).render();

        set_sweep_engine(SweepEngine::Dag);
        set_jobs(1);
        let dag_seq = run_experiment(id, Scale::Quick).render();
        set_jobs(4);
        let dag_par = run_experiment(id, Scale::Quick).render();

        set_jobs(0);
        set_sweep_engine(SweepEngine::Replay);

        assert!(
            dag_seq == dag_par,
            "{}: DAG engine differs between --jobs 1 and --jobs 4",
            id.slug()
        );
        assert!(
            replay == dag_seq,
            "{}: DAG engine output differs from replay engine",
            id.slug()
        );
    }
}
