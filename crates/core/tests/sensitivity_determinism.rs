//! The sensitivity battery's reportable output must be byte-identical
//! regardless of the worker count: sample generation is a pure function
//! of `(seed, group, index)`, chunking is fixed-width, and `parmap`
//! preserves input order — so `--jobs 1` and `--jobs 4` render the same
//! table and CSV. A single test function owns the process-global jobs
//! knob for the whole binary, so the two runs cannot race.

use hpcsim_core::{sensitivity_battery_with, set_jobs, Scale};

#[test]
fn sensitivity_output_is_byte_identical_across_jobs() {
    set_jobs(1);
    let serial = sensitivity_battery_with(Scale::Quick, 42, 48);
    set_jobs(4);
    let parallel = sensitivity_battery_with(Scale::Quick, 42, 48);
    set_jobs(0); // restore "auto" for anything else in this process

    assert_eq!(serial.rows, parallel.rows, "per-group stats diverged across jobs");
    assert_eq!(serial.table().render(), parallel.table().render());
    assert_eq!(serial.table().to_csv(), parallel.table().to_csv());
    assert_eq!(serial.samples, parallel.samples);
    assert_eq!(serial.baseline_us, parallel.baseline_us);
    assert_eq!(serial.repriced_fraction, parallel.repriced_fraction);
    assert_eq!(serial.batch_occupancy, parallel.batch_occupancy);
    assert!(serial.zero_identical && parallel.zero_identical);
}
