//! The parallel scenario fan-out must be invisible in the artifacts:
//! `runner::parmap` places every result by input index, so each
//! experiment must render byte-identically whether the battery runs on
//! one worker or many.
//!
//! This is the determinism guard for the whole repro pipeline — it is
//! deliberately the only test in this file because `set_jobs` is a
//! process-wide knob and the harness runs tests within a binary
//! concurrently.

use hpcsim_core::{run_experiment, set_jobs, ExperimentId, Scale};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2))]
    #[test]
    fn every_experiment_renders_identically_at_any_worker_count(jobs in 2usize..9) {
        for id in ExperimentId::all() {
            set_jobs(1);
            let sequential = run_experiment(id, Scale::Quick).render();
            set_jobs(jobs);
            let parallel = run_experiment(id, Scale::Quick).render();
            set_jobs(0);
            prop_assert!(
                sequential == parallel,
                "{} differs between --jobs 1 and --jobs {jobs}",
                id.slug()
            );
        }
    }
}
