//! The traced battery must be as worker-count-blind as the untraced
//! one: `trace_experiment` fans scenarios out through `parmap` and
//! reassembles them in input order, so the exported Chrome trace,
//! span CSV, and metrics report are byte-identical at any `--jobs`.
//!
//! Deliberately the only test in this file: `set_jobs` is a
//! process-wide knob and the harness runs tests within one binary
//! concurrently.

use hpcsim_core::{
    chrome_json, metrics_json, set_jobs, spans_csv, trace_experiment, ExperimentId, Scale,
};
use hpcsim_probe::validate_trace;

#[test]
fn traced_battery_is_identical_at_any_worker_count() {
    set_jobs(1);
    let seq = trace_experiment(ExperimentId::Fig2, Scale::Quick).unwrap();
    set_jobs(4);
    let par = trace_experiment(ExperimentId::Fig2, Scale::Quick).unwrap();
    set_jobs(0);

    let seq = std::slice::from_ref(&seq);
    let par = std::slice::from_ref(&par);
    let (trace_seq, trace_par) = (chrome_json(seq), chrome_json(par));
    assert_eq!(trace_seq, trace_par, "trace differs between --jobs 1 and --jobs 4");
    assert_eq!(spans_csv(seq), spans_csv(par), "span CSV differs across worker counts");
    assert_eq!(metrics_json(seq), metrics_json(par), "metrics differ across worker counts");
    validate_trace(&trace_seq).expect("deterministic trace must also validate");
}
