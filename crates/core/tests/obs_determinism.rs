//! The registry's deterministic/volatile split, pinned in-process: the
//! `Class::Deterministic` counters — and the rendered `"deterministic"`
//! report block — must be byte-identical across worker counts, while
//! the battery output itself stays byte-identical as always.
//!
//! One test function on purpose: integration tests in a binary share
//! the process-global registry, and `obs::reset()` between batteries
//! would race with a sibling test.

use hpcsim_core::{obs, run_experiment, set_jobs, ExperimentId, Scale};

fn battery(jobs: usize) -> (String, obs::Snapshot) {
    obs::reset();
    set_jobs(jobs);
    let artifact = run_experiment(ExperimentId::Fig2, Scale::Quick);
    let rendered = artifact.render();
    (rendered, obs::snapshot())
}

fn deterministic_counters(snap: &obs::Snapshot) -> Vec<(&'static str, u64)> {
    snap.counters
        .iter()
        .filter(|c| c.class == obs::Class::Deterministic)
        .map(|c| (c.name, c.value))
        .collect()
}

#[test]
fn deterministic_class_is_invariant_across_jobs() {
    obs::set_enabled(true);
    let (r1, s1) = battery(1);
    let (r4, s4) = battery(4);
    set_jobs(0);
    obs::set_enabled(false);

    // the battery itself is already pinned elsewhere; keep the anchor
    assert_eq!(r1, r4, "fig2 render must not depend on worker count");

    // every deterministic-class counter merges to the same total from
    // one worker's shards or four workers' shards
    let d1 = deterministic_counters(&s1);
    let d4 = deterministic_counters(&s4);
    assert!(!d1.is_empty(), "the battery must touch deterministic counters");
    assert_eq!(d1, d4, "deterministic counters differ across --jobs");
    assert!(
        d1.iter().any(|&(n, v)| n == "hpcsim_scenarios_total" && v > 0),
        "the runner must count scenarios: {d1:?}"
    );

    // and the rendered block CI diffs is byte-identical
    assert_eq!(obs::deterministic_json(&s1), obs::deterministic_json(&s4));

    // volatile counters exist (the cache was exercised) but stay out of
    // the deterministic block — hits trade against coalesces with jobs
    assert!(
        s1.counters.iter().any(|c| c.class == obs::Class::Volatile && c.value > 0),
        "the battery must touch volatile counters too"
    );
    let block = obs::deterministic_json(&s1);
    for c in s1.counters.iter().filter(|c| c.class == obs::Class::Volatile) {
        assert!(!block.contains(c.name), "{} leaked into the deterministic block", c.name);
    }

    // wall-clock histograms recorded, and quarantined in `timing`
    assert!(
        s1.hists.iter().any(|h| h.name == "hpcsim_scenario_wall_ns" && h.count > 0),
        "enabled registry must record scenario wall times"
    );
    for h in &s1.hists {
        assert!(!block.contains(h.name), "{} leaked into the deterministic block", h.name);
    }
}
