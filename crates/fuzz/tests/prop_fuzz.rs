//! Property tests pinning the fuzzer's two foundational contracts:
//!
//! 1. **Generator termination** — every generator-produced program
//!    replays to completion on a contention-free pristine machine (the
//!    phase discipline makes deadlock impossible by construction), and
//!    agrees with the DAG oracle while doing it.
//! 2. **Corpus serialization identity** — mutate → serialize → parse →
//!    rehash is the identity, so corpus artifacts and checked-in
//!    regressions reproduce bit-exactly from their text form alone.

use hpcsim_fuzz::{generate, mutate, run_scenario, FuzzScenario, OutcomeKind};
use hpcsim_machine::registry::bluegene_p;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Generated programs terminate on a pristine contention-flat
    /// machine: the replay never deadlocks, stalls or livelocks. The
    /// differential oracle may still flag a (terminating) Dag-vs-Replay
    /// divergence — the fuzzer's first campaign found exactly one, now
    /// pinned as `tests/corpus/divergence.fuzz` at the workspace root —
    /// so Divergence counts as termination here, not as a hang.
    #[test]
    fn generator_programs_terminate_pristine(seed: u64, iter in 0u64..512) {
        let mut sc = generate(seed, iter);
        sc.faults = None;
        sc.machine = bluegene_p().with_flat_contention();
        let rep = run_scenario(&sc);
        prop_assert!(
            matches!(rep.outcome, OutcomeKind::Ok | OutcomeKind::Divergence),
            "outcome {:?}: {}", rep.outcome, rep.detail
        );
    }

    /// Generated programs also terminate on their own (possibly
    /// contended) machine when no fault plan is armed.
    #[test]
    fn generator_programs_terminate_contended(seed: u64, iter in 0u64..512) {
        let mut sc = generate(seed, iter);
        sc.faults = None;
        let rep = run_scenario(&sc);
        prop_assert!(
            matches!(rep.outcome, OutcomeKind::Ok | OutcomeKind::Divergence),
            "outcome {:?}: {}", rep.outcome, rep.detail
        );
    }

    /// mutate → serialize → parse → rehash is the identity, for any
    /// mutation count, including the re-serialized text being
    /// byte-identical (idempotent canonicalization).
    #[test]
    fn mutate_serialize_parse_rehash_identity(seed: u64, iter in 0u64..512, count in 1u32..8) {
        let base = generate(seed, iter);
        let mutant = mutate(&base, seed ^ 0x9e37, iter, count);
        let text = mutant.to_canon();
        let parsed = FuzzScenario::parse(&text).unwrap();
        prop_assert_eq!(parsed.to_canon(), text);
        prop_assert_eq!(parsed.hash(), mutant.hash());
        prop_assert_eq!(&parsed, &mutant);
    }

    /// The generator itself round-trips too (the corpus admits fresh
    /// candidates, not just mutants).
    #[test]
    fn generate_serialize_parse_rehash_identity(seed: u64, iter in 0u64..512) {
        let sc = generate(seed, iter);
        let parsed = FuzzScenario::parse(&sc.to_canon()).unwrap();
        prop_assert_eq!(parsed.hash(), sc.hash());
    }
}
