//! Coverage features derived from the replay engine's probe and
//! diagnostic signals.
//!
//! Classic fuzzers count branch edges; this one counts *simulator
//! states worth keeping*: match-queue high-water marks, retransmit
//! totals, wait-time share, event-queue depth, DAG-engine fallback
//! reasons and the replay outcome itself. Each signal is folded into a
//! small bucket index (log2 for counters, deciles for shares, ordinals
//! for enums), and a feature is the pair `(signal, bucket)` packed into
//! a `u32`. A candidate earns a corpus slot only when it hits a feature
//! no earlier candidate hit — the same novelty rule AFL-style fuzzers
//! apply to edge counts.

use std::collections::BTreeSet;

/// Replay outcome classes — one coverage axis and the minimizer's
/// preservation target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum OutcomeKind {
    /// Replay finished and (where applicable) matched the DAG oracle.
    Ok,
    /// Retransmit budget exhausted ([`hpcsim_mpi::SimError::Stalled`]).
    Stalled,
    /// Destination cut off by link outages.
    Unreachable,
    /// Step-budget watchdog tripped.
    Livelock,
    /// Ranks blocked with the event queue drained.
    Deadlock,
    /// Members disagreed on a collective sequence slot.
    CollectiveMismatch,
    /// Replay and DAG evaluation disagreed (differential oracle).
    Divergence,
    /// The engine panicked — always a finding, never expected.
    Panic,
}

impl OutcomeKind {
    /// All kinds, in ordinal order.
    pub fn all() -> [OutcomeKind; 8] {
        [
            OutcomeKind::Ok,
            OutcomeKind::Stalled,
            OutcomeKind::Unreachable,
            OutcomeKind::Livelock,
            OutcomeKind::Deadlock,
            OutcomeKind::CollectiveMismatch,
            OutcomeKind::Divergence,
            OutcomeKind::Panic,
        ]
    }

    /// Stable label used in reports, manifests and regression files.
    pub fn label(&self) -> &'static str {
        match self {
            OutcomeKind::Ok => "ok",
            OutcomeKind::Stalled => "stalled",
            OutcomeKind::Unreachable => "unreachable",
            OutcomeKind::Livelock => "livelock",
            OutcomeKind::Deadlock => "deadlock",
            OutcomeKind::CollectiveMismatch => "collective-mismatch",
            OutcomeKind::Divergence => "divergence",
            OutcomeKind::Panic => "panic",
        }
    }

    /// Parse a label back (manifest round-trip).
    pub fn parse(s: &str) -> Option<OutcomeKind> {
        OutcomeKind::all().into_iter().find(|k| k.label() == s)
    }

    /// Ordinal for feature packing.
    pub fn ordinal(&self) -> u32 {
        OutcomeKind::all().iter().position(|k| k == self).unwrap() as u32
    }

    /// Whether this outcome is a *finding* (a bug-shaped result worth
    /// minimizing), as opposed to a diagnosed-by-design fault outcome.
    /// Stalled/Unreachable under an armed fault plan are the resilience
    /// model working as specified; everything else abnormal is a find.
    pub fn is_finding(&self, faults_armed: bool) -> bool {
        match self {
            OutcomeKind::Ok => false,
            OutcomeKind::Stalled | OutcomeKind::Unreachable => !faults_armed,
            OutcomeKind::Livelock
            | OutcomeKind::Deadlock
            | OutcomeKind::CollectiveMismatch
            | OutcomeKind::Divergence
            | OutcomeKind::Panic => true,
        }
    }
}

/// Raw signals harvested from one replay (gauges are running maxima).
#[derive(Debug, Clone, Copy, Default)]
pub struct Signals {
    /// Peak unexpected-arrival match-table depth.
    pub arrived_hw: u64,
    /// Peak posted-receive match-table depth.
    pub posted_hw: u64,
    /// Peak event-queue depth.
    pub eventq_hw: u64,
    /// Total lost transmission attempts.
    pub retransmits: u64,
    /// Dead torus links in the armed fault plan.
    pub link_outages: u64,
    /// Flow-counter release underflows (bookkeeping bug canary).
    pub flow_underflows: u64,
    /// Percent of rank-time spent in Wait/CollectiveWait (0..=100).
    pub wait_share_pct: u64,
    /// Makespan in microseconds (0 for failed replays).
    pub makespan_us: u64,
    /// DAG-engine applicability: 0 exact, 1 contention fallback,
    /// 2 fault fallback.
    pub dag_fallback: u8,
    /// World size.
    pub ranks: u64,
}

/// Signal indices for feature packing (kept dense and stable — these
/// values are part of the corpus-identity contract).
const SIG_ARRIVED: u32 = 0;
const SIG_POSTED: u32 = 1;
const SIG_EVENTQ: u32 = 2;
const SIG_RETRANS: u32 = 3;
const SIG_OUTAGES: u32 = 4;
const SIG_UNDERFLOW: u32 = 5;
const SIG_WAIT_SHARE: u32 = 6;
const SIG_MAKESPAN: u32 = 7;
const SIG_FALLBACK: u32 = 8;
const SIG_RANKS: u32 = 9;
const SIG_OUTCOME: u32 = 10;

/// log2 bucket: 0 → 0, otherwise 1 + floor(log2(v)).
fn log2_bucket(v: u64) -> u32 {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros()
    }
}

fn feature(signal: u32, bucket: u32) -> u32 {
    (signal << 8) | (bucket & 0xff)
}

/// Expand one replay's signals into its feature set.
pub fn features(sig: &Signals, outcome: OutcomeKind) -> Vec<u32> {
    vec![
        feature(SIG_ARRIVED, log2_bucket(sig.arrived_hw)),
        feature(SIG_POSTED, log2_bucket(sig.posted_hw)),
        feature(SIG_EVENTQ, log2_bucket(sig.eventq_hw)),
        feature(SIG_RETRANS, log2_bucket(sig.retransmits)),
        feature(SIG_OUTAGES, log2_bucket(sig.link_outages)),
        feature(SIG_UNDERFLOW, log2_bucket(sig.flow_underflows)),
        feature(SIG_WAIT_SHARE, (sig.wait_share_pct / 10).min(10) as u32),
        feature(SIG_MAKESPAN, log2_bucket(sig.makespan_us)),
        feature(SIG_FALLBACK, sig.dag_fallback as u32),
        feature(SIG_RANKS, sig.ranks as u32),
        feature(SIG_OUTCOME, outcome.ordinal()),
    ]
}

/// The global coverage map: the set of features any corpus entry hit.
#[derive(Debug, Default, Clone)]
pub struct CoverageMap {
    hit: BTreeSet<u32>,
}

impl CoverageMap {
    /// Fold a candidate's features in; returns how many were new.
    pub fn add_all(&mut self, feats: &[u32]) -> usize {
        feats.iter().filter(|f| self.hit.insert(**f)).count()
    }

    /// Whether any of `feats` is unseen (non-mutating novelty probe).
    pub fn any_new(&self, feats: &[u32]) -> bool {
        feats.iter().any(|f| !self.hit.contains(f))
    }

    /// Distinct features hit so far.
    pub fn len(&self) -> usize {
        self.hit.len()
    }

    /// True when nothing has been folded in yet.
    pub fn is_empty(&self) -> bool {
        self.hit.is_empty()
    }

    /// Deterministic one-line digest (sorted FNV over the feature set)
    /// for jobs-invariance checks in CI.
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325;
        for f in &self.hit {
            h ^= *f as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log2_buckets_are_monotone() {
        assert_eq!(log2_bucket(0), 0);
        assert_eq!(log2_bucket(1), 1);
        assert_eq!(log2_bucket(2), 2);
        assert_eq!(log2_bucket(3), 2);
        assert_eq!(log2_bucket(1024), 11);
    }

    #[test]
    fn outcome_labels_round_trip() {
        for k in OutcomeKind::all() {
            assert_eq!(OutcomeKind::parse(k.label()), Some(k));
        }
        assert_eq!(OutcomeKind::parse("nope"), None);
    }

    #[test]
    fn novelty_detection() {
        let mut map = CoverageMap::default();
        let sig = Signals { arrived_hw: 3, ranks: 4, ..Default::default() };
        let feats = features(&sig, OutcomeKind::Ok);
        assert!(map.any_new(&feats));
        assert_eq!(map.add_all(&feats), feats.len());
        assert!(!map.any_new(&feats));
        assert_eq!(map.add_all(&feats), 0);
        // A different outcome alone is one new feature.
        let feats2 = features(&sig, OutcomeKind::Deadlock);
        assert!(map.any_new(&feats2));
        assert_eq!(map.add_all(&feats2), 1);
    }

    #[test]
    fn fault_diagnoses_are_not_findings_under_armed_plans() {
        assert!(!OutcomeKind::Stalled.is_finding(true));
        assert!(OutcomeKind::Stalled.is_finding(false));
        assert!(OutcomeKind::Deadlock.is_finding(true));
        assert!(!OutcomeKind::Ok.is_finding(false));
    }
}
