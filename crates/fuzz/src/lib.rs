//! # hpcsim-fuzz
//!
//! Coverage-guided adversarial scenario fuzzing for the simulation
//! engines, with a deterministic corpus and auto-minimized regression
//! tests.
//!
//! The replay engine ([`hpcsim_mpi::TraceSim`]), the DAG sweep engine
//! ([`hpcsim_mpi::TraceDag`]) and the fault machinery are specified to
//! agree with each other and to *diagnose* pathological inputs rather
//! than wedge. This crate stress-tests that specification:
//!
//! * [`generate`] builds seeded, terminate-by-construction MPI
//!   programs; [`mutate`] breaks them in the ways real trace bugs do
//!   (reordering, tag/peer skew, collective imbalance,
//!   rendezvous-threshold straddling, fault escalation);
//! * [`run_scenario`] replays every candidate under the step-budget
//!   watchdog and cross-checks Dag-vs-Replay finish times bit-exactly
//!   as a differential oracle;
//! * a coverage map over probe/obs signals ([`coverage`]) decides
//!   which candidates earn a corpus slot, and a power-schedule
//!   scheduler ([`run_fuzz`]) decides which get mutated next;
//! * [`minimize`] shrinks every finding into a self-contained
//!   regression (see `tests/corpus/` at the workspace root).
//!
//! Everything is reproducible from `(seed, iteration)` alone; the
//! campaign is byte-identical across `--jobs` settings. See DESIGN §17
//! for the grammar, the coverage buckets and the determinism contract,
//! and README "Fuzzing the simulator" for the CLI quickstart.

pub mod coverage;
pub mod exec;
pub mod fuzzer;
pub mod generate;
pub mod minimize;
pub mod scenario;

pub use coverage::{features, CoverageMap, OutcomeKind, Signals};
pub use exec::{run_scenario, RunReport};
pub use fuzzer::{canary_scenario, run_fuzz, CorpusEntry, Finding, FuzzConfig, FuzzReport};
pub use generate::{generate, mutate};
pub use minimize::{minimize, MinimizeResult};
pub use scenario::{FuzzScenario, FUZZ_MAGIC, MAX_OPS_PER_RANK, MAX_RANKS};
