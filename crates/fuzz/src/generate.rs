//! Seeded scenario generation and structure-aware mutation.
//!
//! Both halves draw every decision from [`DetRng`] streams keyed by
//! `(seed, iteration)`, so a candidate is reproducible from those two
//! numbers alone — no global state, no wall clock, no thread identity.
//!
//! **Generation** builds phase-structured programs that terminate by
//! construction on a pristine machine: each phase posts every receive
//! and send before any wait in that phase blocks, and collectives are
//! recorded identically on all ranks. Induction over phases then gives
//! global progress (see DESIGN §17 for the argument).
//!
//! **Mutation** deliberately breaks that discipline. The operators
//! mirror the failure modes the replay engine diagnoses: op reordering
//! (deadlock), tag/peer perturbation (mismatched traffic), collective
//! insertion/removal on a strict subset of ranks (collective mismatch),
//! rendezvous-threshold-straddling resizes (protocol boundary), and
//! fault-plan escalation (stall/unreachable paths).

use crate::scenario::FuzzScenario;
use hpcsim_cache::FaultSpec;
use hpcsim_engine::{split_seed, DetRng, SimTime};
use hpcsim_faults::{FaultPlan, FaultProfile};
use hpcsim_machine::registry::{bluegene_p, xt4_qc};
use hpcsim_machine::{ExecMode, MachineSpec, Workload};
use hpcsim_mpi::{CommId, Op, Req};
use hpcsim_net::{CollectiveOp, DType};
use hpcsim_topo::Mapping;

/// Stream index for generation draws under the run seed.
const STREAM_GEN: u64 = 0xF0;
/// Stream index for mutation draws under the run seed.
const STREAM_MUT: u64 = 0xF1;

/// Generator world-size range (small worlds keep candidates fast while
/// still exercising trees, tori and multi-hop routes).
const MIN_RANKS: u64 = 2;
const MAX_GEN_RANKS: u64 = 8;

fn machine_pool() -> [MachineSpec; 4] {
    [
        bluegene_p(),
        bluegene_p().with_flat_contention(),
        xt4_qc(),
        xt4_qc().with_flat_contention(),
    ]
}

/// Message-size palette: small eager, the exact rendezvous threshold
/// and its one-byte neighbors, and two solidly-rendezvous sizes.
fn byte_palette(machine: &MachineSpec) -> [u64; 8] {
    let thr = machine.nic.eager_threshold;
    [8, 64, thr.saturating_sub(1), thr, thr + 1, 4 * thr, 65_536, 1]
}

fn pick_collective(rng: &mut DetRng, bytes: u64) -> CollectiveOp {
    match rng.next_below(6) {
        0 => CollectiveOp::Barrier,
        1 => CollectiveOp::Bcast { bytes },
        2 => CollectiveOp::Reduce { bytes, dtype: DType::F64 },
        3 => CollectiveOp::Allreduce { bytes, dtype: DType::F64 },
        4 => CollectiveOp::Allgather { bytes_per_rank: bytes },
        _ => CollectiveOp::Alltoall { bytes_per_pair: (bytes / 8).max(1) },
    }
}

/// Generate a fresh scenario from `(seed, iteration)`.
pub fn generate(seed: u64, iteration: u64) -> FuzzScenario {
    let mut rng = DetRng::new(split_seed(seed, STREAM_GEN), iteration);
    let ranks = (MIN_RANKS + rng.next_below(MAX_GEN_RANKS - MIN_RANKS + 1)) as usize;

    let machine = machine_pool()[rng.next_below(4) as usize].clone();
    let mode = [ExecMode::Smp, ExecMode::Dual, ExecMode::Vn][rng.next_below(3) as usize];
    let mappings = Mapping::predefined();
    let mapping = mappings[rng.next_below(mappings.len() as u64) as usize].1;

    // One message size per tag, fixed for the whole program, so send
    // and receive sizes agree wherever tags match.
    let palette = byte_palette(&machine);
    let tag_bytes: Vec<u64> =
        (0..4).map(|_| palette[rng.next_below(palette.len() as u64) as usize]).collect();

    let mut traces: Vec<Vec<Op>> = vec![Vec::new(); ranks];
    let mut next_req: Vec<u32> = vec![0; ranks];
    let phases = 1 + rng.next_below(5);
    for _ in 0..phases {
        match rng.next_below(4) {
            0 => phase_local(&mut rng, &mut traces),
            1 => phase_pairs(&mut rng, &mut traces, &mut next_req, &tag_bytes),
            2 => {
                let bytes = palette[rng.next_below(palette.len() as u64) as usize];
                let op = pick_collective(&mut rng, bytes);
                for trace in &mut traces {
                    trace.push(Op::Collective { comm: CommId::WORLD, op });
                }
            }
            _ => phase_ring(&mut rng, &mut traces, &mut next_req, &tag_bytes),
        }
    }

    // Most candidates replay fault-free (keeps the differential oracle
    // applicable); one in four arms a derived plan.
    let faults = if rng.next_below(4) == 0 {
        let profile = FaultProfile::all()[rng.next_below(4) as usize];
        Some(FaultSpec { seed: rng.next_u64(), profile })
    } else {
        None
    };

    FuzzScenario { machine, mode, mapping, faults, traces }
}

/// Compute / delay / mark phase: purely local work, no blocking.
fn phase_local(rng: &mut DetRng, traces: &mut [Vec<Op>]) {
    for trace in traces.iter_mut() {
        match rng.next_below(3) {
            0 => trace.push(Op::Compute {
                work: Workload::Custom {
                    flops: (1 + rng.next_below(1000)) as f64 * 1e4,
                    dram_bytes: 0.0,
                    simd_eff: 1.0,
                    serial_frac: 0.0,
                },
                threads: 1,
            }),
            1 => trace.push(Op::Delay { time: SimTime::from_us(rng.next_below(50)) }),
            _ => trace.push(Op::Mark { id: rng.next_below(16) as u32 }),
        }
    }
}

/// Random matched point-to-point pairs. Per phase, every rank posts all
/// its receives, then all its sends, then waits on everything — so no
/// wait can block before its counterpart is posted.
fn phase_pairs(rng: &mut DetRng, traces: &mut [Vec<Op>], next_req: &mut [u32], tag_bytes: &[u64]) {
    let ranks = traces.len();
    let pairs = 1 + rng.next_below(2 * ranks as u64);
    let mut recvs: Vec<Vec<Op>> = vec![Vec::new(); ranks];
    let mut sends: Vec<Vec<Op>> = vec![Vec::new(); ranks];
    let mut reqs: Vec<Vec<Req>> = vec![Vec::new(); ranks];
    for _ in 0..pairs {
        let src = rng.next_below(ranks as u64) as usize;
        let mut dst = rng.next_below(ranks as u64) as usize;
        if dst == src {
            dst = (dst + 1) % ranks;
        }
        let tag = rng.next_below(tag_bytes.len() as u64) as usize;
        let bytes = tag_bytes[tag];
        let rreq = Req(next_req[dst]);
        next_req[dst] += 1;
        recvs[dst].push(Op::Irecv { src, tag: tag as u32, bytes, req: rreq });
        reqs[dst].push(rreq);
        let sreq = Req(next_req[src]);
        next_req[src] += 1;
        sends[src].push(Op::Isend { dst, tag: tag as u32, bytes, req: sreq });
        reqs[src].push(sreq);
    }
    for r in 0..ranks {
        traces[r].append(&mut recvs[r]);
        traces[r].append(&mut sends[r]);
        for req in reqs[r].drain(..) {
            traces[r].push(Op::Wait { req });
        }
    }
}

/// Nearest-neighbor ring exchange, receive-posted-first.
fn phase_ring(rng: &mut DetRng, traces: &mut [Vec<Op>], next_req: &mut [u32], tag_bytes: &[u64]) {
    let ranks = traces.len();
    let tag = rng.next_below(tag_bytes.len() as u64) as usize;
    let bytes = tag_bytes[tag];
    for r in 0..ranks {
        let prev = (r + ranks - 1) % ranks;
        let next = (r + 1) % ranks;
        let rreq = Req(next_req[r]);
        let sreq = Req(next_req[r] + 1);
        next_req[r] += 2;
        traces[r].push(Op::Irecv { src: prev, tag: tag as u32, bytes, req: rreq });
        traces[r].push(Op::Isend { dst: next, tag: tag as u32, bytes, req: sreq });
        traces[r].push(Op::Wait { req: rreq });
        traces[r].push(Op::Wait { req: sreq });
    }
}

/// Apply `count` structure-aware mutations to `base`. Draws come from
/// the `(seed, iteration)` mutation stream, so a mutant is reproducible
/// without storing the mutation trail.
pub fn mutate(base: &FuzzScenario, seed: u64, iteration: u64, count: u32) -> FuzzScenario {
    let mut rng = DetRng::new(split_seed(seed, STREAM_MUT), iteration);
    let mut sc = base.clone();
    for _ in 0..count.max(1) {
        mutate_once(&mut rng, &mut sc);
    }
    sc
}

fn nonempty_rank(rng: &mut DetRng, sc: &FuzzScenario) -> Option<usize> {
    let candidates: Vec<usize> =
        (0..sc.ranks()).filter(|&r| !sc.traces[r].is_empty()).collect();
    if candidates.is_empty() {
        return None;
    }
    Some(candidates[rng.next_below(candidates.len() as u64) as usize])
}

fn mutate_once(rng: &mut DetRng, sc: &mut FuzzScenario) {
    let ranks = sc.ranks();
    match rng.next_below(9) {
        // Reorder: swap two ops within one rank (breaks the
        // receive-before-wait discipline → deadlock candidates).
        0 => {
            if let Some(r) = nonempty_rank(rng, sc) {
                let len = sc.traces[r].len() as u64;
                let a = rng.next_below(len) as usize;
                let b = rng.next_below(len) as usize;
                sc.traces[r].swap(a, b);
            }
        }
        // Tag perturbation on one message op.
        1 => {
            if let Some(r) = nonempty_rank(rng, sc) {
                let i = rng.next_below(sc.traces[r].len() as u64) as usize;
                match &mut sc.traces[r][i] {
                    Op::Isend { tag, .. } | Op::Irecv { tag, .. } => *tag = (*tag + 1) % 5,
                    _ => {}
                }
            }
        }
        // Peer perturbation (self-sends allowed: adversarial on purpose).
        2 => {
            if let Some(r) = nonempty_rank(rng, sc) {
                let i = rng.next_below(sc.traces[r].len() as u64) as usize;
                let peer = rng.next_below(ranks as u64) as usize;
                match &mut sc.traces[r][i] {
                    Op::Isend { dst, .. } => *dst = peer,
                    Op::Irecv { src, .. } => *src = peer,
                    _ => {}
                }
            }
        }
        // Rendezvous straddle: retarget every message with one tag to
        // threshold−1 / threshold / threshold+1 (pairs stay matched).
        3 => {
            let thr = sc.machine.nic.eager_threshold;
            let new = [thr.saturating_sub(1), thr, thr + 1][rng.next_below(3) as usize];
            let tag = rng.next_below(5) as u32;
            for trace in &mut sc.traces {
                for op in trace.iter_mut() {
                    match op {
                        Op::Isend { tag: t, bytes, .. } | Op::Irecv { tag: t, bytes, .. }
                            if *t == tag =>
                        {
                            *bytes = new;
                        }
                        _ => {}
                    }
                }
            }
        }
        // Collective insertion at an independent position per rank —
        // same op everywhere, but skewed placement relative to waits.
        4 => {
            let op = pick_collective(rng, 64);
            for trace in &mut sc.traces {
                let at = rng.next_below(trace.len() as u64 + 1) as usize;
                trace.insert(at, Op::Collective { comm: CommId::WORLD, op });
            }
        }
        // Collective removal on ONE rank: the k-th collective vanishes
        // from a single member → mismatch or deadlock.
        5 => {
            let r = rng.next_below(ranks as u64) as usize;
            let colls: Vec<usize> = sc.traces[r]
                .iter()
                .enumerate()
                .filter(|(_, op)| matches!(op, Op::Collective { .. }))
                .map(|(i, _)| i)
                .collect();
            if !colls.is_empty() {
                let k = colls[rng.next_below(colls.len() as u64) as usize];
                sc.traces[r].remove(k);
            }
        }
        // Delete one op.
        6 => {
            if let Some(r) = nonempty_rank(rng, sc) {
                let i = rng.next_below(sc.traces[r].len() as u64) as usize;
                sc.traces[r].remove(i);
            }
        }
        // Duplicate one op in place.
        7 => {
            if let Some(r) = nonempty_rank(rng, sc) {
                let i = rng.next_below(sc.traces[r].len() as u64) as usize;
                let op = sc.traces[r][i];
                sc.traces[r].insert(i, op);
            }
        }
        // Fault-plan mutation: arm, escalate, reseed or disarm.
        _ => {
            sc.faults = match sc.faults {
                None => Some(FaultSpec {
                    seed: rng.next_u64(),
                    profile: FaultProfile::all()[rng.next_below(4) as usize],
                }),
                Some(f) => {
                    if rng.next_below(4) == 0 {
                        None
                    } else {
                        let plan =
                            FaultPlan::new(f.seed, f.profile).mutated(rng.next_u64());
                        Some(FaultSpec { seed: plan.seed(), profile: plan.profile() })
                    }
                }
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = generate(42, 7);
        let b = generate(42, 7);
        assert_eq!(a, b);
        assert_eq!(a.to_canon(), b.to_canon());
    }

    #[test]
    fn different_iterations_differ() {
        // Not guaranteed per-pair in principle, but these seeds are
        // pinned — a collision here means the stream split regressed.
        assert_ne!(generate(42, 0).hash(), generate(42, 1).hash());
    }

    #[test]
    fn generated_worlds_are_bounded() {
        for it in 0..50 {
            let sc = generate(7, it);
            assert!((2..=8).contains(&sc.ranks()));
            assert!(sc.total_ops() > 0);
        }
    }

    #[test]
    fn mutation_is_deterministic_and_serializable() {
        let base = generate(42, 3);
        let a = mutate(&base, 42, 100, 4);
        let b = mutate(&base, 42, 100, 4);
        assert_eq!(a, b);
        let back = FuzzScenario::parse(&a.to_canon()).unwrap();
        assert_eq!(back.hash(), a.hash());
    }

    #[test]
    fn straddle_mutation_keeps_pairs_matched() {
        // Hunt for a mutant whose message sizes changed; sizes must
        // still be uniform per tag on both sides of every pair.
        let base = generate(42, 5);
        for it in 0..64 {
            let m = mutate(&base, 9, it, 1);
            let mut by_tag: std::collections::BTreeMap<u32, u64> = Default::default();
            let mut consistent = true;
            for trace in &m.traces {
                for op in trace {
                    if let Op::Isend { tag, bytes, .. } | Op::Irecv { tag, bytes, .. } = op {
                        consistent &= *by_tag.entry(*tag).or_insert(*bytes) == *bytes;
                    }
                }
            }
            // Straddle (kind 3) preserves per-tag uniformity; other
            // kinds may break it — we only require *some* mutant did a
            // straddle and stayed consistent.
            if m != base && consistent {
                return;
            }
        }
        panic!("no consistent mutant found in 64 tries");
    }
}
