//! The fuzzer's unit of work: a self-contained scenario with a
//! canonical, hashable text form.
//!
//! A [`FuzzScenario`] is everything one fuzz candidate needs to replay:
//! explicit per-rank op traces (not a program closure — mutants have no
//! source), a machine, an execution mode, a torus mapping, and an
//! optional fault plan. The canonical serialization reuses the
//! machine-canon block from `hpcsim-cache` and extends it with an op
//! grammar, so corpus entries and minimized regressions are plain text
//! files that round-trip bit-exactly:
//!
//! ```text
//! hpcsim-fuzz-scenario/1
//! ranks 4 mode vn mapping TXYZ
//! <6 machine canon lines>
//! faults none                  | faults <seed> <profile>
//! trace 0 3
//! c 0x4059000000000000 0x0 0x3ff0000000000000 0x0 1
//! s 1 0 1024 0
//! w 0
//! trace 1 …
//! ```
//!
//! Floats are serialized as IEEE-754 bit patterns (`0x{:016x}`) and
//! times as raw picosecond counts, so `mutate → serialize → parse →
//! rehash` is the identity — the determinism contract every corpus
//! artifact and checked-in regression relies on.

use hpcsim_cache::{fnv1a_128, machine_from_canon, machine_to_canon, FaultSpec, SpecHash,
                   SpecParseError};
use hpcsim_engine::SimTime;
use hpcsim_faults::{FaultPlan, FaultProfile};
use hpcsim_machine::{ExecMode, MachineSpec, Workload};
use hpcsim_mpi::{CommId, Op, RankLayout, Req, SimConfig};
use hpcsim_net::{CollectiveOp, DType};
use hpcsim_topo::{Mapping, Placement};
use std::fmt::Write as _;

/// Magic first line of the canonical serialization.
pub const FUZZ_MAGIC: &str = "hpcsim-fuzz-scenario/1";

/// One fuzz candidate: traces × machine × mode × mapping × faults.
///
/// Equality is *canonical*: two scenarios are equal iff their
/// [`FuzzScenario::to_canon`] texts match. (Display-only fields like
/// the core's marketing name are not part of a scenario's identity —
/// the machine canon drops them, and round-tripping must be `==`.)
#[derive(Debug, Clone)]
pub struct FuzzScenario {
    /// The machine model to replay against.
    pub machine: MachineSpec,
    /// Execution mode (tasks per node).
    pub mode: ExecMode,
    /// Torus mapping (BlueGene layouts; ignored on XT machines).
    pub mapping: Mapping,
    /// Optional fault plan identity.
    pub faults: Option<FaultSpec>,
    /// Per-rank op traces; `traces.len()` is the world size.
    pub traces: Vec<Vec<Op>>,
}

impl FuzzScenario {
    /// World size.
    pub fn ranks(&self) -> usize {
        self.traces.len()
    }

    /// Total op count across all ranks (the minimizer's metric).
    pub fn total_ops(&self) -> usize {
        self.traces.iter().map(|t| t.len()).sum()
    }

    /// The fault plan this scenario arms, if any.
    pub fn fault_plan(&self) -> Option<FaultPlan> {
        self.faults.map(|f| FaultPlan::new(f.seed, f.profile))
    }

    /// The replay configuration: BlueGene machines honor the mapping,
    /// XT machines use their compact default placement (the mapping
    /// field is carried but inert there).
    pub fn sim_config(&self) -> SimConfig {
        let ranks = self.ranks();
        let layout = if self.machine.id.is_bluegene() {
            RankLayout::bluegene(&self.machine, ranks, self.mode, self.mapping)
        } else {
            RankLayout::xt(&self.machine, ranks, self.mode, Placement::Compact)
        };
        SimConfig { machine: self.machine.clone(), mode: self.mode, threads: 1, layout }
    }

    /// 128-bit content hash of the canonical text.
    pub fn hash(&self) -> SpecHash {
        fnv1a_128(self.to_canon().as_bytes())
    }

    /// Canonical text form (see module docs for the grammar).
    pub fn to_canon(&self) -> String {
        let mut out = String::with_capacity(256 + 24 * self.total_ops());
        out.push_str(FUZZ_MAGIC);
        out.push('\n');
        let _ = writeln!(
            out,
            "ranks {} mode {} mapping {}",
            self.ranks(),
            mode_label(self.mode),
            self.mapping.name()
        );
        out.push_str(&machine_to_canon(&self.machine));
        match self.faults {
            None => out.push_str("faults none\n"),
            Some(f) => {
                let _ = writeln!(out, "faults {} {}", f.seed, f.profile.label());
            }
        }
        for (r, trace) in self.traces.iter().enumerate() {
            let _ = writeln!(out, "trace {r} {}", trace.len());
            for op in trace {
                write_op(&mut out, op);
            }
        }
        out
    }

    /// Parse the canonical text form. Inverse of [`FuzzScenario::to_canon`]:
    /// `parse(s.to_canon()) == s` and re-serialization is byte-identical.
    pub fn parse(text: &str) -> Result<FuzzScenario, SpecParseError> {
        let mut cur = Cursor { iter: text.lines(), line: 0 };
        let magic = cur.next_line("magic")?;
        if magic != FUZZ_MAGIC {
            return Err(cur.err(format!("bad magic {magic:?}, want {FUZZ_MAGIC:?}")));
        }

        let header = cur.next_line("ranks header")?;
        let mut tok = header.split_whitespace();
        expect(&mut tok, "ranks", &cur)?;
        let ranks: usize = parse_num(tok.next(), "rank count", &cur)?;
        if ranks == 0 || ranks > MAX_RANKS {
            return Err(cur.err(format!("rank count {ranks} outside 1..={MAX_RANKS}")));
        }
        expect(&mut tok, "mode", &cur)?;
        let mode = match tok.next() {
            Some("smp") => ExecMode::Smp,
            Some("dual") => ExecMode::Dual,
            Some("vn") => ExecMode::Vn,
            other => return Err(cur.err(format!("bad mode {other:?}"))),
        };
        expect(&mut tok, "mapping", &cur)?;
        let mapping = tok
            .next()
            .and_then(Mapping::parse)
            .ok_or_else(|| cur.err("bad mapping".into()))?;

        // The machine canon block is exactly 6 lines (machine, core,
        // mem, nic, pack, power — pinned by hpcsim-cache's grammar).
        let mut machine_text = String::new();
        for _ in 0..6 {
            machine_text.push_str(cur.next_line("machine canon")?);
            machine_text.push('\n');
        }
        let machine = machine_from_canon(&machine_text).map_err(|e| SpecParseError {
            line: cur.line - 6 + e.line,
            message: e.message,
        })?;

        let fline = cur.next_line("faults")?;
        let mut tok = fline.split_whitespace();
        expect(&mut tok, "faults", &cur)?;
        let faults = match tok.next() {
            Some("none") => None,
            Some(seed) => {
                let seed: u64 = seed
                    .parse()
                    .map_err(|_| cur.err(format!("bad fault seed {seed:?}")))?;
                let profile = tok
                    .next()
                    .and_then(FaultProfile::parse)
                    .ok_or_else(|| cur.err("bad fault profile".into()))?;
                Some(FaultSpec { seed, profile })
            }
            None => return Err(cur.err("missing fault spec".into())),
        };

        let mut traces = Vec::with_capacity(ranks);
        for r in 0..ranks {
            let tline = cur.next_line("trace header")?;
            let mut tok = tline.split_whitespace();
            expect(&mut tok, "trace", &cur)?;
            let rr: usize = parse_num(tok.next(), "trace rank", &cur)?;
            if rr != r {
                return Err(cur.err(format!("trace rank {rr}, expected {r}")));
            }
            let nops: usize = parse_num(tok.next(), "trace op count", &cur)?;
            if nops > MAX_OPS_PER_RANK {
                return Err(cur.err(format!("op count {nops} exceeds {MAX_OPS_PER_RANK}")));
            }
            let mut trace = Vec::with_capacity(nops);
            for _ in 0..nops {
                let oline = cur.next_line("op")?;
                trace.push(parse_op(oline, ranks, &cur)?);
            }
            traces.push(trace);
        }
        if let Some(extra) = cur.iter.next() {
            if !extra.trim().is_empty() {
                return Err(SpecParseError {
                    line: cur.line + 1,
                    message: format!("trailing content {extra:?}"),
                });
            }
        }
        Ok(FuzzScenario { machine, mode, mapping, faults, traces })
    }
}

impl PartialEq for FuzzScenario {
    fn eq(&self, other: &Self) -> bool {
        self.to_canon() == other.to_canon()
    }
}

impl Eq for FuzzScenario {}

/// Upper bound on world size (generator stays well below; the parser
/// rejects hand-edited monsters before they allocate).
pub const MAX_RANKS: usize = 512;
/// Upper bound on per-rank trace length accepted by the parser.
pub const MAX_OPS_PER_RANK: usize = 1 << 16;

/// Stable lowercase mode label (matches `hpcsim-cache`'s spelling).
pub fn mode_label(mode: ExecMode) -> &'static str {
    match mode {
        ExecMode::Smp => "smp",
        ExecMode::Dual => "dual",
        ExecMode::Vn => "vn",
    }
}

fn bits(v: f64) -> String {
    format!("0x{:016x}", v.to_bits())
}

fn dtype_label(d: DType) -> &'static str {
    match d {
        DType::F32 => "f32",
        DType::F64 => "f64",
        DType::Int => "int",
    }
}

fn write_op(out: &mut String, op: &Op) {
    match *op {
        Op::Compute { work, threads } => {
            // The fuzz grammar carries exactly one workload shape —
            // fully explicit costs — so the line format stays closed
            // under mutation. Generator and mutator only emit Custom.
            let Workload::Custom { flops, dram_bytes, simd_eff, serial_frac } = work else {
                panic!("fuzz scenarios carry Workload::Custom only, got {work:?}");
            };
            let _ = writeln!(
                out,
                "c {} {} {} {} {threads}",
                bits(flops),
                bits(dram_bytes),
                bits(simd_eff),
                bits(serial_frac)
            );
        }
        Op::Delay { time } => {
            let _ = writeln!(out, "d {}", time.0);
        }
        Op::Isend { dst, tag, bytes, req } => {
            let _ = writeln!(out, "s {dst} {tag} {bytes} {}", req.0);
        }
        Op::Irecv { src, tag, bytes, req } => {
            let _ = writeln!(out, "r {src} {tag} {bytes} {}", req.0);
        }
        Op::Wait { req } => {
            let _ = writeln!(out, "w {}", req.0);
        }
        Op::Mark { id } => {
            let _ = writeln!(out, "m {id}");
        }
        Op::Collective { comm, op } => {
            assert_eq!(comm, CommId::WORLD, "fuzz scenarios use WORLD collectives only");
            match op {
                CollectiveOp::Barrier => out.push_str("k bar\n"),
                CollectiveOp::Bcast { bytes } => {
                    let _ = writeln!(out, "k bc {bytes}");
                }
                CollectiveOp::Reduce { bytes, dtype } => {
                    let _ = writeln!(out, "k rd {bytes} {}", dtype_label(dtype));
                }
                CollectiveOp::Allreduce { bytes, dtype } => {
                    let _ = writeln!(out, "k ar {bytes} {}", dtype_label(dtype));
                }
                CollectiveOp::Allgather { bytes_per_rank } => {
                    let _ = writeln!(out, "k ag {bytes_per_rank}");
                }
                CollectiveOp::Alltoall { bytes_per_pair } => {
                    let _ = writeln!(out, "k aa {bytes_per_pair}");
                }
            }
        }
    }
}

struct Cursor<'a> {
    iter: std::str::Lines<'a>,
    line: usize,
}

impl<'a> Cursor<'a> {
    fn next_line(&mut self, what: &str) -> Result<&'a str, SpecParseError> {
        self.line += 1;
        self.iter
            .next()
            .ok_or_else(|| SpecParseError { line: self.line, message: format!("missing {what}") })
    }

    fn err(&self, message: String) -> SpecParseError {
        SpecParseError { line: self.line, message }
    }
}

fn expect(
    tok: &mut std::str::SplitWhitespace<'_>,
    want: &str,
    cur: &Cursor<'_>,
) -> Result<(), SpecParseError> {
    match tok.next() {
        Some(t) if t == want => Ok(()),
        other => Err(cur.err(format!("expected {want:?}, got {other:?}"))),
    }
}

fn parse_num<T: std::str::FromStr>(
    tok: Option<&str>,
    what: &str,
    cur: &Cursor<'_>,
) -> Result<T, SpecParseError> {
    tok.and_then(|t| t.parse().ok()).ok_or_else(|| cur.err(format!("bad {what}")))
}

fn parse_bits(tok: Option<&str>, what: &str, cur: &Cursor<'_>) -> Result<f64, SpecParseError> {
    let t = tok.ok_or_else(|| cur.err(format!("missing {what}")))?;
    let hex = t
        .strip_prefix("0x")
        .ok_or_else(|| cur.err(format!("bad {what} {t:?}")))?;
    let raw = u64::from_str_radix(hex, 16).map_err(|_| cur.err(format!("bad {what} {t:?}")))?;
    Ok(f64::from_bits(raw))
}

fn parse_dtype(tok: Option<&str>, cur: &Cursor<'_>) -> Result<DType, SpecParseError> {
    match tok {
        Some("f32") => Ok(DType::F32),
        Some("f64") => Ok(DType::F64),
        Some("int") => Ok(DType::Int),
        other => Err(cur.err(format!("bad dtype {other:?}"))),
    }
}

fn parse_op(line: &str, ranks: usize, cur: &Cursor<'_>) -> Result<Op, SpecParseError> {
    let mut tok = line.split_whitespace();
    let kind = tok.next().ok_or_else(|| cur.err("empty op line".into()))?;
    let op = match kind {
        "c" => {
            let flops = parse_bits(tok.next(), "flops", cur)?;
            let dram_bytes = parse_bits(tok.next(), "dram_bytes", cur)?;
            let simd_eff = parse_bits(tok.next(), "simd_eff", cur)?;
            let serial_frac = parse_bits(tok.next(), "serial_frac", cur)?;
            let threads: u32 = parse_num(tok.next(), "threads", cur)?;
            Op::Compute {
                work: Workload::Custom { flops, dram_bytes, simd_eff, serial_frac },
                threads,
            }
        }
        "d" => Op::Delay { time: SimTime(parse_num(tok.next(), "delay", cur)?) },
        "s" | "r" => {
            let peer: usize = parse_num(tok.next(), "peer", cur)?;
            if peer >= ranks {
                return Err(cur.err(format!("peer {peer} outside world of {ranks}")));
            }
            let tag: u32 = parse_num(tok.next(), "tag", cur)?;
            let bytes: u64 = parse_num(tok.next(), "bytes", cur)?;
            let req = Req(parse_num(tok.next(), "req", cur)?);
            if kind == "s" {
                Op::Isend { dst: peer, tag, bytes, req }
            } else {
                Op::Irecv { src: peer, tag, bytes, req }
            }
        }
        "w" => Op::Wait { req: Req(parse_num(tok.next(), "req", cur)?) },
        "m" => Op::Mark { id: parse_num(tok.next(), "mark id", cur)? },
        "k" => {
            let op = match tok.next() {
                Some("bar") => CollectiveOp::Barrier,
                Some("bc") => CollectiveOp::Bcast { bytes: parse_num(tok.next(), "bytes", cur)? },
                Some("rd") => CollectiveOp::Reduce {
                    bytes: parse_num(tok.next(), "bytes", cur)?,
                    dtype: parse_dtype(tok.next(), cur)?,
                },
                Some("ar") => CollectiveOp::Allreduce {
                    bytes: parse_num(tok.next(), "bytes", cur)?,
                    dtype: parse_dtype(tok.next(), cur)?,
                },
                Some("ag") => CollectiveOp::Allgather {
                    bytes_per_rank: parse_num(tok.next(), "bytes", cur)?,
                },
                Some("aa") => CollectiveOp::Alltoall {
                    bytes_per_pair: parse_num(tok.next(), "bytes", cur)?,
                },
                other => return Err(cur.err(format!("bad collective {other:?}"))),
            };
            Op::Collective { comm: CommId::WORLD, op }
        }
        other => return Err(cur.err(format!("bad op kind {other:?}"))),
    };
    if tok.next().is_some() {
        return Err(cur.err(format!("trailing tokens on op line {line:?}")));
    }
    Ok(op)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcsim_machine::registry::bluegene_p;

    fn sample() -> FuzzScenario {
        FuzzScenario {
            machine: bluegene_p(),
            mode: ExecMode::Vn,
            mapping: Mapping::txyz(),
            faults: Some(FaultSpec { seed: 7, profile: FaultProfile::Mixed }),
            traces: vec![
                vec![
                    Op::Compute {
                        work: Workload::Custom {
                            flops: 1e6,
                            dram_bytes: 0.0,
                            simd_eff: 1.0,
                            serial_frac: 0.0,
                        },
                        threads: 1,
                    },
                    Op::Isend { dst: 1, tag: 3, bytes: 1024, req: Req(0) },
                    Op::Wait { req: Req(0) },
                    Op::Collective { comm: CommId::WORLD, op: CollectiveOp::Barrier },
                ],
                vec![
                    Op::Irecv { src: 0, tag: 3, bytes: 1024, req: Req(0) },
                    Op::Wait { req: Req(0) },
                    Op::Delay { time: SimTime::from_us(5) },
                    Op::Collective {
                        comm: CommId::WORLD,
                        op: CollectiveOp::Allreduce { bytes: 64, dtype: DType::F64 },
                    },
                    Op::Mark { id: 9 },
                ],
            ],
        }
    }

    #[test]
    fn canon_round_trips_bit_exactly() {
        let sc = sample();
        let text = sc.to_canon();
        let back = FuzzScenario::parse(&text).unwrap();
        assert_eq!(back, sc);
        assert_eq!(back.to_canon(), text);
        assert_eq!(back.hash(), sc.hash());
    }

    #[test]
    fn faultless_scenario_round_trips() {
        let mut sc = sample();
        sc.faults = None;
        let back = FuzzScenario::parse(&sc.to_canon()).unwrap();
        assert_eq!(back, sc);
        assert!(back.fault_plan().is_none());
    }

    #[test]
    fn parse_rejects_bad_magic_and_ranks() {
        assert!(FuzzScenario::parse("nope\n").is_err());
        let text = sample().to_canon().replace("ranks 2", "ranks 9999");
        assert!(FuzzScenario::parse(&text).is_err());
    }

    #[test]
    fn parse_rejects_out_of_world_peer() {
        let text = sample().to_canon().replace("s 1 3 1024 0", "s 5 3 1024 0");
        let err = FuzzScenario::parse(&text).unwrap_err();
        assert!(err.message.contains("outside world"), "{err}");
    }

    #[test]
    fn parse_line_numbers_point_at_the_culprit() {
        let text = sample().to_canon().replace("w 0\nk bar", "w 0\nk nonsense");
        let err = FuzzScenario::parse(&text).unwrap_err();
        assert!(err.message.contains("bad collective"), "{err}");
        // magic + header + 6 machine + faults + trace-hdr put the
        // first op at line 11; the bad collective is op 4 → line 14
        assert_eq!(err.line, 14);
    }

    #[test]
    fn sim_config_matches_world_size() {
        let sc = sample();
        assert_eq!(sc.sim_config().ranks(), 2);
    }
}
