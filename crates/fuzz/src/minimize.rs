//! Greedy delta-debugging minimizer.
//!
//! Given a finding, shrink the scenario while preserving its outcome
//! *class* (not the exact detail string — a deadlock that moves to
//! another rank is still the same bug shape). The reduction passes run
//! to a fixpoint under a trial budget:
//!
//! 1. **Rank wipe** — try emptying each rank's whole trace;
//! 2. **Simplify** — try dropping the fault plan and resetting the
//!    mapping to the family default (fewer moving parts in the
//!    regression file);
//! 3. **ddmin chunks** — per rank, remove op chunks at halving
//!    granularity down to single ops.
//!
//! Every trial is a full bounded replay through the same executor the
//! campaign uses, so a minimized scenario reproduces by construction.

use crate::coverage::OutcomeKind;
use crate::exec::run_scenario;
use crate::scenario::FuzzScenario;
use hpcsim_topo::Mapping;

/// Outcome of a minimization run.
#[derive(Debug, Clone)]
pub struct MinimizeResult {
    /// The smallest scenario found that still reproduces the outcome.
    pub scenario: FuzzScenario,
    /// Replay trials spent.
    pub trials: u64,
    /// Whether a reduction fixpoint was reached within budget.
    pub converged: bool,
}

struct Shrinker {
    expected: OutcomeKind,
    trials: u64,
    budget: u64,
}

impl Shrinker {
    /// Run a candidate; returns `Some(true)` if it still reproduces,
    /// `None` when the budget is exhausted.
    fn check(&mut self, cand: &FuzzScenario) -> Option<bool> {
        if self.trials >= self.budget {
            return None;
        }
        self.trials += 1;
        Some(run_scenario(cand).outcome == self.expected)
    }
}

/// Minimize `sc` while preserving `expected`, spending at most
/// `max_trials` replays.
pub fn minimize(sc: &FuzzScenario, expected: OutcomeKind, max_trials: u64) -> MinimizeResult {
    let mut best = sc.clone();
    let mut sh = Shrinker { expected, trials: 0, budget: max_trials };
    let mut converged = true;
    loop {
        let before = best.total_ops();
        let mut out_of_budget = false;

        // Pass 1: wipe whole ranks.
        for r in 0..best.ranks() {
            if best.traces[r].is_empty() {
                continue;
            }
            let mut cand = best.clone();
            cand.traces[r].clear();
            match sh.check(&cand) {
                Some(true) => best = cand,
                Some(false) => {}
                None => {
                    out_of_budget = true;
                    break;
                }
            }
        }

        // Pass 2: simplify the environment.
        if !out_of_budget {
            if best.faults.is_some() {
                let mut cand = best.clone();
                cand.faults = None;
                match sh.check(&cand) {
                    Some(true) => best = cand,
                    Some(false) => {}
                    None => out_of_budget = true,
                }
            }
            if !out_of_budget && best.mapping != Mapping::txyz() {
                let mut cand = best.clone();
                cand.mapping = Mapping::txyz();
                match sh.check(&cand) {
                    Some(true) => best = cand,
                    Some(false) => {}
                    None => out_of_budget = true,
                }
            }
        }

        // Pass 3: ddmin chunk removal per rank.
        'ranks: for r in 0..best.ranks() {
            if out_of_budget {
                break;
            }
            let mut chunk = best.traces[r].len().div_ceil(2).max(1);
            loop {
                let mut start = 0;
                while start < best.traces[r].len() {
                    let end = (start + chunk).min(best.traces[r].len());
                    let mut cand = best.clone();
                    cand.traces[r].drain(start..end);
                    match sh.check(&cand) {
                        Some(true) => best = cand, // retry same window
                        Some(false) => start = end,
                        None => {
                            out_of_budget = true;
                            break 'ranks;
                        }
                    }
                }
                if chunk == 1 {
                    break;
                }
                chunk = (chunk / 2).max(1);
            }
        }

        if out_of_budget {
            converged = false;
            break;
        }
        if best.total_ops() == before {
            break; // fixpoint
        }
    }
    MinimizeResult { scenario: best, trials: sh.trials, converged }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{generate, mutate};
    use hpcsim_machine::registry::bluegene_p;
    use hpcsim_machine::ExecMode;
    use hpcsim_mpi::{CommId, Op, Req};
    use hpcsim_net::CollectiveOp;

    #[test]
    fn deadlock_with_padding_minimizes_small() {
        // A missing barrier member buried in unrelated generated
        // traffic: the minimizer should strip the padding and keep
        // only the skewed collective.
        let mut sc = generate(21, 0);
        sc.faults = None;
        for trace in &mut sc.traces {
            trace.retain(|op| !matches!(op, Op::Collective { .. }));
        }
        let last = sc.traces.len() - 1;
        for trace in &mut sc.traces[..last] {
            trace.push(Op::Collective { comm: CommId::WORLD, op: CollectiveOp::Barrier });
        }
        assert!(sc.total_ops() > 8, "padding too small to be interesting");
        assert_eq!(crate::exec::run_scenario(&sc).outcome, OutcomeKind::Deadlock);
        let min = minimize(&sc, OutcomeKind::Deadlock, 2_000);
        assert!(min.converged);
        assert!(min.scenario.total_ops() <= 8, "got {} ops", min.scenario.total_ops());
        assert_eq!(run_scenario(&min.scenario).outcome, OutcomeKind::Deadlock);
    }

    #[test]
    fn minimization_is_deterministic() {
        let base = mutate(&generate(42, 1), 42, 17, 3);
        let rep = run_scenario(&base);
        if rep.outcome == OutcomeKind::Ok {
            return; // this pinned mutant happens to be healthy — fine
        }
        let a = minimize(&base, rep.outcome, 500);
        let b = minimize(&base, rep.outcome, 500);
        assert_eq!(a.scenario, b.scenario);
        assert_eq!(a.trials, b.trials);
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        let sc = FuzzScenario {
            machine: bluegene_p().with_flat_contention(),
            mode: ExecMode::Vn,
            mapping: hpcsim_topo::Mapping::txyz(),
            faults: None,
            traces: vec![
                vec![
                    Op::Irecv { src: 1, tag: 0, bytes: 8, req: Req(0) },
                    Op::Wait { req: Req(0) },
                ],
                vec![],
            ],
        };
        let min = minimize(&sc, OutcomeKind::Deadlock, 1);
        assert!(!min.converged);
        assert_eq!(min.trials, 1);
    }
}
