//! The fuzz campaign: candidate scheduling, coverage-guided corpus
//! growth, finding collection and auto-minimization.
//!
//! ## Determinism contract
//!
//! The whole campaign is a pure function of `(seed, iters)`:
//!
//! * candidates are derived from `(seed, iteration)` alone — fresh ones
//!   via [`generate`], mutants via [`mutate`] on a parent chosen by a
//!   scheduler whose state evolves in iteration order;
//! * candidates are *evaluated* in parallel ([`try_parmap`], honoring
//!   `--jobs`) but *folded* strictly in iteration order, so the corpus,
//!   the coverage map and the findings list never depend on worker
//!   interleaving;
//! * batches are a fixed size, and the scheduler only advances when a
//!   batch is built — never mid-evaluation.
//!
//! `repro --fuzz --fuzz-seed S --fuzz-iters N` therefore produces
//! byte-identical reports under `--jobs 1` and `--jobs 4`; CI diffs
//! exactly that.
//!
//! ## Corpus scheduling
//!
//! LibAFLstar-style minimal power schedule: pick the least-recently
//! exploited entry (pick count, then insertion order), give it energy
//! proportional to how much *new* coverage it contributed when it was
//! admitted, and decay that energy each time it is re-picked.

use crate::coverage::{CoverageMap, OutcomeKind};
use crate::exec::{run_scenario, RunReport};
use crate::generate::{generate, mutate};
use crate::minimize::minimize;
use crate::scenario::FuzzScenario;
use hpcsim_cache::SpecHash;
use hpcsim_core::try_parmap;
use hpcsim_engine::{split_seed, DetRng, SimTime};
use hpcsim_machine::registry::bluegene_p;
use hpcsim_machine::{ExecMode, Workload};
use hpcsim_mpi::{CommId, Op};
use hpcsim_net::CollectiveOp;
use hpcsim_obs as obs;
use hpcsim_topo::Mapping;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::LazyLock;

struct FuzzObs {
    iterations: &'static obs::Counter,
    corpus_entries: &'static obs::Counter,
    coverage_features: &'static obs::Counter,
    findings: &'static obs::Counter,
    minimize_trials: &'static obs::Counter,
}

static FUZZ_OBS: LazyLock<FuzzObs> = LazyLock::new(|| FuzzObs {
    iterations: obs::counter(
        "hpcsim_fuzz_iterations_total",
        "Fuzz candidates executed",
        obs::Class::Deterministic,
    ),
    corpus_entries: obs::counter(
        "hpcsim_fuzz_corpus_entries_total",
        "Candidates admitted to the fuzz corpus",
        obs::Class::Deterministic,
    ),
    coverage_features: obs::counter(
        "hpcsim_fuzz_coverage_features_total",
        "Distinct coverage features discovered",
        obs::Class::Deterministic,
    ),
    findings: obs::counter(
        "hpcsim_fuzz_findings_total",
        "Distinct finding classes recorded",
        obs::Class::Deterministic,
    ),
    minimize_trials: obs::counter(
        "hpcsim_fuzz_minimize_trials_total",
        "Replay trials spent minimizing findings",
        obs::Class::Deterministic,
    ),
});

/// Campaign parameters.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Root seed; the whole campaign is a function of `(seed, iters)`.
    pub seed: u64,
    /// Candidate budget.
    pub iters: u64,
    /// Whether to inject the planted canary (CI keeps this on; unit
    /// tests that pin corpus content may turn it off).
    pub plant_canary: bool,
    /// Replay-trial budget per finding minimization.
    pub minimize_budget: u64,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig { seed: 42, iters: 256, plant_canary: true, minimize_budget: 2_000 }
    }
}

impl FuzzConfig {
    /// The iteration at which the canary is injected.
    pub fn canary_iteration(&self) -> u64 {
        (self.iters / 2).min(100)
    }
}

/// Candidates evaluated per scheduling round. Fixed: part of the
/// determinism contract (the scheduler state is frozen per batch).
const BATCH: u64 = 16;

/// One admitted corpus entry.
#[derive(Debug, Clone)]
pub struct CorpusEntry {
    /// The scenario.
    pub scenario: FuzzScenario,
    /// Content hash of the canonical text.
    pub hash: SpecHash,
    /// Iteration that produced it.
    pub iteration: u64,
    /// How many new coverage features it contributed on admission.
    pub new_features: usize,
    /// Outcome class it exhibited.
    pub outcome: OutcomeKind,
    /// Times the scheduler has exploited it.
    picked: u32,
}

impl CorpusEntry {
    fn energy(&self) -> u32 {
        let base = (1 + self.new_features as u32).min(8);
        (base >> self.picked.min(3)).max(1)
    }
}

/// One recorded finding (auto-minimized).
#[derive(Debug, Clone)]
pub struct Finding {
    /// Outcome class.
    pub kind: OutcomeKind,
    /// Iteration that first hit it.
    pub iteration: u64,
    /// Diagnostic detail from the *original* reproducer.
    pub detail: String,
    /// The minimized scenario.
    pub scenario: FuzzScenario,
    /// Op count before minimization.
    pub original_ops: usize,
    /// Replay trials the minimizer spent.
    pub minimize_trials: u64,
    /// Whether minimization reached a fixpoint within budget.
    pub minimized: bool,
    /// Whether this is the planted canary.
    pub canary: bool,
}

/// Campaign result.
#[derive(Debug, Clone)]
pub struct FuzzReport {
    /// The config that produced this report.
    pub config: FuzzConfig,
    /// Candidates executed (== config.iters).
    pub executed: u64,
    /// The corpus, in admission order.
    pub corpus: Vec<CorpusEntry>,
    /// The coverage map.
    pub coverage: CoverageMap,
    /// Minimized findings, one per (kind, canary) class, in ordinal
    /// order.
    pub findings: Vec<Finding>,
}

impl FuzzReport {
    /// The canary finding, if the campaign planted and caught one.
    pub fn canary(&self) -> Option<&Finding> {
        self.findings.iter().find(|f| f.canary)
    }

    /// Whether the campaign is clean for CI purposes: every finding
    /// minimized to a fixpoint, and the canary (when planted) was
    /// caught and shrunk to ≤ 8 ops.
    pub fn ok(&self) -> bool {
        let minimized = self.findings.iter().all(|f| f.minimized);
        let canary_ok = !self.config.plant_canary
            || self.canary().is_some_and(|f| f.scenario.total_ops() <= 8);
        minimized && canary_ok
    }

    /// Deterministic plain-text summary (one datum per line; no
    /// timing, no paths — CI byte-diffs this across `--jobs`).
    pub fn summary(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "fuzz seed {} iters {}", self.config.seed, self.config.iters);
        let _ = writeln!(
            out,
            "fuzz executed {} corpus {} features {} digest {:016x}",
            self.executed,
            self.corpus.len(),
            self.coverage.len(),
            self.coverage.digest()
        );
        for f in &self.findings {
            let _ = writeln!(
                out,
                "fuzz finding {} iter {} ops {} -> {} trials {} minimized {} canary {}",
                f.kind.label(),
                f.iteration,
                f.original_ops,
                f.scenario.total_ops(),
                f.minimize_trials,
                if f.minimized { "yes" } else { "no" },
                if f.canary { "yes" } else { "no" },
            );
        }
        match self.canary() {
            Some(f) => {
                let _ = writeln!(out, "fuzz canary caught ops {}", f.scenario.total_ops());
            }
            None if self.config.plant_canary => {
                let _ = writeln!(out, "fuzz canary MISSED");
            }
            None => {}
        }
        let _ = writeln!(out, "fuzz status {}", if self.ok() { "ok" } else { "FAIL" });
        out
    }
}

/// The planted canary: a barrier that one rank skips, padded with
/// unrelated local work so the minimizer has something to earn. Runs
/// through the normal execute/minimize pipeline like any candidate.
pub fn canary_scenario(seed: u64) -> FuzzScenario {
    let mut rng = DetRng::new(split_seed(seed, 0xCA), 0);
    let ranks = 4;
    let mut traces: Vec<Vec<Op>> = Vec::with_capacity(ranks);
    for r in 0..ranks {
        let mut t = vec![
            Op::Compute {
                work: Workload::Custom {
                    flops: (1 + rng.next_below(100)) as f64 * 1e5,
                    dram_bytes: 0.0,
                    simd_eff: 1.0,
                    serial_frac: 0.0,
                },
                threads: 1,
            },
            Op::Delay { time: SimTime::from_us(1 + rng.next_below(20)) },
            Op::Mark { id: r as u32 },
        ];
        if r != ranks - 1 {
            t.push(Op::Collective { comm: CommId::WORLD, op: CollectiveOp::Barrier });
        }
        t.push(Op::Delay { time: SimTime::from_us(1) });
        traces.push(t);
    }
    FuzzScenario {
        machine: bluegene_p().with_flat_contention(),
        mode: ExecMode::Vn,
        mapping: Mapping::txyz(),
        faults: None,
        traces,
    }
}

fn pick_parent(corpus: &mut [CorpusEntry]) -> Option<(usize, u32)> {
    let idx = corpus
        .iter()
        .enumerate()
        .min_by_key(|(i, e)| (e.picked, *i))
        .map(|(i, _)| i)?;
    let energy = corpus[idx].energy();
    corpus[idx].picked += 1;
    Some((idx, energy))
}

/// Run a fuzz campaign. Deterministic in `(config.seed, config.iters)`;
/// parallelism (`hpcsim_core::set_jobs`) changes wall-clock only.
pub fn run_fuzz(config: &FuzzConfig) -> FuzzReport {
    let mut coverage = CoverageMap::default();
    let mut corpus: Vec<CorpusEntry> = Vec::new();
    let mut seen: std::collections::BTreeSet<SpecHash> = Default::default();
    let mut findings: BTreeMap<(u32, bool), (u64, FuzzScenario, RunReport)> = BTreeMap::new();
    let canary_iter = config.canary_iteration();

    let mut iter = 0u64;
    while iter < config.iters {
        let batch = BATCH.min(config.iters - iter);
        // Build the batch sequentially: scheduler state may only
        // advance here, in iteration order.
        let mut cands: Vec<(u64, bool, FuzzScenario)> = Vec::with_capacity(batch as usize);
        for i in 0..batch {
            let it = iter + i;
            if config.plant_canary && it == canary_iter {
                cands.push((it, true, canary_scenario(config.seed)));
            } else if corpus.is_empty() || it.is_multiple_of(3) {
                cands.push((it, false, generate(config.seed, it)));
            } else {
                let (idx, energy) = pick_parent(&mut corpus).expect("corpus nonempty");
                cands.push((it, false, mutate(&corpus[idx].scenario, config.seed, it, energy)));
            }
        }

        // Evaluate in parallel, fold strictly in iteration order.
        let reports = try_parmap(&cands, |(_, _, sc)| run_scenario(sc));
        for ((it, is_canary, sc), rep) in cands.into_iter().zip(reports) {
            let rep = match rep {
                Ok(rep) => rep,
                // run_scenario catches engine panics itself; this arm
                // only fires if the harness around it blew up.
                Err(p) => RunReport {
                    outcome: OutcomeKind::Panic,
                    detail: format!("harness panic: {}", p.message),
                    signals: Default::default(),
                },
            };
            FUZZ_OBS.iterations.inc();

            let feats = rep.features();
            let new = coverage.add_all(&feats);
            if new > 0 {
                let hash = sc.hash();
                if seen.insert(hash) {
                    FUZZ_OBS.corpus_entries.inc();
                    corpus.push(CorpusEntry {
                        scenario: sc.clone(),
                        hash,
                        iteration: it,
                        new_features: new,
                        outcome: rep.outcome,
                        picked: 0,
                    });
                }
            }

            if rep.outcome.is_finding(sc.faults.is_some()) || is_canary {
                findings.entry((rep.outcome.ordinal(), is_canary)).or_insert((it, sc, rep));
            }
        }
        iter += batch;
    }

    // Minimize each finding class once, after the campaign (keeps the
    // expensive part off the hot loop and independent of batch shape).
    let minimized: Vec<Finding> = findings
        .into_iter()
        .map(|((_, canary), (iteration, sc, rep))| {
            let original_ops = sc.total_ops();
            let min = minimize(&sc, rep.outcome, config.minimize_budget);
            FUZZ_OBS.minimize_trials.add(min.trials);
            FUZZ_OBS.findings.inc();
            Finding {
                kind: rep.outcome,
                iteration,
                detail: rep.detail,
                scenario: min.scenario,
                original_ops,
                minimize_trials: min.trials,
                minimized: min.converged,
                canary,
            }
        })
        .collect();

    let features_total = coverage.len() as u64;
    FUZZ_OBS.coverage_features.add(features_total);

    FuzzReport {
        config: config.clone(),
        executed: config.iters,
        corpus,
        coverage,
        findings: minimized,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canary_deadlocks_and_minimizes_to_three_barriers() {
        let sc = canary_scenario(42);
        let rep = run_scenario(&sc);
        assert_eq!(rep.outcome, OutcomeKind::Deadlock, "{}", rep.detail);
        let min = minimize(&sc, OutcomeKind::Deadlock, 2_000);
        assert!(min.converged);
        assert!(min.scenario.total_ops() <= 8, "{} ops", min.scenario.total_ops());
    }

    #[test]
    fn campaign_is_deterministic() {
        let cfg = FuzzConfig { seed: 7, iters: 48, ..Default::default() };
        let a = run_fuzz(&cfg);
        let b = run_fuzz(&cfg);
        assert_eq!(a.summary(), b.summary());
        assert_eq!(a.corpus.len(), b.corpus.len());
        for (x, y) in a.corpus.iter().zip(&b.corpus) {
            assert_eq!(x.hash, y.hash);
        }
    }

    #[test]
    fn campaign_is_jobs_invariant() {
        let cfg = FuzzConfig { seed: 11, iters: 48, ..Default::default() };
        let prev = hpcsim_core::jobs();
        hpcsim_core::set_jobs(1);
        let serial = run_fuzz(&cfg);
        hpcsim_core::set_jobs(4);
        let parallel = run_fuzz(&cfg);
        hpcsim_core::set_jobs(prev);
        assert_eq!(serial.summary(), parallel.summary());
        assert_eq!(serial.coverage.digest(), parallel.coverage.digest());
        let sh: Vec<_> = serial.corpus.iter().map(|e| e.hash).collect();
        let ph: Vec<_> = parallel.corpus.iter().map(|e| e.hash).collect();
        assert_eq!(sh, ph);
    }

    #[test]
    fn campaign_catches_the_canary_within_budget() {
        let cfg = FuzzConfig { seed: 42, iters: 64, ..Default::default() };
        let report = run_fuzz(&cfg);
        let canary = report.canary().expect("canary finding recorded");
        assert_eq!(canary.kind, OutcomeKind::Deadlock);
        assert!(canary.scenario.total_ops() <= 8);
        assert!(report.ok(), "summary:\n{}", report.summary());
    }

    #[test]
    fn corpus_grows_and_covers() {
        let cfg = FuzzConfig { seed: 3, iters: 64, plant_canary: false, ..Default::default() };
        let report = run_fuzz(&cfg);
        assert!(!report.corpus.is_empty());
        assert!(report.coverage.len() >= 11, "at least one full feature row");
        // Every corpus entry round-trips through the canonical text.
        for e in &report.corpus {
            let back = FuzzScenario::parse(&e.scenario.to_canon()).unwrap();
            assert_eq!(back.hash(), e.hash);
        }
    }
}
