//! Candidate execution: bounded replay, signal harvesting, and the
//! Dag-vs-Replay differential oracle.
//!
//! Every candidate runs through [`hpcsim_mpi::TraceSim`] with the
//! step-budget watchdog armed (the default derived budget — a strict
//! upper bound on legitimate event traffic — so a watchdog trip is
//! always a finding, never a false positive). Replays execute under
//! `catch_unwind` so an engine panic becomes a minimizable
//! [`OutcomeKind::Panic`] instead of killing the campaign.
//!
//! When a replay finishes on a contention-flat machine without faults,
//! the same traces are compiled by [`hpcsim_mpi::TraceDag`] and both
//! engines' per-rank finish times are compared bit-exactly — the
//! differential oracle the corpus contract requires. A deadlocked
//! replay is cross-checked against the DAG's own cycle detector.

use crate::coverage::{features, OutcomeKind, Signals};
use crate::scenario::FuzzScenario;
use hpcsim_engine::SimTime;
use hpcsim_mpi::{SimError, TraceDag, TraceSim};
use hpcsim_probe::{GaugeId, SpanEvent, SpanKind, Tracer};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Signal-harvesting tracer: gauge maxima plus wait-span totals.
#[derive(Debug, Default)]
struct CoverageTracer {
    gauges: [u64; 6],
    wait: u64,
}

impl Tracer for CoverageTracer {
    const ENABLED: bool = true;

    fn span(&mut self, ev: SpanEvent) {
        if matches!(ev.kind, SpanKind::Wait | SpanKind::CollectiveWait) {
            self.wait += ev.t1.0.saturating_sub(ev.t0.0);
        }
    }

    fn link_delta(&mut self, _link: u32, _t: SimTime, _delta: i8) {}

    fn gauge(&mut self, id: GaugeId, value: u64) {
        let slot = &mut self.gauges[id as usize];
        *slot = (*slot).max(value);
    }
}

/// One executed candidate: its outcome class, a human-readable detail
/// line, and the coverage signals it produced.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Outcome class (coverage axis + finding trigger).
    pub outcome: OutcomeKind,
    /// Diagnostic detail (error display / divergence description).
    pub detail: String,
    /// Harvested coverage signals.
    pub signals: Signals,
}

impl RunReport {
    /// The candidate's feature set.
    pub fn features(&self) -> Vec<u32> {
        features(&self.signals, self.outcome)
    }
}

fn outcome_of(err: SimError) -> OutcomeKind {
    match err {
        SimError::Stalled { .. } => OutcomeKind::Stalled,
        SimError::Unreachable { .. } => OutcomeKind::Unreachable,
        SimError::Livelock { .. } => OutcomeKind::Livelock,
        SimError::Deadlock { .. } => OutcomeKind::Deadlock,
        SimError::CollectiveMismatch { .. } => OutcomeKind::CollectiveMismatch,
    }
}

fn panic_text(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Execute one scenario end to end (replay + oracle). Deterministic:
/// the report depends only on the scenario's canonical content.
pub fn run_scenario(sc: &FuzzScenario) -> RunReport {
    let cfg = sc.sim_config();
    let mut tracer = CoverageTracer::default();
    let replay = catch_unwind(AssertUnwindSafe(|| {
        let mut sim = TraceSim::new(cfg.clone());
        if let Some(plan) = sc.fault_plan() {
            sim.set_faults(&plan);
        }
        sim.try_replay_traces_probe(&sc.traces, &mut tracer)
    }));

    let mut signals = Signals {
        arrived_hw: tracer.gauges[GaugeId::ArrivedMatchDepth as usize],
        posted_hw: tracer.gauges[GaugeId::PostedMatchDepth as usize],
        eventq_hw: tracer.gauges[GaugeId::EventQueueDepth as usize],
        retransmits: tracer.gauges[GaugeId::Retransmits as usize],
        link_outages: tracer.gauges[GaugeId::LinkOutages as usize],
        flow_underflows: tracer.gauges[GaugeId::FlowUnderflows as usize],
        ranks: sc.ranks() as u64,
        dag_fallback: if sc.faults.is_some() {
            2
        } else if TraceDag::exact_for(&sc.machine) {
            0
        } else {
            1
        },
        ..Default::default()
    };

    let result = match replay {
        Err(payload) => {
            return RunReport {
                outcome: OutcomeKind::Panic,
                detail: format!("replay panicked: {}", panic_text(payload)),
                signals,
            };
        }
        Ok(Err(err)) => {
            // Cross-check the structural-deadlock diagnosis against the
            // DAG engine's independent cycle detector where applicable.
            if let SimError::Deadlock { .. } = err {
                if signals.dag_fallback == 0 {
                    // Ok(true): both engines agree it's a deadlock.
                    // Err: dag compile panicked on the same input —
                    // keep the replay diagnosis, it's the richer one.
                    if let Ok(false) = catch_unwind(AssertUnwindSafe(|| {
                        TraceDag::compile_world(&sc.traces).deadlock().is_some()
                    })) {
                        return RunReport {
                            outcome: OutcomeKind::Divergence,
                            detail: format!(
                                "replay deadlocked but dag compiles clean: {err}"
                            ),
                            signals,
                        };
                    }
                }
            }
            return RunReport { outcome: outcome_of(err), detail: err.to_string(), signals };
        }
        Ok(Ok(result)) => result,
    };

    let makespan = result.makespan();
    signals.makespan_us = makespan.0 / SimTime::from_us(1).0.max(1);
    let denom = (sc.ranks() as u64).saturating_mul(makespan.0);
    if let Some(share) = tracer.wait.saturating_mul(100).checked_div(denom) {
        signals.wait_share_pct = share.min(100);
    }

    // Differential oracle: fault-free + contention-flat ⇒ the DAG
    // engine is specified to be bit-exact against replay.
    if signals.dag_fallback == 0 {
        let oracle = catch_unwind(AssertUnwindSafe(|| {
            let dag = TraceDag::compile_world(&sc.traces);
            if let Some((unfinished, rank, op)) = dag.deadlock() {
                return Err(format!(
                    "replay finished but dag sees deadlock: {unfinished} ranks, \
                     e.g. rank {rank} at op {op}"
                ));
            }
            Ok(dag.evaluate(&cfg).finish)
        }));
        match oracle {
            Err(payload) => {
                return RunReport {
                    outcome: OutcomeKind::Panic,
                    detail: format!("dag oracle panicked: {}", panic_text(payload)),
                    signals,
                };
            }
            Ok(Err(detail)) => {
                return RunReport { outcome: OutcomeKind::Divergence, detail, signals };
            }
            Ok(Ok(dag_finish)) => {
                if dag_finish != result.finish {
                    let rank = result
                        .finish
                        .iter()
                        .zip(&dag_finish)
                        .position(|(a, b)| a != b)
                        .unwrap_or(0);
                    return RunReport {
                        outcome: OutcomeKind::Divergence,
                        detail: format!(
                            "finish mismatch at rank {rank}: replay {} ps, dag {} ps",
                            result.finish[rank].0, dag_finish[rank].0
                        ),
                        signals,
                    };
                }
            }
        }
    }

    RunReport { outcome: OutcomeKind::Ok, detail: String::new(), signals }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::generate;
    use hpcsim_cache::FaultSpec;
    use hpcsim_faults::FaultProfile;
    use hpcsim_machine::registry::bluegene_p;
    use hpcsim_machine::ExecMode;
    use hpcsim_mpi::{CommId, Op, Req};
    use hpcsim_net::CollectiveOp;
    use hpcsim_topo::Mapping;

    fn barrier() -> Op {
        Op::Collective { comm: CommId::WORLD, op: CollectiveOp::Barrier }
    }

    #[test]
    fn generated_scenarios_run_ok_without_faults() {
        for it in 0..20 {
            let mut sc = generate(11, it);
            sc.faults = None;
            let rep = run_scenario(&sc);
            assert_eq!(rep.outcome, OutcomeKind::Ok, "iter {it}: {}", rep.detail);
        }
    }

    #[test]
    fn missing_barrier_member_is_a_deadlock() {
        let sc = FuzzScenario {
            machine: bluegene_p().with_flat_contention(),
            mode: ExecMode::Vn,
            mapping: Mapping::txyz(),
            faults: None,
            traces: vec![vec![barrier()], vec![barrier()], vec![barrier()], vec![]],
        };
        let rep = run_scenario(&sc);
        assert_eq!(rep.outcome, OutcomeKind::Deadlock, "{}", rep.detail);
    }

    #[test]
    fn unmatched_receive_is_a_deadlock() {
        let sc = FuzzScenario {
            machine: bluegene_p().with_flat_contention(),
            mode: ExecMode::Vn,
            mapping: Mapping::txyz(),
            faults: None,
            traces: vec![
                vec![Op::Irecv { src: 1, tag: 0, bytes: 64, req: Req(0) }, Op::Wait { req: Req(0) }],
                vec![],
            ],
        };
        let rep = run_scenario(&sc);
        assert_eq!(rep.outcome, OutcomeKind::Deadlock, "{}", rep.detail);
    }

    #[test]
    fn armed_fault_plan_skips_the_oracle_and_reports_signals() {
        let mut sc = generate(11, 2);
        sc.faults = Some(FaultSpec { seed: 99, profile: FaultProfile::Mixed });
        let rep = run_scenario(&sc);
        assert_eq!(rep.signals.dag_fallback, 2);
        // Mixed faults always kill some links on the plan.
        assert!(matches!(
            rep.outcome,
            OutcomeKind::Ok | OutcomeKind::Stalled | OutcomeKind::Unreachable
        ));
    }

    #[test]
    fn reports_are_deterministic() {
        let sc = generate(5, 3);
        let a = run_scenario(&sc);
        let b = run_scenario(&sc);
        assert_eq!(a.outcome, b.outcome);
        assert_eq!(a.detail, b.detail);
        assert_eq!(a.features(), b.features());
    }
}
