//! # hpcsim-io
//!
//! The I/O substrate of the studied systems (§I.B/§I.C): BlueGene compute
//! nodes have **no direct path to storage** — their I/O is forwarded over
//! the collective network to dedicated I/O nodes (one per 64 compute
//! nodes on both Eugene and Intrepid), which speak 10-Gigabit Ethernet to
//! a GPFS cluster striped over DDN LUNs. The paper mentions hitting "a
//! system I/O performance issue on the BG/P" during the CAM experiments;
//! this crate models the path well enough to show where such walls live:
//!
//! * the fan-in stage: 64 compute nodes share one I/O node's tree link;
//! * the I/O-node NIC: one 10 GbE port per I/O node;
//! * the filesystem: servers × per-server bandwidth, striped LUNs.
//!
//! The model answers "how long does it take `ranks` tasks to write
//! `bytes_per_rank`" for N-to-1 (single shared file through one writer),
//! N-to-N (file per process), and collective-buffered patterns.

use hpcsim_engine::SimTime;
use hpcsim_machine::MachineSpec;
use serde::Serialize;

/// A parallel filesystem attached to the machine.
#[derive(Debug, Clone, Serialize)]
pub struct FilesystemSpec {
    /// Number of file servers (Eugene: 8 + 2 metadata).
    pub servers: u32,
    /// Sustained bandwidth per server, bytes/s.
    pub server_bw: f64,
    /// Number of data LUNs (Eugene: 24 × ~3.6 TB).
    pub luns: u32,
    /// Sustained bandwidth per LUN, bytes/s.
    pub lun_bw: f64,
    /// Metadata operation latency (file create/open).
    pub metadata_latency: SimTime,
}

impl FilesystemSpec {
    /// The ORNL "Eugene" GPFS configuration (§I.B).
    pub fn eugene_gpfs() -> Self {
        FilesystemSpec {
            servers: 8,
            server_bw: 700e6,
            luns: 24,
            lun_bw: 350e6,
            metadata_latency: SimTime::from_us(800),
        }
    }

    /// Aggregate filesystem bandwidth: min of server and LUN limits.
    pub fn aggregate_bw(&self) -> f64 {
        (self.servers as f64 * self.server_bw).min(self.luns as f64 * self.lun_bw)
    }
}

/// The access pattern of a parallel write/read.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum IoPattern {
    /// All ranks funnel through rank 0 (serial bottleneck).
    NToOne,
    /// File per process — parallel but metadata-heavy.
    NToN,
    /// MPI-IO collective buffering: one writer per I/O node.
    Collective,
}

/// The I/O path model for one machine + filesystem.
#[derive(Debug, Clone)]
pub struct IoModel {
    machine: MachineSpec,
    fs: FilesystemSpec,
    /// 10 GbE per I/O node, bytes/s.
    ion_nic_bw: f64,
}

/// Result of a modelled I/O phase.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct IoResult {
    /// Wall time of the phase.
    pub time: SimTime,
    /// Achieved aggregate bandwidth, bytes/s.
    pub bandwidth: f64,
    /// Which stage bound the transfer.
    pub bottleneck: IoBottleneck,
}

/// The stage that limited an I/O phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum IoBottleneck {
    /// A single writer's injection rate.
    SingleWriter,
    /// The compute-to-I/O-node forwarding (tree link fan-in).
    Forwarding,
    /// The I/O nodes' 10 GbE ports.
    IonNic,
    /// The filesystem servers/LUNs.
    Filesystem,
    /// Metadata operations (file-per-process storms).
    Metadata,
}

impl IoModel {
    /// Model for `machine` attached to `fs`.
    pub fn new(machine: MachineSpec, fs: FilesystemSpec) -> Self {
        IoModel { machine, fs, ion_nic_bw: 10e9 / 8.0 }
    }

    /// Number of I/O nodes serving `compute_nodes`.
    pub fn io_nodes(&self, compute_nodes: u64) -> u64 {
        compute_nodes.div_ceil(self.machine.packaging.compute_per_io_node as u64).max(1)
    }

    /// Time for `ranks` tasks to write `bytes_per_rank` in `pattern`.
    pub fn write_time(&self, ranks: u64, bytes_per_rank: u64, pattern: IoPattern) -> IoResult {
        let total = (ranks * bytes_per_rank) as f64;
        let tasks_per_node = self.machine.cores_per_node as u64; // VN worst case
        let compute_nodes = ranks.div_ceil(tasks_per_node);
        let ions = self.io_nodes(compute_nodes) as f64;
        // forwarding: each compute node streams up its tree link; the
        // 64 nodes behind one ION share that ION's tree ingest
        let tree_bw = self.machine.nic.tree_bw.unwrap_or(self.machine.nic.torus_link_bw * 2.0);
        let forwarding_bw = ions * (tree_bw / 2.0);
        let ion_bw = ions * self.ion_nic_bw;
        let fs_bw = self.fs.aggregate_bw();

        let (bw, bottleneck, extra) = match pattern {
            IoPattern::NToOne => {
                // one task funnels everything: bounded by one node's
                // injection into the collective network
                let single = tree_bw / 2.0;
                (single.min(fs_bw), IoBottleneck::SingleWriter, SimTime::ZERO)
            }
            IoPattern::NToN => {
                let bw = forwarding_bw.min(ion_bw).min(fs_bw);
                // a metadata op per rank, serialized at the MDS
                let meta = self.fs.metadata_latency * ranks;
                (bw, IoBottleneck::Metadata, meta)
            }
            IoPattern::Collective => {
                let bw = forwarding_bw.min(ion_bw).min(fs_bw);
                let which = if bw == fs_bw {
                    IoBottleneck::Filesystem
                } else if bw == ion_bw {
                    IoBottleneck::IonNic
                } else {
                    IoBottleneck::Forwarding
                };
                (bw, which, self.fs.metadata_latency)
            }
        };
        let time = SimTime::from_secs(total / bw) + extra;
        let secs = time.as_secs();
        IoResult {
            time,
            bandwidth: if secs > 0.0 { total / secs } else { 0.0 },
            bottleneck,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcsim_machine::registry::bluegene_p;

    fn model() -> IoModel {
        IoModel::new(bluegene_p(), FilesystemSpec::eugene_gpfs())
    }

    #[test]
    fn io_node_ratio_is_64_to_1() {
        let m = model();
        assert_eq!(m.io_nodes(2048), 32); // Eugene: 16 IONs per 1024-node rack
        assert_eq!(m.io_nodes(64), 1);
        assert_eq!(m.io_nodes(65), 2);
        assert_eq!(m.io_nodes(1), 1);
    }

    #[test]
    fn collective_beats_n_to_one() {
        let m = model();
        let n1 = m.write_time(8192, 1 << 20, IoPattern::NToOne);
        let coll = m.write_time(8192, 1 << 20, IoPattern::Collective);
        assert!(coll.time < n1.time);
        assert_eq!(n1.bottleneck, IoBottleneck::SingleWriter);
    }

    #[test]
    fn file_per_process_pays_metadata() {
        let m = model();
        let nn = m.write_time(8192, 4096, IoPattern::NToN);
        let coll = m.write_time(8192, 4096, IoPattern::Collective);
        // small writes: the metadata storm dominates
        assert!(nn.time > coll.time * 5);
        assert_eq!(nn.bottleneck, IoBottleneck::Metadata);
    }

    #[test]
    fn large_collective_hits_filesystem_wall() {
        let m = model();
        let r = m.write_time(8192, 64 << 20, IoPattern::Collective);
        assert_eq!(r.bottleneck, IoBottleneck::Filesystem);
        // Eugene scratch: min(8×700 MB/s, 24×350 MB/s) = 5.6 GB/s
        assert!((r.bandwidth - 5.6e9).abs() / 5.6e9 < 0.05, "{:.3e}", r.bandwidth);
    }

    #[test]
    fn small_jobs_are_forwarding_bound() {
        let m = model();
        // 64 compute nodes -> 1 ION: forwarding 850 MB/s < 1 NIC < FS
        let r = m.write_time(256, 16 << 20, IoPattern::Collective);
        assert_eq!(r.bottleneck, IoBottleneck::Forwarding);
    }

    #[test]
    fn aggregate_bw_is_min_of_limits() {
        let fs = FilesystemSpec::eugene_gpfs();
        assert_eq!(fs.aggregate_bw(), (8.0f64 * 700e6).min(24.0 * 350e6));
    }
}
