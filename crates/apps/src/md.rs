//! Molecular-dynamics proxies: LAMMPS-like and AMBER/PMEMD-like codes on
//! the 290,220-atom solvated RuBisCO system (Figure 8).
//!
//! Both codes integrate the same physics but communicate differently
//! (§III.E):
//!
//! * **LAMMPS** — spatial decomposition: each rank owns a box of atoms,
//!   exchanges ghost atoms with its six face neighbours each step, and
//!   joins one small reduction. Communication shrinks as surface/volume,
//!   so it "scale[s] from a few hundred to tens of thousands of
//!   processors".
//! * **PMEMD** — particle-mesh Ewald: the direct-space force loop plus a
//!   distributed 3-D FFT (transpose exchanges with `MPI_Sendrecv` and
//!   non-blocking pairs) and per-step energy `MPI_Allreduce`s, with a
//!   higher output frequency (periodic gathers). The paper: "scaling and
//!   runtime … is highly sensitive to MPI_Allreduce latencies and
//!   exchange operations in FFT computation"; BG/P's collective network
//!   yields "relatively higher parallel efficiencies".

use hpcsim_machine::{ExecMode, MachineSpec, Workload};
use hpcsim_mpi::{CommId, FnProgram, Mpi, SimConfig, SweepEngine, TraceDag, TraceSim};
use hpcsim_net::DType;
use hpcsim_topo::Grid3D;
use serde::Serialize;

/// Which MD code's communication structure to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum MdCode {
    /// Spatial decomposition, neighbour exchanges only.
    Lammps,
    /// Particle-mesh Ewald with FFT transposes and frequent reductions.
    Pmemd,
}

/// MD proxy configuration (defaults: the paper's RuBisCO system).
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct MdConfig {
    /// Which code.
    pub code: MdCode,
    /// Atom count (RuBisCO with explicit solvent: 290,220).
    pub atoms: u64,
    /// Average neighbours per atom inside the 10–11 Å cutoffs.
    pub neighbors: u64,
    /// PME mesh points per axis (PMEMD only).
    pub pme_mesh: u64,
    /// Steps between trajectory outputs (PMEMD ran with a higher output
    /// frequency, i.e. a smaller number here).
    pub output_every: u32,
    /// Timesteps to simulate.
    pub steps: u32,
}

impl MdConfig {
    /// LAMMPS on RuBisCO.
    pub fn lammps_rub() -> Self {
        MdConfig {
            code: MdCode::Lammps,
            atoms: 290_220,
            neighbors: 190,
            pme_mesh: 0,
            output_every: 100,
            steps: 8,
        }
    }

    /// AMBER/PMEMD on RuBisCO ("relatively higher output frequency").
    pub fn pmemd_rub() -> Self {
        MdConfig {
            code: MdCode::Pmemd,
            atoms: 290_220,
            neighbors: 190,
            pme_mesh: 144,
            output_every: 4,
            steps: 8,
        }
    }
}

/// Result of an MD run.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct MdResult {
    /// Wall seconds per timestep.
    pub seconds_per_step: f64,
    /// Nanoseconds of simulated time per wall-clock day (1 fs steps).
    pub ns_per_day: f64,
}

/// Record the MD proxy's trace on `ranks` tasks. The trace depends only
/// on the rank count and configuration — not the machine — so one
/// recording serves every machine in a comparison scan.
pub fn md_traces(ranks: usize, cfg: &MdConfig) -> Vec<Vec<hpcsim_mpi::Op>> {
    let prog = cfg.clone();
    TraceSim::trace_program(
        &FnProgram(move |mpi: &mut Mpi| {
            let grid = Grid3D::near_cube(mpi.size());
            for step in 0..prog.steps {
                record_step(mpi, &prog, grid, step);
            }
        }),
        ranks,
        1,
    )
}

/// Run the MD proxy on `ranks` tasks in VN mode.
pub fn md_run(machine: &MachineSpec, ranks: usize, cfg: &MdConfig) -> MdResult {
    md_run_machines(std::slice::from_ref(machine), ranks, cfg).remove(0)
}

/// Run the MD proxy on every machine in `machines` (the Fig 8 scan
/// shape) from one recorded trace. Under [`SweepEngine::Dag`] the trace
/// is also compiled once and each contention-flat machine is evaluated
/// in a single critical-path pass; contended machines (all the real
/// Table 1 systems) fall back to event-queue replay, so results are
/// identical under either engine selection.
pub fn md_run_machines(machines: &[MachineSpec], ranks: usize, cfg: &MdConfig) -> Vec<MdResult> {
    md_run_machines_traces(machines, ranks, cfg, &md_traces(ranks, cfg))
}

/// [`md_run_machines`] over traces the caller already holds (they must
/// be `md_traces(ranks, cfg)`) — the scenario cache's tier-2 path: the
/// Fig 8 battery fetches the shared trace from the store and every
/// machine of the scan replays it without re-recording.
pub fn md_run_machines_traces(
    machines: &[MachineSpec],
    ranks: usize,
    cfg: &MdConfig,
    traces: &[Vec<hpcsim_mpi::Op>],
) -> Vec<MdResult> {
    let engine = hpcsim_mpi::sweep_engine();
    let dag = if engine == SweepEngine::Dag && machines.iter().any(TraceDag::exact_for) {
        Some(TraceDag::compile_world(traces))
    } else {
        if engine == SweepEngine::Dag {
            hpcsim_mpi::note_fallback_contention(machines.len() as u64);
        }
        None
    };
    machines
        .iter()
        .map(|machine| md_eval_traces(machine, ranks, cfg, traces, dag.as_ref()))
        .collect()
}

/// Evaluate a single machine point from already-recorded traces,
/// optionally through a pre-compiled DAG (used only where provably
/// exact, [`TraceDag::exact_for`]). Bit-identical to [`md_run`] on the
/// same point.
pub fn md_eval_traces(
    machine: &MachineSpec,
    ranks: usize,
    cfg: &MdConfig,
    traces: &[Vec<hpcsim_mpi::Op>],
    dag: Option<&TraceDag>,
) -> MdResult {
    let sim_cfg = SimConfig::new(machine.clone(), ranks, ExecMode::Vn);
    let res = match dag {
        Some(dag) if TraceDag::exact_for(machine) => dag.evaluate(&sim_cfg),
        _ => {
            if dag.is_some() {
                // a DAG was offered but is inexact on this machine
                hpcsim_mpi::note_fallback_contention(1);
            }
            TraceSim::new(sim_cfg).replay_traces(traces)
        }
    };
    let seconds_per_step = res.makespan().as_secs() / cfg.steps as f64;
    // 1 fs per step -> ns/day = 86400 / (s/step) * 1e-6
    MdResult { seconds_per_step, ns_per_day: 86_400.0 / seconds_per_step * 1e-6 }
}

/// [`md_run`] with an observability sink; also returns the raw replay
/// result for the probe layer.
pub fn md_run_probe<T: hpcsim_probe::Tracer>(
    machine: &MachineSpec,
    ranks: usize,
    cfg: &MdConfig,
    tracer: &mut T,
) -> (MdResult, hpcsim_mpi::SimResult) {
    let mut sim = TraceSim::new(SimConfig::new(machine.clone(), ranks, ExecMode::Vn));
    let prog = cfg.clone();
    let res = sim.run_probe(
        &FnProgram(move |mpi: &mut Mpi| {
            let grid = Grid3D::near_cube(mpi.size());
            for step in 0..prog.steps {
                record_step(mpi, &prog, grid, step);
            }
        }),
        tracer,
    );
    let seconds_per_step = res.makespan().as_secs() / cfg.steps as f64;
    (MdResult { seconds_per_step, ns_per_day: 86_400.0 / seconds_per_step * 1e-6 }, res)
}

fn record_step(mpi: &mut Mpi, cfg: &MdConfig, grid: Grid3D, step: u32) {
    let p = mpi.size() as u64;
    let atoms_local = (cfg.atoms / p).max(1);
    let me = mpi.rank();

    // direct-space force evaluation over the neighbour list
    mpi.compute(Workload::MdForce {
        pairs: atoms_local * cfg.neighbors / 2,
        flops_per_pair: 220.0,
    });

    // ghost-atom exchange with the six face neighbours: surface atoms
    // scale as (atoms_local)^(2/3) with a cutoff-deep shell
    let surface_atoms = (atoms_local as f64).powf(2.0 / 3.0).ceil() as u64 * 3;
    let ghost_bytes = (surface_atoms * 4 * 8).max(64); // x,y,z,q per atom
    let tag0 = step * 8;
    let nbrs = grid.face_neighbors(me);
    let mut reqs = Vec::with_capacity(12);
    for (i, &nb) in nbrs.iter().enumerate() {
        reqs.push(mpi.irecv(nb, tag0 + i as u32, ghost_bytes));
    }
    for (i, &nb) in nbrs.iter().enumerate() {
        let opposite = [1u32, 0, 3, 2, 5, 4][i];
        reqs.push(mpi.isend(nb, tag0 + opposite, ghost_bytes));
    }
    mpi.waitall(&reqs);

    match cfg.code {
        MdCode::Lammps => {
            // one small reduction (thermo) per step
            mpi.allreduce(CommId::WORLD, 48, DType::F64);
        }
        MdCode::Pmemd => {
            // charge spreading + 3-D FFT forward/backward: two transpose
            // exchanges over the mesh, plus mesh work
            let mesh_pts = cfg.pme_mesh.pow(3);
            let mesh_local = (mesh_pts / p).max(1);
            mpi.compute(Workload::Fft1d { n: mesh_local.max(64) });
            let bytes_per_pair = (16 * mesh_local / p).max(16);
            mpi.alltoall(CommId::WORLD, bytes_per_pair);
            mpi.compute(Workload::Fft1d { n: mesh_local.max(64) });
            mpi.alltoall(CommId::WORLD, bytes_per_pair);
            // PMEMD's per-step energy/virial reductions (several vectors)
            mpi.allreduce(CommId::WORLD, 8 * 64, DType::F64);
            mpi.allreduce(CommId::WORLD, 8 * 64, DType::F64);
            // periodic trajectory output: gather coordinates to rank 0
            if step.is_multiple_of(cfg.output_every.max(1)) {
                mpi.reduce(CommId::WORLD, atoms_local * 24, DType::F64);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcsim_machine::registry::{bluegene_p, xt4_dc};

    fn eff(machine: &MachineSpec, cfg: &MdConfig, lo: usize, hi: usize) -> f64 {
        let t_lo = md_run(machine, lo, cfg).seconds_per_step;
        let t_hi = md_run(machine, hi, cfg).seconds_per_step;
        (t_lo / t_hi) / (hi as f64 / lo as f64)
    }

    /// Fig 8: LAMMPS scales further than PMEMD on the same machine —
    /// "PMEMD scaling is limited due to higher rate of increase in
    /// communication volume".
    #[test]
    fn lammps_outscales_pmemd() {
        for machine in [bluegene_p(), xt4_dc()] {
            let e_l = eff(&machine, &MdConfig::lammps_rub(), 128, 2048);
            let e_p = eff(&machine, &MdConfig::pmemd_rub(), 128, 2048);
            assert!(
                e_l > e_p + 0.05,
                "{}: LAMMPS eff {e_l:.2} vs PMEMD {e_p:.2}",
                machine.id
            );
        }
    }

    /// §III.E: "The collective network of the BG/P results in relatively
    /// higher parallel efficiencies" (PMEMD's Allreduce sensitivity).
    #[test]
    fn bgp_pmemd_efficiency_beats_xt() {
        let e_b = eff(&bluegene_p(), &MdConfig::pmemd_rub(), 128, 2048);
        let e_x = eff(&xt4_dc(), &MdConfig::pmemd_rub(), 128, 2048);
        assert!(e_b > e_x, "BG/P {e_b:.2} vs XT {e_x:.2}");
    }

    /// Absolute per-step time: the XT's faster cores win at moderate
    /// scale.
    #[test]
    fn xt_faster_at_moderate_scale() {
        let b = md_run(&bluegene_p(), 256, &MdConfig::lammps_rub());
        let x = md_run(&xt4_dc(), 256, &MdConfig::lammps_rub());
        assert!(x.seconds_per_step < b.seconds_per_step);
        let ratio = b.seconds_per_step / x.seconds_per_step;
        assert!(ratio < 5.0, "ratio {ratio:.2} should stay moderate");
    }

    /// Output frequency hurts: PMEMD with frequent output is slower than
    /// with rare output.
    #[test]
    fn output_frequency_costs() {
        let frequent = MdConfig::pmemd_rub();
        let rare = MdConfig { output_every: 1000, ..MdConfig::pmemd_rub() };
        let t_f = md_run(&bluegene_p(), 512, &frequent).seconds_per_step;
        let t_r = md_run(&bluegene_p(), 512, &rare).seconds_per_step;
        assert!(t_f > t_r, "frequent {t_f:.2e} vs rare {t_r:.2e}");
    }

    /// The machine-scan entry point returns exactly the per-machine
    /// results, and the compiled DAG reproduces replay exactly on a
    /// contention-flat machine (the MD trace exercises subround tags,
    /// alltoalls, reductions and rendezvous ghost exchanges).
    #[test]
    fn machine_scan_matches_individual_runs() {
        let machines = [bluegene_p(), xt4_dc()];
        let cfg = MdConfig::pmemd_rub();
        let scanned = md_run_machines(&machines, 64, &cfg);
        for (m, s) in machines.iter().zip(&scanned) {
            let solo = md_run(m, 64, &cfg);
            assert_eq!(solo.seconds_per_step, s.seconds_per_step);
        }
        let flat = bluegene_p().with_flat_contention();
        let traces = md_traces(64, &cfg);
        let sim_cfg = SimConfig::new(flat, 64, ExecMode::Vn);
        let replay = TraceSim::new(sim_cfg.clone()).replay_traces(&traces);
        let dag = TraceDag::compile_world(&traces).evaluate(&sim_cfg);
        assert_eq!(replay.finish, dag.finish);
        assert_eq!(replay.busy, dag.busy);
    }

    /// ns/day sanity: hundreds of atoms per rank at 1 fs steps lands in
    /// the 0.1–10 ns/day band of 2008-era MD.
    #[test]
    fn ns_per_day_plausible() {
        let r = md_run(&xt4_dc(), 1024, &MdConfig::lammps_rub());
        assert!(r.ns_per_day > 0.5 && r.ns_per_day < 30.0, "{} ns/day", r.ns_per_day);
    }
}
