//! The Community Atmosphere Model proxy (Figure 5).
//!
//! CAM alternates a *dynamics* phase (the dycore) with a *physics* phase
//! (§III.B). The spectral Eulerian dycore decomposes over latitudes —
//! which caps pure-MPI parallelism at the latitude count — and spends its
//! communication in transposes between grid and spectral space. The
//! finite-volume dycore decomposes in 2-D with halo exchanges. Physics is
//! per-column work that load-balances and threads well, which is why
//! "OpenMP parallelism ... provides additional scalability for large
//! processor counts": hybrid runs place 4× fewer MPI ranks on the same
//! cores, staying inside the dycore's rank limit while threads mop up
//! the physics.

use hpcsim_machine::{ExecMode, MachineSpec, Workload};
use hpcsim_mpi::{CommId, FnProgram, Mpi, SimConfig, TraceSim};
use hpcsim_net::DType;
use hpcsim_topo::Grid2D;
use serde::Serialize;

/// Which dynamical core (compile-time choice in CAM).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Dycore {
    /// Spectral Eulerian (T42, T85 resolutions).
    SpectralEulerian,
    /// Finite-volume semi-Lagrangian (1.9×2.5°, 0.47×0.63°).
    FiniteVolume,
}

/// A CAM benchmark problem.
#[derive(Debug, Clone, Serialize)]
pub struct CamConfig {
    /// Problem label ("T42L26", "FV 1.9x2.5 L26", …).
    pub name: &'static str,
    /// Dycore selection.
    pub dycore: Dycore,
    /// Longitudes.
    pub nlon: u64,
    /// Latitudes (the spectral dycore's MPI rank cap).
    pub nlat: u64,
    /// Vertical levels.
    pub nlev: u64,
    /// Model steps per simulated day.
    pub steps_per_day: f64,
}

impl CamConfig {
    /// T42L26: 64×128 horizontal grid, 26 levels.
    pub fn t42() -> Self {
        CamConfig {
            name: "T42L26",
            dycore: Dycore::SpectralEulerian,
            nlon: 128,
            nlat: 64,
            nlev: 26,
            steps_per_day: 72.0,
        }
    }

    /// T85L26: 128×256 horizontal grid, 26 levels.
    pub fn t85() -> Self {
        CamConfig {
            name: "T85L26",
            dycore: Dycore::SpectralEulerian,
            nlon: 256,
            nlat: 128,
            nlev: 26,
            steps_per_day: 144.0,
        }
    }

    /// FV 1.9×2.5 L26: 96×144 grid.
    pub fn fv_2deg() -> Self {
        CamConfig {
            name: "FV 1.9x2.5 L26",
            dycore: Dycore::FiniteVolume,
            nlon: 144,
            nlat: 96,
            nlev: 26,
            steps_per_day: 96.0,
        }
    }

    /// FV 0.47×0.63 L26: 384×576 grid.
    pub fn fv_half_deg() -> Self {
        CamConfig {
            name: "FV 0.47x0.63 L26",
            dycore: Dycore::FiniteVolume,
            nlon: 576,
            nlat: 384,
            nlev: 26,
            steps_per_day: 384.0,
        }
    }

    /// Maximum useful MPI ranks for this problem.
    pub fn max_ranks(&self) -> usize {
        match self.dycore {
            Dycore::SpectralEulerian => self.nlat as usize,
            // FV: 2-D decomposition down to 3-latitude strips
            Dycore::FiniteVolume => (self.nlat as usize / 3) * (self.nlon as usize / 4),
        }
    }
}

/// Result of a CAM proxy run.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct CamResult {
    /// Simulated years per day.
    pub years_per_day: f64,
    /// Cores actually used (ranks × threads).
    pub cores: usize,
}

/// Run CAM on `ranks` MPI tasks × `threads` OpenMP threads. Ranks above
/// the dycore cap do dynamics-idle physics only (CAM would refuse; we
/// clamp instead and the caller sees flat scaling).
pub fn cam_run(
    machine: &MachineSpec,
    mode: ExecMode,
    ranks: usize,
    threads: u32,
    cfg: &CamConfig,
) -> CamResult {
    let ranks = ranks.min(cfg.max_ranks()).max(1);
    let mut sim_cfg = SimConfig::new(machine.clone(), ranks, mode);
    sim_cfg.threads = threads;
    let mut sim = TraceSim::new(sim_cfg);
    let prog = cfg.clone();
    let res = sim.run(&FnProgram(move |mpi: &mut Mpi| {
        record_step(mpi, &prog, threads);
    }));
    let t_day = cfg.steps_per_day * res.makespan().as_secs();
    CamResult { years_per_day: 86_400.0 / (t_day * 365.0), cores: ranks * threads as usize }
}

fn record_step(mpi: &mut Mpi, cfg: &CamConfig, threads: u32) {
    let p = mpi.size() as u64;
    let cols_total = cfg.nlon * cfg.nlat;
    let cols_local = (cols_total / p).max(1);
    let pts_local = cols_local * cfg.nlev;

    match cfg.dycore {
        Dycore::SpectralEulerian => {
            // Legendre + Fourier transforms: O(nlat) work per column
            // row, plus a transpose between grid and spectral space.
            // The spectral transforms are irregular application code —
            // they never mapped well onto the Double Hummer (part of why
            // the paper's spectral gap exceeds the FV gap).
            mpi.compute_threads(
                Workload::Stencil {
                    points: pts_local,
                    flops_per_point: 40.0 * cfg.nlat as f64,
                    bytes_per_point: 64.0,
                },
                threads,
            );
            // grid↔spectral transpose (twice per step)
            let bytes_per_pair = (8 * pts_local / p).max(8);
            mpi.alltoall(CommId::WORLD, bytes_per_pair);
            mpi.alltoall(CommId::WORLD, bytes_per_pair);
        }
        Dycore::FiniteVolume => {
            // 2-D decomposition with wide halos (semi-Lagrangian). The
            // FV remap loops are long and regular — they vectorize on
            // the Double Hummer where the spectral code does not, which
            // is why the paper finds "the comparison is somewhat better
            // for the finite volume dycore".
            let grid = Grid2D::near_square(p as usize);
            let me = mpi.rank();
            mpi.compute_threads(
                Workload::Custom {
                    flops: pts_local as f64 * 2200.0,
                    dram_bytes: pts_local as f64 * 120.0,
                    simd_eff: 0.16,
                    serial_frac: 0.05,
                },
                threads,
            );
            let halo_bytes = (3 * 8 * cfg.nlev * (cfg.nlon / grid.cols as u64).max(1)).max(64);
            let (n, s) = (grid.north(me), grid.south(me));
            let r1 = mpi.irecv(s, 1, halo_bytes);
            let r2 = mpi.irecv(n, 2, halo_bytes);
            let s1 = mpi.isend(n, 1, halo_bytes);
            let s2 = mpi.isend(s, 2, halo_bytes);
            mpi.waitall(&[r1, r2, s1, s2]);
        }
    }

    // Physics: per-column parameterizations; threads nearly ideal,
    // load-balancing exchange beforehand (small).
    mpi.allreduce(CommId::WORLD, 64, DType::F64); // load-balance bookkeeping
    mpi.compute_threads(
        Workload::Chemistry { points: cols_local, flops_per_point: 400_000.0 },
        threads,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcsim_machine::registry::{bluegene_p, xt3, xt4_qc};


    /// Fig 5(a): hybrid ≈ pure MPI at small core counts, but extends
    /// scalability at large counts (the dycore caps MPI ranks).
    #[test]
    fn hybrid_extends_scaling_t42() {
        let m = bluegene_p();
        let cfg = CamConfig::t42();
        // 256 cores: MPI capped at 64 ranks; hybrid uses 64 ranks × 4
        let mpi_only = cam_run(&m, ExecMode::Vn, 256, 1, &cfg);
        let hybrid = cam_run(&m, ExecMode::Smp, 64, 4, &cfg);
        assert!(
            hybrid.years_per_day > mpi_only.years_per_day * 1.5,
            "hybrid {:.1} vs MPI {:.1}",
            hybrid.years_per_day,
            mpi_only.years_per_day
        );
        // at small counts they are comparable
        let mpi_small = cam_run(&m, ExecMode::Vn, 16, 1, &cfg);
        let hyb_small = cam_run(&m, ExecMode::Smp, 4, 4, &cfg);
        let ratio = hyb_small.years_per_day / mpi_small.years_per_day;
        assert!((0.6..1.5).contains(&ratio), "small-count ratio {ratio:.2}");
    }

    /// Fig 5(c): "the BG/P is never less than a factor of 2.1 slower
    /// than the XT3 and 3.1 slower than the XT4" for spectral problems.
    #[test]
    fn xt_advantage_spectral() {
        let cfg = CamConfig::t85();
        for cores in [32usize, 64, 128] {
            let b = cam_run(&bluegene_p(), ExecMode::Vn, cores, 1, &cfg);
            let x3 = cam_run(&xt3(), ExecMode::Vn, cores, 1, &cfg);
            let x4 = cam_run(&xt4_qc(), ExecMode::Vn, cores, 1, &cfg);
            let r3 = x3.years_per_day / b.years_per_day;
            let r4 = x4.years_per_day / b.years_per_day;
            assert!(r3 > 1.8 && r3 < 5.0, "XT3/BGP {r3:.2} at {cores}");
            assert!(r4 > 2.2 && r4 < 5.5, "XT4/BGP {r4:.2} at {cores}");
        }
    }

    /// Fig 5(b): the FV dycore comparison is "somewhat better" for BG/P
    /// (smaller XT advantage than spectral).
    #[test]
    fn fv_gap_smaller_than_spectral() {
        let cores = 96;
        let spec = CamConfig::t85();
        let fv = CamConfig::fv_2deg();
        let gap = |cfg: &CamConfig| {
            let b = cam_run(&bluegene_p(), ExecMode::Vn, cores, 1, cfg);
            let x = cam_run(&xt4_qc(), ExecMode::Vn, cores, 1, cfg);
            x.years_per_day / b.years_per_day
        };
        let g_spec = gap(&spec);
        let g_fv = gap(&fv);
        assert!(g_fv < g_spec, "FV gap {g_fv:.2} should be < spectral {g_spec:.2}");
    }

    /// Scaling stops at the dycore's rank cap for pure MPI.
    #[test]
    fn mpi_scaling_caps_at_nlat() {
        let m = bluegene_p();
        let cfg = CamConfig::t42();
        let at_cap = cam_run(&m, ExecMode::Vn, 64, 1, &cfg);
        let beyond = cam_run(&m, ExecMode::Vn, 256, 1, &cfg);
        let ratio = beyond.years_per_day / at_cap.years_per_day;
        assert!((0.95..1.05).contains(&ratio), "beyond-cap ratio {ratio:.3}");
    }

    /// T85 is a bigger problem: lower years/day than T42 at equal cores.
    #[test]
    fn resolution_ordering() {
        let m = xt4_qc();
        let t42 = cam_run(&m, ExecMode::Vn, 64, 1, &CamConfig::t42());
        let t85 = cam_run(&m, ExecMode::Vn, 64, 1, &CamConfig::t85());
        assert!(t42.years_per_day > 2.0 * t85.years_per_day);
    }

    /// Larger FV problem scales further but runs slower in absolute terms.
    #[test]
    fn fv_half_degree_is_heavy() {
        let m = bluegene_p();
        let coarse = cam_run(&m, ExecMode::Smp, 128, 4, &CamConfig::fv_2deg());
        let fine = cam_run(&m, ExecMode::Smp, 128, 4, &CamConfig::fv_half_deg());
        assert!(fine.years_per_day < coarse.years_per_day / 4.0);
    }
}
