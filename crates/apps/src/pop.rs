//! The Parallel Ocean Program 0.1° proxy (Figure 4).
//!
//! POP's performance is "characterized by the performance of a baroclinic
//! phase and a barotropic phase" (§III.A). The baroclinic phase is a 3-D
//! nearest-neighbour stencil sweep that scales well; the barotropic phase
//! solves a 2-D implicit system with a preconditioned conjugate-gradient
//! iteration whose per-iteration global reduction makes it latency-bound
//! — the phase that eventually dominates on the XT but keeps improving on
//! BG/P thanks to the tree network (Fig 4d).
//!
//! The proxy reproduces the paper's measurement methodology exactly: a
//! timing barrier between the phases so that baroclinic load imbalance is
//! not misattributed to the barotropic solver (Fig 4b).

use hpcsim_engine::SimTime;
use hpcsim_machine::{ExecMode, MachineSpec, Workload};
use hpcsim_mpi::{CommId, FnProgram, Mpi, SimConfig, TraceSim};
use hpcsim_net::DType;
use hpcsim_topo::Grid2D;
use serde::Serialize;

/// Phase-mark labels.
const MARK_STEP_START: u32 = 10;
const MARK_BAROCLINIC_END: u32 = 11;
const MARK_BARRIER_END: u32 = 12;
const MARK_BAROTROPIC_END: u32 = 13;

/// POP benchmark configuration (defaults: the 0.1° tenth-degree problem).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct PopConfig {
    /// Horizontal grid.
    pub nx: u64,
    /// Horizontal grid.
    pub ny: u64,
    /// Vertical levels.
    pub nz: u64,
    /// Baroclinic steps per simulated model day.
    pub steps_per_day: f64,
    /// Conjugate-gradient iterations per baroclinic step.
    pub cg_iters: u64,
    /// Use the Chronopoulos–Gear single-reduction variant.
    pub chron_gear: bool,
    /// CG iterations actually simulated (time is scaled to `cg_iters`);
    /// keeps trace sizes bounded at 40,000 ranks.
    pub cg_sim: u64,
    /// Baroclinic flops per grid point (calibrated constant).
    pub flops_per_point: f64,
    /// Fractional land/ocean load imbalance across ranks.
    pub imbalance: f64,
}

impl Default for PopConfig {
    fn default() -> Self {
        PopConfig {
            nx: 3600,
            ny: 2400,
            nz: 40,
            steps_per_day: 200.0,
            cg_iters: 180,
            chron_gear: true,
            cg_sim: 24,
            flops_per_point: 1600.0,
            imbalance: 0.18,
        }
    }
}

/// Result of a POP proxy run.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct PopResult {
    /// Simulated years per wall-clock day — the paper's headline metric.
    pub syd: f64,
    /// Baroclinic phase, seconds per simulated day (process 0).
    pub baroclinic_s: f64,
    /// Timing-barrier (load imbalance), seconds per simulated day.
    pub barrier_s: f64,
    /// Barotropic phase, seconds per simulated day (process 0).
    pub barotropic_s: f64,
}

/// Run the POP proxy on `ranks` tasks.
pub fn pop_run(
    machine: &MachineSpec,
    mode: ExecMode,
    ranks: usize,
    threads: u32,
    cfg: &PopConfig,
) -> PopResult {
    let mut sim_cfg = SimConfig::new(machine.clone(), ranks, mode);
    sim_cfg.threads = threads;
    let mut sim = TraceSim::new(sim_cfg);

    let grid = Grid2D::near_square(ranks);
    let prog_cfg = cfg.clone();
    let res = sim.run(&FnProgram(move |mpi: &mut Mpi| {
        record_step(mpi, &prog_cfg, grid);
    }));

    // phase times for process 0, per simulated day
    let cfgd = cfg;
    let steps = cfgd.steps_per_day;
    let bc = res.mark_span(0, MARK_STEP_START, MARK_BAROCLINIC_END).unwrap().as_secs();
    let bar = res.mark_span(0, MARK_BAROCLINIC_END, MARK_BARRIER_END).unwrap().as_secs();
    let bt_sim = res.mark_span(0, MARK_BARRIER_END, MARK_BAROTROPIC_END).unwrap().as_secs();
    let bt = bt_sim * cfgd.cg_iters as f64 / cfgd.cg_sim as f64;
    // whole-step wall time: the slowest rank, with the barotropic scaled
    let step_wall = res.makespan().as_secs() + bt - bt_sim;
    let t_day = steps * step_wall;
    PopResult {
        syd: 86_400.0 / (t_day * 365.0),
        baroclinic_s: bc * steps,
        barrier_s: bar * steps,
        barotropic_s: bt * steps,
    }
}

/// Record one baroclinic step + barotropic solve for this rank.
fn record_step(mpi: &mut Mpi, cfg: &PopConfig, grid: Grid2D) {
    let p = mpi.size() as u64;
    let me = mpi.rank();
    let pts3d = cfg.nx * cfg.ny * cfg.nz / p;
    let pts2d = (cfg.nx * cfg.ny / p).max(1);
    // local block edge (points) for halo sizing
    let bx = cfg.nx / grid.cols as u64;
    let by = cfg.ny / grid.rows as u64;

    mpi.mark(MARK_STEP_START);

    // --- baroclinic: 3-D stencil sweep + land/ocean imbalance ---------
    mpi.compute(Workload::Stencil {
        points: pts3d.max(1),
        flops_per_point: cfg.flops_per_point,
        bytes_per_point: 96.0,
    });
    // Land/ocean load imbalance is REGIONAL — continents are contiguous,
    // so a rank's neighbours carry similar loads and halo exchanges do
    // not absorb the skew; only the global barrier does (which is how
    // the paper could measure it, Fig 4b). A smooth bump centred in the
    // middle of the process grid, zero at rank 0, models this.
    let (row, col) = grid.pos(me);
    let tau = std::f64::consts::TAU;
    let rphase = row as f64 / grid.rows as f64;
    let cphase = col as f64 / grid.cols as f64;
    let jitter = 0.25 * (1.0 - (tau * rphase).cos()) * (1.0 - (tau * cphase).cos());
    let extra = cfg.imbalance * jitter;
    mpi.compute(Workload::Stencil {
        points: ((pts3d.max(1)) as f64 * extra) as u64,
        flops_per_point: cfg.flops_per_point,
        bytes_per_point: 96.0,
    });
    // 2-D halo of the 3-D blocks: 4 neighbours, ghost width 2
    let bytes_ns = 2 * bx.max(1) * cfg.nz * 8 * 3;
    let bytes_ew = 2 * by.max(1) * cfg.nz * 8 * 3;
    let (n, s, w, e) = (grid.north(me), grid.south(me), grid.west(me), grid.east(me));
    let r1 = mpi.irecv(s, 1, bytes_ns);
    let r2 = mpi.irecv(n, 2, bytes_ns);
    let s1 = mpi.isend(n, 1, bytes_ns);
    let s2 = mpi.isend(s, 2, bytes_ns);
    mpi.waitall(&[r1, r2, s1, s2]);
    let r3 = mpi.irecv(e, 3, bytes_ew);
    let r4 = mpi.irecv(w, 4, bytes_ew);
    let s3 = mpi.isend(w, 3, bytes_ew);
    let s4 = mpi.isend(e, 4, bytes_ew);
    mpi.waitall(&[r3, r4, s3, s4]);

    mpi.mark(MARK_BAROCLINIC_END);
    // --- the paper's timing barrier (absorbs the imbalance) ----------
    mpi.barrier(CommId::WORLD);
    mpi.mark(MARK_BARRIER_END);

    // --- barotropic: 2-D PCG, latency-bound ---------------------------
    // per iteration: 9-pt stencil update + halo + global reduction(s);
    // Chronopoulos–Gear fuses the two reductions into one at slightly
    // more local work.
    let (reductions, flop_scale) = if cfg.chron_gear { (1, 1.15) } else { (2, 1.0) };
    let halo_est = SimTime::from_us_f64(4.0 * 2.0); // four small neighbour msgs
    for _ in 0..cfg.cg_sim {
        mpi.compute(Workload::Stencil {
            points: pts2d,
            flops_per_point: 34.0 * flop_scale,
            bytes_per_point: 48.0,
        });
        mpi.delay(halo_est);
        for _ in 0..reductions {
            mpi.allreduce(CommId::WORLD, 8, DType::F64);
        }
    }
    mpi.mark(MARK_BAROTROPIC_END);
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcsim_machine::registry::{bluegene_p, xt4_dc};

    fn bgp(ranks: usize, mode: ExecMode) -> PopResult {
        pop_run(&bluegene_p(), mode, ranks, 1, &PopConfig::default())
    }
    fn xt(ranks: usize) -> PopResult {
        pop_run(&xt4_dc(), ExecMode::Vn, ranks, 1, &PopConfig::default())
    }

    /// Paper anchor: BG/P obtains ≈3.6 SYD at 8192 cores (Table 3 /
    /// Fig 4a). Accept ±35% — this is a proxy, the shape tests below are
    /// the strict ones.
    #[test]
    fn bgp_syd_anchor_8192() {
        let r = bgp(8192, ExecMode::Vn);
        assert!(r.syd > 2.3 && r.syd < 4.9, "BG/P SYD(8192) = {:.2}", r.syd);
    }

    /// Paper anchor: XT4 ≈ 3.6× BG/P at 8000 processes (Fig 4c).
    #[test]
    fn xt_ratio_at_8k() {
        let b = bgp(8192, ExecMode::Vn);
        let x = xt(8192);
        let ratio = x.syd / b.syd;
        assert!(ratio > 2.6 && ratio < 4.6, "XT4/BG-P SYD ratio {ratio:.2}");
    }

    /// Fig 4a: scaling is near-linear out to 8000 processes on BG/P.
    #[test]
    fn bgp_scales_to_8k() {
        let a = bgp(2048, ExecMode::Vn);
        let b = bgp(8192, ExecMode::Vn);
        let speedup = b.syd / a.syd;
        assert!(speedup > 3.0, "2048→8192 speedup {speedup:.2}");
    }

    /// Fig 4a: performance is relatively insensitive to execution mode.
    #[test]
    fn mode_insensitivity() {
        let vn = bgp(2048, ExecMode::Vn);
        let smp = bgp(2048, ExecMode::Smp);
        let ratio = vn.syd / smp.syd;
        assert!((0.75..1.35).contains(&ratio), "VN/SMP ratio {ratio:.2}");
    }

    /// Fig 4b: the baroclinic phase dominates at moderate scale, and the
    /// measured imbalance (barrier time) is comparable to the barotropic
    /// cost in the 8000–20000 range.
    #[test]
    fn phase_structure_at_8k() {
        let r = bgp(8192, ExecMode::Vn);
        assert!(r.baroclinic_s > r.barotropic_s, "{r:?}");
        let ratio = r.barrier_s / r.barotropic_s;
        assert!((0.3..4.0).contains(&ratio), "imbalance/barotropic {ratio:.2} ({r:?})");
    }

    /// Fig 4d: XT4 barotropic stops improving beyond ~8000 processes
    /// while BG/P's keeps improving.
    #[test]
    fn barotropic_scaling_divergence() {
        let x8 = xt(8192);
        let x16 = xt(16384);
        assert!(
            x16.barotropic_s > x8.barotropic_s * 0.85,
            "XT barotropic should plateau: {:.2}s -> {:.2}s",
            x8.barotropic_s,
            x16.barotropic_s
        );
        let b8 = bgp(8192, ExecMode::Vn);
        let b16 = bgp(16384, ExecMode::Vn);
        assert!(
            b16.barotropic_s < b8.barotropic_s * 0.95,
            "BG/P barotropic should improve: {:.2}s -> {:.2}s",
            b8.barotropic_s,
            b16.barotropic_s
        );
    }

    /// Fig 4a: the C-G and standard solvers perform within a few percent.
    #[test]
    fn solver_variant_minor() {
        let cg = pop_run(&bluegene_p(), ExecMode::Vn, 2048, 1, &PopConfig::default());
        let std = pop_run(
            &bluegene_p(),
            ExecMode::Vn,
            2048,
            1,
            &PopConfig { chron_gear: false, ..PopConfig::default() },
        );
        let ratio = cg.syd / std.syd;
        assert!((0.85..1.25).contains(&ratio), "CG/std ratio {ratio:.2}");
    }

    /// The C-G variant's advantage grows with scale (fewer reductions).
    #[test]
    fn chron_gear_helps_barotropic_at_scale() {
        let run = |chron| {
            pop_run(
                &xt4_dc(),
                ExecMode::Vn,
                8192,
                1,
                &PopConfig { chron_gear: chron, ..PopConfig::default() },
            )
        };
        assert!(run(true).barotropic_s < run(false).barotropic_s);
    }
}
