//! The GYRO gyrokinetic solver proxy (Figure 7).
//!
//! GYRO propagates a 5-D distribution function with an explicit Eulerian
//! scheme; its "primary communication costs result from calls to
//! MPI_ALLTOALL to transpose distributed arrays" (§III.D). Under strong
//! scaling the per-rank arithmetic shrinks while the transpose latency
//! does not — so the machine with the faster cores (XT4) "quickly runs
//! out of work per process … while the BG/P system continues to scale".
//!
//! Problems:
//! * **B1-std** — 16 toroidal modes, 16×140×8×8×20 grid, 500 steps,
//!   kinetic electrons (more work per point, no FFT).
//! * **B3-gtc** — 64 modes, 64×400×8×8×20 grid, 100 steps, FFT-based
//!   field solve. Its memory footprint forces DUAL mode on BG/P.

use hpcsim_machine::{ExecMode, MachineSpec, Workload};
use hpcsim_mpi::{CommId, FnProgram, Mpi, SimConfig, TraceSim};
use hpcsim_net::DType;
use serde::Serialize;

/// Which benchmark problem.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum GyroProblem {
    /// 16-mode electrostatic case, kinetic electrons.
    B1Std,
    /// 64-mode adiabatic case, FFT field solve.
    B3Gtc,
    /// The paper's memory-reduced weak-scaling variant of B3-gtc.
    B3GtcModified,
}

/// GYRO proxy configuration.
#[derive(Debug, Clone, Serialize)]
pub struct GyroConfig {
    /// Problem selection.
    pub problem: GyroProblem,
    /// Simulated timesteps (results are per step; a few suffice).
    pub steps: u32,
}

impl GyroConfig {
    /// The B1-std benchmark.
    pub fn b1_std() -> Self {
        GyroConfig { problem: GyroProblem::B1Std, steps: 4 }
    }

    /// The B3-gtc benchmark.
    pub fn b3_gtc() -> Self {
        GyroConfig { problem: GyroProblem::B3Gtc, steps: 4 }
    }

    /// Grid dimensions (modes, radial, v-space…).
    fn grid_points(&self) -> u64 {
        match self.problem {
            GyroProblem::B1Std => 16 * 140 * 8 * 8 * 20,
            GyroProblem::B3Gtc => 64 * 400 * 8 * 8 * 20,
            // modified to fit BG/P memory: half the radial domain
            GyroProblem::B3GtcModified => 64 * 200 * 8 * 8 * 20,
        }
    }

    /// Flops per grid point per step (kinetic electrons cost more).
    fn flops_per_point(&self) -> f64 {
        match self.problem {
            GyroProblem::B1Std => 900.0,
            GyroProblem::B3Gtc | GyroProblem::B3GtcModified => 260.0,
        }
    }

    /// Per-rank replicated memory (fields, geometry, FFT workspaces) —
    /// the footprint that forced DUAL mode on BG/P for B3-gtc, and that
    /// the "modified" variant shrank to fit.
    fn replicated_bytes(&self) -> f64 {
        match self.problem {
            GyroProblem::B1Std => 150e6,
            GyroProblem::B3Gtc => 600e6,
            GyroProblem::B3GtcModified => 200e6,
        }
    }

    /// Per-task memory footprint in bytes at `ranks` tasks: replicated
    /// arrays plus this task's slice of the distribution function.
    pub fn mem_per_task(&self, ranks: usize) -> f64 {
        self.replicated_bytes() + 16.0 * 8.0 * self.grid_points() as f64 / ranks as f64
    }

    /// Rank-count granularity (B1 runs on multiples of 16, B3 of 64).
    pub fn rank_multiple(&self) -> usize {
        match self.problem {
            GyroProblem::B1Std => 16,
            _ => 64,
        }
    }
}

/// Result of a GYRO run.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct GyroResult {
    /// Wall seconds per timestep.
    pub seconds_per_step: f64,
    /// The execution mode actually used (DUAL when memory demands it).
    pub mode: ExecMode,
}

/// Pick the densest execution mode whose per-task memory fits.
pub fn mode_for_memory(machine: &MachineSpec, cfg: &GyroConfig, ranks: usize) -> ExecMode {
    for mode in [ExecMode::Vn, ExecMode::Dual, ExecMode::Smp] {
        let per_task =
            mode.mem_per_task(machine.mem.capacity_bytes(), machine.cores_per_node);
        if cfg.mem_per_task(ranks) <= per_task * 0.8 {
            return mode;
        }
    }
    ExecMode::Smp
}

/// Run the GYRO proxy on `ranks` tasks (mode chosen by memory fit).
pub fn gyro_run(machine: &MachineSpec, ranks: usize, cfg: &GyroConfig) -> GyroResult {
    let mode = mode_for_memory(machine, cfg, ranks);
    let mut sim = TraceSim::new(SimConfig::new(machine.clone(), ranks, mode));
    let prog = cfg.clone();
    let res = sim.run(&FnProgram(move |mpi: &mut Mpi| {
        let p = mpi.size() as u64;
        // B1/B3 are strong-scaled (fixed grid over p ranks); the modified
        // B3-gtc is the paper's WEAK-scaled case — constant work per rank
        // ("weakly scaled by keeping the ENERGY GRID size constant").
        let pts_local = match prog.problem {
            GyroProblem::B3GtcModified => prog.grid_points() / 64,
            _ => (prog.grid_points() / p).max(1),
        };
        for _ in 0..prog.steps {
            // RHS evaluation: collisionless streaming + collisions
            mpi.compute(Workload::Stencil {
                points: pts_local,
                flops_per_point: prog.flops_per_point(),
                bytes_per_point: 64.0,
            });
            // field solve: distributed transposes (FFT-based for B3)
            let transpose_bytes = (8 * pts_local / p / 4).max(8);
            mpi.alltoall(CommId::WORLD, transpose_bytes);
            if matches!(prog.problem, GyroProblem::B3Gtc | GyroProblem::B3GtcModified) {
                // FFT along the mode dimension between the transposes
                mpi.compute(Workload::Fft1d { n: (pts_local / 64).max(64) });
                mpi.alltoall(CommId::WORLD, transpose_bytes);
            }
            // time-advance bookkeeping
            mpi.allreduce(CommId::WORLD, 16, DType::F64);
        }
    }));
    GyroResult { seconds_per_step: res.makespan().as_secs() / cfg.steps as f64, mode }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcsim_machine::registry::{bluegene_l, bluegene_p, xt4_qc};

    /// Fig 7(a): B1-std strong scaling — "the XT4 quickly runs out of
    /// work per process …, while the BG/P system continues to scale".
    #[test]
    fn b1_xt_saturates_before_bgp() {
        let cfg = GyroConfig::b1_std();
        let eff = |machine: &MachineSpec| {
            let t128 = gyro_run(machine, 128, &cfg).seconds_per_step;
            let t1024 = gyro_run(machine, 1024, &cfg).seconds_per_step;
            (t128 / t1024) / 8.0 // parallel efficiency of the 8x step
        };
        let e_bgp = eff(&bluegene_p());
        let e_xt = eff(&xt4_qc());
        assert!(e_bgp > e_xt, "efficiency BG/P {e_bgp:.2} vs XT {e_xt:.2}");
        assert!(e_xt < 0.8, "XT must visibly saturate, eff {e_xt:.2}");
        assert!(e_bgp > 0.5, "BG/P keeps scaling, eff {e_bgp:.2}");
    }

    /// Fig 7(b): B3-gtc runs in DUAL mode on BG/P "due to memory
    /// requirements" — VN's 512 MiB per task cannot hold the problem at
    /// moderate rank counts.
    #[test]
    fn b3_forces_dual_mode_on_bgp() {
        let cfg = GyroConfig::b3_gtc();
        let r = gyro_run(&bluegene_p(), 512, &cfg);
        assert_eq!(r.mode, ExecMode::Dual, "BG/P must fall back to DUAL");
        // the XT4's 2 GiB/task in VN mode is fine
        let x = gyro_run(&xt4_qc(), 512, &cfg);
        assert_eq!(x.mode, ExecMode::Vn);
    }

    /// Fig 7(b): both systems scale B3-gtc to 2048 without significant
    /// efficiency drop.
    #[test]
    fn b3_scales_on_both() {
        let cfg = GyroConfig::b3_gtc();
        for machine in [bluegene_p(), xt4_qc()] {
            let t256 = gyro_run(&machine, 256, &cfg).seconds_per_step;
            let t2048 = gyro_run(&machine, 2048, &cfg).seconds_per_step;
            let eff = (t256 / t2048) / 8.0;
            assert!(eff > 0.4, "{}: B3 efficiency {eff:.2}", machine.id);
        }
    }

    /// Fig 7(c): weak-scaled modified B3-gtc — BG/P and BG/L numbers are
    /// "almost the same".
    #[test]
    fn bgp_tracks_bgl_on_weak_scaling() {
        let cfg = GyroConfig { problem: GyroProblem::B3GtcModified, steps: 4 };
        for ranks in [128usize, 512] {
            let p = gyro_run(&bluegene_p(), ranks, &cfg).seconds_per_step;
            let l = gyro_run(&bluegene_l(), ranks, &cfg).seconds_per_step;
            let ratio = p / l;
            assert!((0.5..1.3).contains(&ratio), "BGP/BGL {ratio:.2} at {ranks}");
        }
        let t128 = gyro_run(&bluegene_p(), 128, &cfg).seconds_per_step;
        let t1024 = gyro_run(&bluegene_p(), 1024, &cfg).seconds_per_step;
        let growth = t1024 / t128;
        assert!((0.8..1.8).contains(&growth), "weak-scaling growth {growth:.2}");
    }

    /// Strong scaling sanity: more ranks, less time per step.
    #[test]
    fn time_decreases_with_ranks() {
        let cfg = GyroConfig::b1_std();
        let t64 = gyro_run(&bluegene_p(), 64, &cfg).seconds_per_step;
        let t512 = gyro_run(&bluegene_p(), 512, &cfg).seconds_per_step;
        assert!(t512 < t64 / 3.0);
    }
}
