//! # hpcsim-apps
//!
//! Proxy applications for §III of the paper — the science codes whose
//! communication/computation structure the evaluation dissects:
//!
//! * [`pop`] — the Parallel Ocean Program 0.1° benchmark (Fig 4):
//!   a compute-heavy baroclinic phase with nearest-neighbour halos and a
//!   latency-bound barotropic conjugate-gradient solver with a global
//!   reduction per iteration (standard PCG or the Chronopoulos–Gear
//!   single-reduction variant), plus the paper's timing-barrier
//!   methodology for separating load imbalance from solver time.
//! * [`cam`] — the Community Atmosphere Model (Fig 5): spectral Eulerian
//!   (T42/T85) and finite-volume dycores, pure-MPI vs hybrid
//!   MPI/OpenMP, with the dycore's parallelism limit and the physics'
//!   thread scaling.
//! * [`s3d`] — the DNS combustion solver (Fig 6): weak-scaled 50³
//!   points/rank, six-stage Runge–Kutta, ghost exchanges and CO-H₂
//!   chemistry, reported as cost per grid point per step.
//! * [`gyro`] — the gyrokinetic tokamak solver (Fig 7): B1-std and
//!   B3-gtc strong scaling (Alltoall-transpose-dominated) and the
//!   weak-scaled modified B3-gtc, with the DUAL-mode memory constraint.
//! * [`md`] — molecular dynamics on the 290,220-atom RuBisCO system
//!   (Fig 8): a LAMMPS-like spatial-decomposition code and a
//!   PMEMD-like PME code whose scaling dies in Allreduce latency and
//!   FFT exchanges.
//!
//! Every proxy takes a machine, mode and rank count, runs on the
//! simulated MPI, and returns the paper's own metric (simulated years
//! per day, cost per grid point, …).

pub mod cam;
pub mod gyro;
pub mod md;
pub mod pop;
pub mod s3d;

pub use cam::{cam_run, CamConfig, CamResult, Dycore};
pub use gyro::{gyro_run, GyroConfig, GyroProblem, GyroResult};
pub use md::{
    md_eval_traces, md_run, md_run_machines, md_run_machines_traces, md_run_probe, md_traces,
    MdCode, MdConfig, MdResult,
};
pub use pop::{pop_run, PopConfig, PopResult};
pub use s3d::{s3d_run, S3dConfig, S3dResult};
