//! The S3D direct numerical simulation proxy (Figure 6).
//!
//! S3D solves compressible reacting Navier–Stokes on a structured 3-D
//! mesh with eighth-order finite differences (9-point stencils per
//! direction), tenth-order filters (11-point), six-stage fourth-order
//! Runge–Kutta, and CO-H₂ chemistry with 11 species (§III.C). Each rank
//! owns 50³ points regardless of scale (weak scaling); communication is
//! ghost-zone exchange with the six face neighbours via non-blocking
//! sends/receives, plus a tiny global reduction for monitoring. The
//! paper's Figure 6 metric is **cost per grid point per time step** —
//! flat curves mean perfect weak scaling.

use hpcsim_machine::{ExecMode, MachineSpec, Workload};
use hpcsim_mpi::{CommId, FnProgram, Mpi, SimConfig, TraceSim};
use hpcsim_net::DType;
use hpcsim_topo::Grid3D;
use serde::Serialize;

/// S3D configuration (defaults: the paper's pressure-wave test).
#[derive(Debug, Clone, Serialize)]
pub struct S3dConfig {
    /// Grid points per rank along each axis (50 in the paper).
    pub pts_per_rank_edge: u64,
    /// Chemical species (CO-H₂: 11).
    pub species: u64,
    /// Runge–Kutta stages (6).
    pub rk_stages: u32,
    /// Timesteps to simulate (cost is per step; a few suffice).
    pub steps: u32,
}

impl Default for S3dConfig {
    fn default() -> Self {
        S3dConfig { pts_per_rank_edge: 50, species: 11, rk_stages: 6, steps: 2 }
    }
}

/// Result of an S3D run.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct S3dResult {
    /// Core-hours per grid point per step — Figure 6's y-axis.
    pub core_hours_per_point_step: f64,
    /// Wall seconds per step.
    pub seconds_per_step: f64,
}

/// Run the S3D proxy weak-scaled over `ranks` tasks.
pub fn s3d_run(machine: &MachineSpec, mode: ExecMode, ranks: usize, cfg: &S3dConfig) -> S3dResult {
    let mut sim = TraceSim::new(SimConfig::new(machine.clone(), ranks, mode));
    let prog = cfg.clone();
    let res = sim.run(&FnProgram(move |mpi: &mut Mpi| {
        let grid = Grid3D::near_cube(mpi.size());
        for _ in 0..prog.steps {
            record_step(mpi, &prog, grid);
        }
    }));
    let seconds_per_step = res.makespan().as_secs() / cfg.steps as f64;
    let pts = cfg.pts_per_rank_edge.pow(3) as f64; // per rank
    // total core-seconds per step / total points
    let core_s = seconds_per_step * ranks as f64;
    let total_pts = pts * ranks as f64;
    S3dResult {
        core_hours_per_point_step: core_s / total_pts / 3600.0,
        seconds_per_step,
    }
}

fn record_step(mpi: &mut Mpi, cfg: &S3dConfig, grid: Grid3D) {
    let edge = cfg.pts_per_rank_edge;
    let pts = edge * edge * edge;
    let vars = cfg.species + 5; // species + density, momentum, energy
    // ghost-zone: 4-deep faces of all transported variables
    let face_bytes = 4 * edge * edge * 8 * vars;
    let me = mpi.rank();

    for stage in 0..cfg.rk_stages {
        // exchange ghost zones with the six face neighbours
        let tag0 = stage * 8;
        let nbrs = grid.face_neighbors(me);
        let mut reqs = Vec::with_capacity(12);
        for (i, &nb) in nbrs.iter().enumerate() {
            reqs.push(mpi.irecv(nb, tag0 + i as u32, face_bytes));
        }
        for (i, &nb) in nbrs.iter().enumerate() {
            // the matching send uses the neighbour's receive tag from the
            // opposite direction: pair directions (0,1),(2,3),(4,5)
            let opposite = [1u32, 0, 3, 2, 5, 4][i];
            reqs.push(mpi.isend(nb, tag0 + opposite, face_bytes));
        }
        mpi.waitall(&reqs);
        // derivatives + filters: 9/11-pt stencils over all variables
        mpi.compute(Workload::Stencil {
            points: pts,
            flops_per_point: 40.0 * vars as f64, // per stage
            bytes_per_point: 16.0 * vars as f64,
        });
        // chemistry: reaction rates for all species
        mpi.compute(Workload::Chemistry {
            points: pts,
            flops_per_point: 190.0 * cfg.species as f64,
        });
    }
    // monitoring reduction once per step
    mpi.allreduce(CommId::WORLD, 64, DType::F64);
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcsim_machine::registry::{bluegene_p, xt3, xt4_qc};

    /// Fig 6: cost per grid point per step is FLAT under weak scaling —
    /// "S3D exhibits excellent parallel performance".
    #[test]
    fn weak_scaling_is_flat() {
        let m = bluegene_p();
        let costs: Vec<f64> = [8usize, 64, 512, 1728]
            .iter()
            .map(|&p| s3d_run(&m, ExecMode::Vn, p, &S3dConfig::default()).core_hours_per_point_step)
            .collect();
        let min = costs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = costs.iter().cloned().fold(0.0, f64::max);
        assert!(max / min < 1.15, "weak-scaling spread {:.3} ({costs:?})", max / min);
    }

    /// Fig 6: per-core cost ordering BG/P > XT3 ≳ XT4 (the XT's faster
    /// cores), with BG/P roughly 2.5–4× the XT4/QC cost.
    #[test]
    fn cost_ordering_across_machines() {
        let p = 512;
        let cfg = S3dConfig::default();
        let b = s3d_run(&bluegene_p(), ExecMode::Vn, p, &cfg).core_hours_per_point_step;
        let x3 = s3d_run(&xt3(), ExecMode::Vn, p, &cfg).core_hours_per_point_step;
        let x4 = s3d_run(&xt4_qc(), ExecMode::Vn, p, &cfg).core_hours_per_point_step;
        assert!(b > x3 && b > x4, "BG/P {b:.2e} vs XT3 {x3:.2e}, XT4 {x4:.2e}");
        let ratio = b / x4;
        assert!((2.0..4.5).contains(&ratio), "BGP/XT4QC {ratio:.2}");
    }

    /// Absolute plausibility: tens of µs of core time per point per step
    /// on the XT — i.e. 1e-8-ish core-hours.
    #[test]
    fn absolute_cost_plausible() {
        let r = s3d_run(&xt4_qc(), ExecMode::Vn, 64, &S3dConfig::default());
        let core_us = r.core_hours_per_point_step * 3600.0 * 1e6;
        assert!(core_us > 2.0 && core_us < 120.0, "{core_us:.1} core-µs/pt/step");
    }

    /// More species cost more.
    #[test]
    fn chemistry_scales_with_species() {
        let m = xt3();
        let small = s3d_run(&m, ExecMode::Vn, 64, &S3dConfig { species: 11, ..Default::default() });
        let big = s3d_run(&m, ExecMode::Vn, 64, &S3dConfig { species: 33, ..Default::default() });
        assert!(big.seconds_per_step > small.seconds_per_step * 1.8);
    }
}
