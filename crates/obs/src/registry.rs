//! The process-wide metrics registry: registration, the lock-free hot
//! path, and deterministic snapshots. See the crate docs for the design
//! rationale (striped shards, log2 buckets, the determinism split).

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Shards per counter. A power of two so the thread-to-shard map is a
/// mask; 8 shards × 64 B padding keeps a counter to one page-friendly
/// 512 B while covering more threads than the battery ever runs hot.
const STRIPES: usize = 8;

/// Log2 histogram buckets: index 0 holds exact zeros, index `i` (1..=64)
/// holds values in `[2^(i-1), 2^i - 1]`; the last bucket therefore ends
/// at `u64::MAX` and renders as `+Inf` in Prometheus exposition.
pub const HIST_BUCKETS: usize = 65;

/// Determinism class of a counter or gauge — which `run_report.json`
/// section it lands in. Histograms are always quarantined under
/// `timing` and carry no class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Class {
    /// Invariant across `--jobs`, sweep engine, and cache temperature;
    /// byte-diffed by CI across worker counts.
    Deterministic,
    /// Legitimately depends on cache state or engine selection (hits,
    /// evictions, DAG-vs-replay splits, disk bytes).
    Volatile,
}

impl Class {
    /// Report-section label.
    pub fn label(self) -> &'static str {
        match self {
            Class::Deterministic => "deterministic",
            Class::Volatile => "observed",
        }
    }
}

/// Process-wide enable switch. Off by default; `repro` turns it on at
/// startup. Every hot-path record checks this first, so a disabled
/// registry costs one relaxed load per site.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether the registry is recording.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn recording on or off (process-wide).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::SeqCst);
}

/// One cache line per shard so two threads bumping the same counter
/// never write-share a line.
#[repr(align(64))]
#[derive(Default)]
struct PaddedCell(AtomicU64);

/// Round-robin shard assignment: each thread picks a stripe on first
/// use and keeps it for life, so the battery's fixed worker pool maps
/// one worker per stripe until the pool outgrows [`STRIPES`].
fn stripe() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static STRIPE: usize = NEXT.fetch_add(1, Ordering::Relaxed) & (STRIPES - 1);
    }
    STRIPE.with(|s| *s)
}

/// Monotonic event counter. Obtain a `&'static` handle once via
/// [`counter`] and bump it from any thread.
#[derive(Default)]
pub struct Counter {
    cells: [PaddedCell; STRIPES],
}

impl Counter {
    /// Add `n` events (no-op while the registry is disabled).
    #[inline]
    pub fn add(&self, n: u64) {
        if enabled() {
            self.cells[stripe()].0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Add one event.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Deterministic merge: the sum over all shards.
    pub fn total(&self) -> u64 {
        self.cells.iter().map(|c| c.0.load(Ordering::Relaxed)).sum()
    }

    fn reset(&self) {
        for c in &self.cells {
            c.0.store(0, Ordering::Relaxed);
        }
    }
}

/// Last-written / running-max scalar. Single cell: gauges are set at
/// battery boundaries, not in hot loops.
#[derive(Default)]
pub struct Gauge {
    cell: AtomicU64,
}

impl Gauge {
    /// Overwrite the gauge (no-op while disabled).
    #[inline]
    pub fn set(&self, v: u64) {
        if enabled() {
            self.cell.store(v, Ordering::Relaxed);
        }
    }

    /// Raise the gauge to `v` if larger — deterministic whenever the
    /// *set* of observed values is, regardless of arrival order.
    #[inline]
    pub fn set_max(&self, v: u64) {
        if enabled() {
            self.cell.fetch_max(v, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.cell.store(0, Ordering::Relaxed);
    }
}

/// Fixed-log2-bucket histogram (see [`HIST_BUCKETS`] for the layout).
/// Values are whatever unit the call site chooses — the battery records
/// host wall-clock nanoseconds.
pub struct Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    /// Saturating sum of recorded values (a `u64::MAX` observation must
    /// not wrap the total).
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram { buckets: [const { AtomicU64::new(0) }; HIST_BUCKETS], sum: AtomicU64::new(0) }
    }
}

/// Bucket index for a value: 0 for zero, else `64 - leading_zeros`
/// (the bit length), so each bucket spans one power of two.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Inclusive upper edge of bucket `i`: 0, then `2^i - 1`; the last
/// bucket's edge is `u64::MAX` (rendered `+Inf`).
#[inline]
pub fn bucket_le(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Histogram {
    /// Record one observation (no-op while disabled).
    #[inline]
    pub fn record(&self, v: u64) {
        if !enabled() {
            return;
        }
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        // saturating add: fetch_update loops only under a concurrent
        // store to the same cell, which the coarse call sites never
        // sustain
        let _ = self
            .sum
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |s| Some(s.saturating_add(v)));
    }

    /// Record a host-time duration in nanoseconds.
    #[inline]
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    fn snap(&self) -> ([u64; HIST_BUCKETS], u64) {
        let mut b = [0u64; HIST_BUCKETS];
        for (dst, src) in b.iter_mut().zip(&self.buckets) {
            *dst = src.load(Ordering::Relaxed);
        }
        (b, self.sum.load(Ordering::Relaxed))
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.sum.store(0, Ordering::Relaxed);
    }
}

struct Entry<M: 'static> {
    name: &'static str,
    help: &'static str,
    class: Class,
    metric: &'static M,
}

#[derive(Default)]
struct Inner {
    counters: Vec<Entry<Counter>>,
    gauges: Vec<Entry<Gauge>>,
    hists: Vec<Entry<Histogram>>,
}

fn registry() -> &'static Mutex<Inner> {
    static REG: Mutex<Inner> =
        Mutex::new(Inner { counters: Vec::new(), gauges: Vec::new(), hists: Vec::new() });
    &REG
}

fn register<M: Default>(
    list: impl FnOnce(&mut Inner) -> &mut Vec<Entry<M>>,
    name: &'static str,
    help: &'static str,
    class: Class,
) -> &'static M {
    let mut inner = registry().lock().unwrap();
    let list = list(&mut inner);
    if let Some(e) = list.iter().find(|e| e.name == name) {
        assert_eq!(e.class, class, "metric {name} re-registered under a different class");
        return e.metric;
    }
    let metric: &'static M = Box::leak(Box::default());
    list.push(Entry { name, help, class, metric });
    metric
}

/// Register (or fetch) the counter named `name`. Idempotent: every call
/// site naming the same metric shares one instance. Call once per site
/// (e.g. through `LazyLock`) and keep the `&'static` handle.
pub fn counter(name: &'static str, help: &'static str, class: Class) -> &'static Counter {
    register(|i| &mut i.counters, name, help, class)
}

/// Register (or fetch) the gauge named `name`.
pub fn gauge(name: &'static str, help: &'static str, class: Class) -> &'static Gauge {
    register(|i| &mut i.gauges, name, help, class)
}

/// Register (or fetch) the histogram named `name`. Histograms always
/// land in the report's `timing` section; the class argument is fixed
/// internally.
pub fn histogram(name: &'static str, help: &'static str) -> &'static Histogram {
    register(|i| &mut i.hists, name, help, Class::Volatile)
}

/// Zero every registered metric (registration survives). Test and
/// battery-boundary helper — not safe to race against concurrent
/// recording if you then compare snapshots.
pub fn reset() {
    let inner = registry().lock().unwrap();
    for e in &inner.counters {
        e.metric.reset();
    }
    for e in &inner.gauges {
        e.metric.reset();
    }
    for e in &inner.hists {
        e.metric.reset();
    }
}

/// One counter's merged snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterSnap {
    /// Metric name (Prometheus-safe, `hpcsim_` prefixed).
    pub name: &'static str,
    /// One-line help text.
    pub help: &'static str,
    /// Report section.
    pub class: Class,
    /// Shard-merged total.
    pub value: u64,
}

/// One gauge's snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GaugeSnap {
    /// Metric name.
    pub name: &'static str,
    /// One-line help text.
    pub help: &'static str,
    /// Report section.
    pub class: Class,
    /// Current value.
    pub value: u64,
}

/// One histogram's snapshot (non-cumulative per-bucket counts).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistSnap {
    /// Metric name.
    pub name: &'static str,
    /// One-line help text.
    pub help: &'static str,
    /// Total observations.
    pub count: u64,
    /// Saturating sum of observations.
    pub sum: u64,
    /// `(inclusive upper edge, count)` per bucket, zero buckets elided.
    pub buckets: Vec<(u64, u64)>,
}

impl HistSnap {
    /// Inclusive upper edge of the bucket containing quantile `q` in
    /// [0, 1]; 0 when empty. Log2 buckets make this a coarse but
    /// deterministic summary.
    pub fn quantile_le(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for &(le, n) in &self.buckets {
            seen += n;
            if seen >= target {
                return le;
            }
        }
        self.buckets.last().map_or(0, |&(le, _)| le)
    }
}

/// A full registry snapshot, every section sorted by metric name — the
/// deterministic-merge point all exporters render from.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// All counters, name-sorted.
    pub counters: Vec<CounterSnap>,
    /// All gauges, name-sorted.
    pub gauges: Vec<GaugeSnap>,
    /// All histograms, name-sorted.
    pub hists: Vec<HistSnap>,
}

/// Snapshot every registered metric.
pub fn snapshot() -> Snapshot {
    let inner = registry().lock().unwrap();
    let mut counters: Vec<CounterSnap> = inner
        .counters
        .iter()
        .map(|e| CounterSnap { name: e.name, help: e.help, class: e.class, value: e.metric.total() })
        .collect();
    let mut gauges: Vec<GaugeSnap> = inner
        .gauges
        .iter()
        .map(|e| GaugeSnap { name: e.name, help: e.help, class: e.class, value: e.metric.value() })
        .collect();
    let mut hists: Vec<HistSnap> = inner
        .hists
        .iter()
        .map(|e| {
            let (b, sum) = e.metric.snap();
            let count = b.iter().sum();
            let buckets = b
                .iter()
                .enumerate()
                .filter(|(_, &n)| n > 0)
                .map(|(i, &n)| (bucket_le(i), n))
                .collect();
            HistSnap { name: e.name, help: e.help, count, sum, buckets }
        })
        .collect();
    counters.sort_by_key(|c| c.name);
    gauges.sort_by_key(|g| g.name);
    hists.sort_by_key(|h| h.name);
    Snapshot { counters, gauges, hists }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serialize tests that toggle the process-wide switch / reset the
    /// registry.
    pub(crate) fn lock() -> std::sync::MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        GATE.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let _g = lock();
        set_enabled(false);
        let c = counter("test_disabled_ctr", "t", Class::Volatile);
        let h = histogram("test_disabled_hist", "t");
        c.add(5);
        h.record(9);
        assert_eq!(c.total(), 0);
        assert_eq!(h.snap().0.iter().sum::<u64>(), 0);
    }

    #[test]
    fn counter_merges_across_threads_deterministically() {
        let _g = lock();
        set_enabled(true);
        let c = counter("test_merge_ctr", "t", Class::Deterministic);
        c.reset();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.total(), 4000);
        set_enabled(false);
    }

    #[test]
    fn registration_is_idempotent_and_class_checked() {
        let _g = lock();
        let a = counter("test_idem_ctr", "t", Class::Volatile);
        let b = counter("test_idem_ctr", "t", Class::Volatile);
        assert!(std::ptr::eq(a, b));
    }

    #[test]
    fn bucket_boundaries_cover_powers_of_two() {
        // zero gets its own bucket
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_le(0), 0);
        // exact powers of two open a new bucket; one less closes the old
        for i in 1..=63usize {
            let edge = 1u64 << i;
            assert_eq!(bucket_index(edge), i + 1, "2^{i} must open bucket {}", i + 1);
            assert_eq!(bucket_index(edge - 1), i, "2^{i}-1 must stay in bucket {i}");
            assert_eq!(bucket_le(i), edge - 1);
        }
        // 1 is the first nonzero bucket
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_le(1), 1);
        // the top bucket holds everything from 2^63 to u64::MAX
        assert_eq!(bucket_index(1u64 << 63), 64);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_le(64), u64::MAX);
        // every value lands in the bucket whose edge bounds it
        for v in [0u64, 1, 2, 3, 4, 7, 8, 1023, 1024, u64::MAX - 1, u64::MAX] {
            let i = bucket_index(v);
            assert!(v <= bucket_le(i), "{v} exceeds its bucket edge");
            if i > 0 {
                assert!(v > bucket_le(i - 1), "{v} belongs in an earlier bucket");
            }
        }
    }

    #[test]
    fn histogram_records_extremes_without_wrapping() {
        let _g = lock();
        set_enabled(true);
        let h = histogram("test_extremes_hist", "t");
        h.reset();
        h.record(0);
        h.record(u64::MAX);
        h.record(u64::MAX); // sum saturates instead of wrapping
        let (b, sum) = h.snap();
        assert_eq!(b[0], 1);
        assert_eq!(b[64], 2);
        assert_eq!(sum, u64::MAX);
        set_enabled(false);
    }

    #[test]
    fn snapshot_sorts_by_name_and_elides_empty_buckets() {
        let _g = lock();
        set_enabled(true);
        counter("test_zz_ctr", "t", Class::Volatile).inc();
        counter("test_aa_ctr", "t", Class::Volatile).inc();
        let h = histogram("test_snap_hist", "t");
        h.reset();
        h.record(5);
        let snap = snapshot();
        let names: Vec<_> = snap.counters.iter().map(|c| c.name).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
        let hs = snap.hists.iter().find(|h| h.name == "test_snap_hist").unwrap();
        assert_eq!(hs.count, 1);
        assert_eq!(hs.sum, 5);
        assert_eq!(hs.buckets, vec![(bucket_le(bucket_index(5)), 1)]);
        set_enabled(false);
    }

    #[test]
    fn quantiles_walk_the_buckets() {
        let snap = HistSnap {
            name: "q",
            help: "t",
            count: 100,
            sum: 0,
            buckets: vec![(1, 50), (3, 40), (7, 10)],
        };
        assert_eq!(snap.quantile_le(0.5), 1);
        assert_eq!(snap.quantile_le(0.9), 3);
        assert_eq!(snap.quantile_le(0.99), 7);
        assert_eq!(HistSnap { name: "e", help: "t", count: 0, sum: 0, buckets: vec![] }
            .quantile_le(0.5), 0);
    }
}
