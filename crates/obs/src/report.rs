//! Exporters: everything renders from one [`Snapshot`], so the three
//! output formats (Prometheus text exposition, `run_report.json`, the
//! stderr summary table) can never disagree about what happened.
//!
//! `run_report.json` is hand-rolled like every other JSON emitter in
//! this workspace (the vendored serde shim is marker-only) and keeps a
//! fixed 2-space indentation so CI can slice the deterministic block
//! out with `sed -n '/"deterministic": {/,/^  },$/p'` and byte-diff it
//! across `--jobs` counts.

use crate::registry::{Class, HistSnap, Snapshot};
use std::fmt::Write as _;

/// Report schema identifier, bumped on any layout change.
pub const RUN_REPORT_SCHEMA: &str = "hpcsim-obs-run-report/1";

/// Render a snapshot as Prometheus text exposition (text format 0.0.4):
/// `# HELP` / `# TYPE` preambles, cumulative histogram buckets with a
/// final `+Inf` edge, and `_sum` / `_count` series.
pub fn prometheus_text(snap: &Snapshot) -> String {
    let mut out = String::new();
    for c in &snap.counters {
        let _ = writeln!(out, "# HELP {} {}", c.name, c.help);
        let _ = writeln!(out, "# TYPE {} counter", c.name);
        let _ = writeln!(out, "{} {}", c.name, c.value);
    }
    for g in &snap.gauges {
        let _ = writeln!(out, "# HELP {} {}", g.name, g.help);
        let _ = writeln!(out, "# TYPE {} gauge", g.name);
        let _ = writeln!(out, "{} {}", g.name, g.value);
    }
    for h in &snap.hists {
        let _ = writeln!(out, "# HELP {} {}", h.name, h.help);
        let _ = writeln!(out, "# TYPE {} histogram", h.name);
        let mut cum = 0u64;
        let mut saw_inf = false;
        for &(le, n) in &h.buckets {
            cum += n;
            if le == u64::MAX {
                saw_inf = true;
                let _ = writeln!(out, "{}_bucket{{le=\"+Inf\"}} {cum}", h.name);
            } else {
                let _ = writeln!(out, "{}_bucket{{le=\"{le}\"}} {cum}", h.name);
            }
        }
        if !saw_inf {
            let _ = writeln!(out, "{}_bucket{{le=\"+Inf\"}} {}", h.name, h.count);
        }
        let _ = writeln!(out, "{}_sum {}", h.name, h.sum);
        let _ = writeln!(out, "{}_count {}", h.name, h.count);
    }
    out
}

/// Counters and gauges of `class` as sorted `"name": value` JSON lines
/// at `indent` spaces. Counters and gauges share one namespace in the
/// report, interleaved in name order.
fn scalar_lines(snap: &Snapshot, class: Class, indent: usize) -> Vec<String> {
    let pad = " ".repeat(indent);
    let mut rows: Vec<(&str, u64)> = snap
        .counters
        .iter()
        .filter(|c| c.class == class)
        .map(|c| (c.name, c.value))
        .chain(snap.gauges.iter().filter(|g| g.class == class).map(|g| (g.name, g.value)))
        .collect();
    rows.sort_by_key(|&(name, _)| name);
    rows.iter().map(|(name, v)| format!("{pad}\"{name}\": {v}")).collect()
}

/// The `"deterministic"` block of the run report, byte-for-byte as it
/// appears inside [`run_report_json`] — the unit CI and tests diff
/// across `--jobs` counts, sweep engines, and cache temperatures.
/// Starts with `  "deterministic": {` and ends with `  },\n`.
pub fn deterministic_json(snap: &Snapshot) -> String {
    let mut out = String::from("  \"deterministic\": {\n");
    out.push_str(&scalar_lines(snap, Class::Deterministic, 4).join(",\n"));
    if !out.ends_with('\n') {
        out.push('\n');
    }
    out.push_str("  },\n");
    out
}

fn hist_json(h: &HistSnap) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "    \"{}\": {{", h.name);
    let _ = writeln!(out, "      \"count\": {},", h.count);
    let _ = writeln!(out, "      \"sum\": {},", h.sum);
    let _ = writeln!(out, "      \"p50_le\": {},", h.quantile_le(0.50));
    let _ = writeln!(out, "      \"p99_le\": {},", h.quantile_le(0.99));
    let buckets: Vec<String> =
        h.buckets.iter().map(|&(le, n)| format!("[{le}, {n}]")).collect();
    let _ = writeln!(out, "      \"buckets\": [{}]", buckets.join(", "));
    out.push_str("    }");
    out
}

/// Render the full structured run report. Section order is fixed:
/// `deterministic` (CI byte-diffs it), `observed` (real telemetry that
/// legitimately varies with cache state and engine choice), `timing`
/// (host wall-clock histograms, quarantined like `generated_at`).
pub fn run_report_json(snap: &Snapshot) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"schema\": \"{RUN_REPORT_SCHEMA}\",");
    out.push_str(&deterministic_json(snap));
    out.push_str("  \"observed\": {\n");
    out.push_str(&scalar_lines(snap, Class::Volatile, 4).join(",\n"));
    if !out.ends_with('\n') {
        out.push('\n');
    }
    out.push_str("  },\n");
    out.push_str("  \"timing\": {\n");
    let hists: Vec<String> = snap.hists.iter().map(hist_json).collect();
    out.push_str(&hists.join(",\n"));
    if !out.ends_with('\n') {
        out.push('\n');
    }
    out.push_str("  }\n}\n");
    out
}

/// Human-format a value whose metric name marks it as nanoseconds.
fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Render the per-run stderr summary: nonzero counters and gauges
/// grouped by section, then each histogram's count / p50 / p99 (edges
/// of the log2 bucket containing the quantile). Returns an empty
/// string when nothing was recorded.
pub fn summary_table(snap: &Snapshot) -> String {
    let det = scalar_rows(snap, Class::Deterministic);
    let obs = scalar_rows(snap, Class::Volatile);
    let hists: Vec<&HistSnap> = snap.hists.iter().filter(|h| h.count > 0).collect();
    if det.is_empty() && obs.is_empty() && hists.is_empty() {
        return String::new();
    }
    let width = det
        .iter()
        .chain(&obs)
        .map(|(n, _)| n.len())
        .chain(hists.iter().map(|h| h.name.len()))
        .max()
        .unwrap_or(0);
    let mut out = String::from("# run metrics\n");
    for (title, rows) in [("deterministic", &det), ("observed", &obs)] {
        if rows.is_empty() {
            continue;
        }
        let _ = writeln!(out, "#   {title}:");
        for (name, v) in rows {
            let _ = writeln!(out, "#     {name:<width$}  {v}");
        }
    }
    if !hists.is_empty() {
        let _ = writeln!(out, "#   timing:");
        for h in hists {
            let (p50, p99) = (h.quantile_le(0.50), h.quantile_le(0.99));
            let (p50, p99) = if h.name.ends_with("_ns") {
                (fmt_ns(p50), fmt_ns(p99))
            } else {
                (p50.to_string(), p99.to_string())
            };
            let _ = writeln!(
                out,
                "#     {:<width$}  count {}  p50 <= {p50}  p99 <= {p99}",
                h.name, h.count
            );
        }
    }
    out
}

fn scalar_rows(snap: &Snapshot, class: Class) -> Vec<(&'static str, u64)> {
    let mut rows: Vec<(&'static str, u64)> = snap
        .counters
        .iter()
        .filter(|c| c.class == class && c.value > 0)
        .map(|c| (c.name, c.value))
        .chain(
            snap.gauges
                .iter()
                .filter(|g| g.class == class && g.value > 0)
                .map(|g| (g.name, g.value)),
        )
        .collect();
    rows.sort_by_key(|&(name, _)| name);
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{CounterSnap, GaugeSnap};

    fn sample() -> Snapshot {
        Snapshot {
            counters: vec![
                CounterSnap {
                    name: "hpcsim_a_total",
                    help: "det ctr",
                    class: Class::Deterministic,
                    value: 7,
                },
                CounterSnap {
                    name: "hpcsim_b_total",
                    help: "vol ctr",
                    class: Class::Volatile,
                    value: 3,
                },
            ],
            gauges: vec![GaugeSnap {
                name: "hpcsim_a_gauge",
                help: "det gauge",
                class: Class::Deterministic,
                value: 11,
            }],
            hists: vec![HistSnap {
                name: "hpcsim_wall_ns",
                help: "wall",
                count: 3,
                sum: 12,
                buckets: vec![(1, 1), (7, 2)],
            }],
        }
    }

    #[test]
    fn prometheus_exposition_shape() {
        let text = prometheus_text(&sample());
        assert!(text.contains("# HELP hpcsim_a_total det ctr\n"));
        assert!(text.contains("# TYPE hpcsim_a_total counter\n"));
        assert!(text.contains("hpcsim_a_total 7\n"));
        assert!(text.contains("# TYPE hpcsim_a_gauge gauge\n"));
        assert!(text.contains("# TYPE hpcsim_wall_ns histogram\n"));
        // buckets are cumulative and close with +Inf == count
        assert!(text.contains("hpcsim_wall_ns_bucket{le=\"1\"} 1\n"));
        assert!(text.contains("hpcsim_wall_ns_bucket{le=\"7\"} 3\n"));
        assert!(text.contains("hpcsim_wall_ns_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("hpcsim_wall_ns_sum 12\n"));
        assert!(text.contains("hpcsim_wall_ns_count 3\n"));
    }

    #[test]
    fn prometheus_renders_max_edge_as_inf_once() {
        let snap = Snapshot {
            counters: vec![],
            gauges: vec![],
            hists: vec![HistSnap {
                name: "h",
                help: "t",
                count: 2,
                sum: 0,
                buckets: vec![(3, 1), (u64::MAX, 1)],
            }],
        };
        let text = prometheus_text(&snap);
        assert_eq!(text.matches("le=\"+Inf\"").count(), 1);
        assert!(text.contains("h_bucket{le=\"+Inf\"} 2\n"));
    }

    #[test]
    fn run_report_sections_and_extractable_block() {
        let report = run_report_json(&sample());
        assert!(report.starts_with("{\n  \"schema\": \"hpcsim-obs-run-report/1\",\n"));
        // the deterministic block embeds byte-for-byte
        let det = deterministic_json(&sample());
        assert!(report.contains(&det));
        assert!(det.starts_with("  \"deterministic\": {\n"));
        assert!(det.ends_with("  },\n"));
        // deterministic holds only Deterministic-class scalars
        assert!(det.contains("\"hpcsim_a_total\": 7"));
        assert!(det.contains("\"hpcsim_a_gauge\": 11"));
        assert!(!det.contains("hpcsim_b_total"));
        // observed holds the volatile ones, timing the histograms
        assert!(report.contains("  \"observed\": {\n    \"hpcsim_b_total\": 3\n  },\n"));
        assert!(report.contains("\"hpcsim_wall_ns\": {"));
        assert!(report.contains("\"count\": 3,"));
        assert!(report.contains("\"buckets\": [[1, 1], [7, 2]]"));
        // rendering is a pure function of the snapshot
        assert_eq!(report, run_report_json(&sample()));
    }

    #[test]
    fn empty_sections_stay_valid() {
        let empty = Snapshot::default();
        let report = run_report_json(&empty);
        assert!(report.contains("  \"deterministic\": {\n  },\n"));
        assert!(report.contains("  \"observed\": {\n  },\n"));
        assert!(report.ends_with("  \"timing\": {\n  }\n}\n"));
        assert_eq!(summary_table(&empty), "");
    }

    #[test]
    fn summary_table_lists_nonzero_and_quantiles() {
        let table = summary_table(&sample());
        assert!(table.starts_with("# run metrics\n"));
        assert!(table.contains("deterministic:"));
        assert!(table.contains("hpcsim_a_total"));
        assert!(table.contains("observed:"));
        assert!(table.contains("count 3"));
        assert!(table.contains("p50 <= 7ns"));
        // every line is stderr-comment prefixed
        assert!(table.lines().all(|l| l.starts_with('#')));
    }

    #[test]
    fn ns_formatting_scales() {
        assert_eq!(fmt_ns(512), "512ns");
        assert_eq!(fmt_ns(1_500), "1.50us");
        assert_eq!(fmt_ns(2_000_000), "2.00ms");
        assert_eq!(fmt_ns(3_000_000_000), "3.00s");
    }
}
