//! # hpcsim-obs
//!
//! Harness-level observability for the reproduction battery: a
//! process-wide metrics registry, a tiny leveled stderr logger, and the
//! exporters (`Prometheus` text exposition, the structured
//! `run_report.json`, a rendered stderr summary table) the `repro`
//! binary wires them to.
//!
//! This is deliberately **distinct from `hpcsim-probe`**: probe observes
//! *simulated* time inside one replayed scenario (spans tiling a rank's
//! clock, link deltas in `SimTime`); obs observes the *harness itself* —
//! cache hit rates, which engine evaluated each sweep point, fault
//! events diagnosed, where host wall-clock went. Probe answers "what did
//! the simulated machine do"; obs answers "what did the simulator do".
//!
//! ## Registry design
//!
//! * [`Counter`] — monotonic `u64`, striped over cache-padded
//!   per-thread shards: the hot path is one relaxed `enabled` load plus
//!   one relaxed `fetch_add` on a shard other threads rarely touch.
//! * [`Gauge`] — a single `u64` cell with `set` / `set_max`.
//! * [`Histogram`] — fixed log2 buckets (one per power of two, plus a
//!   dedicated zero bucket), so recording is a `leading_zeros` and one
//!   `fetch_add`; no allocation, no locks, no configurable boundaries
//!   to disagree about across runs.
//!
//! Merging is deterministic by construction: every shard holds partial
//! *sums*, addition commutes, and snapshots sort metrics by name — the
//! same events produce the same snapshot regardless of which thread
//! observed them or in what order.
//!
//! ## The determinism split
//!
//! Every counter and gauge is registered under a [`Class`]:
//!
//! * [`Class::Deterministic`] — invariant across `--jobs` counts, sweep
//!   engine selection, and cache temperature (e.g. *lookups issued*,
//!   scenarios run, fault events diagnosed per evaluation actually
//!   performed);
//! * [`Class::Volatile`] — real observability data that legitimately
//!   depends on cache state or engine choice (hits vs disk hits,
//!   DAG-vs-replay point counts, eviction counts).
//!
//! Histograms record host wall-clock and are always quarantined in the
//! report's `timing` section, exactly like `generated_at` in
//! `BENCH_repro.json`. The `run_report.json` renders the three sections
//! separately so CI can byte-diff the deterministic one across worker
//! counts without ever being flaky.
//!
//! The registry is **disabled by default**: library users pay one
//! relaxed bool load per instrumentation site and nothing else (the
//! release-gated `obs_overhead` test in `hpcsim-bench` pins the cost
//! under 2%). The `repro` binary enables it at startup unless
//! `--no-obs` is given.

pub mod log;
pub mod registry;
pub mod report;

pub use log::{log_level, set_log_level, LogLevel, Severity};
pub use registry::{
    counter, enabled, gauge, histogram, reset, set_enabled, snapshot, Class, Counter, CounterSnap,
    Gauge, GaugeSnap, HistSnap, Histogram, Snapshot,
};
pub use report::{deterministic_json, prometheus_text, run_report_json, summary_table};
