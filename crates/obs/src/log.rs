//! A tiny leveled stderr logger, replacing the ad-hoc `eprintln!` calls
//! scattered through the harness. Three user-facing levels (the
//! `repro --log-level` values):
//!
//! * `quiet` — errors only (fatal diagnostics must never vanish);
//! * `info`  — the default: errors, warnings, and progress notes;
//! * `debug` — everything, including per-layer chatter.
//!
//! Messages carry a [`Severity`]; the global [`LogLevel`] threshold
//! decides what reaches stderr. Call sites use the [`log_error!`],
//! [`log_warn!`], [`log_info!`], [`log_debug!`] macros (re-exported by
//! `hpcsim-core`), or [`log_warn_once!`] for diagnostics that should
//! fire once per process (e.g. a cache disk-layer failure that would
//! otherwise repeat per entry).
//!
//! [`log_error!`]: crate::log_error
//! [`log_warn!`]: crate::log_warn
//! [`log_info!`]: crate::log_info
//! [`log_debug!`]: crate::log_debug
//! [`log_warn_once!`]: crate::log_warn_once

use std::sync::atomic::{AtomicU8, Ordering};

/// Verbosity threshold (what the CLI's `--log-level` sets).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum LogLevel {
    /// Errors only.
    Quiet,
    /// Errors, warnings, progress notes (default).
    #[default]
    Info,
    /// Everything.
    Debug,
}

impl LogLevel {
    /// Parse a CLI value (`quiet` | `info` | `debug`).
    pub fn parse(s: &str) -> Option<LogLevel> {
        match s {
            "quiet" => Some(LogLevel::Quiet),
            "info" => Some(LogLevel::Info),
            "debug" => Some(LogLevel::Debug),
            _ => None,
        }
    }

    /// The CLI spelling.
    pub fn label(self) -> &'static str {
        match self {
            LogLevel::Quiet => "quiet",
            LogLevel::Info => "info",
            LogLevel::Debug => "debug",
        }
    }
}

/// Per-message severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Always emitted, even at `quiet` (fatal or near-fatal
    /// diagnostics).
    Error,
    /// Emitted at `info` and above.
    Warn,
    /// Emitted at `info` and above.
    Info,
    /// Emitted only at `debug`.
    Debug,
}

static LEVEL: AtomicU8 = AtomicU8::new(LogLevel::Info as u8);

/// Set the process-wide threshold.
pub fn set_log_level(level: LogLevel) {
    LEVEL.store(level as u8, Ordering::Relaxed);
}

/// The current threshold.
pub fn log_level() -> LogLevel {
    match LEVEL.load(Ordering::Relaxed) {
        0 => LogLevel::Quiet,
        1 => LogLevel::Info,
        _ => LogLevel::Debug,
    }
}

/// Whether a message of `sev` would currently reach stderr.
pub fn log_enabled(sev: Severity) -> bool {
    match sev {
        Severity::Error => true,
        Severity::Warn | Severity::Info => log_level() >= LogLevel::Info,
        Severity::Debug => log_level() >= LogLevel::Debug,
    }
}

/// Emit a pre-formatted message if the threshold allows. Macro plumbing
/// — prefer the `log_*!` macros at call sites.
pub fn emit(sev: Severity, args: std::fmt::Arguments<'_>) {
    if log_enabled(sev) {
        eprintln!("{args}");
    }
}

/// Log at [`Severity::Error`] — always emitted, even under `quiet`.
#[macro_export]
macro_rules! log_error {
    ($($t:tt)*) => {
        $crate::log::emit($crate::log::Severity::Error, format_args!($($t)*))
    };
}

/// Log at [`Severity::Warn`] — emitted at `info` and above.
#[macro_export]
macro_rules! log_warn {
    ($($t:tt)*) => {
        $crate::log::emit($crate::log::Severity::Warn, format_args!($($t)*))
    };
}

/// Log at [`Severity::Info`] — emitted at `info` and above.
#[macro_export]
macro_rules! log_info {
    ($($t:tt)*) => {
        $crate::log::emit($crate::log::Severity::Info, format_args!($($t)*))
    };
}

/// Log at [`Severity::Debug`] — emitted only at `debug`.
#[macro_export]
macro_rules! log_debug {
    ($($t:tt)*) => {
        $crate::log::emit($crate::log::Severity::Debug, format_args!($($t)*))
    };
}

/// [`log_warn!`](crate::log_warn) that fires at most once per process
/// per call site — for per-entry failure paths (cache disk errors)
/// where one diagnosis is signal and a thousand are noise.
#[macro_export]
macro_rules! log_warn_once {
    ($($t:tt)*) => {{
        static ONCE: ::std::sync::atomic::AtomicBool =
            ::std::sync::atomic::AtomicBool::new(false);
        if !ONCE.swap(true, ::std::sync::atomic::Ordering::Relaxed) {
            $crate::log_warn!($($t)*);
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_parse_and_order() {
        assert_eq!(LogLevel::parse("quiet"), Some(LogLevel::Quiet));
        assert_eq!(LogLevel::parse("info"), Some(LogLevel::Info));
        assert_eq!(LogLevel::parse("debug"), Some(LogLevel::Debug));
        assert_eq!(LogLevel::parse("loud"), None);
        assert!(LogLevel::Quiet < LogLevel::Info && LogLevel::Info < LogLevel::Debug);
        for l in [LogLevel::Quiet, LogLevel::Info, LogLevel::Debug] {
            assert_eq!(LogLevel::parse(l.label()), Some(l));
        }
    }

    #[test]
    fn thresholds_gate_severities() {
        let before = log_level();
        set_log_level(LogLevel::Quiet);
        assert!(log_enabled(Severity::Error));
        assert!(!log_enabled(Severity::Warn));
        assert!(!log_enabled(Severity::Info));
        assert!(!log_enabled(Severity::Debug));
        set_log_level(LogLevel::Info);
        assert!(log_enabled(Severity::Warn) && log_enabled(Severity::Info));
        assert!(!log_enabled(Severity::Debug));
        set_log_level(LogLevel::Debug);
        assert!(log_enabled(Severity::Debug));
        set_log_level(before);
    }

    #[test]
    fn warn_once_is_once() {
        // the macro's gate is per call site; loop the same site
        let before = log_level();
        set_log_level(LogLevel::Quiet); // keep test output clean
        for _ in 0..3 {
            log_warn_once!("only once");
        }
        set_log_level(before);
    }
}
