//! Property tests of the real kernels' mathematical invariants.

use hpcsim_kernels::{
    dgemm, dgemm_naive, fft_forward, fft_inverse, lu_factor, lu_solve, residual_check,
    transpose, transpose_add, Complex,
};
use proptest::prelude::*;

fn vec_strategy(len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-10.0f64..10.0, len..=len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Blocked DGEMM equals the naive oracle for arbitrary shapes and
    /// coefficients.
    #[test]
    fn dgemm_matches_oracle(
        m in 1usize..40, n in 1usize..40, k in 0usize..40,
        alpha in -2.0f64..2.0, beta in -2.0f64..2.0,
        seed: u64
    ) {
        let gen = |len: usize, s: u64| -> Vec<f64> {
            let mut state = s;
            (0..len).map(|_| {
                state = hpcsim_engine_splitmix(state);
                (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
            }).collect()
        };
        let a = gen(m * k, seed);
        let b = gen(k * n, seed.wrapping_add(1));
        let c0 = gen(m * n, seed.wrapping_add(2));
        let mut fast = c0.clone();
        let mut slow = c0;
        dgemm(alpha, &a, &b, beta, &mut fast, m, n, k);
        dgemm_naive(alpha, &a, &b, beta, &mut slow, m, n, k);
        for (f, s) in fast.iter().zip(&slow) {
            prop_assert!((f - s).abs() < 1e-9, "{f} vs {s}");
        }
    }

    /// FFT round-trips for every power-of-two length.
    #[test]
    fn fft_roundtrip(log_n in 1u32..12, sig in prop::collection::vec((-1.0f64..1.0, -1.0f64..1.0), 4096)) {
        let n = 1usize << log_n;
        let orig: Vec<Complex> = sig[..n].iter().map(|&(re, im)| Complex::new(re, im)).collect();
        let mut work = orig.clone();
        fft_forward(&mut work);
        fft_inverse(&mut work);
        for (w, o) in work.iter().zip(&orig) {
            prop_assert!(w.sub(*o).norm_sq().sqrt() < 1e-9);
        }
    }

    /// Parseval holds for arbitrary signals.
    #[test]
    fn fft_parseval(log_n in 1u32..11, sig in prop::collection::vec((-1.0f64..1.0, -1.0f64..1.0), 2048)) {
        let n = 1usize << log_n;
        let time: Vec<Complex> = sig[..n].iter().map(|&(re, im)| Complex::new(re, im)).collect();
        let e_time: f64 = time.iter().map(|x| x.norm_sq()).sum();
        let mut spec = time;
        fft_forward(&mut spec);
        let e_freq: f64 = spec.iter().map(|x| x.norm_sq()).sum::<f64>() / n as f64;
        prop_assert!((e_time - e_freq).abs() <= 1e-8 * (1.0 + e_time));
    }

    /// LU solve satisfies the HPL residual bound for random
    /// well-conditioned systems.
    #[test]
    fn lu_residual_bounded(n in 2usize..80, a in vec_strategy(80 * 80), b in vec_strategy(80)) {
        let mut mat = a[..n * n].to_vec();
        // diagonal boost for conditioning
        for i in 0..n {
            mat[i * n + i] += 25.0;
        }
        let rhs = &b[..n];
        let f = lu_factor(mat.clone(), n).expect("diagonally dominant");
        let x = lu_solve(&f, rhs);
        prop_assert!(residual_check(&mat, &x, rhs, n) < 16.0);
    }

    /// Transpose is an involution for any shape.
    #[test]
    fn transpose_involution(m in 1usize..50, n in 1usize..50, data in vec_strategy(2500)) {
        let a = &data[..m * n];
        let mut t = vec![0.0; m * n];
        let mut back = vec![0.0; m * n];
        transpose(a, m, n, &mut t);
        transpose(&t, n, m, &mut back);
        prop_assert_eq!(&back[..], a);
    }

    /// transpose_add with C = 0 equals plain transpose; with A = 0 it
    /// equals C.
    #[test]
    fn transpose_add_identities(n in 1usize..40, data in vec_strategy(1600)) {
        let a = data[..n * n].to_vec();
        let zeros = vec![0.0; n * n];
        let mut t = vec![0.0; n * n];
        transpose(&a, n, n, &mut t);
        let mut via_add = a.clone();
        transpose_add(&mut via_add, &zeros, n);
        prop_assert_eq!(via_add, t);
        let mut from_zero = zeros.clone();
        transpose_add(&mut from_zero, &a, n);
        prop_assert_eq!(from_zero, a);
    }
}

/// Local copy of splitmix64 to keep this test free of the engine dep.
fn hpcsim_engine_splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}
